#include "detect/detection.h"

#include <algorithm>

namespace jgre::detect {

std::string_view CertaintyName(Certainty certainty) {
  switch (certainty) {
    case Certainty::kHypothetical:
      return "hypothetical";
    case Certainty::kWeak:
      return "weak";
    case Certainty::kStrong:
      return "strong";
    case Certainty::kConfirmed:
      return "confirmed";
  }
  return "?";
}

Certainty RaiseCertainty(Certainty c, int levels) {
  const int raised =
      std::min(static_cast<int>(c) + std::max(levels, 0),
               static_cast<int>(Certainty::kConfirmed));
  return static_cast<Certainty>(raised);
}

namespace {

harness::Json WitnessJson(const analysis::taint::WitnessPath& witness) {
  harness::Json j = harness::Json::Object();
  j.Set("reason", witness.reason);
  harness::Json steps = harness::Json::Array();
  for (const analysis::taint::WitnessStep& step : witness.steps) {
    steps.Push(harness::Json::Object()
                   .Set("kind", analysis::taint::StepKindName(step.kind))
                   .Set("frame", step.frame));
  }
  j.Set("steps", std::move(steps));
  return j;
}

harness::Json TraceJson(const TraceSlice& trace) {
  harness::Json j = harness::Json::Object();
  j.Set("events", trace.events.size());
  if (!trace.events.empty()) {
    j.Set("first_ts_us", trace.events.front().ts_us);
    j.Set("last_ts_us", trace.events.back().ts_us);
  }
  harness::Json events = harness::Json::Array();
  for (const obs::TraceEvent& event : trace.events) {
    events.Push(harness::Json::Object()
                    .Set("ts_us", event.ts_us)
                    .Set("category", obs::CategoryName(event.category))
                    .Set("name", event.name)
                    .Set("pid", event.pid)
                    .Set("uid", event.uid)
                    .Set("arg0", event.arg0)
                    .Set("arg1", event.arg1));
  }
  j.Set("slice", std::move(events));
  return j;
}

harness::Json ReproducerJson(const fuzz::Sequence& seq) {
  harness::Json j = harness::Json::Object();
  j.Set("calls", seq.calls.size());
  j.Set("fingerprint", seq.Fingerprint());
  harness::Json calls = harness::Json::Array();
  // Homogeneous reproducers dominate; emit distinct call shapes only, with a
  // repeat count, so confirmed findings stay readable.
  std::size_t i = 0;
  while (i < seq.calls.size()) {
    std::size_t run = 1;
    while (i + run < seq.calls.size() && seq.calls[i + run] == seq.calls[i]) {
      ++run;
    }
    calls.Push(harness::Json::Object()
                   .Set("service", seq.calls[i].service)
                   .Set("descriptor", seq.calls[i].descriptor)
                   .Set("code", seq.calls[i].code)
                   .Set("args", seq.calls[i].args.size())
                   .Set("repeat", run));
    i += run;
  }
  j.Set("shape", std::move(calls));
  return j;
}

}  // namespace

harness::Json Detection::ToJson() const {
  harness::Json j = harness::Json::Object();
  j.Set("hunt", hunt);
  j.Set("key", FusionKey());
  j.Set("service", service);
  j.Set("method", method);
  j.Set("certainty", CertaintyName(certainty));
  j.Set("note", note);
  if (growth_per_call != 0.0) j.Set("growth_per_call", growth_per_call);
  if (has_witness()) j.Set("witness", WitnessJson(witness));
  if (has_trace()) j.Set("trace", TraceJson(trace));
  if (has_reproducer()) j.Set("reproducer", ReproducerJson(reproducer));
  return j;
}

}  // namespace jgre::detect
