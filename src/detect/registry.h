// HuntRegistry — owns the hunts and schedules them over available sources.
//
// Registration order is execution order, and a hunt only runs when every
// DataSource it requires is present — so the same registry serves a
// static-only pass, a per-device fleet pass, and the full census, each run
// exercising the subset its sources admit. Per-hunt run/skip/hit counts are
// reported so callers can tell "ran and found nothing" from "never ran".
#ifndef JGRE_DETECT_REGISTRY_H_
#define JGRE_DETECT_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "detect/hunt.h"

namespace jgre::detect {

// One hunt's outcome within a RunAll pass.
struct HuntRunStats {
  std::string hunt;
  bool ran = false;            // requirements satisfied
  SourceMask missing = 0;      // required-but-absent sources when skipped
  std::size_t detections = 0;  // emitted detections when ran
};

class HuntRegistry {
 public:
  HuntRegistry() = default;

  HuntRegistry(const HuntRegistry&) = delete;
  HuntRegistry& operator=(const HuntRegistry&) = delete;
  HuntRegistry(HuntRegistry&&) = default;
  HuntRegistry& operator=(HuntRegistry&&) = default;

  // Rejects duplicate ids: two hunts with one id would make per-hunt census
  // counters ambiguous.
  Status Register(std::unique_ptr<Hunt> hunt);

  const Hunt* Find(std::string_view id) const;
  std::size_t size() const { return hunts_.size(); }
  const std::vector<std::unique_ptr<Hunt>>& hunts() const { return hunts_; }

  // Runs every registered hunt whose required sources are available, in
  // registration order, concatenating their detections (each hunt's output
  // kept in its own emission order). `stats` (optional) receives one entry
  // per registered hunt, run or skipped.
  std::vector<Detection> RunAll(const DataSources& sources, const Scope& scope,
                                std::vector<HuntRunStats>* stats = nullptr) const;

  // The standard battery: the four-sift-rule hunt, the fuzz oracle hunt, the
  // defender alarm hunt, and the two follow-up hunts (slow-drip, death-
  // recipient churn) — see hunts.h.
  static HuntRegistry WithDefaultHunts();

 private:
  std::vector<std::unique_ptr<Hunt>> hunts_;
};

}  // namespace jgre::detect

#endif  // JGRE_DETECT_REGISTRY_H_
