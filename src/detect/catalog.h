// InterfaceCatalog — (descriptor, transaction code) -> interface identity.
//
// Trace-driven hunts see IPC traffic as interned type keys (descriptor id in
// the high half, transaction code in the low half — defense::MakeIpcTypeKey's
// packing). To fuse their detections with the static and fuzz hunts, the
// accused interface must resolve to the same identity those hunts key on:
// the code-model method id. The catalog is that resolution table; hunts fall
// back to "<descriptor>#<code>" keys when the run supplies none, which still
// groups dynamic evidence per interface but cannot join it to static
// findings.
#ifndef JGRE_DETECT_CATALOG_H_
#define JGRE_DETECT_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "analysis/pipeline.h"

namespace jgre::detect {

struct CatalogEntry {
  std::string interface_id;  // code-model method id (the fusion key)
  std::string service;       // service-manager name
  std::string method;        // Java method name
};

class InterfaceCatalog {
 public:
  void Add(std::string_view descriptor, std::uint32_t code,
           CatalogEntry entry);

  // Null when the (descriptor, code) pair is unknown.
  const CatalogEntry* Resolve(std::string_view descriptor,
                              std::uint32_t code) const;

  std::size_t size() const { return entries_.size(); }

 private:
  // Keyed "<descriptor>#<code>"; ordered so iteration (and any derived
  // output) is deterministic.
  std::map<std::string, CatalogEntry> entries_;
};

// The standard catalog: every attack-registry vulnerability (54 system + 3
// prebuilt-app) plus the generic safe services' binder-taking methods, with
// interface ids resolved against `report` (by service + transaction code)
// when it is provided — unresolvable rows key on "<service>.<method>".
InterfaceCatalog BuildDefaultCatalog(
    const analysis::AnalysisReport* report = nullptr);

}  // namespace jgre::detect

#endif  // JGRE_DETECT_CATALOG_H_
