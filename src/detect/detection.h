// Detection — the typed finding record every hunt emits.
//
// A Detection names the IPC interface (or victim runtime) it accuses, how
// sure the hunt is, and carries the evidence that justifies the accusation in
// full: a static taint witness path, a slice of the observed trace, and/or a
// concrete fuzz reproducer sequence. Evidence is never summarized into a
// string — the fuser joins detections on interface identity and *upgrades*
// certainty when independent evidence modalities corroborate, so the
// provenance must survive the join intact.
#ifndef JGRE_DETECT_DETECTION_H_
#define JGRE_DETECT_DETECTION_H_

#include <string>
#include <string_view>
#include <vector>

#include "analysis/taint/witness.h"
#include "fuzz/sequence.h"
#include "harness/json.h"
#include "obs/event.h"

namespace jgre::detect {

// The certainty lattice. Strictly ordered: fusion only ever moves a finding
// up (monotone upgrade), never down — a weak corroboration cannot launder a
// confirmed finding back into a hypothesis.
enum class Certainty {
  kHypothetical = 0,  // pattern match, no concrete evidence yet
  kWeak,              // one indirect signal (e.g. a trace anomaly)
  kStrong,            // direct evidence from one modality (witness, incident)
  kConfirmed,         // reproduced end-to-end (oracle-confirmed exhaustion)
};

std::string_view CertaintyName(Certainty certainty);

inline bool operator<(Certainty a, Certainty b) {
  return static_cast<int>(a) < static_cast<int>(b);
}

// Raises `c` by `levels` steps, saturating at kConfirmed.
Certainty RaiseCertainty(Certainty c, int levels);

// A contiguous window of observed TraceEvents attached as evidence. Events
// are copies (48-byte PODs): the slice stays valid after the bus, probe, or
// device that produced it is gone.
struct TraceSlice {
  std::vector<obs::TraceEvent> events;

  bool empty() const { return events.empty(); }
  std::size_t size() const { return events.size(); }
};

// One finding from one hunt.
struct Detection {
  std::string hunt;          // emitting hunt's id
  // Interface identity — the fusion key. `interface_id` is the code-model
  // method id when the hunt knows it; hunts that only see a victim runtime
  // (defense-side) key on "<service>.<method>" synthesized from the dominant
  // IPC type instead.
  std::string interface_id;
  std::string service;
  std::string method;
  Certainty certainty = Certainty::kHypothetical;
  std::string note;  // one-line human rationale (never parsed)
  double growth_per_call = 0.0;  // JGR growth rate when the hunt measured one

  // Provenance, by modality. Empty members mean "this modality contributed
  // nothing"; has_*() below are the presence checks the contract keys on.
  analysis::taint::WitnessPath witness;  // static: entry -> ... -> IRT::Add
  TraceSlice trace;                      // dynamic: observed event window
  fuzz::Sequence reproducer;             // fuzz: replayable call sequence

  bool has_witness() const { return !witness.empty(); }
  bool has_trace() const { return !trace.empty(); }
  bool has_reproducer() const { return !reproducer.calls.empty(); }
  int evidence_modalities() const {
    return (has_witness() ? 1 : 0) + (has_trace() ? 1 : 0) +
           (has_reproducer() ? 1 : 0);
  }

  // The identity detections fuse on: the interface when known, else the
  // service-scoped synthesized name.
  std::string FusionKey() const {
    return interface_id.empty() ? service + "." + method : interface_id;
  }

  // Full JSON rendering, provenance included (witness frames, trace event
  // labels, reproducer call list). Deterministic: field order is fixed.
  harness::Json ToJson() const;
};

}  // namespace jgre::detect

#endif  // JGRE_DETECT_DETECTION_H_
