// The standard hunt battery.
//
// Three port the pipeline's existing verdict logic behind the Hunt interface
// (the four sift rules, the fuzz oracle's screen/confirm bars, the
// defender's alarm-report check) — each is pinned by tests to reproduce the
// legacy verdicts exactly on the 57-interface census. Two are new detectors
// for the follow-up work's evasion patterns (arXiv 2405.00526): slow-drip
// retention that stays under the monitor's alarm threshold, and
// death-recipient/weak-reference churn that grows nothing net but burns the
// victim's table bandwidth through one interface.
#ifndef JGRE_DETECT_HUNTS_H_
#define JGRE_DETECT_HUNTS_H_

#include <string_view>
#include <vector>

#include "detect/hunt.h"

namespace jgre::detect {

// Port of the static sifter: re-derives the four sift rules plus the
// signature-permission filter from the analyzed interfaces' typed facts and
// accuses every risky interface the rules leave standing. Candidates with a
// taint witness are kStrong; a legacy (witness-free) report yields
// kHypothetical.
class SiftRuleHunt : public Hunt {
 public:
  std::string_view id() const override { return "static.sift-rules"; }
  std::string_view description() const override {
    return "risky IPC interfaces surviving the four sift rules";
  }
  SourceMask required_sources() const override {
    return MaskOf(DataSource::kAnalysis);
  }
  std::vector<Detection> Run(const DataSources& sources,
                             const Scope& scope) const override;

  // The rule evaluation itself, exposed for the golden cross-check: on every
  // risky interface this must agree with AnalyzedInterface::sift_reason.
  static analysis::SiftReason Classify(const analysis::AnalyzedInterface&);
};

// Port of the two-stage fuzz oracle: re-judges each campaign finding's
// confirmed growth rate against the oracle's confirm bar (kConfirmed) or, if
// it only clears the permissive screen bar, kStrong. The reproducer is the
// finding's minimized homogeneous witness sequence.
class ExhaustionOracleHunt : public Hunt {
 public:
  std::string_view id() const override { return "fuzz.exhaustion-oracle"; }
  std::string_view description() const override {
    return "fuzz findings re-judged at the oracle's confirm bar";
  }
  SourceMask required_sources() const override {
    return MaskOf(DataSource::kFuzzFindings);
  }
  std::vector<Detection> Run(const DataSources& sources,
                             const Scope& scope) const override;
};

// Port of the defender's alarm-report check: one detection per incident
// report, carrying the victim's JGR trace window between alarm and report as
// provenance and attributing the interface via the top-ranked caller's
// dominant IPC type.
class AlarmReportHunt : public Hunt {
 public:
  std::string_view id() const override { return "defense.alarm-report"; }
  std::string_view description() const override {
    return "monitor alarm-to-report incidents with ranked attribution";
  }
  SourceMask required_sources() const override {
    return MaskOf(DataSource::kDefender) | MaskOf(DataSource::kTraceEvents);
  }
  std::vector<Detection> Run(const DataSources& sources,
                             const Scope& scope) const override;
};

// Protocol hunt: cross-call retention chains from the ProtocolGraph. One
// detection per distinct terminal interface, carrying the static chain
// (`A → B → sink`, the first — shortest-from-its-mint — chain the canonical
// enumeration reaches it by) in the note, the terminal's taint witness as
// provenance, and — when the run also supplies fuzz findings — the confirmed
// reproducer for the terminal, fused into the same detection. Requires the
// protocol-graph modality explicitly, so analysis-only runs (the census's
// static pass) never see it.
class ProtocolChainHunt : public Hunt {
 public:
  std::string_view id() const override { return "protocol.cross-call-retention"; }
  std::string_view description() const override {
    return "multi-transaction retention chains over minted values";
  }
  SourceMask required_sources() const override {
    return MaskOf(DataSource::kAnalysis) | MaskOf(DataSource::kProtocolGraph);
  }
  std::vector<Detection> Run(const DataSources& sources,
                             const Scope& scope) const override;
};

// Follow-up hunt: sustained net JGR retention at a creation rate low enough
// that the threshold monitor never alarms (the slow-drip evasion profile).
// Fires only when no incident was raised — a raised incident is the alarm
// hunt's finding — and the victim's table stayed under the alarm threshold.
class SlowDripHunt : public Hunt {
 public:
  struct Tuning {
    std::int64_t min_net_growth = 128;   // retained entries over the run
    std::int64_t strong_net_growth = 2048;
    double max_adds_per_sec = 512.0;     // above this it is a flood, not a drip
    DurationUs min_span_us = 1'000'000;  // rate needs a meaningful window
  };

  SlowDripHunt() = default;
  explicit SlowDripHunt(Tuning tuning) : tuning_(tuning) {}

  std::string_view id() const override { return "followup.slow-drip"; }
  std::string_view description() const override {
    return "sustained sub-alarm-threshold JGR retention";
  }
  SourceMask required_sources() const override {
    return MaskOf(DataSource::kTraceEvents);
  }
  std::vector<Detection> Run(const DataSources& sources,
                             const Scope& scope) const override;

 private:
  Tuning tuning_;
};

// Follow-up hunt: death-recipient/weak-reference churn — JGR creations and
// releases both high and nearly balanced, concentrated on one IPC interface
// from one caller (a flooded replace-single or register/unregister slot).
// Net table growth is ~zero, so neither the threshold monitor nor the
// exhaustion oracle ever fires; the signature is the balance plus the
// concentration.
class DeathRecipientChurnHunt : public Hunt {
 public:
  struct Tuning {
    std::int64_t min_adds = 512;          // total victim JGR creations
    double min_remove_ratio = 0.85;       // removes/adds balance
    std::int64_t max_net_growth = 128;    // |net| above this is retention
    std::int64_t min_top_calls = 256;     // calls from the dominant pair
    double min_concentration = 0.5;       // dominant pair's share of IPC
  };

  DeathRecipientChurnHunt() = default;
  explicit DeathRecipientChurnHunt(Tuning tuning) : tuning_(tuning) {}

  std::string_view id() const override { return "followup.death-churn"; }
  std::string_view description() const override {
    return "balanced add/remove churn concentrated on one interface";
  }
  SourceMask required_sources() const override {
    return MaskOf(DataSource::kTraceEvents);
  }
  std::vector<Detection> Run(const DataSources& sources,
                             const Scope& scope) const override;

 private:
  Tuning tuning_;
};

}  // namespace jgre::detect

#endif  // JGRE_DETECT_HUNTS_H_
