#include "detect/registry.h"

#include "common/strings.h"
#include "detect/hunts.h"

namespace jgre::detect {

std::string_view DataSourceName(DataSource source) {
  switch (source) {
    case DataSource::kCodeModel:
      return "code_model";
    case DataSource::kAnalysis:
      return "analysis";
    case DataSource::kTraceEvents:
      return "trace_events";
    case DataSource::kFuzzFindings:
      return "fuzz_findings";
    case DataSource::kDefender:
      return "defender";
    case DataSource::kProtocolGraph:
      return "protocol_graph";
  }
  return "?";
}

JgrActivity FoldJgrActivity(const obs::TraceEvent* events, std::size_t count,
                            std::int32_t victim_pid) {
  JgrActivity activity;
  bool first = true;
  for (std::size_t i = 0; i < count; ++i) {
    const obs::TraceEvent& event = events[i];
    if (event.category != obs::Category::kJgr || event.pid != victim_pid) {
      continue;
    }
    // Weak-table mutations carry the *weak* count in arg0; folding them here
    // would corrupt the strong-table trajectory the hunts reason over.
    if (event.name == obs::LabelIdOf(obs::Label::kJgrWeakAdd) ||
        event.name == obs::LabelIdOf(obs::Label::kJgrWeakRemove)) {
      continue;
    }
    const std::uint64_t after = static_cast<std::uint64_t>(event.arg0);
    if (first) {
      activity.first_count = after;
      activity.first_ts_us = event.ts_us;
      first = false;
    }
    activity.last_count = after;
    activity.last_ts_us = event.ts_us;
    if (after > activity.peak_count) activity.peak_count = after;
    if (event.name == obs::LabelIdOf(obs::Label::kJgrAdd)) {
      ++activity.adds;
    } else if (event.name == obs::LabelIdOf(obs::Label::kJgrRemove)) {
      ++activity.removes;
    }
  }
  return activity;
}

Status HuntRegistry::Register(std::unique_ptr<Hunt> hunt) {
  if (hunt == nullptr) return InvalidArgument("HuntRegistry: null hunt");
  if (Find(hunt->id()) != nullptr) {
    return InvalidArgument(
        StrCat("HuntRegistry: duplicate hunt id '", hunt->id(), "'"));
  }
  hunts_.push_back(std::move(hunt));
  return Status::Ok();
}

const Hunt* HuntRegistry::Find(std::string_view id) const {
  for (const std::unique_ptr<Hunt>& hunt : hunts_) {
    if (hunt->id() == id) return hunt.get();
  }
  return nullptr;
}

std::vector<Detection> HuntRegistry::RunAll(
    const DataSources& sources, const Scope& scope,
    std::vector<HuntRunStats>* stats) const {
  const SourceMask available = sources.available();
  std::vector<Detection> out;
  for (const std::unique_ptr<Hunt>& hunt : hunts_) {
    HuntRunStats run;
    run.hunt = std::string(hunt->id());
    const SourceMask required = hunt->required_sources();
    run.missing = static_cast<SourceMask>(required & ~available);
    run.ran = run.missing == 0;
    if (run.ran) {
      std::vector<Detection> found = hunt->Run(sources, scope);
      run.detections = found.size();
      for (Detection& d : found) out.push_back(std::move(d));
    }
    if (stats != nullptr) stats->push_back(std::move(run));
  }
  return out;
}

HuntRegistry HuntRegistry::WithDefaultHunts() {
  HuntRegistry registry;
  // Ids are unique by construction; Register cannot fail here.
  (void)registry.Register(std::make_unique<SiftRuleHunt>());
  (void)registry.Register(std::make_unique<ExhaustionOracleHunt>());
  (void)registry.Register(std::make_unique<ProtocolChainHunt>());
  (void)registry.Register(std::make_unique<AlarmReportHunt>());
  (void)registry.Register(std::make_unique<SlowDripHunt>());
  (void)registry.Register(std::make_unique<DeathRecipientChurnHunt>());
  return registry;
}

}  // namespace jgre::detect
