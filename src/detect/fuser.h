// DetectionFuser — joins detections on interface identity and ranks them.
//
// Independent hunts accusing the same interface are one finding, not N: the
// fuser groups on Detection::FusionKey() and upgrades certainty monotonically
// — the fused level starts at the group's maximum and gains one lattice step
// per *additional* evidence modality beyond the first (a static witness, an
// observed trace window, and a fuzz reproducer are three independent ways to
// be right), saturating at kConfirmed. Corroboration can only raise a
// finding; a weak extra signal never lowers one.
#ifndef JGRE_DETECT_FUSER_H_
#define JGRE_DETECT_FUSER_H_

#include <string>
#include <vector>

#include "detect/detection.h"
#include "harness/json.h"

namespace jgre::detect {

// One fused, ranked finding: every detection that named the interface, the
// union of their evidence, and the upgraded certainty.
struct RankedFinding {
  std::string key;  // the fusion key the group joined on
  std::string service;
  std::string method;
  Certainty certainty = Certainty::kHypothetical;  // fused (upgraded) level
  Certainty base_certainty = Certainty::kHypothetical;  // max before upgrade
  bool has_witness = false;
  bool has_trace = false;
  bool has_reproducer = false;
  std::vector<Detection> detections;  // canonical (hunt id) order in Ranked()

  int evidence_modalities() const {
    return (has_witness ? 1 : 0) + (has_trace ? 1 : 0) +
           (has_reproducer ? 1 : 0);
  }
  harness::Json ToJson() const;
};

class DetectionFuser {
 public:
  void Add(Detection detection);
  void Add(std::vector<Detection> detections) {
    for (Detection& d : detections) Add(std::move(d));
  }

  std::size_t size() const { return groups_.size(); }

  // The fused findings, ranked: certainty descending, then evidence-modality
  // count descending, then key ascending. Both the group order and the
  // within-group detection order (sorted by hunt id) are independent of the
  // Add() order, so the ranked JSON is byte-stable.
  std::vector<RankedFinding> Ranked() const;

 private:
  // Insertion-ordered groups (std::map would also be deterministic, but the
  // group count is small and Ranked() re-sorts anyway).
  std::vector<RankedFinding> groups_;
};

}  // namespace jgre::detect

#endif  // JGRE_DETECT_FUSER_H_
