#include "detect/fuser.h"

#include <algorithm>

namespace jgre::detect {

harness::Json RankedFinding::ToJson() const {
  harness::Json j = harness::Json::Object();
  j.Set("key", key);
  j.Set("service", service);
  j.Set("method", method);
  j.Set("certainty", CertaintyName(certainty));
  j.Set("base_certainty", CertaintyName(base_certainty));
  j.Set("has_witness", has_witness);
  j.Set("has_trace", has_trace);
  j.Set("has_reproducer", has_reproducer);
  harness::Json hunts = harness::Json::Array();
  for (const Detection& d : detections) hunts.Push(d.hunt);
  j.Set("hunts", std::move(hunts));
  harness::Json dets = harness::Json::Array();
  for (const Detection& d : detections) dets.Push(d.ToJson());
  j.Set("detections", std::move(dets));
  return j;
}

void DetectionFuser::Add(Detection detection) {
  const std::string key = detection.FusionKey();
  RankedFinding* group = nullptr;
  for (RankedFinding& g : groups_) {
    if (g.key == key) {
      group = &g;
      break;
    }
  }
  if (group == nullptr) {
    groups_.emplace_back();
    group = &groups_.back();
    group->key = key;
    group->service = detection.service;
    group->method = detection.method;
  }
  group->has_witness = group->has_witness || detection.has_witness();
  group->has_trace = group->has_trace || detection.has_trace();
  group->has_reproducer =
      group->has_reproducer || detection.has_reproducer();
  if (group->base_certainty < detection.certainty) {
    group->base_certainty = detection.certainty;
  }
  group->detections.push_back(std::move(detection));
}

std::vector<RankedFinding> DetectionFuser::Ranked() const {
  std::vector<RankedFinding> out = groups_;
  for (RankedFinding& group : out) {
    // Monotone upgrade: the strongest single accusation, raised one lattice
    // step per extra corroborating modality beyond the first.
    group.certainty = RaiseCertainty(group.base_certainty,
                                     group.evidence_modalities() - 1);
    // Canonical within-group order (hunt ids are unique per group in
    // practice; ties keep Add order), so the ranked JSON is byte-stable no
    // matter which order the modalities reported in.
    std::stable_sort(group.detections.begin(), group.detections.end(),
                     [](const Detection& a, const Detection& b) {
                       return a.hunt < b.hunt;
                     });
  }
  std::sort(out.begin(), out.end(),
            [](const RankedFinding& a, const RankedFinding& b) {
              if (a.certainty != b.certainty) return b.certainty < a.certainty;
              const int am = a.evidence_modalities();
              const int bm = b.evidence_modalities();
              if (am != bm) return am > bm;
              return a.key < b.key;
            });
  return out;
}

}  // namespace jgre::detect
