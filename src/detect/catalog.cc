#include "detect/catalog.h"

#include "attack/vuln_registry.h"
#include "common/strings.h"
#include "services/safe_service.h"

namespace jgre::detect {

namespace {

std::string Key(std::string_view descriptor, std::uint32_t code) {
  return StrCat(descriptor, "#", code);
}

const analysis::AnalyzedInterface* FindAnalyzed(
    const analysis::AnalysisReport& report, const std::string& service,
    std::uint32_t code) {
  for (const analysis::AnalyzedInterface& iface : report.interfaces) {
    if (iface.service == service && iface.transaction_code == code) {
      return &iface;
    }
  }
  return nullptr;
}

}  // namespace

void InterfaceCatalog::Add(std::string_view descriptor, std::uint32_t code,
                           CatalogEntry entry) {
  entries_[Key(descriptor, code)] = std::move(entry);
}

const CatalogEntry* InterfaceCatalog::Resolve(std::string_view descriptor,
                                              std::uint32_t code) const {
  const auto it = entries_.find(Key(descriptor, code));
  return it == entries_.end() ? nullptr : &it->second;
}

InterfaceCatalog BuildDefaultCatalog(const analysis::AnalysisReport* report) {
  InterfaceCatalog catalog;
  const auto add = [&](const std::string& descriptor, std::uint32_t code,
                       const std::string& service, const std::string& method) {
    CatalogEntry entry;
    entry.service = service;
    entry.method = method;
    const analysis::AnalyzedInterface* iface =
        report == nullptr ? nullptr : FindAnalyzed(*report, service, code);
    entry.interface_id =
        iface != nullptr ? iface->id : StrCat(service, ".", method);
    catalog.Add(descriptor, code, std::move(entry));
  };
  for (const attack::VulnSpec& vuln : attack::AllVulnerabilities()) {
    add(vuln.descriptor, vuln.code, vuln.service, vuln.interface);
  }
  // The generic safe services share one transaction layout (safe_service.h).
  using Safe = services::GenericSafeService;
  const std::pair<std::uint32_t, const char*> kSafeMethods[] = {
      {Safe::TRANSACTION_query, "query"},
      {Safe::TRANSACTION_oneShot, "oneShot"},
      {Safe::TRANSACTION_setCallback, "setCallback"},
      {Safe::TRANSACTION_registerObserver, "registerObserver"},
      {Safe::TRANSACTION_addFile, "addFile"},
  };
  for (const std::string& name : Safe::SafeServiceNames()) {
    const std::string descriptor = StrCat("android.os.I", name, "Service");
    for (const auto& [code, method] : kSafeMethods) {
      add(descriptor, code, name, method);
    }
  }
  return catalog;
}

}  // namespace jgre::detect
