// Hunt — one detection strategy over whatever evidence a run produced.
//
// The registry pattern (hunt libraries like BLUESPAWN popularized it for
// host-based detection) adapted to the JGRE pipeline: each hunt declares the
// DataSources it needs — the static analysis report, the observed trace, the
// fuzz campaign's findings, the live defender — and the HuntRegistry
// schedules exactly the hunts whose requirements the run can satisfy. A
// static-only run executes the sift-rule hunt; a fleet device run executes
// the trace-driven hunts; a full census run executes all of them and fuses.
//
// Hunts are pure functions of their sources: same sources, same detections,
// in a deterministic order — the property that keeps BENCH_detect.json
// byte-identical for any --jobs.
#ifndef JGRE_DETECT_HUNT_H_
#define JGRE_DETECT_HUNT_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/pipeline.h"
#include "analysis/protocol/protocol_graph.h"
#include "common/types.h"
#include "defense/jgre_defender.h"
#include "detect/catalog.h"
#include "detect/detection.h"
#include "fuzz/campaign.h"
#include "fuzz/oracle.h"
#include "model/code_model.h"
#include "obs/event.h"

namespace jgre::detect {

// The evidence modalities a run can supply. A hunt's required_sources() is a
// mask over these; the registry runs a hunt iff every required bit is
// available.
enum class DataSource : std::uint8_t {
  kCodeModel = 0,   // model::CodeModel
  kAnalysis,        // analysis::AnalysisReport (taint summaries + witnesses)
  kTraceEvents,     // an observed TraceEvent window (+ JGR activity stats)
  kFuzzFindings,    // fuzz::Finding list from a campaign
  kDefender,        // live defense::JgreDefender (incident reports)
  kProtocolGraph,   // analysis::protocol::ProtocolGraph (cross-call chains)
};

using SourceMask = std::uint8_t;

constexpr SourceMask MaskOf(DataSource source) {
  return static_cast<SourceMask>(1u << static_cast<unsigned>(source));
}

std::string_view DataSourceName(DataSource source);

// What part of the system a run asks the hunts to look at. Empty sets admit
// everything — the default scope is the whole device.
struct Scope {
  std::set<std::string> services;  // service-manager names
  std::set<Uid> uids;              // suspected caller uids

  bool AdmitsService(const std::string& service) const {
    return services.empty() || services.count(service) > 0;
  }
  bool AdmitsUid(Uid uid) const { return uids.empty() || uids.count(uid) > 0; }
};

// Full-run aggregates over a victim runtime's JGR stream. The trace window
// handed to hunts is bounded (a ring of the most recent events), so rates
// and net growth are computed from these full-stream counters, never from
// the window — the window is provenance, not the measurement.
struct JgrActivity {
  std::int64_t adds = 0;
  std::int64_t removes = 0;
  std::uint64_t first_count = 0;  // table size at the first observed event
  std::uint64_t last_count = 0;   // ... and at the last
  std::uint64_t peak_count = 0;
  TimeUs first_ts_us = 0;
  TimeUs last_ts_us = 0;

  bool empty() const { return adds == 0 && removes == 0; }
  std::int64_t net_growth() const {
    return static_cast<std::int64_t>(last_count) -
           static_cast<std::int64_t>(first_count);
  }
  DurationUs span_us() const {
    return last_ts_us > first_ts_us ? last_ts_us - first_ts_us : 0;
  }
  // Observed JGR creations per second of victim time (0 for an empty span).
  double adds_per_sec() const {
    const DurationUs span = span_us();
    return span == 0 ? 0.0
                     : static_cast<double>(adds) * 1e6 /
                           static_cast<double>(span);
  }
};

// Folds a victim's kJgr events into activity counters (tests and consumers
// without a streaming probe; the fleet's DeviceProbe accumulates the same
// counters incrementally over the full run).
JgrActivity FoldJgrActivity(const obs::TraceEvent* events, std::size_t count,
                            std::int32_t victim_pid);

// Everything a run can hand to its hunts. Raw pointers are non-owning and
// may be null — available() reports which modalities are actually present,
// and the registry never runs a hunt whose requirements are missing.
struct DataSources {
  const model::CodeModel* code_model = nullptr;
  const analysis::AnalysisReport* analysis = nullptr;

  // The observed trace window (any categories; hunts filter) plus the
  // victim's full-stream JGR activity.
  const obs::TraceEvent* trace_events = nullptr;
  std::size_t trace_event_count = 0;
  JgrActivity jgr_activity;
  std::int32_t victim_pid = -1;
  std::string victim_name;

  const std::vector<fuzz::Finding>* fuzz_findings = nullptr;
  const fuzz::Oracle* oracle = nullptr;  // the bars findings were judged at

  const defense::JgreDefender* defender = nullptr;

  // Cross-transaction dataflow graph built from the same analysis report.
  // Chains index into analysis->interfaces, so a run wiring `protocol` must
  // wire the matching `analysis` (the registry enforces this by mask).
  const analysis::protocol::ProtocolGraph* protocol = nullptr;

  // Resolves an interned descriptor id (the high half of a kIpc event's
  // type key) back to the interface string. Bound to the run's binder driver
  // when IPC attribution is possible.
  std::function<std::string(std::uint32_t)> descriptor_name;
  // Optional (descriptor, code) -> interface identity table. With it, trace
  // hunts accuse the same code-model ids the static/fuzz hunts use, so the
  // fuser can join across modalities; without it they key on
  // "<descriptor>#<code>".
  const InterfaceCatalog* catalog = nullptr;

  SourceMask available() const {
    SourceMask mask = 0;
    if (code_model != nullptr) mask |= MaskOf(DataSource::kCodeModel);
    if (analysis != nullptr) mask |= MaskOf(DataSource::kAnalysis);
    if (trace_events != nullptr) mask |= MaskOf(DataSource::kTraceEvents);
    if (fuzz_findings != nullptr) mask |= MaskOf(DataSource::kFuzzFindings);
    if (defender != nullptr) mask |= MaskOf(DataSource::kDefender);
    if (protocol != nullptr) mask |= MaskOf(DataSource::kProtocolGraph);
    return mask;
  }
};

// One detection strategy. Implementations are stateless between runs: Run()
// must be const and a pure function of (sources, scope).
class Hunt {
 public:
  virtual ~Hunt() = default;

  // Stable id, "<layer>.<name>" ("static.sift-rules", "followup.slow-drip").
  // Registry keys, fleet census counters, and JSON output all use it.
  virtual std::string_view id() const = 0;
  virtual std::string_view description() const = 0;
  virtual SourceMask required_sources() const = 0;

  virtual std::vector<Detection> Run(const DataSources& sources,
                                     const Scope& scope) const = 0;
};

}  // namespace jgre::detect

#endif  // JGRE_DETECT_HUNT_H_
