#include "detect/hunts.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>

#include "common/strings.h"

namespace jgre::detect {

namespace {

// Provenance slices are bounded so a detection stays a record, not a dump.
constexpr std::size_t kMaxSliceEvents = 64;

bool IsVictimJgr(const obs::TraceEvent& event, std::int32_t victim_pid) {
  return event.category == obs::Category::kJgr && event.pid == victim_pid;
}

bool IsVictimIpc(const obs::TraceEvent& event, std::int32_t victim_pid) {
  return event.category == obs::Category::kIpc && event.arg0 == victim_pid;
}

bool IsAppUid(std::int32_t uid) { return uid >= kFirstAppUid.value(); }

// The newest `kMaxSliceEvents` events satisfying `keep`, in stream order.
template <typename Pred>
TraceSlice TailSlice(const DataSources& sources, Pred keep) {
  TraceSlice slice;
  std::size_t matched = 0;
  for (std::size_t i = 0; i < sources.trace_event_count; ++i) {
    if (keep(sources.trace_events[i])) ++matched;
  }
  std::size_t skip = matched > kMaxSliceEvents ? matched - kMaxSliceEvents : 0;
  for (std::size_t i = 0; i < sources.trace_event_count; ++i) {
    const obs::TraceEvent& event = sources.trace_events[i];
    if (!keep(event)) continue;
    if (skip > 0) {
      --skip;
      continue;
    }
    slice.events.push_back(event);
  }
  return slice;
}

// The app caller + IPC type pair dominating the victim-directed traffic in
// the observed window, plus the window's app-call total (for concentration).
struct DominantPair {
  std::int32_t uid = -1;
  std::uint64_t type_key = 0;
  std::int64_t calls = 0;
  std::int64_t total_app_calls = 0;

  bool valid() const { return uid >= 0; }
};

DominantPair FindDominantPair(const DataSources& sources,
                              std::int32_t only_uid = -1) {
  std::map<std::pair<std::int32_t, std::uint64_t>, std::int64_t> counts;
  DominantPair out;
  for (std::size_t i = 0; i < sources.trace_event_count; ++i) {
    const obs::TraceEvent& event = sources.trace_events[i];
    if (!IsVictimIpc(event, sources.victim_pid)) continue;
    if (!IsAppUid(event.uid)) continue;
    ++out.total_app_calls;
    if (only_uid >= 0 && event.uid != only_uid) continue;
    ++counts[{event.uid, static_cast<std::uint64_t>(event.arg1)}];
  }
  // Ordered map: ties resolve to the smallest (uid, type) deterministically.
  for (const auto& [pair, count] : counts) {
    if (count > out.calls) {
      out.uid = pair.first;
      out.type_key = pair.second;
      out.calls = count;
    }
  }
  return out;
}

// Names the accused interface from an IPC type key, through the catalog when
// one is wired up.
void AttributeInterface(const DataSources& sources, std::uint64_t type_key,
                        Detection* detection) {
  const std::uint32_t descriptor_id =
      static_cast<std::uint32_t>(type_key >> 32);
  const std::uint32_t code = static_cast<std::uint32_t>(type_key);
  std::string descriptor;
  if (sources.descriptor_name) descriptor = sources.descriptor_name(descriptor_id);
  const CatalogEntry* entry =
      sources.catalog != nullptr && !descriptor.empty()
          ? sources.catalog->Resolve(descriptor, code)
          : nullptr;
  if (entry != nullptr) {
    detection->interface_id = entry->interface_id;
    detection->service = entry->service;
    detection->method = entry->method;
    return;
  }
  detection->service =
      descriptor.empty() ? StrCat("descriptor:", descriptor_id) : descriptor;
  detection->method = StrCat("code", code);
}

// The victim's full-stream JGR activity: the precomputed counters when the
// run supplied them, else folded from the window itself.
JgrActivity ActivityOf(const DataSources& sources) {
  if (!sources.jgr_activity.empty()) return sources.jgr_activity;
  return FoldJgrActivity(sources.trace_events, sources.trace_event_count,
                         sources.victim_pid);
}

std::size_t AlarmThresholdOf(const DataSources& sources) {
  if (sources.defender != nullptr) {
    return sources.defender->config().monitor.alarm_threshold;
  }
  return defense::JgrMonitor::Config{}.alarm_threshold;
}

}  // namespace

// --- SiftRuleHunt ------------------------------------------------------------

analysis::SiftReason SiftRuleHunt::Classify(
    const analysis::AnalyzedInterface& iface) {
  using analysis::SiftReason;
  if (!iface.risky) return SiftReason::kNone;
  // Rule 1: every reached JGR entry is thread creation, and no binder is
  // received — the reference dies with the started thread.
  if (iface.only_creates_thread && !iface.takes_binder) {
    return SiftReason::kRule1ThreadOnly;
  }
  // Rules 2-4 over the interface's transitive retention kind.
  switch (iface.retention) {
    case analysis::taint::Retention::kTransient:
      return SiftReason::kRule2Transient;
    case analysis::taint::Retention::kReadOnlyKey:
      return SiftReason::kRule3ReadOnlyKey;
    case analysis::taint::Retention::kMemberSlot:
      return SiftReason::kRule4MemberSlot;
    case analysis::taint::Retention::kCollection:
    case analysis::taint::Retention::kNone:
      break;  // retained (or unknown): stays a candidate
  }
  // Permission filter: unreachable from third-party apps.
  if (iface.permission_level == model::PermissionLevel::kSignature) {
    return SiftReason::kSignaturePermission;
  }
  return SiftReason::kNone;
}

std::vector<Detection> SiftRuleHunt::Run(const DataSources& sources,
                                         const Scope& scope) const {
  std::vector<Detection> out;
  for (const analysis::AnalyzedInterface& iface :
       sources.analysis->interfaces) {
    if (!iface.risky || !scope.AdmitsService(iface.service)) continue;
    if (Classify(iface) != analysis::SiftReason::kNone) continue;
    Detection d;
    d.hunt = std::string(id());
    d.interface_id = iface.id;
    d.service = iface.service;
    d.method = iface.method;
    d.witness = iface.witness;
    d.certainty =
        d.has_witness() ? Certainty::kStrong : Certainty::kHypothetical;
    d.note = StrCat("risky, unsifted",
                    iface.permission.empty()
                        ? std::string()
                        : StrCat(" (needs ", iface.permission, ")"));
    out.push_back(std::move(d));
  }
  return out;
}

// --- ExhaustionOracleHunt ----------------------------------------------------

std::vector<Detection> ExhaustionOracleHunt::Run(const DataSources& sources,
                                                 const Scope& scope) const {
  // The campaign's bars when the run hands us its oracle; the shared default
  // growth thresholds otherwise.
  static const fuzz::Oracle kDefaultOracle;
  const fuzz::Oracle& oracle =
      sources.oracle != nullptr ? *sources.oracle : kDefaultOracle;
  const fuzz::OracleBar confirm = oracle.ConfirmBar();
  const fuzz::OracleBar screen = oracle.ScreenBar();

  std::vector<Detection> out;
  for (const fuzz::Finding& finding : *sources.fuzz_findings) {
    if (!scope.AdmitsService(finding.service)) continue;
    double confirm_rate = 0.0;
    double screen_rate = 0.0;
    switch (finding.kind) {
      case fuzz::ExhaustionKind::kJgr:
        confirm_rate = confirm.jgr_rate;
        screen_rate = screen.jgr_rate;
        break;
      case fuzz::ExhaustionKind::kFd:
        confirm_rate = confirm.fd_rate;
        screen_rate = screen.fd_rate;
        break;
      case fuzz::ExhaustionKind::kAbort:
      case fuzz::ExhaustionKind::kNone:
        break;
    }
    Detection d;
    d.hunt = std::string(id());
    d.interface_id = finding.id;
    d.service = finding.service;
    d.method = finding.method;
    d.growth_per_call = finding.growth_per_call;
    if (finding.victim_aborted ||
        finding.kind == fuzz::ExhaustionKind::kAbort) {
      d.certainty = Certainty::kConfirmed;
      d.note = "victim aborted during the confirmation probe";
    } else if (finding.kind == fuzz::ExhaustionKind::kNone) {
      continue;  // a campaign never emits these; nothing to accuse
    } else if (finding.growth_per_call >= confirm_rate) {
      d.certainty = Certainty::kConfirmed;
      d.note = StrCat(fuzz::ExhaustionKindName(finding.kind),
                      " at the confirm bar");
    } else if (finding.growth_per_call >= screen_rate) {
      d.certainty = Certainty::kStrong;
      d.note = StrCat(fuzz::ExhaustionKindName(finding.kind),
                      " at the screen bar only");
    } else {
      continue;  // below even the screen bar: not a finding we stand behind
    }
    // The minimized homogeneous witness, replayable as-is.
    const int calls = std::max(finding.minimized_calls, 1);
    d.reproducer.calls.assign(static_cast<std::size_t>(calls),
                              finding.witness);
    out.push_back(std::move(d));
  }
  return out;
}

// --- ProtocolChainHunt -------------------------------------------------------

std::vector<Detection> ProtocolChainHunt::Run(const DataSources& sources,
                                              const Scope& scope) const {
  const analysis::AnalysisReport& report = *sources.analysis;
  const analysis::protocol::ProtocolGraph& graph = *sources.protocol;

  std::vector<Detection> out;
  std::set<std::size_t> accused;
  for (const analysis::protocol::ProtocolChain& chain : graph.chains()) {
    const std::size_t terminal = chain.entries.back();
    if (!accused.insert(terminal).second) continue;
    const analysis::AnalyzedInterface& sink = report.interfaces[terminal];
    if (!scope.AdmitsService(sink.service)) continue;

    Detection d;
    d.hunt = std::string(id());
    d.interface_id = sink.id;
    d.service = sink.service;
    d.method = sink.method;
    // The static chain as provenance: the minted domains hopped and the
    // entry path A → B → sink, plus the terminal's own taint witness down to
    // IndirectReferenceTable::Add.
    std::string path;
    for (std::size_t j = 0; j < chain.entries.size(); ++j) {
      if (j > 0) path += " \xe2\x86\x92 ";  // " → "
      path += report.interfaces[chain.entries[j]].id;
    }
    const analysis::protocol::ProtocolEdge& last =
        graph.edges()[chain.edge_ids.back()];
    d.note = StrCat("retains ", model::ValueKindName(last.kind), " minted by ",
                    chain.multi_service ? "another service" : "the same service",
                    ": ", path);
    d.witness = sink.witness;
    d.certainty = Certainty::kStrong;

    // Fuse with the campaign when the run supplies one: a confirmed finding
    // on the terminal upgrades the chain to a reproduced exhaustion.
    if (sources.fuzz_findings != nullptr) {
      for (const fuzz::Finding& finding : *sources.fuzz_findings) {
        if (finding.id != sink.id) continue;
        d.growth_per_call = finding.growth_per_call;
        d.reproducer.calls.assign(
            static_cast<std::size_t>(std::max(finding.minimized_calls, 1)),
            finding.witness);
        d.certainty = Certainty::kConfirmed;
        break;
      }
    }
    out.push_back(std::move(d));
  }
  return out;
}

// --- AlarmReportHunt ---------------------------------------------------------

std::vector<Detection> AlarmReportHunt::Run(const DataSources& sources,
                                            const Scope& scope) const {
  std::vector<Detection> out;
  for (const defense::JgreDefender::IncidentReport& incident :
       sources.defender->incidents()) {
    const defense::JgreDefender::ScoreEntry* top =
        incident.ranking.empty() ? nullptr : &incident.ranking.front();
    if (top != nullptr && !scope.AdmitsUid(top->uid)) continue;

    Detection d;
    d.hunt = std::string(id());
    // The alarm-to-report window of the victim's JGR stream (what the
    // monitor recorded), bounded to the newest events.
    d.trace = TailSlice(sources, [&](const obs::TraceEvent& event) {
      return IsVictimJgr(event, sources.victim_pid) &&
             event.ts_us >= incident.alarm_at &&
             (incident.reported_at == 0 || event.ts_us <= incident.reported_at);
    });
    if (d.trace.empty()) {
      // Window evicted from the ring: fall back to the newest victim JGR
      // events so the incident still carries observed evidence.
      d.trace = TailSlice(sources, [&](const obs::TraceEvent& event) {
        return IsVictimJgr(event, sources.victim_pid);
      });
    }
    // Attribution: the top-ranked caller's dominant IPC type.
    if (top != nullptr) {
      const DominantPair pair =
          FindDominantPair(sources, top->uid.value());
      if (pair.valid()) AttributeInterface(sources, pair.type_key, &d);
    }
    if (d.service.empty()) {
      d.service = incident.victim;
      d.method = "jgr-exhaustion";
    }
    d.certainty = d.has_trace() ? Certainty::kStrong : Certainty::kWeak;
    d.note = StrCat(
        "monitor alarm at ", incident.alarm_at, "us, reported at ",
        incident.reported_at, "us, ", incident.jgr_at_report, " JGRs",
        top == nullptr
            ? std::string()
            : StrCat("; top caller uid ", top->uid.value(), " (", top->package,
                     ", score ", top->score, ")"));
    out.push_back(std::move(d));
  }
  return out;
}

// --- SlowDripHunt ------------------------------------------------------------

std::vector<Detection> SlowDripHunt::Run(const DataSources& sources,
                                         const Scope& scope) const {
  // An incident means the monitor caught the attack — that is the alarm
  // hunt's detection, not a drip.
  if (sources.defender != nullptr &&
      !sources.defender->incidents().empty()) {
    return {};
  }
  const JgrActivity activity = ActivityOf(sources);
  const std::size_t alarm_threshold = AlarmThresholdOf(sources);
  if (activity.peak_count >= alarm_threshold) return {};  // not under the radar
  if (activity.span_us() < tuning_.min_span_us) return {};
  if (activity.net_growth() < tuning_.min_net_growth) return {};
  const double adds_per_sec = activity.adds_per_sec();
  if (adds_per_sec > tuning_.max_adds_per_sec) return {};  // a flood profile

  Detection d;
  d.hunt = std::string(id());
  const DominantPair pair = FindDominantPair(sources);
  if (pair.valid()) {
    if (!scope.AdmitsUid(Uid{pair.uid})) return {};
    AttributeInterface(sources, pair.type_key, &d);
  } else {
    d.service = sources.victim_name.empty() ? "victim" : sources.victim_name;
    d.method = "slow-drip";
  }
  if (!scope.AdmitsService(d.service)) return {};
  d.trace = TailSlice(sources, [&](const obs::TraceEvent& event) {
    return IsVictimJgr(event, sources.victim_pid);
  });
  d.certainty = activity.net_growth() >= tuning_.strong_net_growth
                    ? Certainty::kStrong
                    : Certainty::kWeak;
  d.note = StrCat("net +", activity.net_growth(), " JGRs over ",
                  activity.span_us() / 1'000'000, "s at ~",
                  static_cast<std::int64_t>(adds_per_sec),
                  " adds/s, peak ", activity.peak_count,
                  " under alarm threshold ", alarm_threshold);
  return {std::move(d)};
}

// --- DeathRecipientChurnHunt -------------------------------------------------

std::vector<Detection> DeathRecipientChurnHunt::Run(const DataSources& sources,
                                                    const Scope& scope) const {
  const JgrActivity activity = ActivityOf(sources);
  if (activity.adds < tuning_.min_adds) return {};
  const double remove_ratio =
      static_cast<double>(activity.removes) /
      static_cast<double>(activity.adds);
  if (remove_ratio < tuning_.min_remove_ratio) return {};
  const std::int64_t net = activity.net_growth();
  if (net > tuning_.max_net_growth || net < -tuning_.max_net_growth) {
    return {};
  }
  // The churn must be concentrated: one caller hammering one interface. A
  // benign population churns too, but spread across services. Concentration
  // is measured over the observed IPC window.
  const DominantPair pair = FindDominantPair(sources);
  if (!pair.valid() || pair.calls < tuning_.min_top_calls) return {};
  const double concentration =
      static_cast<double>(pair.calls) /
      static_cast<double>(pair.total_app_calls);
  if (concentration < tuning_.min_concentration) return {};
  if (!scope.AdmitsUid(Uid{pair.uid})) return {};

  Detection d;
  d.hunt = std::string(id());
  AttributeInterface(sources, pair.type_key, &d);
  if (!scope.AdmitsService(d.service)) return {};
  // Corroboration from the static layer: a member-slot (replace-single) or
  // death-linking interface makes the churn mechanism concrete.
  bool corroborated = false;
  if (sources.analysis != nullptr && !d.interface_id.empty()) {
    for (const analysis::AnalyzedInterface& iface :
         sources.analysis->interfaces) {
      if (iface.id != d.interface_id) continue;
      corroborated =
          iface.retention == analysis::taint::Retention::kMemberSlot ||
          iface.links_to_death;
      break;
    }
  }
  d.trace = TailSlice(sources, [&](const obs::TraceEvent& event) {
    return IsVictimJgr(event, sources.victim_pid) ||
           (IsVictimIpc(event, sources.victim_pid) &&
            event.uid == pair.uid &&
            static_cast<std::uint64_t>(event.arg1) == pair.type_key);
  });
  d.certainty = corroborated ? Certainty::kStrong : Certainty::kWeak;
  d.note = StrCat(activity.adds, " adds / ", activity.removes,
                  " removes (net ", net, "), uid ", pair.uid, " drove ",
                  pair.calls, " of ", pair.total_app_calls,
                  " observed app calls",
                  corroborated ? "; member-slot/death-link corroborated"
                               : "");
  return {std::move(d)};
}

}  // namespace jgre::detect
