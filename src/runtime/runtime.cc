#include "runtime/runtime.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/strings.h"
#include "obs/trace.h"

namespace jgre::rt {

namespace {
// art/runtime/jni_env_ext: kLocalsMax.
constexpr std::size_t kLocalsMax = 512;
}  // namespace

Runtime::Runtime(SimClock* clock, Config config)
    : clock_(clock),
      config_(std::move(config)),
      // ART 6 caps both tables at kGlobalsMax; scaling the weak table with
      // the configured strong cap keeps that symmetry at every fleet
      // operating point (the weakref_churn arms strategy exhausts it).
      vm_(clock, config_.name, config_.max_global_refs,
          config_.max_global_refs, config_.obs),
      locals_(kLocalsMax, IndirectRefKind::kLocal,
              StrCat(config_.name, " JNI local")) {
  // Runtime-init references (WellKnownClasses::CacheClass etc.). They are
  // held forever, so the GC never reclaims them; the paper's static analysis
  // filters the 67 native paths that only run here.
  for (std::size_t i = 0; i < config_.boot_class_refs; ++i) {
    const ObjectId cls =
        heap_.Alloc(ObjectKind::kClassRoot, StrCat("class-root#", i));
    heap_.AddHold(cls);  // pinned by the class table
    auto ref = vm_.AddGlobalRef(cls);
    (void)ref;
  }
}

Result<IndirectRef> Runtime::AddLocalRef(ObjectId obj) {
  // Overflow ("local reference table overflow (max=512)") surfaces as a
  // failed call; unlike global overflow it cannot be accumulated across
  // transactions, because PopLocalFrame wipes the segment either way.
  return locals_.Add(locals_.CurrentCookie(), obj);
}

Result<ObjectId> Runtime::GetOrCreateBinderProxy(NodeId node,
                                                 std::string_view descriptor) {
  const std::size_t node_slot = static_cast<std::size_t>(node.value());
  if (node_slot < proxy_by_node_.size() && proxy_by_node_[node_slot] != 0) {
    return ObjectId{proxy_by_node_[node_slot]};
  }
  const ObjectId proxy =
      heap_.Alloc(ObjectKind::kBinderProxy, "BinderProxy:", descriptor);
  auto ref = vm_.AddGlobalRef(proxy);
  if (!ref.ok()) {
    heap_.Free(proxy);
    return ref.status();
  }
  // libbinder's BinderProxy cache (gBinderProxyOffsets.mProxyMap) tracks the
  // proxy through a *weak* global reference — a second capped table the same
  // traffic fills.
  auto weak = vm_.AddWeakGlobalRef(proxy);
  if (!weak.ok()) {
    vm_.DeleteGlobalRef(ref.value());
    heap_.Free(proxy);
    return weak.status();
  }
  heap_.SetManagedRef(proxy, ref.value());
  heap_.SetWeakRef(proxy, weak.value());
  heap_.SetProxyNode(proxy, node);
  if (node_slot >= proxy_by_node_.size()) {
    proxy_by_node_.resize(node_slot + 1, 0);
  }
  proxy_by_node_[node_slot] = proxy.value();
  return proxy;
}

Result<ObjectId> Runtime::AllocManagedObject(ObjectKind kind,
                                             std::string_view label) {
  const ObjectId obj = heap_.Alloc(kind, label);
  auto ref = vm_.AddGlobalRef(obj);
  if (!ref.ok()) {
    heap_.Free(obj);
    return ref.status();
  }
  heap_.SetManagedRef(obj, ref.value());
  return obj;
}

Result<ObjectId> Runtime::AllocManagedObject(ObjectKind kind,
                                             std::string_view label_prefix,
                                             std::string_view label_suffix) {
  const ObjectId obj = heap_.Alloc(kind, label_prefix, label_suffix);
  auto ref = vm_.AddGlobalRef(obj);
  if (!ref.ok()) {
    heap_.Free(obj);
    return ref.status();
  }
  heap_.SetManagedRef(obj, ref.value());
  return obj;
}

std::size_t Runtime::CollectGarbage() {
  if (aborted()) return 0;
  ++gc_runs_;
  const TimeUs gc_start = clock_->NowUs();
  clock_->AdvanceUs(gc_pause_us);
  std::size_t released = 0;
  std::vector<NodeId> collected_proxies;
  // Iterate to a fixed point over the *pending* candidate transitions:
  // freeing an object can drop holds on others in richer object graphs, and
  // each such transition re-enters the candidate list. With no pending
  // transitions the sweep is O(1) — the common between-transactions case.
  for (;;) {
    heap_.TakeUnheldCandidates(&gc_candidates_);
    if (gc_candidates_.empty()) break;
    std::size_t freed_this_round = 0;
    for (ObjectId obj : gc_candidates_) {
      const HeapIndirectRef ref = heap_.ManagedRef(obj);
      if (ref == kHeapNullRef) {
        // Plain unreferenced object: just reclaim the heap slot.
        if (heap_.Kind(obj) == ObjectKind::kPlain) {
          heap_.Free(obj);
          ++freed_this_round;
        }
        continue;
      }
      vm_.DeleteGlobalRef(ref);
      if (const NodeId node = heap_.ProxyNode(obj); node.valid()) {
        collected_proxies.push_back(node);
        proxy_by_node_[static_cast<std::size_t>(node.value())] = 0;
      }
      if (const HeapIndirectRef weak = heap_.WeakRef(obj);
          weak != kHeapNullRef) {
        vm_.DeleteWeakGlobalRef(weak);
      }
      heap_.Free(obj);
      ++released;
      ++freed_this_round;
    }
    if (freed_this_round == 0) break;
  }
  if (proxy_collect_handler_) {
    for (NodeId node : collected_proxies) proxy_collect_handler_(node);
  }
  JGRE_TRACE(config_.obs.bus, obs::Category::kGc,
             obs::MakeEvent(obs::Category::kGc, obs::Label::kGcRun, gc_start,
                            config_.obs.pid, config_.obs.uid,
                            static_cast<std::int64_t>(released),
                            static_cast<std::int64_t>(vm_.GlobalRefCount()),
                            gc_pause_us));
  JGRE_LOG(kDebug, "art") << config_.name << ": GC released " << released
                          << " global refs, " << vm_.GlobalRefCount()
                          << " remain";
  return released;
}

void Runtime::SaveState(snapshot::Serializer& out) const {
  out.Marker(0x52544D32);  // "RTM2": arena-backed heap, derived proxy cache
  heap_.SaveState(out);
  vm_.SaveState(out);
  locals_.SaveState(out);
  out.I64(local_frame_depth_);
  out.I64(gc_runs_);
  out.U64(gc_pause_us);
}

void Runtime::RestoreState(snapshot::Deserializer& in) {
  in.Marker(0x52544D32);
  heap_.RestoreState(in);
  vm_.RestoreState(in);
  locals_.RestoreState(in);
  local_frame_depth_ = static_cast<int>(in.I64());
  gc_runs_ = in.I64();
  gc_pause_us = in.U64();
  // The proxy cache is derived state: rebuild it from the heap's node
  // column (live BinderProxy objects attached to a node).
  proxy_by_node_.clear();
  heap_.ForEachLive([this](ObjectId obj) {
    const NodeId node = heap_.ProxyNode(obj);
    if (!node.valid()) return;
    const std::size_t slot = static_cast<std::size_t>(node.value());
    if (slot >= proxy_by_node_.size()) proxy_by_node_.resize(slot + 1, 0);
    proxy_by_node_[slot] = obj.value();
  });
}

}  // namespace jgre::rt
