#include "runtime/runtime.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/strings.h"
#include "obs/trace.h"

namespace jgre::rt {

namespace {
// art/runtime/jni_env_ext: kLocalsMax.
constexpr std::size_t kLocalsMax = 512;
}  // namespace

Runtime::Runtime(SimClock* clock, Config config)
    : clock_(clock),
      config_(std::move(config)),
      vm_(clock, config_.name, config_.max_global_refs, kWeakGlobalsMax,
          config_.obs),
      locals_(kLocalsMax, IndirectRefKind::kLocal,
              StrCat(config_.name, " JNI local")) {
  // Runtime-init references (WellKnownClasses::CacheClass etc.). They are
  // held forever, so the GC never reclaims them; the paper's static analysis
  // filters the 67 native paths that only run here.
  for (std::size_t i = 0; i < config_.boot_class_refs; ++i) {
    const ObjectId cls =
        heap_.Alloc(ObjectKind::kClassRoot, StrCat("class-root#", i));
    heap_.AddHold(cls);  // pinned by the class table
    auto ref = vm_.AddGlobalRef(cls);
    (void)ref;
  }
}

Result<IndirectRef> Runtime::AddLocalRef(ObjectId obj) {
  // Overflow ("local reference table overflow (max=512)") surfaces as a
  // failed call; unlike global overflow it cannot be accumulated across
  // transactions, because PopLocalFrame wipes the segment either way.
  return locals_.Add(locals_.CurrentCookie(), obj);
}

Result<ObjectId> Runtime::GetOrCreateBinderProxy(NodeId node,
                                                 const std::string& label) {
  if (auto it = proxy_cache_.find(node); it != proxy_cache_.end()) {
    return it->second;
  }
  const ObjectId proxy = heap_.Alloc(ObjectKind::kBinderProxy, label);
  auto ref = vm_.AddGlobalRef(proxy);
  if (!ref.ok()) {
    heap_.Free(proxy);
    return ref.status();
  }
  // libbinder's BinderProxy cache (gBinderProxyOffsets.mProxyMap) tracks the
  // proxy through a *weak* global reference — a second capped table the same
  // traffic fills.
  auto weak = vm_.AddWeakGlobalRef(proxy);
  if (!weak.ok()) {
    vm_.DeleteGlobalRef(ref.value());
    heap_.Free(proxy);
    return weak.status();
  }
  proxy_cache_.emplace(node, proxy);
  proxy_nodes_.emplace(proxy, node);
  proxy_weak_refs_.emplace(proxy, weak.value());
  managed_refs_.emplace(proxy, ref.value());
  return proxy;
}

Result<ObjectId> Runtime::AllocManagedObject(ObjectKind kind,
                                             const std::string& label) {
  const ObjectId obj = heap_.Alloc(kind, label);
  auto ref = vm_.AddGlobalRef(obj);
  if (!ref.ok()) {
    heap_.Free(obj);
    return ref.status();
  }
  managed_refs_.emplace(obj, ref.value());
  return obj;
}

std::size_t Runtime::CollectGarbage() {
  if (aborted()) return 0;
  ++gc_runs_;
  const TimeUs gc_start = clock_->NowUs();
  clock_->AdvanceUs(gc_pause_us);
  std::size_t released = 0;
  std::vector<NodeId> collected_proxies;
  // Iterate to a fixed point: freeing an object can drop holds on others in
  // richer object graphs; here one pass usually suffices but the loop keeps
  // the invariant "no unheld managed object survives a GC".
  for (;;) {
    std::vector<ObjectId> candidates = heap_.UnheldObjects();
    std::size_t freed_this_round = 0;
    for (ObjectId obj : candidates) {
      auto ref_it = managed_refs_.find(obj);
      if (ref_it == managed_refs_.end()) {
        // Plain unreferenced object: just reclaim the heap slot.
        if (heap_.Kind(obj) == ObjectKind::kPlain) {
          heap_.Free(obj);
          ++freed_this_round;
        }
        continue;
      }
      vm_.DeleteGlobalRef(ref_it->second);
      managed_refs_.erase(ref_it);
      if (auto node_it = proxy_nodes_.find(obj); node_it != proxy_nodes_.end()) {
        collected_proxies.push_back(node_it->second);
        proxy_cache_.erase(node_it->second);
        proxy_nodes_.erase(node_it);
      }
      if (auto weak_it = proxy_weak_refs_.find(obj);
          weak_it != proxy_weak_refs_.end()) {
        vm_.DeleteWeakGlobalRef(weak_it->second);
        proxy_weak_refs_.erase(weak_it);
      }
      heap_.Free(obj);
      ++released;
      ++freed_this_round;
    }
    if (freed_this_round == 0) break;
  }
  if (proxy_collect_handler_) {
    for (NodeId node : collected_proxies) proxy_collect_handler_(node);
  }
  JGRE_TRACE(config_.obs.bus, obs::Category::kGc,
             obs::MakeEvent(obs::Category::kGc, obs::Label::kGcRun, gc_start,
                            config_.obs.pid, config_.obs.uid,
                            static_cast<std::int64_t>(released),
                            static_cast<std::int64_t>(vm_.GlobalRefCount()),
                            gc_pause_us));
  JGRE_LOG(kDebug, "art") << config_.name << ": GC released " << released
                          << " global refs, " << vm_.GlobalRefCount()
                          << " remain";
  return released;
}

void Runtime::SaveState(snapshot::Serializer& out) const {
  out.Marker(0x52544D31);  // "RTM1"
  heap_.SaveState(out);
  vm_.SaveState(out);
  locals_.SaveState(out);
  out.I64(local_frame_depth_);
  out.I64(gc_runs_);
  out.U64(gc_pause_us);
  snapshot::SaveUnorderedMap(out, proxy_cache_,
                [](snapshot::Serializer& s, NodeId node, ObjectId obj) {
                  s.I64(node.value());
                  s.I64(obj.value());
                });
  snapshot::SaveUnorderedMap(out, proxy_nodes_,
                [](snapshot::Serializer& s, ObjectId obj, NodeId node) {
                  s.I64(obj.value());
                  s.I64(node.value());
                });
  snapshot::SaveUnorderedMap(out, proxy_weak_refs_,
                [](snapshot::Serializer& s, ObjectId obj, IndirectRef ref) {
                  s.I64(obj.value());
                  s.U64(ref);
                });
  snapshot::SaveUnorderedMap(out, managed_refs_,
                [](snapshot::Serializer& s, ObjectId obj, IndirectRef ref) {
                  s.I64(obj.value());
                  s.U64(ref);
                });
}

void Runtime::RestoreState(snapshot::Deserializer& in) {
  in.Marker(0x52544D31);
  heap_.RestoreState(in);
  vm_.RestoreState(in);
  locals_.RestoreState(in);
  local_frame_depth_ = static_cast<int>(in.I64());
  gc_runs_ = in.I64();
  gc_pause_us = in.U64();
  proxy_cache_.clear();
  proxy_nodes_.clear();
  proxy_weak_refs_.clear();
  managed_refs_.clear();
  for (std::uint64_t i = 0, n = in.U64(); i < n && in.ok(); ++i) {
    const NodeId node{in.I64()};
    proxy_cache_.emplace(node, ObjectId{in.I64()});
  }
  for (std::uint64_t i = 0, n = in.U64(); i < n && in.ok(); ++i) {
    const ObjectId obj{in.I64()};
    proxy_nodes_.emplace(obj, NodeId{in.I64()});
  }
  for (std::uint64_t i = 0, n = in.U64(); i < n && in.ok(); ++i) {
    const ObjectId obj{in.I64()};
    proxy_weak_refs_.emplace(obj, in.U64());
  }
  for (std::uint64_t i = 0, n = in.U64(); i < n && in.ok(); ++i) {
    const ObjectId obj{in.I64()};
    managed_refs_.emplace(obj, in.U64());
  }
}

}  // namespace jgre::rt
