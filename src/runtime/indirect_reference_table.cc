#include "runtime/indirect_reference_table.h"

#include <cassert>
#include <sstream>

#include "common/strings.h"

namespace jgre::rt {

namespace {
// Reference layout: [index+1 : bits 34..63][serial : bits 2..33][kind : 0..1].
// index is stored +1 so a valid reference is never 0 (NULL jobject).
constexpr int kKindBits = 2;
constexpr int kSerialBits = 32;
constexpr std::uint64_t kKindMask = (1ULL << kKindBits) - 1;
constexpr std::uint64_t kSerialMask = (1ULL << kSerialBits) - 1;
}  // namespace

IndirectRefKind GetIndirectRefKind(IndirectRef ref) {
  return static_cast<IndirectRefKind>(ref & kKindMask);
}

IndirectReferenceTable::IndirectReferenceTable(std::size_t max_entries,
                                               IndirectRefKind kind,
                                               std::string name)
    : max_entries_(max_entries), kind_(kind), name_(std::move(name)) {
  assert(max_entries_ > 0);
}

IndirectRef IndirectReferenceTable::EncodeRef(std::size_t index,
                                              std::uint32_t serial) const {
  return (static_cast<std::uint64_t>(index + 1) << (kKindBits + kSerialBits)) |
         ((static_cast<std::uint64_t>(serial) & kSerialMask) << kKindBits) |
         static_cast<std::uint64_t>(kind_);
}

bool IndirectReferenceTable::DecodeRef(IndirectRef ref, std::size_t* index,
                                       std::uint32_t* serial) const {
  if (ref == kNullIndirectRef) return false;
  if (static_cast<IndirectRefKind>(ref & kKindMask) != kind_) return false;
  const std::uint64_t biased_index = ref >> (kKindBits + kSerialBits);
  if (biased_index == 0) return false;
  *index = static_cast<std::size_t>(biased_index - 1);
  *serial = static_cast<std::uint32_t>((ref >> kKindBits) & kSerialMask);
  return true;
}

Result<IndirectRef> IndirectReferenceTable::Add(Cookie cookie, ObjectId obj) {
  assert(obj.valid());
  (void)cookie;  // holes are per-segment, so the list never crosses frames
  // Prefer reusing a hole inside the current segment: pop the head of the
  // segment's intrusive free list — O(1) where ART scans for holes above the
  // previous segment state before growing the top.
  if (free_head_ != kNoFreeSlot) {
    const std::size_t slot_index = free_head_;
    Slot& slot = slots_[slot_index];
    assert(!slot.active);
    assert(slot_index >= segment_start_);
    free_head_ = slot.next_free;
    slot.next_free = kNoFreeSlot;
    --hole_count_;
    slot.obj = obj;
    ++slot.serial;
    slot.active = true;
    ++live_entries_;
    ++total_adds_;
    return EncodeRef(slot_index, slot.serial);
  }
  if (top_index_ >= max_entries_) {
    // This is ART's "JNI ERROR (app bug): <name> reference table overflow
    // (max=...)" condition: the caller's runtime aborts.
    return ResourceExhausted(
        StrCat(name_, " reference table overflow (max=", max_entries_, ")"));
  }
  const std::size_t slot_index = top_index_++;
  if (slot_index >= slots_.size()) slots_.resize(slot_index + 1);
  Slot& slot = slots_[slot_index];
  slot.obj = obj;
  ++slot.serial;
  slot.active = true;
  ++live_entries_;
  ++total_adds_;
  return EncodeRef(slot_index, slot.serial);
}

bool IndirectReferenceTable::Remove(Cookie cookie, IndirectRef ref) {
  std::size_t index;
  std::uint32_t serial;
  if (!DecodeRef(ref, &index, &serial)) return false;
  if (index < cookie || index >= top_index_) return false;
  Slot& slot = slots_[index];
  if (!slot.active || slot.serial != serial) return false;  // stale reference
  slot.active = false;
  slot.obj = ObjectId{};
  slot.next_free = free_head_;
  free_head_ = static_cast<std::uint32_t>(index);
  ++hole_count_;
  --live_entries_;
  ++total_removes_;
  return true;
}

Result<ObjectId> IndirectReferenceTable::Get(IndirectRef ref) const {
  std::size_t index;
  std::uint32_t serial;
  if (!DecodeRef(ref, &index, &serial)) {
    return NotFound(StrCat(name_, ": invalid indirect ref"));
  }
  if (index >= top_index_) return NotFound(StrCat(name_, ": index past top"));
  const Slot& slot = slots_[index];
  if (!slot.active || slot.serial != serial) {
    return NotFound(StrCat(name_, ": stale indirect ref"));
  }
  return slot.obj;
}

IndirectReferenceTable::Cookie IndirectReferenceTable::PushFrame() {
  const Cookie cookie = static_cast<Cookie>(top_index_);
  segment_stack_.push_back(FrameState{segment_start_, free_head_});
  segment_start_ = cookie;
  free_head_ = kNoFreeSlot;  // inner frames never reuse outer frames' holes
  return cookie;
}

void IndirectReferenceTable::PopFrame(Cookie cookie) {
  assert(cookie == segment_start_ && "unbalanced PopFrame");
  for (std::size_t i = cookie; i < top_index_; ++i) {
    if (slots_[i].active) {
      slots_[i].active = false;
      slots_[i].obj = ObjectId{};
      --live_entries_;
      ++total_removes_;
    } else {
      // An inactive slot below the top is a hole of the popped frame; it is
      // released with the frame rather than staying reusable.
      --hole_count_;
    }
    slots_[i].next_free = kNoFreeSlot;
  }
  top_index_ = cookie;
  assert(!segment_stack_.empty());
  segment_start_ = segment_stack_.back().segment_start;
  free_head_ = segment_stack_.back().free_head;
  segment_stack_.pop_back();
}

void IndirectReferenceTable::VisitRoots(
    const std::function<void(ObjectId)>& visitor) const {
  for (std::size_t i = 0; i < top_index_; ++i) {
    if (slots_[i].active) visitor(slots_[i].obj);
  }
}

void IndirectReferenceTable::SaveState(snapshot::Serializer& out) const {
  out.Marker(0x49525431);  // "IRT1"
  out.U64(max_entries_);
  out.U8(static_cast<std::uint8_t>(kind_));
  out.U64(top_index_);
  for (std::size_t i = 0; i < top_index_; ++i) {
    const Slot& slot = slots_[i];
    out.I64(slot.obj.value());
    out.U32(slot.serial);
    out.U32(slot.next_free);
    out.Bool(slot.active);
  }
  out.U32(free_head_);
  out.U64(hole_count_);
  out.U64(live_entries_);
  out.U32(segment_start_);
  out.U64(segment_stack_.size());
  for (const FrameState& frame : segment_stack_) {
    out.U32(frame.segment_start);
    out.U32(frame.free_head);
  }
  out.I64(total_adds_);
  out.I64(total_removes_);
}

void IndirectReferenceTable::RestoreState(snapshot::Deserializer& in) {
  in.Marker(0x49525431);
  const std::uint64_t max_entries = in.U64();
  const auto kind = static_cast<IndirectRefKind>(in.U8());
  if (in.ok() && (max_entries != max_entries_ || kind != kind_)) {
    in.Fail(StrCat(name_, ": IRT capacity/kind mismatch on restore"));
    return;
  }
  top_index_ = static_cast<std::size_t>(in.U64());
  slots_.assign(top_index_, Slot{});
  for (std::size_t i = 0; i < top_index_ && in.ok(); ++i) {
    Slot& slot = slots_[i];
    slot.obj = ObjectId{in.I64()};
    slot.serial = in.U32();
    slot.next_free = in.U32();
    slot.active = in.Bool();
  }
  free_head_ = in.U32();
  hole_count_ = static_cast<std::size_t>(in.U64());
  live_entries_ = static_cast<std::size_t>(in.U64());
  segment_start_ = in.U32();
  segment_stack_.clear();
  const std::uint64_t frames = in.U64();
  for (std::uint64_t i = 0; i < frames && in.ok(); ++i) {
    FrameState frame;
    frame.segment_start = in.U32();
    frame.free_head = in.U32();
    segment_stack_.push_back(frame);
  }
  total_adds_ = in.I64();
  total_removes_ = in.I64();
}

std::string IndirectReferenceTable::DumpSummary() const {
  std::ostringstream os;
  os << name_ << ": " << live_entries_ << " of " << max_entries_
     << " entries in use (top=" << top_index_ << ", holes=" << hole_count_
     << ", adds=" << total_adds_ << ", removes=" << total_removes_ << ")";
  return os.str();
}

}  // namespace jgre::rt
