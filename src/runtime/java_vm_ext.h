// JavaVMExt — per-process VM state holding the JNI global reference tables.
//
// Mirrors art/runtime/java_vm_ext.{h,cc} in AOSP 6.0.1, where
// `static constexpr size_t kGlobalsMax = 51200;` caps the global reference
// table and an overflow calls `Runtime::Abort`. JGR mutations are published
// as obs::Category::kJgr events on the process's EventBus — the seam the
// paper's defense extends: its modified runtime records the time of every
// JGR creation/deletion once the count passes an alarm threshold.
#ifndef JGRE_RUNTIME_JAVA_VM_EXT_H_
#define JGRE_RUNTIME_JAVA_VM_EXT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/event_bus.h"
#include "runtime/indirect_reference_table.h"
#include "snapshot/serializer.h"

namespace jgre::rt {

// AOSP 6.0.1: art/runtime/java_vm_ext.cc `kGlobalsMax`.
inline constexpr std::size_t kGlobalsMax = 51200;
// Weak globals share the same cap in ART 6.
inline constexpr std::size_t kWeakGlobalsMax = 51200;

class JavaVMExt {
 public:
  JavaVMExt(SimClock* clock, std::string runtime_name,
            std::size_t max_globals = kGlobalsMax,
            std::size_t max_weak_globals = kWeakGlobalsMax,
            obs::Source source = {});

  JavaVMExt(const JavaVMExt&) = delete;
  JavaVMExt& operator=(const JavaVMExt&) = delete;

  // Adds a global reference. On table overflow the abort handler fires
  // (process death in the kernel layer) and kResourceExhausted is returned.
  Result<IndirectRef> AddGlobalRef(ObjectId obj);
  bool DeleteGlobalRef(IndirectRef ref);

  Result<IndirectRef> AddWeakGlobalRef(ObjectId obj);
  bool DeleteWeakGlobalRef(IndirectRef ref);

  Result<ObjectId> DecodeGlobal(IndirectRef ref) const;

  std::size_t GlobalRefCount() const { return globals_.Size(); }
  std::size_t WeakGlobalRefCount() const { return weak_globals_.Size(); }
  std::size_t MaxGlobals() const { return globals_.Capacity(); }

  const IndirectReferenceTable& globals() const { return globals_; }

  bool aborted() const { return aborted_; }

  // Called once, on overflow, with the ART-style abort message.
  void SetAbortHandler(std::function<void(const std::string&)> handler) {
    abort_handler_ = std::move(handler);
  }

  // Opt-in kJgrWeakAdd/kJgrWeakRemove emission. Off by default: every
  // BinderProxy mint goes through the weak table (the libbinder proxy
  // cache), so unconditional emission would reshape every existing kJgr
  // stream. Scenario drivers that watch the weak table (the arms-race
  // weakref_churn cells) flip it on for their victim runtime.
  void SetWeakEventEmission(bool enabled) { emit_weak_events_ = enabled; }
  bool weak_event_emission() const { return emit_weak_events_; }

  // Checkpointing: both reference tables plus the abort flag. The abort
  // handler and observability source are wiring, re-attached by the owner.
  void SaveState(snapshot::Serializer& out) const {
    globals_.SaveState(out);
    weak_globals_.SaveState(out);
    out.Bool(aborted_);
  }
  void RestoreState(snapshot::Deserializer& in) {
    globals_.RestoreState(in);
    weak_globals_.RestoreState(in);
    aborted_ = in.Bool();
  }

  std::int64_t total_global_adds() const { return globals_.total_adds(); }
  std::int64_t total_global_removes() const {
    return globals_.total_removes();
  }

  const std::string& runtime_name() const { return runtime_name_; }

 private:
  void NotifyAdd(ObjectId obj);
  void NotifyRemove(ObjectId obj);
  void NotifyWeak(obs::Label label, ObjectId obj);
  void Abort(const std::string& reason);

  SimClock* clock_;
  std::string runtime_name_;
  obs::Source source_;
  IndirectReferenceTable globals_;
  IndirectReferenceTable weak_globals_;
  std::function<void(const std::string&)> abort_handler_;
  bool aborted_ = false;
  bool emit_weak_events_ = false;
};

}  // namespace jgre::rt

#endif  // JGRE_RUNTIME_JAVA_VM_EXT_H_
