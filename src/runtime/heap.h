// Simulated Java heap with strong-hold accounting.
//
// The only heap property the JGRE attack depends on is *reachability*: a
// binder proxy (or death-recipient) object stays alive while some service
// data structure holds a strong reference to it, and its associated JNI
// global reference can only be reclaimed once the object becomes unreachable
// and the GC runs. We therefore model objects as identities with an explicit
// strong-hold count instead of a tracing collector — the reachable set is
// exactly the set of objects with holds > 0, which is what AOSP's retention
// patterns (maps, RemoteCallbackList, member fields) reduce to.
#ifndef JGRE_RUNTIME_HEAP_H_
#define JGRE_RUNTIME_HEAP_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "snapshot/serializer.h"

namespace jgre::rt {

enum class ObjectKind {
  kPlain,           // ordinary Java object
  kBinderProxy,     // android.os.BinderProxy received over IPC
  kJavaBBinder,     // server-side Binder wrapper
  kDeathRecipient,  // IBinder.DeathRecipient registered via linkToDeath
  kClassRoot,       // class cached at runtime init (WellKnownClasses)
};

struct HeapObject {
  ObjectId id;
  ObjectKind kind = ObjectKind::kPlain;
  std::int32_t strong_holds = 0;
  std::string label;
};

class Heap {
 public:
  Heap() = default;
  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  ObjectId Alloc(ObjectKind kind, std::string label);

  // Strong-hold accounting. AddHold/RemoveHold model a service data structure
  // taking/dropping a strong reference to the object.
  void AddHold(ObjectId id);
  void RemoveHold(ObjectId id);

  bool IsAlive(ObjectId id) const { return objects_.count(id) > 0; }
  std::int32_t Holds(ObjectId id) const;
  ObjectKind Kind(ObjectId id) const;
  const std::string& Label(ObjectId id) const;

  // Frees the object outright (GC decided it is unreachable).
  void Free(ObjectId id);

  // All live objects with zero strong holds — the GC's collection candidates,
  // in ascending id order so collection order does not depend on hash-map
  // iteration (a restored heap must collect in the same order as the
  // original).
  std::vector<ObjectId> UnheldObjects() const;

  std::size_t LiveCount() const { return objects_.size(); }
  std::int64_t total_allocated() const { return next_id_ - 1; }

  // Checkpointing: objects are written in ascending id order; restore
  // replaces the heap contents wholesale (including the allocation cursor).
  void SaveState(snapshot::Serializer& out) const;
  void RestoreState(snapshot::Deserializer& in);

 private:
  const HeapObject& Get(ObjectId id) const;

  std::int64_t next_id_ = 1;
  std::unordered_map<ObjectId, HeapObject> objects_;
};

}  // namespace jgre::rt

#endif  // JGRE_RUNTIME_HEAP_H_
