// Simulated Java heap with strong-hold accounting.
//
// The only heap property the JGRE attack depends on is *reachability*: a
// binder proxy (or death-recipient) object stays alive while some service
// data structure holds a strong reference to it, and its associated JNI
// global reference can only be reclaimed once the object becomes unreachable
// and the GC runs. We therefore model objects as identities with an explicit
// strong-hold count instead of a tracing collector — the reachable set is
// exactly the set of objects with holds > 0, which is what AOSP's retention
// patterns (maps, RemoteCallbackList, member fields) reduce to.
//
// Storage is a struct-of-arrays arena indexed by object id: ids are dense
// and allocated in order, so slot = id - 1 and every per-object attribute is
// a flat column (kind, holds, interned label, and the runtime's JNI ref /
// binder-node attachments). Allocation is a handful of column pushes with no
// per-object heap node, labels are interned once per distinct string instead
// of copied per object, and the snapshot subsystem serializes the live
// columns as flat spans.
//
// The GC's collection candidates are tracked *incrementally*: an object
// enters the pending-candidate list when it is allocated unheld or when its
// hold count drops to zero. TakeUnheldCandidates therefore costs
// O(transitions since last GC), not O(live heap) — the seed's full-heap
// rescans were ~48% of bench_snapshot's wall time.
#ifndef JGRE_RUNTIME_HEAP_H_
#define JGRE_RUNTIME_HEAP_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "common/types.h"
#include "snapshot/serializer.h"

namespace jgre::rt {

// Matches indirect_reference_table.h (included by runtime.h, not here to
// keep the heap's dependencies flat): a valid reference is never 0.
using HeapIndirectRef = std::uint64_t;
inline constexpr HeapIndirectRef kHeapNullRef = 0;

enum class ObjectKind {
  kPlain,           // ordinary Java object
  kBinderProxy,     // android.os.BinderProxy received over IPC
  kJavaBBinder,     // server-side Binder wrapper
  kDeathRecipient,  // IBinder.DeathRecipient registered via linkToDeath
  kClassRoot,       // class cached at runtime init (WellKnownClasses)
};

class Heap {
 public:
  Heap() = default;
  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  ObjectId Alloc(ObjectKind kind, std::string_view label);
  // Composed-label allocation: interns prefix+suffix through a reusable
  // scratch buffer, so steady-state allocation of recurring labels
  // ("BinderProxy:" + descriptor) performs no string allocation at all.
  ObjectId Alloc(ObjectKind kind, std::string_view label_prefix,
                 std::string_view label_suffix);

  // Strong-hold accounting. AddHold/RemoveHold model a service data structure
  // taking/dropping a strong reference to the object.
  void AddHold(ObjectId id) {
    assert(IsAlive(id));
    ++holds_[SlotOf(id)];
  }
  void RemoveHold(ObjectId id) {
    if (!IsAlive(id)) return;  // already collected
    std::int32_t& holds = holds_[SlotOf(id)];
    assert(holds > 0 && "hold underflow");
    if (--holds == 0) unheld_candidates_.push_back(id);
  }

  bool IsAlive(ObjectId id) const {
    const std::int64_t v = id.value();
    return v >= 1 && v < next_id_ && holds_[static_cast<std::size_t>(v - 1)] != kDeadSlot;
  }
  std::int32_t Holds(ObjectId id) const {
    assert(IsAlive(id));
    return holds_[SlotOf(id)];
  }
  ObjectKind Kind(ObjectId id) const {
    assert(IsAlive(id));
    return static_cast<ObjectKind>(kind_[SlotOf(id)]);
  }
  const std::string& Label(ObjectId id) const {
    assert(IsAlive(id));
    return labels_.Name(label_[SlotOf(id)]);
  }

  // --- Runtime attachment columns -----------------------------------------
  // The JNI global / weak-global reference backing a managed object and the
  // binder node a BinderProxy stands for. Owned by rt::Runtime; living here
  // keeps them in the same arena as the object (the seed kept four
  // unordered_maps in Runtime, churned on every proxy mint/collect).

  void SetManagedRef(ObjectId id, HeapIndirectRef ref) {
    assert(IsAlive(id));
    managed_ref_[SlotOf(id)] = ref;
  }
  HeapIndirectRef ManagedRef(ObjectId id) const {
    assert(IsAlive(id));
    return managed_ref_[SlotOf(id)];
  }
  void SetWeakRef(ObjectId id, HeapIndirectRef ref) {
    assert(IsAlive(id));
    weak_ref_[SlotOf(id)] = ref;
  }
  HeapIndirectRef WeakRef(ObjectId id) const {
    assert(IsAlive(id));
    return weak_ref_[SlotOf(id)];
  }
  void SetProxyNode(ObjectId id, NodeId node) {
    assert(IsAlive(id));
    node_[SlotOf(id)] = node.value();
  }
  NodeId ProxyNode(ObjectId id) const {
    assert(IsAlive(id));
    return NodeId{node_[SlotOf(id)]};
  }

  // Frees the object outright (GC decided it is unreachable).
  void Free(ObjectId id);

  // All live objects with zero strong holds, in ascending id order — a full
  // scan, kept for tests and debugging. The GC uses TakeUnheldCandidates.
  std::vector<ObjectId> UnheldObjects() const;

  // True if any candidate transition is pending — the GC's early-out: no
  // transitions since the last take means nothing can be collectable that
  // was not already skipped.
  bool HasUnheldCandidates() const { return !unheld_candidates_.empty(); }

  // Moves the pending collection candidates into `out`: sorted ascending,
  // deduplicated, and filtered to objects that are still alive and unheld.
  // Consumes the pending list. Collection order therefore matches the
  // seed's full-scan order exactly (ascending id).
  void TakeUnheldCandidates(std::vector<ObjectId>* out);

  // Applies `fn(ObjectId)` to every live object in ascending id order.
  template <typename Fn>
  void ForEachLive(Fn&& fn) const {
    for (std::int64_t id = 1; id < next_id_; ++id) {
      if (holds_[static_cast<std::size_t>(id - 1)] != kDeadSlot) {
        fn(ObjectId{id});
      }
    }
  }

  std::size_t LiveCount() const { return live_count_; }
  std::int64_t total_allocated() const { return next_id_ - 1; }

  // Checkpointing: the label interner plus the live objects' columns in
  // ascending id order; restore replaces the heap contents wholesale
  // (including the allocation cursor) and rebuilds the candidate list from
  // the live unheld set.
  void SaveState(snapshot::Serializer& out) const;
  void RestoreState(snapshot::Deserializer& in);

 private:
  // holds_ value marking a freed slot (live counts are always >= 0).
  static constexpr std::int32_t kDeadSlot = -1;

  std::size_t SlotOf(ObjectId id) const {
    assert(id.value() >= 1 && id.value() < next_id_);
    return static_cast<std::size_t>(id.value() - 1);
  }

  ObjectId PushObject(ObjectKind kind, StringInterner::Id label);

  std::int64_t next_id_ = 1;
  std::size_t live_count_ = 0;
  // Struct-of-arrays columns, slot = id - 1.
  std::vector<std::uint8_t> kind_;
  std::vector<std::int32_t> holds_;
  std::vector<StringInterner::Id> label_;
  std::vector<HeapIndirectRef> managed_ref_;
  std::vector<HeapIndirectRef> weak_ref_;
  std::vector<std::int64_t> node_;
  // Pending collection candidates (may contain stale/duplicate entries;
  // filtered at take time).
  std::vector<ObjectId> unheld_candidates_;
  StringInterner labels_;
  std::string label_scratch_;
};

}  // namespace jgre::rt

#endif  // JGRE_RUNTIME_HEAP_H_
