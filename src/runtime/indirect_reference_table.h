// IndirectReferenceTable — the ART data structure at the heart of the paper.
//
// Modeled on art/runtime/indirect_reference_table.{h,cc} from AOSP 6.0.1:
// * every JNI reference handed to native code is an *indirect* reference —
//   an opaque value encoding (kind, serial, index) — so stale or forged
//   references are detected instead of dereferencing freed memory;
// * the table has a hard capacity (`max_entries`); `Add` past capacity is the
//   "global reference table overflow" that aborts the runtime and is the
//   JGRE attack's detonation point (51,200 for the global table,
//   hard-coded in art/runtime/java_vm_ext.cc);
// * local tables use segment cookies so a native frame can bulk-release the
//   references it created (`PushFrame`/`PopFrame`);
// * slots are reused through a per-segment free list, with per-slot serial
//   numbers so a stale reference to a reused slot is rejected. The free list
//   is threaded through the slots themselves (each inactive slot stores the
//   index of the next hole), so allocation and release are O(1) — where ART
//   (and the seed implementation) scanned a hole vector per Add.
#ifndef JGRE_RUNTIME_INDIRECT_REFERENCE_TABLE_H_
#define JGRE_RUNTIME_INDIRECT_REFERENCE_TABLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "snapshot/serializer.h"

namespace jgre::rt {

enum class IndirectRefKind : std::uint64_t {
  kLocal = 1,
  kGlobal = 2,
  kWeakGlobal = 3,
};

// Opaque reference value. 0 is never a valid reference (mirrors NULL jobject).
using IndirectRef = std::uint64_t;

constexpr IndirectRef kNullIndirectRef = 0;

IndirectRefKind GetIndirectRefKind(IndirectRef ref);

class IndirectReferenceTable {
 public:
  // Cookie identifies a segment boundary (the table top at frame entry).
  using Cookie = std::uint32_t;

  IndirectReferenceTable(std::size_t max_entries, IndirectRefKind kind,
                         std::string name);

  IndirectReferenceTable(const IndirectReferenceTable&) = delete;
  IndirectReferenceTable& operator=(const IndirectReferenceTable&) = delete;

  // Adds a reference to `obj` within the segment identified by `cookie`
  // (use CurrentCookie() for the global table, which has a single segment).
  // Fails with kResourceExhausted when the table is full — the condition the
  // JGRE attack drives the victim into.
  Result<IndirectRef> Add(Cookie cookie, ObjectId obj);

  // Removes a reference. Returns false for null, stale (serial mismatch),
  // out-of-segment, or already-removed references — ART logs and ignores
  // these rather than crashing.
  bool Remove(Cookie cookie, IndirectRef ref);

  // Resolves a reference; kNotFound for stale/invalid ones.
  Result<ObjectId> Get(IndirectRef ref) const;

  bool Contains(IndirectRef ref) const { return Get(ref).ok(); }

  // Segment management for local tables. PushFrame returns the cookie to
  // later pass to PopFrame, which releases every reference added since.
  Cookie PushFrame();
  void PopFrame(Cookie cookie);
  Cookie CurrentCookie() const { return segment_start_; }

  std::size_t Size() const { return live_entries_; }
  std::size_t Capacity() const { return max_entries_; }
  const std::string& name() const { return name_; }

  // Enumerates live references (GC root visiting).
  void VisitRoots(const std::function<void(ObjectId)>& visitor) const;

  // Dumps "<name>: N entries (capacity M)" plus top labels, like ART's
  // ReferenceTable::Dump used in overflow abort messages.
  std::string DumpSummary() const;

  std::int64_t total_adds() const { return total_adds_; }
  std::int64_t total_removes() const { return total_removes_; }

  // Number of reusable holes across all segments (observability).
  std::size_t HoleCount() const { return hole_count_; }

  // Checkpointing: serializes slots, serials, the threaded free list, and
  // the segment stack, so restored references (and the slot-reuse order of
  // subsequent Add calls) are identical to the original table's. Restore
  // expects a table constructed with the same capacity/kind and fails the
  // stream otherwise.
  void SaveState(snapshot::Serializer& out) const;
  void RestoreState(snapshot::Deserializer& in);

 private:
  static constexpr std::uint32_t kNoFreeSlot = ~std::uint32_t{0};

  struct Slot {
    ObjectId obj;
    std::uint32_t serial = 0;
    // While inactive and below the top: index of the next hole in this
    // segment's free list (kNoFreeSlot terminates the list).
    std::uint32_t next_free = kNoFreeSlot;
    bool active = false;
  };

  // Saved state of an outer frame: its segment start and the head of its
  // free list at the time the inner frame was pushed. Holes always belong to
  // the segment that created them, so an inner frame never reuses an outer
  // frame's holes and PopFrame restores the outer list wholesale.
  struct FrameState {
    Cookie segment_start;
    std::uint32_t free_head;
  };

  IndirectRef EncodeRef(std::size_t index, std::uint32_t serial) const;
  bool DecodeRef(IndirectRef ref, std::size_t* index,
                 std::uint32_t* serial) const;

  const std::size_t max_entries_;
  const IndirectRefKind kind_;
  const std::string name_;

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoFreeSlot;  // current segment's hole list
  std::size_t hole_count_ = 0;             // holes across all segments
  std::size_t top_index_ = 0;              // one past the highest used slot
  std::size_t live_entries_ = 0;
  Cookie segment_start_ = 0;
  std::vector<FrameState> segment_stack_;  // outer frames' saved state

  std::int64_t total_adds_ = 0;
  std::int64_t total_removes_ = 0;
};

}  // namespace jgre::rt

#endif  // JGRE_RUNTIME_INDIRECT_REFERENCE_TABLE_H_
