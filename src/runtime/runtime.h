// Runtime — per-process Android runtime (ART) model.
//
// Owns the heap and the JavaVMExt (JGR tables) and implements the two JNI
// lifetime patterns the paper's attack and defense revolve around:
//
// * Binder proxies: when a strong binder crosses IPC into this process,
//   libbinder's `javaObjectForIBinder` either returns the cached
//   android.os.BinderProxy for that node or creates a new one, taking one
//   JNI global reference that is only released when the proxy is garbage
//   collected. The attack works by sending a *fresh* Binder per call so every
//   call mints a new proxy + JGR that the victim's service state retains.
// * Managed JGRs: objects like JavaDeathRecipient hold a global ref on a Java
//   object and drop it when the object becomes collectable.
//
// `CollectGarbage` reclaims managed objects with zero strong holds, deleting
// their JGRs — this is what DDMS-triggered GC does in the paper's dynamic
// verification step, and why only *retained* binders are exploitable.
#ifndef JGRE_RUNTIME_RUNTIME_H_
#define JGRE_RUNTIME_RUNTIME_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/event_bus.h"
#include "runtime/heap.h"
#include "runtime/java_vm_ext.h"
#include "snapshot/serializer.h"

namespace jgre::rt {

class Runtime {
 public:
  struct Config {
    std::string name = "runtime";
    std::size_t max_global_refs = kGlobalsMax;
    // Global refs pinned at runtime init (WellKnownClasses and friends);
    // these are the paths the paper's JGR-entry extractor filters out as
    // non-exploitable. They form the baseline JGR footprint.
    std::size_t boot_class_refs = 0;
    // Observability source (bus + process identity) this runtime publishes
    // kJgr/kGc events from; default-empty = silent (standalone runtimes in
    // unit tests). The kernel fills this in for every process it creates.
    obs::Source obs;
  };

  Runtime(SimClock* clock, Config config);

  Heap& heap() { return heap_; }
  const Heap& heap() const { return heap_; }
  JavaVMExt& vm() { return vm_; }
  const JavaVMExt& vm() const { return vm_; }
  const std::string& name() const { return config_.name; }

  // --- Binder proxy management (javaObjectForIBinder) ------------------

  // Returns the proxy object for `node`, creating it (and its JGR) if this
  // process has not seen the node before or the old proxy was collected.
  // The proxy's heap label is "BinderProxy:" + `descriptor`, composed
  // without allocating.
  Result<ObjectId> GetOrCreateBinderProxy(NodeId node,
                                          std::string_view descriptor);

  // True if a live proxy for `node` is cached.
  bool HasBinderProxy(NodeId node) const {
    const std::size_t slot = static_cast<std::size_t>(node.value());
    return slot < proxy_by_node_.size() && proxy_by_node_[slot] != 0;
  }

  // Invoked when the GC collects a binder proxy; the binder driver uses this
  // to decrement the node's remote reference count (proxy finalization
  // releasing the kernel ref).
  void SetProxyCollectHandler(std::function<void(NodeId)> handler) {
    proxy_collect_handler_ = std::move(handler);
  }

  // --- Managed objects (JavaDeathRecipient pattern) ---------------------

  // Allocates a heap object holding one JGR; the GC deletes the JGR and frees
  // the object once its strong-hold count reaches zero.
  Result<ObjectId> AllocManagedObject(ObjectKind kind, std::string_view label);
  // Composed-label variant (label = prefix + suffix, interned allocation-free
  // on the steady state).
  Result<ObjectId> AllocManagedObject(ObjectKind kind,
                                      std::string_view label_prefix,
                                      std::string_view label_suffix);

  // Allocates a plain heap object with NO global ref (parameters, payloads).
  ObjectId AllocPlainObject(std::string_view label) {
    return heap_.Alloc(ObjectKind::kPlain, label);
  }

  // --- Local references (JNI frames) ----------------------------------------

  // JNI local references are valid for the duration of a native call and are
  // released automatically when the frame pops (§I: the reason only *global*
  // references can be exhausted across calls). The binder dispatch path
  // pushes a frame around every transaction handler.
  IndirectReferenceTable::Cookie PushLocalFrame() {
    ++local_frame_depth_;
    return locals_.PushFrame();
  }
  void PopLocalFrame(IndirectReferenceTable::Cookie cookie) {
    locals_.PopFrame(cookie);
    --local_frame_depth_;
  }
  bool InLocalFrame() const { return local_frame_depth_ > 0; }
  // Adds a local reference in the current frame; overflowing the local table
  // (512 entries in ART) aborts the runtime just like the global table.
  Result<IndirectRef> AddLocalRef(ObjectId obj);
  std::size_t LocalRefCount() const { return locals_.Size(); }

  // --- GC ----------------------------------------------------------------

  // Sweeps unheld managed/proxy objects; returns number of JGRs released.
  // Costs `gc_pause_us` of virtual time (configurable, default 2ms).
  std::size_t CollectGarbage();

  // --- State / stats -------------------------------------------------------

  bool aborted() const { return vm_.aborted(); }
  std::size_t JgrCount() const { return vm_.GlobalRefCount(); }
  std::int64_t gc_runs() const { return gc_runs_; }

  // Fired (once) when the JGR table overflows; the kernel layer uses this to
  // kill the process.
  void SetAbortHandler(std::function<void(const std::string&)> handler) {
    vm_.SetAbortHandler(std::move(handler));
  }

  // Checkpointing: heap (whose columns carry the proxy/managed-ref
  // attachments), both VM tables, and locals; the proxy cache is rebuilt by
  // scanning the restored heap. The abort handler and proxy-collect handler
  // are wiring (kernel and binder driver re-attach them on restore), not
  // state.
  void SaveState(snapshot::Serializer& out) const;
  void RestoreState(snapshot::Deserializer& in);

  DurationUs gc_pause_us = 2000;

 private:
  SimClock* clock_;
  Config config_;
  Heap heap_;
  JavaVMExt vm_;
  IndirectReferenceTable locals_;
  int local_frame_depth_ = 0;
  std::int64_t gc_runs_ = 0;

  // node -> live proxy object id (BinderProxy cache), dense over node ids
  // (0 = no cached proxy; object ids start at 1). The reverse direction and
  // the JNI ref attachments live in the heap's columns.
  std::vector<std::int64_t> proxy_by_node_;
  // Scratch for CollectGarbage's candidate rounds (reused across GCs).
  std::vector<ObjectId> gc_candidates_;
  std::function<void(NodeId)> proxy_collect_handler_;
};

}  // namespace jgre::rt

#endif  // JGRE_RUNTIME_RUNTIME_H_
