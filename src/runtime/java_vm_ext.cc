#include "runtime/java_vm_ext.h"

#include "common/log.h"
#include "common/strings.h"

namespace jgre::rt {

JavaVMExt::JavaVMExt(SimClock* clock, std::string runtime_name,
                     std::size_t max_globals, std::size_t max_weak_globals,
                     obs::Source source)
    : clock_(clock),
      runtime_name_(std::move(runtime_name)),
      source_(source),
      globals_(max_globals, IndirectRefKind::kGlobal,
               StrCat(runtime_name_, " JNI global")),
      weak_globals_(max_weak_globals, IndirectRefKind::kWeakGlobal,
                    StrCat(runtime_name_, " JNI weak global")) {}

Result<IndirectRef> JavaVMExt::AddGlobalRef(ObjectId obj) {
  if (aborted_) {
    return FailedPrecondition(StrCat(runtime_name_, " runtime aborted"));
  }
  auto result = globals_.Add(globals_.CurrentCookie(), obj);
  if (!result.ok()) {
    // ART: "JNI ERROR (app bug): global reference table overflow" followed
    // by Runtime::Abort — the process dies.
    Abort(StrCat("JNI ERROR (app bug): ", globals_.DumpSummary()));
    return result;
  }
  NotifyAdd(obj);
  return result;
}

bool JavaVMExt::DeleteGlobalRef(IndirectRef ref) {
  auto obj = globals_.Get(ref);
  if (!globals_.Remove(globals_.CurrentCookie(), ref)) {
    JGRE_LOG(kWarning, "JavaVMExt")
        << runtime_name_ << ": DeleteGlobalRef on invalid/stale reference";
    return false;
  }
  NotifyRemove(obj.ok() ? obj.value() : ObjectId{});
  return true;
}

Result<IndirectRef> JavaVMExt::AddWeakGlobalRef(ObjectId obj) {
  if (aborted_) {
    return FailedPrecondition(StrCat(runtime_name_, " runtime aborted"));
  }
  auto result = weak_globals_.Add(weak_globals_.CurrentCookie(), obj);
  if (!result.ok()) {
    Abort(StrCat("JNI ERROR (app bug): ", weak_globals_.DumpSummary()));
    return result;
  }
  NotifyWeak(obs::Label::kJgrWeakAdd, obj);
  return result;
}

bool JavaVMExt::DeleteWeakGlobalRef(IndirectRef ref) {
  auto obj = weak_globals_.Get(ref);
  if (!weak_globals_.Remove(weak_globals_.CurrentCookie(), ref)) return false;
  NotifyWeak(obs::Label::kJgrWeakRemove, obj.ok() ? obj.value() : ObjectId{});
  return true;
}

Result<ObjectId> JavaVMExt::DecodeGlobal(IndirectRef ref) const {
  return globals_.Get(ref);
}

void JavaVMExt::NotifyAdd(ObjectId obj) {
  const TimeUs now = clock_->NowUs();
  const std::size_t count = globals_.Size();
  // Functional event: the defense's monitors consume kJgr from the bus. The
  // Wants() guard keeps the unwatched path to one branch per add.
  if (source_.Active(obs::Category::kJgr)) {
    source_.bus->Emit(obs::MakeEvent(
        obs::Category::kJgr, obs::Label::kJgrAdd, now, source_.pid,
        source_.uid, static_cast<std::int64_t>(count), obj.value()));
  }
}

void JavaVMExt::NotifyRemove(ObjectId obj) {
  const TimeUs now = clock_->NowUs();
  const std::size_t count = globals_.Size();
  if (source_.Active(obs::Category::kJgr)) {
    source_.bus->Emit(obs::MakeEvent(
        obs::Category::kJgr, obs::Label::kJgrRemove, now, source_.pid,
        source_.uid, static_cast<std::int64_t>(count), obj.value()));
  }
}

void JavaVMExt::NotifyWeak(obs::Label label, ObjectId obj) {
  if (!emit_weak_events_) return;
  if (!source_.Active(obs::Category::kJgr)) return;
  source_.bus->Emit(obs::MakeEvent(
      obs::Category::kJgr, label, clock_->NowUs(), source_.pid, source_.uid,
      static_cast<std::int64_t>(weak_globals_.Size()), obj.value()));
}

void JavaVMExt::Abort(const std::string& reason) {
  if (aborted_) return;
  aborted_ = true;
  JGRE_LOG(kError, "art") << runtime_name_ << ": " << reason;
  if (source_.Active(obs::Category::kJgr)) {
    source_.bus->Emit(obs::MakeEvent(
        obs::Category::kJgr, obs::Label::kJgrOverflow, clock_->NowUs(),
        source_.pid, source_.uid,
        static_cast<std::int64_t>(globals_.Size())));
  }
  if (abort_handler_) abort_handler_(reason);
}

}  // namespace jgre::rt
