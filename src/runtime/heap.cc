#include "runtime/heap.h"

#include <algorithm>

namespace jgre::rt {

ObjectId Heap::PushObject(ObjectKind kind, StringInterner::Id label) {
  const ObjectId id{next_id_++};
  kind_.push_back(static_cast<std::uint8_t>(kind));
  holds_.push_back(0);
  label_.push_back(label);
  managed_ref_.push_back(kHeapNullRef);
  weak_ref_.push_back(kHeapNullRef);
  node_.push_back(NodeId{}.value());
  ++live_count_;
  // Fresh objects start unheld, so they are collection candidates until
  // someone takes a hold.
  unheld_candidates_.push_back(id);
  return id;
}

ObjectId Heap::Alloc(ObjectKind kind, std::string_view label) {
  return PushObject(kind, labels_.Intern(label));
}

ObjectId Heap::Alloc(ObjectKind kind, std::string_view label_prefix,
                     std::string_view label_suffix) {
  label_scratch_.assign(label_prefix);
  label_scratch_.append(label_suffix);
  return PushObject(kind, labels_.Intern(label_scratch_));
}

void Heap::Free(ObjectId id) {
  if (!IsAlive(id)) return;
  const std::size_t slot = SlotOf(id);
  kind_[slot] = 0;
  holds_[slot] = kDeadSlot;
  label_[slot] = 0;
  managed_ref_[slot] = kHeapNullRef;
  weak_ref_[slot] = kHeapNullRef;
  node_[slot] = NodeId{}.value();
  --live_count_;
}

std::vector<ObjectId> Heap::UnheldObjects() const {
  std::vector<ObjectId> out;
  for (std::int64_t id = 1; id < next_id_; ++id) {
    if (holds_[static_cast<std::size_t>(id - 1)] == 0) out.push_back(ObjectId{id});
  }
  return out;
}

void Heap::TakeUnheldCandidates(std::vector<ObjectId>* out) {
  out->clear();
  if (unheld_candidates_.empty()) return;
  // Allocation-order transitions arrive ascending already; skip the sort
  // for that common case (garbage minted in id order, swept in id order).
  if (!std::is_sorted(unheld_candidates_.begin(),
                      unheld_candidates_.end())) {
    std::sort(unheld_candidates_.begin(), unheld_candidates_.end());
  }
  ObjectId last{};
  for (ObjectId id : unheld_candidates_) {
    if (id == last) continue;  // duplicate transition
    last = id;
    if (IsAlive(id) && holds_[SlotOf(id)] == 0) out->push_back(id);
  }
  unheld_candidates_.clear();
}

void Heap::SaveState(snapshot::Serializer& out) const {
  out.Marker(0x48454132);  // "HEA2": SoA arena layout
  out.I64(next_id_);
  labels_.SaveState(out);
  out.U64(live_count_);
  for (std::int64_t id = 1; id < next_id_; ++id) {
    const std::size_t slot = static_cast<std::size_t>(id - 1);
    if (holds_[slot] == kDeadSlot) continue;
    out.I64(id);
    out.U8(kind_[slot]);
    out.I64(holds_[slot]);
    out.U32(label_[slot]);
    out.U64(managed_ref_[slot]);
    out.U64(weak_ref_[slot]);
    out.I64(node_[slot]);
  }
}

void Heap::RestoreState(snapshot::Deserializer& in) {
  in.Marker(0x48454132);
  next_id_ = in.I64();
  labels_.RestoreState(in);
  kind_.clear();
  holds_.clear();
  label_.clear();
  managed_ref_.clear();
  weak_ref_.clear();
  node_.clear();
  unheld_candidates_.clear();
  live_count_ = 0;
  if (next_id_ < 1) {
    in.Fail("corrupt heap allocation cursor");
    return;
  }
  const std::size_t slots = static_cast<std::size_t>(next_id_ - 1);
  kind_.assign(slots, 0);
  holds_.assign(slots, kDeadSlot);
  label_.assign(slots, 0);
  managed_ref_.assign(slots, kHeapNullRef);
  weak_ref_.assign(slots, kHeapNullRef);
  node_.assign(slots, NodeId{}.value());
  const std::uint64_t live = in.U64();
  for (std::uint64_t i = 0; i < live && in.ok(); ++i) {
    const std::int64_t id = in.I64();
    if (id < 1 || id >= next_id_) {
      in.Fail("heap object id out of range");
      return;
    }
    const std::size_t slot = static_cast<std::size_t>(id - 1);
    kind_[slot] = in.U8();
    holds_[slot] = static_cast<std::int32_t>(in.I64());
    label_[slot] = in.U32();
    managed_ref_[slot] = in.U64();
    weak_ref_[slot] = in.U64();
    node_[slot] = in.I64();
    ++live_count_;
    if (holds_[slot] == 0) unheld_candidates_.push_back(ObjectId{id});
  }
}

}  // namespace jgre::rt
