#include "runtime/heap.h"

#include <cassert>

namespace jgre::rt {

ObjectId Heap::Alloc(ObjectKind kind, std::string label) {
  const ObjectId id{next_id_++};
  HeapObject obj;
  obj.id = id;
  obj.kind = kind;
  obj.label = std::move(label);
  objects_.emplace(id, std::move(obj));
  return id;
}

const HeapObject& Heap::Get(ObjectId id) const {
  auto it = objects_.find(id);
  assert(it != objects_.end() && "access to freed heap object");
  return it->second;
}

void Heap::AddHold(ObjectId id) {
  auto it = objects_.find(id);
  assert(it != objects_.end());
  ++it->second.strong_holds;
}

void Heap::RemoveHold(ObjectId id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return;  // already collected
  assert(it->second.strong_holds > 0 && "hold underflow");
  --it->second.strong_holds;
}

std::int32_t Heap::Holds(ObjectId id) const { return Get(id).strong_holds; }

ObjectKind Heap::Kind(ObjectId id) const { return Get(id).kind; }

const std::string& Heap::Label(ObjectId id) const { return Get(id).label; }

void Heap::Free(ObjectId id) { objects_.erase(id); }

std::vector<ObjectId> Heap::UnheldObjects() const {
  std::vector<ObjectId> out;
  for (const auto& [id, obj] : objects_) {
    if (obj.strong_holds == 0) out.push_back(id);
  }
  return out;
}

}  // namespace jgre::rt
