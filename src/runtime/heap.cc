#include "runtime/heap.h"

#include <algorithm>
#include <cassert>

namespace jgre::rt {

ObjectId Heap::Alloc(ObjectKind kind, std::string label) {
  const ObjectId id{next_id_++};
  HeapObject obj;
  obj.id = id;
  obj.kind = kind;
  obj.label = std::move(label);
  objects_.emplace(id, std::move(obj));
  return id;
}

const HeapObject& Heap::Get(ObjectId id) const {
  auto it = objects_.find(id);
  assert(it != objects_.end() && "access to freed heap object");
  return it->second;
}

void Heap::AddHold(ObjectId id) {
  auto it = objects_.find(id);
  assert(it != objects_.end());
  ++it->second.strong_holds;
}

void Heap::RemoveHold(ObjectId id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return;  // already collected
  assert(it->second.strong_holds > 0 && "hold underflow");
  --it->second.strong_holds;
}

std::int32_t Heap::Holds(ObjectId id) const { return Get(id).strong_holds; }

ObjectKind Heap::Kind(ObjectId id) const { return Get(id).kind; }

const std::string& Heap::Label(ObjectId id) const { return Get(id).label; }

void Heap::Free(ObjectId id) { objects_.erase(id); }

std::vector<ObjectId> Heap::UnheldObjects() const {
  std::vector<ObjectId> out;
  for (const auto& [id, obj] : objects_) {
    if (obj.strong_holds == 0) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Heap::SaveState(snapshot::Serializer& out) const {
  out.I64(next_id_);
  std::vector<ObjectId> ids;
  ids.reserve(objects_.size());
  for (const auto& [id, obj] : objects_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  out.U64(ids.size());
  for (ObjectId id : ids) {
    const HeapObject& obj = objects_.at(id);
    out.I64(id.value());
    out.U8(static_cast<std::uint8_t>(obj.kind));
    out.I64(obj.strong_holds);
    out.Str(obj.label);
  }
}

void Heap::RestoreState(snapshot::Deserializer& in) {
  next_id_ = in.I64();
  objects_.clear();
  const std::uint64_t n = in.U64();
  for (std::uint64_t i = 0; i < n && in.ok(); ++i) {
    HeapObject obj;
    obj.id = ObjectId{in.I64()};
    obj.kind = static_cast<ObjectKind>(in.U8());
    obj.strong_holds = static_cast<std::int32_t>(in.I64());
    obj.label = in.Str();
    objects_.emplace(obj.id, std::move(obj));
  }
}

}  // namespace jgre::rt
