// Work-stealing thread pool for the experiment harness.
//
// Each worker owns a deque: it pops its own tasks from the front and, when
// empty, steals from the back of a sibling's deque, so a worker that drew
// short tasks drains the queues of workers stuck on long ones (the
// per-interface attack simulations vary ~20x in duration — round-robin
// assignment alone would leave most cores idle at the tail).
//
// Tasks are opaque closures; the pool makes no fairness or ordering
// guarantees. Determinism of the *experiments* comes from task isolation
// (one AndroidSystem per task, no shared mutable state), not from the
// schedule — see experiment_runner.h, which collects results in submission
// order regardless of completion order.
#ifndef JGRE_HARNESS_THREAD_POOL_H_
#define JGRE_HARNESS_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace jgre::harness {

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);

  // Drains nothing: joins workers after they finish in-flight tasks; tasks
  // still queued are abandoned. Call Wait() first if completion matters.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task (round-robin across worker deques).
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has completed.
  void Wait();

  int thread_count() const { return static_cast<int>(threads_.size()); }

  // Number of tasks a worker obtained from a sibling's deque (observability;
  // nonzero whenever stealing actually balanced load).
  std::int64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> queue;
  };

  bool TryPopOwn(std::size_t idx, std::function<void()>* task);
  bool TrySteal(std::size_t idx, std::function<void()>* task);
  void WorkerLoop(std::size_t idx);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;  // new work or shutdown
  std::condition_variable idle_cv_;  // all submitted work finished
  std::uint64_t work_epoch_ = 0;     // bumped per Submit, guarded by wake_mu_
  bool stop_ = false;                // guarded by wake_mu_

  std::atomic<std::size_t> next_queue_{0};
  std::atomic<std::int64_t> unfinished_{0};
  std::atomic<std::int64_t> steals_{0};
};

}  // namespace jgre::harness

#endif  // JGRE_HARNESS_THREAD_POOL_H_
