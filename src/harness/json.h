// Minimal JSON document builder for BENCH_*.json emission.
//
// Deliberately tiny: insertion-ordered objects (so emitted files diff
// cleanly and are byte-stable across runs), shortest-round-trip double
// formatting via std::to_chars, no parsing. Not a general JSON library.
#ifndef JGRE_HARNESS_JSON_H_
#define JGRE_HARNESS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace jgre::harness {

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(int v) : value_(static_cast<std::int64_t>(v)) {}
  Json(long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(long long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(unsigned v) : value_(static_cast<std::uint64_t>(v)) {}
  Json(unsigned long v) : value_(static_cast<std::uint64_t>(v)) {}
  Json(unsigned long long v) : value_(static_cast<std::uint64_t>(v)) {}
  Json(double v) : value_(v) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string_view s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}

  static Json Object() {
    Json j;
    j.value_ = ObjectStorage{};
    return j;
  }
  static Json Array() {
    Json j;
    j.value_ = ArrayStorage{};
    return j;
  }

  // Object insert (last write for a repeated key wins in consumers; we never
  // repeat keys). Returns *this for chaining.
  Json& Set(std::string key, Json value);
  // Array append.
  Json& Push(Json value);

  bool is_object() const { return std::holds_alternative<ObjectStorage>(value_); }
  bool is_array() const { return std::holds_alternative<ArrayStorage>(value_); }

  // Serializes with 2-space indentation and a trailing newline at top level.
  std::string Dump() const;

 private:
  using ObjectStorage = std::vector<std::pair<std::string, Json>>;
  using ArrayStorage = std::vector<Json>;

  void DumpTo(std::string* out, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, std::uint64_t, double,
               std::string, ArrayStorage, ObjectStorage>
      value_;
};

// Writes `doc.Dump()` to `path`. Returns false (and logs to stderr) on I/O
// failure.
bool WriteJsonFile(const std::string& path, const Json& doc);

}  // namespace jgre::harness

#endif  // JGRE_HARNESS_JSON_H_
