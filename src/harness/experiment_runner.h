// Experiment harness: ordered parallel execution of independent simulations
// plus the shared --jobs/--seed/--json CLI used by every bench binary.
//
// Determinism contract: each task builds its own core::AndroidSystem from its
// own seed and shares no mutable state with other tasks. RunOrdered() stores
// task i's result in slot i, so downstream aggregation/printing sees results
// in submission order no matter which worker finished first, and the text and
// JSON output of a bench is byte-identical for --jobs 1 and --jobs N.
#ifndef JGRE_HARNESS_EXPERIMENT_RUNNER_H_
#define JGRE_HARNESS_EXPERIMENT_RUNNER_H_

#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "harness/thread_pool.h"

namespace jgre::harness {

// A bench-specific flag the shared parser should accept (e.g. --curves).
// Matched flags land in HarnessOptions::extra (name, then the value if
// `takes_value`); anything undeclared is a parse error.
struct HarnessFlag {
  std::string name;  // including the leading "--"
  bool takes_value = false;
  std::string help;  // one-line description for the usage text
};

// Static description a bench binary hands to the CLI parser.
struct HarnessSpec {
  // Short bench name; the default JSON path is "BENCH_<name>.json".
  std::string name;
  // Overrides the basename of the default JSON path ("" = use `name`).
  std::string json_name;
  std::uint64_t default_seed = 42;
  // Bench-specific flags beyond the shared set.
  std::vector<HarnessFlag> extra_flags;
  // Observability: advertise `--trace PATH` / `--metrics` support.
  bool supports_trace = false;
  bool supports_metrics = false;
  // Free-form extra usage text appended to the flag list ("" if none).
  std::string extra_usage;
};

struct HarnessOptions {
  int jobs = 1;            // resolved worker count (>= 1)
  std::uint64_t seed = 0;  // base seed (spec default unless --seed given)
  bool emit_json = true;   // --no-json disables
  std::string json_path;   // resolved ("BENCH_<name>.json" unless --json)
  std::string trace_path;  // --trace PATH ("" = tracing off)
  bool emit_metrics = false;  // --metrics seen
  bool help = false;       // --help seen: usage already printed, exit 0
  std::string error;       // non-empty: parse failure, usage printed, exit 2
  // Matched spec.extra_flags, in order: the flag name, then its value for
  // value-taking flags.
  std::vector<std::string> extra;
};

// Parses `--jobs N` (0 = hardware concurrency), `--seed S`, `--json PATH`,
// `--no-json`, `--help`, plus `--trace PATH` / `--metrics` when the spec
// supports them and any declared spec.extra_flags. Every flag also accepts
// the `--flag=value` spelling. Unknown arguments are parse errors: the
// usage text goes to stderr and `error` is set.
HarnessOptions ParseHarnessOptions(const HarnessSpec& spec, int argc,
                                   char** argv);

// True if `name` (e.g. "--curves") was matched into `options.extra`.
bool HasFlag(const HarnessOptions& options, std::string_view name);

// The value following `name` in `options.extra`, or nullptr. Only meaningful
// for flags declared with takes_value.
const std::string* FlagValue(const HarnessOptions& options,
                             std::string_view name);

// 0 -> std::thread::hardware_concurrency (min 1); otherwise clamped >= 1.
int ResolveJobs(int jobs);

// Runs `task(0) .. task(task_count-1)`, at most `jobs` concurrently, and
// returns the results indexed by task id (= submission order). jobs <= 1 (or
// a single task) executes inline on the calling thread with no pool at all —
// the serial path is exactly the pre-harness loop. If any task throws, the
// first exception (by task index) is rethrown after all tasks finish.
template <typename Result>
std::vector<Result> RunOrdered(std::size_t task_count, int jobs,
                               const std::function<Result(std::size_t)>& task) {
  std::vector<Result> results(task_count);
  jobs = ResolveJobs(jobs);
  if (jobs <= 1 || task_count <= 1) {
    for (std::size_t i = 0; i < task_count; ++i) results[i] = task(i);
    return results;
  }
  std::vector<std::exception_ptr> errors(task_count);
  {
    ThreadPool pool(jobs > static_cast<int>(task_count)
                        ? static_cast<int>(task_count)
                        : jobs);
    for (std::size_t i = 0; i < task_count; ++i) {
      pool.Submit([&results, &errors, &task, i] {
        try {
          results[i] = task(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.Wait();
  }
  for (const std::exception_ptr& err : errors) {
    if (err) std::rethrow_exception(err);
  }
  return results;
}

}  // namespace jgre::harness

#endif  // JGRE_HARNESS_EXPERIMENT_RUNNER_H_
