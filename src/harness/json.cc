#include "harness/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

namespace jgre::harness {
namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; null is the usual stand-in.
    *out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, res.ptr);
}

void Indent(std::string* out, int depth) {
  out->append(static_cast<std::size_t>(depth) * 2, ' ');
}

}  // namespace

Json& Json::Set(std::string key, Json value) {
  if (!is_object()) value_ = ObjectStorage{};
  std::get<ObjectStorage>(value_).emplace_back(std::move(key),
                                              std::move(value));
  return *this;
}

Json& Json::Push(Json value) {
  if (!is_array()) value_ = ArrayStorage{};
  std::get<ArrayStorage>(value_).push_back(std::move(value));
  return *this;
}

void Json::DumpTo(std::string* out, int depth) const {
  switch (value_.index()) {
    case 0:
      *out += "null";
      break;
    case 1:
      *out += std::get<bool>(value_) ? "true" : "false";
      break;
    case 2:
      *out += std::to_string(std::get<std::int64_t>(value_));
      break;
    case 3:
      *out += std::to_string(std::get<std::uint64_t>(value_));
      break;
    case 4:
      AppendDouble(out, std::get<double>(value_));
      break;
    case 5:
      AppendEscaped(out, std::get<std::string>(value_));
      break;
    case 6: {
      const auto& arr = std::get<ArrayStorage>(value_);
      if (arr.empty()) {
        *out += "[]";
        break;
      }
      *out += "[\n";
      for (std::size_t i = 0; i < arr.size(); ++i) {
        Indent(out, depth + 1);
        arr[i].DumpTo(out, depth + 1);
        if (i + 1 < arr.size()) out->push_back(',');
        out->push_back('\n');
      }
      Indent(out, depth);
      out->push_back(']');
      break;
    }
    case 7: {
      const auto& obj = std::get<ObjectStorage>(value_);
      if (obj.empty()) {
        *out += "{}";
        break;
      }
      *out += "{\n";
      for (std::size_t i = 0; i < obj.size(); ++i) {
        Indent(out, depth + 1);
        AppendEscaped(out, obj[i].first);
        *out += ": ";
        obj[i].second.DumpTo(out, depth + 1);
        if (i + 1 < obj.size()) out->push_back(',');
        out->push_back('\n');
      }
      Indent(out, depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out, 0);
  out.push_back('\n');
  return out;
}

bool WriteJsonFile(const std::string& path, const Json& doc) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    std::cerr << "harness: cannot open " << path << " for writing\n";
    return false;
  }
  file << doc.Dump();
  file.flush();
  if (!file) {
    std::cerr << "harness: write to " << path << " failed\n";
    return false;
  }
  return true;
}

}  // namespace jgre::harness
