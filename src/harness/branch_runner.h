// BranchRunner — checkpoint a shared experiment prefix once, then fan out N
// independent branches across the work-stealing pool.
//
// Parameter sweeps (threshold ablations, scoring sensitivity, response-delay
// curves) share an identical expensive prefix: boot + warmup workload. A
// cold sweep re-simulates that prefix once per point; BranchRunner builds it
// once, captures a snapshot::SystemSnapshot, and restores each branch from
// the shared in-memory image — preserving RunOrdered's submission-order
// determinism, so a sweep's output is byte-identical for --jobs 1 and
// --jobs N, and (by the divergence audit) byte-identical to the cold sweep.
//
// CLI integration: benches declare BranchFlags() in their HarnessSpec and
// feed the parsed options through BranchOptionsFromHarness to get
//   --cold               re-simulate the prefix per branch (baseline mode)
//   --checkpoint FILE    write the captured checkpoint (+ JSON manifest)
//   --resume FILE        load the prefix checkpoint instead of building it
#ifndef JGRE_HARNESS_BRANCH_RUNNER_H_
#define JGRE_HARNESS_BRANCH_RUNNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "harness/experiment_runner.h"
#include "sim/device.h"
#include "snapshot/snapshot.h"

namespace jgre::harness {

struct BranchOptions {
  int jobs = 1;
  bool cold = false;            // rebuild the prefix per branch
  std::string checkpoint_path;  // write the checkpoint after capture
  std::string resume_path;      // load the checkpoint instead of building
};

// The three branch flags, ready to splice into HarnessSpec::extra_flags.
std::vector<HarnessFlag> BranchFlags();

// Extracts jobs/--cold/--checkpoint/--resume from parsed harness options.
BranchOptions BranchOptionsFromHarness(const HarnessOptions& options);

class BranchRunner {
 public:
  // `prefix` defines the shared phase: seed, system config, and warmup
  // (sim::DeviceSpec::WithWarmup). Branch specs passed to Run must share the
  // prefix's sim::PrefixKey (same boot seed/system config/warmup) so that a
  // cold branch rebuilds the exact prefix the snapshot captured.
  BranchRunner(sim::DeviceSpec prefix, BranchOptions options);

  // Builds the shared prefix and captures it (or loads --resume). No-op in
  // cold mode and on repeated calls. Separate from Run so callers can time
  // the prefix/capture phases; Run calls it implicitly.
  Status Prepare();

  // Runs `count` branches, at most options.jobs concurrently, results in
  // submission order. Branch i is configured by branch_spec(i) — its device
  // built on a system restored from the shared checkpoint (or a cold prefix
  // under --cold) — then handed to task(i, device).
  template <typename Result>
  std::vector<Result> Run(
      std::size_t count,
      const std::function<sim::DeviceSpec(std::size_t)>& branch_spec,
      const std::function<Result(std::size_t, sim::DeviceSim&)>& task) {
    if (!options_.cold) {
      Status prepared = Prepare();
      if (!prepared.ok()) {
        throw std::runtime_error(prepared.ToString());
      }
    }
    return RunOrdered<Result>(
        count, options_.jobs, [this, &branch_spec, &task](std::size_t i) {
          sim::DeviceFactory factory(branch_spec(i));
          std::unique_ptr<sim::DeviceSim> device =
              options_.cold ? factory.CreateDevice()
                            : factory.CreateDeviceOn(RestoreBranchSystem(i));
          return task(i, *device);
        });
  }

  // The captured checkpoint (null before Prepare or in cold mode).
  const snapshot::SystemSnapshot* snapshot() const {
    return snapshot_.has_value() ? &*snapshot_ : nullptr;
  }
  const BranchOptions& options() const { return options_; }

  // A fresh system restored from the shared checkpoint image. Exposed for
  // the divergence audit, the snapshot bench, and the fuzz campaign's
  // snapshot-reset loop; Run uses it per branch. A restore failure throws
  // with the failing shard/branch index (when given) and the checkpoint's
  // manifest path, so a corrupt image is attributable mid-campaign.
  std::unique_ptr<core::AndroidSystem> RestoreBranchSystem(
      std::optional<std::size_t> branch_index = std::nullopt) const;

 private:
  sim::DeviceSpec prefix_;
  BranchOptions options_;
  std::optional<snapshot::SystemSnapshot> snapshot_;
};

}  // namespace jgre::harness

#endif  // JGRE_HARNESS_BRANCH_RUNNER_H_
