#include "harness/experiment_runner.h"

#include <charconv>
#include <cstring>
#include <iostream>
#include <optional>
#include <string_view>
#include <thread>

namespace jgre::harness {
namespace {

void PrintUsage(const HarnessSpec& spec, std::ostream& out) {
  out << "usage: bench_" << spec.name << " [options]\n"
      << "  --jobs N     run N simulations concurrently (0 = all cores; "
         "default 1)\n"
      << "  --seed S     base RNG seed (default " << spec.default_seed << ")\n"
      << "  --json PATH  write machine-readable results to PATH\n"
      << "               (default BENCH_"
      << (spec.json_name.empty() ? spec.name : spec.json_name) << ".json)\n"
      << "  --no-json    skip the JSON file\n";
  if (spec.supports_trace) {
    out << "  --trace PATH write a Chrome-trace JSON timeline to PATH\n"
        << "               (loadable in ui.perfetto.dev / chrome://tracing)\n";
  }
  if (spec.supports_metrics) {
    out << "  --metrics    include the metrics table in the JSON output\n";
  }
  for (const HarnessFlag& flag : spec.extra_flags) {
    std::string left = flag.name + (flag.takes_value ? " V" : "");
    if (left.size() < 11) left.resize(11, ' ');
    out << "  " << left << "  " << flag.help << "\n";
  }
  out << "  --help       this text\n";
  if (!spec.extra_usage.empty()) out << spec.extra_usage;
}

template <typename T>
bool ParseNumber(std::string_view text, T* out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto res = std::from_chars(begin, end, *out);
  return res.ec == std::errc{} && res.ptr == end;
}

}  // namespace

int ResolveJobs(int jobs) {
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return jobs < 1 ? 1 : jobs;
}

HarnessOptions ParseHarnessOptions(const HarnessSpec& spec, int argc,
                                   char** argv) {
  HarnessOptions options;
  options.seed = spec.default_seed;
  options.json_path =
      "BENCH_" + (spec.json_name.empty() ? spec.name : spec.json_name) +
      ".json";

  auto find_extra = [&spec](std::string_view name) -> const HarnessFlag* {
    for (const HarnessFlag& flag : spec.extra_flags) {
      if (flag.name == name) return &flag;
    }
    return nullptr;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    // Every long flag also accepts the --flag=value spelling.
    std::string_view name = arg;
    std::optional<std::string> inline_value;
    if (arg.size() > 2 && arg.substr(0, 2) == "--") {
      if (const auto eq = arg.find('='); eq != std::string_view::npos) {
        name = arg.substr(0, eq);
        inline_value = std::string(arg.substr(eq + 1));
      }
    }
    // Resolves the flag's value from --flag=value or the next argument.
    auto take_value = [&](const char* flag) -> std::optional<std::string> {
      if (inline_value.has_value()) return inline_value;
      if (i + 1 >= argc) {
        options.error = std::string(flag) + " requires a value";
        return std::nullopt;
      }
      return std::string(argv[++i]);
    };
    auto reject_value = [&](const char* flag) -> bool {
      if (!inline_value.has_value()) return true;
      options.error = std::string(flag) + " does not take a value";
      return false;
    };

    if (name == "--help" || name == "-h") {
      options.help = true;
      PrintUsage(spec, std::cout);
      return options;
    }
    if (name == "--jobs" || name == "-j") {
      const auto value = take_value("--jobs");
      if (!value.has_value()) break;
      int jobs = 0;
      if (!ParseNumber(*value, &jobs) || jobs < 0) {
        options.error =
            "--jobs expects a non-negative integer, got '" + *value + "'";
        break;
      }
      options.jobs = ResolveJobs(jobs);
    } else if (name == "--seed") {
      const auto value = take_value("--seed");
      if (!value.has_value()) break;
      std::uint64_t seed = 0;
      if (!ParseNumber(*value, &seed)) {
        options.error =
            "--seed expects an unsigned integer, got '" + *value + "'";
        break;
      }
      options.seed = seed;
    } else if (name == "--json") {
      const auto value = take_value("--json");
      if (!value.has_value()) break;
      options.json_path = *value;
    } else if (name == "--no-json") {
      if (!reject_value("--no-json")) break;
      options.emit_json = false;
    } else if (spec.supports_trace && name == "--trace") {
      const auto value = take_value("--trace");
      if (!value.has_value()) break;
      options.trace_path = *value;
    } else if (spec.supports_metrics && name == "--metrics") {
      if (!reject_value("--metrics")) break;
      options.emit_metrics = true;
    } else if (const HarnessFlag* flag = find_extra(name)) {
      options.extra.emplace_back(name);
      if (flag->takes_value) {
        const auto value = take_value(flag->name.c_str());
        if (!value.has_value()) break;
        options.extra.push_back(*value);
      } else if (!reject_value(flag->name.c_str())) {
        break;
      }
    } else {
      options.error = "unknown option '" + std::string(arg) + "'";
      break;
    }
  }

  if (!options.error.empty()) {
    std::cerr << "error: " << options.error << "\n";
    PrintUsage(spec, std::cerr);
  }
  return options;
}

bool HasFlag(const HarnessOptions& options, std::string_view name) {
  for (const std::string& item : options.extra) {
    if (item == name) return true;
  }
  return false;
}

const std::string* FlagValue(const HarnessOptions& options,
                             std::string_view name) {
  for (std::size_t i = 0; i + 1 < options.extra.size(); ++i) {
    if (options.extra[i] == name) return &options.extra[i + 1];
  }
  return nullptr;
}

}  // namespace jgre::harness
