#include "harness/experiment_runner.h"

#include <charconv>
#include <cstring>
#include <iostream>
#include <string_view>
#include <thread>

namespace jgre::harness {
namespace {

void PrintUsage(const HarnessSpec& spec, std::ostream& out) {
  out << "usage: bench_" << spec.name << " [options]\n"
      << "  --jobs N     run N simulations concurrently (0 = all cores; "
         "default 1)\n"
      << "  --seed S     base RNG seed (default " << spec.default_seed << ")\n"
      << "  --json PATH  write machine-readable results to PATH\n"
      << "               (default BENCH_"
      << (spec.json_name.empty() ? spec.name : spec.json_name) << ".json)\n"
      << "  --no-json    skip the JSON file\n"
      << "  --help       this text\n";
  if (!spec.extra_usage.empty()) out << spec.extra_usage;
}

template <typename T>
bool ParseNumber(std::string_view text, T* out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto res = std::from_chars(begin, end, *out);
  return res.ec == std::errc{} && res.ptr == end;
}

}  // namespace

int ResolveJobs(int jobs) {
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return jobs < 1 ? 1 : jobs;
}

HarnessOptions ParseHarnessOptions(const HarnessSpec& spec, int argc,
                                   char** argv) {
  HarnessOptions options;
  options.seed = spec.default_seed;
  options.json_path =
      "BENCH_" + (spec.json_name.empty() ? spec.name : spec.json_name) +
      ".json";

  auto need_value = [&](int i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      options.error = std::string(flag) + " requires a value";
      return nullptr;
    }
    return argv[i + 1];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      options.help = true;
      PrintUsage(spec, std::cout);
      return options;
    }
    if (arg == "--jobs" || arg == "-j") {
      const char* value = need_value(i, "--jobs");
      if (value == nullptr) break;
      int jobs = 0;
      if (!ParseNumber(std::string_view(value), &jobs) || jobs < 0) {
        options.error = "--jobs expects a non-negative integer, got '" +
                        std::string(value) + "'";
        break;
      }
      options.jobs = ResolveJobs(jobs);
      ++i;
    } else if (arg == "--seed") {
      const char* value = need_value(i, "--seed");
      if (value == nullptr) break;
      std::uint64_t seed = 0;
      if (!ParseNumber(std::string_view(value), &seed)) {
        options.error =
            "--seed expects an unsigned integer, got '" + std::string(value) +
            "'";
        break;
      }
      options.seed = seed;
      ++i;
    } else if (arg == "--json") {
      const char* value = need_value(i, "--json");
      if (value == nullptr) break;
      options.json_path = value;
      ++i;
    } else if (arg == "--no-json") {
      options.emit_json = false;
    } else {
      options.extra.emplace_back(arg);
    }
  }

  if (!options.error.empty()) {
    std::cerr << "error: " << options.error << "\n";
    PrintUsage(spec, std::cerr);
  }
  return options;
}

}  // namespace jgre::harness
