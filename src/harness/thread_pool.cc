#include "harness/thread_pool.h"

#include <utility>

namespace jgre::harness {

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    threads_.emplace_back(
        [this, i] { WorkerLoop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  const std::size_t target =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  unfinished_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->queue.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    ++work_epoch_;
  }
  wake_cv_.notify_all();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  idle_cv_.wait(lock, [this] {
    return unfinished_.load(std::memory_order_acquire) == 0;
  });
}

bool ThreadPool::TryPopOwn(std::size_t idx, std::function<void()>* task) {
  Worker& w = *workers_[idx];
  std::lock_guard<std::mutex> lock(w.mu);
  if (w.queue.empty()) return false;
  *task = std::move(w.queue.front());
  w.queue.pop_front();
  return true;
}

bool ThreadPool::TrySteal(std::size_t idx, std::function<void()>* task) {
  const std::size_t n = workers_.size();
  for (std::size_t offset = 1; offset < n; ++offset) {
    Worker& victim = *workers_[(idx + offset) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.queue.empty()) continue;
    *task = std::move(victim.queue.back());
    victim.queue.pop_back();
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(std::size_t idx) {
  for (;;) {
    std::uint64_t observed_epoch;
    {
      std::lock_guard<std::mutex> lock(wake_mu_);
      if (stop_) return;
      observed_epoch = work_epoch_;
    }
    std::function<void()> task;
    if (TryPopOwn(idx, &task) || TrySteal(idx, &task)) {
      task();
      if (unfinished_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last outstanding task: wake Wait() callers. Empty critical section
        // pairs with the predicate check inside Wait().
        { std::lock_guard<std::mutex> lock(wake_mu_); }
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this, observed_epoch] {
      return stop_ || work_epoch_ != observed_epoch;
    });
  }
}

}  // namespace jgre::harness
