// BenchReport — the one BENCH_*.json writer every bench binary shares.
//
// Before this, each bench hand-rolled its JSON header; the files agreed on
// "bench"/"seed" by convention only, and schema/version keys existed for a
// single bench. BenchReport pins a common envelope, emitted first and in a
// fixed order, so every BENCH_*.json starts:
//
//   {
//     "schema": "jgre.bench.<name>/v<N>",
//     "schema_version": N,
//     "bench": "<name>",
//     "seed": S,
//     "jobs": J,
//     ...payload keys in bench-defined order...
//   }
//
// The "jobs" key is 0 by default — the marker that the file is jobs-invariant
// (the standing determinism contract: byte-identical output for any --jobs).
// CI byte-compares such files across different --jobs values, so the actual
// worker count must NOT appear in them. Only benches whose payload is
// intrinsically jobs-sensitive (wall-clock timings, speedup ratios) opt in
// with record_jobs=true, which stamps the resolved worker count instead.
#ifndef JGRE_HARNESS_BENCH_REPORT_H_
#define JGRE_HARNESS_BENCH_REPORT_H_

#include <string>
#include <utility>

#include "harness/experiment_runner.h"
#include "harness/json.h"

namespace jgre::harness {

class BenchReport {
 public:
  // `name` is the schema name (usually spec.name); the envelope's seed comes
  // from the parsed options. schema_version bumps when a bench's payload
  // shape changes incompatibly.
  BenchReport(const std::string& name, const HarnessOptions& options,
              int schema_version = 1, bool record_jobs = false);

  // Payload passthrough, preserving insertion order after the envelope.
  BenchReport& Set(std::string key, Json value) {
    doc_.Set(std::move(key), std::move(value));
    return *this;
  }
  Json& doc() { return doc_; }

  // Writes to options.json_path unless --no-json was given. Returns false on
  // I/O failure (an honored --no-json returns true).
  bool Write() const;

 private:
  Json doc_ = Json::Object();
  bool emit_ = true;
  std::string path_;
};

}  // namespace jgre::harness

#endif  // JGRE_HARNESS_BENCH_REPORT_H_
