#include "harness/bench_report.h"

namespace jgre::harness {

BenchReport::BenchReport(const std::string& name,
                         const HarnessOptions& options, int schema_version,
                         bool record_jobs)
    : emit_(options.emit_json), path_(options.json_path) {
  doc_.Set("schema",
           "jgre.bench." + name + "/v" + std::to_string(schema_version));
  doc_.Set("schema_version", schema_version);
  doc_.Set("bench", name);
  doc_.Set("seed", options.seed);
  doc_.Set("jobs", record_jobs ? ResolveJobs(options.jobs) : 0);
}

bool BenchReport::Write() const {
  if (!emit_) return true;
  return WriteJsonFile(path_, doc_);
}

}  // namespace jgre::harness
