#include "harness/obs_json.h"

namespace jgre::harness {

Json MetricsToJson(const obs::MetricsRegistry& registry) {
  Json out = Json::Object();
  if (!registry.counters().empty()) {
    Json counters = Json::Object();
    for (const auto& [name, value] : registry.counters()) {
      counters.Set(name, value);
    }
    out.Set("counters", std::move(counters));
  }
  if (!registry.gauges().empty()) {
    Json gauges = Json::Object();
    for (const auto& [name, value] : registry.gauges()) {
      gauges.Set(name, value);
    }
    out.Set("gauges", std::move(gauges));
  }
  if (!registry.histograms().empty()) {
    Json histograms = Json::Object();
    for (const auto& [name, summary] : registry.histograms()) {
      Json h = Json::Object();
      h.Set("count", static_cast<std::uint64_t>(summary.count()));
      if (summary.count() > 0) {
        h.Set("mean", summary.mean());
        h.Set("min", summary.min());
        h.Set("max", summary.max());
        h.Set("p50", summary.Percentile(50));
        h.Set("p95", summary.Percentile(95));
      }
      histograms.Set(name, std::move(h));
    }
    out.Set("histograms", std::move(histograms));
  }
  return out;
}

}  // namespace jgre::harness
