#include "harness/branch_runner.h"

#include "common/log.h"
#include "common/strings.h"

namespace jgre::harness {

std::vector<HarnessFlag> BranchFlags() {
  return {
      {"--cold", false, "re-simulate the shared prefix per branch"},
      {"--checkpoint", true, "write the prefix checkpoint (+ manifest) here"},
      {"--resume", true, "load the prefix checkpoint instead of building it"},
  };
}

BranchOptions BranchOptionsFromHarness(const HarnessOptions& options) {
  BranchOptions branch;
  branch.jobs = options.jobs;
  branch.cold = HasFlag(options, "--cold");
  if (const std::string* path = FlagValue(options, "--checkpoint")) {
    branch.checkpoint_path = *path;
  }
  if (const std::string* path = FlagValue(options, "--resume")) {
    branch.resume_path = *path;
  }
  return branch;
}

BranchRunner::BranchRunner(sim::DeviceSpec prefix, BranchOptions options)
    : prefix_(std::move(prefix)), options_(std::move(options)) {}

Status BranchRunner::Prepare() {
  if (options_.cold || snapshot_.has_value()) return Status::Ok();
  if (!options_.resume_path.empty()) {
    auto loaded = snapshot::SystemSnapshot::ReadFile(options_.resume_path);
    if (!loaded.ok()) return loaded.status();
    snapshot_ = std::move(loaded).value();
    JGRE_LOG(kInfo, "BranchRunner")
        << "resumed prefix from " << options_.resume_path << " ("
        << snapshot_->manifest().byte_size << " bytes, virtual t="
        << snapshot_->manifest().virtual_time_us << "us)";
  } else {
    std::unique_ptr<core::AndroidSystem> system =
        sim::DeviceFactory(prefix_).BootPrefix();
    auto captured = snapshot::SystemSnapshot::Capture(*system);
    if (!captured.ok()) return captured.status();
    snapshot_ = std::move(captured).value();
  }
  if (!options_.checkpoint_path.empty()) {
    JGRE_RETURN_IF_ERROR(snapshot_->WriteFile(options_.checkpoint_path));
    JGRE_LOG(kInfo, "BranchRunner")
        << "checkpoint written to " << options_.checkpoint_path;
  }
  return Status::Ok();
}

std::unique_ptr<core::AndroidSystem> BranchRunner::RestoreBranchSystem(
    std::optional<std::size_t> branch_index) const {
  const std::string shard = branch_index.has_value()
                                ? StrCat(" (shard ", *branch_index, ")")
                                : std::string();
  if (!snapshot_.has_value()) {
    throw std::runtime_error(
        StrCat("BranchRunner", shard, ": Prepare() has not captured"));
  }
  core::SystemConfig sys_config = prefix_.system_config();
  sys_config.seed = prefix_.seed();
  auto system = std::make_unique<core::AndroidSystem>(sys_config);
  system->Boot();
  Status restored = snapshot_->RestoreInto(system.get());
  if (!restored.ok()) {
    // RestoreInto already cites the snapshot source (manifest path or
    // in-memory identity); prepend which shard hit it.
    throw std::runtime_error(
        StrCat("BranchRunner", shard,
               ": restore failed: ", restored.ToString()));
  }
  return system;
}

}  // namespace jgre::harness
