// MetricsRegistry -> harness::Json: the `--metrics` table merged into a
// bench's BENCH_*.json output.
//
// Registry maps iterate in lexicographic name order and Json objects are
// insertion-ordered, so the emitted table is byte-stable — merging per-task
// registries in submission order yields identical bytes for any --jobs.
#ifndef JGRE_HARNESS_OBS_JSON_H_
#define JGRE_HARNESS_OBS_JSON_H_

#include "harness/json.h"
#include "obs/metrics.h"

namespace jgre::harness {

// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, mean,
// min, max, p50, p95}}}. Empty sections are omitted.
Json MetricsToJson(const obs::MetricsRegistry& registry);

}  // namespace jgre::harness

#endif  // JGRE_HARNESS_OBS_JSON_H_
