// VulnRegistry — the 57 JGRE vulnerabilities of §IV as executable payloads.
//
// One VulnSpec per vulnerable IPC interface: 44 unprotected (Table I), 9
// helper-protected-but-bypassable (Table II), the flawed enqueueToast
// (Table III), and 3 in prebuilt apps (Table IV); Table V's third-party app
// interfaces live in a separate list since those apps are only present when a
// bench installs them. Every payload follows Code-Snippet 2: talk to the
// binder interface directly, fresh `new Binder()` per call, bypassing any
// helper-class guard.
#ifndef JGRE_ATTACK_VULN_REGISTRY_H_
#define JGRE_ATTACK_VULN_REGISTRY_H_

#include <functional>
#include <string>
#include <vector>

#include "binder/parcel.h"
#include "services/app.h"

namespace jgre::attack {

enum class Protection {
  kNone,             // Table I: no guard anywhere
  kHelperClass,      // Table II: client-side helper guard only
  kPerProcessFlawed, // Table III's "No" row: server guard with a bypass
};

enum class VictimKind {
  kSystemServer,   // shared JGR table; overflow soft-reboots the device
  kPrebuiltApp,    // overflow aborts the hosting app process
  kThirdPartyApp,  // Table V
};

struct VulnSpec {
  int id = 0;                 // stable 1-based index (Fig 3/8 x-axis order)
  std::string service;        // service-manager name
  std::string interface;      // Java method name
  std::string descriptor;     // binder interface descriptor
  std::uint32_t code = 0;     // transaction code
  std::string permission;     // required permission ("" = none)
  Protection protection = Protection::kNone;
  VictimKind victim = VictimKind::kSystemServer;
  std::string victim_package;  // for app victims
  // JGRs pinned in the victim per successful call (proxy + death recipient
  // [+ session]); used by benches to predict call budgets.
  int jgrs_per_call = 2;
  // Writes one attack invocation's arguments (fresh binder every time).
  std::function<void(services::AppProcess&, binder::Parcel&)> write_args;
};

// 54 system-service vulnerabilities + 3 prebuilt-app vulnerabilities.
const std::vector<VulnSpec>& AllVulnerabilities();

// The 54 against system services only (Fig 3 population).
std::vector<VulnSpec> SystemServerVulnerabilities();

// Table V: vulnerable third-party apps (victim_package must be installed and
// its service registered by the caller).
const std::vector<VulnSpec>& ThirdPartyVulnerabilities();

// Lookup by "service.interface" (e.g. "wifi.acquireWifiLock").
const VulnSpec* FindVulnerability(const std::string& service,
                                  const std::string& interface);

}  // namespace jgre::attack

#endif  // JGRE_ATTACK_VULN_REGISTRY_H_
