#include "attack/vuln_registry.h"

#include "common/strings.h"
#include "services/activity_service.h"
#include "services/app_services.h"
#include "services/audio_service.h"
#include "services/clipboard_service.h"
#include "services/location_service.h"
#include "services/misc_system_services.h"
#include "services/net_media_services.h"
#include "services/notification_service.h"
#include "services/package_manager.h"
#include "services/telephony_registry_service.h"
#include "services/ui_services.h"
#include "services/wifi_service.h"

namespace jgre::attack {

namespace sv = jgre::services;

namespace {

// Argument-writer factories. Every writer mints a fresh Binder per call —
// the essence of the attack (a reused binder would hit the proxy cache and
// pin nothing new).
using Writer = std::function<void(sv::AppProcess&, binder::Parcel&)>;

Writer BinderOnly(const char* descriptor) {
  return [descriptor](sv::AppProcess& app, binder::Parcel& p) {
    p.WriteStrongBinder(app.NewBinder(descriptor));
  };
}

Writer StringThenBinder(const char* str, const char* descriptor) {
  return [str, descriptor](sv::AppProcess& app, binder::Parcel& p) {
    p.WriteString(str);
    p.WriteStrongBinder(app.NewBinder(descriptor));
  };
}

Writer TwoBinders(const char* d1, const char* d2) {
  return [d1, d2](sv::AppProcess& app, binder::Parcel& p) {
    p.WriteStrongBinder(app.NewBinder(d1));
    p.WriteStrongBinder(app.NewBinder(d2));
  };
}

std::vector<VulnSpec> BuildAll() {
  std::vector<VulnSpec> v;
  int id = 0;
  auto add = [&](std::string service, std::string interface,
                 std::string descriptor, std::uint32_t code,
                 std::string permission, Protection protection,
                 int jgrs_per_call, Writer writer) {
    VulnSpec spec;
    spec.id = ++id;
    spec.service = std::move(service);
    spec.interface = std::move(interface);
    spec.descriptor = std::move(descriptor);
    spec.code = code;
    spec.permission = std::move(permission);
    spec.protection = protection;
    spec.jgrs_per_call = jgrs_per_call;
    spec.write_args = std::move(writer);
    v.push_back(std::move(spec));
  };

  // ----- Table I: 44 unprotected interfaces --------------------------------
  add(sv::LocationService::kName, "addGpsStatusListener",
      sv::LocationService::kDescriptor,
      sv::LocationService::TRANSACTION_addGpsStatusListener,
      sv::perms::kAccessFineLocation, Protection::kNone, 2,
      BinderOnly("IGpsStatusListener"));
  add(sv::SipService::kName, "open3", sv::SipService::kDescriptor,
      sv::SipService::TRANSACTION_open3, sv::perms::kUseSip, Protection::kNone,
      3, StringThenBinder("sip:[email protected]", "ISipSessionListener"));
  add(sv::SipService::kName, "createSession", sv::SipService::kDescriptor,
      sv::SipService::TRANSACTION_createSession, sv::perms::kUseSip,
      Protection::kNone, 3,
      StringThenBinder("sip:[email protected]", "ISipSessionListener"));
  add(sv::MidiService::kName, "registerListener",
      sv::MidiService::kDescriptor,
      sv::MidiService::TRANSACTION_registerListener, "", Protection::kNone, 2,
      BinderOnly("IMidiDeviceListener"));
  add(sv::MidiService::kName, "openDevice", sv::MidiService::kDescriptor,
      sv::MidiService::TRANSACTION_openDevice, "", Protection::kNone, 3,
      StringThenBinder("usb-midi-0", "IMidiDeviceOpenCallback"));
  add(sv::MidiService::kName, "openBluetoothDevice",
      sv::MidiService::kDescriptor,
      sv::MidiService::TRANSACTION_openBluetoothDevice, "", Protection::kNone,
      3, StringThenBinder("00:11:22:33:44:55", "IMidiDeviceOpenCallback"));
  add(sv::MidiService::kName, "registerDeviceServer",
      sv::MidiService::kDescriptor,
      sv::MidiService::TRANSACTION_registerDeviceServer, "", Protection::kNone,
      3, [](sv::AppProcess& app, binder::Parcel& p) {
        p.WriteStrongBinder(app.NewBinder("IMidiDeviceServer"));
        p.WriteInt32(1);  // numInputPorts
        p.WriteInt32(1);  // numOutputPorts
        p.WriteString("evil-midi-device");
      });
  add(sv::ContentService::kName, "registerContentObserver",
      sv::ContentService::kDescriptor,
      sv::ContentService::TRANSACTION_registerContentObserver, "",
      Protection::kNone, 2, [](sv::AppProcess& app, binder::Parcel& p) {
        p.WriteString("content://media/external");
        p.WriteBool(true);
        p.WriteStrongBinder(app.NewBinder("IContentObserver"));
      });
  add(sv::ContentService::kName, "addStatusChangeListener",
      sv::ContentService::kDescriptor,
      sv::ContentService::TRANSACTION_addStatusChangeListener, "",
      Protection::kNone, 2, [](sv::AppProcess& app, binder::Parcel& p) {
        p.WriteInt32(7);  // mask
        p.WriteStrongBinder(app.NewBinder("ISyncStatusObserver"));
      });
  add(sv::MountService::kName, "registerListener",
      sv::MountService::kDescriptor,
      sv::MountService::TRANSACTION_registerListener, "", Protection::kNone, 2,
      BinderOnly("IMountServiceListener"));
  add(sv::AppOpsService::kName, "startWatchingMode",
      sv::AppOpsService::kDescriptor,
      sv::AppOpsService::TRANSACTION_startWatchingMode, "", Protection::kNone,
      2, [](sv::AppProcess& app, binder::Parcel& p) {
        p.WriteInt32(24);  // OP_SYSTEM_ALERT_WINDOW
        p.WriteString(app.package());
        p.WriteStrongBinder(app.NewBinder("IAppOpsCallback"));
      });
  add(sv::AppOpsService::kName, "getToken", sv::AppOpsService::kDescriptor,
      sv::AppOpsService::TRANSACTION_getToken, "", Protection::kNone, 3,
      BinderOnly("AppOpsClientToken"));
  add(sv::BluetoothManagerService::kName, "registerAdapter",
      sv::BluetoothManagerService::kDescriptor,
      sv::BluetoothManagerService::TRANSACTION_registerAdapter, "",
      Protection::kNone, 2, BinderOnly("IBluetoothManagerCallback"));
  add(sv::BluetoothManagerService::kName, "registerStateChangeCallback",
      sv::BluetoothManagerService::kDescriptor,
      sv::BluetoothManagerService::TRANSACTION_registerStateChangeCallback,
      sv::perms::kBluetooth, Protection::kNone, 2,
      BinderOnly("IBluetoothStateChangeCallback"));
  add(sv::BluetoothManagerService::kName, "bindBluetoothProfileService",
      sv::BluetoothManagerService::kDescriptor,
      sv::BluetoothManagerService::TRANSACTION_bindBluetoothProfileService, "",
      Protection::kNone, 2, [](sv::AppProcess& app, binder::Parcel& p) {
        p.WriteInt32(1);  // BluetoothProfile.HEADSET
        p.WriteStrongBinder(
            app.NewBinder("IBluetoothProfileServiceConnection"));
      });
  add(sv::BluetoothManagerService::kName, "bindBluetoothProfileService(IBinder)",
      sv::BluetoothManagerService::kDescriptor,
      sv::BluetoothManagerService::TRANSACTION_bindBluetoothProfileService2,
      "", Protection::kNone, 2,
      BinderOnly("IBluetoothProfileServiceConnection"));
  add(sv::AudioService::kName, "registerRemoteController",
      sv::AudioService::kDescriptor,
      sv::AudioService::TRANSACTION_registerRemoteController, "",
      Protection::kNone, 2, BinderOnly("IRemoteControlDisplay"));
  add(sv::AudioService::kName, "startWatchingRoutes",
      sv::AudioService::kDescriptor,
      sv::AudioService::TRANSACTION_startWatchingRoutes, "", Protection::kNone,
      2, BinderOnly("IAudioRoutesObserver"));
  add(sv::CountryDetectorService::kName, "addCountryListener",
      sv::CountryDetectorService::kDescriptor,
      sv::CountryDetectorService::TRANSACTION_addCountryListener, "",
      Protection::kNone, 2, BinderOnly("ICountryListener"));
  add(sv::PowerService::kName, "acquireWakeLock",
      sv::PowerService::kDescriptor,
      sv::PowerService::TRANSACTION_acquireWakeLock, sv::perms::kWakeLock,
      Protection::kNone, 2, [](sv::AppProcess& app, binder::Parcel& p) {
        p.WriteStrongBinder(app.NewBinder("WakeLockToken"));
        p.WriteInt32(1);  // PARTIAL_WAKE_LOCK
        p.WriteString("evil-lock");
        p.WriteString(app.package());
      });
  add(sv::InputMethodService::kName, "addClient",
      sv::InputMethodService::kDescriptor,
      sv::InputMethodService::TRANSACTION_addClient, "", Protection::kNone, 4,
      TwoBinders("IInputMethodClient", "IInputContext"));
  add(sv::AccessibilityService::kName,
      "addAccessibilityInteractionConnection",
      sv::AccessibilityService::kDescriptor,
      sv::AccessibilityService::
          TRANSACTION_addAccessibilityInteractionConnection,
      "", Protection::kNone, 4,
      TwoBinders("IWindow", "IAccessibilityInteractionConnection"));
  add(sv::PrintService::kName, "print", sv::PrintService::kDescriptor,
      sv::PrintService::TRANSACTION_print, "", Protection::kNone, 3,
      StringThenBinder("evil-job", "IPrintDocumentAdapter"));
  add(sv::PrintService::kName, "addPrintJobStateChangeListener",
      sv::PrintService::kDescriptor,
      sv::PrintService::TRANSACTION_addPrintJobStateChangeListener, "",
      Protection::kNone, 2, [](sv::AppProcess& app, binder::Parcel& p) {
        p.WriteStrongBinder(app.NewBinder("IPrintJobStateChangeListener"));
        p.WriteInt32(0);  // appId
      });
  add(sv::PrintService::kName, "createPrinterDiscoverySession",
      sv::PrintService::kDescriptor,
      sv::PrintService::TRANSACTION_createPrinterDiscoverySession, "",
      Protection::kNone, 3, BinderOnly("IPrinterDiscoveryObserver"));
  add(sv::PackageService::kName, "getPackageSizeInfo",
      sv::PackageService::kDescriptor,
      sv::PackageService::TRANSACTION_getPackageSizeInfo,
      sv::perms::kGetPackageSize, Protection::kNone, 2,
      StringThenBinder("com.android.settings", "IPackageStatsObserver"));
  add(sv::TelephonyRegistryService::kName, "addOnSubscriptionsChangedListener",
      sv::TelephonyRegistryService::kDescriptor,
      sv::TelephonyRegistryService::
          TRANSACTION_addOnSubscriptionsChangedListener,
      sv::perms::kReadPhoneState, Protection::kNone, 2,
      StringThenBinder("evil", "IOnSubscriptionsChangedListener"));
  add(sv::TelephonyRegistryService::kName, "listen",
      sv::TelephonyRegistryService::kDescriptor,
      sv::TelephonyRegistryService::TRANSACTION_listen,
      sv::perms::kReadPhoneState, Protection::kNone, 2,
      [](sv::AppProcess& app, binder::Parcel& p) {
        p.WriteString(app.package());
        p.WriteStrongBinder(app.NewBinder("IPhoneStateListener"));
        p.WriteInt32(0x10);  // LISTEN_CALL_STATE
      });
  add(sv::TelephonyRegistryService::kName, "listenForSubscriber",
      sv::TelephonyRegistryService::kDescriptor,
      sv::TelephonyRegistryService::TRANSACTION_listenForSubscriber,
      sv::perms::kReadPhoneState, Protection::kNone, 2,
      [](sv::AppProcess& app, binder::Parcel& p) {
        p.WriteInt32(1);  // subId
        p.WriteString(app.package());
        p.WriteStrongBinder(app.NewBinder("IPhoneStateListener"));
        p.WriteInt32(0x10);
      });
  add(sv::MediaSessionService::kName, "registerCallbackListener",
      sv::MediaSessionService::kDescriptor,
      sv::MediaSessionService::TRANSACTION_registerCallbackListener, "",
      Protection::kNone, 2, BinderOnly("IActiveSessionsListener"));
  add(sv::MediaSessionService::kName, "createSession",
      sv::MediaSessionService::kDescriptor,
      sv::MediaSessionService::TRANSACTION_createSession, "",
      Protection::kNone, 3, [](sv::AppProcess& app, binder::Parcel& p) {
        p.WriteString(app.package());
        p.WriteStrongBinder(app.NewBinder("ISessionCallback"));
        p.WriteString("evil-session");
      });
  add(sv::MediaRouterService::kName, "registerClientAsUser",
      sv::MediaRouterService::kDescriptor,
      sv::MediaRouterService::TRANSACTION_registerClientAsUser, "",
      Protection::kNone, 2, [](sv::AppProcess& app, binder::Parcel& p) {
        p.WriteStrongBinder(app.NewBinder("IMediaRouterClient"));
        p.WriteString(app.package());
        p.WriteInt32(0);  // userId
      });
  add(sv::MediaProjectionService::kName, "registerCallback",
      sv::MediaProjectionService::kDescriptor,
      sv::MediaProjectionService::TRANSACTION_registerCallback, "",
      Protection::kNone, 2, BinderOnly("IMediaProjectionWatcherCallback"));
  add(sv::InputService::kName, "vibrate", sv::InputService::kDescriptor,
      sv::InputService::TRANSACTION_vibrate, "", Protection::kNone, 2,
      [](sv::AppProcess& app, binder::Parcel& p) {
        p.WriteByteArray(16);  // pattern
        p.WriteInt32(-1);      // no repeat
        p.WriteStrongBinder(app.NewBinder("VibrateToken"));
      });
  add(sv::WindowService::kName, "watchRotation",
      sv::WindowService::kDescriptor,
      sv::WindowService::TRANSACTION_watchRotation, "", Protection::kNone, 2,
      BinderOnly("IRotationWatcher"));
  add(sv::WallpaperService::kName, "getWallpaper",
      sv::WallpaperService::kDescriptor,
      sv::WallpaperService::TRANSACTION_getWallpaper, "", Protection::kNone, 2,
      BinderOnly("IWallpaperManagerCallback"));
  add(sv::FingerprintService::kName, "addLockoutResetCallback",
      sv::FingerprintService::kDescriptor,
      sv::FingerprintService::TRANSACTION_addLockoutResetCallback, "",
      Protection::kNone, 2,
      BinderOnly("IFingerprintServiceLockoutResetCallback"));
  add(sv::TextServicesService::kName, "getSpellCheckerService",
      sv::TextServicesService::kDescriptor,
      sv::TextServicesService::TRANSACTION_getSpellCheckerService, "",
      Protection::kNone, 2, [](sv::AppProcess& app, binder::Parcel& p) {
        p.WriteString("com.android.inputmethod.latin/.spellcheck");
        p.WriteString("en_US");
        p.WriteStrongBinder(app.NewBinder("ISpellCheckerServiceCallback"));
      });
  add(sv::NetworkManagementService::kName, "registerNetworkActivityListener",
      sv::NetworkManagementService::kDescriptor,
      sv::NetworkManagementService::
          TRANSACTION_registerNetworkActivityListener,
      sv::perms::kChangeNetworkState, Protection::kNone, 2,
      BinderOnly("INetworkActivityListener"));
  add(sv::ConnectivityService::kName, "requestNetwork",
      sv::ConnectivityService::kDescriptor,
      sv::ConnectivityService::TRANSACTION_requestNetwork,
      sv::perms::kChangeNetworkState, Protection::kNone, 2,
      StringThenBinder("cap=INTERNET", "NetworkRequestToken"));
  add(sv::ConnectivityService::kName, "listenForNetwork",
      sv::ConnectivityService::kDescriptor,
      sv::ConnectivityService::TRANSACTION_listenForNetwork,
      sv::perms::kAccessNetworkState, Protection::kNone, 2,
      StringThenBinder("cap=INTERNET", "NetworkListenToken"));
  add(sv::ActivityService::kName, "registerTaskStackListener",
      sv::ActivityService::kDescriptor,
      sv::ActivityService::TRANSACTION_registerTaskStackListener, "",
      Protection::kNone, 2, BinderOnly("ITaskStackListener"));
  add(sv::ActivityService::kName, "registerReceiver",
      sv::ActivityService::kDescriptor,
      sv::ActivityService::TRANSACTION_registerReceiver, "", Protection::kNone,
      2, [](sv::AppProcess& app, binder::Parcel& p) {
        p.WriteString(app.package());
        p.WriteStrongBinder(app.NewBinder("IIntentReceiver"));
        p.WriteString("android.intent.action.BATTERY_CHANGED");
      });
  add(sv::ActivityService::kName, "bindService",
      sv::ActivityService::kDescriptor,
      sv::ActivityService::TRANSACTION_bindService, "", Protection::kNone, 2,
      StringThenBinder("com.evil/.Service", "IServiceConnection"));

  // ----- Table II: helper-protected, bypassable directly -------------------
  add(sv::ClipboardService::kName, "addPrimaryClipChangedListener",
      sv::ClipboardService::kDescriptor,
      sv::ClipboardService::TRANSACTION_addPrimaryClipChangedListener, "",
      Protection::kHelperClass, 2,
      BinderOnly("IOnPrimaryClipChangedListener"));
  add(sv::AccessibilityService::kName, "addClient",
      sv::AccessibilityService::kDescriptor,
      sv::AccessibilityService::TRANSACTION_addClient, "",
      Protection::kHelperClass, 2, BinderOnly("IAccessibilityManagerClient"));
  add(sv::LauncherAppsService::kName, "addOnAppsChangedListener",
      sv::LauncherAppsService::kDescriptor,
      sv::LauncherAppsService::TRANSACTION_addOnAppsChangedListener, "",
      Protection::kHelperClass, 2, BinderOnly("IOnAppsChangedListener"));
  add(sv::TvInputService::kName, "registerCallback",
      sv::TvInputService::kDescriptor,
      sv::TvInputService::TRANSACTION_registerCallback, "",
      Protection::kHelperClass, 2,
      [](sv::AppProcess& app, binder::Parcel& p) {
        p.WriteStrongBinder(app.NewBinder("ITvInputManagerCallback"));
        p.WriteInt32(0);  // userId
      });
  add(sv::EthernetService::kName, "addListener",
      sv::EthernetService::kDescriptor,
      sv::EthernetService::TRANSACTION_addListener, "",
      Protection::kHelperClass, 2, BinderOnly("IEthernetServiceListener"));
  add(sv::WifiService::kName, "acquireWifiLock",
      sv::WifiService::kDescriptor,
      sv::WifiService::TRANSACTION_acquireWifiLock, sv::perms::kWakeLock,
      Protection::kHelperClass, 2, [](sv::AppProcess& app, binder::Parcel& p) {
        p.WriteStrongBinder(app.NewBinder("WifiLockToken"));
        p.WriteInt32(1);
        p.WriteString("evil-wifi-lock");
      });
  add(sv::WifiService::kName, "acquireMulticastLock",
      sv::WifiService::kDescriptor,
      sv::WifiService::TRANSACTION_acquireMulticastLock,
      sv::perms::kChangeWifiMulticastState, Protection::kHelperClass, 2,
      [](sv::AppProcess& app, binder::Parcel& p) {
        p.WriteStrongBinder(app.NewBinder("MulticastLockToken"));
        p.WriteString("evil-multicast-lock");
      });
  add(sv::LocationService::kName, "addGpsMeasurementsListener",
      sv::LocationService::kDescriptor,
      sv::LocationService::TRANSACTION_addGpsMeasurementsListener,
      sv::perms::kAccessFineLocation, Protection::kHelperClass, 2,
      BinderOnly("IGpsMeasurementsListener"));
  add(sv::LocationService::kName, "addGpsNavigationMessageListener",
      sv::LocationService::kDescriptor,
      sv::LocationService::TRANSACTION_addGpsNavigationMessageListener,
      sv::perms::kAccessFineLocation, Protection::kHelperClass, 2,
      BinderOnly("IGpsNavigationMessageListener"));

  // ----- Table III's flawed per-process constraint --------------------------
  add(sv::NotificationService::kName, "enqueueToast",
      sv::NotificationService::kDescriptor,
      sv::NotificationService::TRANSACTION_enqueueToast, "",
      Protection::kPerProcessFlawed, 2,
      [](sv::AppProcess& app, binder::Parcel& p) {
        // The bypass: claim to be the "android" package (Code-Snippet 3).
        p.WriteString("android");
        p.WriteStrongBinder(app.NewBinder("ITransientNotification"));
        p.WriteInt32(1);  // LENGTH_LONG
      });

  // ----- Table IV: prebuilt apps -------------------------------------------
  {
    VulnSpec spec;
    spec.id = ++id;
    spec.service = "picotts";
    spec.interface = "setCallback";
    spec.descriptor = sv::TextToSpeechService::kDescriptor;
    spec.code = sv::TextToSpeechService::TRANSACTION_setCallback;
    spec.protection = Protection::kNone;
    spec.victim = VictimKind::kPrebuiltApp;
    spec.victim_package = "com.svox.pico";
    spec.jgrs_per_call = 4;  // caller identity binder + callback, both kept
    spec.write_args = TwoBinders("CallerIdentity", "ITextToSpeechCallback");
    v.push_back(std::move(spec));
  }
  {
    VulnSpec spec;
    spec.id = ++id;
    spec.service = sv::GattService::kName;
    spec.interface = "registerServer";
    spec.descriptor = sv::GattService::kDescriptor;
    spec.code = sv::GattService::TRANSACTION_registerServer;
    spec.protection = Protection::kNone;
    spec.victim = VictimKind::kPrebuiltApp;
    spec.victim_package = "com.android.bluetooth";
    spec.jgrs_per_call = 3;
    spec.write_args =
        StringThenBinder("0000aaaa-0000-1000-8000-00805f9b34fb",
                         "IBluetoothGattServerCallback");
    v.push_back(std::move(spec));
  }
  {
    VulnSpec spec;
    spec.id = ++id;
    spec.service = sv::BluetoothAdapterService::kName;
    spec.interface = "registerCallback";
    spec.descriptor = sv::BluetoothAdapterService::kDescriptor;
    spec.code = sv::BluetoothAdapterService::TRANSACTION_registerCallback;
    spec.protection = Protection::kNone;
    spec.victim = VictimKind::kPrebuiltApp;
    spec.victim_package = "com.android.bluetooth";
    spec.jgrs_per_call = 2;
    spec.write_args = BinderOnly("IBluetoothCallback");
    v.push_back(std::move(spec));
  }
  return v;
}

std::vector<VulnSpec> BuildThirdParty() {
  std::vector<VulnSpec> v;
  int id = 100;
  {
    VulnSpec spec;
    spec.id = ++id;
    spec.service = "googletts";
    spec.interface = "setCallback";
    spec.descriptor = sv::TextToSpeechService::kDescriptor;
    spec.code = sv::TextToSpeechService::TRANSACTION_setCallback;
    spec.victim = VictimKind::kThirdPartyApp;
    spec.victim_package = "com.google.android.tts";
    spec.jgrs_per_call = 4;
    spec.write_args = TwoBinders("CallerIdentity", "ITextToSpeechCallback");
    v.push_back(std::move(spec));
  }
  {
    VulnSpec spec;
    spec.id = ++id;
    spec.service = "supernetvpn";
    spec.interface = "registerStatusCallback";
    spec.descriptor = sv::OpenVpnApiService::kDescriptor;
    spec.code = sv::OpenVpnApiService::TRANSACTION_registerStatusCallback;
    spec.victim = VictimKind::kThirdPartyApp;
    spec.victim_package = "com.supernet.vpn";
    spec.jgrs_per_call = 2;
    spec.write_args = BinderOnly("IOpenVPNStatusCallback");
    v.push_back(std::move(spec));
  }
  {
    VulnSpec spec;
    spec.id = ++id;
    spec.service = "snapmovie";
    spec.interface = "a";
    spec.descriptor = sv::SnapMovieMainService::kDescriptor;
    spec.code = sv::SnapMovieMainService::TRANSACTION_a;
    spec.victim = VictimKind::kThirdPartyApp;
    spec.victim_package = "com.snapmovie";
    spec.jgrs_per_call = 2;
    spec.write_args = BinderOnly("ICallback");
    v.push_back(std::move(spec));
  }
  return v;
}

}  // namespace

const std::vector<VulnSpec>& AllVulnerabilities() {
  static const std::vector<VulnSpec> kAll = BuildAll();
  return kAll;
}

std::vector<VulnSpec> SystemServerVulnerabilities() {
  std::vector<VulnSpec> out;
  for (const VulnSpec& spec : AllVulnerabilities()) {
    if (spec.victim == VictimKind::kSystemServer) out.push_back(spec);
  }
  return out;
}

const std::vector<VulnSpec>& ThirdPartyVulnerabilities() {
  static const std::vector<VulnSpec> kThirdParty = BuildThirdParty();
  return kThirdParty;
}

const VulnSpec* FindVulnerability(const std::string& service,
                                  const std::string& interface) {
  for (const VulnSpec& spec : AllVulnerabilities()) {
    if (spec.service == service && spec.interface == interface) return &spec;
  }
  return nullptr;
}

}  // namespace jgre::attack
