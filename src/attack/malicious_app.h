// MaliciousApp — drives one JGRE attack against one vulnerable interface.
//
// The loop is Code-Snippet 2 writ large: look up the service, then fire IPC
// calls with a fresh Binder each time until the victim's JGR table overflows
// (runtime abort → process death; for system_server, a soft reboot). Records
// the victim's JGR growth curve for Fig 3 and per-call execution times for
// Figs 5/6.
#ifndef JGRE_ATTACK_MALICIOUS_APP_H_
#define JGRE_ATTACK_MALICIOUS_APP_H_

#include <memory>
#include <string>

#include "common/stats.h"
#include "core/android_system.h"
#include "attack/vuln_registry.h"

namespace jgre::attack {

class MaliciousApp {
 public:
  struct RunOptions {
    // Stop conditions (whichever comes first).
    int max_calls = 200'000;
    DurationUs max_duration_us = 4'000'000'000ULL;  // 4000 s
    bool stop_on_victim_abort = true;
    // Sampling cadence for the JGR growth curve (0 = don't sample).
    int sample_every_calls = 200;
    // Record each call's execution duration (Figs 5/6) — costs memory.
    bool record_exec_times = false;
    // Stop after this many *consecutive* kLimitExceeded denials (a quota or
    // rate-limit mitigation refusing admission). 0 disables the check — the
    // Table-III per-process-limit benches deliberately spin on denials, so
    // the default preserves their behavior.
    int stop_after_consecutive_denials = 0;
  };

  struct AttackResult {
    bool succeeded = false;       // victim aborted (JGR table overflow)
    int calls_issued = 0;
    int calls_failed = 0;         // permission denials, dead objects, ...
    int calls_denied = 0;         // kLimitExceeded subset of calls_failed
    bool stopped_by_denial = false;  // consecutive-denial budget spent
    TimeUs start_us = 0;
    TimeUs end_us = 0;
    std::size_t peak_victim_jgr = 0;
    std::int64_t soft_reboots = 0;
    TimeSeries jgr_curve{"victim_jgr"};
    Summary exec_times_us;        // per-call durations when recorded

    DurationUs duration_us() const { return end_us - start_us; }
  };

  // `app` must already be installed with the permission the vuln requires.
  MaliciousApp(core::AndroidSystem* system, services::AppProcess* app,
               const VulnSpec& vuln);

  // One attack IPC call; re-resolves the service after DEAD_OBJECT.
  Status Step();

  AttackResult Run(const RunOptions& options);
  AttackResult Run();

  // Current JGR count of the victim process (0 once it is dead).
  std::size_t VictimJgrCount() const;
  bool VictimAlive() const;

  const VulnSpec& vuln() const { return vuln_; }
  services::AppProcess* app() { return app_; }

 private:
  Result<services::IpcClient> ResolveService();

  core::AndroidSystem* system_;
  services::AppProcess* app_;
  VulnSpec vuln_;
  services::IpcClient client_;
};

// Installs an attack app pre-granted whatever permission `vuln` demands.
services::AppProcess* InstallAttackApp(core::AndroidSystem* system,
                                       const std::string& package,
                                       const VulnSpec& vuln);

}  // namespace jgre::attack

#endif  // JGRE_ATTACK_MALICIOUS_APP_H_
