// BenignWorkload — the paper's top-N Google Play population + MonkeyRunner.
//
// Used for Observation 1 / Fig 4 (the benign JGR baseline stays between
// ~1,000 and ~3,000 while the LMK keeps the process count bounded) and as the
// background noise in the defense experiments (Figs 8/9). Benign apps differ
// from the attacker in exactly the ways that matter: they register a bounded
// number of listeners, *reuse* their binder objects, unregister or die
// normally, and mostly issue query traffic.
#ifndef JGRE_ATTACK_BENIGN_WORKLOAD_H_
#define JGRE_ATTACK_BENIGN_WORKLOAD_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/android_system.h"

namespace jgre::attack {

class BenignWorkload {
 public:
  struct Options {
    int app_count = 100;
    // MonkeyRunner: "for each app, we run it for two minutes and then switch
    // it to a background process by simulating pressing the HOME button".
    DurationUs per_app_foreground_us = 120'000'000;
    DurationUs interaction_period_us = 400'000;
    std::uint64_t seed = 7;
    // Package name prefix ("<prefix>%03d"). Warmup populations use a
    // distinct prefix so their packages never collide with the main benign
    // population installed later in the same simulation.
    std::string package_prefix = "com.top.app";
  };

  BenignWorkload(core::AndroidSystem* system, Options options);

  // Installs com.top.app000..NNN with a mix of normal permissions.
  void InstallAll();

  // Runs one monkey pass over all installed apps: launch (or relaunch if the
  // LMK killed it), interact in the foreground, press HOME. `sampler`, when
  // set, is invoked roughly every `sample_period_us` of virtual time — Fig 4
  // uses it to record (JGR size, process count).
  void RunMonkeySession(const std::function<void(TimeUs)>& sampler,
                        DurationUs sample_period_us);
  void RunMonkeySession() { RunMonkeySession(nullptr, 0); }

  // A benign-but-chatty loop: `calls` query-style IPC invocations that create
  // no retained JGRs (the "benign app [that] generates a large number of
  // invulnerable IPC calls" in the colluding-attack experiment).
  void ChattyQueryLoop(services::AppProcess* app, int calls,
                       DurationUs gap_us);

  // One interaction burst for app `index` (relaunching it if the LMK took
  // it); used by experiment drivers that interleave benign traffic with an
  // attack instead of running whole monkey sessions.
  void InteractOnce(std::size_t index);

  const std::vector<std::string>& packages() const { return packages_; }

 private:
  struct AppBehavior {
    bool uses_clipboard = false;
    bool uses_content_observer = false;
    bool uses_toasts = false;
    bool uses_wifi_lock = false;
    bool uses_telephony = false;
    bool uses_audio_queries = false;
    // Long-lived binders this incarnation registered (reused, never leaked).
    std::shared_ptr<binder::BBinder> content_observer;
    std::shared_ptr<binder::BBinder> phone_state_listener;
    Pid registered_for_pid;  // registrations die with the process
  };

  void Interact(services::AppProcess* app, AppBehavior& behavior);
  void EnsureRegistrations(services::AppProcess* app, AppBehavior& behavior);

  core::AndroidSystem* system_;
  Options options_;
  Rng rng_;
  std::vector<std::string> packages_;
  std::vector<AppBehavior> behaviors_;
};

}  // namespace jgre::attack

#endif  // JGRE_ATTACK_BENIGN_WORKLOAD_H_
