#include "attack/benign_workload.h"

#include "common/strings.h"
#include "services/audio_service.h"
#include "services/clipboard_service.h"
#include "services/misc_system_services.h"
#include "services/notification_service.h"
#include "services/package_manager.h"
#include "services/telephony_registry_service.h"
#include "services/wifi_service.h"

namespace jgre::attack {

namespace sv = jgre::services;

BenignWorkload::BenignWorkload(core::AndroidSystem* system, Options options)
    : system_(system), options_(options), rng_(options.seed) {}

void BenignWorkload::InstallAll() {
  packages_.clear();
  behaviors_.clear();
  for (int i = 0; i < options_.app_count; ++i) {
    const std::string package =
        StrCat(options_.package_prefix, StrFormat("%03d", i));
    std::set<std::string> permissions;
    AppBehavior behavior;
    behavior.uses_clipboard = rng_.Chance(0.35);
    behavior.uses_content_observer = rng_.Chance(0.5);
    behavior.uses_toasts = rng_.Chance(0.4);
    behavior.uses_audio_queries = rng_.Chance(0.6);
    if (rng_.Chance(0.25)) {
      behavior.uses_wifi_lock = true;
      permissions.insert(sv::perms::kWakeLock);
    }
    if (rng_.Chance(0.2)) {
      behavior.uses_telephony = true;
      permissions.insert(sv::perms::kReadPhoneState);
    }
    services::AppProcess* app = system_->InstallApp(package, permissions);
    // Installed-but-not-yet-used apps idle in the cached band; the monkey
    // foregrounds them one at a time. (Without this, 100 unkillable
    // foreground apps would over-commit memory, which a real device never
    // allows.)
    system_->kernel().SetOomScoreAdj(
        app->pid(),
        os::kCachedAppMinAdj + static_cast<int>(rng_.UniformU64(7)));
    packages_.push_back(package);
    behaviors_.push_back(std::move(behavior));
  }
}

void BenignWorkload::EnsureRegistrations(services::AppProcess* app,
                                         AppBehavior& behavior) {
  // A new process incarnation registers its long-lived listeners once and
  // reuses the same binder objects afterwards — the benign pattern the
  // sifter's rules codify.
  if (behavior.registered_for_pid == app->pid()) return;
  behavior.registered_for_pid = app->pid();
  if (behavior.uses_content_observer) {
    behavior.content_observer = app->NewBinder("IContentObserver");
    auto content = app->GetService(sv::ContentService::kName,
                                   sv::ContentService::kDescriptor);
    if (content.ok()) {
      (void)content.value().Call(
          sv::ContentService::TRANSACTION_registerContentObserver,
          [&](binder::Parcel& p) {
            p.WriteString(StrCat("content://", app->package()));
            p.WriteBool(false);
            p.WriteStrongBinder(behavior.content_observer);
          });
    }
  }
  if (behavior.uses_telephony) {
    behavior.phone_state_listener = app->NewBinder("IPhoneStateListener");
    auto registry =
        app->GetService(sv::TelephonyRegistryService::kName,
                        sv::TelephonyRegistryService::kDescriptor);
    if (registry.ok()) {
      (void)registry.value().Call(
          sv::TelephonyRegistryService::TRANSACTION_listen,
          [&](binder::Parcel& p) {
            p.WriteString(app->package());
            p.WriteStrongBinder(behavior.phone_state_listener);
            p.WriteInt32(0x10);
          });
    }
  }
}

void BenignWorkload::Interact(services::AppProcess* app,
                              AppBehavior& behavior) {
  EnsureRegistrations(app, behavior);
  if (behavior.uses_audio_queries) {
    auto audio = app->GetService(sv::AudioService::kName,
                                 sv::AudioService::kDescriptor);
    if (audio.ok()) {
      (void)audio.value().Call(sv::AudioService::TRANSACTION_getStreamVolume,
                               [](binder::Parcel& p) { p.WriteInt32(3); });
    }
  }
  if (behavior.uses_clipboard && rng_.Chance(0.3)) {
    auto clipboard = app->GetService(sv::ClipboardService::kName,
                                     sv::ClipboardService::kDescriptor);
    if (clipboard.ok()) {
      (void)clipboard.value().Call(
          sv::ClipboardService::TRANSACTION_hasPrimaryClip, nullptr);
    }
  }
  if (behavior.uses_toasts && rng_.Chance(0.1)) {
    auto notification = app->GetService(sv::NotificationService::kName,
                                        sv::NotificationService::kDescriptor);
    if (notification.ok()) {
      auto toast_callback = app->NewBinder("ITransientNotification");
      (void)notification.value().Call(
          sv::NotificationService::TRANSACTION_enqueueToast,
          [&](binder::Parcel& p) {
            p.WriteString(app->package());  // honest package name
            p.WriteStrongBinder(toast_callback);
            p.WriteInt32(0);
          });
    }
  }
  if (behavior.uses_wifi_lock && rng_.Chance(0.15)) {
    // Acquire-then-release through the service (paired, so no growth).
    auto wifi =
        app->GetService(sv::WifiService::kName, sv::WifiService::kDescriptor);
    if (wifi.ok()) {
      auto lock = app->NewBinder("WifiLock");
      (void)wifi.value().Call(sv::WifiService::TRANSACTION_acquireWifiLock,
                              [&](binder::Parcel& p) {
                                p.WriteStrongBinder(lock);
                                p.WriteInt32(1);
                                p.WriteString(app->package());
                              });
      (void)wifi.value().Call(sv::WifiService::TRANSACTION_releaseWifiLock,
                              [&](binder::Parcel& p) {
                                p.WriteStrongBinder(lock);
                              });
    }
  }
}

void BenignWorkload::RunMonkeySession(
    const std::function<void(TimeUs)>& sampler, DurationUs sample_period_us) {
  TimeUs next_sample = system_->clock().NowUs();
  for (std::size_t i = 0; i < packages_.size(); ++i) {
    services::AppProcess* app = system_->FindApp(packages_[i]);
    if (app == nullptr || !app->alive()) {
      app = system_->RelaunchApp(packages_[i]);  // monkey taps the icon
      if (app == nullptr) continue;
    }
    // Foreground for two minutes of interactions.
    system_->kernel().SetOomScoreAdj(app->pid(), os::kForegroundAppAdj);
    const TimeUs fg_until =
        system_->clock().NowUs() + options_.per_app_foreground_us;
    while (system_->clock().NowUs() < fg_until) {
      if (!app->alive()) break;  // LMK got us mid-run; monkey moves on
      Interact(app, behaviors_[i]);
      system_->clock().AdvanceUs(options_.interaction_period_us);
      if (sampler && sample_period_us > 0 &&
          system_->clock().NowUs() >= next_sample) {
        sampler(system_->clock().NowUs());
        next_sample = system_->clock().NowUs() + sample_period_us;
      }
    }
    // HOME: the app drops to the cached band and becomes an LMK candidate.
    if (app->alive()) {
      system_->kernel().SetOomScoreAdj(
          app->pid(),
          os::kCachedAppMinAdj + static_cast<int>(rng_.UniformU64(7)));
      // Re-evaluate pressure now that another cached app exists.
      system_->kernel().SetProcessMemory(
          app->pid(), 38 * 1024 + static_cast<std::int64_t>(
                                      rng_.UniformU64(8 * 1024)));
    }
  }
}

void BenignWorkload::InteractOnce(std::size_t index) {
  if (index >= packages_.size()) return;
  services::AppProcess* app = system_->FindApp(packages_[index]);
  if (app == nullptr || !app->alive()) {
    app = system_->RelaunchApp(packages_[index]);
    if (app == nullptr) return;
  }
  Interact(app, behaviors_[index]);
}

void BenignWorkload::ChattyQueryLoop(services::AppProcess* app, int calls,
                                     DurationUs gap_us) {
  auto audio =
      app->GetService(sv::AudioService::kName, sv::AudioService::kDescriptor);
  if (!audio.ok()) return;
  for (int i = 0; i < calls && app->alive(); ++i) {
    (void)audio.value().Call(sv::AudioService::TRANSACTION_getStreamVolume,
                             [](binder::Parcel& p) { p.WriteInt32(3); });
    if (gap_us > 0) system_->clock().AdvanceUs(gap_us);
  }
}

}  // namespace jgre::attack
