#include "attack/malicious_app.h"

#include "common/log.h"

namespace jgre::attack {

MaliciousApp::MaliciousApp(core::AndroidSystem* system,
                           services::AppProcess* app, const VulnSpec& vuln)
    : system_(system), app_(app), vuln_(vuln) {}

Result<services::IpcClient> MaliciousApp::ResolveService() {
  return app_->GetService(vuln_.service, vuln_.descriptor);
}

std::size_t MaliciousApp::VictimJgrCount() const {
  if (vuln_.victim == VictimKind::kSystemServer) {
    return system_->SystemServerJgrCount();
  }
  services::AppProcess* victim = system_->FindApp(vuln_.victim_package);
  if (victim == nullptr || !victim->alive()) return 0;
  rt::Runtime* runtime = victim->runtime();
  return runtime == nullptr ? 0 : runtime->JgrCount();
}

bool MaliciousApp::VictimAlive() const {
  if (vuln_.victim == VictimKind::kSystemServer) {
    // "Alive" here means: the same incarnation we started attacking. After a
    // soft reboot the new system_server has a fresh table.
    return system_->system_runtime() != nullptr &&
           !system_->system_runtime()->aborted();
  }
  services::AppProcess* victim = system_->FindApp(vuln_.victim_package);
  return victim != nullptr && victim->alive();
}

Status MaliciousApp::Step() {
  if (!client_.valid()) {
    auto client = ResolveService();
    if (!client.ok()) return client.status();
    client_ = client.value();
  }
  Status status = client_.Call(vuln_.code, [this](binder::Parcel& p) {
    vuln_.write_args(*app_, p);
  });
  if (status.code() == StatusCode::kUnavailable) {
    client_ = services::IpcClient();  // DEAD_OBJECT: re-resolve next time
  }
  return status;
}

MaliciousApp::AttackResult MaliciousApp::Run() { return Run(RunOptions{}); }

MaliciousApp::AttackResult MaliciousApp::Run(const RunOptions& options) {
  AttackResult result;
  result.start_us = system_->clock().NowUs();
  const std::int64_t reboots_before = system_->soft_reboots();
  result.jgr_curve.Add(result.start_us, static_cast<double>(VictimJgrCount()));

  int consecutive_denied = 0;
  while (result.calls_issued < options.max_calls) {
    if (!app_->alive()) break;  // the defender (or LMK) got us
    if (system_->clock().NowUs() - result.start_us > options.max_duration_us) {
      break;
    }
    const TimeUs call_start = system_->clock().NowUs();
    Status status = Step();
    ++result.calls_issued;
    if (!status.ok()) ++result.calls_failed;
    if (status.code() == StatusCode::kLimitExceeded) {
      ++result.calls_denied;
      ++consecutive_denied;
    } else if (status.ok()) {
      consecutive_denied = 0;
    }
    if (options.record_exec_times && status.ok()) {
      result.exec_times_us.Add(
          static_cast<double>(system_->clock().NowUs() - call_start));
    }
    const std::size_t jgr = VictimJgrCount();
    result.peak_victim_jgr = std::max(result.peak_victim_jgr, jgr);
    if (options.sample_every_calls > 0 &&
        result.calls_issued % options.sample_every_calls == 0) {
      result.jgr_curve.Add(system_->clock().NowUs(),
                           static_cast<double>(jgr));
    }
    const bool victim_down =
        !VictimAlive() || system_->soft_reboots() > reboots_before;
    if (victim_down) {
      result.succeeded = true;
      if (options.stop_on_victim_abort) break;
    }
    // Permission denial is terminal: the attack cannot proceed at all.
    if (status.code() == StatusCode::kPermissionDenied) break;
    // A mitigation stonewalling every call is terminal too — without this a
    // quota'd attacker spins until max_duration_us doing nothing.
    if (options.stop_after_consecutive_denials > 0 &&
        consecutive_denied >= options.stop_after_consecutive_denials) {
      result.stopped_by_denial = true;
      break;
    }
  }
  result.end_us = system_->clock().NowUs();
  result.soft_reboots = system_->soft_reboots() - reboots_before;
  JGRE_LOG(kInfo, "attack") << vuln_.service << "." << vuln_.interface
                            << ": " << (result.succeeded ? "SUCCESS" : "no-abort")
                            << " after " << result.calls_issued << " calls, "
                            << result.duration_us() / 1'000'000.0 << " s";
  return result;
}

services::AppProcess* InstallAttackApp(core::AndroidSystem* system,
                                       const std::string& package,
                                       const VulnSpec& vuln) {
  std::set<std::string> permissions;
  if (!vuln.permission.empty()) permissions.insert(vuln.permission);
  return system->InstallApp(package, permissions);
}

}  // namespace jgre::attack
