// Corpus builders — populate the CodeModel with the simulated AOSP 6.0.1.
//
// `BuildAospModel` derives the Java-side corpus from a *booted* system (every
// registered service contributes its interfaces and body facts, exactly as
// the paper's SOOT pass reads the compiled framework), then adds the
// hand-modeled pieces a live registry cannot expose: the native call graph
// down to IndirectReferenceTable::Add (147 paths, 67 of them reachable only
// during runtime init), the registerNativeMethods table, the five
// natively-registered services, the helper-class guards, and the PScout-style
// permission map.
//
// `BuildMarketModel` synthesizes the 1,000-app Google Play population of
// §IV.D: a handful of apps export binder services; three of them retain
// caller binders unboundedly (Table V).
#ifndef JGRE_MODEL_CORPUS_H_
#define JGRE_MODEL_CORPUS_H_

#include <cstdint>

#include "core/android_system.h"
#include "model/code_model.h"

namespace jgre::model {

CodeModel BuildAospModel(core::AndroidSystem& system);

struct MarketOptions {
  int app_count = 1000;
  std::uint64_t seed = 11;
};

CodeModel BuildMarketModel(const MarketOptions& options);

}  // namespace jgre::model

#endif  // JGRE_MODEL_CORPUS_H_
