// GrowthThresholds — the shared retained-growth-rate cutoffs every dynamic
// stage judges against.
//
// The directed verifier (src/dynamic) and the fuzz oracle (src/fuzz) answer
// the same question — "did the victim retain resources across GC at a rate an
// attacker can detonate?" — so they must agree on what counts as exploitable
// and what counts as bounded. These constants used to be private fields of
// dynamic::VerifyOptions; they live here so the two subsystems cannot drift.
#ifndef JGRE_MODEL_GROWTH_THRESHOLDS_H_
#define JGRE_MODEL_GROWTH_THRESHOLDS_H_

namespace jgre::model {

struct GrowthThresholds {
  // Retained JGR growth per IPC call, measured across a forced GC. A truly
  // vulnerable interface retains >= 1 entry per call (often ~3 with the
  // death-link and session binders); 0.5 leaves headroom for calls the
  // server rejects.
  double exploitable_jgr_per_call = 0.5;
  // Below this rate the interface is declared bounded: per-process
  // constraints and replace-single slots converge to ~0 growth once the
  // slot/cap is filled.
  double bounded_jgr_per_call = 0.05;
  // The §VI analog for file descriptors: a handler that dups the caller's fd
  // into the host and never closes it leaks exactly 1 fd per call; 0.5
  // leaves the same rejection headroom as the JGR cutoff.
  double exploitable_fd_per_call = 0.5;
};

inline constexpr GrowthThresholds kDefaultGrowthThresholds{};

}  // namespace jgre::model

#endif  // JGRE_MODEL_GROWTH_THRESHOLDS_H_
