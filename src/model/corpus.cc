#include "model/corpus.h"

#include "common/rng.h"
#include "common/strings.h"
#include "services/activity_service.h"
#include "services/app_services.h"
#include "services/audio_service.h"
#include "services/clipboard_service.h"
#include "services/location_service.h"
#include "services/notification_service.h"
#include "services/package_manager.h"
#include "services/telephony_registry_service.h"
#include "services/wifi_service.h"

namespace jgre::model {

namespace sv = jgre::services;
using services::ArgKind;

namespace {

// --- Shared framework methods (the Java JGR entry points of §III.B.2) -------

void AddFrameworkInternals(CodeModel* model) {
  auto add = [model](const std::string& id, std::set<BodyFact> facts,
                     std::vector<std::string> callees) {
    JavaMethodModel m;
    m.id = id;
    const auto dot = id.rfind('.');
    m.clazz = id.substr(0, dot);
    m.name = id.substr(dot + 1);
    m.facts = std::move(facts);
    m.callees = std::move(callees);
    model->java_methods[id] = std::move(m);
  };
  // RemoteCallbackList retains the callback and links to death.
  add("android.os.RemoteCallbackList.register",
      {BodyFact::kStoresParamInCollection, BodyFact::kLinksToDeath},
      {"android.os.Binder.linkToDeath"});
  add("android.os.RemoteCallbackList.unregister",
      {BodyFact::kUsesParamAsReadOnlyKey},
      {"android.os.Binder.unlinkToDeath"});
  add("android.os.Binder.linkToDeath", {}, {});
  add("android.os.Binder.unlinkToDeath", {}, {});
  add("android.os.Parcel.nativeReadStrongBinder", {}, {});
  add("android.os.Parcel.nativeWriteStrongBinder", {}, {});
  add("java.lang.Thread.nativeCreate", {BodyFact::kOnlyCreatesThread}, {});
  // Thread.start is the Java-visible wrapper services actually call.
  add("java.lang.Thread.start", {BodyFact::kOnlyCreatesThread},
      {"java.lang.Thread.nativeCreate"});
}

// --- Native call graph (§III.B.1): 147 JNI-entry→Add paths, 67 init-only ----

void AddNativeGraph(CodeModel* model) {
  auto add = [model](const std::string& name, std::vector<std::string> callees,
                     bool jni_entry = false, bool init_only = false) {
    NativeMethodModel m;
    m.name = name;
    m.callees = std::move(callees);
    m.is_jni_entry = jni_entry;
    m.runtime_init_only = init_only;
    model->native_methods[name] = std::move(m);
  };
  auto map_jni = [model](const std::string& java, const std::string& native) {
    model->jni_registrations.push_back(JniRegistration{java, native});
  };

  // Core chain down to the sink.
  add("art::IndirectReferenceTable::Add", {});
  add("art::JavaVMExt::AddGlobalRef", {"art::IndirectReferenceTable::Add"});
  add("JNIEnv::NewGlobalRef", {"art::JavaVMExt::AddGlobalRef"});
  add("android::ibinderForJavaObject", {"JNIEnv::NewGlobalRef"});
  add("android::javaObjectForIBinder", {"JNIEnv::NewGlobalRef"});
  add("android::JavaDeathRecipient::JavaDeathRecipient",
      {"JNIEnv::NewGlobalRef"});
  add("art::Thread::CreateNativeThread", {"art::JavaVMExt::AddGlobalRef"});

  // The four exploitable JNI entries that matter downstream.
  add("android_os_Parcel_readStrongBinder",
      {"android::javaObjectForIBinder"}, /*jni_entry=*/true);
  add("android_os_Parcel_writeStrongBinder",
      {"android::ibinderForJavaObject"}, /*jni_entry=*/true);
  add("android_os_BinderProxy_linkToDeath",
      {"android::JavaDeathRecipient::JavaDeathRecipient"}, /*jni_entry=*/true);
  add("Thread_nativeCreate", {"art::Thread::CreateNativeThread"},
      /*jni_entry=*/true);
  map_jni("android.os.Parcel.nativeReadStrongBinder",
          "android_os_Parcel_readStrongBinder");
  map_jni("android.os.Parcel.nativeWriteStrongBinder",
          "android_os_Parcel_writeStrongBinder");
  map_jni("android.os.Binder.linkToDeath",
          "android_os_BinderProxy_linkToDeath");
  map_jni("java.lang.Thread.nativeCreate", "Thread_nativeCreate");

  // 67 paths reachable only during Runtime::Init — the ones §III.B.1 filters
  // out manually (WellKnownClasses::CacheClass and friends).
  for (int i = 0; i < 67; ++i) {
    add(StrFormat("art::WellKnownClasses::CacheClass<%02d>", i),
        {"JNIEnv::NewGlobalRef"}, /*jni_entry=*/true, /*init_only=*/true);
  }
  // The remaining non-init JNI entries (147 total - 67 init - 4 above = 76):
  // NewGlobalRef call sites across libandroid_runtime that never sit on an
  // IPC path (media, graphics, view internals). They inflate the raw path
  // count exactly as on real AOSP and must be survived by the pipeline, not
  // hand-removed.
  for (int i = 0; i < 76; ++i) {
    const std::string native = StrFormat("android_internal_jni_entry_%02d", i);
    add(native, {"JNIEnv::NewGlobalRef"}, /*jni_entry=*/true);
    const std::string java =
        StrFormat("android.internal.NativeHolder%02d.nativeOp", i);
    JavaMethodModel m;
    m.id = java;
    m.clazz = StrFormat("android.internal.NativeHolder%02d", i);
    m.name = "nativeOp";
    model->java_methods[java] = std::move(m);
    map_jni(java, native);
  }
}

// --- Hand-modeled corpus entries for the handwritten services ---------------

struct HandMethod {
  const char* name;
  std::uint32_t code;
  std::vector<ArgKind> args;
  std::set<BodyFact> facts;
  std::vector<std::string> callees;
  const char* permission;
};

void AddHandService(CodeModel* model, const std::string& service,
                    const std::string& descriptor, const std::string& clazz,
                    const std::vector<HandMethod>& methods) {
  model->registrations.push_back(ServiceRegistration{
      service, clazz, ServiceRegistration::Registrar::kAddService});
  for (const HandMethod& hm : methods) {
    JavaMethodModel m;
    m.id = StrCat(descriptor, ".", hm.name);
    m.clazz = clazz;
    m.name = hm.name;
    m.service = service;
    m.transaction_code = hm.code;
    m.overrides_aidl = true;
    m.args = hm.args;
    m.facts = hm.facts;
    m.callees = hm.callees;
    m.permission = hm.permission == nullptr ? "" : hm.permission;
    model->java_methods[m.id] = std::move(m);
  }
}

void AddHandwrittenServices(CodeModel* model) {
  const std::vector<std::string> kRegisterCallees = {
      "android.os.RemoteCallbackList.register"};
  const std::vector<std::string> kUnregisterCallees = {
      "android.os.RemoteCallbackList.unregister"};
  const std::set<BodyFact> kRegisterFacts = {
      BodyFact::kStoresParamInCollection, BodyFact::kLinksToDeath};
  const std::set<BodyFact> kUnregisterFacts = {
      BodyFact::kUsesParamAsReadOnlyKey};

  AddHandService(
      model, sv::ClipboardService::kName, sv::ClipboardService::kDescriptor,
      "com.android.server.clipboard.ClipboardService",
      {
          {"setPrimaryClip", sv::ClipboardService::TRANSACTION_setPrimaryClip,
           {ArgKind::kString}, {}, {}, nullptr},
          {"getPrimaryClip", sv::ClipboardService::TRANSACTION_getPrimaryClip,
           {}, {}, {}, nullptr},
          {"hasPrimaryClip", sv::ClipboardService::TRANSACTION_hasPrimaryClip,
           {}, {}, {}, nullptr},
          {"addPrimaryClipChangedListener",
           sv::ClipboardService::TRANSACTION_addPrimaryClipChangedListener,
           {ArgKind::kBinder}, kRegisterFacts, kRegisterCallees, nullptr},
          {"removePrimaryClipChangedListener",
           sv::ClipboardService::TRANSACTION_removePrimaryClipChangedListener,
           {ArgKind::kBinder}, kUnregisterFacts, kUnregisterCallees, nullptr},
      });

  AddHandService(
      model, sv::WifiService::kName, sv::WifiService::kDescriptor,
      "com.android.server.wifi.WifiServiceImpl",
      {
          {"acquireWifiLock", sv::WifiService::TRANSACTION_acquireWifiLock,
           {ArgKind::kBinder, ArgKind::kInt32, ArgKind::kString},
           kRegisterFacts, kRegisterCallees, sv::perms::kWakeLock},
          {"releaseWifiLock", sv::WifiService::TRANSACTION_releaseWifiLock,
           {ArgKind::kBinder}, kUnregisterFacts, kUnregisterCallees, nullptr},
          {"acquireMulticastLock",
           sv::WifiService::TRANSACTION_acquireMulticastLock,
           {ArgKind::kBinder, ArgKind::kString}, kRegisterFacts,
           kRegisterCallees, sv::perms::kChangeWifiMulticastState},
          {"releaseMulticastLock",
           sv::WifiService::TRANSACTION_releaseMulticastLock,
           {ArgKind::kBinder}, kUnregisterFacts, kUnregisterCallees, nullptr},
          {"getWifiEnabledState",
           sv::WifiService::TRANSACTION_getWifiEnabledState, {}, {}, {},
           nullptr},
      });

  AddHandService(
      model, sv::NotificationService::kName,
      sv::NotificationService::kDescriptor,
      "com.android.server.notification.NotificationManagerService",
      {
          // The per-process cap exists but keys on the caller-supplied pkg
          // string ("android" bypass, Code-Snippet 3).
          {"enqueueToast", sv::NotificationService::TRANSACTION_enqueueToast,
           {ArgKind::kString, ArgKind::kBinder, ArgKind::kInt32},
           {BodyFact::kStoresParamInCollection, BodyFact::kLinksToDeath,
            BodyFact::kPerProcessConstraint,
            BodyFact::kConstraintTrustsCallerInput},
           kRegisterCallees, nullptr},
          {"cancelToast", sv::NotificationService::TRANSACTION_cancelToast,
           {ArgKind::kString, ArgKind::kBinder}, kUnregisterFacts,
           kUnregisterCallees, nullptr},
          {"enqueueNotificationWithTag",
           sv::NotificationService::TRANSACTION_enqueueNotificationWithTag,
           {}, {BodyFact::kPerProcessConstraint}, {}, nullptr},
          {"cancelNotificationWithTag",
           sv::NotificationService::TRANSACTION_cancelNotificationWithTag, {},
           {}, {}, nullptr},
          // Retains the listener, but binding requires a signature-level
          // permission: the pipeline's permission filter discharges it as
          // unreachable from third-party apps.
          {"registerListener", 10,
           {ArgKind::kBinder, ArgKind::kString, ArgKind::kInt32},
           kRegisterFacts, kRegisterCallees,
           "android.permission.BIND_NOTIFICATION_LISTENER_SERVICE"},
      });

  AddHandService(
      model, sv::LocationService::kName, sv::LocationService::kDescriptor,
      "com.android.server.LocationManagerService",
      {
          {"addGpsStatusListener",
           sv::LocationService::TRANSACTION_addGpsStatusListener,
           {ArgKind::kBinder}, kRegisterFacts, kRegisterCallees,
           sv::perms::kAccessFineLocation},
          {"removeGpsStatusListener",
           sv::LocationService::TRANSACTION_removeGpsStatusListener,
           {ArgKind::kBinder}, kUnregisterFacts, kUnregisterCallees, nullptr},
          {"addGpsMeasurementsListener",
           sv::LocationService::TRANSACTION_addGpsMeasurementsListener,
           {ArgKind::kBinder}, kRegisterFacts, kRegisterCallees,
           sv::perms::kAccessFineLocation},
          {"removeGpsMeasurementsListener",
           sv::LocationService::TRANSACTION_removeGpsMeasurementsListener,
           {ArgKind::kBinder}, kUnregisterFacts, kUnregisterCallees, nullptr},
          {"addGpsNavigationMessageListener",
           sv::LocationService::TRANSACTION_addGpsNavigationMessageListener,
           {ArgKind::kBinder}, kRegisterFacts, kRegisterCallees,
           sv::perms::kAccessFineLocation},
          {"removeGpsNavigationMessageListener",
           sv::LocationService::TRANSACTION_removeGpsNavigationMessageListener,
           {ArgKind::kBinder}, kUnregisterFacts, kUnregisterCallees, nullptr},
          {"getLastLocation", sv::LocationService::TRANSACTION_getLastLocation,
           {}, {}, {}, nullptr},
      });

  AddHandService(
      model, sv::AudioService::kName, sv::AudioService::kDescriptor,
      "android.media.AudioService",
      {
          {"registerRemoteController",
           sv::AudioService::TRANSACTION_registerRemoteController,
           {ArgKind::kBinder}, kRegisterFacts, kRegisterCallees, nullptr},
          {"unregisterRemoteControlDisplay",
           sv::AudioService::TRANSACTION_unregisterRemoteControlDisplay,
           {ArgKind::kBinder}, kUnregisterFacts, kUnregisterCallees, nullptr},
          {"startWatchingRoutes",
           sv::AudioService::TRANSACTION_startWatchingRoutes,
           {ArgKind::kBinder}, kRegisterFacts, kRegisterCallees, nullptr},
          {"getStreamVolume", sv::AudioService::TRANSACTION_getStreamVolume,
           {ArgKind::kInt32}, {}, {}, nullptr},
          {"setStreamVolume", sv::AudioService::TRANSACTION_setStreamVolume,
           {ArgKind::kInt32}, {}, {}, nullptr},
      });

  AddHandService(
      model, sv::TelephonyRegistryService::kName,
      sv::TelephonyRegistryService::kDescriptor,
      "com.android.server.TelephonyRegistry",
      {
          {"listen", sv::TelephonyRegistryService::TRANSACTION_listen,
           {ArgKind::kString, ArgKind::kBinder, ArgKind::kInt32},
           kRegisterFacts, kRegisterCallees, sv::perms::kReadPhoneState},
          {"listenForSubscriber",
           sv::TelephonyRegistryService::TRANSACTION_listenForSubscriber,
           {ArgKind::kInt32, ArgKind::kString, ArgKind::kBinder,
            ArgKind::kInt32},
           kRegisterFacts, kRegisterCallees, sv::perms::kReadPhoneState},
          {"addOnSubscriptionsChangedListener",
           sv::TelephonyRegistryService::
               TRANSACTION_addOnSubscriptionsChangedListener,
           {ArgKind::kString, ArgKind::kBinder}, kRegisterFacts,
           kRegisterCallees, sv::perms::kReadPhoneState},
          {"removeOnSubscriptionsChangedListener",
           sv::TelephonyRegistryService::
               TRANSACTION_removeOnSubscriptionsChangedListener,
           {ArgKind::kBinder}, kUnregisterFacts, kUnregisterCallees, nullptr},
      });

  AddHandService(
      model, sv::ActivityService::kName, sv::ActivityService::kDescriptor,
      "com.android.server.am.ActivityManagerService",
      {
          {"registerTaskStackListener",
           sv::ActivityService::TRANSACTION_registerTaskStackListener,
           {ArgKind::kBinder}, kRegisterFacts, kRegisterCallees, nullptr},
          {"registerReceiver",
           sv::ActivityService::TRANSACTION_registerReceiver,
           {ArgKind::kString, ArgKind::kBinder, ArgKind::kString},
           kRegisterFacts, kRegisterCallees, nullptr},
          {"unregisterReceiver",
           sv::ActivityService::TRANSACTION_unregisterReceiver,
           {ArgKind::kBinder}, kUnregisterFacts, kUnregisterCallees, nullptr},
          {"bindService", sv::ActivityService::TRANSACTION_bindService,
           {ArgKind::kString, ArgKind::kBinder}, kRegisterFacts,
           kRegisterCallees, nullptr},
          {"unbindService", sv::ActivityService::TRANSACTION_unbindService,
           {ArgKind::kBinder}, kUnregisterFacts, kUnregisterCallees, nullptr},
          {"forceStopPackage",
           sv::ActivityService::TRANSACTION_forceStopPackage,
           {ArgKind::kString}, {}, {},
           "android.permission.FORCE_STOP_PACKAGES"},
      });
}

// --- Registry-derived corpus entries -----------------------------------------

std::set<BodyFact> FactsForKind(services::MethodKind kind) {
  switch (kind) {
    case services::MethodKind::kQuery:
      return {};
    case services::MethodKind::kRegister:
      return {BodyFact::kStoresParamInCollection, BodyFact::kLinksToDeath};
    case services::MethodKind::kUnregister:
      return {BodyFact::kUsesParamAsReadOnlyKey};
    case services::MethodKind::kSession:
      return {BodyFact::kStoresParamInCollection, BodyFact::kLinksToDeath,
              BodyFact::kCreatesServerSession};
    case services::MethodKind::kRegisterPerProcess:
      return {BodyFact::kStoresParamInCollection, BodyFact::kLinksToDeath,
              BodyFact::kPerProcessConstraint};
    case services::MethodKind::kReplaceSingle:
      return {BodyFact::kStoresParamInMemberSlot};
    case services::MethodKind::kTransient:
      return {BodyFact::kUsesParamTransiently};
    case services::MethodKind::kConsumeFd:
      return {BodyFact::kRetainsFileDescriptor};
    case services::MethodKind::kMintToken:
      return {};
    case services::MethodKind::kRegisterGated:
      return {BodyFact::kStoresParamInCollection, BodyFact::kLinksToDeath};
  }
  return {};
}

std::vector<std::string> CalleesForKind(services::MethodKind kind) {
  switch (kind) {
    case services::MethodKind::kRegister:
    case services::MethodKind::kSession:
    case services::MethodKind::kRegisterPerProcess:
    case services::MethodKind::kRegisterGated:
      return {"android.os.RemoteCallbackList.register"};
    case services::MethodKind::kUnregister:
      return {"android.os.RemoteCallbackList.unregister"};
    case services::MethodKind::kReplaceSingle:
      // Replacing also uses the list, but the net retention stays one entry.
      return {"android.os.RemoteCallbackList.register",
              "android.os.RemoteCallbackList.unregister"};
    default:
      return {};
  }
}

// Protocol half-edges the ProtocolGraph joins: what a method's reply mints
// (kSession really writes the session binder into the reply parcel; kMintToken
// writes the capability token) and what each argument consumes.
ValueModel ReturnModelFor(const services::MethodSpec& spec,
                          const std::string& service) {
  ValueModel v;
  switch (spec.kind) {
    case services::MethodKind::kSession:
      v.kind = ValueKind::kBinderHandle;
      v.domain = spec.mints.empty() ? StrCat(service, ".session") : spec.mints;
      break;
    case services::MethodKind::kMintToken:
      v.kind = ValueKind::kToken;
      v.domain = spec.mints.empty() ? StrCat(service, ".token") : spec.mints;
      break;
    default:
      if (!spec.mints.empty()) {
        v.kind = ValueKind::kId;
        v.domain = spec.mints;
      }
      break;
  }
  return v;
}

ValueKind ConsumeKindFor(ArgKind arg) {
  switch (arg) {
    case ArgKind::kBinder:
      return ValueKind::kBinderHandle;
    case ArgKind::kInt64:
    case ArgKind::kString:
      return ValueKind::kToken;
    case ArgKind::kInt32:
      return ValueKind::kId;
    default:
      return ValueKind::kOpaque;
  }
}

std::vector<ValueModel> ArgProvenanceFor(const services::MethodSpec& spec) {
  std::vector<ValueModel> prov;
  if (spec.consumes.empty()) return prov;
  prov.resize(spec.args.size());
  for (std::size_t i = 0;
       i < spec.args.size() && i < spec.consumes.size(); ++i) {
    if (spec.consumes[i].empty()) continue;
    prov[i].kind = ConsumeKindFor(spec.args[i]);
    prov[i].domain = spec.consumes[i];
  }
  return prov;
}

void AddRegistryDerivedServices(CodeModel* model,
                                core::AndroidSystem& system) {
  const std::set<std::string> kNativeServices = {
      "SurfaceFlinger", "media.camera", "media.player", "media.audio_flinger",
      "media.audio_policy"};
  system.ForEachService([&](const std::string& name,
                            services::SystemService* service) {
    auto* registry = dynamic_cast<services::RegistryServiceBase*>(service);
    if (registry == nullptr) return;  // handwritten: modeled above
    const bool app_hosted =
        registry->host_pid() != system.system_server_pid();
    const std::string clazz = service->InterfaceDescriptor();
    if (app_hosted) {
      os::Process* host = system.kernel().FindProcess(registry->host_pid());
      AppServiceModel app;
      app.package = host != nullptr ? host->name : "unknown";
      app.service_name = name;
      app.implementing_class = clazz;
      if (dynamic_cast<services::TextToSpeechService*>(service) != nullptr) {
        app.base_class = "android.speech.tts.TextToSpeechService";
      }
      app.prebuilt = true;
      model->app_services.push_back(std::move(app));
    } else {
      ServiceRegistration reg;
      reg.service_name = name;
      reg.implementing_class = clazz;
      reg.registrar = kNativeServices.count(name) > 0
                          ? ServiceRegistration::Registrar::kNativeAddService
                          : ServiceRegistration::Registrar::kAddService;
      model->registrations.push_back(std::move(reg));
    }
    for (const services::MethodSpec& spec : registry->methods()) {
      JavaMethodModel m;
      m.id = StrCat(service->InterfaceDescriptor(), ".", spec.method);
      m.clazz = clazz;
      m.name = spec.method;
      m.service = name;
      m.transaction_code = spec.code;
      m.overrides_aidl = true;
      m.args = spec.args;
      m.facts = FactsForKind(spec.kind);
      m.callees = CalleesForKind(spec.kind);
      m.permission = spec.permission == nullptr ? "" : spec.permission;
      m.returns = ReturnModelFor(spec, name);
      m.arg_provenance = ArgProvenanceFor(spec);
      model->java_methods[m.id] = std::move(m);
    }
  });
}

// A few framework IPC methods reach IndirectReferenceTable::Add solely
// through Thread.nativeCreate (spawning a worker for the request). The
// paper's sift rule 1 discharges these: CreateNativeThread releases its
// reference before returning.
void AddThreadOnlyIpcMethods(CodeModel* model) {
  struct Entry {
    const char* service;
    const char* method;
  };
  for (const Entry& e : {Entry{"alarm", "set"}, Entry{"backup", "dataChanged"},
                         Entry{"jobscheduler", "schedule"}}) {
    JavaMethodModel m;
    m.clazz = StrCat("android.os.I", e.service, "Service");
    m.id = StrCat(m.clazz, ".", e.method);
    m.name = e.method;
    m.service = e.service;
    m.transaction_code = 100;  // corpus-only: no live transaction handler
    m.overrides_aidl = true;
    m.args = {ArgKind::kString};
    m.facts = {BodyFact::kOnlyCreatesThread};
    m.callees = {"java.lang.Thread.start"};
    model->java_methods[m.id] = std::move(m);
  }
}

void AddHelperGuards(CodeModel* model) {
  auto cap = [model](const char* helper, const std::string& method, int n) {
    model->helper_guards.push_back(
        HelperGuard{helper, method, HelperGuard::Kind::kCap, n});
  };
  auto mux = [model](const char* helper, const std::string& method) {
    model->helper_guards.push_back(HelperGuard{
        helper, method, HelperGuard::Kind::kMultiplexedTransport, 0});
  };
  cap("android.net.wifi.WifiManager",
      StrCat(sv::WifiService::kDescriptor, ".acquireWifiLock"), 50);
  cap("android.net.wifi.WifiManager",
      StrCat(sv::WifiService::kDescriptor, ".acquireMulticastLock"), 50);
  mux("android.content.ClipboardManager",
      StrCat(sv::ClipboardService::kDescriptor,
             ".addPrimaryClipChangedListener"));
  mux("android.view.accessibility.AccessibilityManager",
      "android.view.accessibility.IAccessibilityManager.addClient");
  mux("android.content.pm.LauncherApps",
      "android.content.pm.ILauncherApps.addOnAppsChangedListener");
  mux("android.media.tv.TvInputManager",
      "android.media.tv.ITvInputManager.registerCallback");
  mux("android.net.EthernetManager",
      "android.net.IEthernetManager.addListener");
  mux("android.location.LocationManager",
      StrCat(sv::LocationService::kDescriptor, ".addGpsMeasurementsListener"));
  mux("android.location.LocationManager",
      StrCat(sv::LocationService::kDescriptor,
             ".addGpsNavigationMessageListener"));
}

void AddPermissionMap(CodeModel* model) {
  model->permission_levels[sv::perms::kAccessFineLocation] =
      PermissionLevel::kDangerous;
  model->permission_levels[sv::perms::kUseSip] = PermissionLevel::kDangerous;
  model->permission_levels[sv::perms::kReadPhoneState] =
      PermissionLevel::kDangerous;
  model->permission_levels[sv::perms::kBluetooth] = PermissionLevel::kNormal;
  model->permission_levels[sv::perms::kWakeLock] = PermissionLevel::kNormal;
  model->permission_levels[sv::perms::kChangeWifiMulticastState] =
      PermissionLevel::kNormal;
  model->permission_levels[sv::perms::kGetPackageSize] =
      PermissionLevel::kNormal;
  model->permission_levels[sv::perms::kChangeNetworkState] =
      PermissionLevel::kNormal;
  model->permission_levels[sv::perms::kAccessNetworkState] =
      PermissionLevel::kNormal;
  model->permission_levels["android.permission.FORCE_STOP_PACKAGES"] =
      PermissionLevel::kSignature;
  model->permission_levels
      ["android.permission.BIND_NOTIFICATION_LISTENER_SERVICE"] =
          PermissionLevel::kSignature;
}

}  // namespace

CodeModel BuildAospModel(core::AndroidSystem& system) {
  CodeModel model;
  AddFrameworkInternals(&model);
  AddNativeGraph(&model);
  AddHandwrittenServices(&model);
  AddRegistryDerivedServices(&model, system);
  AddThreadOnlyIpcMethods(&model);
  AddHelperGuards(&model);
  AddPermissionMap(&model);
  return model;
}

CodeModel BuildMarketModel(const MarketOptions& options) {
  CodeModel model;
  AddFrameworkInternals(&model);
  AddNativeGraph(&model);
  AddPermissionMap(&model);
  Rng rng(options.seed);

  auto add_app_method = [&model](const std::string& package,
                                 const std::string& service,
                                 const std::string& clazz,
                                 const std::string& method,
                                 std::uint32_t code,
                                 std::vector<ArgKind> args,
                                 std::set<BodyFact> facts,
                                 std::vector<std::string> callees,
                                 const std::string& base_class = "") {
    AppServiceModel app;
    app.package = package;
    app.service_name = service;
    app.implementing_class = clazz;
    app.base_class = base_class;
    app.prebuilt = false;
    model.app_services.push_back(std::move(app));
    JavaMethodModel m;
    m.id = StrCat(clazz, ".", method);
    m.clazz = clazz;
    m.name = method;
    m.service = service;
    m.transaction_code = code;
    m.overrides_aidl = true;
    m.args = std::move(args);
    m.facts = std::move(facts);
    m.callees = std::move(callees);
    model.java_methods[m.id] = std::move(m);
  };

  // Table V's three vulnerable apps.
  add_app_method("com.google.android.tts", "googletts",
                 sv::TextToSpeechService::kDescriptor, "setCallback",
                 sv::TextToSpeechService::TRANSACTION_setCallback,
                 {ArgKind::kBinder, ArgKind::kBinder},
                 {BodyFact::kStoresParamInCollection, BodyFact::kLinksToDeath},
                 {"android.os.RemoteCallbackList.register"},
                 "android.speech.tts.TextToSpeechService");
  add_app_method("com.supernet.vpn", "supernetvpn",
                 sv::OpenVpnApiService::kDescriptor, "registerStatusCallback",
                 sv::OpenVpnApiService::TRANSACTION_registerStatusCallback,
                 {ArgKind::kBinder},
                 {BodyFact::kStoresParamInCollection, BodyFact::kLinksToDeath},
                 {"android.os.RemoteCallbackList.register"});
  add_app_method("com.snapmovie", "snapmovie",
                 sv::SnapMovieMainService::kDescriptor, "a",
                 sv::SnapMovieMainService::TRANSACTION_a, {ArgKind::kBinder},
                 {BodyFact::kStoresParamInCollection, BodyFact::kLinksToDeath},
                 {"android.os.RemoteCallbackList.register"});

  // The rest of the market: most apps export no IPC at all; the few that do
  // either take no binders or use the benign retention patterns.
  for (int i = 0; i < options.app_count - 3; ++i) {
    const std::string package = StrFormat("com.market.app%04d", i);
    if (!rng.Chance(0.06)) continue;  // "few apps open IPC interface" (§IV.D)
    const std::string clazz = StrCat(package, ".ExportedService");
    const double roll = rng.UniformDouble();
    if (roll < 0.4) {
      add_app_method(package, StrCat(package, ".svc"), clazz, "query", 1,
                     {ArgKind::kInt32, ArgKind::kString}, {}, {});
    } else if (roll < 0.7) {
      add_app_method(package, StrCat(package, ".svc"), clazz, "process", 1,
                     {ArgKind::kBinder},
                     {BodyFact::kUsesParamTransiently}, {});
    } else {
      add_app_method(package, StrCat(package, ".svc"), clazz, "setListener", 1,
                     {ArgKind::kBinder},
                     {BodyFact::kStoresParamInMemberSlot},
                     {"android.os.RemoteCallbackList.register",
                      "android.os.RemoteCallbackList.unregister"});
    }
  }
  return model;
}

}  // namespace jgre::model
