#include "model/code_model.h"

namespace jgre::model {

std::string_view PermissionLevelName(PermissionLevel level) {
  switch (level) {
    case PermissionLevel::kNone:
      return "-";
    case PermissionLevel::kNormal:
      return "normal";
    case PermissionLevel::kDangerous:
      return "dangerous";
    case PermissionLevel::kSignature:
      return "signature";
  }
  return "?";
}

std::string_view ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kOpaque:
      return "opaque";
    case ValueKind::kToken:
      return "token";
    case ValueKind::kId:
      return "id";
    case ValueKind::kBinderHandle:
      return "binder-handle";
  }
  return "?";
}

const JavaMethodModel* CodeModel::FindJavaMethod(const std::string& id) const {
  auto it = java_methods.find(id);
  return it == java_methods.end() ? nullptr : &it->second;
}

JavaMethodModel* CodeModel::MutableJavaMethod(const std::string& id) {
  auto it = java_methods.find(id);
  return it == java_methods.end() ? nullptr : &it->second;
}

PermissionLevel CodeModel::LevelOf(const std::string& permission) const {
  if (permission.empty()) return PermissionLevel::kNone;
  auto it = permission_levels.find(permission);
  return it == permission_levels.end() ? PermissionLevel::kSignature
                                       : it->second;
}

}  // namespace jgre::model
