// CodeModel — the intermediate representation the static analysis runs on.
//
// Plays the role of the compiled AOSP classes the paper feeds to SOOT plus
// the native sources it feeds to a call-graph extractor (§III): classes and
// methods with parameter types, *code-level body facts* (does a method retain
// its binder argument, and how), call edges, JNI registrations, the native
// call graph down to IndirectReferenceTable::Add, service-manager
// registrations, and a PScout-style permission map. The model records what
// the code does — never verdicts; vulnerable/protected/safe is derived by the
// pipeline in src/analysis and confirmed by src/dynamic.
#ifndef JGRE_MODEL_CODE_MODEL_H_
#define JGRE_MODEL_CODE_MODEL_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "services/registry_service.h"  // services::ArgKind (parcel layout)

namespace jgre::model {

// Canonical frame names the analyses key on: the native JGR sink every
// witness path must terminate at, and the Java-level JGR entry methods with
// special sift/witness semantics. Single source of truth for src/analysis
// (legacy pipeline and taint engine alike) — the corpus spells them out
// because it *is* the modeled code.
inline constexpr std::string_view kJgrSinkFunction =
    "art::IndirectReferenceTable::Add";
inline constexpr std::string_view kThreadCreateEntry =
    "java.lang.Thread.nativeCreate";
inline constexpr std::string_view kLinkToDeathEntry =
    "android.os.Binder.linkToDeath";
inline constexpr std::string_view kReadStrongBinderEntry =
    "android.os.Parcel.nativeReadStrongBinder";
inline constexpr std::string_view kWriteStrongBinderEntry =
    "android.os.Parcel.nativeWriteStrongBinder";

// What a method's body does with its binder-typed inputs — the facts the
// paper's sifter rules (§III.C.3) and protection study (§IV.C) key on.
enum class BodyFact {
  // Retention patterns:
  kStoresParamInCollection,   // map/list member: retained until removal/death
  kStoresParamInMemberSlot,   // single field: replaced on the next call (rule 4)
  kUsesParamTransiently,      // local use only; GC reclaims it (rule 2)
  kUsesParamAsReadOnlyKey,    // read-only Map/Set/RCL lookup (rule 3)
  // Additional JGR sources:
  kLinksToDeath,              // Binder.linkToDeath → JavaDeathRecipient JGR
  kCreatesServerSession,      // mints + retains a server-side binder per call
  kOnlyCreatesThread,         // only Thread.nativeCreate (rule 1)
  // Server-side guards:
  kPerProcessConstraint,       // counts/limits registrations per process
  kConstraintTrustsCallerInput,  // ...but the check keys on a caller-supplied
                                 // value (enqueueToast's pkg parameter)
  // §VI: other exhaustible resources (the JGRE pipeline deliberately ignores
  // this; ExtractOtherResourceRisks surfaces it as future work).
  kRetainsFileDescriptor,
};

enum class PermissionLevel { kNone, kNormal, kDangerous, kSignature };

std::string_view PermissionLevelName(PermissionLevel level);

// What a value minted or consumed by an IPC entry *is* for cross-transaction
// protocol purposes (BinderCracker-style dependency-aware fuzzing): the kind
// plus the mint domain it belongs to ("audio.session", "tts.engine-slot").
// A consumer argument matches a producer return iff the kinds agree and the
// domains are equal.
enum class ValueKind {
  kOpaque,        // no cross-call meaning (the default for every argument)
  kToken,         // service-minted capability token handed back to the caller
  kId,            // service-minted numeric identity
  kBinderHandle,  // service-minted strong binder (session objects)
};

std::string_view ValueKindName(ValueKind kind);

struct ValueModel {
  ValueKind kind = ValueKind::kOpaque;
  std::string domain;  // "" = no protocol meaning

  bool minted() const { return kind != ValueKind::kOpaque && !domain.empty(); }
};

// A Java-side method (IPC entry or framework-internal helper).
struct JavaMethodModel {
  std::string id;       // unique: "android.content.IClipboard.addPrimary..."
  std::string clazz;    // implementing class
  std::string name;     // method name (with signature suffix if overloaded)
  // For IPC entries: the service-manager name and transaction code.
  std::string service;
  std::uint32_t transaction_code = 0;
  bool overrides_aidl = false;   // AIDL-defined or IInterface override
  std::vector<services::ArgKind> args;
  std::set<BodyFact> facts;
  std::vector<std::string> callees;  // ids of Java methods this one calls
  std::string permission;            // required permission ("" = none)
  // Protocol facts (def/use half-edges the ProtocolGraph joins): what the
  // entry returns to its caller, and where each argument's value comes from.
  ValueModel returns;
  std::vector<ValueModel> arg_provenance;  // parallel to args; may be shorter

  bool HasFact(BodyFact fact) const { return facts.count(fact) > 0; }
  // Provenance of argument `index`, defaulting to opaque when undeclared.
  ValueModel ProvenanceOf(std::size_t index) const {
    return index < arg_provenance.size() ? arg_provenance[index] : ValueModel{};
  }
  bool HasBinderParam() const {
    for (services::ArgKind a : args) {
      if (a == services::ArgKind::kBinder) return true;
    }
    return false;
  }
};

// A native function node in the native call graph.
struct NativeMethodModel {
  std::string name;                  // "android::ibinderForJavaObject"
  std::vector<std::string> callees;  // native call edges
  bool is_jni_entry = false;         // registered via registerNativeMethods
  bool runtime_init_only = false;    // only reachable during Runtime::Init
};

// registerNativeMethods: Java method <-> native entry.
struct JniRegistration {
  std::string java_method;   // id in java_methods
  std::string native_method; // name in native_methods
};

// ServiceManager.addService / publishBinderService / native addService.
struct ServiceRegistration {
  enum class Registrar { kAddService, kPublishBinderService, kNativeAddService };
  std::string service_name;
  std::string implementing_class;
  Registrar registrar = Registrar::kAddService;
};

// A prebuilt/third-party app exposing IPC (directly or by extending an
// abstract base service like android.speech.tts.TextToSpeechService).
struct AppServiceModel {
  std::string package;
  std::string service_name;       // how callers reach it
  std::string implementing_class;
  std::string base_class;         // non-empty when inherited from a base
  bool prebuilt = false;          // AOSP prebuilt vs market app
};

// A client-side guard in a service helper class (Table II).
struct HelperGuard {
  enum class Kind { kCap, kMultiplexedTransport };
  std::string helper_class;   // "android.net.wifi.WifiManager"
  std::string guarded_method; // id of the guarded IPC method
  Kind kind = Kind::kMultiplexedTransport;
  int cap = 0;                // for kCap (MAX_ACTIVE_LOCKS = 50)
};

struct CodeModel {
  std::map<std::string, JavaMethodModel> java_methods;
  std::map<std::string, NativeMethodModel> native_methods;
  std::vector<JniRegistration> jni_registrations;
  std::vector<ServiceRegistration> registrations;
  std::vector<AppServiceModel> app_services;
  std::vector<HelperGuard> helper_guards;
  // PScout-style permission map: permission -> protection level.
  std::map<std::string, PermissionLevel> permission_levels;

  const JavaMethodModel* FindJavaMethod(const std::string& id) const;
  JavaMethodModel* MutableJavaMethod(const std::string& id);
  PermissionLevel LevelOf(const std::string& permission) const;
};

}  // namespace jgre::model

#endif  // JGRE_MODEL_CODE_MODEL_H_
