#include "fleet/runner.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "common/strings.h"
#include "detect/registry.h"
#include "harness/experiment_runner.h"
#include "obs/event_bus.h"

namespace jgre::fleet {

namespace {

// Newest victim-kJgr/kIpc events the probe keeps for the hunt pass. Bounds
// per-device memory; the activity counters it feeds rates from are full-
// stream, so only provenance slices (not verdicts) see the truncation.
constexpr std::size_t kHuntWindowCapacity = 2048;

}  // namespace

DeviceOutcome RunDeviceScenario(const FleetDeviceSpec& spec,
                                sim::DeviceSim& device,
                                const detect::InterfaceCatalog* catalog) {
  DeviceOutcome out;
  out.index = spec.index;
  out.scenario_class = spec.scenario_class;

  core::AndroidSystem& system = device.system();
  DeviceProbe probe(system.system_server_pid().value(), kHuntWindowCapacity);
  device.bus().Subscribe(&probe,
                         obs::MaskOf(obs::Category::kJgr) |
                             obs::MaskOf(obs::Category::kIpc),
                         /*pid_filter=*/-1, obs::Delivery::kBuffered);

  defense::JgreDefender* defender = device.defender();
  attack::MaliciousApp* attacker = device.attacker();
  services::AppProcess* attacker_process = device.attacker_process();
  attack::BenignWorkload* benign = device.benign();
  std::vector<TimeUs>& next_benign = device.benign_schedule();
  Rng& rng = device.rng();
  const int max_calls = device.spec().max_attacker_calls();

  const TimeUs start = system.clock().NowUs();
  const TimeUs deadline = start + spec.horizon_us;
  TimeUs exhausted_at = 0;
  int calls = 0;

  const auto pump_benign = [&] {
    const TimeUs now = system.clock().NowUs();
    for (std::size_t i = 0; i < next_benign.size(); ++i) {
      if (now >= next_benign[i]) {
        benign->InteractOnce(i);
        next_benign[i] =
            system.clock().NowUs() + 20'000 + rng.UniformU64(130'000);
      }
    }
  };

  while (system.clock().NowUs() < deadline) {
    if (defender != nullptr && !defender->incidents().empty()) break;
    if (attacker != nullptr) {
      if (!attacker_process->alive() || calls >= max_calls) break;
      (void)attacker->Step();
      ++calls;
      // The slow-drip profile: idle between calls, letting periodic GC run
      // and rate-based monitors cool down.
      if (spec.think_time_us > 0) system.clock().AdvanceUs(spec.think_time_us);
      pump_benign();
    } else if (!next_benign.empty()) {
      // Benign-only device: jump to the earliest scheduled interaction (or
      // the horizon, whichever is sooner) and fire what is due.
      const TimeUs earliest =
          *std::min_element(next_benign.begin(), next_benign.end());
      const TimeUs target = std::min(std::max(earliest, system.clock().NowUs()),
                                     deadline);
      if (target > system.clock().NowUs()) {
        system.clock().AdvanceUs(target - system.clock().NowUs());
      }
      pump_benign();
    } else {
      // No attacker, no benign apps: nothing can happen before the horizon.
      system.clock().AdvanceUs(deadline - system.clock().NowUs());
      break;
    }
    if (system.soft_reboots() > 0) {
      exhausted_at = system.clock().NowUs();
      break;
    }
  }

  out.exhausted = system.soft_reboots() > 0;
  if (out.exhausted) {
    if (exhausted_at == 0) exhausted_at = system.clock().NowUs();
    out.time_to_exhaustion_us = exhausted_at - start;
    out.exhausted_within_horizon = out.time_to_exhaustion_us <= spec.horizon_us;
  }
  out.incident = defender != nullptr && !defender->incidents().empty();
  out.attacker_killed =
      attacker_process != nullptr && !attacker_process->alive();
  out.virtual_duration_us = system.clock().NowUs() - start;

  FinishDeviceOutcome(device, probe, catalog, &out);
  return out;
}

void FinishDeviceOutcome(sim::DeviceSim& device, DeviceProbe& probe,
                         const detect::InterfaceCatalog* catalog,
                         DeviceOutcome* out) {
  core::AndroidSystem& system = device.system();
  defense::JgreDefender* defender = device.defender();

  // Settle the runtimes before reducing the probe: a final collection strips
  // in-flight transient references, so the hunts below see *retention* — the
  // paper's exploitability criterion — rather than garbage the next GC would
  // have reclaimed anyway.
  system.CollectAllGarbage();

  // Unsubscribe drains the probe's staged events first — the read barrier.
  device.bus().Unsubscribe(&probe);
  out->ipc_calls = probe.ipc_calls();
  out->jgr_adds = probe.jgr_adds();
  out->peak_jgr = probe.peak_jgr();
  out->peak_weak_jgr = probe.peak_weak_jgr();

  // The per-device hunt pass: every trace-driven hunt in the standard
  // battery over what the probe observed (the static and fuzz hunts skip
  // themselves — no analysis report or finding list here).
  static const detect::HuntRegistry& registry = *[] {
    return new detect::HuntRegistry(detect::HuntRegistry::WithDefaultHunts());
  }();
  const std::vector<obs::TraceEvent> window = probe.Window();
  detect::DataSources sources;
  sources.trace_events = window.data();
  sources.trace_event_count = window.size();
  sources.jgr_activity = probe.jgr_activity();
  sources.victim_pid = probe.victim_pid();
  sources.victim_name = "system_server";
  sources.defender = defender;
  sources.descriptor_name = [&system](std::uint32_t id) {
    return system.driver().DescriptorName(id);
  };
  sources.catalog = catalog;
  out->detections = registry.RunAll(sources, detect::Scope{});
  for (const detect::Detection& detection : out->detections) {
    ++out->hunt_hits[detection.hunt];
  }
}

FleetRunner::FleetRunner(std::vector<FleetDeviceSpec> fleet,
                         FleetOptions options)
    : fleet_(std::move(fleet)),
      options_(options),
      cache_(options_.max_images) {}

Status FleetRunner::Prepare() {
  if (prepared_) return Status::Ok();
  std::set<std::uint64_t> keys;
  key_of_.resize(fleet_.size());
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    key_of_[i] = sim::PrefixKey(fleet_[i].device);
    keys.insert(key_of_[i]);
  }
  distinct_keys_ = keys.size();
  prepared_ = true;
  return Status::Ok();
}

std::unique_ptr<core::AndroidSystem> FleetRunner::RestoreDevice(
    std::size_t index) {
  const sim::DeviceSpec& spec = fleet_[index].device;
  auto image = cache_.Get(key_of_[index], [&spec] {
    sim::DeviceFactory factory(spec);
    std::unique_ptr<core::AndroidSystem> warmed = factory.BootPrefix();
    return snapshot::SystemSnapshot::Capture(*warmed);
  });
  if (!image.ok()) {
    throw std::runtime_error(StrCat("FleetRunner (device ", index,
                                    "): boot image build failed: ",
                                    image.status().ToString()));
  }
  core::SystemConfig sys_config = spec.system_config();
  sys_config.seed = spec.seed();
  auto system = std::make_unique<core::AndroidSystem>(sys_config);
  system->Boot();
  Status restored = image.value()->RestoreInto(system.get());
  if (!restored.ok()) {
    throw std::runtime_error(StrCat("FleetRunner (device ", index,
                                    "): restore failed: ",
                                    restored.ToString()));
  }
  return system;
}

FleetResult FleetRunner::Run() {
  Status prepared = Prepare();
  if (!prepared.ok()) throw std::runtime_error(prepared.ToString());

  FleetResult result;
  result.image_count = distinct_keys_;
  result.outcomes = harness::RunOrdered<DeviceOutcome>(
      fleet_.size(), options_.jobs, [this](std::size_t i) {
        sim::DeviceFactory factory(fleet_[i].device);
        std::unique_ptr<sim::DeviceSim> device =
            factory.CreateDeviceOn(RestoreDevice(i));
        return options_.scenario_driver
                   ? options_.scenario_driver(fleet_[i], *device,
                                              options_.catalog)
                   : RunDeviceScenario(fleet_[i], *device, options_.catalog);
      });
  result.image_builds = cache_.builds();
  result.image_evictions = cache_.evictions();
  // Fold in submission order; MergeFrom-based shard folds land on the same
  // bytes (the sketch-merge invariance the tests pin).
  for (const DeviceOutcome& outcome : result.outcomes) {
    result.aggregator.Absorb(outcome);
  }
  return result;
}

}  // namespace jgre::fleet
