// FleetAggregator — streaming census statistics over per-device outcomes.
//
// Each device run reduces to one DeviceOutcome (drained from its EventBus by
// a DeviceProbe plus the scenario driver's own bookkeeping). The aggregator
// folds outcomes into per-scenario-class counters and mergeable
// QuantileSketches; MergeFrom() combines aggregators bin-wise, so shard
// aggregation commutes — the census JSON is identical no matter how the
// fleet was partitioned across workers.
#ifndef JGRE_FLEET_AGGREGATOR_H_
#define JGRE_FLEET_AGGREGATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "detect/detection.h"
#include "detect/hunt.h"
#include "fleet/sketch.h"
#include "harness/json.h"
#include "obs/event.h"

namespace jgre::fleet {

// The reduced result of one device simulation.
struct DeviceOutcome {
  std::size_t index = 0;
  std::string scenario_class;
  // JGR-table exhaustion detonated (system_server soft-rebooted).
  bool exhausted = false;
  DurationUs time_to_exhaustion_us = 0;  // meaningful when exhausted
  bool exhausted_within_horizon = false;
  bool incident = false;  // the defender raised an incident report
  bool attacker_killed = false;
  std::int64_t ipc_calls = 0;
  std::int64_t jgr_adds = 0;
  std::uint64_t peak_jgr = 0;  // system_server table high-water mark
  // Weak-global table high-water mark. Non-zero only when the victim runtime
  // emits weak events (arms weakref_churn cells opt in).
  std::uint64_t peak_weak_jgr = 0;
  // Mitigation collateral (arms cells; zero elsewhere): calls denied by a
  // MitigationPolicy split by issuer, and benign apps killed by the
  // defender's recovery pass.
  std::int64_t denied_attacker_calls = 0;
  std::int64_t denied_benign_calls = 0;
  std::int64_t benign_kills = 0;
  // The attack strategy gave up after its consecutive-denial budget.
  bool stopped_by_denial = false;
  DurationUs virtual_duration_us = 0;
  // The device's hunt pass: per-hunt detection counts plus the detections
  // themselves (with provenance), in hunt registration order.
  std::map<std::string, std::uint64_t> hunt_hits;
  std::vector<detect::Detection> detections;
};

// An EventSink that reduces a device's kJgr/kIpc batches as they drain.
// Subscribes only the functional categories, so the census numbers are
// identical under -DJGRE_OBS_TRACING=OFF.
class DeviceProbe : public obs::EventSink {
 public:
  // `victim_pid` scopes the JGR statistics to the victim's table (the
  // pre-reboot system_server); IPC calls are counted fleet-wide. A non-zero
  // `ring_capacity` additionally retains the newest victim-kJgr and kIpc
  // events as the trace window the detection hunts read — the full-stream
  // JgrActivity counters keep accumulating regardless, so rates and net
  // growth never depend on the ring size.
  explicit DeviceProbe(std::int32_t victim_pid, std::size_t ring_capacity = 0)
      : victim_pid_(victim_pid), ring_capacity_(ring_capacity) {}

  void OnEvent(const obs::TraceEvent& event) override;
  void OnBatch(const obs::TraceEvent* events, std::size_t count) override;

  std::int32_t victim_pid() const { return victim_pid_; }
  std::int64_t ipc_calls() const { return ipc_calls_; }
  std::int64_t jgr_adds() const { return jgr_adds_; }
  std::uint64_t peak_jgr() const { return peak_jgr_; }
  // Weak-table counters; only advance when the victim runtime opts into
  // weak-event emission (they ride the same kJgr category).
  std::int64_t weak_adds() const { return weak_adds_; }
  std::int64_t weak_removes() const { return weak_removes_; }
  std::uint64_t peak_weak_jgr() const { return peak_weak_jgr_; }
  const detect::JgrActivity& jgr_activity() const { return activity_; }

  // The retained window in stream order (empty when the ring is disabled).
  std::vector<obs::TraceEvent> Window() const;

 private:
  void Retain(const obs::TraceEvent& event);

  std::int32_t victim_pid_;
  std::size_t ring_capacity_;
  std::int64_t ipc_calls_ = 0;
  std::int64_t jgr_adds_ = 0;
  std::uint64_t peak_jgr_ = 0;
  std::int64_t weak_adds_ = 0;
  std::int64_t weak_removes_ = 0;
  std::uint64_t peak_weak_jgr_ = 0;
  detect::JgrActivity activity_;
  bool saw_jgr_ = false;
  std::vector<obs::TraceEvent> ring_;
  std::size_t ring_next_ = 0;  // overwrite cursor once the ring is full
};

class FleetAggregator {
 public:
  void Absorb(const DeviceOutcome& outcome);
  // Bin-wise merge; commutative and associative with Absorb order.
  void MergeFrom(const FleetAggregator& other);

  std::size_t devices() const { return devices_; }

  // The census document body: overall + per-scenario-class blocks with
  // incident rates, soft-reboot-within-T fractions, and p50/p90/p99
  // time-to-exhaustion / peak-JGR quantiles. Pure function of the absorbed
  // outcomes (no wall-clock, no worker counts).
  harness::Json ToJson() const;

 private:
  struct ClassStats {
    std::uint64_t devices = 0;
    std::uint64_t incidents = 0;
    std::uint64_t exhausted = 0;
    std::uint64_t exhausted_within_horizon = 0;
    std::uint64_t attacker_kills = 0;
    std::int64_t ipc_calls = 0;
    std::int64_t jgr_adds = 0;
    std::int64_t denied_attacker_calls = 0;
    std::int64_t denied_benign_calls = 0;
    std::int64_t benign_kills = 0;
    std::uint64_t denial_stops = 0;  // devices whose attack denied out
    QuantileSketch tte_us;    // time-to-exhaustion of exhausted devices
    QuantileSketch peak_jgr;  // high-water mark of every device
    // Per-hunt detection counts (additive; ordered for stable JSON).
    std::map<std::string, std::uint64_t> hunt_hits;
  };

  static harness::Json StatsJson(const ClassStats& stats);

  std::size_t devices_ = 0;
  std::map<std::string, ClassStats> classes_;  // ordered: stable JSON
};

}  // namespace jgre::fleet

#endif  // JGRE_FLEET_AGGREGATOR_H_
