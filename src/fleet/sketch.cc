#include "fleet/sketch.h"

#include <bit>

namespace jgre::fleet {

int QuantileSketch::BinOf(std::uint64_t value) {
  if (value == 0) return 0;
  const int octave = std::bit_width(value) - 1;  // floor(log2(value))
  const std::uint64_t offset = value - (1ULL << octave);
  // Scale the in-octave offset (< 2^octave) to [0, 8): a shift either way
  // depending on which side of 2^3 the octave width falls.
  const std::uint64_t sub =
      octave >= 3 ? offset >> (octave - 3) : offset << (3 - octave);
  return 1 + octave * kSubBuckets + static_cast<int>(sub);
}

std::uint64_t QuantileSketch::BinLowerBound(int bin) {
  if (bin <= 0) return 0;
  const int octave = (bin - 1) / kSubBuckets;
  const std::uint64_t sub = static_cast<std::uint64_t>((bin - 1) % kSubBuckets);
  const std::uint64_t offset =
      octave >= 3 ? sub << (octave - 3) : sub >> (3 - octave);
  return (1ULL << octave) + offset;
}

void QuantileSketch::Add(std::uint64_t value) {
  ++bins_[static_cast<std::size_t>(BinOf(value))];
  ++count_;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  for (int b = 0; b < kBins; ++b) bins_[b] += other.bins_[b];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

std::uint64_t QuantileSketch::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kBins; ++b) {
    cumulative += bins_[b];
    if (cumulative > rank) {
      std::uint64_t v = BinLowerBound(b);
      if (v < min_) v = min_;
      if (v > max_) v = max_;
      return v;
    }
  }
  return max_;
}

}  // namespace jgre::fleet
