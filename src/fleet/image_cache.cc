#include "fleet/image_cache.h"

namespace jgre::fleet {

Result<std::shared_ptr<const snapshot::SystemSnapshot>> BootImageCache::Get(
    std::uint64_t key, const Builder& builder) {
  std::lock_guard<std::mutex> lock(mu_);
  seen_keys_.insert(key);
  if (auto it = index_.find(key); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to MRU
    return lru_.front().second;
  }
  // Miss: build under the lock. Serializing builds is deliberate — two
  // workers missing on the same key must not boot the prefix twice, and a
  // boot is orders of magnitude heavier than any restore it briefly blocks.
  auto built = builder();
  if (!built.ok()) return built.status();
  ++builds_;
  auto image = std::make_shared<const snapshot::SystemSnapshot>(
      std::move(built).value());
  lru_.emplace_front(key, image);
  index_[key] = lru_.begin();
  if (lru_.size() > budget_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
  return image;
}

std::size_t BootImageCache::distinct_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seen_keys_.size();
}

std::size_t BootImageCache::resident() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::uint64_t BootImageCache::builds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return builds_;
}

std::uint64_t BootImageCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace jgre::fleet
