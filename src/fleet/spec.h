// FleetDeviceSpec / FleetMatrix — the heterogeneous device population of a
// fleet census.
//
// A fleet campaign does not enumerate devices by hand: it declares axes —
// JGR table caps, defense threshold points, attack scenarios, benign app
// populations — and ExpandMatrix() takes their cartesian product into a
// deterministic vector of FleetDeviceSpecs. Every device boots from the same
// seed (so devices sharing a SystemConfig share one warmed boot image, see
// sim::PrefixKey) but runs a decorrelated scenario via a per-device scenario
// seed mixed from (matrix seed, device index) — never from --jobs or
// scheduling order.
#ifndef JGRE_FLEET_SPEC_H_
#define JGRE_FLEET_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "attack/vuln_registry.h"
#include "common/types.h"
#include "sim/device.h"

namespace jgre::fleet {

// One attack scenario axis point. Class "benign" runs no attacker at all;
// "flood" steps the attacker back-to-back; "drip" inserts think time between
// calls (the slow-drip evasion profile from the paper's §VI discussion).
struct AttackScenario {
  std::string scenario_class;  // "benign" | "flood" | "drip" | "churn"
  int vuln_id = 0;             // registry id (attack::VulnSpec::id); 0 = none
  DurationUs think_time_us = 0;
};

// Sentinel vuln_id for the synthetic churn scenario: not a registry
// vulnerability (replace-single slots are sift rule 4's *non*-exploitable
// class), but flooding one with fresh binders churns the victim's JGR table
// — every call adds a reference and evicts the previous one, so net growth
// stays ~zero while table bandwidth burns. The follow-up death-churn hunt
// exists to catch exactly this profile.
inline constexpr int kChurnVulnId = -1;

// The spec behind kChurnVulnId: flood a generic safe service's setCallback
// (member-variable slot) with a fresh callback binder per call.
const attack::VulnSpec& ChurnAttackSpec();

// One defense axis point: disabled, or enabled at (alarm, report) thresholds.
struct DefensePoint {
  bool enabled = false;
  std::size_t alarm_threshold = 0;
  std::size_t report_threshold = 0;
};

struct FleetMatrix {
  std::uint64_t seed = 42;
  // Shared prefix shape — identical across the whole fleet so the number of
  // distinct boot images equals the number of distinct JGR caps.
  int warmup_apps = 6;
  DurationUs warmup_foreground_us = 4'000'000;
  DurationUs warmup_interaction_period_us = 0;
  // Axes. Defaults give 4 caps x 9 scenarios x 3 defense points x 3 benign
  // populations = 324 devices from 4 boot images.
  std::vector<std::size_t> jgr_caps = {6'400, 12'800, 25'600, 51'200};
  std::vector<AttackScenario> scenarios;  // empty = DefaultScenarios()
  std::vector<DefensePoint> defense = {{false, 0, 0},
                                       {true, 4'000, 12'000},
                                       {true, 2'000, 6'000}};
  std::vector<int> benign_apps = {0, 2, 4};
  int max_attacker_calls = 15'000;
  // The census window T: "soft-reboot fraction within T" is measured against
  // this horizon, and benign scenarios run until they reach it.
  DurationUs horizon_us = 60'000'000;
};

// benign + {flood, drip} over four registry vulnerabilities.
std::vector<AttackScenario> DefaultScenarios();

// One fully-resolved device of the fleet.
struct FleetDeviceSpec {
  std::size_t index = 0;
  std::string scenario_class;
  std::string scenario_detail;  // e.g. "flood:notification.enqueueToast"
  sim::DeviceSpec device;
  DurationUs think_time_us = 0;
  DurationUs horizon_us = 0;
};

// The deterministic cartesian expansion (caps outermost, then scenarios,
// defense points, benign populations). Output depends only on the matrix
// contents; index i's scenario seed is MixFleetSeed(matrix.seed, i).
std::vector<FleetDeviceSpec> ExpandMatrix(const FleetMatrix& matrix);

// The per-device scenario-seed derivation, exposed for tests.
std::uint64_t MixFleetSeed(std::uint64_t seed, std::uint64_t index);

}  // namespace jgre::fleet

#endif  // JGRE_FLEET_SPEC_H_
