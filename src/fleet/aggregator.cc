#include "fleet/aggregator.h"

namespace jgre::fleet {

void DeviceProbe::OnEvent(const obs::TraceEvent& event) {
  OnBatch(&event, 1);
}

void DeviceProbe::OnBatch(const obs::TraceEvent* events, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const obs::TraceEvent& event = events[i];
    if (event.category == obs::Category::kIpc) {
      ++ipc_calls_;
      Retain(event);
      continue;
    }
    if (event.category != obs::Category::kJgr || event.pid != victim_pid_) {
      continue;
    }
    // Weak-table mutations (arg0 = weak count) feed their own counters and
    // never the strong-table activity trajectory.
    if (event.name == obs::LabelIdOf(obs::Label::kJgrWeakAdd) ||
        event.name == obs::LabelIdOf(obs::Label::kJgrWeakRemove)) {
      const std::uint64_t weak_after = static_cast<std::uint64_t>(event.arg0);
      if (event.name == obs::LabelIdOf(obs::Label::kJgrWeakAdd)) {
        ++weak_adds_;
      } else {
        ++weak_removes_;
      }
      if (weak_after > peak_weak_jgr_) peak_weak_jgr_ = weak_after;
      Retain(event);
      continue;
    }
    const std::uint64_t after = static_cast<std::uint64_t>(event.arg0);
    if (event.name == obs::LabelIdOf(obs::Label::kJgrAdd)) {
      ++jgr_adds_;
      ++activity_.adds;
    } else if (event.name == obs::LabelIdOf(obs::Label::kJgrRemove)) {
      ++activity_.removes;
    }
    if (after > peak_jgr_) peak_jgr_ = after;
    if (!saw_jgr_) {
      saw_jgr_ = true;
      activity_.first_count = after;
      activity_.first_ts_us = event.ts_us;
    }
    activity_.last_count = after;
    activity_.last_ts_us = event.ts_us;
    activity_.peak_count = peak_jgr_;
    Retain(event);
  }
}

void DeviceProbe::Retain(const obs::TraceEvent& event) {
  if (ring_capacity_ == 0) return;
  if (ring_.size() < ring_capacity_) {
    ring_.push_back(event);
    return;
  }
  ring_[ring_next_] = event;
  ring_next_ = (ring_next_ + 1) % ring_capacity_;
}

std::vector<obs::TraceEvent> DeviceProbe::Window() const {
  if (ring_.size() < ring_capacity_ || ring_next_ == 0) return ring_;
  std::vector<obs::TraceEvent> out;
  out.reserve(ring_.size());
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(ring_next_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(ring_next_));
  return out;
}

void FleetAggregator::Absorb(const DeviceOutcome& outcome) {
  ++devices_;
  ClassStats& stats = classes_[outcome.scenario_class];
  ++stats.devices;
  if (outcome.incident) ++stats.incidents;
  if (outcome.exhausted) {
    ++stats.exhausted;
    stats.tte_us.Add(static_cast<std::uint64_t>(outcome.time_to_exhaustion_us));
  }
  if (outcome.exhausted_within_horizon) ++stats.exhausted_within_horizon;
  if (outcome.attacker_killed) ++stats.attacker_kills;
  stats.ipc_calls += outcome.ipc_calls;
  stats.jgr_adds += outcome.jgr_adds;
  stats.denied_attacker_calls += outcome.denied_attacker_calls;
  stats.denied_benign_calls += outcome.denied_benign_calls;
  stats.benign_kills += outcome.benign_kills;
  if (outcome.stopped_by_denial) ++stats.denial_stops;
  stats.peak_jgr.Add(outcome.peak_jgr);
  for (const auto& [hunt, hits] : outcome.hunt_hits) {
    stats.hunt_hits[hunt] += hits;
  }
}

void FleetAggregator::MergeFrom(const FleetAggregator& other) {
  devices_ += other.devices_;
  for (const auto& [name, theirs] : other.classes_) {
    ClassStats& ours = classes_[name];
    ours.devices += theirs.devices;
    ours.incidents += theirs.incidents;
    ours.exhausted += theirs.exhausted;
    ours.exhausted_within_horizon += theirs.exhausted_within_horizon;
    ours.attacker_kills += theirs.attacker_kills;
    ours.ipc_calls += theirs.ipc_calls;
    ours.jgr_adds += theirs.jgr_adds;
    ours.denied_attacker_calls += theirs.denied_attacker_calls;
    ours.denied_benign_calls += theirs.denied_benign_calls;
    ours.benign_kills += theirs.benign_kills;
    ours.denial_stops += theirs.denial_stops;
    ours.tte_us.Merge(theirs.tte_us);
    ours.peak_jgr.Merge(theirs.peak_jgr);
    for (const auto& [hunt, hits] : theirs.hunt_hits) {
      ours.hunt_hits[hunt] += hits;
    }
  }
}

namespace {

harness::Json SketchJson(const QuantileSketch& sketch) {
  harness::Json j = harness::Json::Object();
  j.Set("count", sketch.count());
  j.Set("min", sketch.min_value());
  j.Set("p50", sketch.Quantile(0.50));
  j.Set("p90", sketch.Quantile(0.90));
  j.Set("p99", sketch.Quantile(0.99));
  j.Set("max", sketch.max_value());
  return j;
}

double Rate(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0
                    : static_cast<double>(part) / static_cast<double>(whole);
}

}  // namespace

harness::Json FleetAggregator::StatsJson(const ClassStats& stats) {
  harness::Json j = harness::Json::Object();
  j.Set("devices", stats.devices);
  j.Set("incidents", stats.incidents);
  j.Set("incident_rate", Rate(stats.incidents, stats.devices));
  j.Set("exhausted", stats.exhausted);
  j.Set("exhausted_rate", Rate(stats.exhausted, stats.devices));
  j.Set("soft_reboot_within_horizon_rate",
        Rate(stats.exhausted_within_horizon, stats.devices));
  j.Set("attacker_kills", stats.attacker_kills);
  j.Set("ipc_calls", stats.ipc_calls);
  j.Set("jgr_adds", stats.jgr_adds);
  j.Set("denied_attacker_calls", stats.denied_attacker_calls);
  j.Set("denied_benign_calls", stats.denied_benign_calls);
  j.Set("benign_kills", stats.benign_kills);
  j.Set("denial_stops", stats.denial_stops);
  j.Set("time_to_exhaustion_us", SketchJson(stats.tte_us));
  j.Set("peak_jgr", SketchJson(stats.peak_jgr));
  harness::Json hunts = harness::Json::Object();
  for (const auto& [hunt, hits] : stats.hunt_hits) {
    hunts.Set(hunt, hits);
  }
  j.Set("hunt_hits", std::move(hunts));
  return j;
}

harness::Json FleetAggregator::ToJson() const {
  harness::Json doc = harness::Json::Object();
  doc.Set("devices", devices_);
  ClassStats overall;
  for (const auto& [name, stats] : classes_) {
    overall.devices += stats.devices;
    overall.incidents += stats.incidents;
    overall.exhausted += stats.exhausted;
    overall.exhausted_within_horizon += stats.exhausted_within_horizon;
    overall.attacker_kills += stats.attacker_kills;
    overall.ipc_calls += stats.ipc_calls;
    overall.jgr_adds += stats.jgr_adds;
    overall.denied_attacker_calls += stats.denied_attacker_calls;
    overall.denied_benign_calls += stats.denied_benign_calls;
    overall.benign_kills += stats.benign_kills;
    overall.denial_stops += stats.denial_stops;
    overall.tte_us.Merge(stats.tte_us);
    overall.peak_jgr.Merge(stats.peak_jgr);
    for (const auto& [hunt, hits] : stats.hunt_hits) {
      overall.hunt_hits[hunt] += hits;
    }
  }
  doc.Set("overall", StatsJson(overall));
  harness::Json classes = harness::Json::Object();
  for (const auto& [name, stats] : classes_) {
    classes.Set(name, StatsJson(stats));
  }
  doc.Set("scenario_classes", std::move(classes));
  return doc;
}

}  // namespace jgre::fleet
