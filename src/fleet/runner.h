// FleetRunner — the campaign service: N heterogeneous device simulations
// across the work-stealing pool, each cloned from a small set of warmed
// JGRESNAP boot images.
//
// Lifecycle per campaign:
//   1. Prepare(): group the fleet's devices by sim::PrefixKey (boot seed +
//      system config + warmup). Each distinct key gets ONE warmed boot image
//      — built via DeviceFactory::BootPrefix and captured in memory — so a
//      324-device census over 4 JGR-cap points boots exactly 4 prefixes.
//      More distinct keys than FleetOptions::max_images is an error: the
//      matrix author sized an axis that silently multiplies boot cost.
//   2. Run(): harness::RunOrdered over the devices. Each task restores a
//      fresh AndroidSystem from its group's image, completes the device with
//      DeviceFactory::CreateDeviceOn, runs its scenario (flood, drip, or
//      benign-only) to its horizon, and reduces to a DeviceOutcome. Results
//      land in submission order and the aggregator folds them in that order,
//      so the census is byte-identical for any --jobs.
#ifndef JGRE_FLEET_RUNNER_H_
#define JGRE_FLEET_RUNNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "detect/catalog.h"
#include "fleet/aggregator.h"
#include "fleet/spec.h"
#include "snapshot/snapshot.h"

namespace jgre::fleet {

struct FleetOptions {
  int jobs = 1;
  // Hard cap on distinct warmed boot images a fleet may require.
  std::size_t max_images = 4;
  // Optional (descriptor, code) -> interface identity table for the per-
  // device hunt pass. With it, trace-hunt detections carry the code-model
  // interface ids the static and fuzz hunts use, so a census consumer can
  // fuse across modalities; without it they key on "<descriptor>#<code>".
  const detect::InterfaceCatalog* catalog = nullptr;
};

struct FleetResult {
  FleetAggregator aggregator;
  std::vector<DeviceOutcome> outcomes;  // device (submission) order
  std::size_t image_count = 0;
};

// Runs one device's scenario to completion and reduces it, including the
// trace-driven hunt pass over the probe's retained window. Exposed so tests
// can drive a single device without a runner.
DeviceOutcome RunDeviceScenario(const FleetDeviceSpec& spec,
                                sim::DeviceSim& device,
                                const detect::InterfaceCatalog* catalog =
                                    nullptr);

class FleetRunner {
 public:
  FleetRunner(std::vector<FleetDeviceSpec> fleet, FleetOptions options);

  // Builds and captures the boot images. Idempotent; Run() calls it
  // implicitly. Fails when the fleet needs more than max_images images.
  Status Prepare();

  // Runs every device; throws (like BranchRunner) if a restore fails
  // mid-campaign, naming the device index.
  FleetResult Run();

  std::size_t image_count() const { return images_.size(); }
  const std::vector<FleetDeviceSpec>& fleet() const { return fleet_; }

 private:
  std::unique_ptr<core::AndroidSystem> RestoreDevice(std::size_t index) const;

  std::vector<FleetDeviceSpec> fleet_;
  FleetOptions options_;
  bool prepared_ = false;
  std::vector<snapshot::SystemSnapshot> images_;
  std::vector<std::size_t> image_of_;  // device index -> images_ index
};

}  // namespace jgre::fleet

#endif  // JGRE_FLEET_RUNNER_H_
