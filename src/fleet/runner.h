// FleetRunner — the campaign service: N heterogeneous device simulations
// across the work-stealing pool, each cloned from a small set of warmed
// JGRESNAP boot images.
//
// Lifecycle per campaign:
//   1. Prepare(): group the fleet's devices by sim::PrefixKey (boot seed +
//      system config + warmup). Each distinct key gets ONE warmed boot image
//      — built via DeviceFactory::BootPrefix and captured in memory — so a
//      324-device census over 4 JGR-cap points boots exactly 4 prefixes.
//      Images live in an LRU BootImageCache: FleetOptions::max_images is a
//      residency *budget*, not a cap on distinct keys — a fleet with more
//      prefix diversity than slots just rebuilds cold keys on re-use
//      (deterministically: BootPrefix reproduces the same bytes).
//   2. Run(): harness::RunOrdered over the devices. Each task restores a
//      fresh AndroidSystem from its group's image, completes the device with
//      DeviceFactory::CreateDeviceOn, runs its scenario (flood, drip, or
//      benign-only) to its horizon, and reduces to a DeviceOutcome. Results
//      land in submission order and the aggregator folds them in that order,
//      so the census is byte-identical for any --jobs.
#ifndef JGRE_FLEET_RUNNER_H_
#define JGRE_FLEET_RUNNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <functional>

#include "common/status.h"
#include "detect/catalog.h"
#include "fleet/aggregator.h"
#include "fleet/image_cache.h"
#include "fleet/spec.h"
#include "snapshot/snapshot.h"

namespace jgre::fleet {

// Replaces the built-in scenario loop for a device: given the resolved spec
// and a freshly restored device, run whatever drive loop the campaign wants
// and reduce it to a DeviceOutcome. The arms-race MatrixRunner uses this to
// run AttackStrategy/MitigationPolicy cells on fleet infrastructure.
using ScenarioDriver = std::function<DeviceOutcome(
    const FleetDeviceSpec&, sim::DeviceSim&, const detect::InterfaceCatalog*)>;

struct FleetOptions {
  int jobs = 1;
  // Residency budget for warmed boot images (LRU eviction past it). More
  // distinct prefix keys than this is fine — cold keys rebuild on re-use.
  std::size_t max_images = 4;
  // Optional (descriptor, code) -> interface identity table for the per-
  // device hunt pass. With it, trace-hunt detections carry the code-model
  // interface ids the static and fuzz hunts use, so a census consumer can
  // fuse across modalities; without it they key on "<descriptor>#<code>".
  const detect::InterfaceCatalog* catalog = nullptr;
  // Custom per-device drive loop; default runs RunDeviceScenario.
  ScenarioDriver scenario_driver;
};

struct FleetResult {
  FleetAggregator aggregator;
  std::vector<DeviceOutcome> outcomes;  // device (submission) order
  // Distinct prefix keys the fleet used. Deterministic, unlike the rebuild
  // counters below, which depend on worker arrival order when the fleet
  // overflows the image budget.
  std::size_t image_count = 0;
  std::uint64_t image_builds = 0;
  std::uint64_t image_evictions = 0;
};

// Runs one device's scenario to completion and reduces it, including the
// trace-driven hunt pass over the probe's retained window. Exposed so tests
// can drive a single device without a runner.
DeviceOutcome RunDeviceScenario(const FleetDeviceSpec& spec,
                                sim::DeviceSim& device,
                                const detect::InterfaceCatalog* catalog =
                                    nullptr);

// The reduction tail every scenario driver shares: settle-GC the runtimes,
// drain and unsubscribe the probe, fill the outcome's stream counters, and
// run the trace-driven hunt battery over the probe's retained window.
// RunDeviceScenario ends with this; custom ScenarioDrivers (the arms matrix)
// call it so their cells get the identical hunt pass.
void FinishDeviceOutcome(sim::DeviceSim& device, DeviceProbe& probe,
                         const detect::InterfaceCatalog* catalog,
                         DeviceOutcome* out);

class FleetRunner {
 public:
  FleetRunner(std::vector<FleetDeviceSpec> fleet, FleetOptions options);

  // Maps every device to its prefix key. Idempotent; Run() calls it
  // implicitly. Images themselves build lazily on first use.
  Status Prepare();

  // Runs every device; throws (like BranchRunner) if a restore fails
  // mid-campaign, naming the device index.
  FleetResult Run();

  // Distinct prefix keys after Prepare() (0 before).
  std::size_t image_count() const { return distinct_keys_; }
  const std::vector<FleetDeviceSpec>& fleet() const { return fleet_; }
  const BootImageCache& image_cache() const { return cache_; }

 private:
  std::unique_ptr<core::AndroidSystem> RestoreDevice(std::size_t index);

  std::vector<FleetDeviceSpec> fleet_;
  FleetOptions options_;
  bool prepared_ = false;
  BootImageCache cache_;
  std::vector<std::uint64_t> key_of_;  // device index -> prefix key
  std::size_t distinct_keys_ = 0;
};

}  // namespace jgre::fleet

#endif  // JGRE_FLEET_RUNNER_H_
