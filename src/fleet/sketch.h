// QuantileSketch — a streaming, mergeable quantile summary for fleet-census
// aggregation.
//
// Log2-bucketed histogram: each power-of-two octave is split into 8 equal
// sub-buckets, giving ~12.5% relative error on reported quantiles with a
// fixed 513-bin footprint and pure integer math. Merge() is bin-wise
// addition, so merging is commutative and associative — a fleet's shards can
// be combined in ANY order and the resulting quantiles are identical, which
// is what keeps BENCH_fleet.json byte-identical for any --jobs split.
#ifndef JGRE_FLEET_SKETCH_H_
#define JGRE_FLEET_SKETCH_H_

#include <array>
#include <cstdint>

namespace jgre::fleet {

class QuantileSketch {
 public:
  static constexpr int kSubBuckets = 8;  // per octave
  static constexpr int kBins = 1 + 64 * kSubBuckets;  // bin 0 = exact zero

  void Add(std::uint64_t value);
  void Merge(const QuantileSketch& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  // Exact extremes (merged exactly, not bucketed).
  std::uint64_t min_value() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max_value() const { return max_; }

  // The q-quantile (q in [0,1]): the lower bound of the bin holding the
  // rank-floor(q*(count-1)) value, clamped to the exact [min,max] range.
  // 0 when the sketch is empty.
  std::uint64_t Quantile(double q) const;

  // Maps a value to its bin; exposed for the merge-invariance tests.
  static int BinOf(std::uint64_t value);
  static std::uint64_t BinLowerBound(int bin);

 private:
  std::array<std::uint64_t, kBins> bins_ = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ULL;
  std::uint64_t max_ = 0;
};

}  // namespace jgre::fleet

#endif  // JGRE_FLEET_SKETCH_H_
