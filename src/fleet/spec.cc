#include "fleet/spec.h"

#include "attack/vuln_registry.h"
#include "services/safe_service.h"
#include "snapshot/serializer.h"

namespace jgre::fleet {

namespace {

const attack::VulnSpec* FindVulnById(int id) {
  for (const attack::VulnSpec& vuln : attack::AllVulnerabilities()) {
    if (vuln.id == id) return &vuln;
  }
  return nullptr;
}

}  // namespace

const attack::VulnSpec& ChurnAttackSpec() {
  static const attack::VulnSpec spec = [] {
    attack::VulnSpec s;
    s.id = kChurnVulnId;
    s.service = "account";
    s.interface = "setCallback";
    // GenericSafeService descriptors splice the raw service name between the
    // "android.os.I"/"Service" affixes — no capitalisation.
    s.descriptor = "android.os.IaccountService";
    s.code = services::GenericSafeService::TRANSACTION_setCallback;
    s.victim = attack::VictimKind::kSystemServer;
    s.jgrs_per_call = 0;  // replace-single: the previous reference is evicted
    s.write_args = [](services::AppProcess& app, binder::Parcel& p) {
      p.WriteStrongBinder(app.NewBinder("IAccountCallback"));
    };
    return s;
  }();
  return spec;
}

std::uint64_t MixFleetSeed(std::uint64_t seed, std::uint64_t index) {
  snapshot::Serializer out;
  out.U64(seed);
  out.U64(0x464C454554ULL);  // "FLEET"
  out.U64(index);
  return out.Hash();
}

std::vector<AttackScenario> DefaultScenarios() {
  std::vector<AttackScenario> out;
  out.push_back({"benign", 0, 0});
  // Four system-server interfaces: the flawed-guard toast plus the first
  // three permissionless Table-I entries (stable registry order).
  std::vector<int> ids;
  const attack::VulnSpec* toast =
      attack::FindVulnerability("notification", "enqueueToast");
  if (toast != nullptr) ids.push_back(toast->id);
  for (const attack::VulnSpec& vuln : attack::SystemServerVulnerabilities()) {
    if (ids.size() >= 4) break;
    if (!vuln.permission.empty()) continue;
    if (toast != nullptr && vuln.id == toast->id) continue;
    ids.push_back(vuln.id);
  }
  for (int id : ids) {
    out.push_back({"flood", id, 0});
    out.push_back({"drip", id, 350'000});
  }
  return out;
}

std::vector<FleetDeviceSpec> ExpandMatrix(const FleetMatrix& matrix) {
  const std::vector<AttackScenario> scenarios =
      matrix.scenarios.empty() ? DefaultScenarios() : matrix.scenarios;
  std::vector<FleetDeviceSpec> fleet;
  fleet.reserve(matrix.jgr_caps.size() * scenarios.size() *
                matrix.defense.size() * matrix.benign_apps.size());
  std::size_t index = 0;
  for (const std::size_t cap : matrix.jgr_caps) {
    for (const AttackScenario& scenario : scenarios) {
      for (const DefensePoint& defense : matrix.defense) {
        for (const int apps : matrix.benign_apps) {
          FleetDeviceSpec spec;
          spec.index = index;
          spec.scenario_class = scenario.scenario_class;
          spec.think_time_us = scenario.think_time_us;
          spec.horizon_us = matrix.horizon_us;

          core::SystemConfig sys;
          sys.system_server_max_jgr = cap;
          spec.device.WithSeed(matrix.seed)
              .WithScenarioSeed(MixFleetSeed(matrix.seed, index))
              .WithSystemConfig(sys)
              .WithWarmup(matrix.warmup_apps, matrix.warmup_foreground_us,
                          matrix.warmup_interaction_period_us)
              .WithBenignApps(apps)
              .WithMaxAttackerCalls(matrix.max_attacker_calls);
          if (defense.enabled) {
            spec.device.WithThresholds(defense.alarm_threshold,
                                       defense.report_threshold);
          }
          spec.scenario_detail = scenario.scenario_class;
          if (scenario.vuln_id == kChurnVulnId) {
            const attack::VulnSpec& churn = ChurnAttackSpec();
            spec.device.WithAttack(churn);
            spec.scenario_detail += ":" + churn.service + "." +
                                    churn.interface;
          } else if (scenario.vuln_id != 0) {
            const attack::VulnSpec* vuln = FindVulnById(scenario.vuln_id);
            if (vuln != nullptr) {
              spec.device.WithAttack(*vuln);
              spec.scenario_detail += ":" + vuln->service + "." +
                                      vuln->interface;
            }
          }
          fleet.push_back(std::move(spec));
          ++index;
        }
      }
    }
  }
  return fleet;
}

}  // namespace jgre::fleet
