// BootImageCache — LRU-budgeted warmed boot images keyed by sim::PrefixKey.
//
// FleetRunner used to demand that a fleet fit a hard cap of distinct boot
// images, which made image count a matrix-authoring constraint. The cache
// replaces the cap with a residency *budget*: any number of distinct prefix
// keys may flow through, at most `budget` images stay warm, and the least
// recently used image is evicted when a new key needs a slot. Evicted keys
// are rebuilt on their next use — correctness is unaffected (BootPrefix is
// deterministic, so a rebuild reproduces the same bytes), only boot cost is.
//
// Thread safety: Get() is safe to call from harness worker threads. Images
// are handed out as shared_ptr<const SystemSnapshot>, so an eviction never
// invalidates an image a worker is still restoring from.
#ifndef JGRE_FLEET_IMAGE_CACHE_H_
#define JGRE_FLEET_IMAGE_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/status.h"
#include "snapshot/snapshot.h"

namespace jgre::fleet {

class BootImageCache {
 public:
  using Builder = std::function<Result<snapshot::SystemSnapshot>()>;

  // `budget` is clamped to at least 1 resident image.
  explicit BootImageCache(std::size_t budget)
      : budget_(budget == 0 ? 1 : budget) {}

  // Returns the image for `key`, building it via `builder` on a miss (under
  // the cache lock: concurrent requests for the same key build once). On a
  // miss that overflows the budget, the least recently used image is
  // dropped from residency — outstanding shared_ptrs keep it alive.
  Result<std::shared_ptr<const snapshot::SystemSnapshot>> Get(
      std::uint64_t key, const Builder& builder);

  std::size_t budget() const { return budget_; }

  // Distinct keys ever requested. Deterministic for a fixed fleet — unlike
  // builds()/evictions(), which depend on cross-thread arrival order once
  // rebuilds happen — so this is the only counter reports may publish.
  std::size_t distinct_keys() const;

  std::size_t resident() const;
  std::uint64_t builds() const;
  std::uint64_t evictions() const;

 private:
  using Entry =
      std::pair<std::uint64_t, std::shared_ptr<const snapshot::SystemSnapshot>>;

  mutable std::mutex mu_;
  std::size_t budget_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::set<std::uint64_t> seen_keys_;
  std::uint64_t builds_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace jgre::fleet

#endif  // JGRE_FLEET_IMAGE_CACHE_H_
