// Experiment — the defended-attack scenario driver over a sim::DeviceSim.
//
// Device construction lives entirely in sim::DeviceFactory (the unified
// per-device API); Experiment is a thin, non-owning driver that runs the
// canonical attack-vs-defense loop on an already-built device:
//
//   sim::DeviceSpec spec;
//   spec.WithSeed(42).WithBenignApps(10).WithAttack(vuln).WithDefense();
//   auto device = sim::DeviceFactory(spec).CreateDevice();
//   auto result = experiment::Experiment(*device).RunDefendedAttack();
//
// The loop draws benign interaction times from the device's scenario RNG
// stream — the same stream the factory used for the initial schedule — so a
// run is byte-identical to the historical single-owner Experiment.
#ifndef JGRE_EXPERIMENT_EXPERIMENT_H_
#define JGRE_EXPERIMENT_EXPERIMENT_H_

#include "common/types.h"
#include "defense/jgre_defender.h"
#include "sim/device.h"

namespace jgre::experiment {

struct DefendedAttackResult {
  bool incident = false;
  defense::JgreDefender::IncidentReport report;
  int attacker_calls = 0;
  bool attacker_killed = false;
  bool soft_rebooted = false;
  DurationUs virtual_duration_us = 0;
};

class Experiment {
 public:
  explicit Experiment(sim::DeviceSim& device) : device_(device) {}

  sim::DeviceSim& device() { return device_; }

  // Runs the attack loop with interleaved benign traffic until the defender
  // raises an incident, the attacker dies, the device soft-reboots, or the
  // call budget (spec().max_attacker_calls()) runs out.
  DefendedAttackResult RunDefendedAttack();

 private:
  sim::DeviceSim& device_;
};

}  // namespace jgre::experiment

#endif  // JGRE_EXPERIMENT_EXPERIMENT_H_
