// Experiment / ExperimentConfig — one builder for the scenario plumbing the
// bench binaries used to hand-roll (boot, defense install, benign workload
// scheduling, attack app install, observability subscriptions).
//
// The builder fixes the construction order once, so every bench that used to
// copy bench_util's RunDefendedAttack sequence now shares it byte-for-byte:
//
//   auto exp = experiment::ExperimentConfig()
//                  .WithSeed(42)
//                  .WithBenignApps(10)
//                  .WithAttack(vuln)
//                  .WithDefense()
//                  .WithTrace()
//                  .Build();
//   auto result = exp->RunDefendedAttack();
//   exp->WriteChromeTrace("out.json");
//
// Seed derivation (identical to the seed's bench_util): the system boots
// with `seed`, the benign workload draws from `seed + 1`, the benign
// interaction scheduler draws from `seed + 2`, and the warmup workload
// (WithWarmup) draws from `seed + 3`.
//
// The build is split into a checkpointable prefix and a branch phase:
// BuildPrefix() boots the device and runs the shared warmup workload to a
// quiescent boundary (the state snapshot::SystemSnapshot captures), and
// BuildOn(system) completes the scenario on any such system — freshly
// built or restored from a checkpoint. Build() is BuildOn(BuildPrefix()).
#ifndef JGRE_EXPERIMENT_EXPERIMENT_H_
#define JGRE_EXPERIMENT_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attack/benign_workload.h"
#include "attack/malicious_app.h"
#include "attack/vuln_registry.h"
#include "common/rng.h"
#include "common/types.h"
#include "core/android_system.h"
#include "defense/jgre_defender.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "obs/trace_buffer.h"

namespace jgre::experiment {

struct DefendedAttackResult {
  bool incident = false;
  defense::JgreDefender::IncidentReport report;
  int attacker_calls = 0;
  bool attacker_killed = false;
  bool soft_rebooted = false;
  DurationUs virtual_duration_us = 0;
};

class Experiment;

class ExperimentConfig {
 public:
  ExperimentConfig& WithSeed(std::uint64_t seed) {
    seed_ = seed;
    return *this;
  }
  // Base system configuration; its seed is overridden by WithSeed.
  ExperimentConfig& WithSystemConfig(const core::SystemConfig& config) {
    system_config_ = config;
    return *this;
  }
  ExperimentConfig& WithBenignApps(int count) {
    benign_apps_ = count;
    return *this;
  }
  ExperimentConfig& WithAttack(const attack::VulnSpec& vuln) {
    vuln_ = vuln;
    return *this;
  }
  ExperimentConfig& WithAttackPackage(std::string package) {
    attack_package_ = std::move(package);
    return *this;
  }
  ExperimentConfig& WithDefense(bool enabled = true) {
    defense_ = enabled;
    return *this;
  }
  ExperimentConfig& WithDefenderConfig(
      const defense::JgreDefender::Config& config) {
    defense_ = true;
    defender_config_ = config;
    return *this;
  }
  ExperimentConfig& WithThresholds(std::size_t alarm, std::size_t report) {
    defense_ = true;
    defender_config_.monitor.alarm_threshold = alarm;
    defender_config_.monitor.report_threshold = report;
    return *this;
  }
  ExperimentConfig& WithMaxAttackerCalls(int calls) {
    max_attacker_calls_ = calls;
    return *this;
  }
  // Buffer TraceEvents of the masked categories for Chrome-trace export.
  ExperimentConfig& WithTrace(obs::CategoryMask mask = obs::kAllCategories) {
    trace_ = true;
    trace_mask_ = mask;
    return *this;
  }
  // Fold the event stream into a MetricsRegistry (Experiment::metrics()).
  ExperimentConfig& WithMetrics() {
    metrics_ = true;
    return *this;
  }
  // Shared warmup prefix: after boot, run one benign monkey session over
  // `apps` apps (each foregrounded for `foreground_us`, package prefix
  // "com.warm.app", seed + 3), then stop them all and collect garbage —
  // leaving the device at the populated-but-quiescent state BranchRunner
  // checkpoints. `interaction_period_us` overrides the monkey's event
  // period (0 = the workload default) for denser warmup streams.
  ExperimentConfig& WithWarmup(int apps,
                               DurationUs foreground_us = 120'000'000,
                               DurationUs interaction_period_us = 0) {
    warmup_apps_ = apps;
    warmup_foreground_us_ = foreground_us;
    warmup_interaction_period_us_ = interaction_period_us;
    return *this;
  }

  // Builds just the shared prefix: a booted (and warmed-up) quiescent
  // system, before any defense/benign/attacker setup.
  std::unique_ptr<core::AndroidSystem> BuildPrefix() const;

  // Completes the scenario on an existing prefix system — the output of
  // BuildPrefix(), or a fresh Boot()ed system restored from a checkpoint of
  // one. The system must have been built from this config's seed.
  std::unique_ptr<Experiment> BuildOn(
      std::unique_ptr<core::AndroidSystem> system) const;

  // Boots the device and performs the whole setup sequence. The experiment
  // is single-use: build a fresh one per run.
  std::unique_ptr<Experiment> Build() const;

  std::uint64_t seed() const { return seed_; }
  const core::SystemConfig& system_config() const { return system_config_; }

 private:
  friend class Experiment;

  std::uint64_t seed_ = 42;
  core::SystemConfig system_config_;
  int benign_apps_ = 0;
  std::optional<attack::VulnSpec> vuln_;
  std::string attack_package_ = "com.evil.app";
  bool defense_ = false;
  defense::JgreDefender::Config defender_config_;
  int max_attacker_calls_ = 60'000;
  bool trace_ = false;
  obs::CategoryMask trace_mask_ = obs::kAllCategories;
  bool metrics_ = false;
  int warmup_apps_ = 0;
  DurationUs warmup_foreground_us_ = 120'000'000;
  DurationUs warmup_interaction_period_us_ = 0;
};

class Experiment {
 public:
  explicit Experiment(const ExperimentConfig& config);
  // Branch-phase constructor: takes ownership of a prefix system (built by
  // ExperimentConfig::BuildPrefix or restored from its checkpoint) and
  // performs only the post-prefix setup.
  Experiment(const ExperimentConfig& config,
             std::unique_ptr<core::AndroidSystem> system);
  ~Experiment();

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  core::AndroidSystem& system() { return *system_; }
  obs::EventBus& bus();
  // Null unless the corresponding With* was configured.
  defense::JgreDefender* defender() { return defender_.get(); }
  attack::MaliciousApp* attacker() { return attacker_.get(); }
  services::AppProcess* attacker_process() { return attacker_process_; }
  attack::BenignWorkload* benign() { return benign_.get(); }
  // Trace/metrics sinks ride the bus's buffered (batched) delivery; these
  // accessors flush staged events first so reads always see a complete view.
  obs::TraceBuffer* trace();
  obs::MetricsRegistry* metrics();
  Rng& rng() { return rng_; }

  // Runs the attack loop with interleaved benign traffic until the defender
  // raises an incident, the attacker dies, the device soft-reboots, or the
  // call budget runs out. Identical semantics (and RNG draws) to the
  // deprecated bench::RunDefendedAttack.
  DefendedAttackResult RunDefendedAttack();

  // Serializes the trace buffer as Chrome-trace JSON (process names resolved
  // against the kernel's process table). False if tracing is off or the
  // write fails.
  bool WriteChromeTrace(const std::string& path);

 private:
  ExperimentConfig config_;
  Rng rng_;
  std::unique_ptr<core::AndroidSystem> system_;  // first: destroyed last
  std::unique_ptr<defense::JgreDefender> defender_;
  std::unique_ptr<obs::TraceBuffer> trace_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::MetricsSink> metrics_sink_;
  std::unique_ptr<attack::BenignWorkload> benign_;
  std::vector<TimeUs> next_benign_;
  services::AppProcess* attacker_process_ = nullptr;
  std::unique_ptr<attack::MaliciousApp> attacker_;
};

}  // namespace jgre::experiment

#endif  // JGRE_EXPERIMENT_EXPERIMENT_H_
