#include "experiment/experiment.h"

#include "obs/chrome_trace.h"

namespace jgre::experiment {

std::unique_ptr<core::AndroidSystem> ExperimentConfig::BuildPrefix() const {
  core::SystemConfig sys_config = system_config_;
  sys_config.seed = seed_;
  auto system = std::make_unique<core::AndroidSystem>(sys_config);
  system->Boot();
  if (warmup_apps_ > 0) {
    attack::BenignWorkload::Options options;
    options.app_count = warmup_apps_;
    options.per_app_foreground_us = warmup_foreground_us_;
    if (warmup_interaction_period_us_ > 0) {
      options.interaction_period_us = warmup_interaction_period_us_;
    }
    options.seed = seed_ + 3;
    options.package_prefix = "com.warm.app";
    attack::BenignWorkload warmup(system.get(), options);
    warmup.InstallAll();
    warmup.RunMonkeySession();
    // Back to quiescent: stop every warmup app (releasing its service-side
    // registrations via death notification) and reclaim the JGRs they
    // pinned, so the checkpoint boundary is a near-baseline device.
    for (const std::string& package : warmup.packages()) {
      system->StopApp(package);
    }
    system->CollectAllGarbage();
  }
  return system;
}

std::unique_ptr<Experiment> ExperimentConfig::BuildOn(
    std::unique_ptr<core::AndroidSystem> system) const {
  return std::make_unique<Experiment>(*this, std::move(system));
}

std::unique_ptr<Experiment> ExperimentConfig::Build() const {
  return std::make_unique<Experiment>(*this);
}

Experiment::Experiment(const ExperimentConfig& config)
    : Experiment(config, config.BuildPrefix()) {}

Experiment::Experiment(const ExperimentConfig& config,
                       std::unique_ptr<core::AndroidSystem> system)
    : config_(config), rng_(config.seed_ + 2), system_(std::move(system)) {
  if (config_.defense_) {
    defender_ = std::make_unique<defense::JgreDefender>(
        system_.get(), config_.defender_config_);
    defender_->Install();
  }
  // Pure sinks: subscribing them never advances the virtual clock, so a
  // traced run is event-for-event identical to an untraced one. Both ride
  // buffered delivery — the trace()/metrics() accessors flush before reads.
  if (config_.trace_) {
    trace_ = std::make_unique<obs::TraceBuffer>();
    bus().Subscribe(trace_.get(), config_.trace_mask_, /*pid_filter=*/-1,
                    obs::Delivery::kBuffered);
  }
  if (config_.metrics_) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_sink_ = std::make_unique<obs::MetricsSink>(metrics_.get());
    bus().Subscribe(metrics_sink_.get(), obs::kAllCategories,
                    /*pid_filter=*/-1, obs::Delivery::kBuffered);
  }

  attack::BenignWorkload::Options benign_options;
  benign_options.app_count = config_.benign_apps_;
  benign_options.seed = config_.seed_ + 1;
  benign_ = std::make_unique<attack::BenignWorkload>(system_.get(),
                                                     benign_options);
  if (config_.benign_apps_ > 0) {
    benign_->InstallAll();
    next_benign_.resize(benign_->packages().size());
    for (TimeUs& t : next_benign_) {
      t = system_->clock().NowUs() + rng_.UniformU64(150'000);
    }
  }

  if (config_.vuln_.has_value()) {
    attacker_process_ = attack::InstallAttackApp(
        system_.get(), config_.attack_package_, *config_.vuln_);
    attacker_ = std::make_unique<attack::MaliciousApp>(
        system_.get(), attacker_process_, *config_.vuln_);
  }
}

Experiment::~Experiment() {
  if (trace_ != nullptr) bus().Unsubscribe(trace_.get());
  if (metrics_sink_ != nullptr) bus().Unsubscribe(metrics_sink_.get());
}

obs::EventBus& Experiment::bus() { return system_->kernel().bus(); }

obs::TraceBuffer* Experiment::trace() {
  if (trace_ != nullptr) bus().Flush();
  return trace_.get();
}

obs::MetricsRegistry* Experiment::metrics() {
  if (metrics_ != nullptr) bus().Flush();
  return metrics_.get();
}

DefendedAttackResult Experiment::RunDefendedAttack() {
  DefendedAttackResult result;
  const TimeUs start = system_->clock().NowUs();

  while ((defender_ == nullptr || defender_->incidents().empty()) &&
         result.attacker_calls < config_.max_attacker_calls_) {
    if (attacker_process_ == nullptr || !attacker_process_->alive()) break;
    (void)attacker_->Step();
    ++result.attacker_calls;
    // Benign apps interact on their own randomized schedules.
    const TimeUs now = system_->clock().NowUs();
    for (std::size_t i = 0; i < next_benign_.size(); ++i) {
      if (now >= next_benign_[i]) {
        benign_->InteractOnce(i);
        next_benign_[i] =
            system_->clock().NowUs() + 20'000 + rng_.UniformU64(130'000);
      }
    }
    if (system_->soft_reboots() > 0) {
      result.soft_rebooted = true;
      break;
    }
  }
  result.virtual_duration_us = system_->clock().NowUs() - start;
  result.attacker_killed =
      attacker_process_ != nullptr && !attacker_process_->alive();
  if (defender_ != nullptr && !defender_->incidents().empty()) {
    result.incident = true;
    result.report = defender_->incidents().front();
  }
  return result;
}

bool Experiment::WriteChromeTrace(const std::string& path) {
  if (trace_ == nullptr) return false;
  bus().Flush();  // drain staged events into the trace ring
  auto resolver = [this](std::int32_t pid) -> std::string {
    const os::Process* p = system_->kernel().FindProcess(Pid{pid});
    return p == nullptr ? std::string() : p->name;
  };
  return obs::WriteChromeTraceFile(path, bus(), *trace_, resolver);
}

}  // namespace jgre::experiment
