#include "experiment/experiment.h"

namespace jgre::experiment {

DefendedAttackResult Experiment::RunDefendedAttack() {
  DefendedAttackResult result;
  core::AndroidSystem& system = device_.system();
  defense::JgreDefender* defender = device_.defender();
  attack::MaliciousApp* attacker = device_.attacker();
  services::AppProcess* attacker_process = device_.attacker_process();
  attack::BenignWorkload* benign = device_.benign();
  std::vector<TimeUs>& next_benign = device_.benign_schedule();
  Rng& rng = device_.rng();
  const int max_calls = device_.spec().max_attacker_calls();
  const TimeUs start = system.clock().NowUs();

  while ((defender == nullptr || defender->incidents().empty()) &&
         result.attacker_calls < max_calls) {
    if (attacker_process == nullptr || !attacker_process->alive()) break;
    (void)attacker->Step();
    ++result.attacker_calls;
    // Benign apps interact on their own randomized schedules.
    const TimeUs now = system.clock().NowUs();
    for (std::size_t i = 0; i < next_benign.size(); ++i) {
      if (now >= next_benign[i]) {
        benign->InteractOnce(i);
        next_benign[i] =
            system.clock().NowUs() + 20'000 + rng.UniformU64(130'000);
      }
    }
    if (system.soft_reboots() > 0) {
      result.soft_rebooted = true;
      break;
    }
  }
  result.virtual_duration_us = system.clock().NowUs() - start;
  result.attacker_killed =
      attacker_process != nullptr && !attacker_process->alive();
  if (defender != nullptr && !defender->incidents().empty()) {
    result.incident = true;
    result.report = defender->incidents().front();
  }
  return result;
}

}  // namespace jgre::experiment
