#include "services/net_media_services.h"

namespace jgre::services {

static Pid Host(SystemContext* sys) { return sys->system_server_pid; }

NetworkManagementService::NetworkManagementService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys), {"netd.ActivityListeners"},
          {
              {TRANSACTION_registerNetworkActivityListener,
               "registerNetworkActivityListener", MethodKind::kRegister,
               {ArgKind::kBinder}, 0, perms::kChangeNetworkState,
               CostProfile{400, 0.90, 600}},
              {TRANSACTION_unregisterNetworkActivityListener,
               "unregisterNetworkActivityListener", MethodKind::kUnregister,
               {ArgKind::kBinder}, 0, nullptr, CostProfile{260, 0.35, 250}},
              {TRANSACTION_isNetworkActive, "isNetworkActive",
               MethodKind::kQuery, {}, 0, nullptr, CostProfile{130, 0.0, 80}},
          }) {}

ConnectivityService::ConnectivityService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys),
          {"connectivity.NetworkRequests", "connectivity.NetworkListens"},
          {
              // requestNetwork(NetworkCapabilities, Messenger, timeout,
              //                IBinder, legacyType)
              {TRANSACTION_requestNetwork, "requestNetwork",
               MethodKind::kRegister, {ArgKind::kString, ArgKind::kBinder}, 0,
               perms::kChangeNetworkState, CostProfile{800, 1.50, 1400}},
              {TRANSACTION_listenForNetwork, "listenForNetwork",
               MethodKind::kRegister, {ArgKind::kString, ArgKind::kBinder}, 1,
               perms::kAccessNetworkState, CostProfile{700, 1.30, 1200}},
              {TRANSACTION_releaseNetworkRequest, "releaseNetworkRequest",
               MethodKind::kUnregister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{350, 0.40, 300}},
              {TRANSACTION_getActiveNetworkInfo, "getActiveNetworkInfo",
               MethodKind::kQuery, {}, 0, nullptr, CostProfile{180, 0.0, 120}},
          }) {}

SipService::SipService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys),
          {"sip.OpenProfiles", "sip.Sessions"},
          {
              // open3(String profileUri, PendingIntent, ISipSessionListener)
              {TRANSACTION_open3, "open3", MethodKind::kSession,
               {ArgKind::kString, ArgKind::kBinder}, 0, perms::kUseSip,
               CostProfile{900, 1.20, 1500}},
              {TRANSACTION_createSession, "createSession", MethodKind::kSession,
               {ArgKind::kString, ArgKind::kBinder}, 1, perms::kUseSip,
               CostProfile{800, 1.50, 1300}},
              {TRANSACTION_close, "close", MethodKind::kUnregister,
               {ArgKind::kBinder}, 0, nullptr, CostProfile{400, 0.40, 300}},
          }) {}

EthernetService::EthernetService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys), {"ethernet.Listeners"},
          {
              {TRANSACTION_addListener, "addListener", MethodKind::kRegister,
               {ArgKind::kBinder}, 0, nullptr, CostProfile{300, 0.70, 400}},
              {TRANSACTION_removeListener, "removeListener",
               MethodKind::kUnregister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{230, 0.30, 200}},
          }) {}

MediaSessionService::MediaSessionService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys),
          {"mediasession.CallbackListeners", "mediasession.Sessions"},
          {
              {TRANSACTION_registerCallbackListener, "registerCallbackListener",
               MethodKind::kRegister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{400, 0.50, 500}},
              {TRANSACTION_unregisterCallbackListener,
               "unregisterCallbackListener", MethodKind::kUnregister,
               {ArgKind::kBinder}, 0, nullptr, CostProfile{260, 0.30, 250}},
              // createSession(String pkg, ISessionCallback, String tag)
              {TRANSACTION_createSession, "createSession", MethodKind::kSession,
               {ArgKind::kString, ArgKind::kBinder, ArgKind::kString}, 1,
               nullptr, CostProfile{700, 1.40, 1100}},
          }) {}

MediaRouterService::MediaRouterService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys), {"mediarouter.Clients"},
          {
              // registerClientAsUser(IMediaRouterClient, String pkg, int user)
              {TRANSACTION_registerClientAsUser, "registerClientAsUser",
               MethodKind::kRegister,
               {ArgKind::kBinder, ArgKind::kString, ArgKind::kInt32}, 0,
               nullptr, CostProfile{450, 0.80, 700}},
              {TRANSACTION_unregisterClient, "unregisterClient",
               MethodKind::kUnregister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{280, 0.35, 250}},
          }) {}

MediaProjectionService::MediaProjectionService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys), {"mediaprojection.Callbacks"},
          {
              {TRANSACTION_registerCallback, "registerCallback",
               MethodKind::kRegister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{380, 0.70, 500}},
              {TRANSACTION_unregisterCallback, "unregisterCallback",
               MethodKind::kUnregister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{250, 0.30, 250}},
          }) {}

MidiService::MidiService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys),
          {"midi.Listeners", "midi.OpenDevices", "midi.BluetoothDevices",
           "midi.DeviceServers"},
          {
              {TRANSACTION_registerListener, "registerListener",
               MethodKind::kRegister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{300, 0.80, 500}},
              {TRANSACTION_unregisterListener, "unregisterListener",
               MethodKind::kUnregister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{240, 0.30, 250}},
              // openDevice(MidiDeviceInfo, IMidiDeviceOpenCallback)
              {TRANSACTION_openDevice, "openDevice", MethodKind::kSession,
               {ArgKind::kString, ArgKind::kBinder}, 1, nullptr,
               CostProfile{700, 2.00, 1200}},
              {TRANSACTION_openBluetoothDevice, "openBluetoothDevice",
               MethodKind::kSession, {ArgKind::kString, ArgKind::kBinder}, 2,
               nullptr, CostProfile{900, 2.50, 1600}},
              // registerDeviceServer(IMidiDeviceServer, numIn, numOut, ...):
              // the heaviest vulnerable call — detection takes ~3.6 s (§V.D.1).
              {TRANSACTION_registerDeviceServer, "registerDeviceServer",
               MethodKind::kSession, {ArgKind::kBinder, ArgKind::kInt32,
                ArgKind::kInt32, ArgKind::kString}, 3, nullptr,
               CostProfile{1300, 1.80, 2200}},
              {TRANSACTION_getDevices, "getDevices", MethodKind::kQuery, {}, 0,
               nullptr, CostProfile{200, 0.0, 120}},
          }) {}

LauncherAppsService::LauncherAppsService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys), {"launcherapps.Listeners"},
          {
              {TRANSACTION_addOnAppsChangedListener, "addOnAppsChangedListener",
               MethodKind::kRegister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{420, 0.80, 600}},
              {TRANSACTION_removeOnAppsChangedListener,
               "removeOnAppsChangedListener", MethodKind::kUnregister,
               {ArgKind::kBinder}, 0, nullptr, CostProfile{260, 0.35, 250}},
          }) {}

TvInputService::TvInputService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys), {"tv.Callbacks"},
          {
              // registerCallback(ITvInputManagerCallback, int userId)
              {TRANSACTION_registerCallback, "registerCallback",
               MethodKind::kRegister, {ArgKind::kBinder, ArgKind::kInt32}, 0,
               nullptr, CostProfile{380, 0.85, 550}},
              {TRANSACTION_getTvInputList, "getTvInputList", MethodKind::kQuery,
               {ArgKind::kInt32}, 0, nullptr, CostProfile{180, 0.0, 120}},
          }) {}

}  // namespace jgre::services
