// App-hosted binder services (Table IV / Table V).
//
// Unlike framework services these run in *their own* processes, so a JGRE
// attack aborts the app (e.g. Bluetooth or PicoTts), not system_server. The
// TextToSpeechService base class is the interesting case: every app that
// extends it inherits the vulnerable default `setCallback` implementation —
// including Google Text-to-speech with 10^10 installs (§IV.D).
#ifndef JGRE_SERVICES_APP_SERVICES_H_
#define JGRE_SERVICES_APP_SERVICES_H_

#include "services/registry_service.h"

namespace jgre::services {

// android.speech.tts.TextToSpeechService — the abstract base service whose
// default ITextToSpeechService implementation retains one callback per caller
// binder. PicoTts's PicoService and Google TTS both inherit it unchanged.
class TextToSpeechService : public RegistryServiceBase {
 public:
  static constexpr const char* kDescriptor =
      "android.speech.tts.ITextToSpeechService";
  enum Code : std::uint32_t {
    TRANSACTION_setCallback = 1,
    TRANSACTION_speak = 2,
    TRANSACTION_stop = 3,
  };
  TextToSpeechService(SystemContext* sys, const std::string& service_name,
                      Pid host_pid);
};

// com.android.bluetooth GattService.registerServer: mints a server-side
// GATT server handle per registration.
class GattService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "bluetooth.gatt";
  static constexpr const char* kDescriptor = "android.bluetooth.IBluetoothGatt";
  enum Code : std::uint32_t {
    TRANSACTION_registerServer = 1,
    TRANSACTION_unregisterServer = 2,
  };
  GattService(SystemContext* sys, Pid host_pid);
};

// com.android.bluetooth AdapterService.registerCallback.
class BluetoothAdapterService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "bluetooth.adapter";
  static constexpr const char* kDescriptor = "android.bluetooth.IBluetooth";
  enum Code : std::uint32_t {
    TRANSACTION_registerCallback = 1,
    TRANSACTION_unregisterCallback = 2,
    TRANSACTION_getState = 3,
  };
  BluetoothAdapterService(SystemContext* sys, Pid host_pid);
};

// Supernet VPN's IOpenVPNAPIService.registerStatusCallback (Table V).
class OpenVpnApiService : public RegistryServiceBase {
 public:
  static constexpr const char* kDescriptor =
      "de.blinkt.openvpn.api.IOpenVPNAPIService";
  enum Code : std::uint32_t {
    TRANSACTION_registerStatusCallback = 1,
    TRANSACTION_unregisterStatusCallback = 2,
  };
  OpenVpnApiService(SystemContext* sys, const std::string& service_name,
                    Pid host_pid);
};

// SnapMovie's obfuscated IMainService.a() (Table V).
class SnapMovieMainService : public RegistryServiceBase {
 public:
  static constexpr const char* kDescriptor = "com.snapmovie.IMainService";
  enum Code : std::uint32_t {
    TRANSACTION_a = 1,
  };
  SnapMovieMainService(SystemContext* sys, const std::string& service_name,
                       Pid host_pid);
};

}  // namespace jgre::services

#endif  // JGRE_SERVICES_APP_SERVICES_H_
