// TelephonyRegistry — `listenForSubscriber` is the paper's Fig 5 subject:
// each call appends a Record to a linearly scanned list, so execution time
// grows with the number of invocations (reaching ~50 ms around call 50,000).
#ifndef JGRE_SERVICES_TELEPHONY_REGISTRY_SERVICE_H_
#define JGRE_SERVICES_TELEPHONY_REGISTRY_SERVICE_H_

#include <string>
#include <vector>

#include "services/system_service.h"

namespace jgre::services {

class TelephonyRegistryService : public SystemService {
 public:
  static constexpr const char* kName = "telephony.registry";
  static constexpr const char* kDescriptor =
      "com.android.internal.telephony.ITelephonyRegistry";

  enum Code : std::uint32_t {
    TRANSACTION_listen = 1,
    TRANSACTION_listenForSubscriber = 2,
    TRANSACTION_addOnSubscriptionsChangedListener = 3,
    TRANSACTION_removeOnSubscriptionsChangedListener = 4,
  };

  explicit TelephonyRegistryService(SystemContext* sys);

  Status OnTransact(std::uint32_t code, const binder::Parcel& data,
                    binder::Parcel* reply,
                    const binder::CallContext& ctx) override;

  std::size_t RecordCount() const { return records_.size(); }
  std::size_t SubscriptionListenerCount() const {
    return subscription_listeners_.RegisteredCount();
  }

  void SaveState(snapshot::Serializer& out) const override;
  void RestoreState(snapshot::Deserializer& in) override;

 private:
  // mRecords: one Record per (callback binder); linear lookup by binder.
  struct Record {
    NodeId node;
    std::string pkg;
    std::int32_t sub_id = 0;
    std::int32_t events = 0;
  };

  Status HandleListen(const binder::Parcel& data,
                      const binder::CallContext& ctx, std::int32_t sub_id);
  void RemoveRecord(NodeId node);

  binder::RemoteCallbackList listeners_;  // retains the callback binders
  std::vector<Record> records_;
  binder::RemoteCallbackList subscription_listeners_;
};

}  // namespace jgre::services

#endif  // JGRE_SERVICES_TELEPHONY_REGISTRY_SERVICE_H_
