// AppProcess — an installed application with a running process.
//
// Bundles the pieces app-side code needs: the process/uid identity, local
// Binder creation (`new Binder()` — each one mints a node and a JavaBBinder
// JGR in the app itself), service lookup, and typed IPC clients. Used by the
// attack framework, the benign workload generator, and the tests.
#ifndef JGRE_SERVICES_APP_H_
#define JGRE_SERVICES_APP_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "common/types.h"
#include "binder/binder_driver.h"
#include "binder/ibinder.h"
#include "binder/service_manager.h"
#include "services/ipc_client.h"

namespace jgre::services {

// A do-nothing callback binder: the `new Binder()` of Code-Snippet 2.
class NoopBinder : public binder::BBinder {
 public:
  explicit NoopBinder(std::string descriptor)
      : binder::BBinder(std::move(descriptor)) {}
  Status OnTransact(std::uint32_t code, const binder::Parcel& data,
                    binder::Parcel* reply,
                    const binder::CallContext& ctx) override;
};

class AppProcess {
 public:
  AppProcess(binder::BinderDriver* driver,
             binder::ServiceManager* service_manager, Pid pid, Uid uid,
             std::string package);

  Pid pid() const { return pid_; }
  Uid uid() const { return uid_; }
  const std::string& package() const { return package_; }
  bool alive() const;
  rt::Runtime* runtime() const;

  // `new Binder()`: a fresh local binder owned by this app.
  std::shared_ptr<binder::BBinder> NewBinder(const std::string& descriptor);

  // ServiceManager.getService + Stub.asInterface.
  Result<IpcClient> GetService(const std::string& name,
                               const std::string& descriptor) const;

  binder::BinderDriver* driver() const { return driver_; }

 private:
  binder::BinderDriver* driver_;
  binder::ServiceManager* service_manager_;
  Pid pid_;
  Uid uid_;
  std::string package_;
};

}  // namespace jgre::services

#endif  // JGRE_SERVICES_APP_H_
