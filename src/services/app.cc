#include "services/app.h"

namespace jgre::services {

Status NoopBinder::OnTransact(std::uint32_t /*code*/,
                              const binder::Parcel& /*data*/,
                              binder::Parcel* /*reply*/,
                              const binder::CallContext& ctx) {
  if (ctx.clock != nullptr) ctx.clock->AdvanceUs(40);
  return Status::Ok();
}

AppProcess::AppProcess(binder::BinderDriver* driver,
                       binder::ServiceManager* service_manager, Pid pid,
                       Uid uid, std::string package)
    : driver_(driver),
      service_manager_(service_manager),
      pid_(pid),
      uid_(uid),
      package_(std::move(package)) {}

bool AppProcess::alive() const { return driver_->kernel().IsAlive(pid_); }

rt::Runtime* AppProcess::runtime() const {
  os::Process* p = driver_->kernel().FindProcess(pid_);
  return (p != nullptr && p->HasRuntime()) ? p->runtime.get() : nullptr;
}

std::shared_ptr<binder::BBinder> AppProcess::NewBinder(
    const std::string& descriptor) {
  return driver_->MakeBinder<NoopBinder>(pid_, descriptor);
}

Result<IpcClient> AppProcess::GetService(const std::string& name,
                                         const std::string& descriptor) const {
  auto service = service_manager_->GetService(name, pid_);
  if (!service.ok()) return service.status();
  return IpcClient(service.value(), descriptor);
}

}  // namespace jgre::services
