// ClipboardService — the paper's running example (§II.A).
//
// `addPrimaryClipChangedListener` registers a listener that is retained until
// the registering process exits; each call with a fresh Binder pins two JGRs
// in system_server. The server side enforces no cap — the only guard lives in
// the ClipboardManager helper class, which a direct binder call bypasses
// (Table II row 1).
#ifndef JGRE_SERVICES_CLIPBOARD_SERVICE_H_
#define JGRE_SERVICES_CLIPBOARD_SERVICE_H_

#include <string>

#include "services/system_service.h"

namespace jgre::services {

class ClipboardService : public SystemService {
 public:
  static constexpr const char* kName = "clipboard";
  static constexpr const char* kDescriptor = "android.content.IClipboard";

  enum Code : std::uint32_t {
    TRANSACTION_setPrimaryClip = 1,
    TRANSACTION_getPrimaryClip = 2,
    TRANSACTION_hasPrimaryClip = 3,
    TRANSACTION_addPrimaryClipChangedListener = 4,
    TRANSACTION_removePrimaryClipChangedListener = 5,
  };

  explicit ClipboardService(SystemContext* sys);

  Status OnTransact(std::uint32_t code, const binder::Parcel& data,
                    binder::Parcel* reply,
                    const binder::CallContext& ctx) override;

  std::size_t ListenerCount() const { return listeners_.RegisteredCount(); }

  void SaveState(snapshot::Serializer& out) const override {
    SystemService::SaveState(out);
    listeners_.SaveState(out);
    out.Str(primary_clip_);
  }
  void RestoreState(snapshot::Deserializer& in) override {
    SystemService::RestoreState(in);
    listeners_.RestoreState(in);
    primary_clip_ = in.Str();
  }

 private:
  binder::RemoteCallbackList listeners_;
  std::string primary_clip_;
};

}  // namespace jgre::services

#endif  // JGRE_SERVICES_CLIPBOARD_SERVICE_H_
