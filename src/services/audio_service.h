// AudioService — `startWatchingRoutes` is the paper's fastest attack (~100 s
// to overflow, Fig 3); `registerRemoteController` requires no permission.
#ifndef JGRE_SERVICES_AUDIO_SERVICE_H_
#define JGRE_SERVICES_AUDIO_SERVICE_H_

#include "services/system_service.h"

namespace jgre::services {

class AudioService : public SystemService {
 public:
  static constexpr const char* kName = "audio";
  static constexpr const char* kDescriptor = "android.media.IAudioService";

  enum Code : std::uint32_t {
    TRANSACTION_registerRemoteController = 1,
    TRANSACTION_unregisterRemoteControlDisplay = 2,
    TRANSACTION_startWatchingRoutes = 3,
    TRANSACTION_getStreamVolume = 4,
    TRANSACTION_setStreamVolume = 5,
  };

  explicit AudioService(SystemContext* sys);

  Status OnTransact(std::uint32_t code, const binder::Parcel& data,
                    binder::Parcel* reply,
                    const binder::CallContext& ctx) override;

  std::size_t RemoteControllerCount() const {
    return remote_controllers_.RegisteredCount();
  }
  std::size_t RoutesObserverCount() const {
    return routes_observers_.RegisteredCount();
  }

  void SaveState(snapshot::Serializer& out) const override {
    SystemService::SaveState(out);
    remote_controllers_.SaveState(out);
    routes_observers_.SaveState(out);
    out.I64(stream_volume_);
  }
  void RestoreState(snapshot::Deserializer& in) override {
    SystemService::RestoreState(in);
    remote_controllers_.RestoreState(in);
    routes_observers_.RestoreState(in);
    stream_volume_ = static_cast<int>(in.I64());
  }

 private:
  binder::RemoteCallbackList remote_controllers_;
  binder::RemoteCallbackList routes_observers_;
  int stream_volume_ = 7;
};

}  // namespace jgre::services

#endif  // JGRE_SERVICES_AUDIO_SERVICE_H_
