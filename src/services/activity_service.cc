#include "services/activity_service.h"

#include "common/log.h"

namespace jgre::services {

namespace {
constexpr CostProfile kRegisterListenerCost{600, 0.50, 350};
constexpr CostProfile kRegisterReceiverCost{900, 0.75, 500};
constexpr CostProfile kBindServiceCost{1400, 0.90, 700};
constexpr CostProfile kForceStopCost{2500, 0.0, 500};
}  // namespace

ActivityService::ActivityService(SystemContext* sys)
    : SystemService(sys, kName, kDescriptor),
      task_stack_listeners_(sys->driver, sys->system_server_pid,
                            "activity.TaskStackListeners"),
      receivers_(sys->driver, sys->system_server_pid,
                 "activity.RegisteredReceivers"),
      service_connections_(sys->driver, sys->system_server_pid,
                           "activity.ServiceConnections") {}

Status ActivityService::OnTransact(std::uint32_t code,
                                   const binder::Parcel& data,
                                   binder::Parcel* reply,
                                   const binder::CallContext& ctx) {
  JGRE_RETURN_IF_ERROR(data.EnforceInterface(kDescriptor));
  switch (code) {
    case TRANSACTION_registerTaskStackListener: {
      Charge(ctx, kRegisterListenerCost,
             task_stack_listeners_.RegisteredCount());
      auto listener = data.ReadStrongBinder(ctx);
      if (!listener.ok()) return listener.status();
      if (listener.value().valid()) {
        task_stack_listeners_.Register(listener.value());
      }
      return Status::Ok();
    }
    case TRANSACTION_registerReceiver: {
      Charge(ctx, kRegisterReceiverCost, receivers_.RegisteredCount());
      auto pkg = data.ReadString();
      if (!pkg.ok()) return pkg.status();
      auto receiver = data.ReadStrongBinder(ctx);  // IIntentReceiver
      if (!receiver.ok()) return receiver.status();
      auto filter = data.ReadString();
      if (!filter.ok()) return filter.status();
      if (receiver.value().valid()) receivers_.Register(receiver.value());
      reply->WriteNullBinder();  // sticky intent result
      return Status::Ok();
    }
    case TRANSACTION_unregisterReceiver: {
      Charge(ctx, kRegisterReceiverCost, receivers_.RegisteredCount());
      auto receiver = data.ReadStrongBinder(ctx);
      if (!receiver.ok()) return receiver.status();
      if (receiver.value().valid()) {
        receivers_.Unregister(receiver.value().node);
      }
      return Status::Ok();
    }
    case TRANSACTION_bindService: {
      Charge(ctx, kBindServiceCost, service_connections_.RegisteredCount());
      auto intent = data.ReadString();
      if (!intent.ok()) return intent.status();
      auto connection = data.ReadStrongBinder(ctx);  // IServiceConnection
      if (!connection.ok()) return connection.status();
      if (connection.value().valid()) {
        service_connections_.Register(connection.value());
      }
      reply->WriteInt32(1);  // bound
      return Status::Ok();
    }
    case TRANSACTION_unbindService: {
      Charge(ctx, kBindServiceCost, service_connections_.RegisteredCount());
      auto connection = data.ReadStrongBinder(ctx);
      if (!connection.ok()) return connection.status();
      if (connection.value().valid()) {
        service_connections_.Unregister(connection.value().node);
      }
      return Status::Ok();
    }
    case TRANSACTION_forceStopPackage: {
      // "am force-stop <pkg>": system-only; kills every process of the uid.
      if (ctx.calling_uid != kSystemUid && ctx.calling_uid != kRootUid) {
        return PermissionDenied("forceStopPackage requires FORCE_STOP_PACKAGES");
      }
      Charge(ctx, kForceStopCost, 0);
      auto pkg = data.ReadString();
      if (!pkg.ok()) return pkg.status();
      auto uid = sys_->package_manager->GetUidForPackage(pkg.value());
      if (!uid.ok()) return uid.status();
      for (Pid pid : sys_->kernel->LivePidsForUid(uid.value())) {
        sys_->kernel->KillProcess(pid, "force-stop " + pkg.value());
      }
      ++force_stops_;
      JGRE_LOG(kInfo, "ActivityManager") << "Force stopping " << pkg.value();
      return Status::Ok();
    }
    default:
      return InvalidArgument("unknown activity transaction");
  }
}

}  // namespace jgre::services
