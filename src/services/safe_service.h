// GenericSafeService — the non-vulnerable majority of the 104 services.
//
// Android 6.0.1 registers 104 system services; the paper finds 32 vulnerable.
// The remaining services still take binders over IPC, but only through the
// benign patterns the paper's sifter rules out: transient use (rules 1–3),
// member-variable replacement (rule 4), or correct per-process constraints.
// These instances make the census denominators real and give the sifter and
// the dynamic verifier true negatives to prove themselves against.
#ifndef JGRE_SERVICES_SAFE_SERVICE_H_
#define JGRE_SERVICES_SAFE_SERVICE_H_

#include <string>
#include <vector>

#include "services/registry_service.h"

namespace jgre::services {

class GenericSafeService : public RegistryServiceBase {
 public:
  enum Code : std::uint32_t {
    TRANSACTION_query = 1,
    TRANSACTION_oneShot = 2,          // transient binder use (sift rules 2/3)
    TRANSACTION_setCallback = 3,      // member-variable slot (sift rule 4)
    TRANSACTION_registerObserver = 4, // second replaceable slot (rule 4)
    TRANSACTION_addFile = 5,          // retains a dup'd fd forever (§VI!)
  };

  GenericSafeService(SystemContext* sys, const std::string& name);

  // The 71 AOSP 6.0.1 service names that are registered but not modeled
  // in detail (the other 33 are the 32 vulnerable services + display).
  static const std::vector<std::string>& SafeServiceNames();
};

}  // namespace jgre::services

#endif  // JGRE_SERVICES_SAFE_SERVICE_H_
