#include "services/wifi_service.h"

namespace jgre::services {

namespace {
constexpr CostProfile kAcquireCost{420, 0.40, 300};
constexpr CostProfile kReleaseCost{260, 0.25, 150};
constexpr CostProfile kQueryCost{120, 0.0, 60};
}  // namespace

WifiService::WifiService(SystemContext* sys)
    : SystemService(sys, kName, kDescriptor),
      wifi_locks_(sys->driver, sys->system_server_pid, "wifi.Locks"),
      multicast_locks_(sys->driver, sys->system_server_pid,
                       "wifi.Multicasters") {}

Status WifiService::OnTransact(std::uint32_t code, const binder::Parcel& data,
                               binder::Parcel* reply,
                               const binder::CallContext& ctx) {
  JGRE_RETURN_IF_ERROR(data.EnforceInterface(kDescriptor));
  switch (code) {
    case TRANSACTION_acquireWifiLock: {
      // WifiServiceImpl enforces WAKE_LOCK (a normal permission) but has NO
      // per-process cap — MAX_ACTIVE_LOCKS is client-side only.
      JGRE_RETURN_IF_ERROR(Enforce(ctx, perms::kWakeLock));
      Charge(ctx, kAcquireCost, wifi_locks_.RegisteredCount());
      auto lock = data.ReadStrongBinder(ctx);
      if (!lock.ok()) return lock.status();
      auto lock_type = data.ReadInt32();
      if (!lock_type.ok()) return lock_type.status();
      auto tag = data.ReadString();
      if (!tag.ok()) return tag.status();
      if (lock.value().valid() && wifi_locks_.Register(lock.value())) {
        lock_tags_[lock.value().node] = tag.value();
      }
      reply->WriteBool(true);
      return Status::Ok();
    }
    case TRANSACTION_releaseWifiLock: {
      Charge(ctx, kReleaseCost, wifi_locks_.RegisteredCount());
      auto lock = data.ReadStrongBinder(ctx);
      if (!lock.ok()) return lock.status();
      bool released = false;
      if (lock.value().valid()) {
        released = wifi_locks_.Unregister(lock.value().node);
        lock_tags_.erase(lock.value().node);
      }
      reply->WriteBool(released);
      return Status::Ok();
    }
    case TRANSACTION_acquireMulticastLock: {
      JGRE_RETURN_IF_ERROR(Enforce(ctx, perms::kChangeWifiMulticastState));
      Charge(ctx, kAcquireCost, multicast_locks_.RegisteredCount());
      auto lock = data.ReadStrongBinder(ctx);
      if (!lock.ok()) return lock.status();
      auto tag = data.ReadString();
      if (!tag.ok()) return tag.status();
      if (lock.value().valid()) multicast_locks_.Register(lock.value());
      return Status::Ok();
    }
    case TRANSACTION_releaseMulticastLock: {
      Charge(ctx, kReleaseCost, multicast_locks_.RegisteredCount());
      auto lock = data.ReadStrongBinder(ctx);
      if (!lock.ok()) return lock.status();
      if (lock.value().valid()) multicast_locks_.Unregister(lock.value().node);
      return Status::Ok();
    }
    case TRANSACTION_getWifiEnabledState: {
      Charge(ctx, kQueryCost, 0);
      reply->WriteInt32(3);  // WIFI_STATE_ENABLED
      return Status::Ok();
    }
    default:
      return InvalidArgument("unknown wifi transaction");
  }
}

}  // namespace jgre::services
