// Service helper classes — the client-side "defenses" of Table II.
//
// Android protects several vulnerable interfaces only inside developer-facing
// helper classes, via two client-side patterns:
//
// * a hard cap: WifiManager.MAX_ACTIVE_LOCKS = 50 (Code-Snippet 1) — acquire
//   is sent first, then the helper counts and *releases* past the limit;
// * transport multiplexing: ClipboardManager, AccessibilityManager,
//   LauncherApps, TvInputManager, EthernetManager and LocationManager keep a
//   single per-process transport binder and fan local listeners out onto it,
//   so the service retains O(1) JGRs per process no matter how many listeners
//   the app adds.
//
// Both are useless against a malicious app: it simply skips the helper and
// talks to the binder interface directly (Code-Snippet 2). The Table II bench
// demonstrates exactly this contrast.
#ifndef JGRE_SERVICES_SERVICE_HELPERS_H_
#define JGRE_SERVICES_SERVICE_HELPERS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "services/app.h"
#include "services/ipc_client.h"

namespace jgre::services {

// Shared implementation of the transport-multiplexing pattern.
class MultiplexingListenerHelper {
 public:
  // `register_code` is the service transaction that registers the transport;
  // `write_prefix_args` (optional) writes any leading non-binder arguments.
  MultiplexingListenerHelper(
      AppProcess* app, std::string service_name, std::string descriptor,
      std::uint32_t register_code,
      std::function<void(binder::Parcel&)> write_prefix_args = nullptr,
      std::function<void(binder::Parcel&)> write_suffix_args = nullptr);

  // Adds a local listener. Only the FIRST call sends an IPC registration
  // (with the shared transport binder); later calls are purely local.
  Status AddListener();
  void RemoveListener();

  int local_listener_count() const { return local_listeners_; }
  bool transport_registered() const { return transport_ != nullptr; }

 private:
  AppProcess* app_;
  std::string service_name_;
  std::string descriptor_;
  std::uint32_t register_code_;
  std::function<void(binder::Parcel&)> write_prefix_args_;
  std::function<void(binder::Parcel&)> write_suffix_args_;
  std::shared_ptr<binder::BBinder> transport_;
  int local_listeners_ = 0;
};

// ClipboardManager.addPrimaryClipChangedListener.
class ClipboardManager {
 public:
  explicit ClipboardManager(AppProcess* app);
  Status AddPrimaryClipChangedListener() { return helper_.AddListener(); }
  void RemovePrimaryClipChangedListener() { helper_.RemoveListener(); }
  int listener_count() const { return helper_.local_listener_count(); }

 private:
  MultiplexingListenerHelper helper_;
};

// AccessibilityManager.addClient-style multiplexing.
class AccessibilityManager {
 public:
  explicit AccessibilityManager(AppProcess* app);
  Status AddClient() { return helper_.AddListener(); }

 private:
  MultiplexingListenerHelper helper_;
};

// LauncherApps.addOnAppsChangedListener.
class LauncherApps {
 public:
  explicit LauncherApps(AppProcess* app);
  Status AddOnAppsChangedListener() { return helper_.AddListener(); }

 private:
  MultiplexingListenerHelper helper_;
};

// TvInputManager.registerCallback.
class TvInputManager {
 public:
  explicit TvInputManager(AppProcess* app);
  Status RegisterCallback() { return helper_.AddListener(); }

 private:
  MultiplexingListenerHelper helper_;
};

// EthernetManager.addListener.
class EthernetManager {
 public:
  explicit EthernetManager(AppProcess* app);
  Status AddListener() { return helper_.AddListener(); }

 private:
  MultiplexingListenerHelper helper_;
};

// LocationManager: GPS measurement / navigation-message listeners.
class LocationManager {
 public:
  explicit LocationManager(AppProcess* app);
  Status AddGpsMeasurementsListener() { return measurements_.AddListener(); }
  Status AddGpsNavigationMessageListener() { return navigation_.AddListener(); }

 private:
  MultiplexingListenerHelper measurements_;
  MultiplexingListenerHelper navigation_;
};

// WifiManager — the capped helper of Code-Snippet 1.
class WifiManager {
 public:
  // WifiManager.MAX_ACTIVE_LOCKS ("prevent apps from creating a ridiculous
  // number of locks and crashing the system by overflowing the global ref
  // table").
  static constexpr int kMaxActiveLocks = 50;

  explicit WifiManager(AppProcess* app);

  class WifiLock {
   public:
    Status Acquire();
    Status Release();
    bool held() const { return held_; }

   private:
    friend class WifiManager;
    WifiLock(WifiManager* manager, std::string tag, bool multicast)
        : manager_(manager), tag_(std::move(tag)), multicast_(multicast) {}
    WifiManager* manager_;
    std::string tag_;
    bool multicast_ = false;
    std::shared_ptr<binder::BBinder> binder_;
    bool held_ = false;
  };

  WifiLock CreateWifiLock(const std::string& tag);
  // MulticastLock shares the same MAX_ACTIVE_LOCKS guard in WifiManager.
  WifiLock CreateMulticastLock(const std::string& tag);
  int active_lock_count() const { return active_lock_count_; }

 private:
  friend class WifiLock;
  AppProcess* app_;
  IpcClient client_;
  int active_lock_count_ = 0;
};

}  // namespace jgre::services

#endif  // JGRE_SERVICES_SERVICE_HELPERS_H_
