// RegistryServiceBase — declarative base for AOSP-style binder services.
//
// Most system services are compositions of a handful of retention patterns;
// which pattern a method uses decides whether it is JGRE-vulnerable:
//
// * kRegister        — retain the callback until unregister/death
//                      (vulnerable: unbounded per caller);
// * kSession         — kRegister plus a per-call server-side session binder
//                      (vulnerable, ~3 JGRs per call in the host);
// * kRegisterPerProcess — at most one retained callback per calling process
//                      (the *correct* per-process constraint of Table III);
// * kReplaceSingle   — a single member-variable slot, each call replaces the
//                      previous binder (sift rule 4: not vulnerable);
// * kTransient       — the binder is used within the call and not retained
//                      (sift rules 2/3: GC reclaims it, not vulnerable);
// * kUnregister / kQuery — bookkeeping and reads.
//
// Concrete services declare their interfaces as MethodSpecs (code, argument
// layout, permission, cost profile, pattern, registry) and inherit dispatch.
// Handwritten services (clipboard, wifi, notification, ...) show the same
// logic in full; this base keeps the remaining ~25 services faithful without
// 25 copies of the switch statement.
#ifndef JGRE_SERVICES_REGISTRY_SERVICE_H_
#define JGRE_SERVICES_REGISTRY_SERVICE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "services/system_service.h"

namespace jgre::services {

enum class ArgKind { kInt32, kInt64, kBool, kString, kByteArray, kBinder, kFd };

enum class MethodKind {
  kQuery,
  kRegister,
  kUnregister,
  kSession,
  kRegisterPerProcess,
  kReplaceSingle,
  kTransient,
  // Dups and retains the caller's file descriptors without ever closing them
  // (§VI: a resource-exhaustion bug the JGRE pipeline is structurally blind
  // to — no binder is retained and no JGR is created).
  kConsumeFd,
  // Cross-transaction protocol pair (BinderCracker-style): kMintToken replies
  // with a service-minted 64-bit capability token; kRegisterGated retains its
  // callback binder only when the leading int64 argument is a token this
  // service minted earlier — otherwise the call is rejected and nothing is
  // retained. Exercised by protocol-analysis tests, not by the AOSP corpus.
  kMintToken,
  kRegisterGated,
};

struct MethodSpec {
  std::uint32_t code = 0;
  std::string method;                   // Java-level method name
  MethodKind kind = MethodKind::kQuery;
  std::vector<ArgKind> args;            // parcel layout after the token
  int registry = 0;                     // which callback list / slot
  const char* permission = nullptr;     // nullptr => no permission required
  CostProfile cost{};
  // Cross-call protocol declaration, mirrored into the code model by the
  // corpus: the mint domain of the value this method's reply carries
  // ("" = none; kSession and kMintToken methods get a default domain) and,
  // parallel to args, the mint domain each argument consumes ("" = opaque).
  std::string mints{};
  std::vector<std::string> consumes{};
};

class RegistryServiceBase : public SystemService {
 public:
  Status OnTransact(std::uint32_t code, const binder::Parcel& data,
                    binder::Parcel* reply,
                    const binder::CallContext& ctx) override;

  std::size_t RegistryCount(int registry) const;
  std::size_t SessionCount(int registry) const;
  std::int64_t ConsumedFds(int registry) const;
  const std::vector<MethodSpec>& methods() const { return methods_; }
  Pid host_pid() const { return host_pid_; }

  void SaveState(snapshot::Serializer& out) const override;
  void RestoreState(snapshot::Deserializer& in) override;

 protected:
  // `host_pid` is the process whose runtime retains state (system_server for
  // framework services, the app process for prebuilt-app services).
  RegistryServiceBase(SystemContext* sys, std::string service_name,
                      std::string descriptor, Pid host_pid,
                      std::vector<std::string> registry_names,
                      std::vector<MethodSpec> methods);

 private:
  struct Registry {
    std::unique_ptr<binder::RemoteCallbackList> callbacks;
    // client callback node -> server-side session binder node (kSession).
    std::map<NodeId, NodeId> sessions;
    // per-process single registration (kRegisterPerProcess).
    std::map<Pid, NodeId> per_process;
    // single replaceable slot (kReplaceSingle).
    NodeId single_slot;
    // fds dup'd into the host and never closed (kConsumeFd).
    std::int64_t consumed_fds = 0;
    // Capability tokens handed out by kMintToken and honored by
    // kRegisterGated. std::set: snapshot serialization stays deterministic.
    std::set<std::int64_t> minted_tokens;
    std::int64_t next_token_seq = 0;
  };

  const MethodSpec* FindMethod(std::uint32_t code) const;
  Status ReadArgs(const MethodSpec& spec, const binder::Parcel& data,
                  const binder::CallContext& ctx,
                  std::vector<binder::StrongBinder>* binders,
                  int* fds_received,
                  std::vector<std::int64_t>* scalars) const;
  void DropSession(Registry& reg, NodeId client_node);

  Pid host_pid_;
  std::vector<MethodSpec> methods_;
  std::vector<Registry> registries_;
};

// Inert server-side session object (MidiDeviceServer, print job, SIP session,
// app-ops token, ...): exists to occupy a node + JavaBBinder JGR in the host.
class SessionBinder : public binder::BBinder {
 public:
  explicit SessionBinder(std::string descriptor)
      : binder::BBinder(std::move(descriptor)) {}
  Status OnTransact(std::uint32_t code, const binder::Parcel& data,
                    binder::Parcel* reply,
                    const binder::CallContext& ctx) override;
};

}  // namespace jgre::services

#endif  // JGRE_SERVICES_REGISTRY_SERVICE_H_
