#include "services/clipboard_service.h"

namespace jgre::services {

namespace {
// Listener registration walks the callback list; clip get/set are cheap.
constexpr CostProfile kAddListenerCost{320, 0.35, 260};
constexpr CostProfile kClipCost{150, 0.0, 80};
}  // namespace

ClipboardService::ClipboardService(SystemContext* sys)
    : SystemService(sys, kName, kDescriptor),
      listeners_(sys->driver, sys->system_server_pid,
                 "clipboard.PrimaryClipListeners") {}

Status ClipboardService::OnTransact(std::uint32_t code,
                                    const binder::Parcel& data,
                                    binder::Parcel* reply,
                                    const binder::CallContext& ctx) {
  JGRE_RETURN_IF_ERROR(data.EnforceInterface(kDescriptor));
  switch (code) {
    case TRANSACTION_setPrimaryClip: {
      Charge(ctx, kClipCost, listeners_.RegisteredCount());
      auto clip = data.ReadString();
      if (!clip.ok()) return clip.status();
      primary_clip_ = clip.value();
      listeners_.Broadcast([](binder::IBinder& cb) {
        binder::Parcel note;
        note.WriteInterfaceToken("android.content.IOnPrimaryClipChangedListener");
        binder::Parcel ignored;
        (void)cb.Transact(1, note, &ignored);
      });
      return Status::Ok();
    }
    case TRANSACTION_getPrimaryClip: {
      Charge(ctx, kClipCost, 0);
      reply->WriteString(primary_clip_);
      return Status::Ok();
    }
    case TRANSACTION_hasPrimaryClip: {
      Charge(ctx, kClipCost, 0);
      reply->WriteBool(!primary_clip_.empty());
      return Status::Ok();
    }
    case TRANSACTION_addPrimaryClipChangedListener: {
      // No permission and no server-side cap: the vulnerable path.
      Charge(ctx, kAddListenerCost, listeners_.RegisteredCount());
      auto listener = data.ReadStrongBinder(ctx);
      if (!listener.ok()) return listener.status();
      listeners_.Register(listener.value());
      return Status::Ok();
    }
    case TRANSACTION_removePrimaryClipChangedListener: {
      Charge(ctx, kClipCost, listeners_.RegisteredCount());
      auto listener = data.ReadStrongBinder(ctx);
      if (!listener.ok()) return listener.status();
      if (listener.value().valid()) {
        listeners_.Unregister(listener.value().node);
      }
      return Status::Ok();
    }
    default:
      return InvalidArgument("unknown clipboard transaction");
  }
}

}  // namespace jgre::services
