// NotificationManagerService — the flawed per-process constraint (§IV.C.2).
//
// `enqueueToast` limits each package to MAX_PACKAGE_NOTIFICATIONS queued
// toasts *unless* the toast is a "system toast" — decided by
// `isCallerSystem() || "android".equals(pkg)` where `pkg` is a
// caller-supplied string (Code-Snippet 3). A zero-permission app that passes
// "android" as its package name bypasses the cap and can queue toasts until
// the shared JGR table overflows. Table III's one "No" row.
#ifndef JGRE_SERVICES_NOTIFICATION_SERVICE_H_
#define JGRE_SERVICES_NOTIFICATION_SERVICE_H_

#include <deque>
#include <string>
#include <unordered_map>

#include "services/system_service.h"

namespace jgre::services {

class NotificationService : public SystemService {
 public:
  static constexpr const char* kName = "notification";
  static constexpr const char* kDescriptor =
      "android.app.INotificationManager";

  // NotificationManagerService.MAX_PACKAGE_NOTIFICATIONS.
  static constexpr int kMaxPackageNotifications = 50;
  // LONG_DELAY: a shown toast stays up 3.5 s before the next one is shown.
  static constexpr DurationUs kToastDisplayUs = 3'500'000;

  enum Code : std::uint32_t {
    TRANSACTION_enqueueToast = 1,
    TRANSACTION_cancelToast = 2,
    TRANSACTION_enqueueNotificationWithTag = 3,
    TRANSACTION_cancelNotificationWithTag = 4,
  };

  explicit NotificationService(SystemContext* sys);

  Status OnTransact(std::uint32_t code, const binder::Parcel& data,
                    binder::Parcel* reply,
                    const binder::CallContext& ctx) override;

  std::size_t ToastQueueSize() const { return toast_queue_.size(); }
  std::size_t RetainedCallbackCount() const {
    return callbacks_.RegisteredCount();
  }

  void SaveState(snapshot::Serializer& out) const override;
  void RestoreState(snapshot::Deserializer& in) override;

 private:
  struct ToastRecord {
    std::string pkg;
    NodeId callback_node;
  };

  // Pops shown/expired toasts off the queue front (toasts display one at a
  // time); releases callbacks whose last record left the queue.
  void DrainShownToasts(const binder::CallContext& ctx);
  int CountForPackage(const std::string& pkg) const;
  void ReleaseRecord(const ToastRecord& record);

  binder::RemoteCallbackList callbacks_;
  std::deque<ToastRecord> toast_queue_;
  std::unordered_map<NodeId, int> records_per_node_;
  TimeUs current_toast_shown_since_us_ = 0;
  std::unordered_map<std::string, int> notifications_per_pkg_;
};

}  // namespace jgre::services

#endif  // JGRE_SERVICES_NOTIFICATION_SERVICE_H_
