// System-side miscellaneous services from Table I: power, appops, mount,
// content, country_detector, bluetooth_manager, package, fingerprint,
// textservices. Each declares its vulnerable interfaces (and the benign
// bookkeeping ones) through RegistryServiceBase method specs.
#ifndef JGRE_SERVICES_MISC_SYSTEM_SERVICES_H_
#define JGRE_SERVICES_MISC_SYSTEM_SERVICES_H_

#include "services/registry_service.h"

namespace jgre::services {

// PowerManagerService: acquireWakeLock retains one lock binder per token
// (WAKE_LOCK, normal).
class PowerService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "power";
  static constexpr const char* kDescriptor = "android.os.IPowerManager";
  enum Code : std::uint32_t {
    TRANSACTION_acquireWakeLock = 1,
    TRANSACTION_releaseWakeLock = 2,
    TRANSACTION_isScreenOn = 3,
  };
  explicit PowerService(SystemContext* sys);
};

// AppOpsService: startWatchingMode retains the callback; getToken mints and
// retains a per-client token binder (kSession).
class AppOpsService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "appops";
  static constexpr const char* kDescriptor =
      "com.android.internal.app.IAppOpsService";
  enum Code : std::uint32_t {
    TRANSACTION_startWatchingMode = 1,
    TRANSACTION_stopWatchingMode = 2,
    TRANSACTION_getToken = 3,
    TRANSACTION_checkOperation = 4,
  };
  explicit AppOpsService(SystemContext* sys);
};

// MountService: registerListener retains IMountServiceListener.
class MountService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "mount";
  static constexpr const char* kDescriptor = "android.os.storage.IMountService";
  enum Code : std::uint32_t {
    TRANSACTION_registerListener = 1,
    TRANSACTION_unregisterListener = 2,
    TRANSACTION_getVolumeState = 3,
  };
  explicit MountService(SystemContext* sys);
};

// ContentService: registerContentObserver + addStatusChangeListener.
class ContentService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "content";
  static constexpr const char* kDescriptor = "android.content.IContentService";
  enum Code : std::uint32_t {
    TRANSACTION_registerContentObserver = 1,
    TRANSACTION_unregisterContentObserver = 2,
    TRANSACTION_addStatusChangeListener = 3,
    TRANSACTION_removeStatusChangeListener = 4,
  };
  explicit ContentService(SystemContext* sys);
};

// CountryDetectorService: addCountryListener.
class CountryDetectorService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "country_detector";
  static constexpr const char* kDescriptor =
      "android.location.ICountryDetector";
  enum Code : std::uint32_t {
    TRANSACTION_addCountryListener = 1,
    TRANSACTION_removeCountryListener = 2,
    TRANSACTION_detectCountry = 3,
  };
  explicit CountryDetectorService(SystemContext* sys);
};

// BluetoothManagerService: four vulnerable interfaces (Table I lists the
// bindBluetoothProfileService overload twice).
class BluetoothManagerService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "bluetooth_manager";
  static constexpr const char* kDescriptor =
      "android.bluetooth.IBluetoothManager";
  enum Code : std::uint32_t {
    TRANSACTION_registerAdapter = 1,
    TRANSACTION_unregisterAdapter = 2,
    TRANSACTION_registerStateChangeCallback = 3,
    TRANSACTION_bindBluetoothProfileService = 4,
    TRANSACTION_bindBluetoothProfileService2 = 5,
    TRANSACTION_isEnabled = 6,
  };
  explicit BluetoothManagerService(SystemContext* sys);
};

// PackageManagerService binder ("package"): getPackageSizeInfo queues the
// stats observer (GET_PACKAGE_SIZE, normal).
class PackageService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "package";
  static constexpr const char* kDescriptor =
      "android.content.pm.IPackageManager";
  enum Code : std::uint32_t {
    TRANSACTION_getPackageSizeInfo = 1,
    TRANSACTION_getPackageUid = 2,
  };
  explicit PackageService(SystemContext* sys);
};

// FingerprintService: addLockoutResetCallback.
class FingerprintService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "fingerprint";
  static constexpr const char* kDescriptor =
      "android.hardware.fingerprint.IFingerprintService";
  enum Code : std::uint32_t {
    TRANSACTION_addLockoutResetCallback = 1,
    TRANSACTION_isHardwareDetected = 2,
  };
  explicit FingerprintService(SystemContext* sys);
};

// TextServicesManagerService: getSpellCheckerService retains the callback.
class TextServicesService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "textservices";
  static constexpr const char* kDescriptor =
      "com.android.internal.textservice.ITextServicesManager";
  enum Code : std::uint32_t {
    TRANSACTION_getSpellCheckerService = 1,
    TRANSACTION_finishSpellCheckerService = 2,
  };
  explicit TextServicesService(SystemContext* sys);
};

}  // namespace jgre::services

#endif  // JGRE_SERVICES_MISC_SYSTEM_SERVICES_H_
