// SystemService — base class for framework services hosted in system_server.
//
// Provides the pieces every AOSP service handler needs:
// * permission enforcement (Context.enforceCallingPermission);
// * an execution-cost model implementing the paper's Observation 2: each
//   interface has a stable base cost plus a small uniformly distributed
//   deviation Δ, and lookup cost grows with the amount of state the service
//   already stores (this produces Fig 5's growth and Fig 6's CDF);
// * access to the shared SystemContext (kernel, driver, service manager,
//   package manager, host pid).
#ifndef JGRE_SERVICES_SYSTEM_SERVICE_H_
#define JGRE_SERVICES_SYSTEM_SERVICE_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "binder/binder_driver.h"
#include "binder/ibinder.h"
#include "binder/parcel.h"
#include "binder/remote_callback_list.h"
#include "binder/service_manager.h"
#include "os/kernel.h"
#include "services/package_manager.h"
#include "snapshot/serializer.h"

namespace jgre::services {

// Shared environment wired up by the core facade at boot.
struct SystemContext {
  os::Kernel* kernel = nullptr;
  binder::BinderDriver* driver = nullptr;
  binder::ServiceManager* service_manager = nullptr;
  PackageManager* package_manager = nullptr;
  Pid system_server_pid;

  rt::Runtime* system_runtime() const {
    os::Process* p = kernel->FindProcess(system_server_pid);
    return (p != nullptr && p->HasRuntime()) ? p->runtime.get() : nullptr;
  }
};

// Per-interface execution cost (Observation 2): duration = base + Δ with
// Δ ~ U[0, delta_max], plus per_entry_us for every item of retained state the
// handler walks (listener lists, toast queues, subscription records).
struct CostProfile {
  DurationUs base_us = 200;
  double per_entry_us = 0.0;
  DurationUs delta_max_us = 100;
};

class SystemService : public binder::BBinder {
 public:
  SystemService(SystemContext* sys, std::string service_name,
                std::string descriptor);

  const std::string& service_name() const { return service_name_; }

  // Checkpointing. The base serializes the per-service cost RNG; services
  // with retained state (callback lists, queues, records) extend both hooks
  // and must call the base first. Restore runs against a freshly booted
  // service object whose wiring (driver registration, context) is already in
  // place.
  virtual void SaveState(snapshot::Serializer& out) const {
    rng_.SaveState(out);
  }
  virtual void RestoreState(snapshot::Deserializer& in) {
    rng_.RestoreState(in);
  }

 protected:
  // Context.enforceCallingPermission: kPermissionDenied unless granted.
  Status Enforce(const binder::CallContext& ctx,
                 const std::string& permission) const;

  // Binder.getCallingUid()-based package lookup.
  Result<std::string> CallingPackage(const binder::CallContext& ctx) const;

  // Advances virtual time for this handler invocation.
  void Charge(const binder::CallContext& ctx, const CostProfile& cost,
              std::size_t state_entries);

  SystemContext* sys_;
  Rng rng_;

 private:
  std::string service_name_;
};

}  // namespace jgre::services

#endif  // JGRE_SERVICES_SYSTEM_SERVICE_H_
