// UI-plane services: input_method, accessibility, print, window, wallpaper,
// input, display. `input` and `display` carry the *correct* per-process
// constraints of Table III next to `input.vibrate`, which has none.
#ifndef JGRE_SERVICES_UI_SERVICES_H_
#define JGRE_SERVICES_UI_SERVICES_H_

#include "services/registry_service.h"

namespace jgre::services {

// InputMethodManagerService: addClient retains the client + input context.
class InputMethodService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "input_method";
  static constexpr const char* kDescriptor =
      "com.android.internal.view.IInputMethodManager";
  enum Code : std::uint32_t {
    TRANSACTION_addClient = 1,
    TRANSACTION_removeClient = 2,
    TRANSACTION_getInputMethodList = 3,
  };
  explicit InputMethodService(SystemContext* sys);
};

// AccessibilityManagerService: addAccessibilityInteractionConnection (two
// retained binders per call, Table I) and addClient (helper-capped only,
// Table II).
class AccessibilityService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "accessibility";
  static constexpr const char* kDescriptor =
      "android.view.accessibility.IAccessibilityManager";
  enum Code : std::uint32_t {
    TRANSACTION_addAccessibilityInteractionConnection = 1,
    TRANSACTION_removeAccessibilityInteractionConnection = 2,
    TRANSACTION_addClient = 3,
    TRANSACTION_getEnabledAccessibilityServiceList = 4,
  };
  explicit AccessibilityService(SystemContext* sys);
};

// PrintManagerService: print / addPrintJobStateChangeListener /
// createPrinterDiscoverySession.
class PrintService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "print";
  static constexpr const char* kDescriptor = "android.print.IPrintManager";
  enum Code : std::uint32_t {
    TRANSACTION_print = 1,
    TRANSACTION_addPrintJobStateChangeListener = 2,
    TRANSACTION_removePrintJobStateChangeListener = 3,
    TRANSACTION_createPrinterDiscoverySession = 4,
    TRANSACTION_getPrintJobInfos = 5,
  };
  explicit PrintService(SystemContext* sys);
};

// WindowManagerService: watchRotation retains IRotationWatcher.
class WindowService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "window";
  static constexpr const char* kDescriptor = "android.view.IWindowManager";
  enum Code : std::uint32_t {
    TRANSACTION_watchRotation = 1,
    TRANSACTION_removeRotationWatcher = 2,
    TRANSACTION_getDefaultDisplayRotation = 3,
  };
  explicit WindowService(SystemContext* sys);
};

// WallpaperManagerService: getWallpaper(cb) retains the change callback.
class WallpaperService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "wallpaper";
  static constexpr const char* kDescriptor =
      "android.app.IWallpaperManager";
  enum Code : std::uint32_t {
    TRANSACTION_getWallpaper = 1,
    TRANSACTION_setWallpaper = 2,
  };
  explicit WallpaperService(SystemContext* sys);
};

// InputManagerService: vibrate is unprotected (Table I) while the two
// listener interfaces hold the correct per-process cap (Table III, "Yes").
class InputService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "input";
  static constexpr const char* kDescriptor =
      "android.hardware.input.IInputManager";
  enum Code : std::uint32_t {
    TRANSACTION_vibrate = 1,
    TRANSACTION_cancelVibrate = 2,
    TRANSACTION_registerInputDevicesChangedListener = 3,
    TRANSACTION_registerTabletModeChangedListener = 4,
    TRANSACTION_getInputDeviceIds = 5,
  };
  explicit InputService(SystemContext* sys);
};

// DisplayManagerService: registerCallback with the correct per-process cap
// (Table III, "Yes").
class DisplayService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "display";
  static constexpr const char* kDescriptor =
      "android.hardware.display.IDisplayManager";
  enum Code : std::uint32_t {
    TRANSACTION_registerCallback = 1,
    TRANSACTION_getDisplayInfo = 2,
  };
  explicit DisplayService(SystemContext* sys);
};

}  // namespace jgre::services

#endif  // JGRE_SERVICES_UI_SERVICES_H_
