#include "services/system_service.h"

#include "common/strings.h"

namespace jgre::services {

SystemService::SystemService(SystemContext* sys, std::string service_name,
                             std::string descriptor)
    : binder::BBinder(std::move(descriptor)),
      sys_(sys),
      rng_(sys->kernel->rng().Fork()),
      service_name_(std::move(service_name)) {}

Status SystemService::Enforce(const binder::CallContext& ctx,
                              const std::string& permission) const {
  if (sys_->package_manager->CheckPermission(ctx.calling_uid, permission)) {
    return Status::Ok();
  }
  return PermissionDenied(StrCat("uid ", ctx.calling_uid.value(),
                                 " requires ", permission, " to call ",
                                 service_name_));
}

Result<std::string> SystemService::CallingPackage(
    const binder::CallContext& ctx) const {
  return sys_->package_manager->GetPackageForUid(ctx.calling_uid);
}

void SystemService::Charge(const binder::CallContext& ctx,
                           const CostProfile& cost,
                           std::size_t state_entries) {
  const DurationUs delta =
      cost.delta_max_us == 0
          ? 0
          : static_cast<DurationUs>(rng_.UniformU64(cost.delta_max_us + 1));
  const DurationUs lookup = static_cast<DurationUs>(
      cost.per_entry_us * static_cast<double>(state_entries));
  ctx.clock->AdvanceUs(cost.base_us + lookup + delta);
}

}  // namespace jgre::services
