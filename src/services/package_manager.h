// PackageManager — installed packages and the permission model.
//
// Android's permission model is the security boundary the paper shows to be
// insufficient: it gates *whether* an app may call an interface, not *how
// many* resources the calls consume (§I). We model protection levels and
// grants so Table I's "required permission" column and the sifter's
// permission filter are real checks, not annotations.
#ifndef JGRE_SERVICES_PACKAGE_MANAGER_H_
#define JGRE_SERVICES_PACKAGE_MANAGER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "snapshot/serializer.h"

namespace jgre::services {

enum class ProtectionLevel {
  kNormal,     // granted at install
  kDangerous,  // user-granted at runtime
  kSignature,  // platform-signed only
};

std::string_view ProtectionLevelName(ProtectionLevel level);

// Well-known permission names used by the vulnerable interfaces (Table I).
namespace perms {
inline constexpr const char* kAccessFineLocation =
    "android.permission.ACCESS_FINE_LOCATION";
inline constexpr const char* kUseSip = "android.permission.USE_SIP";
inline constexpr const char* kReadPhoneState =
    "android.permission.READ_PHONE_STATE";
inline constexpr const char* kBluetooth = "android.permission.BLUETOOTH";
inline constexpr const char* kWakeLock = "android.permission.WAKE_LOCK";
inline constexpr const char* kChangeWifiMulticastState =
    "android.permission.CHANGE_WIFI_MULTICAST_STATE";
inline constexpr const char* kGetPackageSize =
    "android.permission.GET_PACKAGE_SIZE";
inline constexpr const char* kChangeNetworkState =
    "android.permission.CHANGE_NETWORK_STATE";
inline constexpr const char* kAccessNetworkState =
    "android.permission.ACCESS_NETWORK_STATE";
}  // namespace perms

class PackageManager {
 public:
  PackageManager();

  // Declares a permission with its protection level (platform manifest).
  void DefinePermission(const std::string& name, ProtectionLevel level);

  // Installs `package` under `uid`. `granted` must be declared permissions.
  void InstallPackage(const std::string& package, Uid uid,
                      const std::set<std::string>& granted = {});
  void UninstallPackage(const std::string& package);

  void GrantPermission(const std::string& package, const std::string& perm);
  void RevokePermission(const std::string& package, const std::string& perm);

  // PackageManager.checkPermission: uid 0/1000 hold everything.
  bool CheckPermission(Uid uid, const std::string& permission) const;

  Result<std::string> GetPackageForUid(Uid uid) const;
  Result<Uid> GetUidForPackage(const std::string& package) const;
  Result<ProtectionLevel> GetProtectionLevel(const std::string& perm) const;

  std::vector<std::string> InstalledPackages() const;

  // Checkpointing: installed packages, uid routing, declared permissions.
  // All containers are ordered, so iteration is already byte-stable.
  void SaveState(snapshot::Serializer& out) const {
    out.U64(packages_.size());
    for (const auto& [package, info] : packages_) {
      out.Str(package);
      out.I64(info.uid.value());
      out.U64(info.granted.size());
      for (const std::string& perm : info.granted) out.Str(perm);
    }
    out.U64(permissions_.size());
    for (const auto& [perm, level] : permissions_) {
      out.Str(perm);
      out.U8(static_cast<std::uint8_t>(level));
    }
  }
  void RestoreState(snapshot::Deserializer& in) {
    packages_.clear();
    uid_to_package_.clear();
    for (std::uint64_t i = 0, n = in.U64(); i < n && in.ok(); ++i) {
      std::string package = in.Str();
      PackageInfo info;
      info.uid = Uid{static_cast<std::int32_t>(in.I64())};
      for (std::uint64_t p = 0, np = in.U64(); p < np && in.ok(); ++p) {
        info.granted.insert(in.Str());
      }
      uid_to_package_[info.uid] = package;
      packages_.emplace(std::move(package), std::move(info));
    }
    permissions_.clear();
    for (std::uint64_t i = 0, n = in.U64(); i < n && in.ok(); ++i) {
      std::string perm = in.Str();
      permissions_.emplace(std::move(perm),
                           static_cast<ProtectionLevel>(in.U8()));
    }
  }

 private:
  struct PackageInfo {
    Uid uid;
    std::set<std::string> granted;
  };
  std::map<std::string, PackageInfo> packages_;
  std::map<Uid, std::string> uid_to_package_;
  std::map<std::string, ProtectionLevel> permissions_;
};

}  // namespace jgre::services

#endif  // JGRE_SERVICES_PACKAGE_MANAGER_H_
