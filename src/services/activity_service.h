// ActivityManagerService — three vulnerable interfaces (Table I) plus the
// `forceStopPackage` entry point the JGRE Defender drives ("am force-stop").
#ifndef JGRE_SERVICES_ACTIVITY_SERVICE_H_
#define JGRE_SERVICES_ACTIVITY_SERVICE_H_

#include <string>
#include <unordered_map>

#include "services/system_service.h"

namespace jgre::services {

class ActivityService : public SystemService {
 public:
  static constexpr const char* kName = "activity";
  static constexpr const char* kDescriptor = "android.app.IActivityManager";

  enum Code : std::uint32_t {
    TRANSACTION_registerTaskStackListener = 1,
    TRANSACTION_registerReceiver = 2,
    TRANSACTION_unregisterReceiver = 3,
    TRANSACTION_bindService = 4,
    TRANSACTION_unbindService = 5,
    TRANSACTION_forceStopPackage = 6,
  };

  explicit ActivityService(SystemContext* sys);

  Status OnTransact(std::uint32_t code, const binder::Parcel& data,
                    binder::Parcel* reply,
                    const binder::CallContext& ctx) override;

  std::size_t TaskStackListenerCount() const {
    return task_stack_listeners_.RegisteredCount();
  }
  std::size_t ReceiverCount() const { return receivers_.RegisteredCount(); }
  std::size_t ConnectionCount() const {
    return service_connections_.RegisteredCount();
  }
  std::int64_t force_stops() const { return force_stops_; }

  void SaveState(snapshot::Serializer& out) const override {
    SystemService::SaveState(out);
    task_stack_listeners_.SaveState(out);
    receivers_.SaveState(out);
    service_connections_.SaveState(out);
    out.I64(force_stops_);
  }
  void RestoreState(snapshot::Deserializer& in) override {
    SystemService::RestoreState(in);
    task_stack_listeners_.RestoreState(in);
    receivers_.RestoreState(in);
    service_connections_.RestoreState(in);
    force_stops_ = in.I64();
  }

 private:
  binder::RemoteCallbackList task_stack_listeners_;
  binder::RemoteCallbackList receivers_;           // mRegisteredReceivers
  binder::RemoteCallbackList service_connections_; // ServiceRecord bindings
  std::int64_t force_stops_ = 0;
};

}  // namespace jgre::services

#endif  // JGRE_SERVICES_ACTIVITY_SERVICE_H_
