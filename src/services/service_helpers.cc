#include "services/service_helpers.h"

#include "common/strings.h"
#include "services/clipboard_service.h"
#include "services/location_service.h"
#include "services/net_media_services.h"
#include "services/ui_services.h"
#include "services/wifi_service.h"

namespace jgre::services {

MultiplexingListenerHelper::MultiplexingListenerHelper(
    AppProcess* app, std::string service_name, std::string descriptor,
    std::uint32_t register_code,
    std::function<void(binder::Parcel&)> write_prefix_args,
    std::function<void(binder::Parcel&)> write_suffix_args)
    : app_(app),
      service_name_(std::move(service_name)),
      descriptor_(std::move(descriptor)),
      register_code_(register_code),
      write_prefix_args_(std::move(write_prefix_args)),
      write_suffix_args_(std::move(write_suffix_args)) {}

Status MultiplexingListenerHelper::AddListener() {
  if (transport_ == nullptr) {
    // First listener: create the single per-process transport binder and
    // register it with the service. This is the only IPC registration the
    // helper will ever perform, bounding server-side JGRs at O(1).
    auto client = app_->GetService(service_name_, descriptor_);
    if (!client.ok()) return client.status();
    transport_ = app_->NewBinder(StrCat(descriptor_, ".Transport"));
    auto transport = transport_;
    auto prefix = write_prefix_args_;
    auto suffix = write_suffix_args_;
    Status status = client.value().Call(
        register_code_, [&](binder::Parcel& p) {
          if (prefix) prefix(p);
          p.WriteStrongBinder(transport);
          if (suffix) suffix(p);
        });
    if (!status.ok()) {
      transport_.reset();
      return status;
    }
  }
  ++local_listeners_;
  return Status::Ok();
}

void MultiplexingListenerHelper::RemoveListener() {
  if (local_listeners_ > 0) --local_listeners_;
}

ClipboardManager::ClipboardManager(AppProcess* app)
    : helper_(app, ClipboardService::kName, ClipboardService::kDescriptor,
              ClipboardService::TRANSACTION_addPrimaryClipChangedListener) {}

AccessibilityManager::AccessibilityManager(AppProcess* app)
    : helper_(app, AccessibilityService::kName,
              AccessibilityService::kDescriptor,
              AccessibilityService::TRANSACTION_addClient) {}

LauncherApps::LauncherApps(AppProcess* app)
    : helper_(app, LauncherAppsService::kName, LauncherAppsService::kDescriptor,
              LauncherAppsService::TRANSACTION_addOnAppsChangedListener) {}

TvInputManager::TvInputManager(AppProcess* app)
    : helper_(app, TvInputService::kName, TvInputService::kDescriptor,
              TvInputService::TRANSACTION_registerCallback, nullptr,
              [](binder::Parcel& p) { p.WriteInt32(0); /* userId */ }) {}

EthernetManager::EthernetManager(AppProcess* app)
    : helper_(app, EthernetService::kName, EthernetService::kDescriptor,
              EthernetService::TRANSACTION_addListener) {}

LocationManager::LocationManager(AppProcess* app)
    : measurements_(app, LocationService::kName, LocationService::kDescriptor,
                    LocationService::TRANSACTION_addGpsMeasurementsListener),
      navigation_(app, LocationService::kName, LocationService::kDescriptor,
                  LocationService::TRANSACTION_addGpsNavigationMessageListener) {}

WifiManager::WifiManager(AppProcess* app) : app_(app) {
  auto client = app_->GetService(WifiService::kName, WifiService::kDescriptor);
  if (client.ok()) client_ = client.value();
}

WifiManager::WifiLock WifiManager::CreateWifiLock(const std::string& tag) {
  return WifiLock(this, tag, /*multicast=*/false);
}

WifiManager::WifiLock WifiManager::CreateMulticastLock(const std::string& tag) {
  return WifiLock(this, tag, /*multicast=*/true);
}

Status WifiManager::WifiLock::Acquire() {
  if (held_) return Status::Ok();
  if (!manager_->client_.valid()) {
    return FailedPrecondition("wifi service unavailable");
  }
  binder_ = manager_->app_->NewBinder(
      (multicast_ ? "MulticastLock:" : "WifiLock:") + tag_);
  auto binder = binder_;
  const std::string tag = tag_;
  // Code-Snippet 1: acquire FIRST, then check the cap and roll back. The
  // service-side state is mutated before the helper's guard runs — which is
  // exactly why a direct binder caller never hits the guard at all.
  Status status =
      multicast_
          ? manager_->client_.Call(
                WifiService::TRANSACTION_acquireMulticastLock,
                [&](binder::Parcel& p) {
                  p.WriteStrongBinder(binder);
                  p.WriteString(tag);
                })
          : manager_->client_.Call(
                WifiService::TRANSACTION_acquireWifiLock,
                [&](binder::Parcel& p) {
                  p.WriteStrongBinder(binder);
                  p.WriteInt32(1);  // WIFI_MODE_FULL
                  p.WriteString(tag);
                });
  if (!status.ok()) return status;
  if (manager_->active_lock_count_ >= kMaxActiveLocks) {
    (void)manager_->client_.Call(
        multicast_ ? WifiService::TRANSACTION_releaseMulticastLock
                   : WifiService::TRANSACTION_releaseWifiLock,
        [&](binder::Parcel& p) { p.WriteStrongBinder(binder); });
    return LimitExceeded("Exceeded maximum number of wifi locks");
  }
  ++manager_->active_lock_count_;
  held_ = true;
  return Status::Ok();
}

Status WifiManager::WifiLock::Release() {
  if (!held_) return Status::Ok();
  Status status = manager_->client_.Call(
      multicast_ ? WifiService::TRANSACTION_releaseMulticastLock
                 : WifiService::TRANSACTION_releaseWifiLock,
      [&](binder::Parcel& p) { p.WriteStrongBinder(binder_); });
  held_ = false;
  --manager_->active_lock_count_;
  return status;
}

}  // namespace jgre::services
