#include "services/package_manager.h"

#include "common/strings.h"

namespace jgre::services {

std::string_view ProtectionLevelName(ProtectionLevel level) {
  switch (level) {
    case ProtectionLevel::kNormal:
      return "normal";
    case ProtectionLevel::kDangerous:
      return "dangerous";
    case ProtectionLevel::kSignature:
      return "signature";
  }
  return "unknown";
}

PackageManager::PackageManager() {
  // Platform permissions referenced by Table I.
  DefinePermission(perms::kAccessFineLocation, ProtectionLevel::kDangerous);
  DefinePermission(perms::kUseSip, ProtectionLevel::kDangerous);
  DefinePermission(perms::kReadPhoneState, ProtectionLevel::kDangerous);
  DefinePermission(perms::kBluetooth, ProtectionLevel::kNormal);
  DefinePermission(perms::kWakeLock, ProtectionLevel::kNormal);
  DefinePermission(perms::kChangeWifiMulticastState, ProtectionLevel::kNormal);
  DefinePermission(perms::kGetPackageSize, ProtectionLevel::kNormal);
  DefinePermission(perms::kChangeNetworkState, ProtectionLevel::kNormal);
  DefinePermission(perms::kAccessNetworkState, ProtectionLevel::kNormal);
}

void PackageManager::DefinePermission(const std::string& name,
                                      ProtectionLevel level) {
  permissions_[name] = level;
}

void PackageManager::InstallPackage(const std::string& package, Uid uid,
                                    const std::set<std::string>& granted) {
  packages_[package] = PackageInfo{uid, granted};
  uid_to_package_[uid] = package;
}

void PackageManager::UninstallPackage(const std::string& package) {
  auto it = packages_.find(package);
  if (it == packages_.end()) return;
  uid_to_package_.erase(it->second.uid);
  packages_.erase(it);
}

void PackageManager::GrantPermission(const std::string& package,
                                     const std::string& perm) {
  if (auto it = packages_.find(package); it != packages_.end()) {
    it->second.granted.insert(perm);
  }
}

void PackageManager::RevokePermission(const std::string& package,
                                      const std::string& perm) {
  if (auto it = packages_.find(package); it != packages_.end()) {
    it->second.granted.erase(perm);
  }
}

bool PackageManager::CheckPermission(Uid uid,
                                     const std::string& permission) const {
  if (uid == kRootUid || uid == kSystemUid) return true;
  auto pkg_it = uid_to_package_.find(uid);
  if (pkg_it == uid_to_package_.end()) return false;
  const PackageInfo& info = packages_.at(pkg_it->second);
  return info.granted.count(permission) > 0;
}

Result<std::string> PackageManager::GetPackageForUid(Uid uid) const {
  auto it = uid_to_package_.find(uid);
  if (it == uid_to_package_.end()) {
    return NotFound(StrCat("no package for uid ", uid.value()));
  }
  return it->second;
}

Result<Uid> PackageManager::GetUidForPackage(const std::string& package) const {
  auto it = packages_.find(package);
  if (it == packages_.end()) {
    return NotFound(StrCat("no package named ", package));
  }
  return it->second.uid;
}

Result<ProtectionLevel> PackageManager::GetProtectionLevel(
    const std::string& perm) const {
  auto it = permissions_.find(perm);
  if (it == permissions_.end()) {
    return NotFound(StrCat("undeclared permission ", perm));
  }
  return it->second;
}

std::vector<std::string> PackageManager::InstalledPackages() const {
  std::vector<std::string> out;
  out.reserve(packages_.size());
  for (const auto& [name, info] : packages_) out.push_back(name);
  return out;
}

}  // namespace jgre::services
