#include "services/safe_service.h"

#include "common/strings.h"

namespace jgre::services {

GenericSafeService::GenericSafeService(SystemContext* sys,
                                       const std::string& name)
    : RegistryServiceBase(
          sys, name, StrCat("android.os.I", name, "Service"),
          sys->system_server_pid,
          {StrCat(name, ".CallbackSlot"), StrCat(name, ".PerProcess")},
          {
              {TRANSACTION_query, "query", MethodKind::kQuery,
               {ArgKind::kInt32}, 0, nullptr, CostProfile{160, 0.0, 120}},
              // Binder parameter used inside the call only: reclaimed by GC
              // right after (sift rules 2/3 — not exploitable).
              {TRANSACTION_oneShot, "oneShot", MethodKind::kTransient,
               {ArgKind::kBinder}, 0, nullptr, CostProfile{240, 0.0, 180}},
              // Member-variable slot: re-registration replaces the previous
              // binder (sift rule 4 — not exploitable).
              {TRANSACTION_setCallback, "setCallback",
               MethodKind::kReplaceSingle, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{260, 0.0, 200}},
              // A second member-variable slot on its own registry: observer
              // re-registration swaps the previous binder out (rule 4 again,
              // on a distinct piece of service state).
              {TRANSACTION_registerObserver, "registerObserver",
               MethodKind::kReplaceSingle, {ArgKind::kBinder}, 1, nullptr,
               CostProfile{280, 0.0, 220}},
              // JGR-safe but fd-UNSAFE: dups the caller's descriptor into
              // system_server and never closes it (dropbox addFile-style).
              // The JGRE pipeline correctly classifies this method as not
              // JGR-exploitable — and §VI explains why that is not the same
              // as safe.
              {TRANSACTION_addFile, "addFile", MethodKind::kConsumeFd,
               {ArgKind::kString, ArgKind::kFd}, 0, nullptr,
               CostProfile{350, 0.0, 250}},
          }) {}

const std::vector<std::string>& GenericSafeService::SafeServiceNames() {
  // 71 generic services + the 33 modeled ones (32 vulnerable + the protected
  // display service) = the 104-service census of Android 6.0.1. Names follow
  // `adb shell service list` on a Nexus 5X running 6.0.1.
  static const std::vector<std::string> kNames = {
      "account", "alarm", "appwidget", "assetatlas", "backup", "battery",
      "batteryproperties", "batterystats", "carrier_config",
      "commontime_management", "consumer_ir", "cpuinfo", "dbinfo",
      "device_policy", "deviceidle", "devicestoragemonitor", "diskstats",
      "dreams", "dropbox", "gfxinfo", "graphicsstats", "hdmi_control", "isms",
      "isub", "jobscheduler", "lock_settings", "media.audio_flinger",
      "media.audio_policy", "media.camera", "media.player",
      "media.resource_manager", "meminfo", "netpolicy", "netstats",
      "network_score", "permission", "persistent_data_block", "phone",
      "pinner", "processinfo", "procstats", "restrictions", "rttmanager",
      "samplingprofiler", "scheduling_policy", "search", "sensorservice",
      "serial", "servicediscovery", "simphonebook", "soundtrigger",
      "statusbar", "telecom", "trust", "uimode", "updatelock", "usagestats",
      "usb", "user", "vibrator", "voiceinteraction", "webviewupdate",
      "wifip2p", "wifiscanner", "drm.drmManager", "android.security.keystore",
      "SurfaceFlinger", "display.qservice", "media.log", "bluetooth_a2dp",
      "nfc",
  };
  return kNames;
}

}  // namespace jgre::services
