#include "services/audio_service.h"

namespace jgre::services {

namespace {
// startWatchingRoutes merely appends an observer to AudioRoutesInfo state:
// tiny base and growth — the fastest JGR accumulation in Fig 3 (~100 s).
constexpr CostProfile kWatchRoutesCost{300, 0.28, 150};
constexpr CostProfile kRegisterControllerCost{800, 0.60, 400};
constexpr CostProfile kVolumeCost{150, 0.0, 80};
}  // namespace

AudioService::AudioService(SystemContext* sys)
    : SystemService(sys, kName, kDescriptor),
      remote_controllers_(sys->driver, sys->system_server_pid,
                          "audio.RemoteControllers"),
      routes_observers_(sys->driver, sys->system_server_pid,
                        "audio.RoutesObservers") {}

Status AudioService::OnTransact(std::uint32_t code,
                                const binder::Parcel& data,
                                binder::Parcel* reply,
                                const binder::CallContext& ctx) {
  JGRE_RETURN_IF_ERROR(data.EnforceInterface(kDescriptor));
  switch (code) {
    case TRANSACTION_registerRemoteController: {
      Charge(ctx, kRegisterControllerCost,
             remote_controllers_.RegisteredCount());
      auto controller = data.ReadStrongBinder(ctx);
      if (!controller.ok()) return controller.status();
      if (controller.value().valid()) {
        remote_controllers_.Register(controller.value());
      }
      reply->WriteBool(true);
      return Status::Ok();
    }
    case TRANSACTION_unregisterRemoteControlDisplay: {
      Charge(ctx, kVolumeCost, remote_controllers_.RegisteredCount());
      auto controller = data.ReadStrongBinder(ctx);
      if (!controller.ok()) return controller.status();
      if (controller.value().valid()) {
        remote_controllers_.Unregister(controller.value().node);
      }
      return Status::Ok();
    }
    case TRANSACTION_startWatchingRoutes: {
      // Returns the current AudioRoutesInfo and retains the observer forever
      // (there is no unregister counterpart in AOSP 6).
      Charge(ctx, kWatchRoutesCost, routes_observers_.RegisteredCount());
      auto observer = data.ReadStrongBinder(ctx);
      if (!observer.ok()) return observer.status();
      if (observer.value().valid()) routes_observers_.Register(observer.value());
      reply->WriteInt32(0);  // flattened AudioRoutesInfo
      return Status::Ok();
    }
    case TRANSACTION_getStreamVolume: {
      Charge(ctx, kVolumeCost, 0);
      reply->WriteInt32(stream_volume_);
      return Status::Ok();
    }
    case TRANSACTION_setStreamVolume: {
      Charge(ctx, kVolumeCost, 0);
      auto vol = data.ReadInt32();
      if (!vol.ok()) return vol.status();
      stream_volume_ = vol.value();
      return Status::Ok();
    }
    default:
      return InvalidArgument("unknown audio transaction");
  }
}

}  // namespace jgre::services
