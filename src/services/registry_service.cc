#include "services/registry_service.h"

#include <cassert>

#include "common/strings.h"

namespace jgre::services {

Status SessionBinder::OnTransact(std::uint32_t /*code*/,
                                 const binder::Parcel& /*data*/,
                                 binder::Parcel* /*reply*/,
                                 const binder::CallContext& ctx) {
  ctx.clock->AdvanceUs(80);
  return Status::Ok();
}

RegistryServiceBase::RegistryServiceBase(SystemContext* sys,
                                         std::string service_name,
                                         std::string descriptor, Pid host_pid,
                                         std::vector<std::string> registry_names,
                                         std::vector<MethodSpec> methods)
    : SystemService(sys, std::move(service_name), std::move(descriptor)),
      host_pid_(host_pid),
      methods_(std::move(methods)) {
  registries_.resize(registry_names.empty() ? 1 : registry_names.size());
  for (std::size_t i = 0; i < registries_.size(); ++i) {
    const std::string reg_name =
        i < registry_names.size() ? registry_names[i]
                                  : StrCat(this->service_name(), ".registry", i);
    registries_[i].callbacks = std::make_unique<binder::RemoteCallbackList>(
        sys_->driver, host_pid_, reg_name);
    // A dying client tears down its session binder too.
    auto* reg = &registries_[i];
    registries_[i].callbacks->SetOnCallbackDied(
        [this, reg](NodeId node) { DropSession(*reg, node); });
  }
}

const MethodSpec* RegistryServiceBase::FindMethod(std::uint32_t code) const {
  for (const MethodSpec& spec : methods_) {
    if (spec.code == code) return &spec;
  }
  return nullptr;
}

std::size_t RegistryServiceBase::RegistryCount(int registry) const {
  return registries_.at(static_cast<std::size_t>(registry))
      .callbacks->RegisteredCount();
}

std::size_t RegistryServiceBase::SessionCount(int registry) const {
  return registries_.at(static_cast<std::size_t>(registry)).sessions.size();
}

std::int64_t RegistryServiceBase::ConsumedFds(int registry) const {
  return registries_.at(static_cast<std::size_t>(registry)).consumed_fds;
}

Status RegistryServiceBase::ReadArgs(
    const MethodSpec& spec, const binder::Parcel& data,
    const binder::CallContext& ctx,
    std::vector<binder::StrongBinder>* binders, int* fds_received,
    std::vector<std::int64_t>* scalars) const {
  for (ArgKind kind : spec.args) {
    switch (kind) {
      case ArgKind::kInt32: {
        auto v = data.ReadInt32();
        if (!v.ok()) return v.status();
        if (scalars != nullptr) scalars->push_back(v.value());
        break;
      }
      case ArgKind::kInt64: {
        auto v = data.ReadInt64();
        if (!v.ok()) return v.status();
        if (scalars != nullptr) scalars->push_back(v.value());
        break;
      }
      case ArgKind::kBool: {
        auto v = data.ReadBool();
        if (!v.ok()) return v.status();
        break;
      }
      case ArgKind::kString: {
        auto v = data.ReadString();
        if (!v.ok()) return v.status();
        break;
      }
      case ArgKind::kByteArray: {
        auto v = data.ReadByteArray();
        if (!v.ok()) return v.status();
        break;
      }
      case ArgKind::kBinder: {
        auto v = data.ReadStrongBinder(ctx);  // JGR side effect happens here
        if (!v.ok()) return v.status();
        binders->push_back(v.value());
        break;
      }
      case ArgKind::kFd: {
        // Dups into the host's fd table; fatal for system_server at EMFILE.
        JGRE_RETURN_IF_ERROR(data.ReadFileDescriptor(ctx));
        ++*fds_received;
        break;
      }
    }
  }
  return Status::Ok();
}

void RegistryServiceBase::DropSession(Registry& reg, NodeId client_node) {
  auto it = reg.sessions.find(client_node);
  if (it == reg.sessions.end()) return;
  sys_->driver->ReleaseNode(it->second);
  reg.sessions.erase(it);
}

void RegistryServiceBase::SaveState(snapshot::Serializer& out) const {
  SystemService::SaveState(out);
  out.U64(registries_.size());
  for (const Registry& reg : registries_) {
    reg.callbacks->SaveState(out);
    out.U64(reg.sessions.size());
    for (const auto& [client, session] : reg.sessions) {  // std::map: sorted
      out.I64(client.value());
      out.I64(session.value());
    }
    out.U64(reg.per_process.size());
    for (const auto& [pid, node] : reg.per_process) {
      out.I64(pid.value());
      out.I64(node.value());
    }
    out.I64(reg.single_slot.value());
    out.I64(reg.consumed_fds);
    out.U64(reg.minted_tokens.size());
    for (std::int64_t token : reg.minted_tokens) out.I64(token);
    out.I64(reg.next_token_seq);
  }
}

void RegistryServiceBase::RestoreState(snapshot::Deserializer& in) {
  SystemService::RestoreState(in);
  if (in.U64() != registries_.size()) {
    in.Fail(StrCat(service_name(), ": registry count mismatch on restore"));
    return;
  }
  for (Registry& reg : registries_) {
    reg.callbacks->RestoreState(in);
    reg.sessions.clear();
    for (std::uint64_t i = 0, n = in.U64(); i < n && in.ok(); ++i) {
      const NodeId client{in.I64()};
      reg.sessions.emplace(client, NodeId{in.I64()});
    }
    reg.per_process.clear();
    for (std::uint64_t i = 0, n = in.U64(); i < n && in.ok(); ++i) {
      const Pid pid{static_cast<std::int32_t>(in.I64())};
      reg.per_process.emplace(pid, NodeId{in.I64()});
    }
    reg.single_slot = NodeId{in.I64()};
    reg.consumed_fds = in.I64();
    reg.minted_tokens.clear();
    for (std::uint64_t i = 0, n = in.U64(); i < n && in.ok(); ++i) {
      reg.minted_tokens.insert(in.I64());
    }
    reg.next_token_seq = in.I64();
  }
}

Status RegistryServiceBase::OnTransact(std::uint32_t code,
                                       const binder::Parcel& data,
                                       binder::Parcel* reply,
                                       const binder::CallContext& ctx) {
  JGRE_RETURN_IF_ERROR(data.EnforceInterface(InterfaceDescriptor()));
  const MethodSpec* spec = FindMethod(code);
  if (spec == nullptr) {
    return InvalidArgument(
        StrCat(service_name(), ": unknown transaction ", code));
  }
  if (spec->permission != nullptr) {
    JGRE_RETURN_IF_ERROR(Enforce(ctx, spec->permission));
  }
  Registry& reg = registries_.at(static_cast<std::size_t>(spec->registry));
  // Execution cost scales with the state this method's registry holds
  // (Observation 2 / Fig 5).
  Charge(ctx, spec->cost,
         reg.callbacks->RegisteredCount() + reg.sessions.size());

  std::vector<binder::StrongBinder> binders;
  int fds_received = 0;
  std::vector<std::int64_t> scalars;
  JGRE_RETURN_IF_ERROR(
      ReadArgs(*spec, data, ctx, &binders, &fds_received, &scalars));

  switch (spec->kind) {
    case MethodKind::kQuery:
      if (reply != nullptr) reply->WriteInt32(0);
      return Status::Ok();

    case MethodKind::kTransient:
      // Binder used within the call only; nothing retained. The proxy object
      // is unheld and the next GC reclaims its JGR (sift rules 2/3).
      if (reply != nullptr) reply->WriteInt32(0);
      return Status::Ok();

    case MethodKind::kConsumeFd:
      // The received fds were already dup'd into the host in ReadArgs; this
      // buggy handler keeps them forever (never close()d). No JGR was
      // created, so the JGRE monitor sees nothing.
      reg.consumed_fds += fds_received;
      if (reply != nullptr) reply->WriteInt32(0);
      return Status::Ok();

    case MethodKind::kRegister: {
      for (const binder::StrongBinder& b : binders) {
        if (b.valid()) reg.callbacks->Register(b);
      }
      if (reply != nullptr) reply->WriteInt32(0);
      return Status::Ok();
    }

    case MethodKind::kUnregister: {
      for (const binder::StrongBinder& b : binders) {
        if (b.valid()) {
          DropSession(reg, b.node);
          reg.callbacks->Unregister(b.node);
        }
      }
      return Status::Ok();
    }

    case MethodKind::kSession: {
      if (binders.empty() || !binders.front().valid()) {
        return InvalidArgument(StrCat(spec->method, ": null callback"));
      }
      const binder::StrongBinder& client = binders.front();
      if (reg.callbacks->Register(client)) {
        // Server-side session object: one more node + JavaBBinder JGR in the
        // host process, torn down when the client unregisters or dies.
        auto session = sys_->driver->MakeBinder<SessionBinder>(
            host_pid_, StrCat(InterfaceDescriptor(), ".", spec->method,
                              ".Session"));
        reg.sessions.emplace(client.node, session->node());
        if (reply != nullptr) reply->WriteStrongBinder(session);
      } else if (reply != nullptr) {
        reply->WriteNullBinder();  // already registered
      }
      return Status::Ok();
    }

    case MethodKind::kRegisterPerProcess: {
      if (binders.empty() || !binders.front().valid()) {
        return InvalidArgument(StrCat(spec->method, ": null callback"));
      }
      // Correct per-process constraint (Table III "Yes" rows): AOSP's
      // DisplayManagerService/InputManagerService reject a second
      // registration from the same process outright ("may not register more
      // than once per process"), so a single caller cannot grow the table.
      auto it = reg.per_process.find(ctx.calling_pid);
      if (it != reg.per_process.end() &&
          reg.callbacks->IsRegistered(it->second)) {
        return LimitExceeded(
            StrCat(spec->method,
                   ": caller may not register more than once per process"));
      }
      reg.callbacks->Register(binders.front());
      reg.per_process[ctx.calling_pid] = binders.front().node;
      return Status::Ok();
    }

    case MethodKind::kMintToken: {
      // Mint a capability token the caller must echo into kRegisterGated
      // calls. High bits keep the token space disjoint from anything a
      // protocol-blind fuzzer draws from its scalar dictionary; the low bits
      // come from a per-registry counter so replay is deterministic.
      const std::int64_t token =
          (std::int64_t{0x4A47} << 48) |
          ((reg.next_token_seq++ * std::int64_t{2654435761}) &
           std::int64_t{0xFFFF'FFFF'FFFF});
      reg.minted_tokens.insert(token);
      if (reply != nullptr) reply->WriteInt64(token);
      return Status::Ok();
    }

    case MethodKind::kRegisterGated: {
      // Dependency-aware retention (BinderCracker §IV): the callback binder
      // is retained only behind a previously minted token, so single-call
      // fuzzing never reaches the collection sink.
      if (scalars.empty() || reg.minted_tokens.count(scalars.front()) == 0) {
        return InvalidArgument(
            StrCat(spec->method, ": unknown protocol token"));
      }
      for (const binder::StrongBinder& b : binders) {
        if (b.valid()) reg.callbacks->Register(b);
      }
      if (reply != nullptr) reply->WriteInt32(0);
      return Status::Ok();
    }

    case MethodKind::kReplaceSingle: {
      if (binders.empty() || !binders.front().valid()) {
        return InvalidArgument(StrCat(spec->method, ": null callback"));
      }
      // Member-variable pattern (sift rule 4): the previous binder is
      // released when a new one is assigned.
      if (reg.single_slot.valid()) {
        reg.callbacks->Unregister(reg.single_slot);
      }
      reg.callbacks->Register(binders.front());
      reg.single_slot = binders.front().node;
      return Status::Ok();
    }
  }
  return Internal("unhandled method kind");
}

}  // namespace jgre::services
