// LocationManagerService — GPS listener interfaces.
//
// `addGpsStatusListener` (Table I, ACCESS_FINE_LOCATION/dangerous) and the
// two measurement/navigation listener interfaces (Table II — capped only in
// the LocationManager helper) all retain the caller's listener binder until
// removal or death.
#ifndef JGRE_SERVICES_LOCATION_SERVICE_H_
#define JGRE_SERVICES_LOCATION_SERVICE_H_

#include "services/system_service.h"

namespace jgre::services {

class LocationService : public SystemService {
 public:
  static constexpr const char* kName = "location";
  static constexpr const char* kDescriptor =
      "android.location.ILocationManager";

  enum Code : std::uint32_t {
    TRANSACTION_addGpsStatusListener = 1,
    TRANSACTION_removeGpsStatusListener = 2,
    TRANSACTION_addGpsMeasurementsListener = 3,
    TRANSACTION_removeGpsMeasurementsListener = 4,
    TRANSACTION_addGpsNavigationMessageListener = 5,
    TRANSACTION_removeGpsNavigationMessageListener = 6,
    TRANSACTION_getLastLocation = 7,
  };

  explicit LocationService(SystemContext* sys);

  Status OnTransact(std::uint32_t code, const binder::Parcel& data,
                    binder::Parcel* reply,
                    const binder::CallContext& ctx) override;

  std::size_t GpsStatusListenerCount() const {
    return gps_status_listeners_.RegisteredCount();
  }
  std::size_t MeasurementsListenerCount() const {
    return measurements_listeners_.RegisteredCount();
  }
  std::size_t NavigationListenerCount() const {
    return navigation_listeners_.RegisteredCount();
  }

  void SaveState(snapshot::Serializer& out) const override {
    SystemService::SaveState(out);
    gps_status_listeners_.SaveState(out);
    measurements_listeners_.SaveState(out);
    navigation_listeners_.SaveState(out);
  }
  void RestoreState(snapshot::Deserializer& in) override {
    SystemService::RestoreState(in);
    gps_status_listeners_.RestoreState(in);
    measurements_listeners_.RestoreState(in);
    navigation_listeners_.RestoreState(in);
  }

 private:
  binder::RemoteCallbackList gps_status_listeners_;
  binder::RemoteCallbackList measurements_listeners_;
  binder::RemoteCallbackList navigation_listeners_;
};

}  // namespace jgre::services

#endif  // JGRE_SERVICES_LOCATION_SERVICE_H_
