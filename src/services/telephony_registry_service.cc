#include "services/telephony_registry_service.h"

#include <algorithm>

namespace jgre::services {

namespace {
// Fig 5: base ~200 µs growing ~1 µs per stored Record — ~50 ms at 50k calls.
constexpr CostProfile kListenCost{200, 2.0, 300};
constexpr CostProfile kAddSubListenerCost{350, 0.45, 250};
}  // namespace

TelephonyRegistryService::TelephonyRegistryService(SystemContext* sys)
    : SystemService(sys, kName, kDescriptor),
      listeners_(sys->driver, sys->system_server_pid,
                 "telephony.registry.Records"),
      subscription_listeners_(sys->driver, sys->system_server_pid,
                              "telephony.registry.SubscriptionListeners") {
  listeners_.SetOnCallbackDied([this](NodeId node) { RemoveRecord(node); });
}

void TelephonyRegistryService::RemoveRecord(NodeId node) {
  records_.erase(std::remove_if(records_.begin(), records_.end(),
                                [node](const Record& r) {
                                  return r.node == node;
                                }),
                 records_.end());
}

Status TelephonyRegistryService::HandleListen(const binder::Parcel& data,
                                              const binder::CallContext& ctx,
                                              std::int32_t sub_id) {
  Charge(ctx, kListenCost, records_.size());
  auto pkg = data.ReadString();
  if (!pkg.ok()) return pkg.status();
  auto callback = data.ReadStrongBinder(ctx);  // IPhoneStateListener
  if (!callback.ok()) return callback.status();
  auto events = data.ReadInt32();
  if (!events.ok()) return events.status();
  if (!callback.value().valid()) {
    return InvalidArgument("listen: null callback");
  }
  // Existing record for this binder is updated in place (benign clients call
  // listen() repeatedly with the SAME PhoneStateListener — no growth).
  auto existing = std::find_if(records_.begin(), records_.end(),
                               [&](const Record& r) {
                                 return r.node == callback.value().node;
                               });
  if (events.value() == 0 /* LISTEN_NONE */) {
    if (existing != records_.end()) {
      records_.erase(existing);
      listeners_.Unregister(callback.value().node);
    }
    return Status::Ok();
  }
  if (existing != records_.end()) {
    existing->events = events.value();
    existing->sub_id = sub_id;
    return Status::Ok();
  }
  // Fresh binder => new Record retained until LISTEN_NONE or caller death.
  listeners_.Register(callback.value());
  records_.push_back(
      Record{callback.value().node, pkg.value(), sub_id, events.value()});
  return Status::Ok();
}

void TelephonyRegistryService::SaveState(snapshot::Serializer& out) const {
  SystemService::SaveState(out);
  listeners_.SaveState(out);
  out.U64(records_.size());
  for (const Record& record : records_) {  // vector: registration order
    out.I64(record.node.value());
    out.Str(record.pkg);
    out.I64(record.sub_id);
    out.I64(record.events);
  }
  subscription_listeners_.SaveState(out);
}

void TelephonyRegistryService::RestoreState(snapshot::Deserializer& in) {
  SystemService::RestoreState(in);
  listeners_.RestoreState(in);
  records_.clear();
  for (std::uint64_t i = 0, n = in.U64(); i < n && in.ok(); ++i) {
    Record record;
    record.node = NodeId{in.I64()};
    record.pkg = in.Str();
    record.sub_id = static_cast<std::int32_t>(in.I64());
    record.events = static_cast<std::int32_t>(in.I64());
    records_.push_back(std::move(record));
  }
  subscription_listeners_.RestoreState(in);
}

Status TelephonyRegistryService::OnTransact(std::uint32_t code,
                                            const binder::Parcel& data,
                                            binder::Parcel* reply,
                                            const binder::CallContext& ctx) {
  (void)reply;
  JGRE_RETURN_IF_ERROR(data.EnforceInterface(kDescriptor));
  switch (code) {
    case TRANSACTION_listen:
      JGRE_RETURN_IF_ERROR(Enforce(ctx, perms::kReadPhoneState));
      return HandleListen(data, ctx, /*sub_id=*/0);
    case TRANSACTION_listenForSubscriber: {
      JGRE_RETURN_IF_ERROR(Enforce(ctx, perms::kReadPhoneState));
      auto sub_id = data.ReadInt32();
      if (!sub_id.ok()) return sub_id.status();
      return HandleListen(data, ctx, sub_id.value());
    }
    case TRANSACTION_addOnSubscriptionsChangedListener: {
      JGRE_RETURN_IF_ERROR(Enforce(ctx, perms::kReadPhoneState));
      Charge(ctx, kAddSubListenerCost,
             subscription_listeners_.RegisteredCount());
      auto pkg = data.ReadString();
      if (!pkg.ok()) return pkg.status();
      auto listener = data.ReadStrongBinder(ctx);
      if (!listener.ok()) return listener.status();
      if (listener.value().valid()) {
        subscription_listeners_.Register(listener.value());
      }
      return Status::Ok();
    }
    case TRANSACTION_removeOnSubscriptionsChangedListener: {
      Charge(ctx, kAddSubListenerCost,
             subscription_listeners_.RegisteredCount());
      auto listener = data.ReadStrongBinder(ctx);
      if (!listener.ok()) return listener.status();
      if (listener.value().valid()) {
        subscription_listeners_.Unregister(listener.value().node);
      }
      return Status::Ok();
    }
    default:
      return InvalidArgument("unknown telephony.registry transaction");
  }
}

}  // namespace jgre::services
