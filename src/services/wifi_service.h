// WifiService (WifiServiceImpl) — the first JGRE vulnerability ever fixed
// (2009) and the canonical helper-class defense (Code-Snippet 1).
//
// `acquireWifiLock` / `acquireMulticastLock` retain the caller's lock binder
// until release or death. The cap — `MAX_ACTIVE_LOCKS = 50` with the famous
// comment "prevent apps from creating a ridiculous number of locks and
// crashing the system by overflowing the global ref table" — lives in the
// WifiManager *helper*, not here, so direct binder calls bypass it entirely
// (§IV.C.1, Code-Snippet 2).
#ifndef JGRE_SERVICES_WIFI_SERVICE_H_
#define JGRE_SERVICES_WIFI_SERVICE_H_

#include <string>
#include <unordered_map>

#include "services/system_service.h"

namespace jgre::services {

class WifiService : public SystemService {
 public:
  static constexpr const char* kName = "wifi";
  static constexpr const char* kDescriptor = "android.net.wifi.IWifiManager";

  enum Code : std::uint32_t {
    TRANSACTION_acquireWifiLock = 1,
    TRANSACTION_releaseWifiLock = 2,
    TRANSACTION_acquireMulticastLock = 3,
    TRANSACTION_releaseMulticastLock = 4,
    TRANSACTION_getWifiEnabledState = 5,
  };

  explicit WifiService(SystemContext* sys);

  Status OnTransact(std::uint32_t code, const binder::Parcel& data,
                    binder::Parcel* reply,
                    const binder::CallContext& ctx) override;

  std::size_t WifiLockCount() const { return wifi_locks_.RegisteredCount(); }
  std::size_t MulticastLockCount() const {
    return multicast_locks_.RegisteredCount();
  }

  void SaveState(snapshot::Serializer& out) const override {
    SystemService::SaveState(out);
    wifi_locks_.SaveState(out);
    multicast_locks_.SaveState(out);
    snapshot::SaveUnorderedMap(
        out, lock_tags_,
        [](snapshot::Serializer& s, NodeId node, const std::string& tag) {
          s.I64(node.value());
          s.Str(tag);
        });
  }
  void RestoreState(snapshot::Deserializer& in) override {
    SystemService::RestoreState(in);
    wifi_locks_.RestoreState(in);
    multicast_locks_.RestoreState(in);
    lock_tags_.clear();
    for (std::uint64_t i = 0, n = in.U64(); i < n && in.ok(); ++i) {
      const NodeId node{in.I64()};
      lock_tags_.emplace(node, in.Str());
    }
  }

 private:
  // WifiLockList / multicast lockers: binder-token keyed, death-pruned.
  binder::RemoteCallbackList wifi_locks_;
  binder::RemoteCallbackList multicast_locks_;
  std::unordered_map<NodeId, std::string> lock_tags_;
};

}  // namespace jgre::services

#endif  // JGRE_SERVICES_WIFI_SERVICE_H_
