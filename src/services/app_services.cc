#include "services/app_services.h"

namespace jgre::services {

TextToSpeechService::TextToSpeechService(SystemContext* sys,
                                         const std::string& service_name,
                                         Pid host_pid)
    : RegistryServiceBase(
          sys, service_name, kDescriptor, host_pid, {"tts.Callbacks"},
          {
              // setCallback(IBinder caller, ITextToSpeechCallback cb): the
              // default implementation maps caller binder -> callback and
              // releases entries only on caller death.
              {TRANSACTION_setCallback, "setCallback", MethodKind::kRegister,
               {ArgKind::kBinder, ArgKind::kBinder}, 0, nullptr,
               CostProfile{600, 1.10, 900}},
              {TRANSACTION_speak, "speak", MethodKind::kQuery,
               {ArgKind::kString}, 0, nullptr, CostProfile{900, 0.0, 600}},
              {TRANSACTION_stop, "stop", MethodKind::kQuery, {}, 0, nullptr,
               CostProfile{250, 0.0, 150}},
          }) {}

GattService::GattService(SystemContext* sys, Pid host_pid)
    : RegistryServiceBase(
          sys, kName, kDescriptor, host_pid, {"gatt.ServerMap"},
          {
              // registerServer(ParcelUuid, IBluetoothGattServerCallback)
              {TRANSACTION_registerServer, "registerServer",
               MethodKind::kSession, {ArgKind::kString, ArgKind::kBinder}, 0,
               nullptr, CostProfile{800, 1.40, 1100}},
              {TRANSACTION_unregisterServer, "unregisterServer",
               MethodKind::kUnregister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{350, 0.40, 300}},
          }) {}

BluetoothAdapterService::BluetoothAdapterService(SystemContext* sys,
                                                 Pid host_pid)
    : RegistryServiceBase(
          sys, kName, kDescriptor, host_pid, {"adapter.Callbacks"},
          {
              {TRANSACTION_registerCallback, "registerCallback",
               MethodKind::kRegister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{420, 0.90, 600}},
              {TRANSACTION_unregisterCallback, "unregisterCallback",
               MethodKind::kUnregister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{260, 0.35, 250}},
              {TRANSACTION_getState, "getState", MethodKind::kQuery, {}, 0,
               nullptr, CostProfile{120, 0.0, 80}},
          }) {}

OpenVpnApiService::OpenVpnApiService(SystemContext* sys,
                                     const std::string& service_name,
                                     Pid host_pid)
    : RegistryServiceBase(
          sys, service_name, kDescriptor, host_pid, {"openvpn.StatusCallbacks"},
          {
              {TRANSACTION_registerStatusCallback, "registerStatusCallback",
               MethodKind::kRegister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{500, 1.00, 700}},
              {TRANSACTION_unregisterStatusCallback,
               "unregisterStatusCallback", MethodKind::kUnregister,
               {ArgKind::kBinder}, 0, nullptr, CostProfile{280, 0.35, 250}},
          }) {}

SnapMovieMainService::SnapMovieMainService(SystemContext* sys,
                                           const std::string& service_name,
                                           Pid host_pid)
    : RegistryServiceBase(
          sys, service_name, kDescriptor, host_pid, {"snapmovie.Callbacks"},
          {
              // The decompiled interface exposes a single obfuscated method
              // `a(IBinder)` that retains its argument.
              {TRANSACTION_a, "a", MethodKind::kRegister, {ArgKind::kBinder},
               0, nullptr, CostProfile{450, 0.95, 650}},
          }) {}

}  // namespace jgre::services
