#include "services/misc_system_services.h"

namespace jgre::services {

namespace {
constexpr Pid kHostIsSystemServer{};  // resolved in helper below
}

// Every service in this file runs as a thread of system_server.
static Pid Host(SystemContext* sys) {
  (void)kHostIsSystemServer;
  return sys->system_server_pid;
}

PowerService::PowerService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys), {"power.WakeLocks"},
          {
              // acquireWakeLock(IBinder lock, int flags, String tag, String pkg)
              {TRANSACTION_acquireWakeLock, "acquireWakeLock",
               MethodKind::kRegister,
               {ArgKind::kBinder, ArgKind::kInt32, ArgKind::kString,
                ArgKind::kString},
               0, perms::kWakeLock, CostProfile{450, 0.75, 600}},
              {TRANSACTION_releaseWakeLock, "releaseWakeLock",
               MethodKind::kUnregister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{260, 0.40, 250}},
              {TRANSACTION_isScreenOn, "isScreenOn", MethodKind::kQuery, {}, 0,
               nullptr, CostProfile{100, 0.0, 60}},
          }) {}

AppOpsService::AppOpsService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys),
          {"appops.ModeWatchers", "appops.ClientTokens"},
          {
              // startWatchingMode(int op, String pkg, IAppOpsCallback)
              {TRANSACTION_startWatchingMode, "startWatchingMode",
               MethodKind::kRegister,
               {ArgKind::kInt32, ArgKind::kString, ArgKind::kBinder}, 0,
               nullptr, CostProfile{260, 0.60, 400}},
              {TRANSACTION_stopWatchingMode, "stopWatchingMode",
               MethodKind::kUnregister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{200, 0.30, 200}},
              // getToken(IBinder clientToken) -> IBinder (kept in mClients)
              {TRANSACTION_getToken, "getToken", MethodKind::kSession,
               {ArgKind::kBinder}, 1, nullptr, CostProfile{400, 0.90, 500}},
              {TRANSACTION_checkOperation, "checkOperation", MethodKind::kQuery,
               {ArgKind::kInt32, ArgKind::kInt32, ArgKind::kString}, 0,
               nullptr, CostProfile{150, 0.0, 100}},
          }) {}

MountService::MountService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys), {"mount.Listeners"},
          {
              {TRANSACTION_registerListener, "registerListener",
               MethodKind::kRegister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{280, 0.90, 350}},
              {TRANSACTION_unregisterListener, "unregisterListener",
               MethodKind::kUnregister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{220, 0.40, 200}},
              {TRANSACTION_getVolumeState, "getVolumeState", MethodKind::kQuery,
               {ArgKind::kString}, 0, nullptr, CostProfile{130, 0.0, 80}},
          }) {}

ContentService::ContentService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys),
          {"content.Observers", "content.SyncStatusObservers"},
          {
              // registerContentObserver(String uri, boolean descendants,
              //                         IContentObserver)
              {TRANSACTION_registerContentObserver, "registerContentObserver",
               MethodKind::kRegister,
               {ArgKind::kString, ArgKind::kBool, ArgKind::kBinder}, 0,
               nullptr, CostProfile{350, 1.00, 800}},
              {TRANSACTION_unregisterContentObserver,
               "unregisterContentObserver", MethodKind::kUnregister,
               {ArgKind::kBinder}, 0, nullptr, CostProfile{260, 0.50, 300}},
              // addStatusChangeListener(int mask, ISyncStatusObserver)
              {TRANSACTION_addStatusChangeListener, "addStatusChangeListener",
               MethodKind::kRegister, {ArgKind::kInt32, ArgKind::kBinder}, 1,
               nullptr, CostProfile{300, 0.70, 500}},
              {TRANSACTION_removeStatusChangeListener,
               "removeStatusChangeListener", MethodKind::kUnregister,
               {ArgKind::kBinder}, 1, nullptr, CostProfile{220, 0.35, 200}},
          }) {}

CountryDetectorService::CountryDetectorService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys), {"country.Listeners"},
          {
              {TRANSACTION_addCountryListener, "addCountryListener",
               MethodKind::kRegister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{250, 0.65, 300}},
              {TRANSACTION_removeCountryListener, "removeCountryListener",
               MethodKind::kUnregister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{200, 0.30, 150}},
              {TRANSACTION_detectCountry, "detectCountry", MethodKind::kQuery,
               {}, 0, nullptr, CostProfile{400, 0.0, 200}},
          }) {}

BluetoothManagerService::BluetoothManagerService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys),
          {"btmgr.AdapterCallbacks", "btmgr.StateChangeCallbacks",
           "btmgr.ProfileConnections"},
          {
              {TRANSACTION_registerAdapter, "registerAdapter",
               MethodKind::kRegister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{320, 0.50, 350}},
              {TRANSACTION_unregisterAdapter, "unregisterAdapter",
               MethodKind::kUnregister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{240, 0.30, 200}},
              {TRANSACTION_registerStateChangeCallback,
               "registerStateChangeCallback", MethodKind::kRegister,
               {ArgKind::kBinder}, 1, perms::kBluetooth,
               CostProfile{300, 0.55, 400}},
              // bindBluetoothProfileService(int profile, connection)
              {TRANSACTION_bindBluetoothProfileService,
               "bindBluetoothProfileService", MethodKind::kRegister,
               {ArgKind::kInt32, ArgKind::kBinder}, 2, nullptr,
               CostProfile{600, 1.10, 900}},
              // The overload Table I lists as a second row.
              {TRANSACTION_bindBluetoothProfileService2,
               "bindBluetoothProfileService(IBinder)", MethodKind::kRegister,
               {ArgKind::kBinder}, 2, nullptr, CostProfile{620, 1.15, 900}},
              {TRANSACTION_isEnabled, "isEnabled", MethodKind::kQuery, {}, 0,
               nullptr, CostProfile{110, 0.0, 60}},
          }) {}

PackageService::PackageService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys), {"package.StatsObservers"},
          {
              // getPackageSizeInfo(String pkg, IPackageStatsObserver)
              {TRANSACTION_getPackageSizeInfo, "getPackageSizeInfo",
               MethodKind::kRegister, {ArgKind::kString, ArgKind::kBinder}, 0,
               perms::kGetPackageSize, CostProfile{900, 1.60, 1200}},
              {TRANSACTION_getPackageUid, "getPackageUid", MethodKind::kQuery,
               {ArgKind::kString}, 0, nullptr, CostProfile{200, 0.0, 120}},
          }) {}

FingerprintService::FingerprintService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys), {"fingerprint.LockoutCallbacks"},
          {
              {TRANSACTION_addLockoutResetCallback, "addLockoutResetCallback",
               MethodKind::kRegister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{320, 0.75, 450}},
              {TRANSACTION_isHardwareDetected, "isHardwareDetected",
               MethodKind::kQuery, {}, 0, nullptr, CostProfile{140, 0.0, 80}},
          }) {}

TextServicesService::TextServicesService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys), {"textservices.SpellCallbacks"},
          {
              // getSpellCheckerService(String sciId, String locale,
              //                        ISpellCheckerServiceCallback)
              {TRANSACTION_getSpellCheckerService, "getSpellCheckerService",
               MethodKind::kRegister,
               {ArgKind::kString, ArgKind::kString, ArgKind::kBinder}, 0,
               nullptr, CostProfile{600, 1.20, 1000}},
              {TRANSACTION_finishSpellCheckerService,
               "finishSpellCheckerService", MethodKind::kUnregister,
               {ArgKind::kBinder}, 0, nullptr, CostProfile{300, 0.40, 250}},
          }) {}

}  // namespace jgre::services
