// IpcClient — convenience wrapper for issuing binder calls from a process.
//
// This is the moral equivalent of an AIDL-generated Stub.Proxy, and also the
// tool of Code-Snippet 2: nothing stops an app from building the parcel
// itself and calling the service interface directly, which is precisely how
// malicious apps bypass the client-side caps in service helper classes
// (Table II).
#ifndef JGRE_SERVICES_IPC_CLIENT_H_
#define JGRE_SERVICES_IPC_CLIENT_H_

#include <functional>
#include <string>
#include <utility>

#include "common/status.h"
#include "common/types.h"
#include "binder/ibinder.h"
#include "binder/parcel.h"

namespace jgre::services {

class IpcClient {
 public:
  IpcClient() = default;
  IpcClient(binder::StrongBinder service, std::string descriptor)
      : service_(std::move(service)), descriptor_(std::move(descriptor)) {}

  bool valid() const { return service_.valid(); }
  const binder::StrongBinder& service() const { return service_; }
  const std::string& descriptor() const { return descriptor_; }

  // Writes the interface token, lets `write_args` fill the parcel, and
  // transacts. `reply` may be null when the caller ignores results.
  Status Call(std::uint32_t code,
              const std::function<void(binder::Parcel&)>& write_args,
              binder::Parcel* reply = nullptr) const;

  // No-argument convenience overload.
  Status Call(std::uint32_t code, binder::Parcel* reply = nullptr) const;

 private:
  binder::StrongBinder service_;
  std::string descriptor_;
};

}  // namespace jgre::services

#endif  // JGRE_SERVICES_IPC_CLIENT_H_
