#include "services/notification_service.h"

#include "common/log.h"

namespace jgre::services {

namespace {
// enqueueToast walks the queue (package counting + insertion); its linear
// growth plus a ~2 ms base makes it the slowest attack in Fig 3 (~1800 s).
constexpr CostProfile kEnqueueToastCost{2000, 5.80, 900};
constexpr CostProfile kCancelToastCost{400, 0.40, 200};
constexpr CostProfile kNotifyCost{900, 0.10, 400};
}  // namespace

NotificationService::NotificationService(SystemContext* sys)
    : SystemService(sys, kName, kDescriptor),
      callbacks_(sys->driver, sys->system_server_pid,
                 "notification.ToastCallbacks") {}

int NotificationService::CountForPackage(const std::string& pkg) const {
  int count = 0;
  for (const ToastRecord& record : toast_queue_) {
    if (record.pkg == pkg) ++count;
  }
  return count;
}

void NotificationService::ReleaseRecord(const ToastRecord& record) {
  auto it = records_per_node_.find(record.callback_node);
  if (it == records_per_node_.end()) return;
  if (--it->second <= 0) {
    records_per_node_.erase(it);
    callbacks_.Unregister(record.callback_node);
  }
}

void NotificationService::DrainShownToasts(const binder::CallContext& ctx) {
  // Toasts display sequentially: the head of the queue is "on screen" and is
  // retired after kToastDisplayUs, then the next one is shown.
  const TimeUs now = ctx.clock->NowUs();
  while (!toast_queue_.empty() &&
         now >= current_toast_shown_since_us_ + kToastDisplayUs) {
    ReleaseRecord(toast_queue_.front());
    toast_queue_.pop_front();
    current_toast_shown_since_us_ += kToastDisplayUs;
  }
  if (toast_queue_.empty()) current_toast_shown_since_us_ = now;
}

void NotificationService::SaveState(snapshot::Serializer& out) const {
  SystemService::SaveState(out);
  callbacks_.SaveState(out);
  out.U64(toast_queue_.size());
  for (const ToastRecord& record : toast_queue_) {  // deque: display order
    out.Str(record.pkg);
    out.I64(record.callback_node.value());
  }
  snapshot::SaveUnorderedMap(out, records_per_node_,
                             [](snapshot::Serializer& s, NodeId node, int n) {
                               s.I64(node.value());
                               s.I64(n);
                             });
  out.U64(current_toast_shown_since_us_);
  snapshot::SaveUnorderedMap(
      out, notifications_per_pkg_,
      [](snapshot::Serializer& s, const std::string& pkg, int n) {
        s.Str(pkg);
        s.I64(n);
      });
}

void NotificationService::RestoreState(snapshot::Deserializer& in) {
  SystemService::RestoreState(in);
  callbacks_.RestoreState(in);
  toast_queue_.clear();
  for (std::uint64_t i = 0, n = in.U64(); i < n && in.ok(); ++i) {
    ToastRecord record;
    record.pkg = in.Str();
    record.callback_node = NodeId{in.I64()};
    toast_queue_.push_back(std::move(record));
  }
  records_per_node_.clear();
  for (std::uint64_t i = 0, n = in.U64(); i < n && in.ok(); ++i) {
    const NodeId node{in.I64()};
    records_per_node_.emplace(node, static_cast<int>(in.I64()));
  }
  current_toast_shown_since_us_ = in.U64();
  notifications_per_pkg_.clear();
  for (std::uint64_t i = 0, n = in.U64(); i < n && in.ok(); ++i) {
    std::string pkg = in.Str();
    notifications_per_pkg_.emplace(std::move(pkg),
                                   static_cast<int>(in.I64()));
  }
}

Status NotificationService::OnTransact(std::uint32_t code,
                                       const binder::Parcel& data,
                                       binder::Parcel* reply,
                                       const binder::CallContext& ctx) {
  JGRE_RETURN_IF_ERROR(data.EnforceInterface(kDescriptor));
  switch (code) {
    case TRANSACTION_enqueueToast: {
      Charge(ctx, kEnqueueToastCost, toast_queue_.size());
      DrainShownToasts(ctx);
      auto pkg = data.ReadString();
      if (!pkg.ok()) return pkg.status();
      auto callback = data.ReadStrongBinder(ctx);  // ITransientNotification
      if (!callback.ok()) return callback.status();
      auto duration = data.ReadInt32();
      if (!duration.ok()) return duration.status();
      if (!callback.value().valid()) {
        return InvalidArgument("enqueueToast: null callback");
      }
      // THE FLAW (Code-Snippet 3): `pkg` is caller-supplied; passing
      // "android" marks the toast as a system toast and skips the cap. A
      // correct implementation would verify pkg against the calling uid.
      const bool is_system_toast = ctx.calling_uid == kSystemUid ||
                                   ctx.calling_uid == kRootUid ||
                                   pkg.value() == "android";
      if (!is_system_toast) {
        const int count = CountForPackage(pkg.value());
        if (count >= kMaxPackageNotifications) {
          JGRE_LOG(kWarning, "NotificationService")
              << "Package has already posted " << count
              << " toasts. Not showing more. Package=" << pkg.value();
          return LimitExceeded("too many toasts for package");
        }
      }
      if (toast_queue_.empty()) {
        current_toast_shown_since_us_ = ctx.clock->NowUs();
      }
      callbacks_.Register(callback.value());  // no-op if node already known
      ++records_per_node_[callback.value().node];
      toast_queue_.push_back(ToastRecord{pkg.value(), callback.value().node});
      return Status::Ok();
    }
    case TRANSACTION_cancelToast: {
      Charge(ctx, kCancelToastCost, toast_queue_.size());
      DrainShownToasts(ctx);
      auto pkg = data.ReadString();
      if (!pkg.ok()) return pkg.status();
      auto callback = data.ReadStrongBinder(ctx);
      if (!callback.ok()) return callback.status();
      if (!callback.value().valid()) {
        return InvalidArgument("cancelToast: null callback");
      }
      for (auto it = toast_queue_.begin(); it != toast_queue_.end(); ++it) {
        if (it->callback_node == callback.value().node) {
          ReleaseRecord(*it);
          toast_queue_.erase(it);
          break;
        }
      }
      return Status::Ok();
    }
    case TRANSACTION_enqueueNotificationWithTag: {
      // Correctly capped per package: the non-toast path is NOT vulnerable.
      Charge(ctx, kNotifyCost, notifications_per_pkg_.size());
      auto pkg = CallingPackage(ctx);
      const std::string key = pkg.ok() ? pkg.value() : "unknown";
      if (notifications_per_pkg_[key] >= kMaxPackageNotifications) {
        return LimitExceeded("too many notifications for package");
      }
      ++notifications_per_pkg_[key];
      return Status::Ok();
    }
    case TRANSACTION_cancelNotificationWithTag: {
      Charge(ctx, kNotifyCost, notifications_per_pkg_.size());
      auto pkg = CallingPackage(ctx);
      const std::string key = pkg.ok() ? pkg.value() : "unknown";
      if (notifications_per_pkg_[key] > 0) --notifications_per_pkg_[key];
      return Status::Ok();
    }
    default:
      return InvalidArgument("unknown notification transaction");
  }
}

}  // namespace jgre::services
