#include "services/ipc_client.h"

namespace jgre::services {

Status IpcClient::Call(std::uint32_t code,
                       const std::function<void(binder::Parcel&)>& write_args,
                       binder::Parcel* reply) const {
  if (!service_.valid()) {
    return FailedPrecondition("IpcClient has no service binder");
  }
  binder::Parcel data;
  data.WriteInterfaceToken(descriptor_);
  if (write_args) write_args(data);
  binder::Parcel local_reply;
  return service_.binder->Transact(code, data,
                                   reply != nullptr ? reply : &local_reply);
}

Status IpcClient::Call(std::uint32_t code, binder::Parcel* reply) const {
  return Call(code, nullptr, reply);
}

}  // namespace jgre::services
