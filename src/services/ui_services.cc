#include "services/ui_services.h"

namespace jgre::services {

static Pid Host(SystemContext* sys) { return sys->system_server_pid; }

InputMethodService::InputMethodService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys), {"imms.Clients"},
          {
              // addClient(IInputMethodClient client, IInputContext ctx, ...)
              {TRANSACTION_addClient, "addClient", MethodKind::kRegister,
               {ArgKind::kBinder, ArgKind::kBinder}, 0, nullptr,
               CostProfile{500, 0.85, 700}},
              {TRANSACTION_removeClient, "removeClient",
               MethodKind::kUnregister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{280, 0.40, 250}},
              {TRANSACTION_getInputMethodList, "getInputMethodList",
               MethodKind::kQuery, {}, 0, nullptr, CostProfile{250, 0.0, 150}},
          }) {}

AccessibilityService::AccessibilityService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys),
          {"a11y.InteractionConnections", "a11y.Clients"},
          {
              // addAccessibilityInteractionConnection(IWindow token,
              //     IAccessibilityInteractionConnection connection)
              {TRANSACTION_addAccessibilityInteractionConnection,
               "addAccessibilityInteractionConnection", MethodKind::kRegister,
               {ArgKind::kBinder, ArgKind::kBinder}, 0, nullptr,
               CostProfile{700, 3.00, 1200}},
              {TRANSACTION_removeAccessibilityInteractionConnection,
               "removeAccessibilityInteractionConnection",
               MethodKind::kUnregister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{320, 0.50, 300}},
              // addClient(IAccessibilityManagerClient) — capped only in the
              // AccessibilityManager helper (Table II).
              {TRANSACTION_addClient, "addClient", MethodKind::kRegister,
               {ArgKind::kBinder}, 1, nullptr, CostProfile{400, 0.60, 450}},
              {TRANSACTION_getEnabledAccessibilityServiceList,
               "getEnabledAccessibilityServiceList", MethodKind::kQuery,
               {ArgKind::kInt32}, 1, nullptr, CostProfile{200, 0.0, 120}},
          }) {}

PrintService::PrintService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys),
          {"print.Jobs", "print.JobStateListeners", "print.DiscoverySessions"},
          {
              // print(String jobName, IPrintDocumentAdapter, ...) -> job
              {TRANSACTION_print, "print", MethodKind::kSession,
               {ArgKind::kString, ArgKind::kBinder}, 0, nullptr,
               CostProfile{1500, 3.00, 2500}},
              {TRANSACTION_addPrintJobStateChangeListener,
               "addPrintJobStateChangeListener", MethodKind::kRegister,
               {ArgKind::kBinder, ArgKind::kInt32}, 1, nullptr,
               CostProfile{600, 1.30, 900}},
              {TRANSACTION_removePrintJobStateChangeListener,
               "removePrintJobStateChangeListener", MethodKind::kUnregister,
               {ArgKind::kBinder}, 1, nullptr, CostProfile{300, 0.40, 300}},
              {TRANSACTION_createPrinterDiscoverySession,
               "createPrinterDiscoverySession", MethodKind::kSession,
               {ArgKind::kBinder}, 2, nullptr, CostProfile{1200, 2.40, 2000}},
              {TRANSACTION_getPrintJobInfos, "getPrintJobInfos",
               MethodKind::kQuery, {}, 0, nullptr, CostProfile{350, 0.0, 200}},
          }) {}

WindowService::WindowService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys), {"wms.RotationWatchers"},
          {
              {TRANSACTION_watchRotation, "watchRotation",
               MethodKind::kRegister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{300, 0.60, 400}},
              {TRANSACTION_removeRotationWatcher, "removeRotationWatcher",
               MethodKind::kUnregister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{240, 0.30, 200}},
              {TRANSACTION_getDefaultDisplayRotation,
               "getDefaultDisplayRotation", MethodKind::kQuery, {}, 0, nullptr,
               CostProfile{120, 0.0, 60}},
          }) {}

WallpaperService::WallpaperService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys), {"wallpaper.Callbacks"},
          {
              // getWallpaper(IWallpaperManagerCallback cb, ...) retains cb
              // in mCallbacks until the caller dies.
              {TRANSACTION_getWallpaper, "getWallpaper", MethodKind::kRegister,
               {ArgKind::kBinder}, 0, nullptr, CostProfile{550, 1.00, 800}},
              {TRANSACTION_setWallpaper, "setWallpaper", MethodKind::kQuery,
               {ArgKind::kByteArray}, 0, nullptr, CostProfile{900, 0.0, 500}},
          }) {}

InputService::InputService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys),
          {"input.VibratorTokens", "input.DevicesChangedListeners",
           "input.TabletModeListeners"},
          {
              // vibrate(int[] pattern, int repeat, IBinder token): token kept
              // in mVibratorTokens — unprotected (Table I).
              {TRANSACTION_vibrate, "vibrate", MethodKind::kRegister,
               {ArgKind::kByteArray, ArgKind::kInt32, ArgKind::kBinder}, 0,
               nullptr, CostProfile{350, 0.50, 450}},
              {TRANSACTION_cancelVibrate, "cancelVibrate",
               MethodKind::kUnregister, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{220, 0.30, 200}},
              // Correct per-process constraints (Table III "Yes" rows).
              {TRANSACTION_registerInputDevicesChangedListener,
               "registerInputDevicesChangedListener",
               MethodKind::kRegisterPerProcess, {ArgKind::kBinder}, 1, nullptr,
               CostProfile{300, 0.40, 300}},
              {TRANSACTION_registerTabletModeChangedListener,
               "registerTabletModeChangedListener",
               MethodKind::kRegisterPerProcess, {ArgKind::kBinder}, 2, nullptr,
               CostProfile{300, 0.40, 300}},
              {TRANSACTION_getInputDeviceIds, "getInputDeviceIds",
               MethodKind::kQuery, {}, 0, nullptr, CostProfile{130, 0.0, 80}},
          }) {}

DisplayService::DisplayService(SystemContext* sys)
    : RegistryServiceBase(
          sys, kName, kDescriptor, Host(sys), {"display.Callbacks"},
          {
              // registerCallback: one retained callback per process —
              // correctly protected (Table III).
              {TRANSACTION_registerCallback, "registerCallback",
               MethodKind::kRegisterPerProcess, {ArgKind::kBinder}, 0, nullptr,
               CostProfile{280, 0.40, 300}},
              {TRANSACTION_getDisplayInfo, "getDisplayInfo",
               MethodKind::kQuery, {ArgKind::kInt32}, 0, nullptr,
               CostProfile{150, 0.0, 100}},
          }) {}

}  // namespace jgre::services
