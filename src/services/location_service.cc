#include "services/location_service.h"

namespace jgre::services {

namespace {
constexpr CostProfile kAddListenerCost{550, 0.55, 350};
constexpr CostProfile kRemoveListenerCost{300, 0.30, 150};
constexpr CostProfile kQueryCost{180, 0.0, 90};
}  // namespace

LocationService::LocationService(SystemContext* sys)
    : SystemService(sys, kName, kDescriptor),
      gps_status_listeners_(sys->driver, sys->system_server_pid,
                            "location.GpsStatusListeners"),
      measurements_listeners_(sys->driver, sys->system_server_pid,
                              "location.GpsMeasurementsListeners"),
      navigation_listeners_(sys->driver, sys->system_server_pid,
                            "location.GpsNavigationMessageListeners") {}

Status LocationService::OnTransact(std::uint32_t code,
                                   const binder::Parcel& data,
                                   binder::Parcel* reply,
                                   const binder::CallContext& ctx) {
  JGRE_RETURN_IF_ERROR(data.EnforceInterface(kDescriptor));

  // Helper lambda: register into `list` after reading the listener binder.
  auto register_into = [&](binder::RemoteCallbackList& list) -> Status {
    Charge(ctx, kAddListenerCost, list.RegisteredCount());
    auto listener = data.ReadStrongBinder(ctx);
    if (!listener.ok()) return listener.status();
    if (listener.value().valid()) list.Register(listener.value());
    reply->WriteBool(true);
    return Status::Ok();
  };
  auto unregister_from = [&](binder::RemoteCallbackList& list) -> Status {
    Charge(ctx, kRemoveListenerCost, list.RegisteredCount());
    auto listener = data.ReadStrongBinder(ctx);
    if (!listener.ok()) return listener.status();
    if (listener.value().valid()) list.Unregister(listener.value().node);
    return Status::Ok();
  };

  switch (code) {
    case TRANSACTION_addGpsStatusListener:
      // Requires a dangerous permission (Table I) — the attack needs it
      // granted, but the permission does not bound how many listeners the
      // holder may register.
      JGRE_RETURN_IF_ERROR(Enforce(ctx, perms::kAccessFineLocation));
      return register_into(gps_status_listeners_);
    case TRANSACTION_removeGpsStatusListener:
      return unregister_from(gps_status_listeners_);
    case TRANSACTION_addGpsMeasurementsListener:
      JGRE_RETURN_IF_ERROR(Enforce(ctx, perms::kAccessFineLocation));
      return register_into(measurements_listeners_);
    case TRANSACTION_removeGpsMeasurementsListener:
      return unregister_from(measurements_listeners_);
    case TRANSACTION_addGpsNavigationMessageListener:
      JGRE_RETURN_IF_ERROR(Enforce(ctx, perms::kAccessFineLocation));
      return register_into(navigation_listeners_);
    case TRANSACTION_removeGpsNavigationMessageListener:
      return unregister_from(navigation_listeners_);
    case TRANSACTION_getLastLocation: {
      Charge(ctx, kQueryCost, 0);
      reply->WriteString("0.0,0.0");
      return Status::Ok();
    }
    default:
      return InvalidArgument("unknown location transaction");
  }
}

}  // namespace jgre::services
