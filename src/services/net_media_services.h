// Network- and media-plane services: network_management, connectivity, sip,
// ethernet, media_session, media_router, media_projection, midi,
// launcherapps, tv_input.
#ifndef JGRE_SERVICES_NET_MEDIA_SERVICES_H_
#define JGRE_SERVICES_NET_MEDIA_SERVICES_H_

#include "services/registry_service.h"

namespace jgre::services {

// NetworkManagementService: registerNetworkActivityListener.
class NetworkManagementService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "network_management";
  static constexpr const char* kDescriptor =
      "android.os.INetworkManagementService";
  enum Code : std::uint32_t {
    TRANSACTION_registerNetworkActivityListener = 1,
    TRANSACTION_unregisterNetworkActivityListener = 2,
    TRANSACTION_isNetworkActive = 3,
  };
  explicit NetworkManagementService(SystemContext* sys);
};

// ConnectivityService: requestNetwork / listenForNetwork retain the request
// binder until release.
class ConnectivityService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "connectivity";
  static constexpr const char* kDescriptor = "android.net.IConnectivityManager";
  enum Code : std::uint32_t {
    TRANSACTION_requestNetwork = 1,
    TRANSACTION_listenForNetwork = 2,
    TRANSACTION_releaseNetworkRequest = 3,
    TRANSACTION_getActiveNetworkInfo = 4,
  };
  explicit ConnectivityService(SystemContext* sys);
};

// SipService: open3 / createSession mint per-call SIP session objects.
class SipService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "sip";
  static constexpr const char* kDescriptor = "android.net.sip.ISipService";
  enum Code : std::uint32_t {
    TRANSACTION_open3 = 1,
    TRANSACTION_createSession = 2,
    TRANSACTION_close = 3,
  };
  explicit SipService(SystemContext* sys);
};

// EthernetService: addListener — capped only in EthernetManager (Table II).
class EthernetService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "ethernet";
  static constexpr const char* kDescriptor =
      "android.net.IEthernetManager";
  enum Code : std::uint32_t {
    TRANSACTION_addListener = 1,
    TRANSACTION_removeListener = 2,
  };
  explicit EthernetService(SystemContext* sys);
};

// MediaSessionService: registerCallbackListener / createSession.
class MediaSessionService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "media_session";
  static constexpr const char* kDescriptor = "android.media.session.ISessionManager";
  enum Code : std::uint32_t {
    TRANSACTION_registerCallbackListener = 1,
    TRANSACTION_unregisterCallbackListener = 2,
    TRANSACTION_createSession = 3,
  };
  explicit MediaSessionService(SystemContext* sys);
};

// MediaRouterService: registerClientAsUser.
class MediaRouterService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "media_router";
  static constexpr const char* kDescriptor =
      "android.media.IMediaRouterService";
  enum Code : std::uint32_t {
    TRANSACTION_registerClientAsUser = 1,
    TRANSACTION_unregisterClient = 2,
  };
  explicit MediaRouterService(SystemContext* sys);
};

// MediaProjectionService: registerCallback.
class MediaProjectionService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "media_projection";
  static constexpr const char* kDescriptor =
      "android.media.projection.IMediaProjectionManager";
  enum Code : std::uint32_t {
    TRANSACTION_registerCallback = 1,
    TRANSACTION_unregisterCallback = 2,
  };
  explicit MediaProjectionService(SystemContext* sys);
};

// MidiService: four vulnerable interfaces; registerDeviceServer is the
// heaviest per call and yields the paper's slowest detection (~3.6 s).
class MidiService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "midi";
  static constexpr const char* kDescriptor = "android.media.midi.IMidiManager";
  enum Code : std::uint32_t {
    TRANSACTION_registerListener = 1,
    TRANSACTION_unregisterListener = 2,
    TRANSACTION_openDevice = 3,
    TRANSACTION_openBluetoothDevice = 4,
    TRANSACTION_registerDeviceServer = 5,
    TRANSACTION_getDevices = 6,
  };
  explicit MidiService(SystemContext* sys);
};

// LauncherAppsService: addOnAppsChangedListener — helper-capped (Table II).
class LauncherAppsService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "launcherapps";
  static constexpr const char* kDescriptor =
      "android.content.pm.ILauncherApps";
  enum Code : std::uint32_t {
    TRANSACTION_addOnAppsChangedListener = 1,
    TRANSACTION_removeOnAppsChangedListener = 2,
  };
  explicit LauncherAppsService(SystemContext* sys);
};

// TvInputManagerService: registerCallback — helper-capped (Table II).
class TvInputService : public RegistryServiceBase {
 public:
  static constexpr const char* kName = "tv_input";
  static constexpr const char* kDescriptor = "android.media.tv.ITvInputManager";
  enum Code : std::uint32_t {
    TRANSACTION_registerCallback = 1,
    TRANSACTION_getTvInputList = 2,
  };
  explicit TvInputService(SystemContext* sys);
};

}  // namespace jgre::services

#endif  // JGRE_SERVICES_NET_MEDIA_SERVICES_H_
