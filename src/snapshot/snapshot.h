// SystemSnapshot — deterministic checkpoint/restore for whole simulations.
//
// A checkpoint is the byte-stable serialization of every piece of mutable
// simulation state (virtual clock, RNG streams, heap + strong-hold graph,
// IRT/JGR tables, kernel process table + LMK, binder node table + IPC log +
// death links, service retention state, defender monitor tapes), produced by
// the per-module SaveState hooks in a fixed module order. Restoring into a
// freshly Boot()ed AndroidSystem built from the same SystemConfig yields a
// simulation whose subsequent event stream is byte-identical to the original
// — the property the divergence auditor (below) checks event by event.
//
// On-disk format: "JGRESNAP" magic, little-endian header (version, seed,
// virtual time, payload size), the payload, and an FNV-1a trailer over the
// payload. A JSON manifest sidecar (<path>.manifest.json) carries the same
// identity fields for tooling (scripts/validate_snapshot_manifest.py).
#ifndef JGRE_SNAPSHOT_SNAPSHOT_H_
#define JGRE_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "obs/event.h"
#include "snapshot/serializer.h"

namespace jgre::core {
class AndroidSystem;
}
namespace jgre::defense {
class JgreDefender;
}

namespace jgre::snapshot {

inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::uint64_t kSnapshotMagic = 0x50414E5345524A47ull;  // "JGRESNAP" LE

// Identity of a checkpoint; serialized as the file header and exported as
// the JSON manifest.
struct SnapshotManifest {
  std::uint32_t version = kSnapshotVersion;
  std::uint64_t seed = 0;        // SystemConfig::seed of the captured system
  TimeUs virtual_time_us = 0;    // clock at the checkpoint boundary
  std::uint64_t content_hash = 0;  // FNV-1a over the payload bytes
  std::uint64_t byte_size = 0;     // payload size

  std::string ToJson() const;
};

class SystemSnapshot {
 public:
  SystemSnapshot() = default;

  // Captures a booted, quiescent system (and, when given, the installed
  // defender). Preconditions: the system has never soft-rebooted (re-booted
  // services sit at post-boot node ids, which restore as loud placeholder
  // binders) and no virtual timers are pending.
  static Result<SystemSnapshot> Capture(
      core::AndroidSystem& system,
      const defense::JgreDefender* defender = nullptr);

  // Restores into a freshly constructed AndroidSystem with the SAME
  // SystemConfig that has been Boot()ed and not otherwise driven. When the
  // checkpoint carries defender state, `defender` must be an Install()ed
  // defender on that same system.
  Status RestoreInto(core::AndroidSystem* system,
                     defense::JgreDefender* defender = nullptr) const;

  // Binary checkpoint at `path` plus the JSON manifest sidecar at
  // `path` + ".manifest.json".
  Status WriteFile(const std::string& path) const;
  static Result<SystemSnapshot> ReadFile(const std::string& path);

  const SnapshotManifest& manifest() const { return manifest_; }
  const std::vector<std::uint8_t>& payload() const { return payload_; }

  // Where this snapshot lives on disk: set by ReadFile and WriteFile, empty
  // for an image that only ever existed in memory. Restore errors cite
  // DescribeSource() so a failure names the image to inspect, not just a
  // deserializer offset.
  const std::string& source_path() const { return source_path_; }
  // "<path>.manifest.json" for a file-backed snapshot, "" otherwise.
  std::string ManifestPath() const {
    return source_path_.empty() ? std::string() : source_path_ + kManifestSuffix;
  }
  // "manifest <path>.manifest.json" or "in-memory snapshot (seed S, t=T us)".
  std::string DescribeSource() const;

  static constexpr const char* kManifestSuffix = ".manifest.json";

 private:
  SnapshotManifest manifest_;
  std::vector<std::uint8_t> payload_;
  // Last persisted location; bookkeeping only, so the const WriteFile can
  // record it.
  mutable std::string source_path_;
};

// --- Divergence auditing ----------------------------------------------------
//
// The determinism contract in checkable form: subscribe an EventTape to each
// of two runs (cold and restored) at equivalent points, run both, and ask
// for the first event where the tapes disagree. Byte-identical runs yield
// std::nullopt.

class EventTape : public obs::EventSink {
 public:
  void OnEvent(const obs::TraceEvent& event) override {
    events_.push_back(event);
  }
  const std::vector<obs::TraceEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

 private:
  std::vector<obs::TraceEvent> events_;
};

struct Divergence {
  std::size_t index = 0;    // first differing event (or the shorter length)
  std::string description;  // human-readable field-level diff
};

std::optional<Divergence> FirstDivergence(
    const std::vector<obs::TraceEvent>& cold,
    const std::vector<obs::TraceEvent>& restored);

}  // namespace jgre::snapshot

#endif  // JGRE_SNAPSHOT_SNAPSHOT_H_
