// Byte-stable binary serialization primitives for simulation checkpoints.
//
// Serializer appends fixed-width little-endian fields to a growable buffer;
// Deserializer reads them back in the same order. The encoding has no
// platform-dependent padding, endianness, or container-iteration dependence,
// so the bytes produced for a given simulation state are identical across
// runs and machines — the property the divergence auditor (snapshot.h) and
// the checkpoint content hash rely on.
//
// Layering: this target (jgre_snapshot_io) depends only on jgre_common, so
// every simulation module (runtime, os, binder, services, core, defense) can
// implement SaveState/RestoreState hooks against it. The checkpoint file
// format and the per-module orchestration live one level up in snapshot.h.
#ifndef JGRE_SNAPSHOT_SERIALIZER_H_
#define JGRE_SNAPSHOT_SERIALIZER_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace jgre::snapshot {

// FNV-1a over a byte range; the checkpoint content hash in the manifest.
inline std::uint64_t Fnv1a(const std::uint8_t* data, std::size_t size,
                           std::uint64_t seed = 14695981039346656037ULL) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

class Serializer {
 public:
  void U8(std::uint8_t v) { buffer_.push_back(v); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void U32(std::uint32_t v) { AppendLe(v); }
  void U64(std::uint64_t v) { AppendLe(v); }
  void I64(std::int64_t v) { AppendLe(static_cast<std::uint64_t>(v)); }
  void F64(double v) { AppendLe(std::bit_cast<std::uint64_t>(v)); }
  void Str(const std::string& s) {
    U64(s.size());
    buffer_.insert(buffer_.end(), s.begin(), s.end());
  }
  // Debugging aid: a tag the reader must match, catching save/restore hooks
  // that drift out of step field-wise.
  void Marker(std::uint32_t tag) { U32(tag); }

  void U64Vec(const std::vector<std::uint64_t>& v) {
    U64(v.size());
    for (std::uint64_t x : v) U64(x);
  }
  void I64Vec(const std::vector<std::int64_t>& v) {
    U64(v.size());
    for (std::int64_t x : v) I64(x);
  }

  const std::vector<std::uint8_t>& buffer() const { return buffer_; }
  std::vector<std::uint8_t> TakeBuffer() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }
  std::uint64_t Hash() const { return Fnv1a(buffer_.data(), buffer_.size()); }

 private:
  template <typename T>
  void AppendLe(T v) {
    static_assert(std::is_unsigned_v<T>);
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buffer_;
};

class Deserializer {
 public:
  Deserializer(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Deserializer(const std::vector<std::uint8_t>& bytes)
      : Deserializer(bytes.data(), bytes.size()) {}

  std::uint8_t U8() {
    if (!Need(1)) return 0;
    return data_[pos_++];
  }
  bool Bool() { return U8() != 0; }
  std::uint32_t U32() { return ReadLe<std::uint32_t>(); }
  std::uint64_t U64() { return ReadLe<std::uint64_t>(); }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  double F64() { return std::bit_cast<double>(U64()); }
  std::string Str() {
    const std::uint64_t n = U64();
    if (!Need(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  // Fails the stream (and all subsequent reads) if the next u32 != tag.
  void Marker(std::uint32_t tag) {
    const std::uint32_t got = U32();
    if (ok_ && got != tag) Fail("marker mismatch");
  }

  std::vector<std::uint64_t> U64Vec() {
    const std::uint64_t n = U64();
    std::vector<std::uint64_t> v;
    if (!Need(n * 8)) return v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(U64());
    return v;
  }
  std::vector<std::int64_t> I64Vec() {
    const std::uint64_t n = U64();
    std::vector<std::int64_t> v;
    if (!Need(n * 8)) return v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(I64());
    return v;
  }

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  std::size_t pos() const { return pos_; }
  bool AtEnd() const { return pos_ == size_; }
  void Fail(const std::string& why) {
    if (ok_) {
      ok_ = false;
      error_ = why + " at offset " + std::to_string(pos_);
    }
  }

 private:
  bool Need(std::uint64_t n) {
    if (!ok_) return false;
    if (size_ - pos_ < n) {
      Fail("truncated stream");
      return false;
    }
    return true;
  }
  template <typename T>
  T ReadLe() {
    if (!Need(sizeof(T))) return 0;
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

// Serializes an unordered associative container in ascending key order, so
// the bytes are independent of hash-bucket history (which a restore does not
// — and must not — reproduce). `save_entry(out, key, value)` writes one pair.
template <typename Map, typename SaveEntryFn>
void SaveUnorderedMap(Serializer& out, const Map& map, SaveEntryFn save_entry) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(map.size());
  for (const auto& [key, value] : map) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  out.U64(keys.size());
  for (const auto& key : keys) save_entry(out, key, map.at(key));
}

}  // namespace jgre::snapshot

#endif  // JGRE_SNAPSHOT_SERIALIZER_H_
