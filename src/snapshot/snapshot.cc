#include "snapshot/snapshot.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "core/android_system.h"
#include "defense/jgre_defender.h"

namespace jgre::snapshot {

namespace {

// Payload framing marker ("SNP1"): guards against handing RestoreInto a
// buffer that is not a snapshot payload.
constexpr std::uint32_t kPayloadMarker = 0x534E5031;

void PutU32(std::ofstream& out, std::uint32_t v) {
  std::uint8_t bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
  out.write(reinterpret_cast<const char*>(bytes), 4);
}

void PutU64(std::ofstream& out, std::uint64_t v) {
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
  out.write(reinterpret_cast<const char*>(bytes), 8);
}

std::string HexU64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    s.push_back(kDigits[(v >> shift) & 0xf]);
  }
  return s;
}

}  // namespace

std::string SnapshotManifest::ToJson() const {
  std::ostringstream out;
  out << "{\n"
      << "  \"format\": \"jgre-snapshot\",\n"
      << "  \"version\": " << version << ",\n"
      << "  \"seed\": " << seed << ",\n"
      << "  \"virtual_time_us\": " << virtual_time_us << ",\n"
      << "  \"content_hash\": \"" << HexU64(content_hash) << "\",\n"
      << "  \"byte_size\": " << byte_size << "\n"
      << "}\n";
  return out.str();
}

std::string SystemSnapshot::DescribeSource() const {
  if (!source_path_.empty()) return StrCat("manifest ", ManifestPath());
  return StrCat("in-memory snapshot (seed ", manifest_.seed, ", t=",
                manifest_.virtual_time_us, " us)");
}

Result<SystemSnapshot> SystemSnapshot::Capture(
    core::AndroidSystem& system, const defense::JgreDefender* defender) {
  if (system.soft_reboots() != 0) {
    return FailedPrecondition(
        "cannot checkpoint after a soft reboot: re-registered services sit "
        "at post-boot node ids and would restore as placeholder binders");
  }
  if (system.clock().HasPendingTimers()) {
    return FailedPrecondition(
        "cannot checkpoint with pending virtual timers: capture at a "
        "quiescent boundary");
  }
  // Buffered bus subscribers may hold staged events that EventBus::SaveState
  // does not serialize; drain them so sink state is complete in the image.
  system.kernel().bus().Flush();
  Serializer out;
  out.Marker(kPayloadMarker);
  out.Bool(defender != nullptr);
  system.SaveState(out);
  if (defender != nullptr) defender->SaveState(out);

  SystemSnapshot snap;
  snap.manifest_.version = kSnapshotVersion;
  snap.manifest_.seed = system.config().seed;
  snap.manifest_.virtual_time_us = system.clock().NowUs();
  snap.manifest_.content_hash = out.Hash();
  snap.manifest_.byte_size = out.size();
  snap.payload_ = out.TakeBuffer();
  return snap;
}

Status SystemSnapshot::RestoreInto(core::AndroidSystem* system,
                                   defense::JgreDefender* defender) const {
  if (system->config().seed != manifest_.seed) {
    return InvalidArgument(
        StrCat("checkpoint was captured from seed ", manifest_.seed,
               " but the restore target booted with seed ",
               system->config().seed));
  }
  Deserializer in(payload_);
  in.Marker(kPayloadMarker);
  const bool has_defender = in.Bool();
  if (has_defender && defender == nullptr) {
    return InvalidArgument(
        "checkpoint carries defender state: pass the installed defender");
  }
  system->RestoreState(in);
  if (has_defender && in.ok()) defender->RestoreState(in);
  if (!in.ok()) {
    return Internal(
        StrCat("corrupt checkpoint: ", in.error(), " [", DescribeSource(), "]"));
  }
  if (!in.AtEnd()) {
    return Internal(StrCat(
        "corrupt checkpoint: trailing bytes after the payload [",
        DescribeSource(), "]"));
  }
  return Status::Ok();
}

Status SystemSnapshot::WriteFile(const std::string& path) const {
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return Internal(StrCat("cannot open ", path, " for writing"));
    PutU64(out, kSnapshotMagic);
    PutU32(out, manifest_.version);
    PutU64(out, manifest_.seed);
    PutU64(out, manifest_.virtual_time_us);
    PutU64(out, static_cast<std::uint64_t>(payload_.size()));
    out.write(reinterpret_cast<const char*>(payload_.data()),
              static_cast<std::streamsize>(payload_.size()));
    PutU64(out, manifest_.content_hash);
    if (!out) return Internal(StrCat("short write to ", path));
  }
  source_path_ = path;
  const std::string manifest_path = path + kManifestSuffix;
  std::ofstream manifest(manifest_path, std::ios::trunc);
  if (!manifest) {
    return Internal(StrCat("cannot open ", manifest_path, " for writing"));
  }
  manifest << manifest_.ToJson();
  if (!manifest) return Internal(StrCat("short write to ", manifest_path));
  return Status::Ok();
}

Result<SystemSnapshot> SystemSnapshot::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status(NotFound(StrCat("cannot open ", path)));
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  Deserializer header(bytes.data(), bytes.size());
  if (header.U64() != kSnapshotMagic) {
    return Status(InvalidArgument(StrCat(path, " is not a JGRE snapshot")));
  }
  SystemSnapshot snap;
  snap.manifest_.version = header.U32();
  if (snap.manifest_.version != kSnapshotVersion) {
    return Status(InvalidArgument(
        StrCat(path, ": unsupported snapshot version ",
               snap.manifest_.version, " (expected ", kSnapshotVersion, ")")));
  }
  snap.manifest_.seed = header.U64();
  snap.manifest_.virtual_time_us = header.U64();
  const std::uint64_t payload_size = header.U64();
  if (!header.ok() || bytes.size() - header.pos() < payload_size + 8) {
    return Status(InvalidArgument(StrCat(path, ": truncated snapshot")));
  }
  snap.payload_.assign(bytes.begin() + static_cast<std::ptrdiff_t>(header.pos()),
                       bytes.begin() + static_cast<std::ptrdiff_t>(
                                           header.pos() + payload_size));
  Deserializer trailer(bytes.data() + header.pos() + payload_size, 8);
  const std::uint64_t stored_hash = trailer.U64();
  const std::uint64_t computed_hash =
      Fnv1a(snap.payload_.data(), snap.payload_.size());
  if (stored_hash != computed_hash) {
    return Status(InvalidArgument(
        StrCat(path, ": content hash mismatch (stored ", HexU64(stored_hash),
               ", computed ", HexU64(computed_hash), ")")));
  }
  snap.manifest_.content_hash = computed_hash;
  snap.manifest_.byte_size = snap.payload_.size();
  snap.source_path_ = path;
  return snap;
}

std::optional<Divergence> FirstDivergence(
    const std::vector<obs::TraceEvent>& cold,
    const std::vector<obs::TraceEvent>& restored) {
  const std::size_t common = cold.size() < restored.size() ? cold.size()
                                                           : restored.size();
  auto describe = [](const obs::TraceEvent& e) {
    return StrCat(obs::CategoryName(e.category), "/", e.name, " ts=", e.ts_us,
                  " dur=", e.dur_us, " pid=", e.pid, " uid=", e.uid,
                  " arg0=", e.arg0, " arg1=", e.arg1);
  };
  // Field-wise, not memcmp: TraceEvent has tail padding whose bytes are
  // indeterminate.
  auto same = [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
    return a.ts_us == b.ts_us && a.dur_us == b.dur_us && a.arg0 == b.arg0 &&
           a.arg1 == b.arg1 && a.pid == b.pid && a.uid == b.uid &&
           a.name == b.name && a.category == b.category;
  };
  for (std::size_t i = 0; i < common; ++i) {
    if (!same(cold[i], restored[i])) {
      return Divergence{
          i, StrCat("event ", i, ": cold {", describe(cold[i]),
                    "} != restored {", describe(restored[i]), "}")};
    }
  }
  if (cold.size() != restored.size()) {
    return Divergence{
        common, StrCat("tape lengths differ: cold has ", cold.size(),
                       " events, restored has ", restored.size())};
  }
  return std::nullopt;
}

}  // namespace jgre::snapshot
