#include "core/market_apps.h"

namespace jgre::core {

void InstallThirdPartyVulnerableApps(AndroidSystem& system) {
  struct AppDef {
    const char* package;
    const char* service;
  };
  // Google TTS extends android.speech.tts.TextToSpeechService (inheriting
  // the vulnerable default setCallback); the other two export their own
  // AIDL services.
  services::AppProcess* tts = system.InstallApp("com.google.android.tts");
  auto tts_service = std::make_shared<services::TextToSpeechService>(
      &system.context(), "googletts", tts->pid());
  system.driver().RegisterBinder(tts_service, tts->pid());
  (void)system.service_manager().AddService("googletts", tts_service,
                                            kSystemUid);
  system.KeepServiceAlive("googletts", tts_service);

  services::AppProcess* vpn = system.InstallApp("com.supernet.vpn");
  auto vpn_service = std::make_shared<services::OpenVpnApiService>(
      &system.context(), "supernetvpn", vpn->pid());
  system.driver().RegisterBinder(vpn_service, vpn->pid());
  (void)system.service_manager().AddService("supernetvpn", vpn_service,
                                            kSystemUid);
  system.KeepServiceAlive("supernetvpn", vpn_service);

  services::AppProcess* snap = system.InstallApp("com.snapmovie");
  auto snap_service = std::make_shared<services::SnapMovieMainService>(
      &system.context(), "snapmovie", snap->pid());
  system.driver().RegisterBinder(snap_service, snap->pid());
  (void)system.service_manager().AddService("snapmovie", snap_service,
                                            kSystemUid);
  system.KeepServiceAlive("snapmovie", snap_service);
}

}  // namespace jgre::core
