// AndroidSystem — the top-level facade: a booted Android 6.0.1 device.
//
// Owns the kernel, binder driver, service manager, package manager, the
// system_server process hosting all 104 system services, and the prebuilt app
// processes (Bluetooth, PicoTts). Provides app install/launch, the
// between-transactions pump (GC cadence, soft-reboot handling, defense
// extension), and soft-reboot semantics: when system_server's runtime aborts
// — the JGRE detonation — every service is torn down and re-registered by a
// fresh system_server, exactly like Android's zygote restart.
#ifndef JGRE_CORE_ANDROID_SYSTEM_H_
#define JGRE_CORE_ANDROID_SYSTEM_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "binder/binder_driver.h"
#include "binder/service_manager.h"
#include "os/kernel.h"
#include "os/lmk.h"
#include "services/activity_service.h"
#include "services/app.h"
#include "services/app_services.h"
#include "services/audio_service.h"
#include "services/clipboard_service.h"
#include "services/location_service.h"
#include "services/misc_system_services.h"
#include "services/net_media_services.h"
#include "services/notification_service.h"
#include "services/package_manager.h"
#include "services/safe_service.h"
#include "services/system_service.h"
#include "services/telephony_registry_service.h"
#include "services/ui_services.h"
#include "services/wifi_service.h"

namespace jgre::core {

struct SystemConfig {
  std::uint64_t seed = 42;
  // system_server's baseline JGR footprint (classes, boot-time services):
  // Fig 4 shows 1,000–3,000 entries on a live device.
  std::size_t system_server_boot_class_refs = 1200;
  std::size_t app_boot_class_refs = 180;
  // system_server's JGR table capacity — the exhaustion ceiling. Stock AOSP
  // pins this at rt::kGlobalsMax; fleet specs vary it to model devices with
  // smaller (or patched, larger) tables.
  std::size_t system_server_max_jgr = rt::kGlobalsMax;
  // GC cadence applied between transactions (DDMS-style periodic GC).
  DurationUs gc_period_us = 2'000'000;
  // Stock Android runs 382 processes before any third-party app (§V, Obs 1);
  // 379 daemons + system_server + the two prebuilt app processes = 382.
  int baseline_native_processes = 379;
  std::int64_t total_ram_kb = 2 * 1024 * 1024;
  binder::BinderDriver::Config driver;
};

class AndroidSystem {
 public:
  AndroidSystem();
  explicit AndroidSystem(SystemConfig config);
  ~AndroidSystem();

  AndroidSystem(const AndroidSystem&) = delete;
  AndroidSystem& operator=(const AndroidSystem&) = delete;

  // Boots the device: baseline processes, system_server with all system
  // services, prebuilt apps. Idempotent per instance.
  void Boot();

  // --- Accessors ------------------------------------------------------------

  os::Kernel& kernel() { return kernel_; }
  SimClock& clock() { return kernel_.clock(); }
  binder::BinderDriver& driver() { return *driver_; }
  binder::ServiceManager& service_manager() { return *service_manager_; }
  services::PackageManager& package_manager() { return package_manager_; }
  services::SystemContext& context() { return context_; }
  const SystemConfig& config() const { return config_; }

  Pid system_server_pid() const { return context_.system_server_pid; }
  rt::Runtime* system_runtime() { return context_.system_runtime(); }
  std::size_t SystemServerJgrCount();

  // Typed service lookup for tests/benches, e.g. Service<ClipboardService>().
  template <typename T>
  T* Service() {
    for (auto& [name, service] : service_objects_) {
      if (T* typed = dynamic_cast<T*>(service.get()); typed != nullptr) {
        return typed;
      }
    }
    return nullptr;
  }
  services::SystemService* FindServiceObject(const std::string& name);

  // Iterates every registered service object (name, object) — used by the
  // code-model builder to derive the analysis corpus from the live system.
  void ForEachService(
      const std::function<void(const std::string&, services::SystemService*)>&
          fn);

  // --- Apps -----------------------------------------------------------------

  // Installs `package` (granting `permissions`) and launches its process.
  services::AppProcess* InstallApp(const std::string& package,
                                   const std::set<std::string>& permissions);
  services::AppProcess* InstallApp(const std::string& package);
  // Relaunches a package whose process was killed (same uid, new pid).
  services::AppProcess* RelaunchApp(const std::string& package);
  services::AppProcess* FindApp(const std::string& package);
  void StopApp(const std::string& package);

  // Prebuilt app processes (Table IV) and their hosted services.
  services::AppProcess* bluetooth_app() { return FindApp("com.android.bluetooth"); }
  services::AppProcess* pico_tts_app() { return FindApp("com.svox.pico"); }

  // --- Simulation pump ---------------------------------------------------------

  // Runs between top-level transactions (installed as the driver's
  // post-transact hook): periodic GC on all runtimes, dead-process reaping,
  // soft-reboot handling, and the defense extension if installed.
  void Pump();

  // Extension slot used by the JGRE defense (checks thresholds, runs the
  // defender). Invoked from Pump after housekeeping.
  void SetPumpExtension(std::function<void()> extension) {
    pump_extension_ = std::move(extension);
  }
  // Invoked after a soft reboot completes (defense re-attaches its monitor).
  void SetPostRebootHook(std::function<void()> hook) {
    post_reboot_hook_ = std::move(hook);
  }

  // Runs GC on every live runtime immediately.
  void CollectAllGarbage();

  // Keeps a dynamically installed app service object alive and findable via
  // FindServiceObject (used for Table V third-party services).
  void KeepServiceAlive(const std::string& name,
                        std::shared_ptr<services::SystemService> service) {
    service_objects_[name] = std::move(service);
  }

  std::int64_t soft_reboots() const { return soft_reboots_seen_; }

  // Checkpointing. SaveState captures the full simulated-device state in
  // module order (kernel → driver → service manager → package manager →
  // services → facade bookkeeping → apps). RestoreState must run on a
  // freshly constructed AndroidSystem with the SAME SystemConfig that has
  // been Boot()ed: the boot deterministically recreates all structural
  // wiring (service objects, boot binder nodes, death listeners, procfs,
  // LMK), and restore then patches every module's mutable state wholesale.
  // The pump extension and post-reboot hook are wiring and survive restore.
  void SaveState(snapshot::Serializer& out) const;
  void RestoreState(snapshot::Deserializer& in);

 private:
  void BootSystemServer();
  void BootPrebuiltApps();
  void RegisterService(const std::string& name,
                       std::shared_ptr<services::SystemService> service);
  void HandleSoftReboot(const std::string& reason);

  SystemConfig config_;
  os::Kernel kernel_;
  std::unique_ptr<binder::BinderDriver> driver_;
  std::unique_ptr<binder::ServiceManager> service_manager_;
  services::PackageManager package_manager_;
  services::SystemContext context_;

  bool booted_ = false;
  std::map<std::string, std::shared_ptr<services::SystemService>>
      service_objects_;
  std::map<std::string, std::unique_ptr<services::AppProcess>> apps_;
  std::map<std::string, std::set<std::string>> app_permissions_;
  std::int32_t next_app_uid_ = 10050;

  TimeUs last_gc_us_ = 0;
  bool in_pump_ = false;
  std::int64_t soft_reboots_seen_ = 0;
  std::function<void()> pump_extension_;
  std::function<void()> post_reboot_hook_;
};

}  // namespace jgre::core

#endif  // JGRE_CORE_ANDROID_SYSTEM_H_
