// Table V third-party apps: installable on demand for the market-scan
// experiments (they are not part of a stock device image).
#ifndef JGRE_CORE_MARKET_APPS_H_
#define JGRE_CORE_MARKET_APPS_H_

#include "core/android_system.h"

namespace jgre::core {

// Installs the three vulnerable Google Play apps of Table V — Google
// Text-to-speech ("googletts"), Supernet VPN ("supernetvpn") and SnapMovie
// ("snapmovie") — launching their processes and registering their exported
// binder services.
void InstallThirdPartyVulnerableApps(AndroidSystem& system);

}  // namespace jgre::core

#endif  // JGRE_CORE_MARKET_APPS_H_
