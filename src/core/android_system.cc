#include "core/android_system.h"

#include <cassert>

#include "common/log.h"
#include "common/strings.h"

namespace jgre::core {

namespace {
os::Kernel::Config MakeKernelConfig(const SystemConfig& config) {
  os::Kernel::Config kc;
  kc.seed = config.seed;
  kc.total_ram_kb = config.total_ram_kb;
  return kc;
}
}  // namespace

AndroidSystem::AndroidSystem() : AndroidSystem(SystemConfig{}) {}

AndroidSystem::AndroidSystem(SystemConfig config)
    : config_(config), kernel_(MakeKernelConfig(config)) {
  driver_ = std::make_unique<binder::BinderDriver>(&kernel_, config_.driver);
  service_manager_ = std::make_unique<binder::ServiceManager>(driver_.get());
  driver_->SetPostTransactHook([this] { Pump(); });
  kernel_.SetLowMemoryKiller(std::make_unique<os::LowMemoryKiller>(
      &kernel_, os::LowMemoryKiller::DefaultLevels()));
}

AndroidSystem::~AndroidSystem() = default;

void AndroidSystem::Boot() {
  assert(!booted_ && "Boot() is one-shot per AndroidSystem");
  booted_ = true;
  // Native daemons, kernel threads, HALs: the 382-process baseline of Obs 1.
  for (int i = 0; i < config_.baseline_native_processes; ++i) {
    os::Kernel::ProcessConfig pc;
    pc.with_runtime = false;
    pc.memory_kb = 1024;
    pc.oom_score_adj = os::kNativeAdj;
    kernel_.CreateProcess(StrCat("native-daemon-", i), kRootUid, pc);
  }
  BootSystemServer();
  BootPrebuiltApps();
}

void AndroidSystem::BootSystemServer() {
  os::Kernel::ProcessConfig pc;
  pc.with_runtime = true;
  pc.boot_class_refs = config_.system_server_boot_class_refs;
  pc.max_global_refs = config_.system_server_max_jgr;
  pc.memory_kb = 180 * 1024;
  pc.oom_score_adj = os::kSystemAdj;
  pc.critical = true;
  const Pid pid = kernel_.CreateProcess("system_server", kSystemUid, pc);

  context_.kernel = &kernel_;
  context_.driver = driver_.get();
  context_.service_manager = service_manager_.get();
  context_.package_manager = &package_manager_;
  context_.system_server_pid = pid;

  // The full Android 6.0.1 service census: 32 vulnerable + 72 safe = 104.
  RegisterService(services::ClipboardService::kName,
                  std::make_shared<services::ClipboardService>(&context_));
  RegisterService(services::WifiService::kName,
                  std::make_shared<services::WifiService>(&context_));
  RegisterService(services::NotificationService::kName,
                  std::make_shared<services::NotificationService>(&context_));
  RegisterService(services::LocationService::kName,
                  std::make_shared<services::LocationService>(&context_));
  RegisterService(services::AudioService::kName,
                  std::make_shared<services::AudioService>(&context_));
  RegisterService(
      services::TelephonyRegistryService::kName,
      std::make_shared<services::TelephonyRegistryService>(&context_));
  RegisterService(services::ActivityService::kName,
                  std::make_shared<services::ActivityService>(&context_));
  RegisterService(services::PowerService::kName,
                  std::make_shared<services::PowerService>(&context_));
  RegisterService(services::AppOpsService::kName,
                  std::make_shared<services::AppOpsService>(&context_));
  RegisterService(services::MountService::kName,
                  std::make_shared<services::MountService>(&context_));
  RegisterService(services::ContentService::kName,
                  std::make_shared<services::ContentService>(&context_));
  RegisterService(
      services::CountryDetectorService::kName,
      std::make_shared<services::CountryDetectorService>(&context_));
  RegisterService(
      services::BluetoothManagerService::kName,
      std::make_shared<services::BluetoothManagerService>(&context_));
  RegisterService(services::PackageService::kName,
                  std::make_shared<services::PackageService>(&context_));
  RegisterService(services::FingerprintService::kName,
                  std::make_shared<services::FingerprintService>(&context_));
  RegisterService(services::TextServicesService::kName,
                  std::make_shared<services::TextServicesService>(&context_));
  RegisterService(services::InputMethodService::kName,
                  std::make_shared<services::InputMethodService>(&context_));
  RegisterService(services::AccessibilityService::kName,
                  std::make_shared<services::AccessibilityService>(&context_));
  RegisterService(services::PrintService::kName,
                  std::make_shared<services::PrintService>(&context_));
  RegisterService(services::WindowService::kName,
                  std::make_shared<services::WindowService>(&context_));
  RegisterService(services::WallpaperService::kName,
                  std::make_shared<services::WallpaperService>(&context_));
  RegisterService(services::InputService::kName,
                  std::make_shared<services::InputService>(&context_));
  RegisterService(services::DisplayService::kName,
                  std::make_shared<services::DisplayService>(&context_));
  RegisterService(
      services::NetworkManagementService::kName,
      std::make_shared<services::NetworkManagementService>(&context_));
  RegisterService(services::ConnectivityService::kName,
                  std::make_shared<services::ConnectivityService>(&context_));
  RegisterService(services::SipService::kName,
                  std::make_shared<services::SipService>(&context_));
  RegisterService(services::EthernetService::kName,
                  std::make_shared<services::EthernetService>(&context_));
  RegisterService(services::MediaSessionService::kName,
                  std::make_shared<services::MediaSessionService>(&context_));
  RegisterService(services::MediaRouterService::kName,
                  std::make_shared<services::MediaRouterService>(&context_));
  RegisterService(
      services::MediaProjectionService::kName,
      std::make_shared<services::MediaProjectionService>(&context_));
  RegisterService(services::MidiService::kName,
                  std::make_shared<services::MidiService>(&context_));
  RegisterService(services::LauncherAppsService::kName,
                  std::make_shared<services::LauncherAppsService>(&context_));
  RegisterService(services::TvInputService::kName,
                  std::make_shared<services::TvInputService>(&context_));
  for (const std::string& name :
       services::GenericSafeService::SafeServiceNames()) {
    RegisterService(
        name, std::make_shared<services::GenericSafeService>(&context_, name));
  }
  JGRE_LOG(kInfo, "AndroidSystem")
      << "system_server up, " << service_manager_->ServiceCount()
      << " services registered";
}

void AndroidSystem::RegisterService(
    const std::string& name,
    std::shared_ptr<services::SystemService> service) {
  // App-hosted services are registered under their own pid; framework
  // services under system_server.
  Pid owner = context_.system_server_pid;
  if (auto* reg =
          dynamic_cast<services::RegistryServiceBase*>(service.get());
      reg != nullptr && reg->host_pid().valid()) {
    owner = reg->host_pid();
  }
  driver_->RegisterBinder(service, owner);
  Status status = service_manager_->AddService(name, service, kSystemUid);
  assert(status.ok());
  (void)status;
  service_objects_[name] = std::move(service);
}

void AndroidSystem::BootPrebuiltApps() {
  // com.android.bluetooth (uid 1002) hosting GattService + AdapterService.
  package_manager_.InstallPackage("com.android.bluetooth", Uid{1002});
  os::Kernel::ProcessConfig pc;
  pc.with_runtime = true;
  pc.boot_class_refs = config_.app_boot_class_refs;
  pc.memory_kb = 42 * 1024;
  pc.oom_score_adj = os::kPerceptibleAppAdj;
  const Pid bt_pid =
      kernel_.CreateProcess("com.android.bluetooth", Uid{1002}, pc);
  apps_["com.android.bluetooth"] = std::make_unique<services::AppProcess>(
      driver_.get(), service_manager_.get(), bt_pid, Uid{1002},
      "com.android.bluetooth");
  RegisterService(services::GattService::kName,
                  std::make_shared<services::GattService>(&context_, bt_pid));
  RegisterService(
      services::BluetoothAdapterService::kName,
      std::make_shared<services::BluetoothAdapterService>(&context_, bt_pid));

  // com.svox.pico (PicoTts) hosting PicoService, an unmodified
  // TextToSpeechService subclass.
  package_manager_.InstallPackage("com.svox.pico", Uid{10001});
  const Pid pico_pid = kernel_.CreateProcess("com.svox.pico", Uid{10001}, pc);
  apps_["com.svox.pico"] = std::make_unique<services::AppProcess>(
      driver_.get(), service_manager_.get(), pico_pid, Uid{10001},
      "com.svox.pico");
  RegisterService("picotts", std::make_shared<services::TextToSpeechService>(
                                 &context_, "picotts", pico_pid));
}

services::SystemService* AndroidSystem::FindServiceObject(
    const std::string& name) {
  auto it = service_objects_.find(name);
  return it == service_objects_.end() ? nullptr : it->second.get();
}

void AndroidSystem::ForEachService(
    const std::function<void(const std::string&, services::SystemService*)>&
        fn) {
  for (auto& [name, service] : service_objects_) fn(name, service.get());
}

std::size_t AndroidSystem::SystemServerJgrCount() {
  rt::Runtime* runtime = context_.system_runtime();
  return runtime == nullptr ? 0 : runtime->JgrCount();
}

services::AppProcess* AndroidSystem::InstallApp(
    const std::string& package, const std::set<std::string>& permissions) {
  const Uid uid{next_app_uid_++};
  package_manager_.InstallPackage(package, uid, permissions);
  app_permissions_[package] = permissions;
  os::Kernel::ProcessConfig pc;
  pc.with_runtime = true;
  pc.boot_class_refs = config_.app_boot_class_refs;
  pc.memory_kb = 38 * 1024;
  pc.oom_score_adj = os::kForegroundAppAdj;
  const Pid pid = kernel_.CreateProcess(package, uid, pc);
  auto app = std::make_unique<services::AppProcess>(
      driver_.get(), service_manager_.get(), pid, uid, package);
  services::AppProcess* raw = app.get();
  apps_[package] = std::move(app);
  return raw;
}

services::AppProcess* AndroidSystem::InstallApp(const std::string& package) {
  return InstallApp(package, {});
}

services::AppProcess* AndroidSystem::RelaunchApp(const std::string& package) {
  auto uid = package_manager_.GetUidForPackage(package);
  if (!uid.ok()) return nullptr;
  os::Kernel::ProcessConfig pc;
  pc.with_runtime = true;
  pc.boot_class_refs = config_.app_boot_class_refs;
  pc.memory_kb = 38 * 1024;
  pc.oom_score_adj = os::kForegroundAppAdj;
  const Pid pid = kernel_.CreateProcess(package, uid.value(), pc);
  auto app = std::make_unique<services::AppProcess>(
      driver_.get(), service_manager_.get(), pid, uid.value(), package);
  services::AppProcess* raw = app.get();
  apps_[package] = std::move(app);
  return raw;
}

services::AppProcess* AndroidSystem::FindApp(const std::string& package) {
  auto it = apps_.find(package);
  return it == apps_.end() ? nullptr : it->second.get();
}

void AndroidSystem::StopApp(const std::string& package) {
  if (services::AppProcess* app = FindApp(package); app != nullptr) {
    kernel_.KillProcess(app->pid(), "stopped");
  }
}

void AndroidSystem::CollectAllGarbage() {
  for (Pid pid : kernel_.LivePids()) {
    os::Process* proc = kernel_.FindProcess(pid);
    if (proc != nullptr && proc->HasRuntime()) {
      proc->runtime->CollectGarbage();
    }
  }
}

void AndroidSystem::Pump() {
  if (in_pump_ || !booted_) return;
  in_pump_ = true;
  if (auto reboot = kernel_.TakePendingSoftReboot(); reboot.has_value()) {
    HandleSoftReboot(*reboot);
  }
  const TimeUs now = clock().NowUs();
  if (now - last_gc_us_ >= config_.gc_period_us) {
    last_gc_us_ = now;
    CollectAllGarbage();
  }
  if (pump_extension_) pump_extension_();
  in_pump_ = false;
}

void AndroidSystem::SaveState(snapshot::Serializer& out) const {
  assert(booted_ && "checkpoint requires a booted system");
  out.Marker(0x53595331);  // "SYS1"
  kernel_.SaveState(out);
  driver_->SaveState(out);
  service_manager_->SaveState(out);
  package_manager_.SaveState(out);
  out.U64(service_objects_.size());
  for (const auto& [name, service] : service_objects_) {  // map: name order
    out.Str(name);
    service->SaveState(out);
  }
  out.I64(next_app_uid_);
  out.U64(last_gc_us_);
  out.I64(soft_reboots_seen_);
  out.U64(apps_.size());
  for (const auto& [package, app] : apps_) {
    out.Str(package);
    out.I64(app->pid().value());
    out.I64(app->uid().value());
  }
  out.U64(app_permissions_.size());
  for (const auto& [package, permissions] : app_permissions_) {
    out.Str(package);
    out.U64(permissions.size());
    for (const std::string& permission : permissions) out.Str(permission);
  }
}

void AndroidSystem::RestoreState(snapshot::Deserializer& in) {
  assert(booted_ && "restore requires a freshly booted system");
  in.Marker(0x53595331);
  kernel_.RestoreState(in);
  driver_->RestoreState(in);
  service_manager_->RestoreState(in);
  package_manager_.RestoreState(in);
  const std::uint64_t service_count = in.U64();
  if (service_count != service_objects_.size()) {
    in.Fail("checkpoint service census differs from the booted system");
    return;
  }
  for (std::uint64_t i = 0; i < service_count && in.ok(); ++i) {
    const std::string name = in.Str();
    auto it = service_objects_.find(name);
    if (it == service_objects_.end()) {
      in.Fail(StrCat("checkpoint has service '", name,
                     "' the booted system lacks"));
      return;
    }
    it->second->RestoreState(in);
  }
  next_app_uid_ = static_cast<std::int32_t>(in.I64());
  last_gc_us_ = in.U64();
  soft_reboots_seen_ = in.I64();
  apps_.clear();
  for (std::uint64_t i = 0, n = in.U64(); i < n && in.ok(); ++i) {
    std::string package = in.Str();
    const Pid pid{static_cast<std::int32_t>(in.I64())};
    const Uid uid{static_cast<std::int32_t>(in.I64())};
    apps_[package] = std::make_unique<services::AppProcess>(
        driver_.get(), service_manager_.get(), pid, uid, package);
  }
  app_permissions_.clear();
  for (std::uint64_t i = 0, n = in.U64(); i < n && in.ok(); ++i) {
    std::string package = in.Str();
    std::set<std::string> permissions;
    for (std::uint64_t p = 0, np = in.U64(); p < np && in.ok(); ++p) {
      permissions.insert(in.Str());
    }
    app_permissions_.emplace(std::move(package), std::move(permissions));
  }
}

void AndroidSystem::HandleSoftReboot(const std::string& reason) {
  ++soft_reboots_seen_;
  JGRE_LOG(kWarning, "AndroidSystem")
      << "SOFT REBOOT #" << soft_reboots_seen_ << ": " << reason;
  // Zygote restart kills every Android process.
  for (auto& [package, app] : apps_) {
    if (app->alive()) kernel_.KillProcess(app->pid(), "soft reboot");
  }
  // Tear down the old service objects and registry...
  service_objects_.clear();
  service_manager_->Clear();
  kernel_.ReapDeadProcesses();
  // ...and bring the system back: new system_server, fresh services, and the
  // persistent prebuilt apps.
  const TimeUs kRebootDowntimeUs = 15'000'000;  // ~15 s observed soft reboot
  clock().AdvanceUs(kRebootDowntimeUs);
  BootSystemServer();
  BootPrebuiltApps();
  if (post_reboot_hook_) post_reboot_hook_();
}

}  // namespace jgre::core
