// The unified per-device simulation API.
//
// Before this layer, a simulated device could be built three divergent ways
// (ExperimentConfig::Build, ExperimentConfig::BuildPrefix + BuildOn, and the
// branch-phase Experiment(config, system) constructor). DeviceFactory is now
// the ONE construction path every consumer goes through — the experiment
// scenario driver, harness::BranchRunner, the fuzzer's CampaignRunner, and
// the fleet::FleetRunner:
//
//   sim::DeviceSpec spec;
//   spec.WithSeed(42).WithBenignApps(10).WithAttack(vuln).WithDefense();
//   sim::DeviceFactory factory(spec);
//   std::unique_ptr<sim::DeviceSim> device = factory.CreateDevice();
//
// A DeviceSim owns ALL per-device state: the AndroidSystem (and with it the
// per-device kernel, binder driver, EventBus, and label interner), the
// installed defender, the trace/metrics sinks, the benign workload plus its
// interaction schedule, and the attacker. Nothing is aliased between two
// DeviceSims — two devices can be built, run, and destroyed on different
// threads with no shared mutable state, which is what lets the fleet layer
// run hundreds of heterogeneous devices across the work-stealing pool.
//
// Seed derivation (identical to the historical builder): the system boots
// with `seed`, the warmup workload draws from `seed + 3`; the scenario phase
// draws from `scenario_seed` (default: `seed`) — benign workload from
// `scenario_seed + 1`, the interaction scheduler from `scenario_seed + 2`.
// Splitting the scenario seed from the boot seed is what lets many fleet
// devices share one warmed boot image (same boot seed → same snapshot) while
// still running decorrelated scenarios.
//
// The build is split at the checkpoint boundary: BootPrefix() boots the
// device and runs the shared warmup workload to the quiescent state
// snapshot::SystemSnapshot captures, and CreateDeviceOn(system) completes
// the scenario on any such system — freshly built or restored from a
// checkpoint. CreateDevice() is CreateDeviceOn(BootPrefix()).
#ifndef JGRE_SIM_DEVICE_H_
#define JGRE_SIM_DEVICE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attack/benign_workload.h"
#include "attack/malicious_app.h"
#include "attack/vuln_registry.h"
#include "common/rng.h"
#include "common/types.h"
#include "core/android_system.h"
#include "defense/jgre_defender.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "obs/trace_buffer.h"

namespace jgre::sim {

// Declarative description of one simulated device plus its scenario. Pure
// data; DeviceFactory is the only thing that turns a spec into live state.
class DeviceSpec {
 public:
  DeviceSpec& WithSeed(std::uint64_t seed) {
    seed_ = seed;
    return *this;
  }
  // Decorrelates the scenario phase (benign workload, interaction schedule)
  // from the boot/warmup seed. Defaults to the boot seed, preserving the
  // historical single-seed behavior byte-for-byte.
  DeviceSpec& WithScenarioSeed(std::uint64_t seed) {
    scenario_seed_ = seed;
    return *this;
  }
  // Base system configuration; its seed is overridden by WithSeed.
  DeviceSpec& WithSystemConfig(const core::SystemConfig& config) {
    system_config_ = config;
    return *this;
  }
  DeviceSpec& WithBenignApps(int count) {
    benign_apps_ = count;
    return *this;
  }
  DeviceSpec& WithAttack(const attack::VulnSpec& vuln) {
    vuln_ = vuln;
    return *this;
  }
  DeviceSpec& WithAttackPackage(std::string package) {
    attack_package_ = std::move(package);
    return *this;
  }
  DeviceSpec& WithDefense(bool enabled = true) {
    defense_ = enabled;
    return *this;
  }
  DeviceSpec& WithDefenderConfig(const defense::JgreDefender::Config& config) {
    defense_ = true;
    defender_config_ = config;
    return *this;
  }
  DeviceSpec& WithThresholds(std::size_t alarm, std::size_t report) {
    defense_ = true;
    defender_config_.monitor.alarm_threshold = alarm;
    defender_config_.monitor.report_threshold = report;
    return *this;
  }
  DeviceSpec& WithMaxAttackerCalls(int calls) {
    max_attacker_calls_ = calls;
    return *this;
  }
  // Buffer TraceEvents of the masked categories for Chrome-trace export.
  DeviceSpec& WithTrace(obs::CategoryMask mask = obs::kAllCategories) {
    trace_ = true;
    trace_mask_ = mask;
    return *this;
  }
  // Fold the event stream into a MetricsRegistry (DeviceSim::metrics()).
  DeviceSpec& WithMetrics() {
    metrics_ = true;
    return *this;
  }
  // Shared warmup prefix: after boot, run one benign monkey session over
  // `apps` apps (each foregrounded for `foreground_us`, package prefix
  // "com.warm.app", seed + 3), then stop them all and collect garbage —
  // leaving the device at the populated-but-quiescent state BranchRunner
  // checkpoints. `interaction_period_us` overrides the monkey's event
  // period (0 = the workload default) for denser warmup streams.
  DeviceSpec& WithWarmup(int apps, DurationUs foreground_us = 120'000'000,
                         DurationUs interaction_period_us = 0) {
    warmup_apps_ = apps;
    warmup_foreground_us_ = foreground_us;
    warmup_interaction_period_us_ = interaction_period_us;
    return *this;
  }

  std::uint64_t seed() const { return seed_; }
  std::uint64_t scenario_seed() const {
    return scenario_seed_.value_or(seed_);
  }
  const core::SystemConfig& system_config() const { return system_config_; }
  int benign_apps() const { return benign_apps_; }
  const std::optional<attack::VulnSpec>& vuln() const { return vuln_; }
  const std::string& attack_package() const { return attack_package_; }
  bool defense() const { return defense_; }
  const defense::JgreDefender::Config& defender_config() const {
    return defender_config_;
  }
  int max_attacker_calls() const { return max_attacker_calls_; }
  bool trace() const { return trace_; }
  obs::CategoryMask trace_mask() const { return trace_mask_; }
  bool metrics() const { return metrics_; }
  int warmup_apps() const { return warmup_apps_; }
  DurationUs warmup_foreground_us() const { return warmup_foreground_us_; }
  DurationUs warmup_interaction_period_us() const {
    return warmup_interaction_period_us_;
  }

 private:
  std::uint64_t seed_ = 42;
  std::optional<std::uint64_t> scenario_seed_;
  core::SystemConfig system_config_;
  int benign_apps_ = 0;
  std::optional<attack::VulnSpec> vuln_;
  std::string attack_package_ = "com.evil.app";
  bool defense_ = false;
  defense::JgreDefender::Config defender_config_;
  int max_attacker_calls_ = 60'000;
  bool trace_ = false;
  obs::CategoryMask trace_mask_ = obs::kAllCategories;
  bool metrics_ = false;
  int warmup_apps_ = 0;
  DurationUs warmup_foreground_us_ = 120'000'000;
  DurationUs warmup_interaction_period_us_ = 0;
};

// Hash over exactly the fields that shape BootPrefix() output: the boot
// seed, the system configuration, and the warmup workload. Two specs with
// equal prefix keys build byte-identical quiescent systems, so a snapshot of
// one is a valid reset/clone image for the other — the property the fleet
// layer uses to serve hundreds of heterogeneous devices from a handful of
// warmed boot images.
std::uint64_t PrefixKey(const DeviceSpec& spec);

// One live simulated device. Owns every piece of per-device state; never
// shares interned tables, observability sinks, or RNG streams with another
// DeviceSim. Single-use: build a fresh one per run.
class DeviceSim {
 public:
  ~DeviceSim();

  DeviceSim(const DeviceSim&) = delete;
  DeviceSim& operator=(const DeviceSim&) = delete;

  core::AndroidSystem& system() { return *system_; }
  obs::EventBus& bus() { return system_->kernel().bus(); }
  const DeviceSpec& spec() const { return spec_; }
  // Null unless the corresponding With* was configured.
  defense::JgreDefender* defender() { return defender_.get(); }
  attack::MaliciousApp* attacker() { return attacker_.get(); }
  services::AppProcess* attacker_process() { return attacker_process_; }
  attack::BenignWorkload* benign() { return benign_.get(); }
  // Trace/metrics sinks ride the bus's buffered (batched) delivery; these
  // accessors flush staged events first so reads always see a complete view.
  obs::TraceBuffer* trace();
  obs::MetricsRegistry* metrics();
  // The scenario RNG stream (scenario_seed + 2). The benign interaction
  // schedule below was drawn from this stream at build time; scenario
  // drivers keep drawing from it so the combined stream matches the
  // historical single-owner behavior exactly.
  Rng& rng() { return rng_; }
  // Next interaction due-time per benign app (index-aligned with
  // benign()->packages()). Scenario drivers advance these as they fire.
  std::vector<TimeUs>& benign_schedule() { return next_benign_; }

  // Serializes the trace buffer as Chrome-trace JSON (process names resolved
  // against the kernel's process table). False if tracing is off or the
  // write fails.
  bool WriteChromeTrace(const std::string& path);

 private:
  friend class DeviceFactory;
  DeviceSim(const DeviceSpec& spec,
            std::unique_ptr<core::AndroidSystem> system);

  DeviceSpec spec_;
  Rng rng_;
  std::unique_ptr<core::AndroidSystem> system_;  // first: destroyed last
  std::unique_ptr<defense::JgreDefender> defender_;
  std::unique_ptr<obs::TraceBuffer> trace_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::MetricsSink> metrics_sink_;
  std::unique_ptr<attack::BenignWorkload> benign_;
  std::vector<TimeUs> next_benign_;
  services::AppProcess* attacker_process_ = nullptr;
  std::unique_ptr<attack::MaliciousApp> attacker_;
};

// THE construction path. Fixes the setup order once (boot → warmup →
// defense install → observability subscriptions → benign workload + schedule
// → attacker install) so every consumer shares it byte-for-byte.
class DeviceFactory {
 public:
  explicit DeviceFactory(DeviceSpec spec) : spec_(std::move(spec)) {}

  // Builds just the shared prefix: a booted (and warmed-up) quiescent
  // system, before any defense/benign/attacker setup. This is the state
  // snapshot::SystemSnapshot captures and the fleet layer clones.
  std::unique_ptr<core::AndroidSystem> BootPrefix() const;

  // Completes the scenario on an existing prefix system — the output of
  // BootPrefix(), or a fresh Boot()ed system restored from a checkpoint of
  // one. The system must have been built from this spec's boot seed and
  // system config.
  std::unique_ptr<DeviceSim> CreateDeviceOn(
      std::unique_ptr<core::AndroidSystem> system) const;

  // Boots the device and performs the whole setup sequence.
  std::unique_ptr<DeviceSim> CreateDevice() const {
    return CreateDeviceOn(BootPrefix());
  }

  const DeviceSpec& spec() const { return spec_; }

 private:
  DeviceSpec spec_;
};

}  // namespace jgre::sim

#endif  // JGRE_SIM_DEVICE_H_
