#include "sim/device.h"

#include "obs/chrome_trace.h"
#include "snapshot/serializer.h"

namespace jgre::sim {

std::uint64_t PrefixKey(const DeviceSpec& spec) {
  // Every field that BootPrefix() reads, in declaration order. Byte-stable
  // encoding via the checkpoint serializer so the key is identical across
  // runs and machines.
  snapshot::Serializer out;
  out.U64(spec.seed());
  const core::SystemConfig& sys = spec.system_config();
  out.U64(sys.system_server_boot_class_refs);
  out.U64(sys.app_boot_class_refs);
  out.U64(sys.system_server_max_jgr);
  out.I64(sys.gc_period_us);
  out.I64(sys.baseline_native_processes);
  out.I64(sys.total_ram_kb);
  out.I64(sys.driver.base_transact_cost_us);
  out.F64(sys.driver.us_per_kb);
  out.I64(sys.driver.defense_log_base_us);
  out.F64(sys.driver.defense_log_fraction);
  out.U64(sys.driver.ipc_log_capacity);
  out.I64(spec.warmup_apps());
  out.I64(spec.warmup_foreground_us());
  out.I64(spec.warmup_interaction_period_us());
  return out.Hash();
}

std::unique_ptr<core::AndroidSystem> DeviceFactory::BootPrefix() const {
  core::SystemConfig sys_config = spec_.system_config();
  sys_config.seed = spec_.seed();
  auto system = std::make_unique<core::AndroidSystem>(sys_config);
  system->Boot();
  if (spec_.warmup_apps() > 0) {
    attack::BenignWorkload::Options options;
    options.app_count = spec_.warmup_apps();
    options.per_app_foreground_us = spec_.warmup_foreground_us();
    if (spec_.warmup_interaction_period_us() > 0) {
      options.interaction_period_us = spec_.warmup_interaction_period_us();
    }
    options.seed = spec_.seed() + 3;
    options.package_prefix = "com.warm.app";
    attack::BenignWorkload warmup(system.get(), options);
    warmup.InstallAll();
    warmup.RunMonkeySession();
    // Back to quiescent: stop every warmup app (releasing its service-side
    // registrations via death notification) and reclaim the JGRs they
    // pinned, so the checkpoint boundary is a near-baseline device.
    for (const std::string& package : warmup.packages()) {
      system->StopApp(package);
    }
    system->CollectAllGarbage();
  }
  return system;
}

std::unique_ptr<DeviceSim> DeviceFactory::CreateDeviceOn(
    std::unique_ptr<core::AndroidSystem> system) const {
  return std::unique_ptr<DeviceSim>(new DeviceSim(spec_, std::move(system)));
}

DeviceSim::DeviceSim(const DeviceSpec& spec,
                     std::unique_ptr<core::AndroidSystem> system)
    : spec_(spec), rng_(spec.scenario_seed() + 2), system_(std::move(system)) {
  if (spec_.defense()) {
    defender_ = std::make_unique<defense::JgreDefender>(
        system_.get(), spec_.defender_config());
    defender_->Install();
  }
  // Pure sinks: subscribing them never advances the virtual clock, so a
  // traced run is event-for-event identical to an untraced one. Both ride
  // buffered delivery — the trace()/metrics() accessors flush before reads.
  if (spec_.trace()) {
    trace_ = std::make_unique<obs::TraceBuffer>();
    bus().Subscribe(trace_.get(), spec_.trace_mask(), /*pid_filter=*/-1,
                    obs::Delivery::kBuffered);
  }
  if (spec_.metrics()) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_sink_ = std::make_unique<obs::MetricsSink>(metrics_.get());
    bus().Subscribe(metrics_sink_.get(), obs::kAllCategories,
                    /*pid_filter=*/-1, obs::Delivery::kBuffered);
  }

  attack::BenignWorkload::Options benign_options;
  benign_options.app_count = spec_.benign_apps();
  benign_options.seed = spec_.scenario_seed() + 1;
  benign_ = std::make_unique<attack::BenignWorkload>(system_.get(),
                                                     benign_options);
  if (spec_.benign_apps() > 0) {
    benign_->InstallAll();
    next_benign_.resize(benign_->packages().size());
    for (TimeUs& t : next_benign_) {
      t = system_->clock().NowUs() + rng_.UniformU64(150'000);
    }
  }

  if (spec_.vuln().has_value()) {
    attacker_process_ = attack::InstallAttackApp(
        system_.get(), spec_.attack_package(), *spec_.vuln());
    attacker_ = std::make_unique<attack::MaliciousApp>(
        system_.get(), attacker_process_, *spec_.vuln());
  }
}

DeviceSim::~DeviceSim() {
  if (trace_ != nullptr) bus().Unsubscribe(trace_.get());
  if (metrics_sink_ != nullptr) bus().Unsubscribe(metrics_sink_.get());
}

obs::TraceBuffer* DeviceSim::trace() {
  if (trace_ != nullptr) bus().Flush();
  return trace_.get();
}

obs::MetricsRegistry* DeviceSim::metrics() {
  if (metrics_ != nullptr) bus().Flush();
  return metrics_.get();
}

bool DeviceSim::WriteChromeTrace(const std::string& path) {
  if (trace_ == nullptr) return false;
  bus().Flush();  // drain staged events into the trace ring
  auto resolver = [this](std::int32_t pid) -> std::string {
    const os::Process* p = system_->kernel().FindProcess(Pid{pid});
    return p == nullptr ? std::string() : p->name;
  };
  return obs::WriteChromeTraceFile(path, bus(), *trace_, resolver);
}

}  // namespace jgre::sim
