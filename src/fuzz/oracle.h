// Oracle — did this execution exhaust (or move measurably toward exhausting)
// a victim's bounded resource?
//
// Three signals, all measured across a forced GC so transient references
// never count:
//   * runtime abort / soft reboot — the detonation itself;
//   * retained JGR growth — judged against the same exploitable/bounded
//     rates the directed verifier uses (model/growth_thresholds.h);
//   * fd-table growth — the §VI resource the JGR-centric pipeline is
//     structurally blind to.
//
// Two stages with different bars:
//   Screen()  — permissive, for mixed sequences: a vulnerable interface's
//               growth is diluted by the benign calls around it, so the
//               screen triggers on an absolute retained floor or the bounded
//               rate. Screen hits are *suspects*, not findings.
//   Confirm() — strict, for a minimized homogeneous probe of one interface:
//               the shared exploitable rate. Only Confirm creates findings,
//               which is what keeps the false-positive count at zero.
#ifndef JGRE_FUZZ_ORACLE_H_
#define JGRE_FUZZ_ORACLE_H_

#include <cstdint>

#include "model/growth_thresholds.h"

namespace jgre::fuzz {

// What one execution did to its victim, measured GC-to-GC.
struct Observation {
  int calls = 0;
  std::int64_t jgr_before = 0;  // post-GC, before the sequence
  std::int64_t jgr_after = 0;   // post-GC, after the sequence
  std::int64_t fd_before = 0;
  std::int64_t fd_after = 0;
  bool victim_aborted = false;
};

enum class ExhaustionKind { kNone, kJgr, kFd, kAbort };

const char* ExhaustionKindName(ExhaustionKind kind);

struct OracleVerdict {
  ExhaustionKind kind = ExhaustionKind::kNone;
  double jgr_growth_per_call = 0.0;
  double fd_growth_per_call = 0.0;

  bool suspicious() const { return kind != ExhaustionKind::kNone; }
};

struct OracleOptions {
  // Shared with dynamic::VerifyOptions — the single source of truth for
  // what growth rate counts as exploitable vs bounded.
  model::GrowthThresholds growth;
  // Screen: absolute retained-entry floor that flags a sequence even when
  // per-call growth is diluted below the rate cutoffs.
  std::int64_t retained_jgr_floor = 8;
  std::int64_t retained_fd_floor = 4;
};

// The per-stage bar the shared judge applies: a growth-rate cutoff per
// resource plus optional absolute retained-entry floors (< 0 disables the
// floor — Confirm judges rate only). Screen and Confirm are the same code
// path with different bars, so the growth thresholds cannot drift between
// the stages again.
struct OracleBar {
  double jgr_rate = 0.0;
  double fd_rate = 0.0;
  std::int64_t jgr_floor = -1;
  std::int64_t fd_floor = -1;
};

class Oracle {
 public:
  Oracle() = default;
  explicit Oracle(OracleOptions options) : options_(options) {}

  OracleVerdict Screen(const Observation& obs) const {
    return Judge(obs, ScreenBar());
  }
  OracleVerdict Confirm(const Observation& obs) const {
    return Judge(obs, ConfirmBar());
  }

  // The one judging code path. Exposed (with the stage bars) so callers that
  // re-derive verdicts — the detect oracle hunt — run the exact same logic.
  OracleVerdict Judge(const Observation& obs, const OracleBar& bar) const;
  OracleBar ScreenBar() const {
    return {options_.growth.bounded_jgr_per_call,
            options_.growth.exploitable_fd_per_call,
            options_.retained_jgr_floor, options_.retained_fd_floor};
  }
  OracleBar ConfirmBar() const {
    return {options_.growth.exploitable_jgr_per_call,
            options_.growth.exploitable_fd_per_call, -1, -1};
  }

  const OracleOptions& options() const { return options_; }

 private:
  OracleOptions options_;
};

}  // namespace jgre::fuzz

#endif  // JGRE_FUZZ_ORACLE_H_
