// CoverageProbe — the fuzzer's feedback signal, fed by the obs EventBus.
//
// The simulator has no branch counters to instrument, but it has something
// better suited to this bug class: the unified event stream. The probe
// subscribes to kIpc and kJgr (plus kLmk for detonations) on one execution's
// bus and folds every top-level transaction into a *signature element*:
//
//   hash( ipc type key (descriptor_id<<32 | code),
//         victim JGR delta across the call (bucketed),
//         #jgr adds, #jgr removes within the call )
//
// i.e. "calling this interface moved the service's retained state like
// this". A register that retains 3 JGRs, the same register hitting a full
// per-process slot (delta 0), an unregister releasing entries, and a runtime
// abort all hash to different elements — exactly the service-side state
// transitions and JGR-table delta signatures the campaign treats as new
// coverage. Element hashes are FNV over fixed-width fields of deterministic
// ids, so a signature is stable across runs, shards, and machines.
#ifndef JGRE_FUZZ_COVERAGE_H_
#define JGRE_FUZZ_COVERAGE_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "obs/event.h"
#include "obs/event_bus.h"

namespace jgre::fuzz {

class CoverageProbe : public obs::EventSink {
 public:
  // Subscribes to kIpc|kJgr|kLmk on `bus`; unsubscribes on destruction.
  explicit CoverageProbe(obs::EventBus* bus);
  ~CoverageProbe() override;

  CoverageProbe(const CoverageProbe&) = delete;
  CoverageProbe& operator=(const CoverageProbe&) = delete;

  void OnEvent(const obs::TraceEvent& event) override { Fold(event); }
  // Buffered-delivery path. The fold is order-dependent across kIpc/kJgr
  // interleavings, and the single staging ring preserves emission order, so
  // draining in chunks produces the same signatures as per-event delivery.
  void OnBatch(const obs::TraceEvent* events, std::size_t count) override {
    for (std::size_t i = 0; i < count; ++i) Fold(events[i]);
  }

  // Finalizes the in-flight call and returns the sorted unique signature
  // elements observed since construction (or the last Take). Flushes the
  // bus first so staged events are folded before the harvest.
  std::vector<std::uint64_t> TakeElements();

  // Maps a raw victim-JGR delta to its signature bucket (exact for small
  // deltas, coarse beyond) — exposed for tests.
  static int DeltaBucket(std::int64_t delta);

 private:
  void Fold(const obs::TraceEvent& event);
  void FlushCall();

  obs::EventBus* bus_;
  std::set<std::uint64_t> elements_;
  // In-flight top-level transaction.
  bool call_open_ = false;
  std::int64_t call_key_ = 0;
  std::int32_t callee_pid_ = -1;
  std::int64_t jgr_at_call_start_ = 0;
  int adds_in_call_ = 0;
  int removes_in_call_ = 0;
  // Last JGR count observed per pid (kJgr arg0 = count after the op).
  std::map<std::int32_t, std::int64_t> last_jgr_;
};

}  // namespace jgre::fuzz

#endif  // JGRE_FUZZ_COVERAGE_H_
