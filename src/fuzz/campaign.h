// CampaignRunner — the coverage-guided fuzzing loop, composed from the three
// prior subsystems: snapshot restore as the reset primitive (src/snapshot via
// harness::BranchRunner), the EventBus as the coverage feed (src/obs), and
// the work-stealing pool for shard fan-out (src/harness).
//
// One campaign:
//   1. Prepare: derive the code model + static analysis from a booted device,
//      build the reset image (boot + warmup prefix, captured once), and the
//      call pool of live IPC interfaces.
//   2. Screen (rounds x shards): each shard owns an independent RNG stream
//      seeded from (--seed, round, shard) and replays randomized/mutated
//      sequences on freshly reset systems. Executions that reach new
//      signature elements seed the corpus; executions the oracle screens as
//      suspicious become suspects. Shard results merge in submission order,
//      so the corpus and suspect list are identical for any --jobs.
//   3. Confirm: every distinct interface appearing in a suspect gets one
//      homogeneous probe (the suspect's exact call, repeated) judged at the
//      shared exploitable rate — only these become findings, which is what
//      keeps benign services at zero false positives.
//   4. Minimize: each finding's witness sequence is trimmed to the shortest
//      sequence that still screens suspicious and still contains the found
//      interface.
//
// Cross-checking: CrossCheck() compares the findings against the static
// pipeline's candidate set and the directed verifier's census — which
// known-vulnerable interfaces the fuzzer re-found, and which findings the
// sift rules (or the JGR-centric pipeline itself) discharged.
#ifndef JGRE_FUZZ_CAMPAIGN_H_
#define JGRE_FUZZ_CAMPAIGN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/pipeline.h"
#include "analysis/protocol/protocol_graph.h"
#include "common/status.h"
#include "common/types.h"
#include "core/android_system.h"
#include "dynamic/verifier.h"
#include "fuzz/corpus.h"
#include "fuzz/executor.h"
#include "fuzz/mutator.h"
#include "fuzz/oracle.h"
#include "harness/branch_runner.h"
#include "model/code_model.h"

namespace jgre::fuzz {

struct CampaignOptions {
  std::uint64_t seed = 42;
  int jobs = 1;
  // Screening budget: total randomized sequence executions across all
  // rounds and shards. The round/shard split is a pure function of the
  // budget, so results do not depend on --jobs.
  int budget = 240;
  int rounds = 3;       // corpus-feedback barriers
  int shard_execs = 20; // executions per shard task
  // Probability a shard mutates a corpus seed (vs generating fresh) once the
  // corpus is non-empty.
  double mutate_probability = 0.75;
  int confirm_calls = 300;  // homogeneous confirmation probe length
  int max_suspects = 32;    // screening keeps at most this many suspects
  // Seed the screen phase from the static analysis: every witness-bearing
  // candidate whose service is live contributes one short homogeneous
  // sequence, executed before random screening. Seed executions are deducted
  // from `budget`, so a seeded campaign compares against an unseeded one at
  // the same total screening spend; analysis-derived suspects ride above the
  // max_suspects cap (they already carry a static witness and must not crowd
  // out — or be crowded out by — random screening).
  bool seed_from_analysis = false;
  // Calls per analysis-derived seed sequence: long enough that a genuinely
  // retaining interface clears the screen oracle's retained-JGR floor.
  int seed_sequence_calls = 12;
  // Seed from the ProtocolGraph as well: each chain's terminal edge becomes
  // a ProtocolLink and contributes one wired producer→consumer chain seed
  // (GenerateChain), executed alongside the analysis seeds and deducted from
  // the same budget. Also switches the mutator to protocol mode, so random
  // screening can splice wired pairs. Covers what single-entry seeding
  // structurally cannot: interfaces that retain only when fed a value minted
  // by an earlier call, caller-identity spoofs, and app-hosted victims.
  bool seed_from_protocol = false;
  int minimize_exec_cap = 24;  // per-finding witness-trim execution budget
  // Reset by re-simulating the boot+warmup prefix instead of restoring the
  // snapshot (the cold baseline the bench compares against).
  bool cold_boot = false;
  MutatorOptions mutator;
  OracleOptions oracle;
  int gc_every_calls = 64;
  // The reset-image prefix: boot plus a benign warmup workload, shared by
  // every execution (the state the snapshot captures).
  int warmup_apps = 40;
  DurationUs warmup_foreground_us = 20'000'000;
  DurationUs warmup_interaction_period_us = 200'000;
  // BranchRunner passthrough: persist / reuse the reset image.
  std::string checkpoint_path;
  std::string resume_path;
};

struct Finding {
  std::string id;  // code-model method id
  std::string service;
  std::string method;
  ExhaustionKind kind = ExhaustionKind::kNone;
  double growth_per_call = 0.0;  // JGR or fd rate, per kind
  bool victim_aborted = false;
  int minimized_calls = 0;  // length of the minimized witness sequence
  IpcCall witness;          // the confirmed concrete call
};

struct CampaignStats {
  int seed_executions = 0;  // analysis-derived seed sequences executed
  int protocol_seed_executions = 0;  // ProtocolGraph chain seeds executed
  int screen_executions = 0;
  int confirm_executions = 0;
  int minimize_executions = 0;
  int total_executions = 0;
  int suspects = 0;
  int corpus_entries = 0;
  std::size_t signature_elements = 0;
  double wall_ms = 0.0;
  double execs_per_sec = 0.0;  // total executions over wall time
};

struct CampaignResult {
  std::vector<Finding> findings;  // sorted by id
  CampaignStats stats;
};

// Fuzzer findings vs the static pipeline and the directed verifier's census.
struct ConsistencyReport {
  int census_total = 0;  // dynamically verified exploitable interfaces
  std::vector<std::string> refound;      // census interfaces the fuzzer confirmed
  std::vector<std::string> not_refound;  // census interfaces it did not reach
  // Findings the static stages would have discharged: sifted out, never
  // risky, or invisible to the JGR-centric pipeline (fd exhaustion).
  std::vector<std::string> static_blind;
  // Findings the census says are bounded — must be empty; any entry is a
  // fuzzer false positive.
  std::vector<std::string> false_positives;
};

ConsistencyReport CrossCheck(const std::vector<Finding>& findings,
                             const analysis::AnalysisReport& report,
                             const std::vector<dynamic::Verdict>& census);

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options);
  ~CampaignRunner();

  CampaignRunner(const CampaignRunner&) = delete;
  CampaignRunner& operator=(const CampaignRunner&) = delete;

  // Builds the code model, static report, call pool, and the reset image
  // (restored via --resume or captured from a fresh prefix). Idempotent;
  // Run() calls it implicitly.
  Status Prepare();

  CampaignResult Run();

  // Timing probe for the bench: `execs` generated-sequence executions
  // (reset + replay, no oracle bookkeeping), returning executions/second
  // under the configured reset mode.
  double MeasureResetThroughput(int execs);

  const CampaignOptions& options() const { return options_; }
  const model::CodeModel& model() const { return model_; }
  const analysis::AnalysisReport& report() const { return report_; }
  const Corpus& corpus() const { return corpus_; }
  // Built by Prepare() when seed_from_protocol is set; nullptr otherwise.
  const analysis::protocol::ProtocolGraph* protocol_graph() const {
    return protocol_graph_ ? &*protocol_graph_ : nullptr;
  }

  // A freshly reset system (snapshot restore, or a cold prefix rebuild under
  // cold_boot). `shard` labels restore failures with the failing shard.
  std::unique_ptr<core::AndroidSystem> ResetSystem(std::size_t shard) const;

 private:
  struct Suspect {
    Sequence seq;
    ExhaustionKind kind = ExhaustionKind::kNone;
  };
  struct ShardExec {
    Sequence seq;
    std::vector<std::uint64_t> elements;
    OracleVerdict screen;
  };

  Sequence PickSequence(Rng& rng,
                        const std::vector<CorpusEntry>& entries) const;

  CampaignOptions options_;
  bool prepared_ = false;
  model::CodeModel model_;
  analysis::AnalysisReport report_;
  std::optional<Mutator> mutator_;
  std::optional<analysis::protocol::ProtocolGraph> protocol_graph_;
  std::optional<SequenceExecutor> executor_;
  Oracle oracle_;
  sim::DeviceSpec prefix_;
  std::optional<harness::BranchRunner> branch_;
  Corpus corpus_;
};

}  // namespace jgre::fuzz

#endif  // JGRE_FUZZ_CAMPAIGN_H_
