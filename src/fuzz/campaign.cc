#include "fuzz/campaign.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "harness/experiment_runner.h"
#include "model/corpus.h"
#include "snapshot/serializer.h"

namespace jgre::fuzz {

namespace {

// Deterministic shard-stream seed: every (round, shard) pair gets an
// independent Rng stream derived only from the campaign seed and its own
// coordinates — never from --jobs or scheduling order.
std::uint64_t MixSeed(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  snapshot::Serializer out;
  out.U64(seed);
  out.U64(a);
  out.U64(b);
  return out.Hash();
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

ConsistencyReport CrossCheck(const std::vector<Finding>& findings,
                             const analysis::AnalysisReport& report,
                             const std::vector<dynamic::Verdict>& census) {
  ConsistencyReport out;
  std::set<std::string> exploitable;
  std::set<std::string> bounded;
  for (const dynamic::Verdict& v : census) {
    if (!v.tested) continue;
    (v.exploitable ? exploitable : bounded).insert(v.id);
  }
  out.census_total = static_cast<int>(exploitable.size());

  std::set<std::string> found;
  for (const Finding& f : findings) found.insert(f.id);
  for (const std::string& id : exploitable) {
    (found.count(id) != 0 ? out.refound : out.not_refound).push_back(id);
  }

  std::map<std::string, const analysis::AnalyzedInterface*> ifaces;
  for (const analysis::AnalyzedInterface& iface : report.interfaces) {
    ifaces[iface.id] = &iface;
  }
  for (const std::string& id : found) {
    if (bounded.count(id) != 0) out.false_positives.push_back(id);
    auto it = ifaces.find(id);
    if (it == ifaces.end() || it->second->sifted_out || !it->second->risky) {
      out.static_blind.push_back(id);
    }
  }
  return out;
}

CampaignRunner::CampaignRunner(CampaignOptions options)
    : options_(std::move(options)), oracle_(options_.oracle) {}

CampaignRunner::~CampaignRunner() = default;

Status CampaignRunner::Prepare() {
  if (prepared_) return Status::Ok();

  // A bare booted device is enough to derive the code model, the static
  // report, and the live-service pool; the (expensive) warmed-up reset image
  // is built separately below.
  core::SystemConfig sys_config;
  sys_config.seed = options_.seed;
  core::AndroidSystem bare(sys_config);
  bare.Boot();
  model_ = model::BuildAospModel(bare);
  report_ = analysis::RunAnalysis(model_);

  std::set<std::string> live_services;
  std::set<std::string> permissions;
  for (const auto& [id, method] : model_.java_methods) {
    if (!method.overrides_aidl || method.service.empty()) continue;
    if (!bare.service_manager().HasService(method.service)) continue;
    live_services.insert(method.service);
    // Like the directed verifier, the probe app holds whatever permission an
    // interface demands: permission checks gate reachability, not retention.
    if (!method.permission.empty()) permissions.insert(method.permission);
  }
  mutator_.emplace(&model_, live_services, options_.mutator);

  if (options_.seed_from_protocol) {
    protocol_graph_.emplace(
        analysis::protocol::ProtocolGraph::Build(model_, report_));
    // Each chain's terminal edge becomes one link; chains iterate in the
    // graph's canonical DFS order, and the first chain reaching a consumer
    // wins, so the link list is deterministic. The mutator drops links whose
    // endpoints are not in the live pool.
    std::vector<ProtocolLink> links;
    std::set<std::string> linked_consumers;
    for (const analysis::protocol::ProtocolChain& chain :
         protocol_graph_->chains()) {
      const analysis::protocol::ProtocolEdge& edge =
          protocol_graph_->edges()[chain.edge_ids.back()];
      const analysis::AnalyzedInterface& consumer =
          report_.interfaces[edge.consumer];
      if (!linked_consumers.insert(consumer.id).second) continue;
      ProtocolLink link;
      link.producer_id = report_.interfaces[edge.producer].id;
      link.consumer_id = consumer.id;
      link.arg_index = edge.arg_index;
      link.spoof_caller = consumer.constraint_trusts_caller;
      link.victim_hint = consumer.app_hosted ? consumer.package : "";
      links.push_back(std::move(link));
    }
    mutator_->EnableProtocolMode(std::move(links));
  }

  ExecOptions exec;
  exec.gc_every_calls = options_.gc_every_calls;
  exec.permissions = std::move(permissions);
  executor_.emplace(&model_, std::move(exec));
  oracle_ = Oracle(options_.oracle);

  prefix_ = sim::DeviceSpec();
  prefix_.WithSeed(options_.seed)
      .WithSystemConfig(sys_config)
      .WithWarmup(options_.warmup_apps, options_.warmup_foreground_us,
                  options_.warmup_interaction_period_us);
  harness::BranchOptions branch_options;
  branch_options.jobs = options_.jobs;
  branch_options.cold = options_.cold_boot;
  branch_options.checkpoint_path = options_.checkpoint_path;
  branch_options.resume_path = options_.resume_path;
  branch_.emplace(prefix_, branch_options);
  if (!options_.cold_boot) {
    JGRE_RETURN_IF_ERROR(branch_->Prepare());
  }

  prepared_ = true;
  return Status::Ok();
}

std::unique_ptr<core::AndroidSystem> CampaignRunner::ResetSystem(
    std::size_t shard) const {
  if (options_.cold_boot) return sim::DeviceFactory(prefix_).BootPrefix();
  return branch_->RestoreBranchSystem(shard);
}

Sequence CampaignRunner::PickSequence(
    Rng& rng, const std::vector<CorpusEntry>& entries) const {
  if (!entries.empty() && rng.Chance(options_.mutate_probability)) {
    const Sequence& seed = entries[rng.UniformU64(entries.size())].seq;
    return mutator_->Mutate(seed, rng);
  }
  return mutator_->Generate(rng);
}

CampaignResult CampaignRunner::Run() {
  const auto start = std::chrono::steady_clock::now();
  Status prepared = Prepare();
  if (!prepared.ok()) throw std::runtime_error(prepared.ToString());

  CampaignResult result;
  CampaignStats& stats = result.stats;

  std::vector<Suspect> suspects;
  std::set<std::uint64_t> suspect_fingerprints;
  std::size_t seeded_suspects = 0;

  // --- Seed: ProtocolGraph chains as wired multi-call sequences -------------
  // Chain seeds run *before* the analysis seeds: the confirm phase probes the
  // first suspect carrying each method, and a chain's call embeds protocol
  // knowledge (spoofed caller, wired token) that the homogeneous analysis
  // seed for the same method lacks. enqueueToast is the concrete case — its
  // analysis seed screens suspicious with a random package that the
  // per-package cap then bounds during confirm, masking the spoofed variant.
  if (options_.seed_from_protocol && mutator_->protocol_aware()) {
    const std::size_t n_links =
        std::min(mutator_->links().size(),
                 static_cast<std::size_t>(std::max(0, options_.budget)));
    std::vector<ShardExec> chain_execs = harness::RunOrdered<ShardExec>(
        n_links, options_.jobs, [&](std::size_t i) {
          Rng rng(MixSeed(options_.seed, 0x5052'4F54ull /* "PROT" */, i));
          Sequence seq = mutator_->GenerateChain(
              i, std::max(2, options_.seed_sequence_calls), rng);
          std::unique_ptr<core::AndroidSystem> system =
              ResetSystem(400'000 + i);
          ExecOutcome outcome = executor_->Execute(*system, seq);
          return ShardExec{std::move(seq), std::move(outcome.elements),
                           oracle_.Screen(outcome.obs)};
        });
    for (ShardExec& exec : chain_execs) {
      ++stats.protocol_seed_executions;
      corpus_.Add(exec.seq, exec.elements);
      if (exec.screen.suspicious() &&
          suspect_fingerprints.insert(exec.seq.Fingerprint()).second) {
        suspects.push_back({std::move(exec.seq), exec.screen.kind});
      }
    }
    seeded_suspects = suspects.size();
  }

  // --- Seed: witness-bearing static candidates as initial sequences ---------
  if (options_.seed_from_analysis) {
    std::set<std::string> pool_ids;
    for (const model::JavaMethodModel* method : mutator_->pool()) {
      pool_ids.insert(method->id);
    }
    std::vector<const analysis::AnalyzedInterface*> seed_ifaces;
    for (const std::size_t index : report_.Candidates()) {
      const analysis::AnalyzedInterface& iface = report_.interfaces[index];
      if (iface.witness.empty() || pool_ids.count(iface.id) == 0) continue;
      seed_ifaces.push_back(&iface);
    }
    // Never seed past the screening budget: seed + random spend == budget.
    const std::size_t seed_cap = static_cast<std::size_t>(
        std::max(0, options_.budget - stats.protocol_seed_executions));
    if (seed_ifaces.size() > seed_cap) seed_ifaces.resize(seed_cap);
    std::vector<ShardExec> seed_execs = harness::RunOrdered<ShardExec>(
        seed_ifaces.size(), options_.jobs, [&](std::size_t i) {
          Rng rng(MixSeed(options_.seed, 0x5345'4544ull /* "SEED" */, i));
          const model::JavaMethodModel* method =
              model_.FindJavaMethod(seed_ifaces[i]->id);
          Sequence seq;
          for (int c = 0; c < std::max(1, options_.seed_sequence_calls); ++c) {
            seq.calls.push_back(mutator_->MakeCall(*method, rng));
          }
          std::unique_ptr<core::AndroidSystem> system =
              ResetSystem(300'000 + i);
          ExecOutcome outcome = executor_->Execute(*system, seq);
          return ShardExec{std::move(seq), std::move(outcome.elements),
                           oracle_.Screen(outcome.obs)};
        });
    for (ShardExec& exec : seed_execs) {
      ++stats.seed_executions;
      corpus_.Add(exec.seq, exec.elements);
      if (exec.screen.suspicious() &&
          suspect_fingerprints.insert(exec.seq.Fingerprint()).second) {
        suspects.push_back({std::move(exec.seq), exec.screen.kind});
      }
    }
    seeded_suspects = suspects.size();
  }

  // --- Screen: rounds x shards of randomized sequences ----------------------
  const int rounds = std::max(1, options_.rounds);
  // Seed executions come out of the screening budget: a seeded campaign and
  // an unseeded one spend the same number of executions.
  const int budget =
      std::max(0, options_.budget - stats.seed_executions -
                      stats.protocol_seed_executions);
  const int per_round = budget / rounds;
  for (int round = 0; round < rounds; ++round) {
    const int round_budget =
        per_round + (round == rounds - 1 ? budget - per_round * rounds : 0);
    if (round_budget <= 0) continue;
    const int shard_execs = std::max(1, options_.shard_execs);
    const std::size_t shards =
        static_cast<std::size_t>((round_budget + shard_execs - 1) /
                                 shard_execs);
    // Shards mutate against the corpus as of the round boundary: a stable
    // snapshot, so picks do not depend on intra-round completion order.
    const std::vector<CorpusEntry> entries = corpus_.entries();
    std::vector<std::vector<ShardExec>> reports =
        harness::RunOrdered<std::vector<ShardExec>>(
            shards, options_.jobs, [&](std::size_t shard) {
              Rng rng(MixSeed(options_.seed, static_cast<std::uint64_t>(round),
                              shard));
              const int execs =
                  std::min(shard_execs,
                           round_budget - static_cast<int>(shard) * shard_execs);
              std::vector<ShardExec> out;
              out.reserve(static_cast<std::size_t>(execs));
              for (int e = 0; e < execs; ++e) {
                Sequence seq = PickSequence(rng, entries);
                std::unique_ptr<core::AndroidSystem> system =
                    ResetSystem(static_cast<std::size_t>(round) * 1000 + shard);
                ExecOutcome outcome = executor_->Execute(*system, seq);
                out.push_back({std::move(seq), std::move(outcome.elements),
                               oracle_.Screen(outcome.obs)});
              }
              return out;
            });
    // Merge in submission order: corpus contents and the suspect list are
    // identical for --jobs 1 and --jobs N.
    for (std::vector<ShardExec>& report : reports) {
      for (ShardExec& exec : report) {
        ++stats.screen_executions;
        corpus_.Add(exec.seq, exec.elements);
        if (exec.screen.suspicious() &&
            static_cast<int>(suspects.size() - seeded_suspects) <
                options_.max_suspects &&
            suspect_fingerprints.insert(exec.seq.Fingerprint()).second) {
          suspects.push_back({std::move(exec.seq), exec.screen.kind});
        }
      }
    }
  }
  stats.suspects = static_cast<int>(suspects.size());
  stats.corpus_entries = static_cast<int>(corpus_.size());
  stats.signature_elements = corpus_.element_count();

  // --- Confirm: one homogeneous strict probe per distinct suspect method ----
  struct Target {
    IpcCall call;
    std::size_t suspect;
    // Producer calls the homogeneous probe needs once up front (mint the
    // token / open the session the repeated call's from_step consumes).
    std::vector<IpcCall> setup;
  };
  std::vector<Target> targets;
  std::set<std::string> targeted;
  for (std::size_t si = 0; si < suspects.size(); ++si) {
    const std::vector<IpcCall>& witness_calls = suspects[si].seq.calls;
    for (const IpcCall& call : witness_calls) {
      if (targeted.insert(call.method_id).second) {
        Target target{call, si, {}};
        // The strict probe follows the census's §III.D discipline — a fresh
        // Binder per call — so a witness that drew the shared-binder variant
        // does not mask retention. Other argument values (e.g. an "android"
        // spoof string) are preserved. Scalar protocol wirings survive too:
        // the producer call is copied into the setup prefix and from_step
        // rebased onto it, so a gated target still sees a valid token on
        // every repetition (tokens are multi-use; a wired binder would dedupe
        // across repetitions, so binder slots revert to fresh mints).
        for (ArgValue& arg : target.call.args) {
          if (arg.kind == services::ArgKind::kBinder) {
            arg.fresh_binder = true;
            arg.from_step = -1;
          } else if (arg.from_step >= 0 &&
                     static_cast<std::size_t>(arg.from_step) <
                         witness_calls.size()) {
            target.setup.push_back(witness_calls[arg.from_step]);
            for (ArgValue& produced : target.setup.back().args) {
              produced.from_step = -1;  // producers run first, nothing before
            }
            arg.from_step = static_cast<int>(target.setup.size()) - 1;
          } else {
            arg.from_step = -1;
          }
        }
        targets.push_back(std::move(target));
      }
    }
  }
  std::vector<OracleVerdict> verdicts = harness::RunOrdered<OracleVerdict>(
      targets.size(), options_.jobs, [&](std::size_t i) {
        std::unique_ptr<core::AndroidSystem> system =
            ResetSystem(100'000 + i);
        ExecOutcome outcome = executor_->ExecuteRepeated(
            *system, targets[i].call, options_.confirm_calls,
            targets[i].setup);
        return oracle_.Confirm(outcome.obs);
      });
  stats.confirm_executions = static_cast<int>(targets.size());

  std::vector<std::size_t> finding_suspect;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (!verdicts[i].suspicious()) continue;
    const IpcCall& call = targets[i].call;
    Finding f;
    f.id = call.method_id;
    f.service = call.service;
    const model::JavaMethodModel* method = model_.FindJavaMethod(call.method_id);
    f.method = method != nullptr ? method->name : call.method_id;
    f.kind = verdicts[i].kind;
    f.growth_per_call = verdicts[i].kind == ExhaustionKind::kFd
                            ? verdicts[i].fd_growth_per_call
                            : verdicts[i].jgr_growth_per_call;
    f.victim_aborted = verdicts[i].kind == ExhaustionKind::kAbort;
    f.witness = call;
    result.findings.push_back(std::move(f));
    finding_suspect.push_back(targets[i].suspect);
  }

  // --- Minimize: trim each finding's witness sequence -----------------------
  struct MinimizeResult {
    int calls = 0;
    int execs = 0;
  };
  std::vector<MinimizeResult> minimized =
      harness::RunOrdered<MinimizeResult>(
          result.findings.size(), options_.jobs, [&](std::size_t i) {
            const Finding& f = result.findings[i];
            const Sequence& witness = suspects[finding_suspect[i]].seq;
            MinimizeResult mr;
            const auto still_triggers = [&](const Sequence& cand) {
              if (mr.execs >= options_.minimize_exec_cap) return false;
              bool has_method = false;
              for (const IpcCall& call : cand.calls) {
                if (call.method_id == f.id) {
                  has_method = true;
                  break;
                }
              }
              if (!has_method) return false;  // free reject, no execution
              ++mr.execs;
              std::unique_ptr<core::AndroidSystem> system =
                  ResetSystem(200'000 + i);
              ExecOutcome outcome = executor_->Execute(*system, cand);
              return oracle_.Screen(outcome.obs).suspicious();
            };
            // Pre-trim: if the homogeneous subsequence (the finding's calls
            // alone) still screens, minimize that instead of the full witness.
            Sequence homogeneous;
            for (const IpcCall& call : witness.calls) {
              if (call.method_id == f.id) homogeneous.calls.push_back(call);
            }
            const Sequence& base =
                homogeneous.calls.size() < witness.calls.size() &&
                        still_triggers(homogeneous)
                    ? homogeneous
                    : witness;
            mr.calls =
                static_cast<int>(Corpus::Minimize(base, still_triggers)
                                     .calls.size());
            return mr;
          });
  for (std::size_t i = 0; i < minimized.size(); ++i) {
    result.findings[i].minimized_calls = minimized[i].calls;
    stats.minimize_executions += minimized[i].execs;
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) { return a.id < b.id; });

  stats.total_executions = stats.seed_executions +
                           stats.protocol_seed_executions +
                           stats.screen_executions + stats.confirm_executions +
                           stats.minimize_executions;
  stats.wall_ms = SecondsSince(start) * 1000.0;
  stats.execs_per_sec = stats.wall_ms > 0.0
                            ? stats.total_executions / (stats.wall_ms / 1000.0)
                            : 0.0;
  return result;
}

double CampaignRunner::MeasureResetThroughput(int execs) {
  Status prepared = Prepare();
  if (!prepared.ok()) throw std::runtime_error(prepared.ToString());
  Rng rng(MixSeed(options_.seed, 0x5448'524F'5547'48ull /* "THROUGH" */, 0));
  std::vector<Sequence> sequences;
  sequences.reserve(static_cast<std::size_t>(execs));
  for (int i = 0; i < execs; ++i) sequences.push_back(mutator_->Generate(rng));
  const auto start = std::chrono::steady_clock::now();
  harness::RunOrdered<int>(
      static_cast<std::size_t>(execs), options_.jobs, [&](std::size_t i) {
        std::unique_ptr<core::AndroidSystem> system = ResetSystem(i);
        return executor_->Execute(*system, sequences[i]).obs.calls;
      });
  const double seconds = SecondsSince(start);
  return seconds > 0.0 ? static_cast<double>(execs) / seconds : 0.0;
}

}  // namespace jgre::fuzz
