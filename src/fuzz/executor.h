// SequenceExecutor — replays a Sequence against one (freshly reset) system
// and reports what the victim retained.
//
// The execution protocol mirrors the directed verifier's probe discipline so
// the two stages measure the same thing: install the probe app, force a GC
// and take the victim baseline, fire the calls with periodic DDMS-style GCs,
// force a final GC, and read the victim's JGR and fd tables. A CoverageProbe
// rides the system's EventBus for the duration and yields the execution's
// signature elements.
#ifndef JGRE_FUZZ_EXECUTOR_H_
#define JGRE_FUZZ_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/android_system.h"
#include "fuzz/oracle.h"
#include "fuzz/sequence.h"
#include "model/code_model.h"

namespace jgre::fuzz {

struct ExecOptions {
  int gc_every_calls = 64;
  std::string probe_package = "com.fuzz.probe";
  // Granted to the probe app at install (the campaign grants the union of
  // permissions the code model declares, like the directed verifier grants
  // whatever the interface under test demands).
  std::set<std::string> permissions;
};

struct ExecOutcome {
  Observation obs;  // victim: system_server, or the host app for ExecuteRepeated
  std::vector<std::uint64_t> elements;
};

class SequenceExecutor {
 public:
  // `model` supplies the app-hosted-service map (service name -> package) so
  // homogeneous probes can watch the right victim. Must outlive the executor.
  SequenceExecutor(const model::CodeModel* model, ExecOptions options);

  const ExecOptions& options() const { return options_; }

  // Replays `seq`; the observed victim is system_server (mixed sequences
  // touch many services, and the shared JGR table is the paper's target)
  // unless the sequence carries a protocol victim_hint naming an app host.
  // Reply values are captured per step, and later steps whose ArgValues
  // carry `from_step` receive the captured binder/scalar — the dataflow-
  // aware mode that replays ProtocolGraph chains concretely.
  ExecOutcome Execute(core::AndroidSystem& system, const Sequence& seq) const;

  // Homogeneous confirmation probe: the exact call, `calls` times, with the
  // victim resolved to the service's actual host (system_server or the
  // hosting app process). `setup` runs once before the repetitions — the
  // producer calls a protocol-gated target needs (mint a token, open a
  // session) so the repeated call's from_step references resolve.
  ExecOutcome ExecuteRepeated(core::AndroidSystem& system, const IpcCall& call,
                              int calls,
                              const std::vector<IpcCall>& setup = {}) const;

 private:
  ExecOutcome Run(core::AndroidSystem& system,
                  const std::vector<const IpcCall*>& calls,
                  const std::string& victim_package) const;

  const model::CodeModel* model_;
  ExecOptions options_;
  // service name -> hosting app package ("" = system_server).
  std::map<std::string, std::string> app_hosted_;
};

}  // namespace jgre::fuzz

#endif  // JGRE_FUZZ_EXECUTOR_H_
