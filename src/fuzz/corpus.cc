#include "fuzz/corpus.h"

namespace jgre::fuzz {

bool Corpus::Add(const Sequence& seq,
                 const std::vector<std::uint64_t>& elements) {
  std::vector<std::uint64_t> novel;
  for (std::uint64_t e : elements) {
    if (seen_.count(e) == 0) novel.push_back(e);
  }
  if (novel.empty()) return false;
  seen_.insert(novel.begin(), novel.end());
  entries_.push_back(CorpusEntry{seq, std::move(novel)});
  return true;
}

Sequence Corpus::Minimize(
    const Sequence& seq,
    const std::function<bool(const Sequence&)>& still_interesting) {
  Sequence current = seq;
  // Chunked removal first (ddmin-style), then singles. Deterministic: chunk
  // sizes and positions depend only on the current length.
  for (std::size_t chunk = current.calls.size() / 2; chunk >= 1; chunk /= 2) {
    bool removed_any = true;
    while (removed_any && current.calls.size() > 1) {
      removed_any = false;
      for (std::size_t start = 0; start + chunk <= current.calls.size();) {
        if (current.calls.size() <= chunk) break;
        Sequence candidate = current;
        candidate.calls.erase(
            candidate.calls.begin() + static_cast<std::ptrdiff_t>(start),
            candidate.calls.begin() + static_cast<std::ptrdiff_t>(start + chunk));
        if (still_interesting(candidate)) {
          current = std::move(candidate);
          removed_any = true;
          // Same start now addresses the next chunk.
        } else {
          start += chunk;
        }
      }
    }
  }
  return current;
}

}  // namespace jgre::fuzz
