// Corpus — seeds that discovered new coverage, with trim-based minimization.
//
// The campaign merges shard results in submission order, so Add sees
// candidate seeds in a deterministic order and the corpus (entries, element
// universe, statistics) is identical for --jobs 1 and --jobs N. Minimize is
// a pure greedy trimmer: it owns no execution machinery, the caller supplies
// the "still interesting" predicate (re-execute and check the signature or
// the oracle verdict reproduces).
#ifndef JGRE_FUZZ_CORPUS_H_
#define JGRE_FUZZ_CORPUS_H_

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "fuzz/sequence.h"

namespace jgre::fuzz {

struct CorpusEntry {
  Sequence seq;
  // The signature elements this seed was first to reach.
  std::vector<std::uint64_t> novel_elements;
};

class Corpus {
 public:
  // Adds `seq` iff `elements` contains at least one element no earlier seed
  // reached. Returns true when the seed entered the corpus.
  bool Add(const Sequence& seq, const std::vector<std::uint64_t>& elements);

  bool Covers(std::uint64_t element) const { return seen_.count(element) != 0; }
  const std::vector<CorpusEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  std::size_t element_count() const { return seen_.size(); }

  // Deterministic greedy trim: repeatedly drops chunks (halves, quarters,
  // ... down to single calls) while `still_interesting(candidate)` holds.
  // The result still satisfies the predicate (the input must satisfy it).
  static Sequence Minimize(
      const Sequence& seq,
      const std::function<bool(const Sequence&)>& still_interesting);

 private:
  std::vector<CorpusEntry> entries_;
  std::set<std::uint64_t> seen_;
};

}  // namespace jgre::fuzz

#endif  // JGRE_FUZZ_CORPUS_H_
