#include "fuzz/mutator.h"

#include <cassert>

namespace jgre::fuzz {

namespace {

// Boundary-flavored integers: table limits (51,200 JGR entries, RLIMIT_NOFILE
// 1024), sign/width edges, and small registry indices.
constexpr std::int64_t kInterestingInts[] = {
    0, 1, -1, 2, 7, 16, 50, 255, 1024, 51'200, 2'147'483'647LL, -2'147'483'648LL,
};

constexpr std::uint64_t kInterestingSizes[] = {0, 1, 16, 256, 4096};

std::string DescriptorOf(const model::JavaMethodModel& method) {
  // Method ids are "<interface descriptor>.<name>".
  return method.id.substr(0, method.id.size() - method.name.size() - 1);
}

}  // namespace

Mutator::Mutator(const model::CodeModel* model,
                 const std::set<std::string>& live_services,
                 MutatorOptions options)
    : model_(model), options_(options) {
  // java_methods is a std::map, so iteration (and therefore pool order) is
  // the deterministic id order.
  for (const auto& [id, method] : model_->java_methods) {
    if (!method.overrides_aidl || method.service.empty()) continue;
    if (!live_services.empty() && live_services.count(method.service) == 0) {
      continue;
    }
    pool_.push_back(&method);
  }
}

ArgValue Mutator::MakeArg(services::ArgKind kind, Rng& rng) const {
  ArgValue arg;
  arg.kind = kind;
  switch (kind) {
    case services::ArgKind::kInt32:
    case services::ArgKind::kInt64:
      arg.scalar = kInterestingInts[rng.UniformU64(std::size(kInterestingInts))];
      break;
    case services::ArgKind::kBool:
      arg.scalar = rng.Chance(0.5) ? 1 : 0;
      break;
    case services::ArgKind::kString:
      // The dictionary matters more than randomness here: "android" is the
      // spoof that bypasses caller-trusting per-process constraints
      // (enqueueToast), the probe's own package is the honest value, and a
      // synthesized token covers the rest.
      switch (rng.UniformU64(4)) {
        case 0:
          arg.str = "android";
          break;
        case 1:
          arg.str = "com.fuzz.probe";
          break;
        case 2:
          arg.str = "";
          break;
        default:
          arg.str = "tok" + std::to_string(rng.UniformU64(1u << 16));
          break;
      }
      break;
    case services::ArgKind::kByteArray:
      arg.byte_size =
          kInterestingSizes[rng.UniformU64(std::size(kInterestingSizes))];
      break;
    case services::ArgKind::kBinder:
      arg.fresh_binder = rng.Chance(options_.fresh_binder_probability);
      break;
    case services::ArgKind::kFd:
      arg.scalar = 1;
      break;
  }
  return arg;
}

IpcCall Mutator::MakeCall(const model::JavaMethodModel& method,
                          Rng& rng) const {
  IpcCall call;
  call.method_id = method.id;
  call.service = method.service;
  call.descriptor = DescriptorOf(method);
  call.code = method.transaction_code;
  call.args.reserve(method.args.size());
  for (services::ArgKind kind : method.args) {
    call.args.push_back(MakeArg(kind, rng));
  }
  return call;
}

void Mutator::EnableProtocolMode(std::vector<ProtocolLink> links) {
  std::set<std::string> pool_ids;
  for (const model::JavaMethodModel* method : pool_) pool_ids.insert(method->id);
  links_.clear();
  for (ProtocolLink& link : links) {
    if (pool_ids.count(link.producer_id) != 0 &&
        pool_ids.count(link.consumer_id) != 0) {
      links_.push_back(std::move(link));
    }
  }
}

Sequence Mutator::GenerateChain(std::size_t link_index, int total_calls,
                                Rng& rng) const {
  Sequence seq;
  if (link_index >= links_.size()) return seq;
  const ProtocolLink& link = links_[link_index];
  const model::JavaMethodModel* producer =
      model_->FindJavaMethod(link.producer_id);
  const model::JavaMethodModel* consumer =
      model_->FindJavaMethod(link.consumer_id);
  if (producer == nullptr || consumer == nullptr) return seq;
  seq.victim_hint = link.victim_hint;
  // Interleaved pairs, each wiring the consumer to its *own* producer step:
  // every pair mints a fresh value, so retention accrues per pair instead of
  // deduping on a single shared handle (RemoteCallbackList dedupes by node —
  // one producer feeding N consumers would register one binder once).
  const int pairs = std::max(1, total_calls / 2);
  for (int i = 0; i < pairs; ++i) {
    const int producer_step = static_cast<int>(seq.calls.size());
    IpcCall prod = MakeCall(*producer, rng);
    IpcCall cons = MakeCall(*consumer, rng);
    if (link.arg_index < cons.args.size()) {
      cons.args[link.arg_index].from_step = producer_step;
    }
    // Fresh binders throughout: a shared-binder producer would dedupe in its
    // RemoteCallbackList and mint nothing past the first pair, flattening the
    // very growth signal the chain seed exists to surface.
    for (ArgValue& arg : prod.args) {
      if (arg.kind == services::ArgKind::kBinder) arg.fresh_binder = true;
    }
    for (ArgValue& arg : cons.args) {
      if (arg.kind == services::ArgKind::kBinder) arg.fresh_binder = true;
    }
    if (link.spoof_caller) {
      for (ArgValue& arg : prod.args) {
        if (arg.kind == services::ArgKind::kString) arg.str = "android";
      }
      for (ArgValue& arg : cons.args) {
        if (arg.kind == services::ArgKind::kString) arg.str = "android";
      }
    }
    seq.calls.push_back(std::move(prod));
    seq.calls.push_back(std::move(cons));
  }
  return seq;
}

Sequence Mutator::Generate(Rng& rng) const {
  assert(!pool_.empty() && "mutator needs a non-empty call pool");
  Sequence seq;
  const std::int64_t length =
      rng.UniformInt(options_.min_calls, options_.max_calls);
  seq.calls.reserve(static_cast<std::size_t>(length));
  for (std::int64_t i = 0; i < length; ++i) {
    seq.calls.push_back(MakeCall(*pool_[rng.UniformU64(pool_.size())], rng));
  }
  return seq;
}

Sequence Mutator::Mutate(const Sequence& seed, Rng& rng) const {
  Sequence seq = seed;
  if (seq.calls.empty()) return Generate(rng);
  const std::int64_t mutations =
      rng.UniformInt(options_.min_mutations, options_.max_mutations);
  // The protocol splice is a seventh operator only in protocol mode, so a
  // mutator without links replays the historical op stream byte-for-byte.
  const std::uint64_t ops = protocol_aware() ? 7 : 6;
  for (std::int64_t m = 0; m < mutations; ++m) {
    const std::uint64_t op = rng.UniformU64(ops);
    const std::size_t n = seq.calls.size();
    switch (op) {
      case 0: {  // insert a fresh call
        const std::size_t at = rng.UniformU64(n + 1);
        IpcCall call = MakeCall(*pool_[rng.UniformU64(pool_.size())], rng);
        seq.calls.insert(seq.calls.begin() + static_cast<std::ptrdiff_t>(at),
                         std::move(call));
        break;
      }
      case 1: {  // delete a call
        if (n <= 1) break;
        seq.calls.erase(seq.calls.begin() +
                        static_cast<std::ptrdiff_t>(rng.UniformU64(n)));
        break;
      }
      case 2: {  // duplicate a call (retention bugs love repetition)
        const std::size_t at = rng.UniformU64(n);
        if (static_cast<int>(n) >= options_.max_calls * 2) break;
        seq.calls.insert(seq.calls.begin() + static_cast<std::ptrdiff_t>(at),
                         seq.calls[at]);
        break;
      }
      case 3: {  // swap two calls (interleaving order matters for sessions)
        const std::size_t a = rng.UniformU64(n);
        const std::size_t b = rng.UniformU64(n);
        std::swap(seq.calls[a], seq.calls[b]);
        break;
      }
      case 4: {  // regenerate one call's arguments from its layout
        const std::size_t at = rng.UniformU64(n);
        const model::JavaMethodModel* method =
            model_->FindJavaMethod(seq.calls[at].method_id);
        if (method != nullptr) seq.calls[at] = MakeCall(*method, rng);
        break;
      }
      case 5: {  // splice: replace the tail with fresh calls
        const std::size_t keep = rng.UniformU64(n);
        seq.calls.resize(keep);
        const std::int64_t extra = rng.UniformInt(1, 4);
        for (std::int64_t i = 0; i < extra; ++i) {
          seq.calls.push_back(
              MakeCall(*pool_[rng.UniformU64(pool_.size())], rng));
        }
        break;
      }
      default: {  // protocol splice: insert a wired producer→consumer pair
        Sequence pair = GenerateChain(rng.UniformU64(links_.size()),
                                      /*total_calls=*/2, rng);
        if (pair.calls.size() != 2) break;
        const std::size_t at = rng.UniformU64(n + 1);
        // Earlier wirings pointing at or past the insertion point shift by
        // the pair's length so they keep naming the same producer step.
        for (IpcCall& call : seq.calls) {
          for (ArgValue& arg : call.args) {
            if (arg.from_step >= static_cast<int>(at)) arg.from_step += 2;
          }
        }
        // Rebase the pair's own wiring (step 0 in isolation) onto `at`.
        for (ArgValue& arg : pair.calls[1].args) {
          if (arg.from_step == 0) arg.from_step = static_cast<int>(at);
        }
        seq.calls.insert(seq.calls.begin() + static_cast<std::ptrdiff_t>(at),
                         std::make_move_iterator(pair.calls.begin()),
                         std::make_move_iterator(pair.calls.end()));
        break;
      }
    }
  }
  if (seq.calls.empty()) return Generate(rng);
  return seq;
}

}  // namespace jgre::fuzz
