// Mutator — parameter-aware sequence generation and mutation.
//
// BinderCracker-style: instead of flipping bytes in an opaque buffer, the
// mutator reads each method's parameter layout from the code-model IR and
// fills every slot with a type-correct value — interesting integers, a
// dictionary string (including the "android" spoof that defeats
// caller-trusting per-process constraints), a sized byte array, a fresh or
// shared strong binder, or a file descriptor. Sequences, not single calls:
// retention bugs that need interleaving (register A, register B, unregister
// A) are reachable, and coverage-guided splicing composes them.
//
// Everything is a pure function of the Rng stream handed in, so a shard's
// sequence stream is reproducible from its seed alone.
#ifndef JGRE_FUZZ_MUTATOR_H_
#define JGRE_FUZZ_MUTATOR_H_

#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fuzz/sequence.h"
#include "model/code_model.h"

namespace jgre::fuzz {

struct MutatorOptions {
  int min_calls = 4;
  int max_calls = 24;
  // Probability a generated binder-typed slot mints a fresh Binder per call
  // (vs reusing the execution's shared callback binder).
  double fresh_binder_probability = 0.85;
  // How many mutation operators a single Mutate applies.
  int min_mutations = 1;
  int max_mutations = 3;
};

// One ProtocolGraph edge lowered to fuzzing terms: calling `producer_id`
// yields a reply value that `consumer_id`'s argument `arg_index` consumes.
// GenerateChain turns a link into producer/consumer pairs whose consumer
// slots carry ArgValue::from_step wiring.
struct ProtocolLink {
  std::string producer_id;  // code-model method id minting the value
  std::string consumer_id;  // code-model method id consuming it
  std::size_t arg_index = 0;
  // The consumer's constraint trusts a caller-supplied identity (analysis
  // fact): force every string slot to the "android" spoof so the chain seed
  // exercises the bypass, not a random identity.
  bool spoof_caller = false;
  // Hosting app package of the consumer's service ("" = system_server) —
  // becomes Sequence::victim_hint so screening watches the right process.
  std::string victim_hint;

  bool operator==(const ProtocolLink&) const = default;
};

class Mutator {
 public:
  // The call pool is every IPC entry of `model` whose service is in
  // `live_services` (empty set = no filter). The pool order is the model's
  // deterministic id order, so pool indices drawn from an Rng reproduce.
  Mutator(const model::CodeModel* model,
          const std::set<std::string>& live_services,
          MutatorOptions options = {});

  const std::vector<const model::JavaMethodModel*>& pool() const {
    return pool_;
  }
  const MutatorOptions& options() const { return options_; }

  // A fresh random sequence.
  Sequence Generate(Rng& rng) const;

  // A mutated copy of `seed`: insert/delete/duplicate/swap calls, regenerate
  // a call's arguments, or splice the tail with fresh calls. In protocol
  // mode a seventh operator splices a wired producer→consumer pair from a
  // ProtocolLink into the sequence.
  Sequence Mutate(const Sequence& seed, Rng& rng) const;

  // One concrete call of `method` with randomized arguments.
  IpcCall MakeCall(const model::JavaMethodModel& method, Rng& rng) const;

  // Dataflow-aware mode: hand the mutator the ProtocolGraph's edges (lowered
  // to links). Only links whose endpoints are both in the pool are kept, in
  // the order given (callers derive them from the graph's canonical chain
  // order, so the retained list is deterministic).
  void EnableProtocolMode(std::vector<ProtocolLink> links);
  bool protocol_aware() const { return !links_.empty(); }
  const std::vector<ProtocolLink>& links() const { return links_; }

  // A chain seed for `links()[link_index]`: repeated [producer, consumer]
  // pairs (total_calls steps, at least one pair) where each consumer call
  // wires its consumed argument to its *own* pair's producer step — every
  // pair mints a fresh value, so per-value retention accumulates instead of
  // deduping on one shared handle. Consumer binder slots not being wired are
  // fresh per call; spoof_caller links force string slots to "android".
  Sequence GenerateChain(std::size_t link_index, int total_calls,
                         Rng& rng) const;

 private:
  ArgValue MakeArg(services::ArgKind kind, Rng& rng) const;

  const model::CodeModel* model_;
  std::vector<const model::JavaMethodModel*> pool_;
  MutatorOptions options_;
  std::vector<ProtocolLink> links_;
};

}  // namespace jgre::fuzz

#endif  // JGRE_FUZZ_MUTATOR_H_
