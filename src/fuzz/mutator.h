// Mutator — parameter-aware sequence generation and mutation.
//
// BinderCracker-style: instead of flipping bytes in an opaque buffer, the
// mutator reads each method's parameter layout from the code-model IR and
// fills every slot with a type-correct value — interesting integers, a
// dictionary string (including the "android" spoof that defeats
// caller-trusting per-process constraints), a sized byte array, a fresh or
// shared strong binder, or a file descriptor. Sequences, not single calls:
// retention bugs that need interleaving (register A, register B, unregister
// A) are reachable, and coverage-guided splicing composes them.
//
// Everything is a pure function of the Rng stream handed in, so a shard's
// sequence stream is reproducible from its seed alone.
#ifndef JGRE_FUZZ_MUTATOR_H_
#define JGRE_FUZZ_MUTATOR_H_

#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fuzz/sequence.h"
#include "model/code_model.h"

namespace jgre::fuzz {

struct MutatorOptions {
  int min_calls = 4;
  int max_calls = 24;
  // Probability a generated binder-typed slot mints a fresh Binder per call
  // (vs reusing the execution's shared callback binder).
  double fresh_binder_probability = 0.85;
  // How many mutation operators a single Mutate applies.
  int min_mutations = 1;
  int max_mutations = 3;
};

class Mutator {
 public:
  // The call pool is every IPC entry of `model` whose service is in
  // `live_services` (empty set = no filter). The pool order is the model's
  // deterministic id order, so pool indices drawn from an Rng reproduce.
  Mutator(const model::CodeModel* model,
          const std::set<std::string>& live_services,
          MutatorOptions options = {});

  const std::vector<const model::JavaMethodModel*>& pool() const {
    return pool_;
  }
  const MutatorOptions& options() const { return options_; }

  // A fresh random sequence.
  Sequence Generate(Rng& rng) const;

  // A mutated copy of `seed`: insert/delete/duplicate/swap calls, regenerate
  // a call's arguments, or splice the tail with fresh calls.
  Sequence Mutate(const Sequence& seed, Rng& rng) const;

  // One concrete call of `method` with randomized arguments.
  IpcCall MakeCall(const model::JavaMethodModel& method, Rng& rng) const;

 private:
  ArgValue MakeArg(services::ArgKind kind, Rng& rng) const;

  const model::CodeModel* model_;
  std::vector<const model::JavaMethodModel*> pool_;
  MutatorOptions options_;
};

}  // namespace jgre::fuzz

#endif  // JGRE_FUZZ_MUTATOR_H_
