// IPC call sequences — the unit of work the fuzzer generates, mutates,
// minimizes, and replays.
//
// A Sequence is a list of fully concrete binder transactions: which interface
// (by code-model id), and one value per slot of the method's parameter layout.
// Everything is plain data so a sequence replays byte-identically on any
// reset system: binder-typed slots record *how* to mint the argument (a fresh
// Binder per call vs the execution's shared callback binder), never a live
// object.
#ifndef JGRE_FUZZ_SEQUENCE_H_
#define JGRE_FUZZ_SEQUENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "services/registry_service.h"  // services::ArgKind
#include "snapshot/serializer.h"        // snapshot::Fnv1a

namespace jgre::fuzz {

// One concrete argument value for a parcel slot.
struct ArgValue {
  services::ArgKind kind = services::ArgKind::kInt32;
  std::int64_t scalar = 0;    // kInt32 / kInt64 / kBool
  std::string str;            // kString
  std::uint64_t byte_size = 0;  // kByteArray
  // kBinder: true mints a new Binder each time the call executes (the
  // unbounded-retention pattern); false passes the execution's shared
  // callback binder (re-registration, the corner sift rule 4 keys on).
  bool fresh_binder = true;
  // Protocol dataflow: >= 0 wires this slot to the reply value captured from
  // an earlier step of the same sequence (the ProtocolGraph's A.ret → B.argK
  // edge made concrete). The executor substitutes the captured binder/scalar
  // when the referenced step produced a type-compatible value; a dangling or
  // forward reference falls back to the literal value above.
  int from_step = -1;

  bool operator==(const ArgValue&) const = default;
};

// One concrete transaction against a live service.
struct IpcCall {
  std::string method_id;   // model::JavaMethodModel::id
  std::string service;     // service-manager name
  std::string descriptor;  // interface token
  std::uint32_t code = 0;  // transaction code
  std::vector<ArgValue> args;

  bool operator==(const IpcCall&) const = default;
};

struct Sequence {
  std::vector<IpcCall> calls;
  // Protocol dataflow: which process the screening execution should observe
  // ("" = system_server). Chain seeds targeting app-hosted services set the
  // hosting package, so retention in the app host is visible at screen time
  // (the confirm probe already resolves the true host on its own).
  std::string victim_hint;

  bool operator==(const Sequence&) const = default;

  // Stable 64-bit fingerprint over every field, for determinism checks and
  // corpus bookkeeping ("same seed => byte-identical sequence" is asserted
  // against this and operator==).
  std::uint64_t Fingerprint() const {
    snapshot::Serializer out;
    out.U64(calls.size());
    for (const IpcCall& call : calls) {
      out.Str(call.method_id);
      out.Str(call.service);
      out.Str(call.descriptor);
      out.U32(call.code);
      out.U64(call.args.size());
      for (const ArgValue& arg : call.args) {
        out.U8(static_cast<std::uint8_t>(arg.kind));
        out.I64(arg.scalar);
        out.Str(arg.str);
        out.U64(arg.byte_size);
        out.Bool(arg.fresh_binder);
        out.I64(arg.from_step);
      }
    }
    out.Str(victim_hint);
    return out.Hash();
  }
};

}  // namespace jgre::fuzz

#endif  // JGRE_FUZZ_SEQUENCE_H_
