#include "fuzz/executor.h"

#include <memory>

#include "fuzz/coverage.h"
#include "services/app.h"
#include "services/ipc_client.h"

namespace jgre::fuzz {

SequenceExecutor::SequenceExecutor(const model::CodeModel* model,
                                   ExecOptions options)
    : model_(model), options_(std::move(options)) {
  for (const model::AppServiceModel& app : model_->app_services) {
    app_hosted_[app.service_name] = app.package;
  }
}

ExecOutcome SequenceExecutor::Run(core::AndroidSystem& system,
                                  const std::vector<const IpcCall*>& calls,
                                  const std::string& victim_package) const {
  ExecOutcome out;
  services::AppProcess* probe =
      system.InstallApp(options_.probe_package, options_.permissions);

  const auto victim_pid = [&]() -> Pid {
    if (victim_package.empty()) return system.system_server_pid();
    services::AppProcess* victim = system.FindApp(victim_package);
    return victim != nullptr ? victim->pid() : Pid();
  };
  const auto victim_jgr = [&]() -> std::int64_t {
    if (victim_package.empty()) {
      return static_cast<std::int64_t>(system.SystemServerJgrCount());
    }
    services::AppProcess* victim = system.FindApp(victim_package);
    if (victim == nullptr || !victim->alive() || victim->runtime() == nullptr) {
      return 0;
    }
    return static_cast<std::int64_t>(victim->runtime()->JgrCount());
  };
  const auto victim_down = [&]() {
    if (victim_package.empty()) return system.soft_reboots() > 0;
    services::AppProcess* victim = system.FindApp(victim_package);
    return victim == nullptr || !victim->alive();
  };

  system.CollectAllGarbage();
  out.obs.jgr_before = victim_jgr();
  out.obs.fd_before = system.kernel().OpenFdCount(victim_pid());

  // Coverage rides the bus only while the sequence runs: baseline-taking and
  // probe install are not part of the signature.
  CoverageProbe coverage(&system.kernel().bus());
  // The shared callback binder (fresh_binder == false slots): one per
  // execution, minted lazily so binder-free sequences cost nothing.
  std::shared_ptr<binder::BBinder> shared_binder;
  std::map<std::string, services::IpcClient> clients;

  // Per-step reply values, for ArgValue::from_step substitution: the minted
  // token/id (scalar) or session handle (binder) a protocol chain forwards
  // into a dependent call.
  struct Captured {
    binder::StrongBinder binder;
    std::int64_t scalar = 0;
    bool has_binder = false;
    bool has_scalar = false;
  };
  std::vector<Captured> captured(calls.size());

  for (std::size_t step = 0; step < calls.size(); ++step) {
    const IpcCall* call = calls[step];
    auto it = clients.find(call->service);
    if (it == clients.end()) {
      auto client = probe->GetService(call->service, call->descriptor);
      if (!client.ok()) continue;  // dead or unregistered service: skip
      it = clients.emplace(call->service, std::move(client).value()).first;
    }
    const auto resolved = [&](const ArgValue& arg) -> const Captured* {
      if (arg.from_step < 0 ||
          static_cast<std::size_t>(arg.from_step) >= step) {
        return nullptr;  // dangling / forward reference: use the literal
      }
      return &captured[static_cast<std::size_t>(arg.from_step)];
    };
    binder::Parcel reply;
    Status status = it->second.Call(
        call->code,
        [&](binder::Parcel& p) {
          for (const ArgValue& arg : call->args) {
            const Captured* from = resolved(arg);
            switch (arg.kind) {
              case services::ArgKind::kInt32:
                if (from != nullptr && from->has_scalar) {
                  p.WriteInt32(static_cast<std::int32_t>(from->scalar));
                } else {
                  p.WriteInt32(static_cast<std::int32_t>(arg.scalar));
                }
                break;
              case services::ArgKind::kInt64:
                if (from != nullptr && from->has_scalar) {
                  p.WriteInt64(from->scalar);
                } else {
                  p.WriteInt64(arg.scalar);
                }
                break;
              case services::ArgKind::kBool:
                p.WriteBool(arg.scalar != 0);
                break;
              case services::ArgKind::kString:
                p.WriteString(arg.str);
                break;
              case services::ArgKind::kByteArray:
                p.WriteByteArray(arg.byte_size);
                break;
              case services::ArgKind::kBinder:
                if (from != nullptr && from->has_binder) {
                  // Forward the binder handle minted by the producer step
                  // (nested-binder parcel: session object from A into B).
                  p.WriteStrongBinder(from->binder.binder);
                } else if (arg.fresh_binder) {
                  p.WriteStrongBinder(probe->NewBinder("FuzzCallback"));
                } else {
                  if (shared_binder == nullptr) {
                    shared_binder = probe->NewBinder("FuzzSharedCallback");
                  }
                  p.WriteStrongBinder(shared_binder);
                }
                break;
              case services::ArgKind::kFd:
                p.WriteFileDescriptor();
                break;
            }
          }
        },
        &reply);
    if (status.ok() && reply.value_count() > 0) {
      // Capture the reply's minted value. Only the two protocol-relevant
      // shapes are parsed: a leading strong binder (kSession) or a leading
      // 64/32-bit scalar (kMintToken and id-returning queries).
      if (reply.has_binders()) {
        binder::CallContext rctx;
        rctx.self_pid = probe->pid();
        rctx.driver = probe->driver();
        reply.RewindRead();
        auto sb = reply.ReadStrongBinder(rctx);
        if (sb.ok() && sb.value().valid()) {
          captured[step].binder = std::move(sb).value();
          captured[step].has_binder = true;
        }
      } else {
        reply.RewindRead();
        auto i64 = reply.ReadInt64();
        if (i64.ok()) {
          captured[step].scalar = i64.value();
          captured[step].has_scalar = true;
        } else {
          reply.RewindRead();
          auto i32 = reply.ReadInt32();
          if (i32.ok()) {
            captured[step].scalar = i32.value();
            captured[step].has_scalar = true;
          }
        }
      }
    }
    (void)status;  // rejections (permission, caps, bad args) are signal too
    ++out.obs.calls;
    if (victim_down()) {
      out.obs.victim_aborted = true;
      break;
    }
    if (out.obs.calls % options_.gc_every_calls == 0) {
      system.CollectAllGarbage();
    }
  }

  if (!out.obs.victim_aborted) {
    system.CollectAllGarbage();
    out.obs.jgr_after = victim_jgr();
    out.obs.fd_after = system.kernel().OpenFdCount(victim_pid());
  } else {
    out.obs.jgr_after = out.obs.jgr_before;
    out.obs.fd_after = out.obs.fd_before;
  }
  out.elements = coverage.TakeElements();
  return out;
}

ExecOutcome SequenceExecutor::Execute(core::AndroidSystem& system,
                                      const Sequence& seq) const {
  std::vector<const IpcCall*> calls;
  calls.reserve(seq.calls.size());
  for (const IpcCall& call : seq.calls) calls.push_back(&call);
  return Run(system, calls, seq.victim_hint);
}

ExecOutcome SequenceExecutor::ExecuteRepeated(
    core::AndroidSystem& system, const IpcCall& call, int calls,
    const std::vector<IpcCall>& setup) const {
  std::vector<const IpcCall*> all;
  all.reserve(setup.size() + static_cast<std::size_t>(calls));
  for (const IpcCall& s : setup) all.push_back(&s);
  for (int i = 0; i < calls; ++i) all.push_back(&call);
  auto host = app_hosted_.find(call.service);
  return Run(system, all,
             host != app_hosted_.end() ? host->second : std::string());
}

}  // namespace jgre::fuzz
