#include "fuzz/oracle.h"

namespace jgre::fuzz {

namespace {

double PerCall(std::int64_t delta, int calls) {
  return calls > 0 ? static_cast<double>(delta) / static_cast<double>(calls)
                   : 0.0;
}

}  // namespace

const char* ExhaustionKindName(ExhaustionKind kind) {
  switch (kind) {
    case ExhaustionKind::kNone:
      return "none";
    case ExhaustionKind::kJgr:
      return "jgr_exhaustion";
    case ExhaustionKind::kFd:
      return "fd_exhaustion";
    case ExhaustionKind::kAbort:
      return "abort";
  }
  return "?";
}

OracleVerdict Oracle::Screen(const Observation& obs) const {
  OracleVerdict v;
  const std::int64_t jgr_delta = obs.jgr_after - obs.jgr_before;
  const std::int64_t fd_delta = obs.fd_after - obs.fd_before;
  v.jgr_growth_per_call = PerCall(jgr_delta, obs.calls);
  v.fd_growth_per_call = PerCall(fd_delta, obs.calls);
  if (obs.victim_aborted) {
    v.kind = ExhaustionKind::kAbort;
  } else if (jgr_delta >= options_.retained_jgr_floor ||
             v.jgr_growth_per_call >= options_.growth.bounded_jgr_per_call) {
    v.kind = ExhaustionKind::kJgr;
  } else if (fd_delta >= options_.retained_fd_floor ||
             v.fd_growth_per_call >= options_.growth.exploitable_fd_per_call) {
    v.kind = ExhaustionKind::kFd;
  }
  return v;
}

OracleVerdict Oracle::Confirm(const Observation& obs) const {
  OracleVerdict v;
  v.jgr_growth_per_call = PerCall(obs.jgr_after - obs.jgr_before, obs.calls);
  v.fd_growth_per_call = PerCall(obs.fd_after - obs.fd_before, obs.calls);
  if (obs.victim_aborted) {
    v.kind = ExhaustionKind::kAbort;
  } else if (v.jgr_growth_per_call >=
             options_.growth.exploitable_jgr_per_call) {
    v.kind = ExhaustionKind::kJgr;
  } else if (v.fd_growth_per_call >=
             options_.growth.exploitable_fd_per_call) {
    v.kind = ExhaustionKind::kFd;
  }
  return v;
}

}  // namespace jgre::fuzz
