#include "fuzz/oracle.h"

namespace jgre::fuzz {

namespace {

double PerCall(std::int64_t delta, int calls) {
  return calls > 0 ? static_cast<double>(delta) / static_cast<double>(calls)
                   : 0.0;
}

}  // namespace

const char* ExhaustionKindName(ExhaustionKind kind) {
  switch (kind) {
    case ExhaustionKind::kNone:
      return "none";
    case ExhaustionKind::kJgr:
      return "jgr_exhaustion";
    case ExhaustionKind::kFd:
      return "fd_exhaustion";
    case ExhaustionKind::kAbort:
      return "abort";
  }
  return "?";
}

OracleVerdict Oracle::Judge(const Observation& obs,
                            const OracleBar& bar) const {
  OracleVerdict v;
  const std::int64_t jgr_delta = obs.jgr_after - obs.jgr_before;
  const std::int64_t fd_delta = obs.fd_after - obs.fd_before;
  v.jgr_growth_per_call = PerCall(jgr_delta, obs.calls);
  v.fd_growth_per_call = PerCall(fd_delta, obs.calls);
  if (obs.victim_aborted) {
    v.kind = ExhaustionKind::kAbort;
  } else if ((bar.jgr_floor >= 0 && jgr_delta >= bar.jgr_floor) ||
             v.jgr_growth_per_call >= bar.jgr_rate) {
    v.kind = ExhaustionKind::kJgr;
  } else if ((bar.fd_floor >= 0 && fd_delta >= bar.fd_floor) ||
             v.fd_growth_per_call >= bar.fd_rate) {
    v.kind = ExhaustionKind::kFd;
  }
  return v;
}

}  // namespace jgre::fuzz
