#include "fuzz/coverage.h"

namespace jgre::fuzz {

namespace {

constexpr obs::CategoryMask kProbeMask = obs::MaskOf(obs::Category::kIpc) |
                                         obs::MaskOf(obs::Category::kJgr) |
                                         obs::MaskOf(obs::Category::kLmk);

std::uint64_t HashElement(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint8_t bytes[24];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(a >> (8 * i));
    bytes[8 + i] = static_cast<std::uint8_t>(b >> (8 * i));
    bytes[16 + i] = static_cast<std::uint8_t>(c >> (8 * i));
  }
  return snapshot::Fnv1a(bytes, sizeof(bytes));
}

}  // namespace

CoverageProbe::CoverageProbe(obs::EventBus* bus) : bus_(bus) {
  bus_->Subscribe(this, kProbeMask, /*pid_filter=*/-1,
                  obs::Delivery::kBuffered);
}

CoverageProbe::~CoverageProbe() { bus_->Unsubscribe(this); }

int CoverageProbe::DeltaBucket(std::int64_t delta) {
  // Exact around the interesting region (0..3 JGRs per call is where the
  // retention patterns live), coarse beyond so noisy handlers don't explode
  // the signature space.
  if (delta <= -2) return -2;
  if (delta <= 3) return static_cast<int>(delta);
  if (delta <= 7) return 4;
  return 5;
}

void CoverageProbe::FlushCall() {
  if (!call_open_) return;
  call_open_ = false;
  const std::int64_t now = last_jgr_.count(callee_pid_) != 0
                               ? last_jgr_[callee_pid_]
                               : jgr_at_call_start_;
  const int bucket = DeltaBucket(now - jgr_at_call_start_);
  elements_.insert(HashElement(
      static_cast<std::uint64_t>(call_key_),
      static_cast<std::uint64_t>(static_cast<std::int64_t>(bucket)),
      (static_cast<std::uint64_t>(adds_in_call_ > 7 ? 7 : adds_in_call_) << 8) |
          static_cast<std::uint64_t>(removes_in_call_ > 7 ? 7
                                                          : removes_in_call_)));
}

void CoverageProbe::Fold(const obs::TraceEvent& event) {
  switch (event.category) {
    case obs::Category::kIpc: {
      FlushCall();
      call_open_ = true;
      call_key_ = event.arg1;  // (descriptor_id << 32) | code
      callee_pid_ = static_cast<std::int32_t>(event.arg0);
      jgr_at_call_start_ = last_jgr_.count(callee_pid_) != 0
                               ? last_jgr_[callee_pid_]
                               : 0;
      adds_in_call_ = 0;
      removes_in_call_ = 0;
      break;
    }
    case obs::Category::kJgr: {
      last_jgr_[event.pid] = event.arg0;  // count after the operation
      if (call_open_ && event.pid == callee_pid_) {
        if (event.name == obs::LabelIdOf(obs::Label::kJgrAdd)) {
          ++adds_in_call_;
        } else if (event.name == obs::LabelIdOf(obs::Label::kJgrRemove)) {
          ++removes_in_call_;
        } else {
          // Overflow: its own element — the detonation transition.
          elements_.insert(HashElement(static_cast<std::uint64_t>(call_key_),
                                       0x4F564552u /* "OVER" */,
                                       static_cast<std::uint64_t>(event.pid)));
        }
      }
      break;
    }
    case obs::Category::kLmk: {
      if (event.name == obs::LabelIdOf(obs::Label::kSoftReboot)) {
        elements_.insert(HashElement(0x534F4654u /*SOFT*/, 0,
                                     static_cast<std::uint64_t>(event.pid)));
      }
      break;
    }
    default:
      break;
  }
}

std::vector<std::uint64_t> CoverageProbe::TakeElements() {
  bus_->Flush();  // fold any staged events before finalizing
  FlushCall();
  std::vector<std::uint64_t> out(elements_.begin(), elements_.end());
  elements_.clear();
  return out;
}

}  // namespace jgre::fuzz
