#include "defense/jgr_monitor.h"

#include <algorithm>

#include "common/log.h"
#include "obs/trace.h"

namespace jgre::defense {

JgrMonitor::JgrMonitor(SimClock* clock, std::string victim_name, Config config)
    : clock_(clock), victim_name_(std::move(victim_name)), config_(config) {}

void JgrMonitor::OnEvent(const obs::TraceEvent& event) {
  if (event.category != obs::Category::kJgr) return;
  switch (event.name) {
    case obs::LabelIdOf(obs::Label::kJgrAdd):
      OnJgrAdd(event.ts_us, static_cast<std::size_t>(event.arg0),
               ObjectId{static_cast<std::int64_t>(event.arg1)});
      break;
    case obs::LabelIdOf(obs::Label::kJgrRemove):
      OnJgrRemove(event.ts_us, static_cast<std::size_t>(event.arg0),
                  ObjectId{static_cast<std::int64_t>(event.arg1)});
      break;
    default:
      break;  // kJgrOverflow: the kernel kill path reports it
  }
}

void JgrMonitor::OnJgrAdd(TimeUs now_us, std::size_t count_after,
                          ObjectId /*obj*/) {
  if (!recording_) {
    if (count_after <= config_.alarm_threshold) return;  // passive: no cost
    recording_ = true;
    alarm_at_ = now_us;
    JGRE_LOG(kInfo, "JgrMonitor")
        << victim_name_ << ": JGR count passed alarm threshold ("
        << config_.alarm_threshold << "), recording";
    JGRE_TRACE(source_.bus, obs::Category::kDefense,
               obs::MakeEvent(obs::Category::kDefense,
                              obs::Label::kMonitorAlarm, now_us, source_.pid,
                              source_.uid, count_after));
  }
  clock_->AdvanceUs(config_.record_cost_us);
  tape_t_.push_back(clock_->NowUs());
  tape_is_add_.push_back(1);
  tape_count_after_.push_back(count_after);
  ++adds_since_alarm_;
  if (!reported_ && adds_since_alarm_ >= config_.report_threshold) {
    reported_ = true;
    reported_at_ = clock_->NowUs();
    JGRE_LOG(kWarning, "JgrMonitor")
        << victim_name_ << ": " << adds_since_alarm_
        << " new JGR entries since alarm — notifying JGRE Defender";
    JGRE_TRACE(source_.bus, obs::Category::kDefense,
               obs::MakeEvent(obs::Category::kDefense,
                              obs::Label::kMonitorReport, reported_at_,
                              source_.pid, source_.uid, adds_since_alarm_));
  }
}

void JgrMonitor::OnJgrRemove(TimeUs now_us, std::size_t count_after,
                             ObjectId /*obj*/) {
  if (!recording_) return;
  clock_->AdvanceUs(config_.record_cost_us);
  tape_t_.push_back(clock_->NowUs());
  tape_is_add_.push_back(0);
  tape_count_after_.push_back(count_after);
  (void)now_us;
}

std::vector<JgrMonitor::JgrEvent> JgrMonitor::events() const {
  std::vector<JgrEvent> out;
  out.reserve(tape_t_.size());
  for (std::size_t i = 0; i < tape_t_.size(); ++i) {
    out.push_back(JgrEvent{tape_t_[i], tape_is_add_[i] != 0,
                           static_cast<std::size_t>(tape_count_after_[i])});
  }
  return out;
}

std::vector<TimeUs> JgrMonitor::AddTimes() const {
  std::vector<TimeUs> times;
  times.reserve(tape_t_.size());
  for (std::size_t i = 0; i < tape_t_.size(); ++i) {
    if (tape_is_add_[i] != 0) times.push_back(tape_t_[i]);
  }
  // The tape records a monotone clock, so the column is already sorted; a
  // restored tape is a saved live tape and inherits the property.
  if (!std::is_sorted(times.begin(), times.end())) {
    std::sort(times.begin(), times.end());
  }
  return times;
}

void JgrMonitor::Reset() {
  recording_ = false;
  reported_ = false;
  alarm_at_ = 0;
  reported_at_ = 0;
  adds_since_alarm_ = 0;
  tape_t_.clear();
  tape_is_add_.clear();
  tape_count_after_.clear();
}

}  // namespace jgre::defense
