#include "defense/jgre_defender.h"

#include <algorithm>

#include "common/log.h"
#include "common/strings.h"
#include "obs/trace.h"
#include "services/activity_service.h"

namespace jgre::defense {

JgreDefender::JgreDefender(core::AndroidSystem* system, Config config)
    : system_(system), config_(config) {}

JgreDefender::JgreDefender(core::AndroidSystem* system)
    : JgreDefender(system, Config{}) {}

JgreDefender::~JgreDefender() {
  if (installed_) {
    system_->SetPumpExtension(nullptr);
    system_->SetPostRebootHook(nullptr);
    hub_.reset();  // unsubscribes its kJgr route
    if (tap_ != nullptr) system_->kernel().bus().Unsubscribe(tap_.get());
  }
}

void JgreDefender::DetachMonitor(const std::string& name) {
  auto it = monitors_.find(name);
  if (it == monitors_.end()) return;
  if (hub_ != nullptr) hub_->Detach(it->second.get());
}

void JgreDefender::Install() {
  if (installed_) return;
  installed_ = true;
  // Extended binder driver: log every transaction (paper Fig 10's overhead).
  system_->driver().SetDefenseLogging(true);
  // Export the log through procfs, readable by system services only.
  system_->kernel().procfs().Register(
      "/proc/jgre_ipc_log",
      [this] { return system_->driver().RenderIpcLogProcfs(); },
      /*system_only=*/true);
  // The defender is a standalone system service in its own process — it must
  // survive a system_server abort to handle the incident that caused it.
  os::Kernel::ProcessConfig pc;
  pc.with_runtime = true;
  pc.boot_class_refs = 60;
  pc.memory_kb = 12 * 1024;
  pc.oom_score_adj = os::kPersistentProcAdj;
  defender_pid_ =
      system_->kernel().CreateProcess("jgre_defender", kSystemUid, pc);

  // The defender's IPC tap: every kernel-side transaction record arrives as
  // a bus event — no more polling the procfs log. The tap is a pure log, so
  // it rides the bus's buffered (batched) delivery; RankApps flushes the bus
  // before reading it.
  tap_ = std::make_unique<IpcTap>(config_.ipc_event_capacity);
  system_->kernel().bus().Subscribe(tap_.get(),
                                    obs::MaskOf(obs::Category::kIpc),
                                    /*pid_filter=*/-1, obs::Delivery::kBuffered);

  // One kJgr subscription for all monitors, routed by victim pid.
  hub_ = std::make_unique<JgrMonitorHub>(&system_->kernel().bus());
  AttachMonitors();
  system_->SetPumpExtension([this] { Check(); });
  system_->SetPostRebootHook([this] { AttachMonitors(); });
  JGRE_LOG(kInfo, "JgreDefender") << "installed (alarm="
                                  << config_.monitor.alarm_threshold
                                  << ", report="
                                  << config_.monitor.report_threshold << ")";
}

void JgreDefender::AttachMonitors() {
  // (Re-)attach to the current incarnation of each protected runtime: each
  // monitor gets a hub route for the victim pid's kJgr events. A soft reboot
  // gives system_server a new pid, so the route is rebuilt here by the
  // post-reboot hook.
  obs::EventBus& bus = system_->kernel().bus();
  auto attach = [this, &bus](const std::string& name, Pid victim_pid) {
    if (!victim_pid.valid()) return;
    // Drop the old route before the old monitor is destroyed by the map
    // assignment (also avoids double observation when AttachMonitors is
    // called redundantly).
    DetachMonitor(name);
    auto monitor = std::make_unique<JgrMonitor>(&system_->clock(), name,
                                                config_.monitor);
    monitor->set_source(obs::Source{&bus, victim_pid.value(), -1});
    hub_->Attach(victim_pid, monitor.get());
    monitors_[name] = std::move(monitor);
  };
  attach("system_server", system_->system_server_pid());
  for (const char* pkg : {"com.android.bluetooth", "com.svox.pico"}) {
    services::AppProcess* app = system_->FindApp(pkg);
    if (app != nullptr && app->alive()) attach(pkg, app->pid());
  }
}

JgrMonitor* JgreDefender::MonitorFor(const std::string& victim_name) {
  auto it = monitors_.find(victim_name);
  return it == monitors_.end() ? nullptr : it->second.get();
}

Pid JgreDefender::VictimPid(const std::string& victim_name) const {
  if (victim_name == "system_server") return system_->system_server_pid();
  services::AppProcess* app = system_->FindApp(victim_name);
  return app == nullptr ? Pid{} : app->pid();
}

std::size_t JgreDefender::VictimJgrCount(const std::string& victim_name) const {
  if (victim_name == "system_server") {
    return system_->SystemServerJgrCount();
  }
  services::AppProcess* app = system_->FindApp(victim_name);
  if (app == nullptr || !app->alive() || app->runtime() == nullptr) return 0;
  return app->runtime()->JgrCount();
}

void JgreDefender::Check() {
  for (auto& [name, monitor] : monitors_) {
    if (monitor->reported()) {
      RunIncident(name, monitor.get());
    }
  }
}

std::vector<JgreDefender::ScoreEntry> JgreDefender::RankApps(
    const JgrMonitor& monitor, Pid victim_pid, const ScoringParams& params,
    ScoringCost* cost) {
  // Score the trailing analysis window (see ScoringParams::analysis_window_us)
  // of the recording, never anything before the alarm.
  const TimeUs reference =
      monitor.reported() ? monitor.reported_at() : system_->clock().NowUs();
  TimeUs window_start = monitor.alarm_at();
  if (params.analysis_window_us > 0 &&
      reference > params.analysis_window_us &&
      reference - params.analysis_window_us > window_start) {
    window_start = reference - params.analysis_window_us;
  }

  // Phase 2, step 1: replay the captured IPC records. Per-app IPC events
  // targeting the victim since the alarm; system uids are exempt: the
  // defender only ever kills apps (LMK-style policy). The ranking reads the
  // defender's own bus-fed tap (kIpc events carry the exact MakeIpcTypeKey
  // packing in arg1), so Install() is a precondition. The tap is on
  // buffered delivery; drain staged events before reading the ring.
  if (tap_ == nullptr) return {};
  system_->kernel().bus().Flush();
  std::map<Uid, std::vector<IpcEvent>> calls_by_app;
  std::size_t parsed_records = 0;
  const RingBuffer<obs::TraceEvent>& ring = tap_->ring();
  for (std::uint64_t i = ring.first_index(); i < ring.end_index(); ++i) {
    const obs::TraceEvent& e = ring.At(i);
    ++parsed_records;
    if (e.ts_us < window_start) continue;
    if (e.arg0 != victim_pid.value()) continue;
    if (e.uid < kFirstAppUid.value()) continue;
    calls_by_app[Uid{e.uid}].push_back(
        IpcEvent{e.ts_us, static_cast<IpcTypeKey>(e.arg1)});
  }
  // Reading + parsing the records costs real time (part of the response
  // delay).
  system_->clock().AdvanceUs(static_cast<DurationUs>(parsed_records) *
                             config_.ipc_record_parse_us);

  std::vector<TimeUs> jgr_adds = monitor.AddTimes();
  jgr_adds.erase(std::remove_if(jgr_adds.begin(), jgr_adds.end(),
                                [window_start](TimeUs t) {
                                  return t < window_start;
                                }),
                 jgr_adds.end());
  system_->clock().AdvanceUs(static_cast<DurationUs>(
      jgr_adds.size() * config_.jgr_event_transfer_ns / 1000));

  std::vector<ScoreEntry> ranking;
  for (auto& [uid, events] : calls_by_app) {
    // Events arrive in log (time) order; JgreScoreForApp groups them by type
    // itself, so no pre-sort is needed.
    ScoringCost app_cost;
    ScoreEntry entry;
    entry.uid = uid;
    entry.score =
        JgreScoreForApp(events, jgr_adds, params, &app_cost, &workspace_);
    entry.ipc_calls = static_cast<std::int64_t>(events.size());
    auto pkg = system_->package_manager().GetPackageForUid(uid);
    entry.package = pkg.ok() ? pkg.value() : StrCat("uid:", uid.value());
    ranking.push_back(std::move(entry));
    system_->clock().AdvanceUs(static_cast<DurationUs>(
        app_cost.pairs * static_cast<std::int64_t>(config_.pair_cost_ns) /
        1000));
    if (cost != nullptr) {
      cost->ipc_events += app_cost.ipc_events;
      cost->jgr_events += app_cost.jgr_events;
      cost->pairs += app_cost.pairs;
      cost->range_ops += app_cost.range_ops;
    }
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const ScoreEntry& a, const ScoreEntry& b) {
              return a.score > b.score;
            });
  return ranking;
}

Status JgreDefender::ForceStop(const std::string& package) {
  // "am force-stop <pkg>": an IPC from the defender to the activity service.
  auto activity = system_->service_manager().GetService(
      services::ActivityService::kName, defender_pid_);
  if (!activity.ok()) return activity.status();
  binder::Parcel data;
  data.WriteInterfaceToken(services::ActivityService::kDescriptor);
  data.WriteString(package);
  binder::Parcel reply;
  return activity.value().binder->Transact(
      services::ActivityService::TRANSACTION_forceStopPackage, data, &reply);
}

void JgreDefender::RunIncident(const std::string& victim_name,
                               JgrMonitor* monitor) {
  IncidentReport report;
  report.victim = victim_name;
  report.alarm_at = monitor->alarm_at();
  report.reported_at = monitor->reported_at();
  report.jgr_at_report = VictimJgrCount(victim_name);

  const Pid victim_pid = VictimPid(victim_name);
  report.ranking =
      RankApps(*monitor, victim_pid, config_.scoring, &report.cost);
  report.identified_at = system_->clock().NowUs();
  JGRE_TRACE(&system_->kernel().bus(), obs::Category::kDefense,
             obs::MakeEvent(
                 obs::Category::kDefense, obs::Label::kIncidentIdentified,
                 report.identified_at, defender_pid_.value(),
                 kSystemUid.value(),
                 static_cast<std::int64_t>(report.ranking.size()),
                 static_cast<std::int64_t>(report.identified_at -
                                           report.reported_at)));

  // Phase 3: kill top-ranked apps until the victim's JGR table is healthy.
  for (const ScoreEntry& entry : report.ranking) {
    if (VictimJgrCount(victim_name) <= config_.recovery_target) break;
    if (static_cast<int>(report.killed_packages.size()) >=
        config_.max_kills_per_incident) {
      break;
    }
    if (entry.score < config_.min_kill_score) break;
    JGRE_LOG(kWarning, "JgreDefender")
        << "force-stopping " << entry.package << " (score " << entry.score
        << ") to recover " << victim_name;
    if (ForceStop(entry.package).ok()) {
      report.killed_packages.push_back(entry.package);
      JGRE_TRACE(&system_->kernel().bus(), obs::Category::kDefense,
                 obs::MakeEvent(obs::Category::kDefense,
                                obs::Label::kDefenseKill,
                                system_->clock().NowUs(),
                                defender_pid_.value(), kSystemUid.value(),
                                entry.uid.value(), entry.score));
      // Death notifications dropped the service-side holds; GC reclaims the
      // JGRs they pinned.
      system_->CollectAllGarbage();
    }
  }
  report.recovered_at = system_->clock().NowUs();
  report.jgr_after_recovery = VictimJgrCount(victim_name);
  report.recovered = report.jgr_after_recovery <= config_.recovery_target;
  JGRE_TRACE(&system_->kernel().bus(), obs::Category::kDefense,
             obs::MakeEvent(
                 obs::Category::kDefense, obs::Label::kIncidentRecovered,
                 report.recovered_at, defender_pid_.value(),
                 kSystemUid.value(),
                 static_cast<std::int64_t>(report.jgr_after_recovery),
                 report.recovered ? 1 : 0));
  monitor->Reset();
  // Drop the consumed window (including events staged during the recovery
  // kills): the next incident scores fresh records only.
  if (tap_ != nullptr) {
    system_->kernel().bus().Flush();
    tap_->Clear();
  }
  JGRE_LOG(kWarning, "JgreDefender")
      << victim_name << ": incident handled, killed "
      << report.killed_packages.size() << " app(s), JGR "
      << report.jgr_at_report << " -> " << report.jgr_after_recovery;
  incidents_.push_back(std::move(report));
}

void JgreDefender::SaveState(snapshot::Serializer& out) const {
  out.Marker(0x44454631);  // "DEF1"
  out.Bool(installed_);
  if (!installed_) return;
  out.U64(monitors_.size());
  for (const auto& [name, monitor] : monitors_) {  // map: name order
    out.Str(name);
    monitor->SaveState(out);
  }
  tap_->SaveState(out);
}

void JgreDefender::RestoreState(snapshot::Deserializer& in) {
  in.Marker(0x44454631);
  const bool was_installed = in.Bool();
  if (!in.ok()) return;
  if (was_installed != installed_) {
    in.Fail("checkpoint and restore target disagree on defender install");
    return;
  }
  if (!installed_) return;
  const std::uint64_t monitor_count = in.U64();
  if (monitor_count != monitors_.size()) {
    in.Fail("checkpoint monitor census differs from the installed defender");
    return;
  }
  for (std::uint64_t i = 0; i < monitor_count && in.ok(); ++i) {
    const std::string name = in.Str();
    auto it = monitors_.find(name);
    if (it == monitors_.end()) {
      in.Fail(StrCat("checkpoint has a monitor for '", name,
                     "' this defender lacks"));
      return;
    }
    it->second->RestoreState(in);
  }
  tap_->RestoreState(in);
}

}  // namespace jgre::defense
