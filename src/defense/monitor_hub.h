// JgrMonitorHub — single-subscription fan-in for the defense's JgrMonitors.
//
// The seed wiring gave every protected runtime's monitor its own pid-filtered
// bus subscription, so each kJgr emission walked the whole subscription list
// and evaluated N mask/pid filters to deliver to at most one monitor. The hub
// inverts that: it holds the one kJgr subscription and routes each event to
// its victim's monitor through a dense pid-indexed table — per event, one
// array load instead of a subscription scan.
//
// This is the defense's per-victim sharding point: each attached monitor is
// an independent shard with its own counters (adds-since-alarm, recorded
// tape), mutated only by its own pid's events; the defender folds the shard
// flags at its decision point (the between-transactions Check), never on the
// ingest path.
//
// The hub must stay on immediate (unbuffered) delivery: recording monitors
// advance the simulation clock per event, and the defender polls reported()
// between transactions — both require events to be folded at emission time.
#ifndef JGRE_DEFENSE_MONITOR_HUB_H_
#define JGRE_DEFENSE_MONITOR_HUB_H_

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "defense/jgr_monitor.h"
#include "obs/event.h"
#include "obs/event_bus.h"

namespace jgre::defense {

class JgrMonitorHub : public obs::EventSink {
 public:
  // Subscribes to kJgr (all pids) on `bus`; unsubscribes on destruction.
  explicit JgrMonitorHub(obs::EventBus* bus);
  ~JgrMonitorHub() override;

  JgrMonitorHub(const JgrMonitorHub&) = delete;
  JgrMonitorHub& operator=(const JgrMonitorHub&) = delete;

  // Routes `pid`'s kJgr events to `monitor`, replacing any previous route
  // for that pid. A null monitor clears the route.
  void Attach(Pid pid, JgrMonitor* monitor);

  // Clears every route pointing at `monitor` (a victim's pid changes across
  // a soft reboot, so detaching is by monitor identity, not pid).
  void Detach(const JgrMonitor* monitor);

  JgrMonitor* MonitorForPid(Pid pid) const {
    const std::size_t slot = static_cast<std::size_t>(pid.value() - 1);
    return pid.value() >= 1 && slot < routes_.size() ? routes_[slot] : nullptr;
  }

  void OnEvent(const obs::TraceEvent& event) override {
    if (event.pid < 1) return;
    const std::size_t slot = static_cast<std::size_t>(event.pid - 1);
    if (slot < routes_.size() && routes_[slot] != nullptr) {
      routes_[slot]->OnEvent(event);
    }
  }

 private:
  obs::EventBus* bus_;
  std::vector<JgrMonitor*> routes_;  // slot = pid - 1
};

}  // namespace jgre::defense

#endif  // JGRE_DEFENSE_MONITOR_HUB_H_
