// Algorithm 1 — the JGR scoring algorithm (paper §V.A).
//
// Observation 2 says every vulnerable IPC interface exhibits a stable
// per-interface latency between the IPC call and the JGR creation it
// triggers: duration = Delay + Δ with constant Delay and small Δ ≥ 0. The
// defender therefore asks, per app and per IPC type: *is there a single
// delay hypothesis under which many of this app's calls line up with JGR
// creations?* For every (IPC call, JGR add) pair it votes +1 on the delay
// interval [JGRTime − IPCTime, JGRTime − IPCTime + Δ]; the best-supported
// delay bucket's count is the type's suspicious-call count, and the app's
// jgre_score is the sum over its IPC types. A benign app's calls do not
// correlate with the victim's JGR creations, so no single delay accumulates
// support — which is also why an attacker cannot evade by merely calling a
// lot (the counts only grow when calls actually produce JGRs at a consistent
// lag).
//
// The interval-vote/max structure has three interchangeable engines (see
// ScoreEngine): the default batched engine walks each IPC type's calls and
// the JGR adds with two monotone cursors and accumulates votes in a flat
// difference array (one prefix scan replaces per-pair O(log n) tree
// updates); the lazy segment tree of §V.D.2 is kept as the golden
// cross-check; and a naive O(interval) reference backs property tests and
// the ablation bench. All three produce identical scores and identical
// work counters.
#ifndef JGRE_DEFENSE_SCORING_H_
#define JGRE_DEFENSE_SCORING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/segment_tree.h"
#include "common/types.h"

namespace jgre::defense {

// Which interval-vote/max implementation scores each IPC type. All engines
// are score-for-score identical; they differ only in how the votes are
// accumulated and the peak located.
enum class ScoreEngine {
  kBatched = 0,   // difference-array votes + prefix scan (default, fastest)
  kSegmentTree,   // §V.D.2 lazy segment tree (golden cross-check)
  kNaive,         // O(interval) reference (property tests, ablation)
};

struct ScoringParams {
  // Δ: the deviation bound. The paper's single-attacker experiment uses the
  // services' average of 1.8 ms; Fig 9 sweeps {79, 1900, 3583} µs.
  DurationUs delta_us = 1800;
  // Segment-tree bucket granularity over the delay axis.
  DurationUs bucket_us = 100;
  // Maximum plausible Delay (TimeLen): pairs farther apart than this cannot
  // be cause and effect for any interface (the slowest handler finishes well
  // within ~60 ms at the JGR counts where detection runs).
  DurationUs max_delay_us = 60'000;
  ScoreEngine engine = ScoreEngine::kBatched;
  // Only the trailing window of the recording is scored. Observation 2 holds
  // *locally*: a vulnerable interface's Delay is stable over seconds but
  // drifts as its retained state grows (Fig 5), so scoring the whole
  // multi-minute recording of a slow attack smears the attacker's votes
  // across buckets. 0 = score everything.
  DurationUs analysis_window_us = 6'000'000;
  // §VI "multiple attack paths": an attacker may drive one IPC method down
  // k code paths with k distinct Delays, splitting its votes across k delay
  // clusters. With max_paths > 1 the scorer sums the top-k non-overlapping
  // delay peaks per type ("classifying different IPC calls triggered by the
  // same IPC method according to code execution paths"). 1 = Algorithm 1
  // exactly as printed in the paper.
  int max_paths = 1;
};

// Dense key identifying the "type of IPC interface" Algorithm 1 groups by:
// the interned interface-descriptor id in the high 32 bits, the transaction
// code in the low 32. The seed implementation concatenated
// "<descriptor>#<code>" strings per record and grouped through a
// std::map<std::string, ...>; the integer key removes every allocation and
// string comparison from the defender's hot parse/score loop.
using IpcTypeKey = std::uint64_t;

constexpr IpcTypeKey MakeIpcTypeKey(std::uint32_t descriptor_id,
                                    std::uint32_t code) {
  return (static_cast<IpcTypeKey>(descriptor_id) << 32) |
         static_cast<IpcTypeKey>(code);
}

// One recorded IPC call by one app: when, and which interface type.
struct IpcEvent {
  TimeUs t = 0;
  IpcTypeKey type = 0;
};

struct ScoringCost {
  std::int64_t ipc_events = 0;
  std::int64_t jgr_events = 0;
  std::int64_t pairs = 0;       // (IPC, JGR) pairs examined
  std::int64_t range_ops = 0;   // interval votes applied
};

// Reusable scratch buffers for the scoring pass. The segment tree over the
// delay axis and the per-type grouping buffer are allocated once and reused
// across apps and incidents instead of rebuilt per IPC type (the seed
// allocated a fresh 4n-node tree for every (app, type) pair). Not
// thread-safe: use one workspace per defender/thread.
class ScoringWorkspace {
 public:
  ScoringWorkspace() = default;
  ScoringWorkspace(const ScoringWorkspace&) = delete;
  ScoringWorkspace& operator=(const ScoringWorkspace&) = delete;

  // Returns the shared tree sized for `buckets`, reset to all-zero.
  MaxSegmentTree& AcquireTree(std::size_t buckets);
  std::vector<IpcEvent>& grouping_buffer() { return grouping_; }
  std::vector<TimeUs>& times_buffer() { return times_; }
  // Flat vote column for the batched engine (difference array, then scanned
  // in place into per-bucket vote counts).
  std::vector<std::int64_t>& votes_buffer() { return votes_; }

 private:
  std::unique_ptr<MaxSegmentTree> tree_;
  std::vector<IpcEvent> grouping_;
  std::vector<TimeUs> times_;
  std::vector<std::int64_t> votes_;
};

// Computes one app's jgre_score against the victim's JGR-creation times.
// `jgr_add_times` must be sorted ascending; `app_calls` may be in any order.
// `cost`, when non-null, accumulates work counters (used to charge virtual
// analysis time and for the segment-tree ablation). `workspace`, when
// non-null, supplies reusable buffers (recommended on the defender's hot
// path); when null a temporary workspace is created per call.
std::int64_t JgreScoreForApp(const std::vector<IpcEvent>& app_calls,
                             const std::vector<TimeUs>& jgr_add_times,
                             const ScoringParams& params,
                             ScoringCost* cost = nullptr,
                             ScoringWorkspace* workspace = nullptr);

}  // namespace jgre::defense

#endif  // JGRE_DEFENSE_SCORING_H_
