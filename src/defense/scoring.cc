#include "defense/scoring.h"

#include <algorithm>
#include <cassert>

namespace jgre::defense {

namespace {

// Number of delay buckets the vote axis needs for the given parameters.
std::size_t BucketCount(const ScoringParams& params) {
  return static_cast<std::size_t>((params.max_delay_us + params.delta_us) /
                                  params.bucket_us) +
         2;
}

// Scores a single IPC type: interval votes over delay buckets, then the max.
// `delay_votes` must arrive zeroed; call_times must be sorted ascending.
template <typename Tree>
std::int64_t ScoreType(Tree& delay_votes, const std::vector<TimeUs>& call_times,
                       const std::vector<TimeUs>& jgr_add_times,
                       const ScoringParams& params, ScoringCost* cost) {
  bool any = false;
  for (TimeUs ipc_time : call_times) {
    // JGR adds that could have been caused by this call: those within
    // [ipc_time, ipc_time + max_delay].
    auto lo = std::lower_bound(jgr_add_times.begin(), jgr_add_times.end(),
                               ipc_time);
    auto hi = std::upper_bound(lo, jgr_add_times.end(),
                               ipc_time + params.max_delay_us);
    for (auto it = lo; it != hi; ++it) {
      const DurationUs min_delay = *it - ipc_time;
      const DurationUs max_delay = min_delay + params.delta_us;
      delay_votes.AddRange(
          static_cast<std::int64_t>(min_delay / params.bucket_us),
          static_cast<std::int64_t>(max_delay / params.bucket_us), 1);
      any = true;
      if (cost != nullptr) {
        ++cost->pairs;
        ++cost->range_ops;
      }
    }
  }
  if (!any) return 0;
  // Peak peeling (§VI, multiple attack paths): take the best-supported delay
  // hypothesis, suppress its ±Δ neighbourhood, and repeat up to max_paths
  // times. With max_paths == 1 this is exactly Algorithm 1.
  constexpr typename Tree::Value kSuppress = std::int64_t{1} << 40;
  const std::int64_t peak_halo =
      static_cast<std::int64_t>(params.delta_us / params.bucket_us) + 1;
  std::int64_t total = 0;
  const int paths = std::max(1, params.max_paths);
  for (int path = 0; path < paths; ++path) {
    const auto peak = delay_votes.GlobalMax();
    if (peak <= 0) break;
    total += peak;
    if (path + 1 < paths) {
      const auto arg = static_cast<std::int64_t>(delay_votes.ArgGlobalMax());
      delay_votes.AddRange(arg - peak_halo, arg + peak_halo, -kSuppress);
    }
  }
  return total;
}

}  // namespace

MaxSegmentTree& ScoringWorkspace::AcquireTree(std::size_t buckets) {
  if (tree_ == nullptr || tree_->size() != buckets) {
    tree_ = std::make_unique<MaxSegmentTree>(buckets);
  } else {
    tree_->Reset();
  }
  return *tree_;
}

std::int64_t JgreScoreForApp(const std::vector<IpcEvent>& app_calls,
                             const std::vector<TimeUs>& jgr_add_times,
                             const ScoringParams& params, ScoringCost* cost,
                             ScoringWorkspace* workspace) {
  assert(std::is_sorted(jgr_add_times.begin(), jgr_add_times.end()));
  if (cost != nullptr) {
    cost->ipc_events += static_cast<std::int64_t>(app_calls.size());
    cost->jgr_events += static_cast<std::int64_t>(jgr_add_times.size());
  }
  ScoringWorkspace local_workspace;
  ScoringWorkspace& ws =
      workspace != nullptr ? *workspace : local_workspace;
  // IPCCallOfType: group this app's calls by interface type. Sorting one
  // reused buffer by (type, time) replaces the seed's per-call
  // map<string, vector> insertion; each run of equal types is one type's
  // call list, already time-sorted.
  std::vector<IpcEvent>& events = ws.grouping_buffer();
  events.assign(app_calls.begin(), app_calls.end());
  std::sort(events.begin(), events.end(),
            [](const IpcEvent& a, const IpcEvent& b) {
              return a.type != b.type ? a.type < b.type : a.t < b.t;
            });
  const std::size_t buckets = BucketCount(params);
  std::int64_t score = 0;
  std::size_t run_start = 0;
  while (run_start < events.size()) {
    std::size_t run_end = run_start + 1;
    while (run_end < events.size() &&
           events[run_end].type == events[run_start].type) {
      ++run_end;
    }
    std::vector<TimeUs>& times = ws.times_buffer();
    times.clear();
    times.reserve(run_end - run_start);
    for (std::size_t i = run_start; i < run_end; ++i) {
      times.push_back(events[i].t);
    }
    if (params.use_segment_tree) {
      score += ScoreType(ws.AcquireTree(buckets), times, jgr_add_times, params,
                         cost);
    } else {
      NaiveRangeMax naive(buckets);
      score += ScoreType(naive, times, jgr_add_times, params, cost);
    }
    run_start = run_end;
  }
  return score;
}

}  // namespace jgre::defense
