#include "defense/scoring.h"

#include <algorithm>
#include <cassert>

namespace jgre::defense {

namespace {

// Exact unsigned division by a loop-invariant divisor via one 128-bit
// multiply (Granlund–Montgomery): with M = floor(2^64/d) + 1,
// hi64(x * M) == x / d for every x below 2^64 / (M*d - 2^64), which is at
// least 2^64/d — far above the microsecond delays this file divides
// (<= max_delay + delta). The per-pair bucket mapping runs two of these, so
// replacing ~25-cycle div instructions with multiplies is most of the
// batched engine's per-pair win.
class FastDiv {
 public:
  explicit FastDiv(std::uint64_t d)
      : d_(d),
        // d == 1 would overflow the magic (and huge d weakens the exactness
        // bound); both fall back to the hardware divide.
        m_(d > 1 && d < (std::uint64_t{1} << 31) ? ~std::uint64_t{0} / d + 1
                                                 : 0) {}
  std::uint64_t Div(std::uint64_t x) const {
    if (m_ == 0) return x / d_;
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * m_) >> 64);
  }

 private:
  std::uint64_t d_;
  std::uint64_t m_;
};

// Number of delay buckets the vote axis needs for the given parameters.
std::size_t BucketCount(const ScoringParams& params) {
  return static_cast<std::size_t>((params.max_delay_us + params.delta_us) /
                                  params.bucket_us) +
         2;
}

// Scores a single IPC type: interval votes over delay buckets, then the max.
// `delay_votes` must arrive zeroed; call_times must be sorted ascending.
template <typename Tree>
std::int64_t ScoreType(Tree& delay_votes, const std::vector<TimeUs>& call_times,
                       const std::vector<TimeUs>& jgr_add_times,
                       const ScoringParams& params, ScoringCost* cost) {
  bool any = false;
  for (TimeUs ipc_time : call_times) {
    // JGR adds that could have been caused by this call: those within
    // [ipc_time, ipc_time + max_delay].
    auto lo = std::lower_bound(jgr_add_times.begin(), jgr_add_times.end(),
                               ipc_time);
    auto hi = std::upper_bound(lo, jgr_add_times.end(),
                               ipc_time + params.max_delay_us);
    for (auto it = lo; it != hi; ++it) {
      const DurationUs min_delay = *it - ipc_time;
      const DurationUs max_delay = min_delay + params.delta_us;
      delay_votes.AddRange(
          static_cast<std::int64_t>(min_delay / params.bucket_us),
          static_cast<std::int64_t>(max_delay / params.bucket_us), 1);
      any = true;
      if (cost != nullptr) {
        ++cost->pairs;
        ++cost->range_ops;
      }
    }
  }
  if (!any) return 0;
  // Peak peeling (§VI, multiple attack paths): take the best-supported delay
  // hypothesis, suppress its ±Δ neighbourhood, and repeat up to max_paths
  // times. With max_paths == 1 this is exactly Algorithm 1.
  constexpr typename Tree::Value kSuppress = std::int64_t{1} << 40;
  const std::int64_t peak_halo =
      static_cast<std::int64_t>(params.delta_us / params.bucket_us) + 1;
  std::int64_t total = 0;
  const int paths = std::max(1, params.max_paths);
  for (int path = 0; path < paths; ++path) {
    const auto peak = delay_votes.GlobalMax();
    if (peak <= 0) break;
    total += peak;
    if (path + 1 < paths) {
      const auto arg = static_cast<std::int64_t>(delay_votes.ArgGlobalMax());
      delay_votes.AddRange(arg - peak_halo, arg + peak_halo, -kSuppress);
    }
  }
  return total;
}

// The batched engine. Semantically identical to ScoreType on a segment
// tree, but restructured for flat column passes:
//
//   1. Pairing: call_times and jgr_add_times are both sorted, so the
//      causal window [ipc_time, ipc_time + max_delay] is tracked with two
//      monotone cursors — O(calls + adds + pairs) total instead of a binary
//      search per call.
//   2. Voting: each pair votes +1 on its delay-bucket interval via a
//      difference array (two additions), replacing an O(log buckets) lazy
//      tree update.
//   3. Peak: one prefix scan materializes the per-bucket vote counts; a
//      linear max with strict `>` keeps the *first* maximal bucket, which
//      is exactly MaxSegmentTree::ArgGlobalMax's left-biased descent.
//   4. Peeling (max_paths > 1): suppression subtracts the same kSuppress
//      constant over the same clamped halo the tree version applies, then
//      rescans — identical path sums, identical work counters.
std::int64_t ScoreTypeBatched(std::vector<std::int64_t>& votes,
                              std::size_t buckets,
                              const std::vector<TimeUs>& call_times,
                              const std::vector<TimeUs>& jgr_add_times,
                              const ScoringParams& params, ScoringCost* cost) {
  votes.assign(buckets + 1, 0);
  const std::size_t adds = jgr_add_times.size();
  const FastDiv bucket_div(static_cast<std::uint64_t>(params.bucket_us));
  const std::uint64_t delta = static_cast<std::uint64_t>(params.delta_us);
  std::int64_t pairs = 0;
  std::size_t lo = 0;
  std::size_t hi = 0;
  for (TimeUs ipc_time : call_times) {
    while (lo < adds && jgr_add_times[lo] < ipc_time) ++lo;
    if (hi < lo) hi = lo;
    const TimeUs limit = ipc_time + params.max_delay_us;
    while (hi < adds && jgr_add_times[hi] <= limit) ++hi;
    for (std::size_t i = lo; i < hi; ++i) {
      const std::uint64_t min_delay =
          static_cast<std::uint64_t>(jgr_add_times[i] - ipc_time);
      const std::size_t b_lo =
          static_cast<std::size_t>(bucket_div.Div(min_delay));
      const std::size_t b_hi =
          static_cast<std::size_t>(bucket_div.Div(min_delay + delta));
      ++votes[b_lo];
      --votes[b_hi + 1];
    }
    pairs += static_cast<std::int64_t>(hi - lo);
  }
  if (pairs == 0) return 0;
  if (cost != nullptr) {
    cost->pairs += pairs;
    cost->range_ops += pairs;
  }
  std::int64_t running = 0;
  for (std::size_t b = 0; b < buckets; ++b) {
    running += votes[b];
    votes[b] = running;
  }
  constexpr std::int64_t kSuppress = std::int64_t{1} << 40;
  const std::int64_t peak_halo =
      static_cast<std::int64_t>(params.delta_us / params.bucket_us) + 1;
  std::int64_t total = 0;
  const int paths = std::max(1, params.max_paths);
  for (int path = 0; path < paths; ++path) {
    std::int64_t peak = votes[0];
    std::size_t arg = 0;
    for (std::size_t b = 1; b < buckets; ++b) {
      if (votes[b] > peak) {
        peak = votes[b];
        arg = b;
      }
    }
    if (peak <= 0) break;
    total += peak;
    if (path + 1 < paths) {
      std::int64_t s = static_cast<std::int64_t>(arg) - peak_halo;
      std::int64_t e = static_cast<std::int64_t>(arg) + peak_halo;
      if (s < 0) s = 0;
      if (e > static_cast<std::int64_t>(buckets) - 1) {
        e = static_cast<std::int64_t>(buckets) - 1;
      }
      for (std::int64_t b = s; b <= e; ++b) votes[b] -= kSuppress;
    }
  }
  return total;
}

}  // namespace

MaxSegmentTree& ScoringWorkspace::AcquireTree(std::size_t buckets) {
  if (tree_ == nullptr || tree_->size() != buckets) {
    tree_ = std::make_unique<MaxSegmentTree>(buckets);
  } else {
    tree_->Reset();
  }
  return *tree_;
}

std::int64_t JgreScoreForApp(const std::vector<IpcEvent>& app_calls,
                             const std::vector<TimeUs>& jgr_add_times,
                             const ScoringParams& params, ScoringCost* cost,
                             ScoringWorkspace* workspace) {
  assert(std::is_sorted(jgr_add_times.begin(), jgr_add_times.end()));
  if (cost != nullptr) {
    cost->ipc_events += static_cast<std::int64_t>(app_calls.size());
    cost->jgr_events += static_cast<std::int64_t>(jgr_add_times.size());
  }
  ScoringWorkspace local_workspace;
  ScoringWorkspace& ws =
      workspace != nullptr ? *workspace : local_workspace;
  // IPCCallOfType: group this app's calls by interface type. Sorting one
  // reused buffer by (type, time) replaces the seed's per-call
  // map<string, vector> insertion; each run of equal types is one type's
  // call list, already time-sorted.
  std::vector<IpcEvent>& events = ws.grouping_buffer();
  events.assign(app_calls.begin(), app_calls.end());
  const auto by_type_then_time = [](const IpcEvent& a, const IpcEvent& b) {
    return a.type != b.type ? a.type < b.type : a.t < b.t;
  };
  // Single-type recordings arrive already time-ordered (the tap preserves
  // emission order), so the common case is one linear is_sorted pass.
  if (!std::is_sorted(events.begin(), events.end(), by_type_then_time)) {
    std::sort(events.begin(), events.end(), by_type_then_time);
  }
  const std::size_t buckets = BucketCount(params);
  std::int64_t score = 0;
  std::size_t run_start = 0;
  while (run_start < events.size()) {
    std::size_t run_end = run_start + 1;
    while (run_end < events.size() &&
           events[run_end].type == events[run_start].type) {
      ++run_end;
    }
    std::vector<TimeUs>& times = ws.times_buffer();
    times.clear();
    times.reserve(run_end - run_start);
    for (std::size_t i = run_start; i < run_end; ++i) {
      times.push_back(events[i].t);
    }
    switch (params.engine) {
      case ScoreEngine::kBatched:
        score += ScoreTypeBatched(ws.votes_buffer(), buckets, times,
                                  jgr_add_times, params, cost);
        break;
      case ScoreEngine::kSegmentTree:
        score += ScoreType(ws.AcquireTree(buckets), times, jgr_add_times,
                           params, cost);
        break;
      case ScoreEngine::kNaive: {
        NaiveRangeMax naive(buckets);
        score += ScoreType(naive, times, jgr_add_times, params, cost);
        break;
      }
    }
    run_start = run_end;
  }
  return score;
}

}  // namespace jgre::defense
