#include "defense/scoring.h"

#include <algorithm>
#include <cassert>

#include "common/segment_tree.h"

namespace jgre::defense {

namespace {

// Scores a single IPC type: interval votes over delay buckets, then the max.
template <typename Tree>
std::int64_t ScoreType(const std::vector<TimeUs>& call_times,
                       const std::vector<TimeUs>& jgr_add_times,
                       const ScoringParams& params, ScoringCost* cost) {
  const std::size_t buckets =
      static_cast<std::size_t>((params.max_delay_us + params.delta_us) /
                               params.bucket_us) +
      2;
  Tree delay_votes(buckets);
  bool any = false;
  for (TimeUs ipc_time : call_times) {
    // JGR adds that could have been caused by this call: those within
    // [ipc_time, ipc_time + max_delay].
    auto lo = std::lower_bound(jgr_add_times.begin(), jgr_add_times.end(),
                               ipc_time);
    auto hi = std::upper_bound(lo, jgr_add_times.end(),
                               ipc_time + params.max_delay_us);
    for (auto it = lo; it != hi; ++it) {
      const DurationUs min_delay = *it - ipc_time;
      const DurationUs max_delay = min_delay + params.delta_us;
      delay_votes.AddRange(
          static_cast<std::int64_t>(min_delay / params.bucket_us),
          static_cast<std::int64_t>(max_delay / params.bucket_us), 1);
      any = true;
      if (cost != nullptr) {
        ++cost->pairs;
        ++cost->range_ops;
      }
    }
  }
  if (!any) return 0;
  // Peak peeling (§VI, multiple attack paths): take the best-supported delay
  // hypothesis, suppress its ±Δ neighbourhood, and repeat up to max_paths
  // times. With max_paths == 1 this is exactly Algorithm 1.
  constexpr typename Tree::Value kSuppress = std::int64_t{1} << 40;
  const std::int64_t peak_halo =
      static_cast<std::int64_t>(params.delta_us / params.bucket_us) + 1;
  std::int64_t total = 0;
  const int paths = std::max(1, params.max_paths);
  for (int path = 0; path < paths; ++path) {
    const auto peak = delay_votes.GlobalMax();
    if (peak <= 0) break;
    total += peak;
    if (path + 1 < paths) {
      const auto arg = static_cast<std::int64_t>(delay_votes.ArgGlobalMax());
      delay_votes.AddRange(arg - peak_halo, arg + peak_halo, -kSuppress);
    }
  }
  return total;
}

}  // namespace

std::int64_t JgreScoreForApp(const std::vector<IpcEvent>& app_calls,
                             const std::vector<TimeUs>& jgr_add_times,
                             const ScoringParams& params, ScoringCost* cost) {
  assert(std::is_sorted(jgr_add_times.begin(), jgr_add_times.end()));
  if (cost != nullptr) {
    cost->ipc_events += static_cast<std::int64_t>(app_calls.size());
    cost->jgr_events += static_cast<std::int64_t>(jgr_add_times.size());
  }
  // IPCCallOfType: split this app's calls by interface type.
  std::map<std::string, std::vector<TimeUs>> calls_by_type;
  for (const IpcEvent& event : app_calls) {
    calls_by_type[event.type].push_back(event.t);
  }
  std::int64_t score = 0;
  for (auto& [type, times] : calls_by_type) {
    std::sort(times.begin(), times.end());
    score += params.use_segment_tree
                 ? ScoreType<MaxSegmentTree>(times, jgr_add_times, params, cost)
                 : ScoreType<NaiveRangeMax>(times, jgr_add_times, params, cost);
  }
  return score;
}

}  // namespace jgre::defense
