#include "defense/monitor_hub.h"

namespace jgre::defense {

JgrMonitorHub::JgrMonitorHub(obs::EventBus* bus) : bus_(bus) {
  bus_->Subscribe(this, obs::MaskOf(obs::Category::kJgr));
}

JgrMonitorHub::~JgrMonitorHub() { bus_->Unsubscribe(this); }

void JgrMonitorHub::Attach(Pid pid, JgrMonitor* monitor) {
  if (pid.value() < 1) return;
  const std::size_t slot = static_cast<std::size_t>(pid.value() - 1);
  if (slot >= routes_.size()) routes_.resize(slot + 1, nullptr);
  routes_[slot] = monitor;
}

void JgrMonitorHub::Detach(const JgrMonitor* monitor) {
  for (JgrMonitor*& route : routes_) {
    if (route == monitor) route = nullptr;
  }
}

}  // namespace jgre::defense
