// JgrMonitor — the defense's extended Android Runtime (paper §V.B phase 1).
//
// Subscribed (via the JgrMonitorHub) for a victim runtime's kJgr events
// (system_server or a prebuilt app). Below the alarm threshold it is
// completely passive (zero overhead). Past the alarm threshold (4,000) it
// timestamps every JGR add/remove, charging ~1 µs per recorded operation —
// the overhead §V.D.2 measures. When the number of *new* entries recorded
// since the alarm exceeds the report threshold (12,000) it flags the victim
// as under attack; the JgreDefender picks the flag up between transactions.
//
// The recorded tape is stored as struct-of-arrays columns (timestamp,
// add/remove flag, count-after) so the steady-state record path is three
// flat column pushes, and AddTimes — the scorer's input — is a filtered copy
// of the timestamp column (already monotone: it records a strictly
// advancing clock).
#ifndef JGRE_DEFENSE_JGR_MONITOR_H_
#define JGRE_DEFENSE_JGR_MONITOR_H_

#include <functional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/types.h"
#include "obs/event.h"
#include "obs/event_bus.h"
#include "snapshot/serializer.h"

namespace jgre::defense {

// The monitor consumes the victim's JGR activity as a bus EventSink,
// subscribed with a pid filter on the kJgr category (or routed to by a
// JgrMonitorHub, which replaces N filtered subscriptions with one dense
// pid-indexed dispatch).
class JgrMonitor final : public obs::EventSink {
 public:
  struct Config {
    std::size_t alarm_threshold = 4000;
    std::size_t report_threshold = 12000;  // new entries since the alarm
    DurationUs record_cost_us = 1;         // §V.D.2: ~1 µs per recorded op
  };

  // Materialized view of one recorded tape entry (storage is columnar).
  struct JgrEvent {
    TimeUs t = 0;
    bool is_add = false;
    std::size_t count_after = 0;
  };

  JgrMonitor(SimClock* clock, std::string victim_name, Config config);

  // obs::EventSink — the bus delivers the victim's kJgr events here and
  // dispatches to the add/remove recording paths below.
  void OnEvent(const obs::TraceEvent& event) override;

  void OnJgrAdd(TimeUs now_us, std::size_t count_after, ObjectId obj);
  void OnJgrRemove(TimeUs now_us, std::size_t count_after, ObjectId obj);

  // Where the monitor publishes its own kDefense events (alarm/report).
  // Optional: an unset source keeps the monitor silent on the bus.
  void set_source(obs::Source source) { source_ = source; }

  bool recording() const { return recording_; }
  bool reported() const { return reported_; }
  TimeUs alarm_at() const { return alarm_at_; }
  TimeUs reported_at() const { return reported_at_; }
  std::size_t event_count() const { return tape_t_.size(); }
  // Materializes the recorded tape (tests/reporting; the scorer path uses
  // AddTimes, which reads the columns directly).
  std::vector<JgrEvent> events() const;
  const std::string& victim_name() const { return victim_name_; }

  // Sorted timestamps of recorded JGR creations (Algorithm 1's JGRAdds).
  std::vector<TimeUs> AddTimes() const;

  // Clears state after recovery so the monitor can re-arm.
  void Reset();

  // Checkpointing: the recording phase (armed/reported flags, timestamps)
  // and the captured event tape. Config, victim name, and the bus source
  // are wiring and belong to whoever reconstructs the monitor.
  void SaveState(snapshot::Serializer& out) const {
    out.Bool(recording_);
    out.Bool(reported_);
    out.U64(alarm_at_);
    out.U64(reported_at_);
    out.U64(adds_since_alarm_);
    out.U64(tape_t_.size());
    for (std::size_t i = 0; i < tape_t_.size(); ++i) {
      out.U64(tape_t_[i]);
      out.Bool(tape_is_add_[i] != 0);
      out.U64(tape_count_after_[i]);
    }
  }
  void RestoreState(snapshot::Deserializer& in) {
    recording_ = in.Bool();
    reported_ = in.Bool();
    alarm_at_ = in.U64();
    reported_at_ = in.U64();
    adds_since_alarm_ = in.U64();
    tape_t_.clear();
    tape_is_add_.clear();
    tape_count_after_.clear();
    for (std::uint64_t i = 0, n = in.U64(); i < n && in.ok(); ++i) {
      tape_t_.push_back(in.U64());
      tape_is_add_.push_back(in.Bool() ? 1 : 0);
      tape_count_after_.push_back(in.U64());
    }
  }

 private:
  SimClock* clock_;
  std::string victim_name_;
  Config config_;
  obs::Source source_;

  bool recording_ = false;
  bool reported_ = false;
  TimeUs alarm_at_ = 0;
  TimeUs reported_at_ = 0;
  std::size_t adds_since_alarm_ = 0;
  // The recorded tape, struct-of-arrays.
  std::vector<TimeUs> tape_t_;
  std::vector<std::uint8_t> tape_is_add_;
  std::vector<std::uint64_t> tape_count_after_;
};

}  // namespace jgre::defense

#endif  // JGRE_DEFENSE_JGR_MONITOR_H_
