// JgrMonitor — the defense's extended Android Runtime (paper §V.B phase 1).
//
// Attached as a JgrObserver to a victim runtime (system_server or a prebuilt
// app). Below the alarm threshold it is completely passive (zero overhead).
// Past the alarm threshold (4,000) it timestamps every JGR add/remove,
// charging ~1 µs per recorded operation — the overhead §V.D.2 measures. When
// the number of *new* entries recorded since the alarm exceeds the report
// threshold (12,000) it flags the victim as under attack; the JgreDefender
// picks the flag up between transactions.
#ifndef JGRE_DEFENSE_JGR_MONITOR_H_
#define JGRE_DEFENSE_JGR_MONITOR_H_

#include <functional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/types.h"
#include "obs/event.h"
#include "obs/event_bus.h"
#include "runtime/java_vm_ext.h"

namespace jgre::defense {

// The monitor consumes the victim's JGR activity either as a bus EventSink
// (subscribed with a pid filter on the kJgr category — the unified path) or
// via the deprecated rt::JgrObserver attachment; both feed the same
// recording logic with identical timestamps and virtual-time costs.
class JgrMonitor : public obs::EventSink, public rt::JgrObserver {
 public:
  struct Config {
    std::size_t alarm_threshold = 4000;
    std::size_t report_threshold = 12000;  // new entries since the alarm
    DurationUs record_cost_us = 1;         // §V.D.2: ~1 µs per recorded op
  };

  struct JgrEvent {
    TimeUs t = 0;
    bool is_add = false;
    std::size_t count_after = 0;
  };

  JgrMonitor(SimClock* clock, std::string victim_name, Config config);

  // obs::EventSink — the bus delivers the victim's kJgr events here.
  void OnEvent(const obs::TraceEvent& event) override;

  // rt::JgrObserver (DEPRECATED direct-attachment path; kept one PR):
  void OnJgrAdd(TimeUs now_us, std::size_t count_after, ObjectId obj) override;
  void OnJgrRemove(TimeUs now_us, std::size_t count_after,
                   ObjectId obj) override;

  // Where the monitor publishes its own kDefense events (alarm/report).
  // Optional: an unset source keeps the monitor silent on the bus.
  void set_source(obs::Source source) { source_ = source; }

  bool recording() const { return recording_; }
  bool reported() const { return reported_; }
  TimeUs alarm_at() const { return alarm_at_; }
  TimeUs reported_at() const { return reported_at_; }
  const std::vector<JgrEvent>& events() const { return events_; }
  const std::string& victim_name() const { return victim_name_; }

  // Sorted timestamps of recorded JGR creations (Algorithm 1's JGRAdds).
  std::vector<TimeUs> AddTimes() const;

  // Clears state after recovery so the monitor can re-arm.
  void Reset();

 private:
  SimClock* clock_;
  std::string victim_name_;
  Config config_;
  obs::Source source_;

  bool recording_ = false;
  bool reported_ = false;
  TimeUs alarm_at_ = 0;
  TimeUs reported_at_ = 0;
  std::size_t adds_since_alarm_ = 0;
  std::vector<JgrEvent> events_;
};

}  // namespace jgre::defense

#endif  // JGRE_DEFENSE_JGR_MONITOR_H_
