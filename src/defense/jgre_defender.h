// JgreDefender — the paper's three-phase JGRE countermeasure (§V).
//
// Phase 1 (capture): JgrMonitors attached to the runtimes worth protecting
// (system_server and binder-exposing prebuilt apps) record JGR add/remove
// timestamps once the count passes the alarm threshold and raise a flag at
// the report threshold.
//
// Phase 2 (rank): the defender — a standalone system-uid service, so it
// survives a system_server abort — reads the kernel's IPC log from
// /proc/jgre_ipc_log (unforgeable by apps), correlates each app's calls with
// the victim's JGR creations via Algorithm 1, and ranks apps by jgre_score.
//
// Phase 3 (recover): like the low memory killer, it kills top-ranked apps
// ("am force-stop", issued through the activity service) until the victim's
// JGR count returns to a normal value — killing a process releases all JGRs
// it pinned, via death notification + GC.
#ifndef JGRE_DEFENSE_JGRE_DEFENDER_H_
#define JGRE_DEFENSE_JGRE_DEFENDER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/ring_buffer.h"
#include "core/android_system.h"
#include "defense/jgr_monitor.h"
#include "defense/monitor_hub.h"
#include "defense/scoring.h"
#include "obs/event.h"
#include "snapshot/serializer.h"

namespace jgre::defense {

class JgreDefender {
 public:
  struct Config {
    JgrMonitor::Config monitor;
    ScoringParams scoring;
    // Recovery stops once the victim's JGR count is back under this
    // (Observation 1: benign steady state is 1,000–3,000).
    std::size_t recovery_target = 3500;
    // Apps with a score below this are never killed (benign noise floor).
    std::int64_t min_kill_score = 64;
    int max_kills_per_incident = 8;
    // Analysis cost model (virtual time): reading and parsing the procfs
    // log, transferring the runtime's JGR records, and the per-pair
    // segment-tree work of Algorithm 1.
    DurationUs ipc_record_parse_us = 2;
    DurationUs jgr_event_transfer_ns = 500;
    DurationUs pair_cost_ns = 400;
    // Capacity of the defender's bus-fed IPC tap. Defaults to the binder
    // driver's ipc_log_capacity so the tap retains exactly the window the
    // kernel-side log retains.
    std::size_t ipc_event_capacity = 1 << 21;
  };

  struct ScoreEntry {
    Uid uid;
    std::string package;
    std::int64_t score = 0;
    std::int64_t ipc_calls = 0;
  };

  struct IncidentReport {
    std::string victim;
    TimeUs alarm_at = 0;       // JGR recording started (alarm threshold)
    TimeUs reported_at = 0;    // defender notified (report threshold)
    TimeUs identified_at = 0;  // ranking complete
    TimeUs recovered_at = 0;   // victim back under recovery_target
    std::size_t jgr_at_report = 0;
    std::size_t jgr_after_recovery = 0;
    std::vector<ScoreEntry> ranking;           // descending by score
    std::vector<std::string> killed_packages;
    ScoringCost cost;
    bool recovered = false;

    DurationUs response_delay_us() const { return identified_at - reported_at; }
    DurationUs total_delay_us() const { return recovered_at - alarm_at; }
  };

  JgreDefender(core::AndroidSystem* system, Config config);
  JgreDefender(core::AndroidSystem* system);
  ~JgreDefender();

  // Turns the defense on: extended binder driver logging, procfs export,
  // monitors on the protected runtimes, pump hook, post-reboot re-attach.
  void Install();

  // Ranks apps against the given victim monitor state without killing
  // anything (used by benches that only need Fig 8/9 scores). `params`
  // overrides the configured scoring parameters. Requires Install(): the
  // ranking reads the defender's bus-fed IPC tap.
  std::vector<ScoreEntry> RankApps(const JgrMonitor& monitor,
                                   Pid victim_pid,
                                   const ScoringParams& params,
                                   ScoringCost* cost = nullptr);

  const std::vector<IncidentReport>& incidents() const { return incidents_; }
  const Config& config() const { return config_; }
  JgrMonitor* MonitorFor(const std::string& victim_name);
  bool installed() const { return installed_; }

  // The defender's bus subscription: buffers every kIpc event since install
  // (or the last handled incident) so ranking never re-reads the kernel log.
  class IpcTap : public obs::EventSink {
   public:
    explicit IpcTap(std::size_t capacity) : ring_(capacity) {}
    void OnEvent(const obs::TraceEvent& event) override { ring_.Push(event); }
    void OnBatch(const obs::TraceEvent* events, std::size_t count) override {
      ring_.PushBulk(events, count);
    }
    const RingBuffer<obs::TraceEvent>& ring() const { return ring_; }
    void Clear() { ring_.Clear(); }

    void SaveState(snapshot::Serializer& out) const {
      ring_.SaveState(out, [](snapshot::Serializer& s,
                              const obs::TraceEvent& e) {
        s.U64(e.ts_us);
        s.U64(e.dur_us);
        s.I64(e.arg0);
        s.I64(e.arg1);
        s.I64(e.pid);
        s.I64(e.uid);
        s.U32(e.name);
        s.U8(static_cast<std::uint8_t>(e.category));
      });
    }
    void RestoreState(snapshot::Deserializer& in) {
      ring_.RestoreState(in, [](snapshot::Deserializer& d) {
        obs::TraceEvent e;
        e.ts_us = d.U64();
        e.dur_us = d.U64();
        e.arg0 = d.I64();
        e.arg1 = d.I64();
        e.pid = static_cast<std::int32_t>(d.I64());
        e.uid = static_cast<std::int32_t>(d.I64());
        e.name = d.U32();
        e.category = static_cast<obs::Category>(d.U8());
        return e;
      });
    }

   private:
    RingBuffer<obs::TraceEvent> ring_;
  };

  const IpcTap* ipc_tap() const { return tap_.get(); }

  // Checkpointing: monitor tapes (keyed by victim name) and the IPC tap.
  // Requires Install() on both sides — monitors and tap are created there,
  // and restore patches their recorded state in place. Incident history is
  // harness-side reporting output and is intentionally not captured.
  void SaveState(snapshot::Serializer& out) const;
  void RestoreState(snapshot::Deserializer& in);

 private:
  void AttachMonitors();
  void DetachMonitor(const std::string& name);
  void Check();
  void RunIncident(const std::string& victim_name, JgrMonitor* monitor);
  std::size_t VictimJgrCount(const std::string& victim_name) const;
  Pid VictimPid(const std::string& victim_name) const;
  Status ForceStop(const std::string& package);

  core::AndroidSystem* system_;
  Config config_;
  bool installed_ = false;
  Pid defender_pid_;
  // victim name ("system_server", "com.android.bluetooth", ...) -> monitor.
  std::map<std::string, std::unique_ptr<JgrMonitor>> monitors_;
  // One kJgr subscription routing to the monitors by pid (see monitor_hub.h).
  std::unique_ptr<JgrMonitorHub> hub_;
  std::unique_ptr<IpcTap> tap_;
  std::vector<IncidentReport> incidents_;
  // Reusable scoring buffers (segment tree, grouping scratch) shared across
  // apps and incidents.
  ScoringWorkspace workspace_;
};

}  // namespace jgre::defense

#endif  // JGRE_DEFENSE_JGRE_DEFENDER_H_
