#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace jgre {

void Summary::Add(double sample) {
  samples_.push_back(sample);
  sorted_valid_ = false;
}

double Summary::mean() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0;
  const double m = mean();
  double acc = 0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

void Summary::EnsureSorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Summary::min() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  return sorted_.front();
}

double Summary::max() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  return sorted_.back();
}

double Summary::Percentile(double p) const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  if (p <= 0) return sorted_.front();
  if (p >= 100) return sorted_.back();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1 - frac) + sorted_[lo + 1] * frac;
}

std::vector<std::pair<double, double>> Summary::Cdf(std::size_t points) const {
  std::vector<std::pair<double, double>> cdf;
  if (samples_.empty() || points == 0) return cdf;
  EnsureSorted();
  cdf.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double prob =
        static_cast<double>(i + 1) / static_cast<double>(points);
    const std::size_t idx = std::min(
        sorted_.size() - 1,
        static_cast<std::size_t>(prob * static_cast<double>(sorted_.size())));
    cdf.emplace_back(sorted_[idx], prob);
  }
  return cdf;
}

TimeSeries TimeSeries::Downsample(std::size_t max_points) const {
  if (points_.size() <= max_points || max_points < 2) return *this;
  TimeSeries out(name_);
  const double stride = static_cast<double>(points_.size() - 1) /
                        static_cast<double>(max_points - 1);
  for (std::size_t i = 0; i < max_points; ++i) {
    const auto& p = points_[static_cast<std::size_t>(
        std::min<double>(std::round(static_cast<double>(i) * stride),
                         static_cast<double>(points_.size() - 1)))];
    out.Add(p.first, p.second);
  }
  return out;
}

std::string TimeSeries::ToCsv() const {
  std::ostringstream os;
  os << "time_us," << name_ << "\n";
  for (const auto& [t, v] : points_) os << t << "," << v << "\n";
  return os.str();
}

}  // namespace jgre
