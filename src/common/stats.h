// Small statistics helpers used by the benchmark harnesses.
//
// The paper's figures are either time series (Fig 3, Fig 4, Fig 5), CDFs
// (Fig 6), or bar groups (Fig 8, Fig 9). These helpers accumulate samples and
// render them as CSV so a bench binary can print exactly the series a figure
// plots.
#ifndef JGRE_COMMON_STATS_H_
#define JGRE_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace jgre {

// Accumulates scalar samples; summary statistics on demand.
class Summary {
 public:
  void Add(double sample);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  // Linear-interpolated percentile, p in [0, 100].
  double Percentile(double p) const;

  const std::vector<double>& samples() const { return samples_; }

  // CDF as (value, cumulative_probability) pairs over `points` quantiles.
  std::vector<std::pair<double, double>> Cdf(std::size_t points = 100) const;

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// (time, value) series with CSV rendering.
class TimeSeries {
 public:
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void Add(TimeUs t, double value) { points_.emplace_back(t, value); }

  const std::string& name() const { return name_; }
  const std::vector<std::pair<TimeUs, double>>& points() const {
    return points_;
  }
  bool empty() const { return points_.empty(); }

  // Downsamples to at most `max_points` evenly spaced points (keeps ends).
  TimeSeries Downsample(std::size_t max_points) const;

  // CSV with the header `time_us,<name>`.
  std::string ToCsv() const;

 private:
  std::string name_;
  std::vector<std::pair<TimeUs, double>> points_;
};

}  // namespace jgre

#endif  // JGRE_COMMON_STATS_H_
