// Lazy segment tree with range-add updates and range-max queries.
//
// This is the data structure §V.D.2 of the paper uses to implement
// Algorithm 1 efficiently: for every (IPC call, JGR creation) pair the
// algorithm adds 1 over the delay interval [MinDelay, MaxDelay] and finally
// asks for the maximum bucket — the count of the most self-consistent delay
// hypothesis. Range add + global max is exactly this tree's bread and butter:
// O(log n) per interval instead of O(interval length).
#ifndef JGRE_COMMON_SEGMENT_TREE_H_
#define JGRE_COMMON_SEGMENT_TREE_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace jgre {

class MaxSegmentTree {
 public:
  using Value = std::int64_t;

  // Tree over indices [0, size). All buckets start at 0.
  explicit MaxSegmentTree(std::size_t size)
      : size_(size), max_(4 * std::max<std::size_t>(size, 1), 0),
        lazy_(4 * std::max<std::size_t>(size, 1), 0) {}

  std::size_t size() const { return size_; }

  // Adds `delta` to every bucket in [lo, hi] (inclusive, clamped to range).
  void AddRange(std::int64_t lo, std::int64_t hi, Value delta) {
    if (size_ == 0) return;
    lo = std::max<std::int64_t>(lo, 0);
    hi = std::min<std::int64_t>(hi, static_cast<std::int64_t>(size_) - 1);
    if (lo > hi) return;
    AddRangeImpl(1, 0, size_ - 1, static_cast<std::size_t>(lo),
                 static_cast<std::size_t>(hi), delta);
  }

  // Maximum over [lo, hi] inclusive (clamped); 0 if the range is empty.
  Value MaxRange(std::int64_t lo, std::int64_t hi) const {
    if (size_ == 0) return 0;
    lo = std::max<std::int64_t>(lo, 0);
    hi = std::min<std::int64_t>(hi, static_cast<std::int64_t>(size_) - 1);
    if (lo > hi) return 0;
    return MaxRangeImpl(1, 0, size_ - 1, static_cast<std::size_t>(lo),
                        static_cast<std::size_t>(hi), 0);
  }

  Value GlobalMax() const {
    return size_ == 0 ? 0 : max_[1] + lazy_[1];
  }

  // Smallest index whose value equals GlobalMax(). Useful to recover the
  // most likely Delay value itself, not just its support count.
  std::size_t ArgGlobalMax() const {
    assert(size_ > 0);
    return ArgMaxImpl(1, 0, size_ - 1, 0);
  }

  void Reset() {
    std::fill(max_.begin(), max_.end(), 0);
    std::fill(lazy_.begin(), lazy_.end(), 0);
  }

 private:
  void AddRangeImpl(std::size_t node, std::size_t node_lo, std::size_t node_hi,
                    std::size_t lo, std::size_t hi, Value delta) {
    if (lo <= node_lo && node_hi <= hi) {
      lazy_[node] += delta;
      return;
    }
    const std::size_t mid = node_lo + (node_hi - node_lo) / 2;
    if (lo <= mid) {
      AddRangeImpl(2 * node, node_lo, mid, lo, std::min(hi, mid), delta);
    }
    if (hi > mid) {
      AddRangeImpl(2 * node + 1, mid + 1, node_hi, std::max(lo, mid + 1), hi,
                   delta);
    }
    max_[node] =
        std::max(max_[2 * node] + lazy_[2 * node],
                 max_[2 * node + 1] + lazy_[2 * node + 1]);
  }

  Value MaxRangeImpl(std::size_t node, std::size_t node_lo,
                     std::size_t node_hi, std::size_t lo, std::size_t hi,
                     Value acc_lazy) const {
    acc_lazy += lazy_[node];
    if (lo <= node_lo && node_hi <= hi) return max_[node] + acc_lazy;
    const std::size_t mid = node_lo + (node_hi - node_lo) / 2;
    Value best = std::numeric_limits<Value>::min();
    if (lo <= mid) {
      best = std::max(best, MaxRangeImpl(2 * node, node_lo, mid, lo,
                                         std::min(hi, mid), acc_lazy));
    }
    if (hi > mid) {
      best = std::max(best, MaxRangeImpl(2 * node + 1, mid + 1, node_hi,
                                         std::max(lo, mid + 1), hi, acc_lazy));
    }
    return best;
  }

  std::size_t ArgMaxImpl(std::size_t node, std::size_t node_lo,
                         std::size_t node_hi, Value acc_lazy) const {
    acc_lazy += lazy_[node];
    if (node_lo == node_hi) return node_lo;
    const std::size_t mid = node_lo + (node_hi - node_lo) / 2;
    const Value left = max_[2 * node] + lazy_[2 * node] + acc_lazy;
    const Value right = max_[2 * node + 1] + lazy_[2 * node + 1] + acc_lazy;
    if (left >= right) return ArgMaxImpl(2 * node, node_lo, mid, acc_lazy);
    return ArgMaxImpl(2 * node + 1, mid + 1, node_hi, acc_lazy);
  }

  std::size_t size_;
  // max_[n] is the subtree max *excluding* pending lazy on ancestors and on
  // n itself; a node's effective max is max_[n] + sum of lazy_ on its path.
  std::vector<Value> max_;
  std::vector<Value> lazy_;
};

// O(n)-per-update reference implementation with identical semantics; used by
// property tests and by the ablation benchmark contrasting it with the tree.
class NaiveRangeMax {
 public:
  using Value = std::int64_t;

  explicit NaiveRangeMax(std::size_t size) : values_(size, 0) {}

  std::size_t size() const { return values_.size(); }

  void AddRange(std::int64_t lo, std::int64_t hi, Value delta) {
    lo = std::max<std::int64_t>(lo, 0);
    hi = std::min<std::int64_t>(hi, static_cast<std::int64_t>(values_.size()) - 1);
    for (std::int64_t i = lo; i <= hi; ++i) values_[static_cast<std::size_t>(i)] += delta;
  }

  Value MaxRange(std::int64_t lo, std::int64_t hi) const {
    lo = std::max<std::int64_t>(lo, 0);
    hi = std::min<std::int64_t>(hi, static_cast<std::int64_t>(values_.size()) - 1);
    Value best = 0;
    bool any = false;
    for (std::int64_t i = lo; i <= hi; ++i) {
      const Value v = values_[static_cast<std::size_t>(i)];
      best = any ? std::max(best, v) : v;
      any = true;
    }
    return any ? best : 0;
  }

  Value GlobalMax() const {
    return MaxRange(0, static_cast<std::int64_t>(values_.size()) - 1);
  }

  // Smallest index attaining GlobalMax (mirrors MaxSegmentTree).
  std::size_t ArgGlobalMax() const {
    std::size_t best = 0;
    for (std::size_t i = 1; i < values_.size(); ++i) {
      if (values_[i] > values_[best]) best = i;
    }
    return best;
  }

 private:
  std::vector<Value> values_;
};

}  // namespace jgre

#endif  // JGRE_COMMON_SEGMENT_TREE_H_
