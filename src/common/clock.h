// Deterministic virtual clock for the discrete-event simulation.
//
// All timing in the simulator (IPC latency, service execution cost, GC
// cadence, attack durations) is expressed in virtual microseconds. Nothing in
// the library reads wall-clock time; experiments are reproducible given a
// seed. Components advance the clock to model the cost of the work they
// perform, mirroring how the paper measures durations on a real device.
#ifndef JGRE_COMMON_CLOCK_H_
#define JGRE_COMMON_CLOCK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/types.h"
#include "snapshot/serializer.h"

namespace jgre {

class SimClock {
 public:
  SimClock() = default;

  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  TimeUs NowUs() const { return now_us_; }

  // Advances virtual time by `delta` microseconds and fires any timers that
  // come due, in deadline order. The timer-free advance stays inline: per-
  // event virtual-time charges (monitor recording, log costs) are hot.
  void AdvanceUs(DurationUs delta) {
    if (timers_.empty()) {
      now_us_ += delta;
      return;
    }
    AdvanceTo(now_us_ + delta);
  }

  // Jump directly to an absolute time (must not go backwards).
  void AdvanceTo(TimeUs when_us);

  // Registers a callback to run when virtual time reaches `deadline_us`.
  // Returns a timer id usable with `CancelTimer`.
  std::int64_t ScheduleAt(TimeUs deadline_us, std::function<void()> fn);

  void CancelTimer(std::int64_t timer_id);

  // Number of timers that have fired since construction (observability).
  std::int64_t timers_fired() const { return timers_fired_; }

  bool HasPendingTimers() const { return !timers_.empty(); }

  // Checkpointing. Pending timers hold arbitrary std::functions and cannot
  // be serialized; the snapshot layer requires a quiescent clock (no pending
  // timers) at the checkpoint boundary and the restore fails otherwise.
  void SaveState(snapshot::Serializer& out) const {
    out.I64(static_cast<std::int64_t>(now_us_));
    out.I64(next_timer_id_);
    out.I64(timers_fired_);
    out.U64(timers_.size());
  }
  void RestoreState(snapshot::Deserializer& in) {
    now_us_ = static_cast<TimeUs>(in.I64());
    next_timer_id_ = in.I64();
    timers_fired_ = in.I64();
    if (in.U64() != 0) in.Fail("checkpoint taken with pending timers");
    timers_.clear();
  }

 private:
  void FireDueTimers();

  TimeUs now_us_ = 0;
  std::int64_t next_timer_id_ = 1;
  std::int64_t timers_fired_ = 0;
  // deadline -> (timer id -> callback); std::map keeps deadline order and
  // insertion-ordered ids within a deadline give deterministic firing.
  std::map<TimeUs, std::map<std::int64_t, std::function<void()>>> timers_;
};

}  // namespace jgre

#endif  // JGRE_COMMON_CLOCK_H_
