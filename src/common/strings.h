// String helpers: concatenation, joining, printf-style formatting.
#ifndef JGRE_COMMON_STRINGS_H_
#define JGRE_COMMON_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace jgre {

// StrCat("pid=", 42) -> "pid=42"; any ostream-able types.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

std::vector<std::string> StrSplit(std::string_view text, char sep);

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

bool StrStartsWith(std::string_view text, std::string_view prefix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace jgre

#endif  // JGRE_COMMON_STRINGS_H_
