// StringInterner — string → dense id mapping for hot routing paths.
//
// The binder driver and service manager route by interface descriptor /
// service name. Interning each distinct string once turns per-transaction
// descriptor handling (IPC log records, scoring type keys) into integer
// copies and comparisons: an `IpcRecord` carries a 4-byte id instead of a
// heap-allocated string, and Algorithm 1 groups calls by a 64-bit
// (descriptor, code) key instead of a concatenated string.
//
// Ids are dense, start at 0, and are assigned in first-intern order, so a
// deterministic boot sequence yields deterministic ids.
#ifndef JGRE_COMMON_INTERNER_H_
#define JGRE_COMMON_INTERNER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "snapshot/serializer.h"

namespace jgre {

class StringInterner {
 public:
  using Id = std::uint32_t;
  static constexpr Id kInvalidId = ~Id{0};

  StringInterner() = default;
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  // Returns the id for `s`, assigning the next dense id on first sight.
  // Hot loops intern the same label over and over (per-allocation heap
  // labels, per-transaction descriptors), so the last hit is memoized: a
  // repeat costs one string compare instead of a hash lookup.
  Id Intern(std::string_view s) {
    if (last_id_ != kInvalidId && s == names_[last_id_]) return last_id_;
    auto it = ids_.find(s);
    if (it != ids_.end()) return last_id_ = it->second;
    const Id id = static_cast<Id>(names_.size());
    names_.emplace_back(s);
    // The key string_view points into names_ (a deque: stable addresses).
    ids_.emplace(names_.back(), id);
    return last_id_ = id;
  }

  // Looks up `s` without interning; kInvalidId if unseen.
  Id Find(std::string_view s) const {
    auto it = ids_.find(s);
    return it == ids_.end() ? kInvalidId : it->second;
  }

  const std::string& Name(Id id) const { return names_[id]; }
  std::size_t size() const { return names_.size(); }

  // Checkpointing: names are written in id order and re-interned on restore,
  // which reproduces the exact id assignment (ids are dense, first-seen).
  void SaveState(snapshot::Serializer& out) const {
    out.U64(names_.size());
    for (const std::string& name : names_) out.Str(name);
  }
  void RestoreState(snapshot::Deserializer& in) {
    names_.clear();
    ids_.clear();
    last_id_ = kInvalidId;
    const std::uint64_t n = in.U64();
    for (std::uint64_t i = 0; i < n && in.ok(); ++i) (void)Intern(in.Str());
  }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::deque<std::string> names_;  // id -> string; deque keeps refs stable
  std::unordered_map<std::string_view, Id, Hash, std::equal_to<>> ids_;
  Id last_id_ = kInvalidId;  // memo of the most recent Intern result
};

}  // namespace jgre

#endif  // JGRE_COMMON_INTERNER_H_
