// Deterministic pseudo-random number generation (xoshiro256++).
//
// The simulator never touches std::random_device or wall-clock entropy: every
// experiment takes a seed and is reproducible. xoshiro256++ is small, fast,
// and has well-understood statistical quality for simulation workloads.
#ifndef JGRE_COMMON_RNG_H_
#define JGRE_COMMON_RNG_H_

#include <cstdint>

#include "snapshot/serializer.h"

namespace jgre {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform over the full 64-bit range.
  std::uint64_t NextU64();

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t UniformU64(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Exponentially distributed with the given mean (> 0).
  double Exponential(double mean);

  // Bernoulli trial.
  bool Chance(double probability);

  // Forks an independent stream (useful to decouple subsystems so adding
  // draws in one does not perturb another).
  Rng Fork();

  // Checkpointing: the 256-bit stream position round-trips exactly, so a
  // restored stream continues with the same draws the original would have.
  void SaveState(snapshot::Serializer& out) const {
    for (std::uint64_t v : s_) out.U64(v);
  }
  void RestoreState(snapshot::Deserializer& in) {
    for (std::uint64_t& v : s_) v = in.U64();
  }

 private:
  static std::uint64_t SplitMix64(std::uint64_t& state);

  std::uint64_t s_[4];
};

}  // namespace jgre

#endif  // JGRE_COMMON_RNG_H_
