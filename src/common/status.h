// Lightweight Status/Result error handling for the simulator.
//
// Android's binder layer reports errors as negative status codes
// (NO_ERROR, PERMISSION_DENIED, ...). We mirror that shape with a typed
// Status carrying a code and message, and Result<T> for value-or-error.
// Exceptions are reserved for programming errors (assertions), matching the
// Core Guidelines advice for recoverable vs unrecoverable errors in
// deterministic simulation code.
#ifndef JGRE_COMMON_STATUS_H_
#define JGRE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace jgre {

enum class StatusCode {
  kOk = 0,
  kPermissionDenied,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kResourceExhausted,   // e.g. JGR table overflow
  kFailedPrecondition,  // e.g. dead process / aborted runtime
  kUnavailable,         // e.g. binder DEAD_OBJECT
  kLimitExceeded,       // server-side per-process constraint tripped
  kInternal,
};

std::string_view StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status PermissionDenied(std::string msg) {
  return {StatusCode::kPermissionDenied, std::move(msg)};
}
inline Status NotFound(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status AlreadyExists(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
inline Status InvalidArgument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status ResourceExhausted(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}
inline Status FailedPrecondition(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status Unavailable(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
inline Status LimitExceeded(std::string msg) {
  return {StatusCode::kLimitExceeded, std::move(msg)};
}
inline Status Internal(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}

// Value-or-Status. Deliberately minimal: the simulator only needs
// construction, ok(), value(), and status().
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "use the value constructor for OK results");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

#define JGRE_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::jgre::Status jgre_status_ = (expr);          \
    if (!jgre_status_.ok()) return jgre_status_;   \
  } while (0)

}  // namespace jgre

#endif  // JGRE_COMMON_STATUS_H_
