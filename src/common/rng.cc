#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace jgre {

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t Rng::SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  // Seed the xoshiro state via SplitMix64 as recommended by the authors; a
  // zero state would be a fixed point, and SplitMix64 avoids it.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::UniformU64(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Exponential(double mean) {
  assert(mean > 0);
  double u = UniformDouble();
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

bool Rng::Chance(double probability) { return UniformDouble() < probability; }

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace jgre
