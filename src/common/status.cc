#include "common/status.h"

namespace jgre {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kLimitExceeded:
      return "LIMIT_EXCEEDED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace jgre
