// Fixed-capacity ring buffer with monotonically growing logical indices.
//
// Backs the binder driver's IPC log: records are appended forever, the
// buffer retains only the newest `capacity` of them, and readers address
// records by their *logical* index (0-based, never reused), so a reader that
// kept a watermark can resume exactly where it left off even after old
// records were overwritten. Storage grows lazily up to the capacity — an
// idle log costs nothing — and never reallocates once full, unlike the
// std::deque the seed implementation used (which both allocated per block
// and was copied wholesale on every read).
#ifndef JGRE_COMMON_RING_BUFFER_H_
#define JGRE_COMMON_RING_BUFFER_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "snapshot/serializer.h"

namespace jgre {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : capacity_(capacity) {
    assert(capacity_ > 0);
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return storage_.size(); }
  bool empty() const { return storage_.empty(); }

  // Total number of values ever pushed.
  std::uint64_t total_pushed() const { return total_pushed_; }
  // Logical index of the oldest value still retained.
  std::uint64_t first_index() const { return total_pushed_ - size(); }
  // One past the logical index of the newest value.
  std::uint64_t end_index() const { return total_pushed_; }

  void Push(T value) {
    if (storage_.size() < capacity_) {
      storage_.push_back(std::move(value));
    } else {
      storage_[head_] = std::move(value);
      head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
    }
    ++total_pushed_;
  }

  // Bulk append — observationally identical to pushing each value in order
  // (same logical indices, same retained values, same save bytes), but
  // copies whole contiguous runs instead of one branchy store per value.
  // When `count` is at least the capacity only the newest `capacity` values
  // land, exactly as repeated Push would leave it.
  void PushBulk(const T* items, std::size_t count) {
    total_pushed_ += count;
    if (count >= capacity_) {
      items += count - capacity_;
      storage_.assign(items, items + capacity_);
      head_ = 0;
      return;
    }
    std::size_t remaining = count;
    if (storage_.size() < capacity_) {
      // Not yet full, so head_ is 0 and new values grow the tail.
      const std::size_t grow =
          std::min(remaining, capacity_ - storage_.size());
      storage_.insert(storage_.end(), items, items + grow);
      items += grow;
      remaining -= grow;
    }
    while (remaining > 0) {
      const std::size_t run = std::min(remaining, storage_.size() - head_);
      std::copy_n(items, run, storage_.begin() + head_);
      head_ += run;
      if (head_ == storage_.size()) head_ = 0;
      items += run;
      remaining -= run;
    }
  }

  // Value at logical index `index`; must be within [first_index, end_index).
  const T& At(std::uint64_t index) const {
    assert(index >= first_index() && index < end_index());
    const std::size_t offset =
        static_cast<std::size_t>(index - first_index());
    std::size_t pos = head_ + offset;
    if (pos >= storage_.size()) pos -= storage_.size();
    return storage_[pos];
  }

  void Clear() {
    storage_.clear();
    head_ = 0;
    // total_pushed_ keeps counting: logical indices are never reused.
  }

  // Result of a DrainSince pass: where the reader's watermark should move,
  // how many values it visited, and how many it missed because they were
  // overwritten before it caught up (reader overrun).
  struct DrainStats {
    std::uint64_t next = 0;     // new watermark (== end_index() at drain time)
    std::uint64_t visited = 0;  // values delivered through the callback
    std::uint64_t dropped = 0;  // values lost to overwrite before the drain
  };

  // Visits every retained value with logical index >= `since`, oldest first,
  // as at most two contiguous chunks `chunk(const T* data, size_t count)`.
  // A watermark older than first_index() has been overrun: the missing
  // values are counted in `dropped` and the visit starts at the oldest
  // retained value. The per-sink staging buffers in obs::EventBus drain
  // through this — one virtual batch call per chunk instead of one per event.
  template <typename ChunkFn>
  DrainStats DrainSince(std::uint64_t since, ChunkFn&& chunk) const {
    DrainStats stats;
    stats.next = end_index();
    const std::uint64_t first = first_index();
    if (since > stats.next) since = stats.next;  // future watermark: clamp
    if (since < first) {
      stats.dropped = first - since;
      since = first;
    }
    stats.visited = stats.next - since;
    if (stats.visited == 0) return stats;
    // Physical layout: oldest lives at head_, wrapping at storage_.size().
    std::size_t pos = head_ + static_cast<std::size_t>(since - first);
    if (pos >= storage_.size()) pos -= storage_.size();
    const std::size_t run =
        std::min(static_cast<std::size_t>(stats.visited),
                 storage_.size() - pos);
    chunk(storage_.data() + pos, run);
    if (run < stats.visited) {
      chunk(storage_.data(), static_cast<std::size_t>(stats.visited) - run);
    }
    return stats;
  }

  // Checkpointing. Retained values are written oldest-to-newest through
  // `save_value(out, v)`; restore linearizes the storage (head_ = 0) but
  // preserves every logical index, so readers' watermarks stay valid and a
  // re-saved buffer produces identical bytes.
  template <typename SaveValueFn>
  void SaveState(snapshot::Serializer& out, SaveValueFn save_value) const {
    out.U64(capacity_);
    out.U64(total_pushed_);
    out.U64(size());
    for (std::uint64_t i = first_index(); i < end_index(); ++i) {
      save_value(out, At(i));
    }
  }
  template <typename LoadValueFn>
  void RestoreState(snapshot::Deserializer& in, LoadValueFn load_value) {
    capacity_ = static_cast<std::size_t>(in.U64());
    const std::uint64_t total = in.U64();
    const std::uint64_t retained = in.U64();
    storage_.clear();
    head_ = 0;
    if (capacity_ == 0 || retained > capacity_ || retained > total) {
      in.Fail("corrupt ring buffer header");
      return;
    }
    storage_.reserve(static_cast<std::size_t>(retained));
    for (std::uint64_t i = 0; i < retained && in.ok(); ++i) {
      storage_.push_back(load_value(in));
    }
    total_pushed_ = total;
  }

 private:
  std::size_t capacity_;
  std::vector<T> storage_;
  std::size_t head_ = 0;  // physical position of the oldest value when full
  std::uint64_t total_pushed_ = 0;
};

}  // namespace jgre

#endif  // JGRE_COMMON_RING_BUFFER_H_
