#include "common/log.h"

#include <cstdio>

namespace jgre {

namespace {
LogLevel g_level = LogLevel::kWarning;

char LevelChar(LogLevel level) {
  switch (level) {
    case LogLevel::kVerbose:
      return 'V';
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarning:
      return 'W';
    case LogLevel::kError:
      return 'E';
    case LogLevel::kNone:
      return '?';
  }
  return '?';
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, std::string_view tag)
    : level_(level), tag_(tag) {}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "%c/%s: %s\n", LevelChar(level_), tag_.c_str(),
               stream_.str().c_str());
}

}  // namespace internal
}  // namespace jgre
