// Strong identifier types shared across the simulator.
//
// Every entity in the simulated Android system (process, uid, Java object,
// binder node) is identified by a small integer. Using distinct wrapper types
// rather than bare integers prevents the classic pid/uid mix-up bugs at
// compile time while remaining trivially copyable and hashable.
#ifndef JGRE_COMMON_TYPES_H_
#define JGRE_COMMON_TYPES_H_

#include <cstdint>
#include <functional>

namespace jgre {

// CRTP-free tagged integer. `Tag` makes distinct instantiations distinct
// types; `kInvalid` is the default-constructed sentinel.
template <typename Tag, typename Int = std::int64_t>
class TaggedId {
 public:
  using value_type = Int;
  static constexpr Int kInvalid = -1;

  constexpr TaggedId() = default;
  constexpr explicit TaggedId(Int value) : value_(value) {}

  constexpr Int value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(TaggedId a, TaggedId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(TaggedId a, TaggedId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(TaggedId a, TaggedId b) {
    return a.value_ < b.value_;
  }

 private:
  Int value_ = kInvalid;
};

struct PidTag {};
struct UidTag {};
struct ObjectTag {};
struct NodeTag {};

// Linux process id of a simulated process.
using Pid = TaggedId<PidTag, std::int32_t>;
// Linux/Android uid. App uids start at 10000 (Android convention);
// uid 1000 is `system`, uid 0 is root.
using Uid = TaggedId<UidTag, std::int32_t>;
// Identity of a simulated Java heap object.
using ObjectId = TaggedId<ObjectTag, std::int64_t>;
// Identity of a binder node registered with the driver.
using NodeId = TaggedId<NodeTag, std::int64_t>;

// Virtual time in microseconds since boot.
using TimeUs = std::uint64_t;
// A duration, also in microseconds.
using DurationUs = std::uint64_t;

inline constexpr Uid kRootUid{0};
inline constexpr Uid kSystemUid{1000};
inline constexpr Uid kFirstAppUid{10000};

}  // namespace jgre

namespace std {
template <typename Tag, typename Int>
struct hash<jgre::TaggedId<Tag, Int>> {
  size_t operator()(jgre::TaggedId<Tag, Int> id) const noexcept {
    return std::hash<Int>{}(id.value());
  }
};
}  // namespace std

#endif  // JGRE_COMMON_TYPES_H_
