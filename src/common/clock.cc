#include "common/clock.h"

#include <cassert>
#include <utility>

namespace jgre {

void SimClock::AdvanceTo(TimeUs when_us) {
  assert(when_us >= now_us_ && "virtual time cannot go backwards");
  // Fire timers one deadline at a time so a timer that schedules another
  // timer within the window is honoured.
  while (!timers_.empty() && timers_.begin()->first <= when_us) {
    auto it = timers_.begin();
    now_us_ = it->first;
    // Move the bucket out before invoking: callbacks may schedule/cancel.
    auto bucket = std::move(it->second);
    timers_.erase(it);
    for (auto& [id, fn] : bucket) {
      ++timers_fired_;
      fn();
    }
  }
  now_us_ = when_us;
}

std::int64_t SimClock::ScheduleAt(TimeUs deadline_us,
                                  std::function<void()> fn) {
  if (deadline_us < now_us_) deadline_us = now_us_;
  const std::int64_t id = next_timer_id_++;
  timers_[deadline_us].emplace(id, std::move(fn));
  return id;
}

void SimClock::CancelTimer(std::int64_t timer_id) {
  for (auto& [deadline, bucket] : timers_) {
    if (bucket.erase(timer_id) > 0) {
      if (bucket.empty()) timers_.erase(deadline);
      return;
    }
  }
}

}  // namespace jgre
