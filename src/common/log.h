// Minimal leveled logger, logcat-flavoured.
//
// Output format mirrors Android logcat (`LEVEL/TAG: message`) so traces read
// naturally next to the paper. Verbosity is a process-global knob; tests and
// benches default to WARNING to keep output clean.
#ifndef JGRE_COMMON_LOG_H_
#define JGRE_COMMON_LOG_H_

#include <sstream>
#include <string>
#include <string_view>

namespace jgre {

enum class LogLevel : int {
  kVerbose = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
  kNone = 5,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view tag);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace jgre

// Usage: JGRE_LOG(kInfo, "BinderDriver") << "transaction " << code;
// Operands are not evaluated when the level is disabled.
#define JGRE_LOG(level, tag)                            \
  if (::jgre::GetLogLevel() > ::jgre::LogLevel::level)  \
    ;                                                   \
  else                                                  \
    ::jgre::internal::LogMessage(::jgre::LogLevel::level, (tag))

#endif  // JGRE_COMMON_LOG_H_
