#include "os/kernel.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"
#include "common/strings.h"
#include "obs/trace.h"
#include "os/lmk.h"

namespace jgre::os {

Kernel::Kernel() : Kernel(Config{}) {}

Kernel::Kernel(Config config) : config_(config), rng_(config.seed) {}

Kernel::~Kernel() = default;

Pid Kernel::CreateProcess(const std::string& name, Uid uid) {
  return CreateProcess(name, uid, ProcessConfig{});
}

Pid Kernel::CreateProcess(const std::string& name, Uid uid,
                          const ProcessConfig& config) {
  const Pid pid{next_pid_++};
  Process proc;
  proc.pid = pid;
  proc.uid = uid;
  proc.name = name;
  proc.critical = config.critical;
  proc.oom_score_adj = config.oom_score_adj;
  proc.memory_kb = config.memory_kb;
  proc.start_time_us = clock_.NowUs();
  if (config.with_runtime) {
    rt::Runtime::Config rt_config;
    rt_config.name = StrCat(name, "(", pid.value(), ")");
    rt_config.max_global_refs = config.max_global_refs;
    rt_config.boot_class_refs = config.boot_class_refs;
    rt_config.obs = obs::Source{&bus_, pid.value(), uid.value()};
    proc.runtime = std::make_unique<rt::Runtime>(&clock_, rt_config);
    // JGR table overflow aborts the runtime, which kills the process.
    proc.runtime->SetAbortHandler([this, pid](const std::string& reason) {
      KillProcess(pid, StrCat("runtime abort: ", reason));
    });
  }
  used_memory_kb_ += proc.memory_kb;
  ++live_count_;
  assert(static_cast<std::size_t>(pid.value()) == processes_.size() + 1);
  processes_.push_back(std::make_unique<Process>(std::move(proc)));
  LogEvent(StrCat("start pid=", pid.value(), " uid=", uid.value(), " ", name));
  CheckMemoryPressure();
  return pid;
}

void Kernel::KillProcess(Pid pid, const std::string& reason) {
  Process* found = FindProcess(pid);
  if (found == nullptr || !found->alive) return;
  Process& proc = *found;
  proc.alive = false;
  used_memory_kb_ -= proc.memory_kb;
  --live_count_;
  LogEvent(StrCat("kill pid=", pid.value(), " (", proc.name, "): ", reason));
  JGRE_LOG(kInfo, "kernel") << "killed " << proc.name << " pid="
                            << pid.value() << ": " << reason;
  JGRE_TRACE(&bus_, obs::Category::kLmk,
             obs::MakeEvent(obs::Category::kLmk, obs::Label::kProcessKill,
                            clock_.NowUs(), pid.value(), proc.uid.value(),
                            proc.oom_score_adj, proc.critical ? 1 : 0));
  // Death notification (binder driver fans this out to death recipients).
  for (const DeathListener& listener : death_listeners_) {
    listener(pid, reason);
  }
  if (proc.critical) {
    ++soft_reboot_count_;
    pending_soft_reboot_ = reason;
    LogEvent(StrCat("soft reboot pending: ", reason));
    JGRE_TRACE(&bus_, obs::Category::kLmk,
               obs::MakeEvent(obs::Category::kLmk, obs::Label::kSoftReboot,
                              clock_.NowUs(), pid.value(), proc.uid.value()));
  }
}

Process* Kernel::FindProcess(Pid pid) {
  const std::int32_t id = pid.value();
  if (id < 1 || id >= next_pid_) return nullptr;
  return processes_[static_cast<std::size_t>(id - 1)].get();
}

const Process* Kernel::FindProcess(Pid pid) const {
  const std::int32_t id = pid.value();
  if (id < 1 || id >= next_pid_) return nullptr;
  return processes_[static_cast<std::size_t>(id - 1)].get();
}

bool Kernel::IsAlive(Pid pid) const {
  const Process* p = FindProcess(pid);
  return p != nullptr && p->alive;
}

std::vector<Pid> Kernel::LivePids() const {
  std::vector<Pid> pids;
  pids.reserve(live_count_);
  for (const auto& proc : processes_) {  // index order == ascending pids
    if (proc->alive) pids.push_back(proc->pid);
  }
  return pids;
}

std::vector<Pid> Kernel::LivePidsForUid(Uid uid) const {
  std::vector<Pid> pids;
  for (const auto& proc : processes_) {
    if (proc->alive && proc->uid == uid) pids.push_back(proc->pid);
  }
  return pids;
}

void Kernel::SetOomScoreAdj(Pid pid, int adj) {
  if (Process* p = FindProcess(pid); p != nullptr && p->alive) {
    p->oom_score_adj = adj;
  }
}

void Kernel::SetProcessMemory(Pid pid, std::int64_t memory_kb) {
  Process* p = FindProcess(pid);
  if (p == nullptr || !p->alive) return;
  used_memory_kb_ += memory_kb - p->memory_kb;
  p->memory_kb = memory_kb;
  CheckMemoryPressure();
}

Status Kernel::AllocFds(Pid pid, int count) {
  Process* p = FindProcess(pid);
  if (p == nullptr || !p->alive) {
    return FailedPrecondition("process is dead");
  }
  if (p->open_fds + count > p->fd_limit) {
    LogEvent(StrCat("EMFILE pid=", pid.value(), " (", p->name, ")"));
    if (p->critical) {
      // system_server cannot survive fd starvation: binder, input and
      // storage paths all abort on EMFILE.
      KillProcess(pid, "too many open files (EMFILE)");
    }
    return ResourceExhausted(
        StrCat(p->name, ": too many open files (limit ", p->fd_limit, ")"));
  }
  p->open_fds += count;
  return Status::Ok();
}

void Kernel::ReleaseFds(Pid pid, int count) {
  Process* p = FindProcess(pid);
  if (p == nullptr || !p->alive) return;
  p->open_fds = std::max(0, p->open_fds - count);
}

int Kernel::OpenFdCount(Pid pid) const {
  const Process* p = FindProcess(pid);
  return (p == nullptr || !p->alive) ? 0 : p->open_fds;
}

void Kernel::AddDeathListener(DeathListener listener) {
  death_listeners_.push_back(std::move(listener));
}

void Kernel::SetLowMemoryKiller(std::unique_ptr<LowMemoryKiller> lmk) {
  lmk_ = std::move(lmk);
}

std::optional<std::string> Kernel::TakePendingSoftReboot() {
  auto pending = std::move(pending_soft_reboot_);
  pending_soft_reboot_.reset();
  return pending;
}

void Kernel::ReapDeadProcesses() {
  for (auto& proc : processes_) {
    if (!proc->alive && proc->runtime != nullptr) {
      proc->runtime.reset();  // JGR tables and heap disappear with the process
    }
  }
}

void Kernel::SaveState(snapshot::Serializer& out) const {
  out.Marker(0x4B524E31);  // "KRN1"
  clock_.SaveState(out);
  rng_.SaveState(out);
  bus_.SaveState(out);
  out.I64(next_pid_);
  out.U64(processes_.size());
  for (const auto& p : processes_) {  // index order == ascending pids
    const Process& proc = *p;
    out.I64(proc.pid.value());
    out.I64(proc.uid.value());
    out.Str(proc.name);
    out.Bool(proc.alive);
    out.Bool(proc.critical);
    out.I64(proc.oom_score_adj);
    out.I64(proc.memory_kb);
    out.I64(proc.open_fds);
    out.I64(proc.fd_limit);
    out.U64(proc.start_time_us);
    out.Bool(proc.runtime != nullptr);
    if (proc.runtime != nullptr) {
      out.U64(proc.runtime->vm().MaxGlobals());
      proc.runtime->SaveState(out);
    }
  }
  out.U64(live_count_);
  out.I64(used_memory_kb_);
  out.Bool(pending_soft_reboot_.has_value());
  if (pending_soft_reboot_.has_value()) out.Str(*pending_soft_reboot_);
  out.I64(soft_reboot_count_);
  out.Bool(lmk_ != nullptr);
  if (lmk_ != nullptr) lmk_->SaveState(out);
}

void Kernel::RestoreState(snapshot::Deserializer& in) {
  in.Marker(0x4B524E31);
  clock_.RestoreState(in);
  rng_.RestoreState(in);
  bus_.RestoreState(in);
  next_pid_ = static_cast<std::int32_t>(in.I64());
  processes_.clear();
  const std::uint64_t count = in.U64();
  processes_.reserve(count);
  for (std::uint64_t i = 0; i < count && in.ok(); ++i) {
    Process proc;
    proc.pid = Pid{static_cast<std::int32_t>(in.I64())};
    if (static_cast<std::uint64_t>(proc.pid.value()) != i + 1) {
      in.Fail("process table pids are not dense");
      return;
    }
    proc.uid = Uid{static_cast<std::int32_t>(in.I64())};
    proc.name = in.Str();
    proc.alive = in.Bool();
    proc.critical = in.Bool();
    proc.oom_score_adj = static_cast<int>(in.I64());
    proc.memory_kb = in.I64();
    proc.open_fds = static_cast<int>(in.I64());
    proc.fd_limit = static_cast<int>(in.I64());
    proc.start_time_us = in.U64();
    if (in.Bool()) {
      rt::Runtime::Config rt_config;
      rt_config.name = StrCat(proc.name, "(", proc.pid.value(), ")");
      rt_config.max_global_refs = static_cast<std::size_t>(in.U64());
      rt_config.boot_class_refs = 0;  // RestoreState replaces everything
      rt_config.obs =
          obs::Source{&bus_, proc.pid.value(), proc.uid.value()};
      proc.runtime = std::make_unique<rt::Runtime>(&clock_, rt_config);
      proc.runtime->RestoreState(in);
      const Pid pid = proc.pid;
      proc.runtime->SetAbortHandler([this, pid](const std::string& reason) {
        KillProcess(pid, StrCat("runtime abort: ", reason));
      });
    }
    if (in.ok()) {
      processes_.push_back(std::make_unique<Process>(std::move(proc)));
    }
  }
  live_count_ = static_cast<std::size_t>(in.U64());
  used_memory_kb_ = in.I64();
  if (in.Bool()) {
    pending_soft_reboot_ = in.Str();
  } else {
    pending_soft_reboot_.reset();
  }
  soft_reboot_count_ = in.I64();
  const bool has_lmk = in.Bool();
  if (has_lmk && lmk_ != nullptr) {
    lmk_->RestoreState(in);
  } else if (has_lmk) {
    in.Fail("checkpoint has LMK state but no LMK is installed");
  }
}

void Kernel::LogEvent(const std::string& what) {
  events_.push_back(Event{clock_.NowUs(), what});
}

void Kernel::CheckMemoryPressure() {
  if (lmk_ != nullptr) lmk_->CheckPressure();
}

}  // namespace jgre::os
