// Kernel — simulated Linux kernel: process lifecycle, memory accounting,
// procfs, death notification, and soft-reboot semantics.
//
// Key behaviours the paper depends on:
// * a runtime abort (JGR overflow) kills the owning process;
// * killing `system_server` (the critical process hosting nearly all system
//   services and their shared 51,200-entry JGR table) soft-reboots Android;
// * process death releases every kernel-side resource: binder nodes get death
//   notifications (subscribed by the binder driver), memory is returned, and
//   the runtime with all its JGR entries disappears — which is why killing
//   the attacker is a complete recovery (defense phase 3) and why the LMK
//   keeps the benign JGR baseline low (Observation 1 / Fig 4).
#ifndef JGRE_OS_KERNEL_H_
#define JGRE_OS_KERNEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/event_bus.h"
#include "os/process.h"
#include "os/procfs.h"
#include "snapshot/serializer.h"

namespace jgre::os {

class LowMemoryKiller;

class Kernel {
 public:
  struct Config {
    std::int64_t total_ram_kb = 2 * 1024 * 1024;  // Nexus 5X: 2 GB
    std::uint64_t seed = 1;
  };

  Kernel();
  explicit Kernel(Config config);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  SimClock& clock() { return clock_; }
  ProcFs& procfs() { return procfs_; }
  Rng& rng() { return rng_; }
  // The simulation-wide observability bus. Every runtime the kernel creates
  // publishes into it; the defense, trace buffers and metrics sinks
  // subscribe to it.
  obs::EventBus& bus() { return bus_; }
  const obs::EventBus& bus() const { return bus_; }

  // --- Process lifecycle ---------------------------------------------------

  struct ProcessConfig {
    bool with_runtime = true;
    std::size_t boot_class_refs = 180;  // WellKnownClasses baseline
    std::size_t max_global_refs = rt::kGlobalsMax;
    std::int64_t memory_kb = 40 * 1024;
    int oom_score_adj = kForegroundAppAdj;
    bool critical = false;
  };

  Pid CreateProcess(const std::string& name, Uid uid);
  Pid CreateProcess(const std::string& name, Uid uid,
                    const ProcessConfig& config);

  // Kills a process: fires death listeners, drops memory, destroys the
  // runtime (all its JGR entries with it). Idempotent.
  void KillProcess(Pid pid, const std::string& reason);

  Process* FindProcess(Pid pid);
  const Process* FindProcess(Pid pid) const;
  bool IsAlive(Pid pid) const;

  // All live processes (stable pid order).
  std::vector<Pid> LivePids() const;
  std::vector<Pid> LivePidsForUid(Uid uid) const;
  std::size_t LiveProcessCount() const { return live_count_; }

  void SetOomScoreAdj(Pid pid, int adj);
  void SetProcessMemory(Pid pid, std::int64_t memory_kb);

  // --- File descriptors (§VI: the non-JGR exhaustible resource) -------------

  // Allocates `count` fds in `pid`'s table. Fails with kResourceExhausted at
  // RLIMIT_NOFILE; a *critical* process that exhausts its table dies (fd
  // starvation makes system_server abort in practice), soft-rebooting the
  // device — the same detonation as a JGR overflow, on a resource the JGRE
  // defense does not watch.
  Status AllocFds(Pid pid, int count);
  void ReleaseFds(Pid pid, int count);
  int OpenFdCount(Pid pid) const;

  std::int64_t UsedMemoryKb() const { return used_memory_kb_; }
  std::int64_t FreeMemoryKb() const {
    return config_.total_ram_kb - used_memory_kb_;
  }

  // --- Death notification ---------------------------------------------------

  using DeathListener = std::function<void(Pid, const std::string& reason)>;
  // Listener survives for the kernel's lifetime (binder driver, LMK, core).
  void AddDeathListener(DeathListener listener);

  // --- Soft reboot ------------------------------------------------------------

  // Invoked when a critical process dies. The core facade uses this to model
  // Android's soft reboot (zygote restarts system_server).
  // A critical-process death does not restart the system from inside the
  // dying call stack; it records a pending soft reboot which the core facade
  // consumes between transactions (zygote restarting system_server).
  std::optional<std::string> TakePendingSoftReboot();
  bool HasPendingSoftReboot() const { return pending_soft_reboot_.has_value(); }
  std::int64_t soft_reboot_count() const { return soft_reboot_count_; }

  // Frees the runtimes of dead processes. Must only be called between
  // transactions (the facade's pump), never from inside a dying call stack.
  void ReapDeadProcesses();

  // --- LMK -------------------------------------------------------------------

  // Installed by the core facade; consulted whenever memory grows.
  void SetLowMemoryKiller(std::unique_ptr<LowMemoryKiller> lmk);
  LowMemoryKiller* lmk() { return lmk_.get(); }

  // Kernel event log (process starts/kills/reboots) for test assertions.
  struct Event {
    TimeUs time_us;
    std::string what;
  };
  const std::vector<Event>& events() const { return events_; }

  // Checkpointing: clock, RNG, bus interner, and the whole process table
  // (including each process's runtime state) round-trip; restore replaces
  // the table wholesale and re-attaches abort handlers. Death listeners,
  // procfs providers, and the LMK instance are wiring owned by the facade
  // and survive untouched. The diagnostic `events()` log is not serialized.
  void SaveState(snapshot::Serializer& out) const;
  void RestoreState(snapshot::Deserializer& in);

 private:
  void LogEvent(const std::string& what);
  void CheckMemoryPressure();

  Config config_;
  SimClock clock_;
  ProcFs procfs_;
  Rng rng_;
  // Declared before processes_: runtimes hold a Source pointing at the bus,
  // so it must outlive them.
  obs::EventBus bus_;

  // Pids are dense (1, 2, 3, ...) and processes are never erased — dead ones
  // only lose their runtime — so the process table is a flat vector indexed
  // by pid - 1. unique_ptr keeps Process* stable across table growth
  // (FindProcess results are held across calls that create processes).
  std::int32_t next_pid_ = 1;
  std::vector<std::unique_ptr<Process>> processes_;
  std::size_t live_count_ = 0;
  std::int64_t used_memory_kb_ = 0;

  std::vector<DeathListener> death_listeners_;
  std::optional<std::string> pending_soft_reboot_;
  std::int64_t soft_reboot_count_ = 0;
  std::unique_ptr<LowMemoryKiller> lmk_;
  std::vector<Event> events_;
};

}  // namespace jgre::os

#endif  // JGRE_OS_KERNEL_H_
