#include "os/procfs.h"

#include "common/strings.h"

namespace jgre::os {

void ProcFs::Register(const std::string& path, Provider provider,
                      bool system_only) {
  files_[path] = File{std::move(provider), system_only};
}

void ProcFs::Unregister(const std::string& path) { files_.erase(path); }

Result<std::string> ProcFs::Read(const std::string& path, Uid caller) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFound(StrCat(path, ": no such file"));
  }
  if (it->second.system_only && caller != kRootUid && caller != kSystemUid) {
    return PermissionDenied(StrCat(path, ": uid ", caller.value(),
                                   " may not read system-only file"));
  }
  return it->second.provider();
}

}  // namespace jgre::os
