// Simulated process control block.
#ifndef JGRE_OS_PROCESS_H_
#define JGRE_OS_PROCESS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.h"
#include "runtime/runtime.h"

namespace jgre::os {

// Android oom_score_adj conventions (frameworks/base ProcessList).
enum OomScoreAdj : int {
  kNativeAdj = -1000,
  kSystemAdj = -900,
  kPersistentProcAdj = -800,
  kForegroundAppAdj = 0,
  kVisibleAppAdj = 100,
  kPerceptibleAppAdj = 200,
  kServiceAdj = 500,
  kHomeAppAdj = 600,
  kPreviousAppAdj = 700,
  kServiceBAdj = 800,
  kCachedAppMinAdj = 900,
  kCachedAppMaxAdj = 906,
};

struct Process {
  Pid pid;
  Uid uid;
  std::string name;           // e.g. "system_server", "com.evil.app"
  bool alive = true;
  bool critical = false;      // death => system soft reboot (system_server)
  int oom_score_adj = kForegroundAppAdj;
  std::int64_t memory_kb = 0; // resident set size
  // File-descriptor table (§VI: another exhaustible per-process resource;
  // binder transactions can dup fds into the receiver).
  int open_fds = 32;          // stdio, sockets, jars...
  int fd_limit = 1024;        // RLIMIT_NOFILE
  TimeUs start_time_us = 0;
  // Present for Android (Java) processes, absent for native daemons.
  std::unique_ptr<rt::Runtime> runtime;

  bool HasRuntime() const { return runtime != nullptr; }
};

}  // namespace jgre::os

#endif  // JGRE_OS_PROCESS_H_
