// ProcFs — in-memory /proc with per-file access control.
//
// The paper's defense exports the binder driver's IPC log as
// /proc/jgre_ipc_log, "set the permission of the file so that it can be only
// accessed by system service but not third-party apps" (§V.B). Files here are
// pull-model: a provider callback renders the current content on read, which
// matches procfs semantics (content generated at open time).
#ifndef JGRE_OS_PROCFS_H_
#define JGRE_OS_PROCFS_H_

#include <functional>
#include <map>
#include <string>

#include "common/status.h"
#include "common/types.h"

namespace jgre::os {

class ProcFs {
 public:
  using Provider = std::function<std::string()>;

  // Registers `path` with a content provider. If `system_only` is true, only
  // root/system uids may read it.
  void Register(const std::string& path, Provider provider,
                bool system_only = false);

  void Unregister(const std::string& path);

  // Reads the file as `caller`; kPermissionDenied for protected files,
  // kNotFound for unknown paths.
  Result<std::string> Read(const std::string& path, Uid caller) const;

  bool Exists(const std::string& path) const { return files_.count(path) > 0; }

 private:
  struct File {
    Provider provider;
    bool system_only = false;
  };
  std::map<std::string, File> files_;
};

}  // namespace jgre::os

#endif  // JGRE_OS_PROCFS_H_
