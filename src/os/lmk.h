// LowMemoryKiller — Android's LMK, the mechanism the paper's defense adopts.
//
// Linux's OOM killer reclaims memory only at the last moment and with a
// global heuristic; Android instead registers minfree thresholds paired with
// oom_score_adj bands and proactively kills the least-important (highest-adj)
// processes as free memory sinks through the levels. The paper's JGRE
// Defender follows the same shape for a different resource: watch a
// threshold, rank candidates, kill until healthy (§V.A phase 3, §VII).
#ifndef JGRE_OS_LMK_H_
#define JGRE_OS_LMK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "snapshot/serializer.h"

namespace jgre::os {

class Kernel;

class LowMemoryKiller {
 public:
  struct Level {
    int min_adj;              // processes with adj >= this are eligible
    std::int64_t minfree_kb;  // trigger when free memory drops below this
  };

  // Android 6-era defaults for a 2 GB device (lowmemorykiller.c minfree
  // tuning written by ProcessList), ordered from most to least aggressive.
  static std::vector<Level> DefaultLevels();

  LowMemoryKiller(Kernel* kernel, std::vector<Level> levels);

  // Evaluates memory pressure and kills processes until free memory rises
  // above the strictest violated level. Victim selection mirrors the kernel
  // driver: highest oom_score_adj first, largest RSS to break ties.
  // Returns the number of processes killed.
  int CheckPressure();

  std::int64_t total_kills() const { return total_kills_; }
  const std::vector<Level>& levels() const { return levels_; }

  // Checkpointing: the kill counter is the only mutable state (levels come
  // from configuration).
  void SaveState(snapshot::Serializer& out) const { out.I64(total_kills_); }
  void RestoreState(snapshot::Deserializer& in) { total_kills_ = in.I64(); }

 private:
  // Chooses the victim among live processes with adj >= min_adj; invalid Pid
  // if none qualify.
  Pid SelectVictim(int min_adj) const;

  Kernel* kernel_;
  std::vector<Level> levels_;
  std::int64_t total_kills_ = 0;
};

}  // namespace jgre::os

#endif  // JGRE_OS_LMK_H_
