#include "os/lmk.h"

#include <algorithm>

#include "common/log.h"
#include "common/strings.h"
#include "obs/trace.h"
#include "os/kernel.h"

namespace jgre::os {

std::vector<LowMemoryKiller::Level> LowMemoryKiller::DefaultLevels() {
  // minfree in kB; adj bands per ProcessList.updateOomLevels for ~2 GB RAM.
  return {
      {kCachedAppMaxAdj, 184320},   // 180 MB -> empty/cached apps
      {kCachedAppMinAdj, 147456},   // 144 MB
      {kServiceBAdj, 129024},       // 126 MB
      {kPreviousAppAdj, 110592},    // 108 MB
      {kPerceptibleAppAdj, 92160},  // 90 MB
      {kVisibleAppAdj, 73728},      // 72 MB
  };
}

LowMemoryKiller::LowMemoryKiller(Kernel* kernel, std::vector<Level> levels)
    : kernel_(kernel), levels_(std::move(levels)) {
  // Keep levels sorted most-aggressive (largest minfree) first so the scan
  // finds the loosest violated threshold.
  std::sort(levels_.begin(), levels_.end(),
            [](const Level& a, const Level& b) {
              return a.minfree_kb > b.minfree_kb;
            });
}

Pid LowMemoryKiller::SelectVictim(int min_adj) const {
  Pid victim;
  int best_adj = min_adj - 1;
  std::int64_t best_rss = -1;
  for (Pid pid : kernel_->LivePids()) {
    const Process* p = kernel_->FindProcess(pid);
    if (p == nullptr || p->critical) continue;
    if (p->oom_score_adj < min_adj) continue;
    // Higher adj loses first; among equals the largest RSS frees the most.
    if (p->oom_score_adj > best_adj ||
        (p->oom_score_adj == best_adj && p->memory_kb > best_rss)) {
      victim = pid;
      best_adj = p->oom_score_adj;
      best_rss = p->memory_kb;
    }
  }
  return victim;
}

int LowMemoryKiller::CheckPressure() {
  int kills = 0;
  // Re-evaluate after every kill: freeing a big process can clear several
  // levels at once.
  for (bool progressed = true; progressed;) {
    progressed = false;
    for (const Level& level : levels_) {
      if (kernel_->FreeMemoryKb() >= level.minfree_kb) continue;
      const Pid victim = SelectVictim(level.min_adj);
      if (!victim.valid()) continue;  // nothing killable at this band
      const Process* p = kernel_->FindProcess(victim);
      JGRE_LOG(kInfo, "lowmemorykiller")
          << "Killing '" << p->name << "' (" << victim.value()
          << "), adj " << p->oom_score_adj << ", to free " << p->memory_kb
          << "kB; free " << kernel_->FreeMemoryKb() << "kB below "
          << level.minfree_kb << "kB";
      JGRE_TRACE(&kernel_->bus(), obs::Category::kLmk,
                 obs::MakeEvent(obs::Category::kLmk, obs::Label::kLmkKill,
                                kernel_->clock().NowUs(), victim.value(),
                                -1, p->oom_score_adj, p->memory_kb));
      kernel_->KillProcess(victim, "lowmemorykiller");
      ++total_kills_;
      ++kills;
      progressed = true;
      break;  // restart the level scan with fresh free-memory numbers
    }
  }
  return kills;
}

}  // namespace jgre::os
