// TraceBuffer — a bounded EventSink retaining the newest events.
//
// One per traced simulation. Built on the same logical-index RingBuffer as
// the binder IPC log: events are appended forever, only the newest
// `capacity` are retained, and dropped() reports how many fell off the
// front — exporters surface that count so a truncated trace never silently
// reads as complete.
#ifndef JGRE_OBS_TRACE_BUFFER_H_
#define JGRE_OBS_TRACE_BUFFER_H_

#include <cstddef>
#include <cstdint>

#include "common/ring_buffer.h"
#include "obs/event.h"

namespace jgre::obs {

class TraceBuffer : public EventSink {
 public:
  // 1M events × 48 B ≈ 48 MB ceiling, reached lazily; a full fig3-scale
  // defended attack emits well under this.
  static constexpr std::size_t kDefaultCapacity = 1 << 20;

  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity)
      : ring_(capacity) {}

  void OnEvent(const TraceEvent& event) override { ring_.Push(event); }
  // Buffered-delivery path: one virtual call per drained chunk, then one
  // bulk copy into the retention ring.
  void OnBatch(const TraceEvent* events, std::size_t count) override {
    ring_.PushBulk(events, count);
  }

  const RingBuffer<TraceEvent>& events() const { return ring_; }
  std::size_t size() const { return ring_.size(); }
  bool empty() const { return ring_.empty(); }
  std::uint64_t total_seen() const { return ring_.total_pushed(); }
  std::uint64_t dropped() const { return ring_.total_pushed() - ring_.size(); }

  void Clear() { ring_.Clear(); }

 private:
  RingBuffer<TraceEvent> ring_;
};

}  // namespace jgre::obs

#endif  // JGRE_OBS_TRACE_BUFFER_H_
