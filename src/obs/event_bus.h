// EventBus — per-simulation publish/subscribe hub for TraceEvents.
//
// Owned by the kernel (one bus per simulated device, like the SimClock), so
// concurrent simulations never share observability state. Designed for a hot
// path that is almost always *untraced*: Wants(category) is a single array
// load, and emitters are expected to guard event construction behind it, so
// an unsubscribed category costs one predictable branch per operation —
// within the PR-1 perf envelope.
//
// Delivery modes:
//
// * kImmediate — the sink's OnEvent runs synchronously inside Emit(), in
//   subscription order. Required for sinks whose consumption has simulation
//   side effects (the defense's JgrMonitorHub advances virtual time per
//   recorded JGR op and its report flag is polled between transactions).
//   Immediate sinks may re-enter Emit(); they must not Subscribe/Unsubscribe
//   from inside OnEvent.
// * kBuffered — Emit() appends the (filtered) event to a per-subscription
//   flat staging buffer and returns; the sink sees the events later as one
//   contiguous OnBatch chunk when the bus flushes. Buffering replaces the
//   seed's per-event virtual dispatch on the hot path for every sink that
//   merely folds or copies events (trace rings, metrics, coverage, the
//   defender's IPC tap): staging an event is an indexed store plus a
//   capacity check. A staging buffer that fills mid-emission is drained in
//   place, so no event is ever lost; explicit Flush() calls are the read
//   barrier every consumer needs before inspecting a buffered sink's state.
#ifndef JGRE_OBS_EVENT_BUS_H_
#define JGRE_OBS_EVENT_BUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "obs/event.h"
#include "snapshot/serializer.h"

namespace jgre::obs {

enum class Delivery : std::uint8_t {
  kImmediate,  // OnEvent inside Emit (synchronous, may re-enter Emit)
  kBuffered,   // staged per-sink, delivered as OnBatch chunks on Flush
};

class EventBus {
 public:
  // Events a buffered subscription can stage before Emit() drains it
  // in place.
  static constexpr std::size_t kStagingCapacity = 4096;

  EventBus();

  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  // Subscribes `sink` to every category in `mask`; events with a pid are
  // additionally filtered to `pid_filter` unless it is -1. A sink may be
  // subscribed at most once (re-subscribing replaces the old subscription).
  void Subscribe(EventSink* sink, CategoryMask mask,
                 std::int32_t pid_filter = -1,
                 Delivery delivery = Delivery::kImmediate);
  // Flushes any staged events to `sink`, then removes the subscription.
  void Unsubscribe(EventSink* sink);

  // True if at least one subscriber wants `category`. Emitters check this
  // before building an event, so untraced categories stay near-free.
  bool Wants(Category category) const {
    return want_counts_[static_cast<unsigned>(category)] != 0;
  }

  void Emit(const TraceEvent& event);

  // Drains every buffered subscription's staging buffer, in subscription
  // order, as OnBatch chunks. The read barrier before any code inspects a
  // buffered sink (defender ranking, coverage element harvest, trace/metrics
  // export, snapshot capture). No-op when nothing is staged.
  void Flush();

  // Total events currently staged across buffered subscriptions (test/debug
  // visibility into flush seams).
  std::uint64_t pending_count() const;

  // Interns an event name, returning its dense deterministic id. Well-known
  // labels (obs::Label) are pre-interned in enum order by the constructor.
  LabelId InternLabel(std::string_view name) { return labels_.Intern(name); }
  const std::string& LabelName(LabelId id) const { return labels_.Name(id); }
  std::size_t label_count() const { return labels_.size(); }

  std::uint64_t emitted() const { return emitted_; }
  std::size_t subscriber_count() const { return subs_.size(); }

  // Checkpointing: the label interner (ids are referenced by serialized
  // TraceEvents and driver caches) and the emitted counter. Subscriptions
  // (and their staging buffers) are wiring and are rebuilt by their owners
  // after a restore; the snapshot orchestrator flushes before capturing so
  // no staged event is in flight at save time.
  void SaveState(snapshot::Serializer& out) const {
    labels_.SaveState(out);
    out.U64(emitted_);
  }
  void RestoreState(snapshot::Deserializer& in) {
    labels_.RestoreState(in);
    emitted_ = in.U64();
  }

 private:
  struct Subscription {
    EventSink* sink = nullptr;
    CategoryMask mask = 0;
    std::int32_t pid_filter = -1;
    // Flat staging buffer (kStagingCapacity slots) + fill count; null for
    // immediate subscriptions. Not a ring: the buffer is always drained
    // whole before it would wrap, so staging stays an indexed store.
    // unique_ptr keeps Subscription movable and the immediate case
    // allocation-free.
    std::unique_ptr<std::vector<TraceEvent>> staging;
    std::uint32_t staged = 0;
  };

  void FlushSub(Subscription& sub);

  std::vector<Subscription> subs_;
  int want_counts_[kCategoryCount] = {};
  StringInterner labels_;
  std::uint64_t emitted_ = 0;
};

// Where a subsystem publishes from: the bus plus the emitting process
// identity. Passed down into per-process components (Runtime, JavaVMExt) at
// construction so emission sites never look their own pid up.
struct Source {
  EventBus* bus = nullptr;
  std::int32_t pid = -1;
  std::int32_t uid = -1;

  bool Active(Category category) const {
    return bus != nullptr && bus->Wants(category);
  }
};

}  // namespace jgre::obs

#endif  // JGRE_OBS_EVENT_BUS_H_
