// EventBus — per-simulation publish/subscribe hub for TraceEvents.
//
// Owned by the kernel (one bus per simulated device, like the SimClock), so
// concurrent simulations never share observability state. Designed for a hot
// path that is almost always *untraced*: Wants(category) is a single array
// load, and emitters are expected to guard event construction behind it, so
// an unsubscribed category costs one predictable branch per operation —
// within the PR-1 perf envelope.
//
// Dispatch is synchronous and in subscription order. Sinks may re-enter
// Emit() (the JgrMonitor emits defense annotations while consuming a jgr
// event); they must not Subscribe/Unsubscribe from inside OnEvent.
#ifndef JGRE_OBS_EVENT_BUS_H_
#define JGRE_OBS_EVENT_BUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "obs/event.h"
#include "snapshot/serializer.h"

namespace jgre::obs {

class EventBus {
 public:
  EventBus();

  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  // Subscribes `sink` to every category in `mask`; events with a pid are
  // additionally filtered to `pid_filter` unless it is -1. A sink may be
  // subscribed at most once (re-subscribing replaces the old subscription).
  void Subscribe(EventSink* sink, CategoryMask mask,
                 std::int32_t pid_filter = -1);
  void Unsubscribe(EventSink* sink);

  // True if at least one subscriber wants `category`. Emitters check this
  // before building an event, so untraced categories stay near-free.
  bool Wants(Category category) const {
    return want_counts_[static_cast<unsigned>(category)] != 0;
  }

  void Emit(const TraceEvent& event);

  // Interns an event name, returning its dense deterministic id. Well-known
  // labels (obs::Label) are pre-interned in enum order by the constructor.
  LabelId InternLabel(std::string_view name) { return labels_.Intern(name); }
  const std::string& LabelName(LabelId id) const { return labels_.Name(id); }
  std::size_t label_count() const { return labels_.size(); }

  std::uint64_t emitted() const { return emitted_; }
  std::size_t subscriber_count() const { return subs_.size(); }

  // Checkpointing: the label interner (ids are referenced by serialized
  // TraceEvents and driver caches) and the emitted counter. Subscriptions
  // are wiring and are rebuilt by their owners after a restore.
  void SaveState(snapshot::Serializer& out) const {
    labels_.SaveState(out);
    out.U64(emitted_);
  }
  void RestoreState(snapshot::Deserializer& in) {
    labels_.RestoreState(in);
    emitted_ = in.U64();
  }

 private:
  struct Subscription {
    EventSink* sink = nullptr;
    CategoryMask mask = 0;
    std::int32_t pid_filter = -1;
  };

  std::vector<Subscription> subs_;
  int want_counts_[kCategoryCount] = {};
  StringInterner labels_;
  std::uint64_t emitted_ = 0;
};

// Where a subsystem publishes from: the bus plus the emitting process
// identity. Passed down into per-process components (Runtime, JavaVMExt) at
// construction so emission sites never look their own pid up.
struct Source {
  EventBus* bus = nullptr;
  std::int32_t pid = -1;
  std::int32_t uid = -1;

  bool Active(Category category) const {
    return bus != nullptr && bus->Wants(category);
  }
};

}  // namespace jgre::obs

#endif  // JGRE_OBS_EVENT_BUS_H_
