// MetricsRegistry — named counters, gauges and histograms per simulation.
//
// Replaces the ad-hoc tallies each bench hand-rolled. Counters are additive
// int64s, gauges are merge-by-max doubles (peaks — the only gauge semantics
// the figures need), histograms reuse common/stats' Summary. Storage is
// std::map so iteration — and therefore every export — is in lexicographic
// name order: merged output is byte-stable regardless of insertion order.
//
// Per-task registries from a --jobs-wide bench run are combined with
// Merge() in submission order, keeping the determinism contract: the merged
// table is identical for any worker count.
#ifndef JGRE_OBS_METRICS_H_
#define JGRE_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/stats.h"
#include "obs/event.h"

namespace jgre::obs {

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = default;
  MetricsRegistry& operator=(const MetricsRegistry&) = default;

  // References are stable across later registrations (std::map nodes).
  std::int64_t& Counter(std::string_view name);
  double& Gauge(std::string_view name);
  Summary& Histogram(std::string_view name);

  // Raises `name` to at least `value` (gauges record peaks).
  void GaugeMax(std::string_view name, double value);

  // Folds `other` in: counters add, gauges take the max, histogram samples
  // append (in `other`'s sample order).
  void Merge(const MetricsRegistry& other);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  const std::map<std::string, std::int64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, double, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Summary, std::less<>>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, std::int64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Summary, std::less<>> histograms_;
};

// EventSink that folds the event stream into a registry: per-category event
// counts plus the derived metrics the paper's figures care about (JGR peak,
// GC pause distribution, defense response delay, kill counts). Subscribing
// one of these is what `--metrics` does.
class MetricsSink : public EventSink {
 public:
  explicit MetricsSink(MetricsRegistry* registry);

  void OnEvent(const TraceEvent& event) override { Fold(event); }
  // Buffered-delivery path: folds a drained chunk without per-event virtual
  // dispatch. The fold is a pure reduction, so batch and per-event delivery
  // produce identical registries for the same event sequence.
  void OnBatch(const TraceEvent* events, std::size_t count) override {
    for (std::size_t i = 0; i < count; ++i) Fold(events[i]);
  }

 private:
  void Fold(const TraceEvent& event);

  MetricsRegistry* registry_;
  // Hot counters cached once; everything else is looked up on the (rare)
  // matching event.
  std::int64_t* jgr_adds_;
  std::int64_t* jgr_removes_;
  std::int64_t* ipc_calls_;
  double* jgr_peak_;
};

}  // namespace jgre::obs

#endif  // JGRE_OBS_METRICS_H_
