// JGRE_TRACE — compile-time-disableable emission for trace-only categories.
//
// Functional events (kJgr, kIpc — the defense consumes them) are emitted
// unconditionally behind a Wants() branch. Trace-only annotations (kGc,
// kLmk, kDefense) go through this macro so a -DJGRE_OBS_TRACING=OFF build
// removes them entirely: the acceptance bar is that bench_micro_hotpaths
// stays within 2% of the PR-1 envelope with tracing compiled out.
//
// Usage:
//   JGRE_TRACE(bus_ptr, obs::Category::kGc,
//              obs::MakeEvent(obs::Category::kGc, obs::Label::kGcRun, ...));
// The event expression is only evaluated when the bus exists and a
// subscriber wants the category.
#ifndef JGRE_OBS_TRACE_H_
#define JGRE_OBS_TRACE_H_

#include "obs/event_bus.h"

#if defined(JGRE_OBS_TRACING_DISABLED)
#define JGRE_TRACE_ENABLED 0
#define JGRE_TRACE(bus_ptr, category, event_expr) \
  do {                                            \
  } while (0)
#else
#define JGRE_TRACE_ENABLED 1
#define JGRE_TRACE(bus_ptr, category, event_expr)                      \
  do {                                                                 \
    ::jgre::obs::EventBus* jgre_trace_bus_ = (bus_ptr);                \
    if (jgre_trace_bus_ != nullptr && jgre_trace_bus_->Wants(category)) { \
      jgre_trace_bus_->Emit(event_expr);                               \
    }                                                                  \
  } while (0)
#endif

#endif  // JGRE_OBS_TRACE_H_
