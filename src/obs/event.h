// TraceEvent / EventSink — the unified observability model (the EventSink
// API every subsystem publishes into).
//
// One flat, trivially-copyable record describes everything the simulator can
// observe: JGR table mutations, binder transactions, GC runs, LMK/process
// kills, and defense actions. Subsystems publish TraceEvents into a
// per-simulation EventBus (see event_bus.h); consumers — the defense's
// JgrMonitor, the defender's IPC tap, trace ring buffers, metrics sinks —
// implement EventSink and subscribe by category. This replaces the three
// bespoke observation hooks the seed grew (rt::JgrObserver, direct IPC-log
// polling, and per-bench counters) with one shape.
#ifndef JGRE_OBS_EVENT_H_
#define JGRE_OBS_EVENT_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "common/types.h"

namespace jgre::obs {

// Event categories. Kept deliberately coarse: subscription filtering and the
// compile-time tracing gate both work at category granularity.
enum class Category : std::uint8_t {
  kJgr = 0,  // JNI global reference add/remove/overflow (functional: the
             // defense's monitors consume these)
  kIpc,      // binder transactions (functional: the defender's tap consumes
             // these)
  kGc,       // garbage collection runs (trace-only)
  kLmk,      // process kills, LMK decisions, soft reboots (trace-only)
  kDefense,  // monitor alarms/reports, incident handling (trace-only)
};

inline constexpr int kCategoryCount = 5;

using CategoryMask = std::uint8_t;

constexpr CategoryMask MaskOf(Category c) {
  return static_cast<CategoryMask>(1u << static_cast<unsigned>(c));
}

inline constexpr CategoryMask kAllCategories =
    static_cast<CategoryMask>((1u << kCategoryCount) - 1);

constexpr const char* CategoryName(Category c) {
  switch (c) {
    case Category::kJgr:
      return "jgr";
    case Category::kIpc:
      return "ipc";
    case Category::kGc:
      return "gc";
    case Category::kLmk:
      return "lmk";
    case Category::kDefense:
      return "defense";
  }
  return "?";
}

// Dense id of an interned event name (EventBus::InternLabel). The well-known
// labels below are pre-interned by every EventBus in enum order, so their ids
// are fixed constants across simulations — a deterministic boot yields
// deterministic trace bytes.
using LabelId = std::uint32_t;

enum class Label : LabelId {
  kJgrAdd = 0,
  kJgrRemove,
  kJgrOverflow,
  kIpcTransact,  // fallback when a node has no interned descriptor
  kGcRun,
  kLmkKill,
  kProcessKill,
  kSoftReboot,
  kMonitorAlarm,
  kMonitorReport,
  kIncidentIdentified,
  kDefenseKill,
  kIncidentRecovered,
  // Weak-global table mutations (appended: well-known ids are frozen in enum
  // order, so new labels only ever extend the tail). Emission is opt-in per
  // runtime — see rt::JavaVMExt::SetWeakEventEmission — because every
  // BinderProxy mint touches the weak table and always-on emission would
  // reshape every existing trace.
  kJgrWeakAdd,
  kJgrWeakRemove,
};

inline constexpr LabelId kWellKnownLabelCount =
    static_cast<LabelId>(Label::kJgrWeakRemove) + 1;

constexpr LabelId LabelIdOf(Label label) {
  return static_cast<LabelId>(label);
}

constexpr const char* WellKnownLabelName(Label label) {
  switch (label) {
    case Label::kJgrAdd:
      return "jgr_add";
    case Label::kJgrRemove:
      return "jgr_remove";
    case Label::kJgrOverflow:
      return "jgr_overflow";
    case Label::kIpcTransact:
      return "transact";
    case Label::kGcRun:
      return "gc";
    case Label::kLmkKill:
      return "lmk_kill";
    case Label::kProcessKill:
      return "process_kill";
    case Label::kSoftReboot:
      return "soft_reboot";
    case Label::kMonitorAlarm:
      return "monitor_alarm";
    case Label::kMonitorReport:
      return "monitor_report";
    case Label::kIncidentIdentified:
      return "incident_identified";
    case Label::kDefenseKill:
      return "defense_kill";
    case Label::kIncidentRecovered:
      return "incident_recovered";
    case Label::kJgrWeakAdd:
      return "jgr_weak_add";
    case Label::kJgrWeakRemove:
      return "jgr_weak_remove";
  }
  return "?";
}

// One observed event. 48 bytes, trivially copyable — buffering an event is a
// flat store into a ring, no allocation. Per-category argument meanings:
//   kJgr:     arg0 = JGR count after the operation, arg1 = object id
//   kIpc:     arg0 = callee pid, arg1 = (descriptor_id << 32) | code — the
//             exact defense::MakeIpcTypeKey packing, so the defender's tap
//             scores straight off the event
//   kGc:      arg0 = JGRs released, arg1 = JGR count after; dur = pause
//   kLmk:     arg0 = oom_score_adj (kills) / free kB, arg1 = critical flag
//   kDefense: see the emission sites in defense/
struct TraceEvent {
  TimeUs ts_us = 0;
  DurationUs dur_us = 0;  // 0 = instant event
  std::int64_t arg0 = 0;
  std::int64_t arg1 = 0;
  std::int32_t pid = -1;  // emitting (for kIpc: calling) process, -1 = none
  std::int32_t uid = -1;
  LabelId name = 0;
  Category category = Category::kJgr;
};

static_assert(std::is_trivially_copyable_v<TraceEvent>);
static_assert(sizeof(TraceEvent) == 48, "keep the hot-path store flat");

constexpr TraceEvent MakeEvent(Category category, LabelId name, TimeUs ts_us,
                               std::int32_t pid, std::int32_t uid,
                               std::int64_t arg0 = 0, std::int64_t arg1 = 0,
                               DurationUs dur_us = 0) {
  TraceEvent event;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.arg0 = arg0;
  event.arg1 = arg1;
  event.pid = pid;
  event.uid = uid;
  event.name = name;
  event.category = category;
  return event;
}

constexpr TraceEvent MakeEvent(Category category, Label label, TimeUs ts_us,
                               std::int32_t pid, std::int32_t uid,
                               std::int64_t arg0 = 0, std::int64_t arg1 = 0,
                               DurationUs dur_us = 0) {
  return MakeEvent(category, LabelIdOf(label), ts_us, pid, uid, arg0, arg1,
                   dur_us);
}

// The one observation interface. Implementations: defense::JgrMonitorHub,
// the defender's IPC tap, obs::TraceBuffer, obs::MetricsSink.
//
// Sinks subscribed for buffered delivery receive their events through
// OnBatch — one virtual call per drained staging chunk instead of one per
// event. The default implementation unrolls to OnEvent, so a sink only
// overrides OnBatch when it has a cheaper bulk path (or wants the per-event
// virtual dispatch gone). OnBatch implementations must not publish to the
// bus: a drain can run inside Emit() when a staging buffer fills.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void OnEvent(const TraceEvent& event) = 0;
  virtual void OnBatch(const TraceEvent* events, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) OnEvent(events[i]);
  }
};

}  // namespace jgre::obs

#endif  // JGRE_OBS_EVENT_H_
