#include "obs/event_bus.h"

#include <algorithm>
#include <cassert>

namespace jgre::obs {

EventBus::EventBus() {
  // Pre-intern the well-known labels in enum order so LabelIdOf(Label) is
  // the interned id in every simulation.
  for (LabelId id = 0; id < kWellKnownLabelCount; ++id) {
    const LabelId interned =
        labels_.Intern(WellKnownLabelName(static_cast<Label>(id)));
    assert(interned == id);
    (void)interned;
  }
}

void EventBus::Subscribe(EventSink* sink, CategoryMask mask,
                         std::int32_t pid_filter) {
  if (sink == nullptr) return;
  Unsubscribe(sink);
  subs_.push_back(Subscription{sink, mask, pid_filter});
  for (int c = 0; c < kCategoryCount; ++c) {
    if (mask & MaskOf(static_cast<Category>(c))) ++want_counts_[c];
  }
}

void EventBus::Unsubscribe(EventSink* sink) {
  auto it = std::find_if(subs_.begin(), subs_.end(),
                         [sink](const Subscription& s) {
                           return s.sink == sink;
                         });
  if (it == subs_.end()) return;
  for (int c = 0; c < kCategoryCount; ++c) {
    if (it->mask & MaskOf(static_cast<Category>(c))) --want_counts_[c];
  }
  subs_.erase(it);
}

void EventBus::Emit(const TraceEvent& event) {
  ++emitted_;
  const CategoryMask bit = MaskOf(event.category);
  // Index-based: a sink's OnEvent may re-enter Emit (defense annotations
  // published while consuming a jgr event), which must not invalidate the
  // walk. Subscribe/Unsubscribe during dispatch is not supported.
  const std::size_t count = subs_.size();
  for (std::size_t i = 0; i < count; ++i) {
    const Subscription& sub = subs_[i];
    if ((sub.mask & bit) == 0) continue;
    if (sub.pid_filter >= 0 && sub.pid_filter != event.pid) continue;
    sub.sink->OnEvent(event);
  }
}

}  // namespace jgre::obs
