#include "obs/event_bus.h"

#include <algorithm>
#include <cassert>

namespace jgre::obs {

EventBus::EventBus() {
  // Pre-intern the well-known labels in enum order so LabelIdOf(Label) is
  // the interned id in every simulation.
  for (LabelId id = 0; id < kWellKnownLabelCount; ++id) {
    const LabelId interned =
        labels_.Intern(WellKnownLabelName(static_cast<Label>(id)));
    assert(interned == id);
    (void)interned;
  }
}

void EventBus::Subscribe(EventSink* sink, CategoryMask mask,
                         std::int32_t pid_filter, Delivery delivery) {
  if (sink == nullptr) return;
  Unsubscribe(sink);
  Subscription sub;
  sub.sink = sink;
  sub.mask = mask;
  sub.pid_filter = pid_filter;
  if (delivery == Delivery::kBuffered) {
    sub.staging = std::make_unique<std::vector<TraceEvent>>(kStagingCapacity);
  }
  subs_.push_back(std::move(sub));
  for (int c = 0; c < kCategoryCount; ++c) {
    if (mask & MaskOf(static_cast<Category>(c))) ++want_counts_[c];
  }
}

void EventBus::Unsubscribe(EventSink* sink) {
  auto it = std::find_if(subs_.begin(), subs_.end(),
                         [sink](const Subscription& s) {
                           return s.sink == sink;
                         });
  if (it == subs_.end()) return;
  if (it->staging != nullptr) FlushSub(*it);
  for (int c = 0; c < kCategoryCount; ++c) {
    if (it->mask & MaskOf(static_cast<Category>(c))) --want_counts_[c];
  }
  subs_.erase(it);
}

void EventBus::Emit(const TraceEvent& event) {
  ++emitted_;
  const CategoryMask bit = MaskOf(event.category);
  // Index-based: an immediate sink's OnEvent may re-enter Emit (defense
  // annotations published while consuming a jgr event), which must not
  // invalidate the walk. Subscribe/Unsubscribe during dispatch is not
  // supported.
  const std::size_t count = subs_.size();
  for (std::size_t i = 0; i < count; ++i) {
    Subscription& sub = subs_[i];
    if ((sub.mask & bit) == 0) continue;
    if (sub.pid_filter >= 0 && sub.pid_filter != event.pid) continue;
    if (sub.staging == nullptr) {
      sub.sink->OnEvent(event);
      continue;
    }
    // Drain-while-filling: a full staging buffer is delivered in place
    // rather than overwriting unread events, so buffering never loses data.
    if (sub.staged == kStagingCapacity) FlushSub(sub);
    (*sub.staging)[sub.staged++] = event;
  }
}

void EventBus::FlushSub(Subscription& sub) {
  if (sub.staged == 0) return;
  const std::size_t n = sub.staged;
  // Reset before delivery: OnBatch must not publish to the bus, and an
  // empty count keeps pending_count honest while the chunk is consumed.
  sub.staged = 0;
  sub.sink->OnBatch(sub.staging->data(), n);
}

void EventBus::Flush() {
  const std::size_t count = subs_.size();
  for (std::size_t i = 0; i < count; ++i) {
    if (subs_[i].staging != nullptr) FlushSub(subs_[i]);
  }
}

std::uint64_t EventBus::pending_count() const {
  std::uint64_t pending = 0;
  for (const Subscription& sub : subs_) pending += sub.staged;
  return pending;
}

}  // namespace jgre::obs
