#include "obs/chrome_trace.h"

#include <cstdio>
#include <set>

namespace jgre::obs {
namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendCommon(std::string* out, const TraceEvent& e, const char* ph) {
  *out += "\"cat\":\"";
  *out += CategoryName(e.category);
  *out += "\",\"ph\":\"";
  *out += ph;
  *out += "\",\"ts\":";
  *out += std::to_string(e.ts_us);
  *out += ",\"pid\":";
  *out += std::to_string(e.pid);
  *out += ",\"tid\":";
  *out += std::to_string(e.pid);
}

void AppendEvent(std::string* out, const EventBus& bus, const TraceEvent& e) {
  *out += '{';
  switch (e.category) {
    case Category::kJgr:
      if (e.name == LabelIdOf(Label::kJgrOverflow)) {
        *out += "\"name\":\"jgr_overflow\",";
        AppendCommon(out, e, "i");
        *out += ",\"s\":\"p\",\"args\":{\"refs\":";
        *out += std::to_string(e.arg0);
        *out += '}';
      } else {
        // Counter sample: the viewer renders the jgr_count track as the
        // victim's reference-growth curve.
        *out += "\"name\":\"jgr_count\",";
        AppendCommon(out, e, "C");
        *out += ",\"args\":{\"refs\":";
        *out += std::to_string(e.arg0);
        *out += '}';
      }
      break;
    case Category::kIpc: {
      *out += "\"name\":\"";
      AppendEscaped(out, bus.LabelName(e.name));
      *out += "\",";
      AppendCommon(out, e, "i");
      *out += ",\"s\":\"t\",\"args\":{\"to_pid\":";
      *out += std::to_string(e.arg0);
      *out += ",\"code\":";
      *out += std::to_string(static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(e.arg1) & 0xffffffffu));
      *out += '}';
      break;
    }
    case Category::kGc:
      *out += "\"name\":\"gc\",";
      AppendCommon(out, e, "X");
      *out += ",\"dur\":";
      *out += std::to_string(e.dur_us);
      *out += ",\"args\":{\"freed\":";
      *out += std::to_string(e.arg0);
      *out += ",\"jgr_after\":";
      *out += std::to_string(e.arg1);
      *out += '}';
      break;
    case Category::kLmk:
    case Category::kDefense:
      *out += "\"name\":\"";
      AppendEscaped(out, bus.LabelName(e.name));
      *out += "\",";
      AppendCommon(out, e, "i");
      *out += ",\"s\":\"p\",\"args\":{\"a0\":";
      *out += std::to_string(e.arg0);
      *out += ",\"a1\":";
      *out += std::to_string(e.arg1);
      *out += '}';
      break;
  }
  *out += '}';
}

}  // namespace

std::string ChromeTraceJson(const EventBus& bus, const TraceBuffer& buffer,
                            const PidNameResolver& resolver) {
  std::string out;
  out.reserve(128 + buffer.size() * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"droppedEvents\":";
  out += std::to_string(buffer.dropped());
  out += ",\"traceEvents\":[\n";

  // Process-name metadata first, sorted by pid for byte stability.
  const auto& ring = buffer.events();
  std::set<std::int32_t> pids;
  for (std::uint64_t i = ring.first_index(); i < ring.end_index(); ++i) {
    const std::int32_t pid = ring.At(i).pid;
    if (pid >= 0) pids.insert(pid);
  }
  bool first = true;
  for (std::int32_t pid : pids) {
    std::string name = resolver ? resolver(pid) : std::string();
    if (name.empty()) name = "pid " + std::to_string(pid);
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":0,\"args\":{\"name\":\"";
    AppendEscaped(&out, name);
    out += "\"}}";
  }
  for (std::uint64_t i = ring.first_index(); i < ring.end_index(); ++i) {
    if (!first) out += ",\n";
    first = false;
    AppendEvent(&out, bus, ring.At(i));
  }
  out += "\n]}\n";
  return out;
}

bool WriteChromeTraceFile(const std::string& path, const EventBus& bus,
                          const TraceBuffer& buffer,
                          const PidNameResolver& resolver) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string json = ChromeTraceJson(bus, buffer, resolver);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace jgre::obs
