// Chrome-trace exporter: serializes a TraceBuffer to the Trace Event Format
// JSON that chrome://tracing and ui.perfetto.dev load directly.
//
// Mapping:
//   kJgr add/remove  -> "C" counter samples of the victim's jgr_count (the
//                       Fig 3 curve, drawn by the trace viewer)
//   kJgr overflow    -> process-scoped instant event
//   kIpc             -> thread-scoped instant event named by the interface
//                       descriptor, with callee pid and transaction code
//   kGc              -> "X" complete event spanning the GC pause
//   kLmk / kDefense  -> process-scoped instant events
//
// Timestamps are the simulation's virtual microseconds — exactly the unit
// the format expects. Serialization is hand-rolled and append-only: event
// order is buffer order and process metadata is sorted by pid, so the bytes
// are identical for identical simulations (the --trace determinism bar).
#ifndef JGRE_OBS_CHROME_TRACE_H_
#define JGRE_OBS_CHROME_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "obs/event_bus.h"
#include "obs/trace_buffer.h"

namespace jgre::obs {

// Resolves a pid to a process name for the trace's process_name metadata;
// return "" to fall back to "pid <n>". May be null.
using PidNameResolver = std::function<std::string(std::int32_t)>;

std::string ChromeTraceJson(const EventBus& bus, const TraceBuffer& buffer,
                            const PidNameResolver& resolver = nullptr);

// Writes ChromeTraceJson(...) to `path`; false on I/O failure.
bool WriteChromeTraceFile(const std::string& path, const EventBus& bus,
                          const TraceBuffer& buffer,
                          const PidNameResolver& resolver = nullptr);

}  // namespace jgre::obs

#endif  // JGRE_OBS_CHROME_TRACE_H_
