#include "obs/metrics.h"

#include <algorithm>

namespace jgre::obs {

std::int64_t& MetricsRegistry::Counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), 0).first;
  }
  return it->second;
}

double& MetricsRegistry::Gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), 0.0).first;
  }
  return it->second;
}

Summary& MetricsRegistry::Histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Summary{}).first;
  }
  return it->second;
}

void MetricsRegistry::GaugeMax(std::string_view name, double value) {
  double& gauge = Gauge(name);
  gauge = std::max(gauge, value);
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) Counter(name) += value;
  for (const auto& [name, value] : other.gauges_) GaugeMax(name, value);
  for (const auto& [name, summary] : other.histograms_) {
    Summary& mine = Histogram(name);
    for (double sample : summary.samples()) mine.Add(sample);
  }
}

MetricsSink::MetricsSink(MetricsRegistry* registry)
    : registry_(registry),
      jgr_adds_(&registry->Counter("jgr.adds")),
      jgr_removes_(&registry->Counter("jgr.removes")),
      ipc_calls_(&registry->Counter("ipc.calls")),
      jgr_peak_(&registry->Gauge("jgr.peak")) {}

void MetricsSink::Fold(const TraceEvent& event) {
  switch (event.category) {
    case Category::kJgr:
      if (event.name == LabelIdOf(Label::kJgrAdd)) {
        ++*jgr_adds_;
        const double count_after = static_cast<double>(event.arg0);
        if (count_after > *jgr_peak_) *jgr_peak_ = count_after;
      } else if (event.name == LabelIdOf(Label::kJgrRemove)) {
        ++*jgr_removes_;
      } else if (event.name == LabelIdOf(Label::kJgrOverflow)) {
        ++registry_->Counter("jgr.overflows");
      }
      break;
    case Category::kIpc:
      ++*ipc_calls_;
      break;
    case Category::kGc:
      ++registry_->Counter("gc.runs");
      registry_->Counter("gc.freed_refs") += event.arg0;
      registry_->Histogram("gc.pause_us").Add(
          static_cast<double>(event.dur_us));
      break;
    case Category::kLmk:
      if (event.name == LabelIdOf(Label::kLmkKill)) {
        ++registry_->Counter("lmk.kills");
      } else if (event.name == LabelIdOf(Label::kProcessKill)) {
        ++registry_->Counter("proc.kills");
      } else if (event.name == LabelIdOf(Label::kSoftReboot)) {
        ++registry_->Counter("proc.soft_reboots");
      }
      break;
    case Category::kDefense:
      if (event.name == LabelIdOf(Label::kMonitorAlarm)) {
        ++registry_->Counter("defense.alarms");
      } else if (event.name == LabelIdOf(Label::kMonitorReport)) {
        ++registry_->Counter("defense.reports");
      } else if (event.name == LabelIdOf(Label::kIncidentIdentified)) {
        ++registry_->Counter("defense.incidents");
        registry_->Histogram("defense.response_delay_ms")
            .Add(static_cast<double>(event.arg1) / 1000.0);
      } else if (event.name == LabelIdOf(Label::kDefenseKill)) {
        ++registry_->Counter("defense.kills");
      } else if (event.name == LabelIdOf(Label::kIncidentRecovered)) {
        if (event.arg1 != 0) ++registry_->Counter("defense.recovered");
      }
      break;
  }
}

}  // namespace jgre::obs
