#include "binder/service_manager.h"

#include "common/log.h"
#include "common/strings.h"

namespace jgre::binder {

Status ServiceManager::AddService(const std::string& name,
                                  const std::shared_ptr<BBinder>& service,
                                  Uid caller) {
  if (caller != kRootUid && caller != kSystemUid) {
    return PermissionDenied(
        StrCat("uid ", caller.value(), " may not register service '", name,
               "'"));
  }
  if (service == nullptr || !service->node().valid()) {
    return InvalidArgument("service must be a registered binder");
  }
  services_[name] = service->node();
  // servicemanager keeps a strong handle on every registered service, so the
  // service's JavaBBinder reference is permanent.
  driver_->PinNode(service->node());
  JGRE_LOG(kDebug, "servicemanager") << "registered " << name;
  return Status::Ok();
}

Result<StrongBinder> ServiceManager::GetService(const std::string& name,
                                                Pid caller) {
  auto it = services_.find(name);
  if (it == services_.end()) {
    return NotFound(StrCat("no service named '", name, "'"));
  }
  return driver_->MaterializeBinder(it->second, caller);
}

std::vector<std::string> ServiceManager::ListServices() const {
  std::vector<std::string> names;
  names.reserve(services_.size());
  for (const auto& [name, node] : services_) names.push_back(name);
  return names;
}

}  // namespace jgre::binder
