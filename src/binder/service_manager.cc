#include "binder/service_manager.h"

#include <algorithm>

#include "common/log.h"
#include "common/strings.h"

namespace jgre::binder {

Status ServiceManager::AddService(const std::string& name,
                                  const std::shared_ptr<BBinder>& service,
                                  Uid caller) {
  if (caller != kRootUid && caller != kSystemUid) {
    return PermissionDenied(
        StrCat("uid ", caller.value(), " may not register service '", name,
               "'"));
  }
  if (service == nullptr || !service->node().valid()) {
    return InvalidArgument("service must be a registered binder");
  }
  const StringInterner::Id id = names_.Intern(name);
  if (id >= nodes_by_name_.size()) nodes_by_name_.resize(id + 1);
  if (!nodes_by_name_[id].valid()) ++service_count_;
  nodes_by_name_[id] = service->node();
  // servicemanager keeps a strong handle on every registered service, so the
  // service's JavaBBinder reference is permanent.
  driver_->PinNode(service->node());
  JGRE_LOG(kDebug, "servicemanager") << "registered " << name;
  return Status::Ok();
}

Result<StrongBinder> ServiceManager::GetService(const std::string& name,
                                                Pid caller) {
  const StringInterner::Id id = names_.Find(name);
  if (id == StringInterner::kInvalidId || !nodes_by_name_[id].valid()) {
    return NotFound(StrCat("no service named '", name, "'"));
  }
  return driver_->MaterializeBinder(nodes_by_name_[id], caller);
}

std::vector<std::string> ServiceManager::ListServices() const {
  std::vector<std::string> names;
  names.reserve(service_count_);
  for (StringInterner::Id id = 0; id < nodes_by_name_.size(); ++id) {
    if (nodes_by_name_[id].valid()) names.push_back(names_.Name(id));
  }
  // The seed kept a std::map, so callers saw names in sorted order; preserve
  // that contract.
  std::sort(names.begin(), names.end());
  return names;
}

void ServiceManager::Clear() {
  std::fill(nodes_by_name_.begin(), nodes_by_name_.end(), NodeId{});
  service_count_ = 0;
}

}  // namespace jgre::binder
