#include "binder/ipc_log.h"

namespace jgre::binder {

void IpcLog::Push(TimeUs timestamp_us, Pid from_pid, Uid from_uid, Pid to_pid,
                  NodeId target_node, std::uint32_t code,
                  DescriptorId descriptor_id) {
  if (timestamp_.size() < capacity_) {
    timestamp_.push_back(timestamp_us);
    from_pid_.push_back(from_pid.value());
    from_uid_.push_back(from_uid.value());
    to_pid_.push_back(to_pid.value());
    node_.push_back(target_node.value());
    code_.push_back(code);
    descriptor_.push_back(descriptor_id);
  } else {
    timestamp_[slot_] = timestamp_us;
    from_pid_[slot_] = from_pid.value();
    from_uid_[slot_] = from_uid.value();
    to_pid_[slot_] = to_pid.value();
    node_[slot_] = target_node.value();
    code_[slot_] = code;
    descriptor_[slot_] = descriptor_id;
    if (++slot_ == capacity_) slot_ = 0;
  }
  ++total_pushed_;
}

IpcRecord IpcLog::At(std::uint64_t logical) const {
  const std::size_t pos = SlotOf(logical);
  IpcRecord rec;
  rec.seq = logical + 1;
  rec.timestamp_us = timestamp_[pos];
  rec.from_pid = Pid{from_pid_[pos]};
  rec.from_uid = Uid{from_uid_[pos]};
  rec.to_pid = Pid{to_pid_[pos]};
  rec.target_node = NodeId{node_[pos]};
  rec.code = code_[pos];
  rec.descriptor_id = descriptor_[pos];
  return rec;
}

void IpcLog::SaveState(snapshot::Serializer& out) const {
  out.Marker(0x49504C32);  // "IPL2": columnar spans
  out.U64(capacity_);
  out.U64(total_pushed_);
  const std::uint64_t first = first_index();
  const std::uint64_t count = size();
  for (std::uint64_t i = 0; i < count; ++i) out.U64(timestamp_[SlotOf(first + i)]);
  for (std::uint64_t i = 0; i < count; ++i) out.I64(from_pid_[SlotOf(first + i)]);
  for (std::uint64_t i = 0; i < count; ++i) out.I64(from_uid_[SlotOf(first + i)]);
  for (std::uint64_t i = 0; i < count; ++i) out.I64(to_pid_[SlotOf(first + i)]);
  for (std::uint64_t i = 0; i < count; ++i) out.I64(node_[SlotOf(first + i)]);
  for (std::uint64_t i = 0; i < count; ++i) out.U32(code_[SlotOf(first + i)]);
  for (std::uint64_t i = 0; i < count; ++i) out.U32(descriptor_[SlotOf(first + i)]);
}

void IpcLog::RestoreState(snapshot::Deserializer& in) {
  in.Marker(0x49504C32);
  capacity_ = static_cast<std::size_t>(in.U64());
  total_pushed_ = in.U64();
  slot_ = 0;
  const std::size_t count =
      total_pushed_ < capacity_ ? static_cast<std::size_t>(total_pushed_)
                                : capacity_;
  timestamp_.assign(count, 0);
  from_pid_.assign(count, 0);
  from_uid_.assign(count, 0);
  to_pid_.assign(count, 0);
  node_.assign(count, 0);
  code_.assign(count, 0);
  descriptor_.assign(count, 0);
  for (std::size_t i = 0; i < count && in.ok(); ++i) timestamp_[i] = in.U64();
  for (std::size_t i = 0; i < count && in.ok(); ++i) {
    from_pid_[i] = static_cast<std::int32_t>(in.I64());
  }
  for (std::size_t i = 0; i < count && in.ok(); ++i) {
    from_uid_[i] = static_cast<std::int32_t>(in.I64());
  }
  for (std::size_t i = 0; i < count && in.ok(); ++i) {
    to_pid_[i] = static_cast<std::int32_t>(in.I64());
  }
  for (std::size_t i = 0; i < count && in.ok(); ++i) node_[i] = in.I64();
  for (std::size_t i = 0; i < count && in.ok(); ++i) code_[i] = in.U32();
  for (std::size_t i = 0; i < count && in.ok(); ++i) descriptor_[i] = in.U32();
}

}  // namespace jgre::binder
