#include "binder/ibinder.h"

#include "binder/binder_driver.h"
#include "binder/parcel.h"

namespace jgre::binder {

Status BBinder::Transact(std::uint32_t code, const Parcel& data,
                         Parcel* reply) {
  // Same-process call: no driver hop, no transport cost, no IPC log entry.
  CallContext ctx;
  ctx.calling_pid = owner_pid_;
  ctx.self_pid = owner_pid_;
  ctx.driver = driver_;
  if (driver_ != nullptr) {
    os::Process* self = driver_->kernel().FindProcess(owner_pid_);
    if (self != nullptr) {
      ctx.calling_uid = self->uid;
      ctx.runtime = self->HasRuntime() ? self->runtime.get() : nullptr;
    }
    ctx.clock = &driver_->kernel().clock();
  }
  data.RewindRead();
  return OnTransact(code, data, reply, ctx);
}

Status BpBinder::Transact(std::uint32_t code, const Parcel& data,
                          Parcel* reply) {
  return driver_->Transact(holder_pid_, node_, code, data, reply);
}

}  // namespace jgre::binder
