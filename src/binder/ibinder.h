// IBinder / BBinder / BpBinder — the binder object model.
//
// Mirrors libbinder's shape: `BBinder` is a local object living in its owner
// process and dispatching `OnTransact`; `BpBinder` is a remote proxy carrying
// a node handle and forwarding `Transact` through the driver. The JGRE-
// relevant property is carried by the surrounding machinery: receiving a
// strong binder mints a BinderProxy Java object + one JNI global reference in
// the receiving process (see Parcel::ReadStrongBinder), and `LinkToDeath`
// mints a JavaDeathRecipient + one more global reference.
#ifndef JGRE_BINDER_IBINDER_H_
#define JGRE_BINDER_IBINDER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "common/types.h"
#include "runtime/runtime.h"

namespace jgre::binder {

class Parcel;
class BinderDriver;

// Identity of the caller and environment of the callee during a transaction.
struct CallContext {
  Pid calling_pid;
  Uid calling_uid;
  Pid self_pid;              // the process executing the handler
  rt::Runtime* runtime = nullptr;  // callee process runtime (JGR effects)
  BinderDriver* driver = nullptr;
  SimClock* clock = nullptr;
};

// IBinder.DeathRecipient.
class DeathRecipient {
 public:
  virtual ~DeathRecipient() = default;
  virtual void BinderDied(NodeId who) = 0;
};

class IBinder {
 public:
  virtual ~IBinder() = default;

  virtual NodeId node() const = 0;
  virtual bool IsProxy() const = 0;
  virtual const std::string& InterfaceDescriptor() const = 0;

  // Sends a transaction to the object. For proxies this crosses the (virtual)
  // process boundary through the driver; for local binders it dispatches
  // directly (same-process call, no IPC, no JGR side effects).
  virtual Status Transact(std::uint32_t code, const Parcel& data,
                          Parcel* reply) = 0;
};

// Local binder object. Subclasses implement OnTransact; framework services
// derive their native stubs from this.
class BBinder : public IBinder,
                public std::enable_shared_from_this<BBinder> {
 public:
  BBinder(std::string descriptor) : descriptor_(std::move(descriptor)) {}

  NodeId node() const override { return node_; }
  bool IsProxy() const override { return false; }
  const std::string& InterfaceDescriptor() const override {
    return descriptor_;
  }

  Status Transact(std::uint32_t code, const Parcel& data,
                  Parcel* reply) override;

  // Dispatch with full calling context; invoked by the driver.
  virtual Status OnTransact(std::uint32_t code, const Parcel& data,
                            Parcel* reply, const CallContext& ctx) = 0;

  // Set by BinderDriver::RegisterBinder.
  void AttachNode(BinderDriver* driver, NodeId node, Pid owner) {
    driver_ = driver;
    node_ = node;
    owner_pid_ = owner;
  }
  Pid owner_pid() const { return owner_pid_; }
  BinderDriver* driver() const { return driver_; }

 private:
  std::string descriptor_;
  BinderDriver* driver_ = nullptr;
  NodeId node_;
  Pid owner_pid_;
};

// Remote proxy. One exists per (holder process, node) at the Java level via
// the runtime's BinderProxy cache; the C++ object is a thin forwarding shim.
class BpBinder : public IBinder {
 public:
  BpBinder(BinderDriver* driver, NodeId node, Pid holder_pid,
           std::string descriptor)
      : driver_(driver),
        node_(node),
        holder_pid_(holder_pid),
        descriptor_(std::move(descriptor)) {}

  NodeId node() const override { return node_; }
  bool IsProxy() const override { return true; }
  const std::string& InterfaceDescriptor() const override {
    return descriptor_;
  }

  Status Transact(std::uint32_t code, const Parcel& data,
                  Parcel* reply) override;

  Pid holder_pid() const { return holder_pid_; }

 private:
  BinderDriver* driver_;
  NodeId node_;
  Pid holder_pid_;
  std::string descriptor_;
};

// A strong binder as materialized in a process after crossing IPC (or being
// looked up from the service manager): the C++ object plus the Java-level
// object identity whose JGR the receiving runtime holds. `java_obj` is
// invalid for same-process binders (no proxy was created).
struct StrongBinder {
  std::shared_ptr<IBinder> binder;
  ObjectId java_obj;  // BinderProxy object in the holder's runtime
  NodeId node;

  bool valid() const { return binder != nullptr; }
};

}  // namespace jgre::binder

#endif  // JGRE_BINDER_IBINDER_H_
