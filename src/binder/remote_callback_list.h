// RemoteCallbackList — android.os.RemoteCallbackList.
//
// The canonical "register a callback across IPC" container: it keeps a strong
// reference to each callback binder and links to the caller's death so dead
// clients are pruned automatically. In JGR terms, each registration pins
// **two** global references in the hosting process — the BinderProxy itself
// and the JavaDeathRecipient — until the client unregisters or dies. This is
// why the paper's vulnerable listener-style interfaces leak ~2 JGRs per call
// when fed a fresh Binder each time, and why killing the attacker fully
// recovers the table (defense phase 3).
#ifndef JGRE_BINDER_REMOTE_CALLBACK_LIST_H_
#define JGRE_BINDER_REMOTE_CALLBACK_LIST_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "binder/binder_driver.h"
#include "binder/ibinder.h"
#include "snapshot/serializer.h"

namespace jgre::binder {

class RemoteCallbackList {
 public:
  // `host` is the process whose runtime retains the callbacks (the service's
  // process — usually system_server).
  RemoteCallbackList(BinderDriver* driver, Pid host, std::string name);
  ~RemoteCallbackList();

  RemoteCallbackList(const RemoteCallbackList&) = delete;
  RemoteCallbackList& operator=(const RemoteCallbackList&) = delete;

  // Registers a callback. Returns false if this node is already registered
  // (AOSP replaces the cookie; for JGR purposes the effect is the same: no
  // additional reference is retained).
  bool Register(const StrongBinder& callback);

  bool Unregister(NodeId node);

  bool IsRegistered(NodeId node) const { return entries_.count(node) > 0; }
  std::size_t RegisteredCount() const { return entries_.size(); }

  // Unregisters everything (service teardown).
  void Kill();

  // Optional hook invoked after a callback is pruned because its owner died
  // (onCallbackDied override in AOSP); services use it to drop side state.
  void SetOnCallbackDied(std::function<void(NodeId)> fn) {
    on_callback_died_ = std::move(fn);
  }

  // beginBroadcast/finishBroadcast collapsed into one call: invokes `fn` on
  // every live callback.
  void Broadcast(const std::function<void(IBinder&)>& fn);

  std::int64_t total_registered() const { return total_registered_; }
  std::int64_t dead_callbacks() const { return dead_callbacks_; }

  // Checkpointing. Entries persist as (node, java_obj, link) triples; the
  // restore rebuilds each proxy shim from the driver's node table and hangs a
  // fresh death recipient back on the already-restored driver link. Heap
  // holds are NOT re-added — the host runtime was restored wholesale and
  // already carries them.
  void SaveState(snapshot::Serializer& out) const;
  void RestoreState(snapshot::Deserializer& in);

 private:
  class Recipient;

  void OnCallbackDied(NodeId node);
  void DropHold(ObjectId obj);
  std::vector<NodeId> SortedNodes() const;

  BinderDriver* driver_;
  Pid host_;
  std::string name_;

  struct Entry {
    StrongBinder callback;
    LinkId link = -1;
  };
  std::unordered_map<NodeId, Entry> entries_;
  std::function<void(NodeId)> on_callback_died_;
  std::int64_t total_registered_ = 0;
  std::int64_t dead_callbacks_ = 0;
};

}  // namespace jgre::binder

#endif  // JGRE_BINDER_REMOTE_CALLBACK_LIST_H_
