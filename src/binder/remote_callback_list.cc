#include "binder/remote_callback_list.h"

#include <algorithm>
#include <vector>

#include "common/log.h"

namespace jgre::binder {

// Death recipient bridging binder death back into the list. The driver drops
// its shared_ptr when the link fires or is unlinked, so a recipient never
// outlives the unlink performed in ~RemoteCallbackList.
class RemoteCallbackList::Recipient : public DeathRecipient {
 public:
  explicit Recipient(RemoteCallbackList* list) : list_(list) {}
  void BinderDied(NodeId who) override { list_->OnCallbackDied(who); }

 private:
  RemoteCallbackList* list_;
};

RemoteCallbackList::RemoteCallbackList(BinderDriver* driver, Pid host,
                                       std::string name)
    : driver_(driver), host_(host), name_(std::move(name)) {}

RemoteCallbackList::~RemoteCallbackList() { Kill(); }

void RemoteCallbackList::DropHold(ObjectId obj) {
  if (!obj.valid()) return;
  os::Process* host = driver_->kernel().FindProcess(host_);
  if (host != nullptr && host->alive && host->HasRuntime() &&
      host->runtime->heap().IsAlive(obj)) {
    host->runtime->heap().RemoveHold(obj);
  }
}

bool RemoteCallbackList::Register(const StrongBinder& callback) {
  if (!callback.valid()) return false;
  if (entries_.count(callback.node) > 0) return false;
  Entry entry;
  entry.callback = callback;
  // Strong hold on the proxy: the list's ArrayMap keeps the IInterface.
  if (callback.java_obj.valid()) {
    os::Process* host = driver_->kernel().FindProcess(host_);
    if (host != nullptr && host->alive && host->HasRuntime()) {
      host->runtime->heap().AddHold(callback.java_obj);
    }
  }
  auto link = driver_->LinkToDeath(host_, callback.node,
                                   std::make_shared<Recipient>(this));
  if (link.ok()) {
    entry.link = link.value();
  } else {
    // Client died between send and register: keep AOSP behaviour (register
    // fails, the hold is released).
    DropHold(callback.java_obj);
    return false;
  }
  entries_.emplace(callback.node, std::move(entry));
  ++total_registered_;
  return true;
}

bool RemoteCallbackList::Unregister(NodeId node) {
  auto it = entries_.find(node);
  if (it == entries_.end()) return false;
  if (it->second.link >= 0) driver_->UnlinkToDeath(it->second.link);
  DropHold(it->second.callback.java_obj);
  entries_.erase(it);
  return true;
}

void RemoteCallbackList::OnCallbackDied(NodeId node) {
  auto it = entries_.find(node);
  if (it == entries_.end()) return;
  // The driver already dropped the JavaDeathRecipient hold; release ours on
  // the proxy so the next GC reclaims both JGRs.
  DropHold(it->second.callback.java_obj);
  entries_.erase(it);
  ++dead_callbacks_;
  if (on_callback_died_) on_callback_died_(node);
  JGRE_LOG(kDebug, "RemoteCallbackList")
      << name_ << ": callback died, " << entries_.size() << " remain";
}

void RemoteCallbackList::Kill() {
  // Unregister in node order: map iteration order depends on hash-bucket
  // history, which a checkpoint restore does not reproduce.
  for (NodeId node : SortedNodes()) {
    Entry& entry = entries_.at(node);
    if (entry.link >= 0) driver_->UnlinkToDeath(entry.link);
    DropHold(entry.callback.java_obj);
  }
  entries_.clear();
}

void RemoteCallbackList::Broadcast(const std::function<void(IBinder&)>& fn) {
  // Snapshot: callbacks may die (and be erased) while being invoked. Invoke
  // in node (registration) order so a restored list broadcasts identically
  // to the cold run it was forked from.
  std::vector<std::shared_ptr<IBinder>> snapshot;
  snapshot.reserve(entries_.size());
  for (NodeId node : SortedNodes()) {
    snapshot.push_back(entries_.at(node).callback.binder);
  }
  for (auto& binder : snapshot) {
    if (binder != nullptr) fn(*binder);
  }
}

std::vector<NodeId> RemoteCallbackList::SortedNodes() const {
  std::vector<NodeId> nodes;
  nodes.reserve(entries_.size());
  for (const auto& [node, entry] : entries_) nodes.push_back(node);
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

void RemoteCallbackList::SaveState(snapshot::Serializer& out) const {
  out.U64(entries_.size());
  for (NodeId node : SortedNodes()) {
    const Entry& entry = entries_.at(node);
    out.I64(node.value());
    out.I64(entry.callback.java_obj.value());
    out.I64(entry.link);
  }
  out.I64(total_registered_);
  out.I64(dead_callbacks_);
}

void RemoteCallbackList::RestoreState(snapshot::Deserializer& in) {
  entries_.clear();
  for (std::uint64_t i = 0, n = in.U64(); i < n && in.ok(); ++i) {
    const NodeId node{in.I64()};
    Entry entry;
    entry.callback.node = node;
    entry.callback.java_obj = ObjectId{in.I64()};
    entry.callback.binder = std::make_shared<BpBinder>(
        driver_, node, host_, driver_->NodeDescriptor(node));
    entry.link = in.I64();
    if (entry.link >= 0 &&
        !driver_->ReattachDeathRecipient(entry.link,
                                         std::make_shared<Recipient>(this))) {
      in.Fail("callback list references a death link the driver lost");
      return;
    }
    entries_.emplace(node, std::move(entry));
  }
  total_registered_ = in.I64();
  dead_callbacks_ = in.I64();
}

}  // namespace jgre::binder
