#include "binder/binder_driver.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "common/log.h"
#include "common/strings.h"

namespace jgre::binder {

namespace {

// Stand-in for a live post-boot binder whose concrete implementation cannot
// be reconstructed from a checkpoint (the object behind it was created by
// dynamic app code). The checkpoint contract guarantees such nodes never
// receive a transaction after restore; if one does anyway, fail loudly
// instead of silently diverging from the cold run.
class RestoredPlaceholderBinder : public BBinder {
 public:
  explicit RestoredPlaceholderBinder(std::string descriptor)
      : BBinder(std::move(descriptor)) {}

  Status OnTransact(std::uint32_t /*code*/, const Parcel& /*data*/,
                    Parcel* /*reply*/, const CallContext& /*ctx*/) override {
    return Unavailable(
        "transaction to a placeholder binder restored from a checkpoint");
  }
};

}  // namespace

BinderDriver::BinderDriver(os::Kernel* kernel, Config config)
    : kernel_(kernel), config_(config), ipc_log_(config.ipc_log_capacity) {
  kernel_->AddDeathListener(
      [this](Pid pid, const std::string& /*reason*/) { OnProcessDeath(pid); });
}

BinderDriver::BinderDriver(os::Kernel* kernel)
    : BinderDriver(kernel, Config{}) {}

NodeId BinderDriver::RegisterBinder(const std::shared_ptr<BBinder>& binder,
                                    Pid owner) {
  assert(binder != nullptr);
  os::Process* proc = kernel_->FindProcess(owner);
  assert(proc != nullptr && proc->alive && "binder owner must be alive");
  const NodeId node_id{next_node_++};
  Node node;
  node.id = node_id;
  node.owner = owner;
  node.descriptor_id = descriptors_.Intern(binder->InterfaceDescriptor());
  node.strong = binder;
  if (proc->HasRuntime()) {
    // The Java-side Binder object: JavaBBinder takes a global ref in the
    // *sender* process (android_util_Binder.cpp), held while the kernel
    // keeps the node referenced.
    auto obj = proc->runtime->AllocManagedObject(
        rt::ObjectKind::kJavaBBinder, "JavaBBinder:",
        descriptors_.Name(node.descriptor_id));
    if (obj.ok()) {
      node.sender_obj = obj.value();
      proc->runtime->heap().AddHold(node.sender_obj);
    }
    AttachRuntimeHooks(owner, proc->runtime.get());
  }
  binder->AttachNode(this, node_id, owner);
  nodes_.push_back(std::move(node));
  return node_id;
}

BinderDriver::Node* BinderDriver::FindNode(NodeId node) {
  const std::int64_t id = node.value();
  if (id < 1 || id >= next_node_) return nullptr;
  return &nodes_[static_cast<std::size_t>(id - 1)];
}

const BinderDriver::Node* BinderDriver::FindNode(NodeId node) const {
  const std::int64_t id = node.value();
  if (id < 1 || id >= next_node_) return nullptr;
  return &nodes_[static_cast<std::size_t>(id - 1)];
}

bool BinderDriver::IsNodeAlive(NodeId node) const {
  const Node* n = FindNode(node);
  return n != nullptr && !n->dead;
}

Pid BinderDriver::NodeOwner(NodeId node) const {
  const Node* n = FindNode(node);
  return n == nullptr ? Pid{} : n->owner;
}

void BinderDriver::AttachRuntimeHooks(Pid pid, rt::Runtime* runtime) {
  const std::size_t slot = static_cast<std::size_t>(pid.value() - 1);
  if (slot >= hooked_runtimes_.size()) hooked_runtimes_.resize(slot + 1, 0);
  if (hooked_runtimes_[slot] != 0) return;
  hooked_runtimes_[slot] = 1;
  runtime->SetProxyCollectHandler(
      [this, pid](NodeId node) { OnProxyCollected(pid, node); });
}

Result<StrongBinder> BinderDriver::MaterializeBinder(NodeId node_id,
                                                     Pid holder) {
  Node* node = FindNode(node_id);
  if (node == nullptr || node->dead) {
    return Unavailable("DEAD_OBJECT: binder node is gone");
  }
  if (!kernel_->IsAlive(node->owner)) {
    return Unavailable("DEAD_OBJECT: owner process died");
  }
  if (holder == node->owner) {
    // Same-process: the local object itself, no proxy, no JGR.
    return StrongBinder{node->strong, ObjectId{}, node_id};
  }
  os::Process* holder_proc = kernel_->FindProcess(holder);
  if (holder_proc == nullptr || !holder_proc->alive) {
    return FailedPrecondition("holder process is dead");
  }
  StrongBinder out;
  out.node = node_id;
  const std::string& descriptor = descriptors_.Name(node->descriptor_id);
  out.binder = std::make_shared<BpBinder>(this, node_id, holder, descriptor);
  if (holder_proc->HasRuntime()) {
    AttachRuntimeHooks(holder, holder_proc->runtime.get());
    auto proxy =
        holder_proc->runtime->GetOrCreateBinderProxy(node_id, descriptor);
    if (!proxy.ok()) return proxy.status();  // JGR table overflow in holder
    out.java_obj = proxy.value();
    auto it =
        std::lower_bound(node->holders.begin(), node->holders.end(), holder);
    if (it == node->holders.end() || *it != holder) {
      node->holders.insert(it, holder);
    }
    // Inside a dispatch frame the received jobject also takes a local
    // reference, released when the frame pops.
    if (holder_proc->runtime->InLocalFrame()) {
      auto local = holder_proc->runtime->AddLocalRef(proxy.value());
      if (!local.ok()) return local.status();  // local table overflow (512)
    }
  }
  return out;
}

void BinderDriver::ReleaseNode(NodeId node_id) {
  Node* node = FindNode(node_id);
  if (node == nullptr || node->dead) return;
  node->dead = true;
  node->strong.reset();
  ReleaseSenderRef(*node);
  FireDeathLinks(node_id);
}

void BinderDriver::ReleaseSenderRef(Node& node) {
  if (!node.sender_obj.valid()) return;
  os::Process* owner = kernel_->FindProcess(node.owner);
  if (owner != nullptr && owner->alive && owner->HasRuntime() &&
      owner->runtime->heap().IsAlive(node.sender_obj)) {
    owner->runtime->heap().RemoveHold(node.sender_obj);
  }
  node.sender_obj = ObjectId{};
}

void BinderDriver::PinNode(NodeId node_id) {
  if (Node* node = FindNode(node_id); node != nullptr) node->pinned = true;
}

void BinderDriver::OnProxyCollected(Pid holder, NodeId node_id) {
  Node* node = FindNode(node_id);
  if (node == nullptr) return;
  auto it =
      std::lower_bound(node->holders.begin(), node->holders.end(), holder);
  if (it != node->holders.end() && *it == holder) node->holders.erase(it);
  if (node->holders.empty() && !node->dead && !node->pinned) {
    // Last remote ref dropped: the kernel releases the node; the sender-side
    // JavaBBinder becomes collectable (its JGR goes with it at next GC).
    ReleaseSenderRef(*node);
  }
}

void BinderDriver::OnProcessDeath(Pid pid) {
  // 1. Nodes owned by the dead process die; their death links fire.
  std::vector<NodeId> dead_nodes;
  for (Node& node : nodes_) {
    if (node.owner == pid && !node.dead) {
      node.dead = true;
      node.strong.reset();
      node.sender_obj = ObjectId{};  // runtime is gone
      dead_nodes.push_back(node.id);
    }
  }
  for (NodeId node : dead_nodes) FireDeathLinks(node);
  // 2. Proxies held by the dead process disappear with its runtime.
  for (Node& node : nodes_) {
    auto it = std::lower_bound(node.holders.begin(), node.holders.end(), pid);
    if (it != node.holders.end() && *it == pid) {
      node.holders.erase(it);
      if (node.holders.empty() && !node.dead && !node.pinned) {
        ReleaseSenderRef(node);
      }
    }
  }
  // 3. Death links whose holder died are dropped silently (and removed from
  // their node's link index).
  for (auto it = links_.begin(); it != links_.end();) {
    if (it->second.holder == pid) {
      if (Node* node = FindNode(it->second.node); node != nullptr) {
        auto& ids = node->death_links;
        auto pos = std::lower_bound(ids.begin(), ids.end(), it->second.id);
        if (pos != ids.end() && *pos == it->second.id) ids.erase(pos);
      }
      it = links_.erase(it);
    } else {
      ++it;
    }
  }
}

void BinderDriver::FireDeathLinks(NodeId node) {
  // Consume the node's link index first: recipients may unlink or register
  // new links (on other nodes, or re-register on this one) during callbacks.
  // The index is maintained in ascending link-id (registration) order, so
  // firing is deterministic across a checkpoint restore.
  Node* n = FindNode(node);
  if (n == nullptr || n->death_links.empty()) return;
  std::vector<LinkId> ids = std::move(n->death_links);
  n->death_links.clear();
  std::vector<DeathLink> fired;
  fired.reserve(ids.size());
  for (LinkId id : ids) {
    auto it = links_.find(id);
    if (it == links_.end()) continue;
    fired.push_back(std::move(it->second));
    links_.erase(it);
  }
  for (DeathLink& link : fired) {
    os::Process* holder = kernel_->FindProcess(link.holder);
    if (holder == nullptr || !holder->alive) continue;
    if (link.recipient != nullptr) link.recipient->BinderDied(node);
    // JavaDeathRecipient::binderDied clears its global ref after dispatch.
    if (holder->HasRuntime() &&
        holder->runtime->heap().IsAlive(link.recipient_obj)) {
      holder->runtime->heap().RemoveHold(link.recipient_obj);
    }
  }
}

Result<LinkId> BinderDriver::LinkToDeath(
    Pid holder, NodeId node_id, std::shared_ptr<DeathRecipient> recipient) {
  Node* node = FindNode(node_id);
  if (node == nullptr || node->dead || !kernel_->IsAlive(node->owner)) {
    return Unavailable("DEAD_OBJECT: cannot link to dead binder");
  }
  os::Process* holder_proc = kernel_->FindProcess(holder);
  if (holder_proc == nullptr || !holder_proc->alive) {
    return FailedPrecondition("holder process is dead");
  }
  DeathLink link;
  link.id = next_link_++;
  link.node = node_id;
  link.holder = holder;
  link.recipient = std::move(recipient);
  if (holder_proc->HasRuntime()) {
    // JavaDeathRecipient holds one JGR on the recipient object while linked.
    auto obj = holder_proc->runtime->AllocManagedObject(
        rt::ObjectKind::kDeathRecipient, "JavaDeathRecipient:",
        descriptors_.Name(node->descriptor_id));
    if (!obj.ok()) return obj.status();  // JGR overflow in the holder
    link.recipient_obj = obj.value();
    holder_proc->runtime->heap().AddHold(link.recipient_obj);
  }
  const LinkId id = link.id;
  // Link ids are monotonically increasing, so appending keeps the node's
  // index sorted.
  node->death_links.push_back(id);
  links_.emplace(id, std::move(link));
  return id;
}

bool BinderDriver::ReattachDeathRecipient(
    LinkId link_id, std::shared_ptr<DeathRecipient> recipient) {
  auto it = links_.find(link_id);
  if (it == links_.end()) return false;
  it->second.recipient = std::move(recipient);
  return true;
}

bool BinderDriver::UnlinkToDeath(LinkId link_id) {
  auto it = links_.find(link_id);
  if (it == links_.end()) return false;
  const DeathLink& link = it->second;
  os::Process* holder = kernel_->FindProcess(link.holder);
  if (holder != nullptr && holder->alive && holder->HasRuntime() &&
      holder->runtime->heap().IsAlive(link.recipient_obj)) {
    holder->runtime->heap().RemoveHold(link.recipient_obj);
  }
  if (Node* node = FindNode(link.node); node != nullptr) {
    auto& ids = node->death_links;
    auto pos = std::lower_bound(ids.begin(), ids.end(), link_id);
    if (pos != ids.end() && *pos == link_id) ids.erase(pos);
  }
  links_.erase(it);
  return true;
}

Status BinderDriver::Transact(Pid caller, NodeId target, std::uint32_t code,
                              const Parcel& data, Parcel* reply) {
  const os::Process* caller_proc = kernel_->FindProcess(caller);
  if (caller_proc == nullptr || !caller_proc->alive) {
    return FailedPrecondition("calling process is dead");
  }
  Node* node = FindNode(target);
  if (node == nullptr || node->dead || !kernel_->IsAlive(node->owner)) {
    return Unavailable("DEAD_OBJECT: transaction to dead binder");
  }
  os::Process* target_proc = kernel_->FindProcess(node->owner);
  if (target_proc->HasRuntime() && target_proc->runtime->aborted()) {
    return Unavailable("DEAD_OBJECT: target runtime aborted");
  }

  // Transport cost: copy in/out through the driver.
  const double payload_kb =
      static_cast<double>(data.payload_bytes()) / 1024.0;
  DurationUs cost = config_.base_transact_cost_us +
                    static_cast<DurationUs>(payload_kb * config_.us_per_kb);
  if (defense_logging_) {
    cost += config_.defense_log_base_us +
            static_cast<DurationUs>(config_.defense_log_fraction *
                                    static_cast<double>(cost));
  }
  kernel_->clock().AdvanceUs(cost);

  // Top-level admission gate (mitigations). Denied calls have already paid
  // the transport cost, but never reach the callee: no log record, no kIpc
  // event. The post-transact hook still fires so the system keeps breathing
  // (GC, defense pump) under a deny-spinning caller.
  const bool top_level = transact_depth_ == 0;
  TransactInfo info;
  if (top_level && (transact_gate_ || transact_observer_)) {
    info.caller = caller;
    info.caller_uid = caller_proc->uid;
    info.target_owner = node->owner;
    info.target = target;
    info.descriptor_id = node->descriptor_id;
    info.code = code;
  }
  if (top_level && transact_gate_) {
    Status admitted = transact_gate_(info);
    if (!admitted.ok()) {
      if (post_transact_hook_) post_transact_hook_();
      return admitted;
    }
    // The gate may have run transactions of its own (it shouldn't) or
    // advanced the clock (backoff mitigations do); the node table is append-
    // only outside reboot, so `node` stays valid here.
  }

  if (defense_logging_) {
    AppendLog(caller, caller_proc->uid, node->owner, target, code,
              node->descriptor_id);
  }
  if (obs::EventBus& bus = kernel_->bus();
      bus.Wants(obs::Category::kIpc)) {
    // arg1 packs (descriptor_id, code) exactly like defense::MakeIpcTypeKey,
    // so the defender can score straight off the event stream.
    bus.Emit(obs::MakeEvent(
        obs::Category::kIpc, DescriptorLabel(node->descriptor_id),
        kernel_->clock().NowUs(), caller.value(), caller_proc->uid.value(),
        node->owner.value(),
        static_cast<std::int64_t>(
            (static_cast<std::uint64_t>(node->descriptor_id) << 32) | code)));
  }

  ++total_transactions_;
  CallContext ctx;
  ctx.calling_pid = caller;
  ctx.calling_uid = caller_proc->uid;
  ctx.self_pid = node->owner;
  ctx.runtime = target_proc->HasRuntime() ? target_proc->runtime.get() : nullptr;
  ctx.driver = this;
  ctx.clock = &kernel_->clock();

  data.RewindRead();
  ++transact_depth_;
  // The callee's native dispatch runs inside a JNI local frame: every local
  // reference it creates is released when the frame pops (the reason only
  // global references leak across calls, §I).
  rt::IndirectReferenceTable::Cookie local_frame = 0;
  const bool framed = ctx.runtime != nullptr && !ctx.runtime->aborted();
  if (framed) local_frame = ctx.runtime->PushLocalFrame();
  // Keep the callee alive across the handler even if it is unregistered
  // mid-call.
  std::shared_ptr<BBinder> callee = node->strong;
  Status status = callee != nullptr
                      ? callee->OnTransact(code, data, reply, ctx)
                      : Unavailable("DEAD_OBJECT: node lost its object");
  if (framed && !ctx.runtime->aborted()) {
    ctx.runtime->PopLocalFrame(local_frame);
  }
  --transact_depth_;
  if (transact_depth_ == 0) {
    if (transact_observer_) transact_observer_(info, status);
    if (post_transact_hook_) post_transact_hook_();
  }
  return status;
}

obs::LabelId BinderDriver::DescriptorLabel(DescriptorId id) {
  if (id == StringInterner::kInvalidId) {
    return obs::LabelIdOf(obs::Label::kIpcTransact);
  }
  if (descriptor_labels_.size() <= id) {
    descriptor_labels_.resize(id + 1, StringInterner::kInvalidId);
  }
  if (descriptor_labels_[id] == StringInterner::kInvalidId) {
    descriptor_labels_[id] = kernel_->bus().InternLabel(descriptors_.Name(id));
  }
  return descriptor_labels_[id];
}

void BinderDriver::AppendLog(Pid from, Uid from_uid, Pid to, NodeId node,
                             std::uint32_t code, DescriptorId descriptor_id) {
  ipc_log_.Push(kernel_->clock().NowUs(), from, from_uid, to, node, code,
                descriptor_id);
}

Result<std::size_t> BinderDriver::VisitIpcLogSince(
    Uid caller, std::uint64_t since_seq,
    const std::function<void(const IpcRecord&)>& visitor,
    std::size_t max_records) const {
  if (caller != kRootUid && caller != kSystemUid) {
    return PermissionDenied(
        "/proc/jgre_ipc_log is only readable by system services");
  }
  // Seq s lives at logical index s - 1 (seqs start at 1 and are assigned in
  // push order), so the window start is a constant-time computation.
  return ipc_log_.VisitSince(since_seq > 0 ? since_seq - 1 : 0, max_records,
                             visitor);
}

Result<std::vector<IpcRecord>> BinderDriver::ReadIpcLog(
    Uid caller, std::uint64_t since_seq, std::size_t max_records) const {
  std::vector<IpcRecord> out;
  auto visited = VisitIpcLogSince(
      caller, since_seq, [&out](const IpcRecord& rec) { out.push_back(rec); },
      max_records);
  if (!visited.ok()) return visited.status();
  return out;
}

const std::string& BinderDriver::NodeDescriptor(NodeId node) const {
  static const std::string kEmpty;
  const Node* n = FindNode(node);
  if (n == nullptr || n->descriptor_id == StringInterner::kInvalidId) {
    return kEmpty;
  }
  return descriptors_.Name(n->descriptor_id);
}

void BinderDriver::SaveState(snapshot::Serializer& out) const {
  out.Marker(0x42445232);  // "BDR2": columnar IPC log, derived seq counter
  descriptors_.SaveState(out);
  out.I64(next_node_);
  for (const Node& node : nodes_) {  // vector order == id order
    out.I64(node.id.value());
    out.I64(node.owner.value());
    out.U32(node.descriptor_id);
    out.Bool(node.strong != nullptr);
    out.I64(node.sender_obj.value());
    out.U64(node.holders.size());
    for (Pid holder : node.holders) out.I64(holder.value());  // kept sorted
    out.Bool(node.pinned);
    out.Bool(node.dead);
  }
  out.I64(next_link_);
  std::vector<LinkId> link_ids;
  link_ids.reserve(links_.size());
  for (const auto& [id, link] : links_) link_ids.push_back(id);
  std::sort(link_ids.begin(), link_ids.end());
  out.U64(link_ids.size());
  for (LinkId id : link_ids) {
    const DeathLink& link = links_.at(id);
    out.I64(link.id);
    out.I64(link.node.value());
    out.I64(link.holder.value());
    out.I64(link.recipient_obj.value());
  }
  ipc_log_.SaveState(out);
  out.I64(total_transactions_);
  out.Bool(defense_logging_);
  std::uint64_t hooked = 0;
  for (std::uint8_t flag : hooked_runtimes_) hooked += flag;
  out.U64(hooked);
  for (std::size_t slot = 0; slot < hooked_runtimes_.size(); ++slot) {
    if (hooked_runtimes_[slot] != 0) {
      out.I64(static_cast<std::int64_t>(slot) + 1);  // ascending pids
    }
  }
}

void BinderDriver::RestoreState(snapshot::Deserializer& in) {
  in.Marker(0x42445232);
  descriptors_.RestoreState(in);
  descriptor_labels_.clear();  // refilled lazily; interning is idempotent
  const std::size_t boot_nodes = nodes_.size();
  next_node_ = in.I64();
  const std::int64_t node_count = next_node_ - 1;
  if (node_count < static_cast<std::int64_t>(boot_nodes)) {
    in.Fail("checkpoint has fewer binder nodes than the fresh boot");
    return;
  }
  for (std::int64_t i = 0; i < node_count && in.ok(); ++i) {
    const NodeId id{in.I64()};
    const Pid owner{static_cast<std::int32_t>(in.I64())};
    const DescriptorId descriptor_id = in.U32();
    const bool has_strong = in.Bool();
    const ObjectId sender_obj{in.I64()};
    std::vector<Pid> holders;  // saved sorted
    for (std::uint64_t h = 0, n = in.U64(); h < n && in.ok(); ++h) {
      holders.push_back(Pid{static_cast<std::int32_t>(in.I64())});
    }
    const bool pinned = in.Bool();
    const bool dead = in.Bool();
    if (!in.ok()) return;
    if (i < static_cast<std::int64_t>(boot_nodes)) {
      // Boot-created node: the fresh boot recreated the same object. Validate
      // the identity, then overwrite the mutable state.
      Node& node = nodes_[static_cast<std::size_t>(i)];
      if (node.id != id || node.owner != owner ||
          node.descriptor_id != descriptor_id) {
        in.Fail("boot-time binder node mismatch on restore");
        return;
      }
      if (!has_strong || dead) node.strong.reset();
      node.sender_obj = sender_obj;
      node.holders = std::move(holders);
      node.death_links.clear();  // rebuilt from the restored link table
      node.pinned = pinned;
      node.dead = dead;
    } else {
      Node node;
      node.id = id;
      node.owner = owner;
      node.descriptor_id = descriptor_id;
      node.sender_obj = sender_obj;
      node.holders = std::move(holders);
      node.pinned = pinned;
      node.dead = dead;
      if (has_strong && !dead) {
        node.strong = std::make_shared<RestoredPlaceholderBinder>(
            descriptors_.Name(descriptor_id));
        node.strong->AttachNode(this, id, owner);
      }
      nodes_.push_back(std::move(node));
    }
  }
  next_link_ = in.I64();
  links_.clear();
  for (std::uint64_t i = 0, n = in.U64(); i < n && in.ok(); ++i) {
    DeathLink link;
    link.id = in.I64();
    link.node = NodeId{in.I64()};
    link.holder = Pid{static_cast<std::int32_t>(in.I64())};
    link.recipient_obj = ObjectId{in.I64()};
    // Links were saved sorted by id, so appending keeps each node's index
    // sorted.
    if (Node* node = FindNode(link.node); node != nullptr) {
      node->death_links.push_back(link.id);
    }
    links_.emplace(link.id, std::move(link));
  }
  ipc_log_.RestoreState(in);
  total_transactions_ = in.I64();
  defense_logging_ = in.Bool();
  hooked_runtimes_.clear();
  for (std::uint64_t i = 0, n = in.U64(); i < n && in.ok(); ++i) {
    const Pid pid{static_cast<std::int32_t>(in.I64())};
    const std::size_t slot = static_cast<std::size_t>(pid.value() - 1);
    if (slot >= hooked_runtimes_.size()) hooked_runtimes_.resize(slot + 1, 0);
    hooked_runtimes_[slot] = 1;
    os::Process* proc = kernel_->FindProcess(pid);
    if (proc != nullptr && proc->alive && proc->HasRuntime()) {
      proc->runtime->SetProxyCollectHandler(
          [this, pid](NodeId node) { OnProxyCollected(pid, node); });
    }
  }
}

std::string BinderDriver::RenderIpcLogProcfs(std::size_t max_lines) const {
  std::ostringstream os;
  os << "seq timestamp_us from_pid from_uid to_pid target_node code iface\n";
  std::uint64_t index = ipc_log_.first_index();
  if (ipc_log_.size() > max_lines) {
    index = ipc_log_.end_index() - max_lines;
  }
  for (; index < ipc_log_.end_index(); ++index) {
    const IpcRecord& r = ipc_log_.At(index);
    os << r.seq << " " << r.timestamp_us << " " << r.from_pid.value() << " "
       << r.from_uid.value() << " " << r.to_pid.value() << " "
       << r.target_node.value() << " " << r.code << " "
       << descriptors_.Name(r.descriptor_id) << "\n";
  }
  return os.str();
}

}  // namespace jgre::binder
