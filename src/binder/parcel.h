// Parcel — typed transaction payload container.
//
// Values are written by the sender and read sequentially by the receiver.
// The JGRE-critical operation is ReadStrongBinder: like
// `Parcel.nativeReadStrongBinder` → `javaObjectForIBinder`, reading a strong
// binder in a process either returns the cached BinderProxy for that node or
// creates a new proxy taking **one JNI global reference** in the reading
// process. This is the Java JGR entry the paper's extractor identifies and
// the channel through which IPC callers push JGRs into victims.
#ifndef JGRE_BINDER_PARCEL_H_
#define JGRE_BINDER_PARCEL_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "binder/ibinder.h"

namespace jgre::binder {

class BinderDriver;

class Parcel {
 public:
  Parcel() = default;

  // --- writers (sender side) ----------------------------------------------

  void WriteInterfaceToken(const std::string& descriptor);
  void WriteInt32(std::int32_t value);
  void WriteInt64(std::int64_t value);
  void WriteBool(bool value);
  void WriteString(const std::string& value);
  // Only the size matters for the cost model; contents are not simulated.
  void WriteByteArray(std::uint64_t num_bytes);
  // Flattens the binder to its node handle (flat_binder_object).
  void WriteStrongBinder(const std::shared_ptr<IBinder>& binder);
  void WriteNullBinder();
  // A file descriptor (BINDER_TYPE_FD): the driver dups it into the receiver
  // on read — the §VI resource the JGRE analysis does not cover.
  void WriteFileDescriptor();

  // --- readers (receiver side) ----------------------------------------------

  // Readers validate the value kind at the cursor; a type confusion returns
  // kInvalidArgument (binder would signal a bad parcel).
  Status EnforceInterface(const std::string& descriptor) const;
  Result<std::int32_t> ReadInt32() const;
  Result<std::int64_t> ReadInt64() const;
  Result<bool> ReadBool() const;
  Result<std::string> ReadString() const;
  Result<std::uint64_t> ReadByteArray() const;

  // Materializes the strong binder in the receiving process identified by
  // `ctx` — creating the BinderProxy object and its JGR when the node is new
  // to that process. Returns an invalid StrongBinder for a null binder.
  Result<StrongBinder> ReadStrongBinder(const CallContext& ctx) const;

  // Dups the fd into the receiving process's table (one open fd); fails with
  // kResourceExhausted at RLIMIT_NOFILE — fatally for system_server.
  Status ReadFileDescriptor(const CallContext& ctx) const;

  void RewindRead() const { cursor_ = 0; }

  // Total payload size for the transport cost model.
  std::uint64_t payload_bytes() const { return payload_bytes_; }
  std::size_t value_count() const { return values_.size(); }
  bool has_binders() const { return has_binders_; }

 private:
  struct InterfaceToken {
    std::string descriptor;
  };
  struct FlatBinder {
    NodeId node;  // invalid => null binder
  };
  struct ByteArray {
    std::uint64_t size;
  };
  struct FileDescriptor {};
  using Value = std::variant<InterfaceToken, std::int32_t, std::int64_t, bool,
                             std::string, ByteArray, FlatBinder,
                             FileDescriptor>;

  template <typename T>
  Result<T> ReadValue() const;

  std::vector<Value> values_;
  mutable std::size_t cursor_ = 0;
  std::uint64_t payload_bytes_ = 0;
  bool has_binders_ = false;
};

}  // namespace jgre::binder

#endif  // JGRE_BINDER_PARCEL_H_
