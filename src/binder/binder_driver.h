// BinderDriver — the kernel binder module.
//
// Routes transactions between processes, maintains the node/handle tables,
// delivers death notifications, and — when the paper's defense is enabled —
// records every transaction into an in-memory IPC log exported through
// `/proc/jgre_ipc_log` ("from pid, to pid, target handle, to node and
// timestamp", §V.B). Because the log is produced in the kernel, a malicious
// app cannot fake its own IPC history; this is the trust anchor of the
// defense's scoring phase.
//
// JGR bookkeeping at the driver boundary:
// * materializing a binder in a holder process creates the BinderProxy + JGR
//   through the holder runtime (cached per node, as in libbinder);
// * the sender's JavaBBinder holds a JGR in the *sender* process for as long
//   as any remote proxy exists (the kernel keeps a ref on the node);
// * LinkToDeath allocates a JavaDeathRecipient + JGR in the holder process,
//   released when the link fires or is dropped.
#ifndef JGRE_BINDER_BINDER_DRIVER_H_
#define JGRE_BINDER_BINDER_DRIVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "common/types.h"
#include "binder/ibinder.h"
#include "binder/ipc_log.h"
#include "binder/parcel.h"
#include "obs/event_bus.h"
#include "os/kernel.h"
#include "snapshot/serializer.h"

namespace jgre::binder {

using LinkId = std::int64_t;

class BinderDriver {
 public:
  struct Config {
    // Transport cost model (virtual time). Calibrated so a small-payload
    // call costs ~0.2 ms and a 500 KB payload ~3.3 ms on the stock path,
    // matching the scale of Fig. 10.
    DurationUs base_transact_cost_us = 130;
    double us_per_kb = 6.5;
    // Defense-extended driver: log every transaction. The paper measures a
    // worst-case 1.247 ms extra per call (~46.7%): a constant record write
    // plus a payload-proportional part (metadata/digest copy).
    DurationUs defense_log_base_us = 45;
    double defense_log_fraction = 0.40;
    std::size_t ipc_log_capacity = 1 << 21;
  };

  BinderDriver(os::Kernel* kernel, Config config);
  BinderDriver(os::Kernel* kernel);

  BinderDriver(const BinderDriver&) = delete;
  BinderDriver& operator=(const BinderDriver&) = delete;

  os::Kernel& kernel() { return *kernel_; }

  // --- Node registry ---------------------------------------------------------

  // Registers a local binder owned by `owner`, allocating the node and the
  // sender-side JavaBBinder (one JGR in the owner process, held while the
  // kernel keeps the node referenced). Returns the node id.
  NodeId RegisterBinder(const std::shared_ptr<BBinder>& binder, Pid owner);

  // Creates a binder of type T owned by `owner` and registers it.
  template <typename T, typename... Args>
  std::shared_ptr<T> MakeBinder(Pid owner, Args&&... args) {
    auto obj = std::make_shared<T>(std::forward<Args>(args)...);
    RegisterBinder(obj, owner);
    return obj;
  }

  // Materializes `node` in `holder`: same-process nodes yield the local
  // BBinder (no JGR); remote nodes yield a proxy, minting the BinderProxy +
  // JGR on first sight (javaObjectForIBinder).
  Result<StrongBinder> MaterializeBinder(NodeId node, Pid holder);

  bool IsNodeAlive(NodeId node) const;
  Pid NodeOwner(NodeId node) const;

  // Marks a node as permanently referenced (servicemanager holds a handle to
  // every registered service forever), so its owner-side JavaBBinder is never
  // released by proxy churn.
  void PinNode(NodeId node);

  // Drops the kernel's reference to a node whose owner discarded the object
  // (e.g. a service deleting a per-client session binder): the node dies,
  // death links fire, and the owner-side JavaBBinder becomes collectable.
  void ReleaseNode(NodeId node);

  // --- Transactions ---------------------------------------------------------

  Status Transact(Pid caller, NodeId target, std::uint32_t code,
                  const Parcel& data, Parcel* reply);

  // Identity of a top-level transaction, snapshotted before dispatch (node
  // pointers can dangle across OnTransact — registration may reallocate the
  // node table).
  struct TransactInfo {
    Pid caller;
    Uid caller_uid;
    Pid target_owner;
    NodeId target;
    DescriptorId descriptor_id = 0;
    std::uint32_t code = 0;
  };
  // Admission gate, consulted for every *top-level* transaction after the
  // transport cost is charged but before logging/dispatch. A non-OK status
  // denies the call: the callee never runs, no IPC-log record or kIpc event
  // is produced (the call never reached the victim), and the status is
  // returned to the caller verbatim. The post-transact hook still runs, so
  // virtual time and GC cadence advance even for a caller spinning on
  // denials. Arms-race mitigations (per-UID quotas, rate limits) install
  // here — the seam a real deployment would patch into the binder driver.
  using TransactGate = std::function<Status(const TransactInfo&)>;
  // Completion observer for every admitted top-level transaction, invoked
  // after dispatch (before the post-transact hook) with the final status.
  using TransactObserver =
      std::function<void(const TransactInfo&, const Status&)>;

  void SetTransactGate(TransactGate gate) { transact_gate_ = std::move(gate); }
  void SetTransactObserver(TransactObserver observer) {
    transact_observer_ = std::move(observer);
  }

  // Hook invoked after every *top-level* transaction returns; the core
  // facade uses it for GC cadence, soft-reboot handling and defense pumping.
  void SetPostTransactHook(std::function<void()> hook) {
    post_transact_hook_ = std::move(hook);
  }

  // --- Death notification ------------------------------------------------------

  Result<LinkId> LinkToDeath(Pid holder, NodeId node,
                             std::shared_ptr<DeathRecipient> recipient);
  bool UnlinkToDeath(LinkId link);

  // Re-attaches the recipient callback of a restored death link. Checkpoints
  // persist links without their recipients (a DeathRecipient is live wiring);
  // the owning component recreates its recipient object during its own
  // RestoreState and hangs it back on the link here. Returns false if no such
  // link exists.
  bool ReattachDeathRecipient(LinkId link,
                              std::shared_ptr<DeathRecipient> recipient);

  // --- IPC log (defense) -------------------------------------------------------

  // Turns the extended-driver logging on/off (stock Android: off).
  void SetDefenseLogging(bool enabled) { defense_logging_ = enabled; }
  bool defense_logging() const { return defense_logging_; }

  // Reads log records with seq >= since_seq, at most `max_records` of them
  // (oldest first). Permission mirrors the procfs file mode: only
  // root/system may read (§V.B). The window is located in O(1) via the ring
  // buffer's logical indices; only the returned records are copied.
  Result<std::vector<IpcRecord>> ReadIpcLog(
      Uid caller, std::uint64_t since_seq,
      std::size_t max_records = kNoRecordLimit) const;

  // Zero-copy variant: invokes `visitor` on every retained record with
  // seq >= since_seq, oldest first, up to `max_records`. Returns the number
  // of records visited. This is the defender's poll path — the seed
  // implementation copied the entire log vector on every poll.
  Result<std::size_t> VisitIpcLogSince(
      Uid caller, std::uint64_t since_seq,
      const std::function<void(const IpcRecord&)>& visitor,
      std::size_t max_records = kNoRecordLimit) const;

  // Resolves an interned descriptor id back to the interface string.
  const std::string& DescriptorName(DescriptorId id) const {
    return descriptors_.Name(id);
  }

  // Interface descriptor of a node (empty for an unknown node). Restore paths
  // use this to rebuild proxy shims from the node table.
  const std::string& NodeDescriptor(NodeId node) const;

  // Renders the textual /proc/jgre_ipc_log content (bounded tail).
  std::string RenderIpcLogProcfs(std::size_t max_lines = 64) const;

  static constexpr std::size_t kNoRecordLimit = ~std::size_t{0};

  std::uint64_t ipc_log_next_seq() const { return ipc_log_.next_seq(); }
  std::size_t ipc_log_size() const { return ipc_log_.size(); }
  std::int64_t total_transactions() const { return total_transactions_; }

  // Checkpointing. SaveState writes the node table, death links (sans
  // recipients — live wiring re-attached by their owners), descriptor
  // interner, IPC ring log and counters. RestoreState runs against a freshly
  // booted driver: boot-created nodes keep their real BBinder objects (a
  // deterministic boot recreates them bit-for-bit), while live post-boot
  // nodes get placeholder objects that refuse transactions — the checkpoint
  // contract requires that no such node receives a transaction after restore
  // (the harness checkpoints at a quiescent boundary where all dynamic
  // clients have been stopped).
  void SaveState(snapshot::Serializer& out) const;
  void RestoreState(snapshot::Deserializer& in);

 private:
  struct Node {
    NodeId id;
    Pid owner;
    DescriptorId descriptor_id = StringInterner::kInvalidId;
    std::shared_ptr<BBinder> strong;  // kernel ref while node is live
    ObjectId sender_obj;              // JavaBBinder in the owner runtime
    std::vector<Pid> holders;         // processes with a live proxy; sorted
    // Death links registered on this node, ascending link id (links are
    // appended in id order). Derived index over links_, rebuilt on restore.
    std::vector<LinkId> death_links;
    bool pinned = false;              // servicemanager holds it forever
    bool dead = false;
  };

  struct DeathLink {
    LinkId id;
    NodeId node;
    Pid holder;
    std::shared_ptr<DeathRecipient> recipient;
    ObjectId recipient_obj;  // JavaDeathRecipient in the holder runtime
  };

  Node* FindNode(NodeId node);
  const Node* FindNode(NodeId node) const;
  void OnProxyCollected(Pid holder, NodeId node);
  void OnProcessDeath(Pid pid);
  void ReleaseSenderRef(Node& node);
  void FireDeathLinks(NodeId node);
  void AppendLog(Pid from, Uid from_uid, Pid to, NodeId node,
                 std::uint32_t code, DescriptorId descriptor_id);
  void AttachRuntimeHooks(Pid pid, rt::Runtime* runtime);
  // Bus label for a descriptor, interned once per descriptor on first use so
  // the per-transaction emit is an array load.
  obs::LabelId DescriptorLabel(DescriptorId id);

  os::Kernel* kernel_;
  Config config_;
  bool defense_logging_ = false;

  // Node ids are dense (1, 2, 3, ...) and nodes are never erased — dead ones
  // are only marked — so the node table is a flat vector indexed by id - 1:
  // routing a transaction is a bounds check + array index, not a hash lookup.
  std::int64_t next_node_ = 1;
  std::vector<Node> nodes_;

  // Interface descriptors, interned once per distinct string.
  StringInterner descriptors_;
  // descriptor_id -> bus LabelId, filled lazily (kInvalidId sentinel = ~0).
  std::vector<obs::LabelId> descriptor_labels_;

  LinkId next_link_ = 1;
  std::unordered_map<LinkId, DeathLink> links_;

  IpcLog ipc_log_;
  std::int64_t total_transactions_ = 0;

  // Dense pid-indexed flags (slot = pid - 1): whether the process's runtime
  // already has our proxy-collect handler installed.
  std::vector<std::uint8_t> hooked_runtimes_;
  int transact_depth_ = 0;
  TransactGate transact_gate_;
  TransactObserver transact_observer_;
  std::function<void()> post_transact_hook_;
};

}  // namespace jgre::binder

#endif  // JGRE_BINDER_BINDER_DRIVER_H_
