#include "binder/parcel.h"

#include "binder/binder_driver.h"
#include "common/strings.h"

namespace jgre::binder {

namespace {
// Approximate wire sizes for the transport cost model.
constexpr std::uint64_t kInt32Bytes = 4;
constexpr std::uint64_t kInt64Bytes = 8;
constexpr std::uint64_t kBoolBytes = 4;
constexpr std::uint64_t kFlatBinderBytes = 24;  // sizeof(flat_binder_object)
}  // namespace

void Parcel::WriteInterfaceToken(const std::string& descriptor) {
  payload_bytes_ += descriptor.size() * 2 + 8;  // UTF-16 + strict mode header
  values_.emplace_back(InterfaceToken{descriptor});
}

void Parcel::WriteInt32(std::int32_t value) {
  payload_bytes_ += kInt32Bytes;
  values_.emplace_back(value);
}

void Parcel::WriteInt64(std::int64_t value) {
  payload_bytes_ += kInt64Bytes;
  values_.emplace_back(value);
}

void Parcel::WriteBool(bool value) {
  payload_bytes_ += kBoolBytes;
  values_.emplace_back(value);
}

void Parcel::WriteString(const std::string& value) {
  payload_bytes_ += value.size() * 2 + 4;
  values_.emplace_back(value);
}

void Parcel::WriteByteArray(std::uint64_t num_bytes) {
  payload_bytes_ += num_bytes + 4;
  values_.emplace_back(ByteArray{num_bytes});
}

void Parcel::WriteStrongBinder(const std::shared_ptr<IBinder>& binder) {
  payload_bytes_ += kFlatBinderBytes;
  has_binders_ = true;
  values_.emplace_back(FlatBinder{binder == nullptr ? NodeId{} : binder->node()});
}

void Parcel::WriteNullBinder() {
  payload_bytes_ += kFlatBinderBytes;
  has_binders_ = true;  // still a flat_binder_object in the objects array
  values_.emplace_back(FlatBinder{NodeId{}});
}

template <typename T>
Result<T> Parcel::ReadValue() const {
  if (cursor_ >= values_.size()) {
    return InvalidArgument("parcel read past end");
  }
  const Value& v = values_[cursor_];
  if (!std::holds_alternative<T>(v)) {
    return InvalidArgument(
        StrCat("parcel type confusion at index ", cursor_));
  }
  ++cursor_;
  return std::get<T>(v);
}

Status Parcel::EnforceInterface(const std::string& descriptor) const {
  auto token = ReadValue<InterfaceToken>();
  if (!token.ok()) return token.status();
  if (token.value().descriptor != descriptor) {
    return InvalidArgument(StrCat("interface token mismatch: expected ",
                                  descriptor, ", got ",
                                  token.value().descriptor));
  }
  return Status::Ok();
}

Result<std::int32_t> Parcel::ReadInt32() const {
  return ReadValue<std::int32_t>();
}

Result<std::int64_t> Parcel::ReadInt64() const {
  return ReadValue<std::int64_t>();
}

Result<bool> Parcel::ReadBool() const { return ReadValue<bool>(); }

Result<std::string> Parcel::ReadString() const {
  return ReadValue<std::string>();
}

Result<std::uint64_t> Parcel::ReadByteArray() const {
  auto arr = ReadValue<ByteArray>();
  if (!arr.ok()) return arr.status();
  return arr.value().size;
}

void Parcel::WriteFileDescriptor() {
  payload_bytes_ += kFlatBinderBytes;  // also a flat_binder_object
  values_.emplace_back(FileDescriptor{});
}

Status Parcel::ReadFileDescriptor(const CallContext& ctx) const {
  auto fd = ReadValue<FileDescriptor>();
  if (!fd.ok()) return fd.status();
  return ctx.driver->kernel().AllocFds(ctx.self_pid, 1);
}

Result<StrongBinder> Parcel::ReadStrongBinder(const CallContext& ctx) const {
  auto flat = ReadValue<FlatBinder>();
  if (!flat.ok()) return flat.status();
  if (!flat.value().node.valid()) {
    return StrongBinder{};  // null binder
  }
  // javaObjectForIBinder: materialize in the *reading* process — this is the
  // JGR entry point Parcel.nativeReadStrongBinder reaches in the paper's
  // native call-graph analysis.
  return ctx.driver->MaterializeBinder(flat.value().node, ctx.self_pid);
}

}  // namespace jgre::binder
