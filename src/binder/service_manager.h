// ServiceManager — the binder name service (handle 0).
//
// System services register here at boot (`ServiceManager.addService` /
// `publishBinderService`); apps look them up by name and receive a proxy.
// Registration is restricted to system uids, mirroring servicemanager's
// `svc_can_register` check. The paper's IPC-method extractor enumerates
// exactly the interfaces reachable through this registry.
#ifndef JGRE_BINDER_SERVICE_MANAGER_H_
#define JGRE_BINDER_SERVICE_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "common/types.h"
#include "binder/binder_driver.h"
#include "binder/ibinder.h"
#include "snapshot/serializer.h"

namespace jgre::binder {

class ServiceManager {
 public:
  explicit ServiceManager(BinderDriver* driver) : driver_(driver) {}

  // Registers `service` under `name`. Only root/system may register
  // (svc_can_register); re-registration replaces the entry (reboot path).
  Status AddService(const std::string& name,
                    const std::shared_ptr<BBinder>& service, Uid caller);

  // Looks up `name` and materializes it in `caller` — for a remote caller
  // this mints the proxy + JGR on first lookup (cached thereafter).
  Result<StrongBinder> GetService(const std::string& name, Pid caller);

  bool HasService(const std::string& name) const {
    const StringInterner::Id id = names_.Find(name);
    return id != StringInterner::kInvalidId && nodes_by_name_[id].valid();
  }
  std::vector<std::string> ListServices() const;
  std::size_t ServiceCount() const { return service_count_; }

  // Drops all registrations (system soft reboot). Interned name ids are
  // stable across reboots; only the name → node routing entries clear.
  void Clear();

  // Checkpointing: interned names plus the name → node routing table.
  void SaveState(snapshot::Serializer& out) const {
    names_.SaveState(out);
    out.U64(nodes_by_name_.size());
    for (NodeId node : nodes_by_name_) out.I64(node.value());
    out.U64(service_count_);
  }
  void RestoreState(snapshot::Deserializer& in) {
    names_.RestoreState(in);
    nodes_by_name_.clear();
    for (std::uint64_t i = 0, n = in.U64(); i < n && in.ok(); ++i) {
      nodes_by_name_.push_back(NodeId{in.I64()});
    }
    service_count_ = static_cast<std::size_t>(in.U64());
  }

 private:
  BinderDriver* driver_;
  // Service names are interned to dense ids once; routing is then a flat
  // vector lookup instead of a red-black-tree string walk per GetService.
  StringInterner names_;
  std::vector<NodeId> nodes_by_name_;  // indexed by interned name id
  std::size_t service_count_ = 0;
};

}  // namespace jgre::binder

#endif  // JGRE_BINDER_SERVICE_MANAGER_H_
