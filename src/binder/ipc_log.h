// IpcLog — the defense's kernel-side transaction log as a struct-of-arrays
// ring.
//
// The extended driver appends one record per transaction on the hot path, so
// the log is stored as flat per-field columns (timestamp, from/to pids, uid,
// node, code, descriptor id) over a shared ring cursor instead of a ring of
// 48-byte structs. An append is seven column stores with no struct assembly;
// a checkpoint serializes each column as a flat span.
//
// Sequence numbers are not stored at all: seqs start at 1 and are assigned
// in push order, so the record at logical ring index i has seq i + 1 and the
// next seq to be assigned is end_index() + 1.
#ifndef JGRE_BINDER_IPC_LOG_H_
#define JGRE_BINDER_IPC_LOG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/interner.h"
#include "common/types.h"
#include "snapshot/serializer.h"

namespace jgre::binder {

// Dense id of an interned interface descriptor (see BinderDriver::
// DescriptorName). Assigned in registration order, so a deterministic boot
// yields deterministic ids.
using DescriptorId = StringInterner::Id;

// One materialized record of the defense's binder-driver IPC log — the view
// handed to log readers; storage is columnar (IpcLog).
struct IpcRecord {
  std::uint64_t seq = 0;
  TimeUs timestamp_us = 0;
  Pid from_pid;
  Uid from_uid;
  Pid to_pid;
  NodeId target_node;
  std::uint32_t code = 0;
  // Interface descriptor + code give the "type of IPC interface" Algorithm 1
  // groups by; on real Android the defender recovers this from the handle.
  DescriptorId descriptor_id = StringInterner::kInvalidId;
};

class IpcLog {
 public:
  explicit IpcLog(std::size_t capacity) : capacity_(capacity) {}

  IpcLog(const IpcLog&) = delete;
  IpcLog& operator=(const IpcLog&) = delete;

  void Push(TimeUs timestamp_us, Pid from_pid, Uid from_uid, Pid to_pid,
            NodeId target_node, std::uint32_t code, DescriptorId descriptor_id);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const {
    return total_pushed_ < capacity_ ? static_cast<std::size_t>(total_pushed_)
                                     : capacity_;
  }
  // Logical indices over the whole pushed history; retained records cover
  // [first_index, end_index).
  std::uint64_t end_index() const { return total_pushed_; }
  std::uint64_t first_index() const { return total_pushed_ - size(); }
  std::uint64_t next_seq() const { return total_pushed_ + 1; }

  // Materializes the record at logical index (must be retained).
  IpcRecord At(std::uint64_t logical) const;

  // Invokes `fn(const IpcRecord&)` on retained records with logical index in
  // [since, end_index), oldest first, visiting at most `max_records`.
  // Returns the number visited.
  template <typename Fn>
  std::size_t VisitSince(std::uint64_t since, std::size_t max_records,
                         Fn&& fn) const {
    std::uint64_t index = since;
    if (index < first_index()) index = first_index();
    std::size_t visited = 0;
    for (; index < end_index() && visited < max_records; ++index, ++visited) {
      fn(At(index));
    }
    return visited;
  }

  // Checkpointing: the retained columns as flat spans in logical order,
  // oldest record first; restore re-linearizes the ring (slot_ = 0).
  void SaveState(snapshot::Serializer& out) const;
  void RestoreState(snapshot::Deserializer& in);

 private:
  std::size_t SlotOf(std::uint64_t logical) const {
    std::size_t pos = slot_ + static_cast<std::size_t>(logical - first_index());
    if (pos >= timestamp_.size()) pos -= timestamp_.size();
    return pos;
  }

  std::size_t capacity_;
  // Ring slot holding the oldest retained record; columns grow lazily until
  // they reach capacity_, then the cursor wraps and overwrites the oldest.
  std::size_t slot_ = 0;
  std::uint64_t total_pushed_ = 0;
  std::vector<std::uint64_t> timestamp_;
  std::vector<std::int32_t> from_pid_;
  std::vector<std::int32_t> from_uid_;
  std::vector<std::int32_t> to_pid_;
  std::vector<std::int64_t> node_;
  std::vector<std::uint32_t> code_;
  std::vector<std::uint32_t> descriptor_;
};

}  // namespace jgre::binder

#endif  // JGRE_BINDER_IPC_LOG_H_
