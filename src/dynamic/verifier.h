// JGRE dynamic verification (paper §III.D) — the fourth pipeline step.
//
// For every risky interface the static stages could not discharge, the
// verifier boots a fresh device, installs a probe app holding whatever
// permission the interface demands, generates a test payload from the
// method's parameter layout (the Javapoet-style semi-automatic generation of
// §III.D: primitives get defaults, binder parameters get a fresh Binder per
// call), fires up to 60,000 IPC requests while triggering the GC
// periodically (DDMS), and watches the victim's JGR count. An interface is
// exploitable iff the retained growth persists across GC — or the victim's
// runtime aborts outright.
//
// Interfaces guarded by a per-process constraint that keys on caller-supplied
// input (enqueueToast) get a second, adversarial probe with the input set to
// "android" — the manual scrutiny step of §IV.C.2 made systematic.
#ifndef JGRE_DYNAMIC_VERIFIER_H_
#define JGRE_DYNAMIC_VERIFIER_H_

#include <string>
#include <vector>

#include "analysis/pipeline.h"
#include "model/code_model.h"
#include "model/growth_thresholds.h"

namespace jgre::dynamic {

struct VerifyOptions {
  int max_calls = 60'000;
  int gc_every_calls = 500;
  // Early-exit probe: if growth is already flat after this many calls, the
  // interface is declared bounded.
  int probe_calls = 2'000;
  // Exploitable/bounded growth-rate cutoffs, shared with the fuzz oracle
  // (model/growth_thresholds.h) so the two dynamic stages cannot drift.
  model::GrowthThresholds growth;
  std::uint64_t seed = 42;
};

struct Verdict {
  std::string id;
  std::string service;
  std::string method;
  bool tested = false;
  std::string skip_reason;
  bool exploitable = false;
  bool victim_aborted = false;        // drove the table past 51,200
  bool bypassed_constraint = false;   // needed the adversarial string probe
  int calls_issued = 0;
  double jgr_growth_per_call = 0.0;
};

class JgreVerifier {
 public:
  JgreVerifier();
  explicit JgreVerifier(VerifyOptions options);

  // Verifies a single interface (fresh simulated device per probe).
  Verdict Verify(const analysis::AnalyzedInterface& iface,
                 const model::CodeModel& model);

  // Verifies every candidate in the report.
  std::vector<Verdict> VerifyAll(const analysis::AnalysisReport& report,
                                 const model::CodeModel& model);

 private:
  Verdict RunProbe(const analysis::AnalyzedInterface& iface,
                   const model::JavaMethodModel& method, bool adversarial);

  VerifyOptions options_;
};

}  // namespace jgre::dynamic

#endif  // JGRE_DYNAMIC_VERIFIER_H_
