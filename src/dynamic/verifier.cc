#include "dynamic/verifier.h"

#include <cmath>

#include "common/log.h"
#include "common/strings.h"
#include "core/android_system.h"
#include "core/market_apps.h"
#include "services/app.h"
#include "services/ipc_client.h"

namespace jgre::dynamic {

namespace {

// Javapoet-style payload synthesis: defaults per parameter kind, fresh
// Binder objects for callback parameters, and — for the adversarial probe —
// the "android" spoof in every string slot.
void WriteProbeArgs(const model::JavaMethodModel& method,
                    services::AppProcess& app, binder::Parcel& parcel,
                    bool adversarial) {
  for (services::ArgKind kind : method.args) {
    switch (kind) {
      case services::ArgKind::kInt32:
        parcel.WriteInt32(1);
        break;
      case services::ArgKind::kInt64:
        parcel.WriteInt64(1);
        break;
      case services::ArgKind::kBool:
        parcel.WriteBool(true);
        break;
      case services::ArgKind::kString:
        parcel.WriteString(adversarial ? "android" : app.package());
        break;
      case services::ArgKind::kByteArray:
        parcel.WriteByteArray(16);
        break;
      case services::ArgKind::kBinder:
        parcel.WriteStrongBinder(app.NewBinder("ProbeCallback"));
        break;
    }
  }
}

std::string DescriptorOf(const model::JavaMethodModel& method) {
  // Method ids are "<interface descriptor>.<name>".
  return method.id.substr(0, method.id.size() - method.name.size() - 1);
}

}  // namespace

JgreVerifier::JgreVerifier() : JgreVerifier(VerifyOptions{}) {}

JgreVerifier::JgreVerifier(VerifyOptions options) : options_(options) {}

Verdict JgreVerifier::RunProbe(const analysis::AnalyzedInterface& iface,
                               const model::JavaMethodModel& method,
                               bool adversarial) {
  Verdict verdict;
  verdict.id = iface.id;
  verdict.service = iface.service;
  verdict.method = iface.method;

  core::SystemConfig config;
  config.seed = options_.seed;
  core::AndroidSystem system(config);
  system.Boot();
  if (iface.app_hosted && !iface.prebuilt_app) {
    core::InstallThirdPartyVulnerableApps(system);
  }
  if (!system.service_manager().HasService(iface.service)) {
    verdict.skip_reason = StrCat("no live implementation of service '",
                                 iface.service, "' to probe");
    return verdict;
  }
  std::set<std::string> permissions;
  if (!iface.permission.empty()) permissions.insert(iface.permission);
  services::AppProcess* probe =
      system.InstallApp("com.jgre.probe", permissions);

  auto client = probe->GetService(iface.service, DescriptorOf(method));
  if (!client.ok()) {
    verdict.skip_reason = client.status().ToString();
    return verdict;
  }

  auto victim_jgr = [&]() -> std::size_t {
    if (!iface.app_hosted) return system.SystemServerJgrCount();
    services::AppProcess* victim = system.FindApp(iface.package);
    if (victim == nullptr || !victim->alive() || victim->runtime() == nullptr) {
      return 0;
    }
    return victim->runtime()->JgrCount();
  };
  auto victim_down = [&]() {
    if (!iface.app_hosted) return system.soft_reboots() > 0;
    services::AppProcess* victim = system.FindApp(iface.package);
    return victim == nullptr || !victim->alive();
  };

  system.CollectAllGarbage();
  const std::size_t baseline = victim_jgr();
  verdict.tested = true;

  for (int i = 0; i < options_.max_calls; ++i) {
    Status status = client.value().Call(
        iface.transaction_code, [&](binder::Parcel& p) {
          WriteProbeArgs(method, *probe, p, adversarial);
        });
    ++verdict.calls_issued;
    if (status.code() == StatusCode::kPermissionDenied) {
      verdict.skip_reason = status.ToString();
      break;
    }
    if ((i + 1) % options_.gc_every_calls == 0) {
      // DDMS-triggered GC: transient references must not count as growth.
      system.CollectAllGarbage();
    }
    if (victim_down()) {
      verdict.victim_aborted = true;
      verdict.exploitable = true;
      break;
    }
    // Early exit: growth already flat after the probe window => bounded.
    if (i + 1 == options_.probe_calls) {
      system.CollectAllGarbage();
      const double growth =
          (static_cast<double>(victim_jgr()) - static_cast<double>(baseline)) /
          static_cast<double>(i + 1);
      if (growth < options_.growth.bounded_jgr_per_call) break;
    }
  }
  if (!verdict.victim_aborted && verdict.calls_issued > 0) {
    system.CollectAllGarbage();
    verdict.jgr_growth_per_call =
        (static_cast<double>(victim_jgr()) - static_cast<double>(baseline)) /
        static_cast<double>(verdict.calls_issued);
    verdict.exploitable =
        verdict.jgr_growth_per_call >= options_.growth.exploitable_jgr_per_call;
  }
  return verdict;
}

Verdict JgreVerifier::Verify(const analysis::AnalyzedInterface& iface,
                             const model::CodeModel& model) {
  const model::JavaMethodModel* method = model.FindJavaMethod(iface.id);
  if (method == nullptr) {
    Verdict verdict;
    verdict.id = iface.id;
    verdict.skip_reason = "method missing from code model";
    return verdict;
  }
  Verdict verdict = RunProbe(iface, *method, /*adversarial=*/false);
  if (!verdict.exploitable && verdict.tested &&
      iface.constraint_trusts_caller) {
    // The server-side cap held against the honest probe, but it trusts a
    // caller-supplied value — retry with the "android" spoof (§IV.C.2).
    Verdict spoofed = RunProbe(iface, *method, /*adversarial=*/true);
    if (spoofed.exploitable) {
      spoofed.bypassed_constraint = true;
      return spoofed;
    }
  }
  return verdict;
}

std::vector<Verdict> JgreVerifier::VerifyAll(
    const analysis::AnalysisReport& report, const model::CodeModel& model) {
  std::vector<Verdict> verdicts;
  for (const std::size_t index : report.Candidates()) {
    verdicts.push_back(Verify(report.interfaces[index], model));
    const Verdict& v = verdicts.back();
    JGRE_LOG(kInfo, "verifier")
        << v.service << "." << v.method << ": "
        << (v.exploitable ? "EXPLOITABLE" : "bounded") << " ("
        << v.calls_issued << " calls, " << v.jgr_growth_per_call
        << " JGR/call" << (v.bypassed_constraint ? ", constraint bypassed" : "")
        << ")";
  }
  return verdicts;
}

}  // namespace jgre::dynamic
