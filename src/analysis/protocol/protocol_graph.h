// ProtocolGraph — cross-transaction dataflow over IPC entries.
//
// The taint engine (src/analysis/taint) reasons about one IPC entry at a
// time: a binder handed to entry B is retained or it is not. BinderCracker
// (Feng & Shin) showed the interesting exhaustion protocols are
// *multi-transaction*: a token, id, or binder handle minted by entry A feeds
// a later call to entry B — possibly on a different service — and only the
// combination drives the retention sink. The ProtocolGraph is the static
// half of that story: a def-use graph over IPC entries where an edge
// `A.ret → B.argK` means a value minted by A's reply can reach argument K of
// B, and that argument is retention-relevant.
//
// Edges are derived by joining two fact families:
//   * mint/consume declarations on the code-model IR
//     (`JavaMethodModel::returns` / `arg_provenance`, mirrored from the
//     service layer's MethodSpec protocol fields) — the *explicit* edges,
//     matched on (ValueKind, domain);
//   * the taint engine's per-entry summaries: any strong-binder argument of
//     an entry whose summary retention reaches the member-slot/collection
//     band (or that links to death) can retain *any* minted binder handle a
//     caller chooses to forward — the *implicit* edges that cover nested
//     binder parcels and cross-service acquire-from-A/retain-via-B chains.
//
// Index-stability contract (the PR-5 lesson): the graph stores entry
// *indices* into AnalysisReport::interfaces — never pointers into the report
// or the code model — so a graph built from a temporary report stays valid
// for the lifetime of any equal report the caller keeps.
#ifndef JGRE_ANALYSIS_PROTOCOL_PROTOCOL_GRAPH_H_
#define JGRE_ANALYSIS_PROTOCOL_PROTOCOL_GRAPH_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analysis/pipeline.h"
#include "model/code_model.h"

namespace jgre::analysis::protocol {

// "Entry index I mints a value of `kind` in `domain` in its reply."
struct MintFact {
  std::size_t entry = 0;  // index into AnalysisReport::interfaces
  model::ValueKind kind = model::ValueKind::kOpaque;
  std::string domain;

  bool operator==(const MintFact&) const = default;
};

// One def-use edge: producer's reply value reaches consumer's argument.
struct ProtocolEdge {
  std::size_t producer = 0;   // index into AnalysisReport::interfaces (A)
  std::size_t consumer = 0;   // index into AnalysisReport::interfaces (B)
  std::size_t arg_index = 0;  // K: which argument slot of B the value reaches
  model::ValueKind kind = model::ValueKind::kOpaque;
  std::string domain;         // the minted domain flowing along this edge
  // True when B declared the consumption (arg_provenance matched the mint);
  // false for the summary-derived binder-handle join.
  bool explicit_consume = false;
  bool cross_service = false;

  bool operator==(const ProtocolEdge&) const = default;
};

// A retention chain: e0 → e1 → … → terminal, where each hop is a graph edge
// and the terminal entry is a risky, unsifted interface (it carries a taint
// witness down to IndirectReferenceTable::Add). `entries` has depth()+1
// elements; acyclicity is per-chain: no entry and no mint domain repeats.
struct ProtocolChain {
  std::vector<std::size_t> edge_ids;  // indices into ProtocolGraph::edges()
  std::vector<std::size_t> entries;   // entry indices along the path
  bool multi_service = false;

  int depth() const { return static_cast<int>(edge_ids.size()); }
};

struct GraphStats {
  std::size_t nodes = 0;            // IPC entries considered
  std::size_t minting_entries = 0;  // entries with a minted return
  std::size_t edges = 0;
  std::size_t explicit_edges = 0;
  std::size_t cross_service_edges = 0;
  std::size_t chains = 0;
  std::size_t multi_service_chains = 0;
  // Chains dropped by the enumeration cap (reported, never silent).
  std::size_t truncated_chains = 0;
};

struct BuildOptions {
  int max_chain_depth = 3;
  std::size_t max_chains = 4096;
};

class ProtocolGraph {
 public:
  ProtocolGraph() = default;

  // Joins `report`'s per-entry taint facts with `model`'s mint/consume
  // declarations. `report.interfaces` order is the canonical node order, so
  // mints, edges, and chains come out deterministic for one (model, report)
  // pair regardless of jobs or scheduling.
  static ProtocolGraph Build(const model::CodeModel& model,
                             const AnalysisReport& report,
                             const BuildOptions& options = {});

  const std::vector<MintFact>& mints() const { return mints_; }
  const std::vector<ProtocolEdge>& edges() const { return edges_; }
  const std::vector<ProtocolChain>& chains() const { return chains_; }
  const GraphStats& stats() const { return stats_; }

  // Edge indices by endpoint (empty vector for uninvolved entries).
  const std::vector<std::size_t>& EdgesFrom(std::size_t entry) const;
  const std::vector<std::size_t>& EdgesInto(std::size_t entry) const;

 private:
  std::vector<MintFact> mints_;
  std::vector<ProtocolEdge> edges_;
  std::vector<ProtocolChain> chains_;
  std::map<std::size_t, std::vector<std::size_t>> edges_from_;
  std::map<std::size_t, std::vector<std::size_t>> edges_into_;
  GraphStats stats_;
};

}  // namespace jgre::analysis::protocol

#endif  // JGRE_ANALYSIS_PROTOCOL_PROTOCOL_GRAPH_H_
