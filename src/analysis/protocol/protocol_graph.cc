#include "analysis/protocol/protocol_graph.h"

#include <algorithm>
#include <functional>
#include <set>

namespace jgre::analysis::protocol {

namespace {

// A consumer argument is retention-relevant when the entry's transitive
// summary parks binders in a member slot or collection, or retains a death
// recipient for them — the bands where a forwarded minted value survives the
// call (rule-4 member slots retain exactly one, still a retention sink).
bool RetentionRelevant(const AnalyzedInterface& iface) {
  return iface.retention >= taint::Retention::kMemberSlot ||
         iface.links_to_death;
}

}  // namespace

ProtocolGraph ProtocolGraph::Build(const model::CodeModel& model,
                                   const AnalysisReport& report,
                                   const BuildOptions& options) {
  ProtocolGraph graph;
  graph.stats_.nodes = report.interfaces.size();

  // --- Mint facts: entries whose reply carries a typed minted value ---------
  for (std::size_t i = 0; i < report.interfaces.size(); ++i) {
    const model::JavaMethodModel* method =
        model.FindJavaMethod(report.interfaces[i].id);
    if (method == nullptr || !method->returns.minted()) continue;
    graph.mints_.push_back(
        MintFact{i, method->returns.kind, method->returns.domain});
  }
  graph.stats_.minting_entries = graph.mints_.size();

  // --- Edges: join mints against consume declarations and taint summaries --
  for (std::size_t i = 0; i < report.interfaces.size(); ++i) {
    const AnalyzedInterface& iface = report.interfaces[i];
    const model::JavaMethodModel* method = model.FindJavaMethod(iface.id);
    if (method == nullptr) continue;
    for (std::size_t k = 0; k < method->args.size(); ++k) {
      const model::ValueModel prov = method->ProvenanceOf(k);
      for (const MintFact& mint : graph.mints_) {
        bool match = false;
        bool explicit_consume = false;
        if (prov.minted() && prov.kind == mint.kind &&
            (prov.domain == "*" || prov.domain == mint.domain)) {
          // Declared consumption: the method states this argument carries a
          // value from the mint's (kind, domain).
          match = true;
          explicit_consume = true;
        } else if (method->args[k] == services::ArgKind::kBinder &&
                   mint.kind == model::ValueKind::kBinderHandle &&
                   mint.entry != i && RetentionRelevant(iface)) {
          // Summary-derived consumption: a retention-relevant binder slot
          // retains whatever binder the caller forwards — including a handle
          // minted by another entry's reply (nested-binder parcels).
          match = true;
        }
        if (!match) continue;
        ProtocolEdge edge;
        edge.producer = mint.entry;
        edge.consumer = i;
        edge.arg_index = k;
        edge.kind = mint.kind;
        edge.domain = mint.domain;
        edge.explicit_consume = explicit_consume;
        edge.cross_service =
            report.interfaces[mint.entry].service != iface.service;
        graph.edges_.push_back(std::move(edge));
      }
    }
  }
  graph.stats_.edges = graph.edges_.size();
  for (std::size_t e = 0; e < graph.edges_.size(); ++e) {
    const ProtocolEdge& edge = graph.edges_[e];
    if (edge.explicit_consume) ++graph.stats_.explicit_edges;
    if (edge.cross_service) ++graph.stats_.cross_service_edges;
    graph.edges_from_[edge.producer].push_back(e);
    graph.edges_into_[edge.consumer].push_back(e);
  }

  // --- Chains: DFS over edges in canonical order ----------------------------
  // A chain is recorded at every hop whose consumer is a risky, unsifted
  // interface (it carries a taint witness — the witness contract), and is
  // extended while the consumer mints further values. Acyclic per chain: no
  // repeated entries and no repeated mint domains, so a chain never re-mints
  // a domain it already consumed.
  struct Frame {
    std::vector<std::size_t> edge_ids;
    std::vector<std::size_t> entries;
    std::set<std::size_t> entry_set;
    std::set<std::string> domain_set;
  };
  const auto record = [&](const Frame& frame) {
    if (graph.chains_.size() >= options.max_chains) {
      ++graph.stats_.truncated_chains;
      return;
    }
    ProtocolChain chain;
    chain.edge_ids = frame.edge_ids;
    chain.entries = frame.entries;
    for (std::size_t j = 1; j < frame.entries.size(); ++j) {
      if (report.interfaces[frame.entries[j]].service !=
          report.interfaces[frame.entries[0]].service) {
        chain.multi_service = true;
        break;
      }
    }
    graph.chains_.push_back(std::move(chain));
  };

  const std::function<void(Frame&)> extend = [&](Frame& frame) {
    if (static_cast<int>(frame.edge_ids.size()) >= options.max_chain_depth) {
      return;
    }
    const std::size_t tail = frame.entries.back();
    auto it = graph.edges_from_.find(tail);
    if (it == graph.edges_from_.end()) return;
    for (std::size_t edge_id : it->second) {
      const ProtocolEdge& edge = graph.edges_[edge_id];
      if (frame.entry_set.count(edge.consumer) != 0) continue;
      if (frame.domain_set.count(edge.domain) != 0) continue;
      frame.edge_ids.push_back(edge_id);
      frame.entries.push_back(edge.consumer);
      frame.entry_set.insert(edge.consumer);
      frame.domain_set.insert(edge.domain);
      const AnalyzedInterface& consumer = report.interfaces[edge.consumer];
      if (consumer.risky && !consumer.sifted_out) record(frame);
      extend(frame);
      frame.edge_ids.pop_back();
      frame.entries.pop_back();
      frame.entry_set.erase(edge.consumer);
      frame.domain_set.erase(edge.domain);
    }
  };
  for (const MintFact& mint : graph.mints_) {
    Frame frame;
    frame.entries.push_back(mint.entry);
    frame.entry_set.insert(mint.entry);
    extend(frame);
  }
  graph.stats_.chains = graph.chains_.size();
  for (const ProtocolChain& chain : graph.chains_) {
    if (chain.multi_service) ++graph.stats_.multi_service_chains;
  }
  return graph;
}

const std::vector<std::size_t>& ProtocolGraph::EdgesFrom(
    std::size_t entry) const {
  static const std::vector<std::size_t> kEmpty;
  auto it = edges_from_.find(entry);
  return it == edges_from_.end() ? kEmpty : it->second;
}

const std::vector<std::size_t>& ProtocolGraph::EdgesInto(
    std::size_t entry) const {
  static const std::vector<std::size_t> kEmpty;
  auto it = edges_into_.find(entry);
  return it == edges_into_.end() ? kEmpty : it->second;
}

}  // namespace jgre::analysis::protocol
