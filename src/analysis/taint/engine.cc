#include "analysis/taint/engine.h"

#include <algorithm>
#include <chrono>
#include <deque>

namespace jgre::analysis::taint {

using model::BodyFact;
using model::JavaMethodModel;

std::string_view StepKindName(StepKind kind) {
  switch (kind) {
    case StepKind::kIpcEntry:
      return "ipc_entry";
    case StepKind::kJavaCall:
      return "java_call";
    case StepKind::kStubReceive:
      return "stub_receive";
    case StepKind::kJniBridge:
      return "jni_bridge";
    case StepKind::kNativeCall:
      return "native_call";
    case StepKind::kSink:
      return "sink";
  }
  return "unknown";
}

std::string_view RetentionName(Retention retention) {
  switch (retention) {
    case Retention::kNone:
      return "none";
    case Retention::kTransient:
      return "transient";
    case Retention::kReadOnlyKey:
      return "read_only_key";
    case Retention::kMemberSlot:
      return "member_slot";
    case Retention::kCollection:
      return "collection";
  }
  return "unknown";
}

Retention LocalRetention(const JavaMethodModel& method) {
  if (method.HasFact(BodyFact::kStoresParamInCollection)) {
    return Retention::kCollection;
  }
  if (method.HasFact(BodyFact::kUsesParamTransiently)) {
    return Retention::kTransient;
  }
  if (method.HasFact(BodyFact::kUsesParamAsReadOnlyKey)) {
    return Retention::kReadOnlyKey;
  }
  if (method.HasFact(BodyFact::kStoresParamInMemberSlot)) {
    return Retention::kMemberSlot;
  }
  return Retention::kNone;
}

namespace {

// Iterative Tarjan over the Java call graph. Emits components callees-first
// (reverse topological order of the condensation) — exactly the bottom-up
// order the summary propagation wants.
class SccFinder {
 public:
  explicit SccFinder(const std::vector<std::vector<int>>& edges)
      : edges_(edges),
        index_(edges.size(), -1),
        lowlink_(edges.size(), -1),
        on_stack_(edges.size(), false) {}

  std::vector<std::vector<int>> Run() {
    for (int v = 0; v < static_cast<int>(edges_.size()); ++v) {
      if (index_[v] < 0) Visit(v);
    }
    return std::move(components_);
  }

 private:
  struct Frame {
    int node;
    std::size_t next_edge = 0;
  };

  void Visit(int root) {
    std::vector<Frame> call_stack{{root}};
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const int v = frame.node;
      if (frame.next_edge == 0) {
        index_[v] = lowlink_[v] = next_index_++;
        stack_.push_back(v);
        on_stack_[v] = true;
      }
      bool descended = false;
      while (frame.next_edge < edges_[v].size()) {
        const int w = edges_[v][frame.next_edge++];
        if (index_[w] < 0) {
          call_stack.push_back({w});
          descended = true;
          break;
        }
        if (on_stack_[w]) lowlink_[v] = std::min(lowlink_[v], index_[w]);
      }
      if (descended) continue;
      if (lowlink_[v] == index_[v]) {
        std::vector<int> component;
        int w;
        do {
          w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = false;
          component.push_back(w);
        } while (w != v);
        // Deterministic member order regardless of DFS pop order.
        std::sort(component.begin(), component.end());
        components_.push_back(std::move(component));
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const int parent = call_stack.back().node;
        lowlink_[parent] = std::min(lowlink_[parent], lowlink_[v]);
      }
    }
  }

  const std::vector<std::vector<int>>& edges_;
  std::vector<int> index_;
  std::vector<int> lowlink_;
  std::vector<bool> on_stack_;
  std::vector<int> stack_;
  int next_index_ = 0;
  std::vector<std::vector<int>> components_;
};

}  // namespace

TaintEngine::TaintEngine(const model::CodeModel* model,
                         std::set<std::string> java_jgr_entries)
    : model_(model), entries_(std::move(java_jgr_entries)) {}

void TaintEngine::Run() {
  if (ran_) return;
  ran_ = true;
  const auto start = std::chrono::steady_clock::now();

  // Dense indexing over the (ordered) method map.
  std::vector<const JavaMethodModel*> methods;
  std::map<std::string, int> index_of;
  methods.reserve(model_->java_methods.size());
  for (const auto& [id, method] : model_->java_methods) {
    index_of[id] = static_cast<int>(methods.size());
    methods.push_back(&method);
  }
  std::vector<std::vector<int>> edges(methods.size());
  for (std::size_t v = 0; v < methods.size(); ++v) {
    for (const std::string& callee : methods[v]->callees) {
      if (auto it = index_of.find(callee); it != index_of.end()) {
        edges[v].push_back(it->second);
        ++stats_.call_edges;
      }
    }
  }
  stats_.java_methods = static_cast<int>(methods.size());

  std::vector<MethodSummary> summaries(methods.size());
  const auto compute = [&](int v) {
    const JavaMethodModel& method = *methods[v];
    MethodSummary s;
    const Retention local = LocalRetention(method);
    s.retention = local;
    s.links_to_death = method.HasFact(BodyFact::kLinksToDeath);
    s.mints_session = method.HasFact(BodyFact::kCreatesServerSession);
    if (entries_.count(method.id) > 0) s.jgr_entries.insert(method.id);
    for (const int w : edges[v]) {
      const MethodSummary& cs = summaries[w];
      if (cs.retention > s.retention) {
        if (local == Retention::kMemberSlot) {
          // Rule-4 cap: the slot's replace-on-next-call discipline bounds
          // whatever storage helper implements it.
          s.retention_capped = true;
        } else {
          s.retention = cs.retention;
          s.retention_via = methods[w]->id;
        }
      }
      s.links_to_death |= cs.links_to_death;
      s.mints_session |= cs.mints_session;
      s.jgr_entries.insert(cs.jgr_entries.begin(), cs.jgr_entries.end());
    }
    s.only_creates_thread =
        !s.jgr_entries.empty() &&
        std::all_of(s.jgr_entries.begin(), s.jgr_entries.end(),
                    [](const std::string& e) {
                      return e == model::kThreadCreateEntry;
                    });
    return s;
  };

  const std::vector<std::vector<int>> components = SccFinder(edges).Run();
  stats_.sccs = static_cast<int>(components.size());
  for (const std::vector<int>& component : components) {
    stats_.max_scc_size =
        std::max(stats_.max_scc_size, static_cast<int>(component.size()));
    bool self_loop = false;
    for (const int v : component) {
      for (const int w : edges[v]) self_loop |= (w == v);
    }
    if (component.size() > 1 || self_loop) ++stats_.nontrivial_sccs;
    // Members of one component see each other's partial summaries; the join
    // is monotone over a finite lattice, so iterating to a local fixpoint
    // terminates. Singleton components converge in the second (check) pass.
    bool changed = true;
    while (changed) {
      changed = false;
      for (const int v : component) {
        ++stats_.fixpoint_iterations;
        MethodSummary next = compute(v);
        if (next != summaries[v]) {
          summaries[v] = std::move(next);
          ++stats_.summary_updates;
          changed = true;
        }
      }
    }
  }

  for (const auto& [id, index] : index_of) {
    summaries_[id] = std::move(summaries[index]);
  }
  stats_.runtime_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
}

const MethodSummary* TaintEngine::SummaryOf(const std::string& id) const {
  const auto it = summaries_.find(id);
  return it == summaries_.end() ? nullptr : &it->second;
}

std::vector<std::string> TaintEngine::JavaPath(const std::string& from,
                                               const std::string& to) const {
  if (from == to) return {from};
  std::map<std::string, std::string> parent;
  std::deque<std::string> queue{from};
  parent[from] = from;
  while (!queue.empty()) {
    const std::string current = queue.front();
    queue.pop_front();
    const JavaMethodModel* method = model_->FindJavaMethod(current);
    if (method == nullptr) continue;
    for (const std::string& callee : method->callees) {
      if (parent.count(callee) > 0) continue;
      parent[callee] = current;
      if (callee == to) {
        std::vector<std::string> path{to};
        for (std::string hop = current; hop != from; hop = parent[hop]) {
          path.push_back(hop);
        }
        path.push_back(from);
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(callee);
    }
  }
  return {};
}

std::vector<WitnessStep> TaintEngine::NativeStitch(
    const std::string& java_entry) const {
  const std::string sink(model::kJgrSinkFunction);
  for (const model::JniRegistration& reg : model_->jni_registrations) {
    if (reg.java_method != java_entry) continue;
    const auto node = model_->native_methods.find(reg.native_method);
    if (node == model_->native_methods.end() ||
        node->second.runtime_init_only) {
      continue;
    }
    // Shortest native path registration -> sink (callee declaration order
    // breaks ties deterministically).
    std::map<std::string, std::string> parent;
    std::deque<std::string> queue{reg.native_method};
    parent[reg.native_method] = reg.native_method;
    std::string found;
    while (!queue.empty() && found.empty()) {
      const std::string current = queue.front();
      queue.pop_front();
      if (current == sink) {
        found = current;
        break;
      }
      const auto it = model_->native_methods.find(current);
      if (it == model_->native_methods.end()) continue;
      for (const std::string& callee : it->second.callees) {
        if (parent.count(callee) > 0) continue;
        parent[callee] = current;
        queue.push_back(callee);
      }
    }
    if (found.empty() && parent.count(sink) > 0) found = sink;
    if (found.empty()) continue;
    std::vector<std::string> frames{sink};
    for (std::string hop = parent[sink]; hop != reg.native_method;
         hop = parent[hop]) {
      frames.push_back(hop);
    }
    if (sink != reg.native_method) frames.push_back(reg.native_method);
    std::reverse(frames.begin(), frames.end());
    std::vector<WitnessStep> steps;
    steps.push_back({StepKind::kJniBridge, frames.front()});
    for (std::size_t i = 1; i + 1 < frames.size(); ++i) {
      steps.push_back({StepKind::kNativeCall, frames[i]});
    }
    if (frames.size() > 1) steps.push_back({StepKind::kSink, frames.back()});
    return steps;
  }
  return {};
}

void TaintEngine::AppendNative(const std::string& java_entry,
                               WitnessPath* path) const {
  std::vector<WitnessStep> native = NativeStitch(java_entry);
  path->steps.insert(path->steps.end(), native.begin(), native.end());
}

WitnessPath TaintEngine::WitnessFor(const std::string& entry_id,
                                    bool takes_binder) const {
  WitnessPath path;
  const MethodSummary* summary = SummaryOf(entry_id);
  if (summary == nullptr) return path;

  const auto java_segment = [&](const std::string& target) {
    std::vector<std::string> frames = JavaPath(entry_id, target);
    for (std::size_t i = 0; i < frames.size(); ++i) {
      path.steps.push_back(
          {i == 0 ? StepKind::kIpcEntry : StepKind::kJavaCall, frames[i]});
    }
    return !frames.empty();
  };

  const std::string link_to_death(model::kLinkToDeathEntry);
  if (summary->links_to_death &&
      summary->jgr_entries.count(link_to_death) > 0 &&
      java_segment(link_to_death)) {
    // The retained callback's JavaDeathRecipient is the JGR that accumulates.
    path.reason = "death-recipient";
    AppendNative(link_to_death, &path);
    return path;
  }
  if (takes_binder) {
    // Parcel.nativeReadStrongBinder runs in the generated onTransact stub,
    // never in the method's own call graph (§III.C.2) — synthesize the hop.
    path.reason = "binder-receive";
    path.steps.push_back({StepKind::kIpcEntry, entry_id});
    path.steps.push_back(
        {StepKind::kStubReceive, std::string(model::kReadStrongBinderEntry)});
    AppendNative(std::string(model::kReadStrongBinderEntry), &path);
    return path;
  }
  if (summary->mints_session) {
    // The minted server-side binder is parceled back through the stub's
    // reply, pinning a JavaBBinder JGR in the host per call.
    path.reason = "session-mint";
    path.steps.push_back({StepKind::kIpcEntry, entry_id});
    path.steps.push_back(
        {StepKind::kStubReceive, std::string(model::kWriteStrongBinderEntry)});
    AppendNative(std::string(model::kWriteStrongBinderEntry), &path);
    return path;
  }
  if (!summary->jgr_entries.empty()) {
    // Lexicographically-smallest reached entry: deterministic, and the only
    // entry at all when the thread-create rule applies.
    const std::string& target = *summary->jgr_entries.begin();
    if (java_segment(target)) {
      path.reason = summary->only_creates_thread ? "thread-create" : "jgr-entry";
      AppendNative(target, &path);
      return path;
    }
  }
  return path;
}

}  // namespace jgre::analysis::taint
