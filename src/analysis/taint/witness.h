// Witness paths — the evidence attached to every risky verdict.
//
// A witness is the concrete frame chain that justifies a finding:
//
//   IPC entry → java callees… → [onTransact stub] → JNI bridge
//             → native frames… → art::IndirectReferenceTable::Add
//
// The java segment is a shortest path through the model's call graph from
// the IPC entry to the Java-level JGR entry the verdict keys on (death
// recipient, binder receive, session mint, thread create); the native
// segment continues through the registerNativeMethods bridge down to the
// IndirectReferenceTable::Add sink. Binder-receive witnesses include a
// synthetic stub step: Parcel.nativeReadStrongBinder runs in the generated
// onTransact stub, never in the method's own call graph, so the hop cannot
// come from a model edge.
#ifndef JGRE_ANALYSIS_TAINT_WITNESS_H_
#define JGRE_ANALYSIS_TAINT_WITNESS_H_

#include <string>
#include <string_view>
#include <vector>

namespace jgre::analysis::taint {

enum class StepKind {
  kIpcEntry,     // the analyzed IPC interface itself
  kJavaCall,     // a framework-internal Java callee
  kStubReceive,  // the generated onTransact stub reading a strong binder
  kJniBridge,    // registerNativeMethods: Java method -> native entry
  kNativeCall,   // a native call-graph frame
  kSink,         // art::IndirectReferenceTable::Add
};

std::string_view StepKindName(StepKind kind);

struct WitnessStep {
  StepKind kind = StepKind::kJavaCall;
  std::string frame;  // method id (Java) or function name (native)

  bool operator==(const WitnessStep&) const = default;
};

struct WitnessPath {
  // Short machine-readable label for why this path was chosen:
  // "death-recipient", "binder-receive", "session-mint", "thread-create",
  // "jgr-entry".
  std::string reason;
  std::vector<WitnessStep> steps;

  bool empty() const { return steps.empty(); }
  std::size_t size() const { return steps.size(); }
  // The terminal frame ("" for an empty path).
  const std::string& sink() const {
    static const std::string kEmpty;
    return steps.empty() ? kEmpty : steps.back().frame;
  }

  bool operator==(const WitnessPath&) const = default;
};

}  // namespace jgre::analysis::taint

#endif  // JGRE_ANALYSIS_TAINT_WITNESS_H_
