// Per-method taint summaries — the unit the interprocedural engine computes.
//
// A summary answers, for one Java method, "what ultimately happens to a
// binder-typed argument handed to it, and which JGR entry points does it
// reach?" — derived from the BodyFacts *at the method where they occur* and
// joined bottom-up over the call graph, instead of read off a single
// hand-annotated fact on the IPC entry.
//
// The retention lattice is a small severity order:
//
//   kNone < kTransient < kReadOnlyKey < kMemberSlot < kCollection
//
// Join picks the more severe kind, so a transient entry calling a helper
// that retains in a collection summarizes to kCollection (the multi-hop case
// the entry-local scheme missed). One deliberate exception, matching the
// paper's sift rule 4: a local kStoresParamInMemberSlot fact *caps* the
// summary at kMemberSlot regardless of callee retention. The annotation
// states the method's net storage discipline — each call replaces the
// previous binder, so whatever register/unregister pair implements the slot,
// the retained population stays one entry.
#ifndef JGRE_ANALYSIS_TAINT_SUMMARY_H_
#define JGRE_ANALYSIS_TAINT_SUMMARY_H_

#include <map>
#include <set>
#include <string>
#include <string_view>

#include "model/code_model.h"

namespace jgre::analysis::taint {

// Ordered by severity so Join() is std::max.
enum class Retention {
  kNone = 0,
  kTransient,    // used inside the call only; GC reclaims it (rule 2)
  kReadOnlyKey,  // read-only Map/Set/RCL lookup (rule 3)
  kMemberSlot,   // single slot, replaced on the next call (rule 4)
  kCollection,   // retained until removal/death: the vulnerable pattern
};

std::string_view RetentionName(Retention retention);

inline Retention JoinRetention(Retention a, Retention b) {
  return a < b ? b : a;
}

// The retention kind a method's own body facts state, using the sifter's
// precedence (collection dominates; transient before read-only-key before
// member-slot) so entry-local and summary-based verdicts agree wherever the
// annotation sits on the entry itself.
Retention LocalRetention(const model::JavaMethodModel& method);

struct MethodSummary {
  // Transitive effect on a binder argument (see lattice above).
  Retention retention = Retention::kNone;
  // Id of the callee whose summary supplied `retention` ("" = the method's
  // own body facts). The head of the provenance chain for witness reporting.
  std::string retention_via;
  // True when a local member-slot fact absorbed a more severe callee
  // retention (the rule-4 cap fired).
  bool retention_capped = false;

  bool links_to_death = false;   // self or any callee links to death
  bool mints_session = false;    // self or any callee mints+retains a session
  bool only_creates_thread = false;  // every reached entry is thread creation

  // Java-level JGR entry methods reachable from this method (inclusive):
  // the summary analogue of the legacy per-entry BFS.
  std::set<std::string> jgr_entries;

  bool reaches_jgr_entry() const { return !jgr_entries.empty(); }

  bool operator==(const MethodSummary&) const = default;
};

// Engine bookkeeping the bench reports (BENCH_analysis.json).
struct EngineStats {
  int java_methods = 0;
  int call_edges = 0;
  int sccs = 0;
  int max_scc_size = 0;
  int nontrivial_sccs = 0;       // components with >= 2 members or a self loop
  int fixpoint_iterations = 0;   // total member passes across all components
  int summary_updates = 0;       // how many passes changed a summary
  double runtime_ms = 0.0;       // summary computation wall time
};

}  // namespace jgre::analysis::taint

#endif  // JGRE_ANALYSIS_TAINT_SUMMARY_H_
