// TaintEngine — summary-based interprocedural dataflow over the CodeModel.
//
// The legacy detector re-ran a whole-graph BFS per IPC entry and read the
// sift facts off the entry method alone. The engine instead computes one
// MethodSummary per Java method, bottom-up over the condensation of the call
// graph (Tarjan SCCs; mutually recursive helpers share a component iterated
// to a local fixpoint), so:
//
//   * retention annotated on a helper three hops down the call chain
//     surfaces at the entry (multi-hop retention, read-only-key lookups
//     behind a call hop);
//   * JGR-entry reachability is O(V+E) once for the whole model instead of
//     per entry;
//   * every verdict can be explained: WitnessFor() reconstructs the concrete
//     frame chain entry → java callees… → JNI bridge → native frames… →
//     art::IndirectReferenceTable::Add.
//
// The engine is verdict-free: it computes summaries and witnesses; the four
// sift rules stay in src/analysis/pipeline.cc, re-expressed as predicates
// over summaries.
#ifndef JGRE_ANALYSIS_TAINT_ENGINE_H_
#define JGRE_ANALYSIS_TAINT_ENGINE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/taint/summary.h"
#include "analysis/taint/witness.h"
#include "model/code_model.h"

namespace jgre::analysis::taint {

class TaintEngine {
 public:
  // `java_jgr_entries` is the set of Java methods whose JNI targets reach
  // IndirectReferenceTable::Add (the JGR entry extractor's output). The
  // model must outlive the engine.
  TaintEngine(const model::CodeModel* model,
              std::set<std::string> java_jgr_entries);

  // Computes every summary to fixpoint. Idempotent.
  void Run();

  // nullptr for methods absent from the model.
  const MethodSummary* SummaryOf(const std::string& id) const;

  // The concrete evidence chain for an IPC entry's verdict. Reason priority
  // mirrors what makes the interface risky: a reachable death recipient,
  // then the onTransact strong-binder receive (takes_binder), then a session
  // mint, then thread creation / any reached JGR entry. Returns an empty
  // path when nothing JGR-relevant is reachable.
  WitnessPath WitnessFor(const std::string& entry_id, bool takes_binder) const;

  const std::set<std::string>& java_jgr_entries() const { return entries_; }
  const EngineStats& stats() const { return stats_; }

 private:
  // Shortest java call-graph path from `from` to `to` (inclusive), or empty.
  std::vector<std::string> JavaPath(const std::string& from,
                                    const std::string& to) const;
  // JNI bridge + native frames from `java_entry`'s registered native method
  // down to the sink; empty if no exploitable registration reaches it.
  std::vector<WitnessStep> NativeStitch(const std::string& java_entry) const;
  void AppendNative(const std::string& java_entry,
                    WitnessPath* path) const;

  const model::CodeModel* model_;
  std::set<std::string> entries_;
  std::map<std::string, MethodSummary> summaries_;
  EngineStats stats_;
  bool ran_ = false;
};

}  // namespace jgre::analysis::taint

#endif  // JGRE_ANALYSIS_TAINT_ENGINE_H_
