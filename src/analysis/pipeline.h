// The four-step JGRE analysis pipeline (paper §III, Fig 1).
//
//   IPC method extractor  →  JGR entry extractor  →  vulnerable IPC detector
//   (call graph + sifter)  →  [dynamic verification, in src/dynamic]
//
// Each step is a standalone component over the CodeModel so tests can
// exercise them in isolation; `RunAnalysis` chains them into the
// AnalysisReport the benches print as the paper's tables.
#ifndef JGRE_ANALYSIS_PIPELINE_H_
#define JGRE_ANALYSIS_PIPELINE_H_

#include <set>
#include <string>
#include <vector>

#include "model/code_model.h"

namespace jgre::analysis {

// --- Step 1: IPC method extractor (§III.A) -----------------------------------

struct IpcMethodSet {
  // Methods reachable via ServiceManager registrations (system services).
  std::vector<std::string> service_methods;
  // Methods exposed by app-hosted services (prebuilt apps, market apps),
  // including default implementations inherited from abstract base services.
  std::vector<std::string> app_methods;
  int services_registered = 0;
  int native_service_registrations = 0;
};

IpcMethodSet ExtractIpcMethods(const model::CodeModel& model);

// --- Step 2: JGR entry extractor (§III.B) -----------------------------------

struct JgrEntrySet {
  // Java methods whose JNI targets reach IndirectReferenceTable::Add.
  std::set<std::string> java_entries;
  int native_paths_total = 0;       // paper: 147
  int native_paths_init_only = 0;   // paper: 67 filtered
  int native_paths_exploitable = 0; // paper: 80 remain
};

JgrEntrySet ExtractJgrEntries(const model::CodeModel& model);

// --- Step 3: vulnerable IPC detector + sifter (§III.C) ------------------------

enum class ProtectionClass {
  kUnprotected,
  kHelperGuard,       // client-side only (Table II)
  kServerConstraint,  // per-process constraint in the service (Table III)
};

struct AnalyzedInterface {
  std::string id;          // java method id
  std::string service;
  std::string method;
  std::uint32_t transaction_code = 0;
  std::string permission;
  model::PermissionLevel permission_level = model::PermissionLevel::kNone;

  bool reaches_jgr_entry = false;  // call graph hits a Java JGR entry
  bool takes_binder = false;       // strong-binder transmission scenarios
  bool risky = false;
  bool sifted_out = false;
  std::string sift_reason;

  ProtectionClass protection = ProtectionClass::kUnprotected;
  std::string helper_class;              // for kHelperGuard
  bool constraint_trusts_caller = false; // enqueueToast's flaw

  bool app_hosted = false;
  bool prebuilt_app = false;
  std::string package;  // for app-hosted methods
};

struct AnalysisReport {
  IpcMethodSet ipc_methods;
  JgrEntrySet jgr_entries;
  std::vector<AnalyzedInterface> interfaces;  // every IPC method, annotated

  // Risky, unsifted interfaces: the candidates for dynamic verification.
  std::vector<const AnalyzedInterface*> Candidates() const;
  // Subsets by protection class among candidates.
  std::vector<const AnalyzedInterface*> CandidatesWithProtection(
      ProtectionClass protection) const;

  int total_services() const { return ipc_methods.services_registered; }
};

AnalysisReport RunAnalysis(const model::CodeModel& model);

// §VI extension: IPC methods that retain *other* exhaustible resources
// (file descriptors) — invisible to the JGR-centric pipeline above, but
// findable with the same methodology applied to a different sink.
std::vector<std::string> ExtractOtherResourceRisks(
    const model::CodeModel& model);

}  // namespace jgre::analysis

#endif  // JGRE_ANALYSIS_PIPELINE_H_
