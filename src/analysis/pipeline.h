// The four-step JGRE analysis pipeline (paper §III, Fig 1).
//
//   IPC method extractor  →  JGR entry extractor  →  vulnerable IPC detector
//   (taint engine + sifter) →  [dynamic verification, in src/dynamic]
//
// Step 3 runs on the summary-based interprocedural taint engine
// (src/analysis/taint): per-method summaries are propagated bottom-up over
// the Java call graph to a fixpoint and stitched through the JNI bridge into
// the native graph, so retention annotated on a helper deep in the call
// chain surfaces at the IPC entry, and every risky verdict carries a
// concrete witness path down to IndirectReferenceTable::Add. The original
// entry-local detector is kept as RunAnalysisLegacy — the golden cross-check
// the census gate compares the engine against.
#ifndef JGRE_ANALYSIS_PIPELINE_H_
#define JGRE_ANALYSIS_PIPELINE_H_

#include <cstddef>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/taint/summary.h"
#include "analysis/taint/witness.h"
#include "model/code_model.h"

namespace jgre::analysis {

// --- Step 1: IPC method extractor (§III.A) -----------------------------------

struct IpcMethodSet {
  // Methods reachable via ServiceManager registrations (system services).
  std::vector<std::string> service_methods;
  // Methods exposed by app-hosted services (prebuilt apps, market apps),
  // including default implementations inherited from abstract base services.
  std::vector<std::string> app_methods;
  int services_registered = 0;
  int native_service_registrations = 0;
};

IpcMethodSet ExtractIpcMethods(const model::CodeModel& model);

// --- Step 2: JGR entry extractor (§III.B) -----------------------------------

struct JgrEntrySet {
  // Java methods whose JNI targets reach IndirectReferenceTable::Add.
  std::set<std::string> java_entries;
  int native_paths_total = 0;       // paper: 147
  int native_paths_init_only = 0;   // paper: 67 filtered
  int native_paths_exploitable = 0; // paper: 80 remain
};

JgrEntrySet ExtractJgrEntries(const model::CodeModel& model);

// --- Step 3: vulnerable IPC detector + sifter (§III.C) ------------------------

enum class ProtectionClass {
  kUnprotected,
  kHelperGuard,       // client-side only (Table II)
  kServerConstraint,  // per-process constraint in the service (Table III)
};

// Why the sifter discharged a risky interface. Typed so downstream
// consumers (the detect hunts, the fuser, tests) key on the enum; the
// free-form report text is derived via SiftReasonText and never compared.
enum class SiftReason {
  kNone = 0,             // not sifted: still a candidate (or never risky)
  kRule1ThreadOnly,      // only Thread.nativeCreate; released immediately
  kRule2Transient,       // used inside the call only; collected by GC
  kRule3ReadOnlyKey,     // read-only Map/Set/RemoteCallbackList key
  kRule4MemberSlot,      // member slot, previous binder revoked on next call
  kSignaturePermission,  // unreachable from third-party apps
};

// Short machine-readable slug ("none", "rule1_thread_only", ...).
std::string_view SiftReasonName(SiftReason reason);

// The paper's free-form reason text, byte-identical to the strings the
// reports have always carried. Rules 2-4 append " (via <callee>)" when the
// deciding retention came from a callee (`via` non-empty); rule 1 and the
// permission filter never carry provenance. kNone yields "".
std::string SiftReasonText(SiftReason reason, std::string_view via = {});

struct AnalyzedInterface {
  std::string id;          // java method id
  std::string service;
  std::string method;
  std::uint32_t transaction_code = 0;
  std::string permission;
  model::PermissionLevel permission_level = model::PermissionLevel::kNone;

  bool reaches_jgr_entry = false;  // call graph hits a Java JGR entry
  bool takes_binder = false;       // strong-binder transmission scenarios
  bool risky = false;
  bool sifted_out = false;
  SiftReason sift_reason = SiftReason::kNone;
  // Every JGR entry reached is thread creation (sift rule 1's predicate).
  bool only_creates_thread = false;

  // Summary-derived facts (engine path only; legacy leaves the defaults):
  // the interface's transitive retention kind, the callee that supplied it
  // ("" = the entry's own body), and the evidence chain for risky verdicts.
  taint::Retention retention = taint::Retention::kNone;
  std::string retention_via;
  bool links_to_death = false;
  bool mints_session = false;
  taint::WitnessPath witness;  // non-empty iff risky && !sifted_out

  ProtectionClass protection = ProtectionClass::kUnprotected;
  std::string helper_class;              // for kHelperGuard
  bool constraint_trusts_caller = false; // enqueueToast's flaw

  bool app_hosted = false;
  bool prebuilt_app = false;
  std::string package;  // for app-hosted methods

  // The report string for this interface's sift verdict ("" when unsifted).
  std::string sift_reason_text() const {
    return SiftReasonText(sift_reason, retention_via);
  }
};

struct AnalysisReport {
  IpcMethodSet ipc_methods;
  JgrEntrySet jgr_entries;
  std::vector<AnalyzedInterface> interfaces;  // every IPC method, annotated
  taint::EngineStats engine_stats;  // zero-filled on the legacy path

  // Risky, unsifted interfaces — the candidates for dynamic verification —
  // as indices into `interfaces`. Indices (not pointers) so the result stays
  // valid across report copies/moves and never dangles when taken from a
  // temporary report.
  std::vector<std::size_t> Candidates() const;
  // Subset of Candidates() with the given protection class.
  std::vector<std::size_t> CandidatesWithProtection(
      ProtectionClass protection) const;

  int total_services() const { return ipc_methods.services_registered; }
};

// Summary-based engine analysis: every risky, unsifted interface carries a
// witness path ending at the JGR sink.
AnalysisReport RunAnalysis(const model::CodeModel& model);

// The original entry-local detector (single hand-annotated BodyFact on the
// entry, per-entry BFS, no witnesses). Kept as the golden cross-check: the
// census gate asserts RunAnalysis produces identical verdicts on the AOSP
// corpus before trusting the engine's extra expressiveness.
AnalysisReport RunAnalysisLegacy(const model::CodeModel& model);

// §VI extension: IPC methods that retain *other* exhaustible resources
// (file descriptors) — invisible to the JGR-centric pipeline above, but
// findable with the same methodology applied to a different sink.
std::vector<std::string> ExtractOtherResourceRisks(
    const model::CodeModel& model);

}  // namespace jgre::analysis

#endif  // JGRE_ANALYSIS_PIPELINE_H_
