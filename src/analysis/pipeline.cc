#include "analysis/pipeline.h"

#include <algorithm>
#include <deque>
#include <map>

#include "analysis/taint/engine.h"
#include "common/log.h"
#include "common/strings.h"

namespace jgre::analysis {

using model::BodyFact;
using model::CodeModel;
using model::JavaMethodModel;

// --- Step 1 -------------------------------------------------------------------

IpcMethodSet ExtractIpcMethods(const CodeModel& model) {
  IpcMethodSet out;
  std::set<std::string> service_names;
  for (const model::ServiceRegistration& reg : model.registrations) {
    service_names.insert(reg.service_name);
    if (reg.registrar ==
        model::ServiceRegistration::Registrar::kNativeAddService) {
      ++out.native_service_registrations;
    }
  }
  out.services_registered = static_cast<int>(service_names.size());
  std::set<std::string> app_service_names;
  for (const model::AppServiceModel& app : model.app_services) {
    app_service_names.insert(app.service_name);
  }
  for (const auto& [id, method] : model.java_methods) {
    if (!method.overrides_aidl || method.service.empty()) continue;
    if (service_names.count(method.service) > 0) {
      out.service_methods.push_back(id);
    } else if (app_service_names.count(method.service) > 0) {
      out.app_methods.push_back(id);
    }
  }
  return out;
}

// --- Step 2 -------------------------------------------------------------------

namespace {

// Counts simple JNI-entry→Add paths in the (acyclic) native call graph.
int CountPathsToSink(const CodeModel& model, const std::string& from,
                     std::map<std::string, int>* memo) {
  if (from == model::kJgrSinkFunction) return 1;
  if (auto it = memo->find(from); it != memo->end()) return it->second;
  (*memo)[from] = 0;  // cycle guard
  const auto node = model.native_methods.find(from);
  int paths = 0;
  if (node != model.native_methods.end()) {
    for (const std::string& callee : node->second.callees) {
      paths += CountPathsToSink(model, callee, memo);
    }
  }
  (*memo)[from] = paths;
  return paths;
}

}  // namespace

JgrEntrySet ExtractJgrEntries(const CodeModel& model) {
  JgrEntrySet out;
  std::map<std::string, int> memo;
  std::map<std::string, bool> native_reaches;
  for (const auto& [name, native] : model.native_methods) {
    if (!native.is_jni_entry) continue;
    const int paths = CountPathsToSink(model, name, &memo);
    if (paths == 0) continue;
    out.native_paths_total += paths;
    if (native.runtime_init_only) {
      // Reachable only during Runtime::Init (class caching etc.) — a third-
      // party app can never drive these, so they are filtered (§III.B.1).
      out.native_paths_init_only += paths;
    } else {
      out.native_paths_exploitable += paths;
      native_reaches[name] = true;
    }
  }
  // Map surviving native entries back to Java via registerNativeMethods.
  for (const model::JniRegistration& reg : model.jni_registrations) {
    if (native_reaches.count(reg.native_method) > 0) {
      out.java_entries.insert(reg.java_method);
    }
  }
  return out;
}

// --- Step 3 -------------------------------------------------------------------

std::string_view SiftReasonName(SiftReason reason) {
  switch (reason) {
    case SiftReason::kNone:
      return "none";
    case SiftReason::kRule1ThreadOnly:
      return "rule1_thread_only";
    case SiftReason::kRule2Transient:
      return "rule2_transient";
    case SiftReason::kRule3ReadOnlyKey:
      return "rule3_read_only_key";
    case SiftReason::kRule4MemberSlot:
      return "rule4_member_slot";
    case SiftReason::kSignaturePermission:
      return "signature_permission";
  }
  return "?";
}

std::string SiftReasonText(SiftReason reason, std::string_view via) {
  // The historical report texts, byte-for-byte: the census gate and the
  // analysis-report JSON still compare/emit these strings.
  std::string_view text;
  bool takes_via = false;
  switch (reason) {
    case SiftReason::kNone:
      return "";
    case SiftReason::kRule1ThreadOnly:
      text = "rule 1: only Thread.nativeCreate, reference released immediately";
      break;
    case SiftReason::kRule2Transient:
      text = "rule 2: binder used inside the call only; collected by GC";
      takes_via = true;
      break;
    case SiftReason::kRule3ReadOnlyKey:
      text =
          "rule 3: binder only used as a read-only key into Map/Set/"
          "RemoteCallbackList";
      takes_via = true;
      break;
    case SiftReason::kRule4MemberSlot:
      text = "rule 4: member variable, previous binder revoked on the next "
             "call";
      takes_via = true;
      break;
    case SiftReason::kSignaturePermission:
      text =
          "permission map: signature-level permission, unreachable from "
          "third-party apps";
      break;
  }
  if (takes_via && !via.empty()) return StrCat(text, " (via ", via, ")");
  return std::string(text);
}

namespace {

// BFS over Java call edges; returns the set of JGR entry methods reachable
// from `start` (inclusive). Legacy detector only — the engine gets the same
// set from the method's summary.
std::set<std::string> ReachableJgrEntries(const CodeModel& model,
                                          const std::string& start,
                                          const JgrEntrySet& entries) {
  std::set<std::string> reached;
  std::set<std::string> visited;
  std::deque<std::string> queue{start};
  while (!queue.empty()) {
    const std::string current = queue.front();
    queue.pop_front();
    if (!visited.insert(current).second) continue;
    if (entries.java_entries.count(current) > 0) reached.insert(current);
    if (const JavaMethodModel* m = model.FindJavaMethod(current)) {
      for (const std::string& callee : m->callees) queue.push_back(callee);
    }
  }
  return reached;
}

// Legacy sifter: keys on the entry method's own BodyFacts.
void ApplySifter(AnalyzedInterface* iface, const JavaMethodModel& method,
                 const std::set<std::string>& reached_entries) {
  // Rule 1: the only JGR entry on the path is thread creation, whose native
  // side releases the reference before returning.
  iface->only_creates_thread =
      !reached_entries.empty() &&
      std::all_of(reached_entries.begin(), reached_entries.end(),
                  [](const std::string& e) {
                    return e == model::kThreadCreateEntry;
                  });
  if (iface->only_creates_thread && !iface->takes_binder) {
    iface->sifted_out = true;
    iface->sift_reason = SiftReason::kRule1ThreadOnly;
    return;
  }
  const bool retains_collection =
      method.HasFact(BodyFact::kStoresParamInCollection);
  if (retains_collection) return;  // genuinely retained: stays a candidate
  if (method.HasFact(BodyFact::kUsesParamTransiently)) {
    iface->sifted_out = true;
    iface->sift_reason = SiftReason::kRule2Transient;
    return;
  }
  if (method.HasFact(BodyFact::kUsesParamAsReadOnlyKey)) {
    iface->sifted_out = true;
    iface->sift_reason = SiftReason::kRule3ReadOnlyKey;
    return;
  }
  if (method.HasFact(BodyFact::kStoresParamInMemberSlot)) {
    iface->sifted_out = true;
    iface->sift_reason = SiftReason::kRule4MemberSlot;
    return;
  }
}

// Engine sifter: the same four rules as predicates over the method's
// interprocedural summary. When the deciding retention came from a callee
// rather than the entry's own body, `retention_via` names the provenance in
// the derived reason text — on the AOSP corpus (facts on the entry) the
// texts are byte-identical to legacy.
void ApplySummarySifter(AnalyzedInterface* iface,
                        const taint::MethodSummary& summary) {
  if (summary.only_creates_thread && !iface->takes_binder) {
    iface->sifted_out = true;
    iface->sift_reason = SiftReason::kRule1ThreadOnly;
    return;
  }
  const auto sift = [&](SiftReason reason) {
    iface->sifted_out = true;
    iface->sift_reason = reason;
  };
  switch (summary.retention) {
    case taint::Retention::kCollection:
    case taint::Retention::kNone:
      return;  // retained (or nothing known): stays a candidate
    case taint::Retention::kTransient:
      sift(SiftReason::kRule2Transient);
      return;
    case taint::Retention::kReadOnlyKey:
      sift(SiftReason::kRule3ReadOnlyKey);
      return;
    case taint::Retention::kMemberSlot:
      sift(SiftReason::kRule4MemberSlot);
      return;
  }
}

// Service/app metadata, permission mapping and protection classification
// shared by the engine and legacy paths.
struct AnalysisContext {
  const CodeModel* model;
  std::map<std::string, const model::AppServiceModel*> app_by_service;
  std::map<std::string, const model::HelperGuard*> guard_by_method;

  explicit AnalysisContext(const CodeModel& m) : model(&m) {
    for (const model::AppServiceModel& app : m.app_services) {
      app_by_service[app.service_name] = &app;
    }
    for (const model::HelperGuard& guard : m.helper_guards) {
      guard_by_method[guard.guarded_method] = &guard;
    }
  }

  AnalyzedInterface MakeBase(const std::string& id, bool app_hosted) const {
    const JavaMethodModel& method = *model->FindJavaMethod(id);
    AnalyzedInterface iface;
    iface.id = id;
    iface.service = method.service;
    iface.method = method.name;
    iface.transaction_code = method.transaction_code;
    iface.permission = method.permission;
    iface.permission_level = model->LevelOf(method.permission);
    iface.app_hosted = app_hosted;
    if (app_hosted) {
      if (auto it = app_by_service.find(method.service);
          it != app_by_service.end()) {
        iface.package = it->second->package;
        iface.prebuilt_app = it->second->prebuilt;
      }
    }
    // The strong-binder transmission scenarios (§III.C.2):
    // Parcel.nativeReadStrongBinder never shows up in the IPC method's own
    // call graph — it runs in the generated onTransact stub — so any method
    // that *receives* a Binder/IInterface (directly, in a container, array or
    // list) is treated as reaching it.
    iface.takes_binder = method.HasBinderParam();
    return iface;
  }

  void Finish(AnalyzedInterface* iface, const JavaMethodModel& method) const {
    // Permission filter: interfaces third-party apps cannot call at all.
    if (iface->risky && !iface->sifted_out &&
        iface->permission_level == model::PermissionLevel::kSignature) {
      iface->sifted_out = true;
      iface->sift_reason = SiftReason::kSignaturePermission;
    }
    // Protection classification (§IV.C) — from code-level guard facts.
    if (auto it = guard_by_method.find(iface->id);
        it != guard_by_method.end()) {
      iface->protection = ProtectionClass::kHelperGuard;
      iface->helper_class = it->second->helper_class;
    } else if (method.HasFact(BodyFact::kPerProcessConstraint)) {
      iface->protection = ProtectionClass::kServerConstraint;
      iface->constraint_trusts_caller =
          method.HasFact(BodyFact::kConstraintTrustsCallerInput);
    }
  }
};

void SortInterfaces(AnalysisReport* report) {
  std::sort(report->interfaces.begin(), report->interfaces.end(),
            [](const AnalyzedInterface& a, const AnalyzedInterface& b) {
              return std::tie(a.service, a.transaction_code) <
                     std::tie(b.service, b.transaction_code);
            });
}

}  // namespace

AnalysisReport RunAnalysis(const CodeModel& model) {
  AnalysisReport report;
  report.ipc_methods = ExtractIpcMethods(model);
  report.jgr_entries = ExtractJgrEntries(model);

  taint::TaintEngine engine(&model, report.jgr_entries.java_entries);
  engine.Run();
  report.engine_stats = engine.stats();

  const AnalysisContext ctx(model);
  auto analyze = [&](const std::string& id, bool app_hosted) {
    const JavaMethodModel& method = *model.FindJavaMethod(id);
    AnalyzedInterface iface = ctx.MakeBase(id, app_hosted);
    const taint::MethodSummary* summary = engine.SummaryOf(id);
    iface.reaches_jgr_entry = summary->reaches_jgr_entry();
    iface.risky = iface.reaches_jgr_entry || iface.takes_binder;
    iface.retention = summary->retention;
    iface.retention_via = summary->retention_via;
    iface.links_to_death = summary->links_to_death;
    iface.mints_session = summary->mints_session;
    iface.only_creates_thread = summary->only_creates_thread;
    if (iface.risky) ApplySummarySifter(&iface, *summary);
    ctx.Finish(&iface, method);
    if (iface.risky && !iface.sifted_out) {
      iface.witness = engine.WitnessFor(id, iface.takes_binder);
    }
    report.interfaces.push_back(std::move(iface));
  };
  for (const std::string& id : report.ipc_methods.service_methods) {
    analyze(id, /*app_hosted=*/false);
  }
  for (const std::string& id : report.ipc_methods.app_methods) {
    analyze(id, /*app_hosted=*/true);
  }
  SortInterfaces(&report);
  return report;
}

AnalysisReport RunAnalysisLegacy(const CodeModel& model) {
  AnalysisReport report;
  report.ipc_methods = ExtractIpcMethods(model);
  report.jgr_entries = ExtractJgrEntries(model);

  const AnalysisContext ctx(model);
  auto analyze = [&](const std::string& id, bool app_hosted) {
    const JavaMethodModel& method = *model.FindJavaMethod(id);
    AnalyzedInterface iface = ctx.MakeBase(id, app_hosted);
    const std::set<std::string> reached =
        ReachableJgrEntries(model, id, report.jgr_entries);
    iface.reaches_jgr_entry = !reached.empty();
    iface.risky = iface.reaches_jgr_entry || iface.takes_binder;
    if (iface.risky) ApplySifter(&iface, method, reached);
    ctx.Finish(&iface, method);
    report.interfaces.push_back(std::move(iface));
  };
  for (const std::string& id : report.ipc_methods.service_methods) {
    analyze(id, /*app_hosted=*/false);
  }
  for (const std::string& id : report.ipc_methods.app_methods) {
    analyze(id, /*app_hosted=*/true);
  }
  SortInterfaces(&report);
  return report;
}

std::vector<std::string> ExtractOtherResourceRisks(const CodeModel& model) {
  std::vector<std::string> out;
  for (const auto& [id, method] : model.java_methods) {
    if (!method.overrides_aidl || method.service.empty()) continue;
    if (method.HasFact(BodyFact::kRetainsFileDescriptor)) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> AnalysisReport::Candidates() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < interfaces.size(); ++i) {
    if (interfaces[i].risky && !interfaces[i].sifted_out) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> AnalysisReport::CandidatesWithProtection(
    ProtectionClass protection) const {
  std::vector<std::size_t> out;
  for (const std::size_t i : Candidates()) {
    if (interfaces[i].protection == protection) out.push_back(i);
  }
  return out;
}

}  // namespace jgre::analysis
