#include "arms/weak_watch_service.h"

#include "binder/parcel.h"
#include "runtime/runtime.h"

namespace jgre::arms {

namespace {
// Map insert plus one weak-table slot: cheap, like any listener bookkeeping.
constexpr DurationUs kWatchCostUs = 220;
}  // namespace

Status WeakWatchService::OnTransact(std::uint32_t code,
                                    const binder::Parcel& data,
                                    binder::Parcel* reply,
                                    const binder::CallContext& ctx) {
  (void)reply;
  JGRE_RETURN_IF_ERROR(data.EnforceInterface(kDescriptor));
  if (ctx.clock != nullptr) ctx.clock->AdvanceUs(kWatchCostUs);
  switch (code) {
    case TRANSACTION_watchWeak: {
      auto target = data.ReadStrongBinder(ctx);
      if (!target.ok()) return target.status();
      const binder::StrongBinder& b = target.value();
      if (!b.valid() || !b.java_obj.valid() || ctx.runtime == nullptr) {
        return Status::Ok();  // same-process or null binder: nothing to pin
      }
      if (refs_.count(b.node) > 0) return Status::Ok();  // already watched
      auto ref = ctx.runtime->vm().AddWeakGlobalRef(b.java_obj);
      if (!ref.ok()) return ref.status();
      refs_[b.node] = ref.value();
      ++total_watched_;
      return Status::Ok();
    }
    case TRANSACTION_unwatchWeak: {
      auto target = data.ReadStrongBinder(ctx);
      if (!target.ok()) return target.status();
      const binder::StrongBinder& b = target.value();
      auto it = b.valid() ? refs_.find(b.node) : refs_.end();
      if (it == refs_.end() || ctx.runtime == nullptr) return Status::Ok();
      ctx.runtime->vm().DeleteWeakGlobalRef(it->second);
      refs_.erase(it);
      return Status::Ok();
    }
    default:
      return InvalidArgument("unknown weakwatch transaction");
  }
}

}  // namespace jgre::arms
