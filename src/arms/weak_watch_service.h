// WeakWatchService — an app-reachable interface that pins *weak* global
// references in its host process.
//
// The JGRE paper's 57 interfaces all leak strong JGRs; ART's weak-global
// table shares the same capacity and the same abort-on-overflow behavior
// (art::JavaVMExt::AddWeakGlobalRef), but no monitor watches it — the §V
// defense thresholds only the strong table. WeakWatchService models the
// pattern that exposes it: a service that tracks client objects "without
// keeping them alive" via NewWeakGlobalRef (the textbook use of weak
// globals) and trusts clients to unwatch. An attacker who watches fresh
// binders and never (or only half) unwatches grows the weak table invisibly
// to the alarm — the arms matrix's weakref_churn strategy.
//
// Never registered at boot: arms cells add it dynamically (MakeBinder +
// ServiceManager::AddService) so every pinned census stays untouched.
#ifndef JGRE_ARMS_WEAK_WATCH_SERVICE_H_
#define JGRE_ARMS_WEAK_WATCH_SERVICE_H_

#include <string>
#include <unordered_map>

#include "binder/ibinder.h"
#include "common/types.h"
#include "runtime/indirect_reference_table.h"

namespace jgre::arms {

class WeakWatchService : public binder::BBinder {
 public:
  static constexpr const char* kName = "weakwatch";
  static constexpr const char* kDescriptor =
      "com.android.internal.arms.IWeakWatch";

  enum Code : std::uint32_t {
    TRANSACTION_watchWeak = 1,    // binder -> NewWeakGlobalRef, no cap
    TRANSACTION_unwatchWeak = 2,  // binder -> DeleteWeakGlobalRef
  };

  WeakWatchService() : binder::BBinder(kDescriptor) {}

  Status OnTransact(std::uint32_t code, const binder::Parcel& data,
                    binder::Parcel* reply,
                    const binder::CallContext& ctx) override;

  std::size_t watched() const { return refs_.size(); }
  std::int64_t total_watched() const { return total_watched_; }

 private:
  // node -> the explicit weak global this service holds for it.
  std::unordered_map<NodeId, rt::IndirectRef> refs_;
  std::int64_t total_watched_ = 0;
};

}  // namespace jgre::arms

#endif  // JGRE_ARMS_WEAK_WATCH_SERVICE_H_
