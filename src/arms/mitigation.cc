#include "arms/mitigation.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "os/kernel.h"

namespace jgre::arms {

// ---------------------------------------------------------------- PerUidQuota

void PerUidQuota::DecayTo(std::size_t victim_live_refs) {
  if (!primed_) {
    primed_ = true;
    last_victim_live_ = victim_live_refs;
    return;
  }
  if (victim_live_refs < last_victim_live_ && total_charged_ > 0) {
    // The table shrank (GC reclaim or defender recovery): release charges
    // proportionally — the policy has no per-reference attribution, only the
    // invariant that outstanding charges track outstanding growth.
    const std::int64_t reclaimed =
        static_cast<std::int64_t>(last_victim_live_ - victim_live_refs);
    const double scale = std::max(
        0.0, 1.0 - static_cast<double>(reclaimed) /
                       static_cast<double>(total_charged_));
    std::int64_t new_total = 0;
    for (auto& [uid, charge] : charges_) {
      charge = static_cast<std::int64_t>(static_cast<double>(charge) * scale);
      new_total += charge;
    }
    total_charged_ = new_total;
  }
  last_victim_live_ = victim_live_refs;
}

Status PerUidQuota::Admit(const MitigationRequest& request) {
  DecayTo(request.victim_live_refs);
  const std::int64_t charged = charges_[request.caller_uid.value()];
  if (charged >= config_.max_charged_refs) {
    return LimitExceeded(StrCat("per_uid_quota: uid ",
                                request.caller_uid.value(), " holds ",
                                charged, " charged refs (cap ",
                                config_.max_charged_refs, ")"));
  }
  return Status::Ok();
}

void PerUidQuota::Settle(const MitigationRequest& request,
                         std::int64_t jgr_delta) {
  if (jgr_delta > 0) {
    charges_[request.caller_uid.value()] += jgr_delta;
    total_charged_ += jgr_delta;
  }
  const std::int64_t live =
      static_cast<std::int64_t>(request.victim_live_refs) + jgr_delta;
  last_victim_live_ = live > 0 ? static_cast<std::size_t>(live) : 0;
}

std::int64_t PerUidQuota::ChargedTo(Uid uid) const {
  auto it = charges_.find(uid.value());
  return it == charges_.end() ? 0 : it->second;
}

// --------------------------------------------------------- TableGrowthBackoff

Status TableGrowthBackoff::Admit(const MitigationRequest& request) {
  if (request.victim_live_refs <= config_.watermark) return Status::Ok();
  const std::size_t excess = request.victim_live_refs - config_.watermark;
  const std::size_t doublings =
      config_.doubling_step == 0 ? 0 : excess / config_.doubling_step;
  DurationUs delay = config_.base_delay_us;
  for (std::size_t i = 0; i < doublings && delay < config_.max_delay_us; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, config_.max_delay_us);
  if (request.clock != nullptr && delay > 0) {
    request.clock->AdvanceUs(delay);
    ++delayed_calls_;
    total_delay_us_ += delay;
  }
  return Status::Ok();  // a tax, never a refusal
}

// ------------------------------------------------------ PerInterfaceRateLimit

Status PerInterfaceRateLimit::Admit(const MitigationRequest& request) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(request.descriptor_id) << 32) |
      request.code;
  Bucket& bucket = buckets_[key];
  if (!bucket.primed) {
    bucket.primed = true;
    bucket.tokens = config_.burst;
    bucket.last_us = request.now_us;
  } else if (request.now_us > bucket.last_us) {
    const double elapsed_s =
        static_cast<double>(request.now_us - bucket.last_us) / 1e6;
    bucket.tokens = std::min(config_.burst,
                             bucket.tokens + elapsed_s * config_.tokens_per_sec);
    bucket.last_us = request.now_us;
  }
  if (bucket.tokens < 1.0) {
    return LimitExceeded(StrCat("per_interface_rate_limit: interface ",
                                request.descriptor_id, "#", request.code,
                                " out of tokens"));
  }
  bucket.tokens -= 1.0;
  return Status::Ok();
}

// ------------------------------------------------------------ MitigationStack

MitigationStack::MitigationStack(core::AndroidSystem* system, Config config)
    : system_(system), config_(config) {}

MitigationStack::~MitigationStack() {
  if (installed_) {
    system_->driver().SetTransactGate(nullptr);
    system_->driver().SetTransactObserver(nullptr);
  }
}

void MitigationStack::Add(std::unique_ptr<MitigationPolicy> policy) {
  policies_.push_back(std::move(policy));
}

std::size_t MitigationStack::VictimLiveRefs() const {
  const os::Process* victim = system_->kernel().FindProcess(config_.victim);
  if (victim == nullptr || !victim->alive || !victim->HasRuntime()) return 0;
  const rt::JavaVMExt& vm = victim->runtime->vm();
  return vm.GlobalRefCount() + vm.WeakGlobalRefCount();
}

void MitigationStack::Install() {
  if (installed_ || policies_.empty()) return;
  installed_ = true;
  binder::BinderDriver& driver = system_->driver();
  driver.SetTransactGate(
      [this](const binder::BinderDriver::TransactInfo& info) -> Status {
        if (info.target_owner != config_.victim ||
            info.caller_uid < config_.min_gated_uid) {
          return Status::Ok();
        }
        MitigationRequest request;
        request.caller = info.caller;
        request.caller_uid = info.caller_uid;
        request.victim = info.target_owner;
        request.descriptor_id = info.descriptor_id;
        request.code = info.code;
        request.now_us = system_->clock().NowUs();
        request.victim_live_refs = VictimLiveRefs();
        request.clock = &system_->clock();
        for (auto& policy : policies_) {
          Status vote = policy->Admit(request);
          if (!vote.ok()) {
            ++total_denied_;
            ++denied_by_uid_[info.caller_uid.value()];
            ++denied_by_policy_[std::string(policy->id())];
            in_flight_ = false;
            return vote;
          }
        }
        pending_ = request;
        in_flight_ = true;
        return Status::Ok();
      });
  driver.SetTransactObserver(
      [this](const binder::BinderDriver::TransactInfo& info,
             const Status& status) {
        (void)info;
        (void)status;
        if (!in_flight_) return;
        in_flight_ = false;
        const std::int64_t delta =
            static_cast<std::int64_t>(VictimLiveRefs()) -
            static_cast<std::int64_t>(pending_.victim_live_refs);
        for (auto& policy : policies_) policy->Settle(pending_, delta);
      });
}

std::int64_t MitigationStack::DeniedForUid(Uid uid) const {
  auto it = denied_by_uid_.find(uid.value());
  return it == denied_by_uid_.end() ? 0 : it->second;
}

}  // namespace jgre::arms
