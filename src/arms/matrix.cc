#include "arms/matrix.h"

#include <algorithm>
#include <memory>
#include <set>
#include <stdexcept>
#include <utility>

#include "common/strings.h"
#include "fleet/runner.h"
#include "fleet/spec.h"

namespace jgre::arms {

namespace {

// Mirrors the fleet scenario driver's hunt-window size so matrix cells and
// census devices feed the hunt battery identically shaped evidence.
constexpr std::size_t kHuntWindowCapacity = 2048;

// Idle stride once the strategy has finished (denied out, killed, or budget
// spent) but the horizon hasn't been reached: keep the benign workload and
// the defender's pump moving so recovery/hunt evidence settles.
constexpr DurationUs kIdleStrideUs = 10'000;

// Per-cell extras the ScenarioDriver computes beyond the DeviceOutcome.
// Indexed by cell; each slot is written by exactly one worker task.
struct CellExtra {
  CellOutcome outcome = CellOutcome::kSurvived;
  StrategyStats attacker;
  std::map<std::string, std::int64_t> denied_by_policy;
};

struct CellDesc {
  AttackPlan plan;
  DefenseConfig defense;
  OperatingPoint point;
};

std::unique_ptr<MitigationStack> BuildStack(core::AndroidSystem& system,
                                            const MitigationSettings& set,
                                            std::size_t jgr_cap) {
  if (!set.any()) return nullptr;
  MitigationStack::Config config;
  config.victim = system.system_server_pid();
  auto stack = std::make_unique<MitigationStack>(&system, config);
  if (set.per_uid_quota) {
    stack->Add(std::make_unique<PerUidQuota>(set.quota));
  }
  if (set.table_growth_backoff) {
    TableGrowthBackoff::Config backoff = set.backoff;
    if (backoff.watermark == 0) backoff.watermark = jgr_cap / 2;
    stack->Add(std::make_unique<TableGrowthBackoff>(backoff));
  }
  if (set.per_interface_rate_limit) {
    stack->Add(std::make_unique<PerInterfaceRateLimit>(set.rate_limit));
  }
  stack->Install();
  return stack;
}

fleet::DeviceOutcome RunCell(const CellDesc& cell,
                             const fleet::FleetDeviceSpec& spec,
                             sim::DeviceSim& device,
                             const detect::InterfaceCatalog* catalog,
                             CellExtra* extra) {
  fleet::DeviceOutcome out;
  out.index = spec.index;
  out.scenario_class = spec.scenario_class;

  core::AndroidSystem& system = device.system();
  fleet::DeviceProbe probe(system.system_server_pid().value(),
                           kHuntWindowCapacity);
  device.bus().Subscribe(&probe,
                         obs::MaskOf(obs::Category::kJgr) |
                             obs::MaskOf(obs::Category::kIpc),
                         /*pid_filter=*/-1, obs::Delivery::kBuffered);

  std::unique_ptr<MitigationStack> stack =
      BuildStack(system, cell.defense.mitigations, cell.point.jgr_cap);
  std::unique_ptr<AttackStrategy> strategy = MakeStrategy(cell.plan);
  if (strategy == nullptr) {
    throw std::runtime_error(
        StrCat("MatrixRunner (cell ", spec.index, "): unknown strategy '",
               cell.plan.name, "'"));
  }
  if (Status setup = strategy->Setup(system); !setup.ok()) {
    throw std::runtime_error(StrCat("MatrixRunner (cell ", spec.index, ", ",
                                    cell.plan.name, "): setup failed: ",
                                    setup.ToString()));
  }
  const std::vector<Uid> attacker_uids = strategy->attacker_uids();
  const std::vector<std::string> attacker_packages =
      strategy->attacker_packages();

  defense::JgreDefender* defender = device.defender();
  attack::BenignWorkload* benign = device.benign();
  std::vector<TimeUs>& next_benign = device.benign_schedule();
  Rng& rng = device.rng();

  const auto pump_benign = [&] {
    const TimeUs now = system.clock().NowUs();
    for (std::size_t i = 0; i < next_benign.size(); ++i) {
      if (now >= next_benign[i]) {
        benign->InteractOnce(i);
        next_benign[i] =
            system.clock().NowUs() + 20'000 + rng.UniformU64(130'000);
      }
    }
  };

  const TimeUs start = system.clock().NowUs();
  const TimeUs deadline = start + spec.horizon_us;
  TimeUs exhausted_at = 0;
  bool strategy_done = false;

  // Unlike the census loop, an incident does NOT end the cell: the defender's
  // recovery (killing issuers) is exactly the defense-vs-attack interaction
  // the matrix measures, and the strategy reports itself done when every
  // issuer is dead or its denial budget is spent.
  while (system.clock().NowUs() < deadline) {
    if (!strategy_done) {
      strategy_done = !strategy->Step(system);
    } else {
      system.clock().AdvanceUs(kIdleStrideUs);
    }
    pump_benign();
    if (system.soft_reboots() > 0) {
      exhausted_at = system.clock().NowUs();
      break;
    }
  }

  out.exhausted = system.soft_reboots() > 0;
  if (out.exhausted) {
    if (exhausted_at == 0) exhausted_at = system.clock().NowUs();
    out.time_to_exhaustion_us = exhausted_at - start;
    out.exhausted_within_horizon = out.time_to_exhaustion_us <= spec.horizon_us;
  }
  out.incident = defender != nullptr && !defender->incidents().empty();
  out.virtual_duration_us = system.clock().NowUs() - start;
  out.stopped_by_denial = strategy->stats().stopped_by_denial;

  int live_attackers = 0;
  for (const std::string& package : attacker_packages) {
    services::AppProcess* app = system.FindApp(package);
    if (app != nullptr && app->alive()) ++live_attackers;
  }
  out.attacker_killed = live_attackers == 0;

  if (stack != nullptr) {
    for (const Uid uid : attacker_uids) {
      out.denied_attacker_calls += stack->DeniedForUid(uid);
    }
    out.denied_benign_calls = stack->total_denied() - out.denied_attacker_calls;
  }
  if (defender != nullptr) {
    const std::set<std::string> attacker_set(attacker_packages.begin(),
                                             attacker_packages.end());
    for (const auto& incident : defender->incidents()) {
      for (const std::string& package : incident.killed_packages) {
        if (attacker_set.count(package) == 0) ++out.benign_kills;
      }
    }
  }

  extra->attacker = strategy->stats();
  if (stack != nullptr) extra->denied_by_policy = stack->denied_by_policy();
  extra->outcome = out.exhausted ? CellOutcome::kExhausted
                   : out.attacker_killed
                       ? CellOutcome::kKilled
                       : out.stopped_by_denial ? CellOutcome::kDenied
                                               : CellOutcome::kSurvived;

  fleet::FinishDeviceOutcome(device, probe, catalog, &out);
  return out;
}

}  // namespace

std::vector<AttackPlan> DefaultAttacks() {
  std::vector<AttackPlan> attacks;
  for (const std::string& name : KnownStrategies()) {
    AttackPlan plan;
    plan.name = name;
    attacks.push_back(std::move(plan));
  }
  return attacks;
}

std::vector<DefenseConfig> DefaultDefenses() {
  std::vector<DefenseConfig> defenses;
  DefenseConfig none;
  none.name = "none";
  defenses.push_back(none);
  DefenseConfig defender;
  defender.name = "defender";
  defender.defender = true;
  defenses.push_back(defender);
  DefenseConfig quota = defender;
  quota.name = "defender+quota";
  quota.mitigations.per_uid_quota = true;
  defenses.push_back(quota);
  DefenseConfig backoff = defender;
  backoff.name = "defender+backoff";
  backoff.mitigations.table_growth_backoff = true;
  defenses.push_back(backoff);
  DefenseConfig rate = defender;
  rate.name = "defender+rate_limit";
  rate.mitigations.per_interface_rate_limit = true;
  defenses.push_back(rate);
  return defenses;
}

std::vector<OperatingPoint> DefaultOperatingPoints() {
  return {{4'800, 2}, {6'400, 2}, {12'800, 2}, {25'600, 2}, {51'200, 2}};
}

std::string_view CellOutcomeName(CellOutcome outcome) {
  switch (outcome) {
    case CellOutcome::kExhausted:
      return "exhausted";
    case CellOutcome::kKilled:
      return "killed";
    case CellOutcome::kDenied:
      return "denied";
    case CellOutcome::kSurvived:
      return "survived";
  }
  return "unknown";
}

MatrixRunner::MatrixRunner(ArmsMatrix matrix, Options options)
    : matrix_(std::move(matrix)), options_(options) {
  if (matrix_.attacks.empty()) matrix_.attacks = DefaultAttacks();
  if (matrix_.defenses.empty()) matrix_.defenses = DefaultDefenses();
  if (matrix_.points.empty()) matrix_.points = DefaultOperatingPoints();
}

std::size_t MatrixRunner::cell_count() const {
  return matrix_.points.size() * matrix_.attacks.size() *
         matrix_.defenses.size();
}

MatrixResult MatrixRunner::Run() {
  // Expansion: points outermost so consecutive cells share a boot image
  // (one prefix key per distinct JGR cap), then attacks, then defenses.
  std::vector<CellDesc> cells;
  std::vector<fleet::FleetDeviceSpec> specs;
  cells.reserve(cell_count());
  specs.reserve(cell_count());
  for (const OperatingPoint& point : matrix_.points) {
    for (const AttackPlan& attack : matrix_.attacks) {
      for (const DefenseConfig& defense : matrix_.defenses) {
        const std::size_t index = cells.size();
        CellDesc cell;
        cell.plan = attack;
        cell.plan.seed = fleet::MixFleetSeed(matrix_.seed, index);
        cell.plan.max_calls = std::min(cell.plan.max_calls, matrix_.max_calls);
        cell.defense = defense;
        cell.point = point;

        core::SystemConfig sys;
        sys.system_server_max_jgr = point.jgr_cap;
        fleet::FleetDeviceSpec spec;
        spec.index = index;
        spec.scenario_class = attack.name;
        spec.scenario_detail = attack.name + "|" + defense.name;
        spec.horizon_us = matrix_.horizon_us;
        spec.device.WithSeed(matrix_.seed)
            .WithScenarioSeed(cell.plan.seed)
            .WithSystemConfig(sys)
            .WithWarmup(matrix_.warmup_apps, matrix_.warmup_foreground_us)
            .WithBenignApps(point.benign_apps)
            .WithMaxAttackerCalls(matrix_.max_calls);
        if (defense.defender) {
          spec.device.WithThresholds(defense.alarm_threshold,
                                     defense.report_threshold);
        }
        cells.push_back(std::move(cell));
        specs.push_back(std::move(spec));
      }
    }
  }

  std::vector<CellExtra> extras(cells.size());
  fleet::FleetOptions options;
  options.jobs = options_.jobs;
  options.max_images = options_.image_budget;
  options.catalog = options_.catalog;
  options.scenario_driver = [&cells, &extras](
                                const fleet::FleetDeviceSpec& spec,
                                sim::DeviceSim& device,
                                const detect::InterfaceCatalog* catalog) {
    return RunCell(cells[spec.index], spec, device, catalog,
                   &extras[spec.index]);
  };
  fleet::FleetRunner runner(std::move(specs), options);
  fleet::FleetResult fleet_result = runner.Run();

  MatrixResult result;
  result.boot_images = fleet_result.image_count;
  result.image_builds = fleet_result.image_builds;
  result.image_evictions = fleet_result.image_evictions;
  result.cells.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    MatrixCell cell;
    cell.index = i;
    cell.attack = cells[i].plan.name;
    cell.defense = cells[i].defense.name;
    cell.jgr_cap = cells[i].point.jgr_cap;
    cell.benign_apps = cells[i].point.benign_apps;
    cell.outcome = extras[i].outcome;
    cell.attacker = extras[i].attacker;
    cell.denied_by_policy = std::move(extras[i].denied_by_policy);
    cell.device = std::move(fleet_result.outcomes[i]);
    result.cells.push_back(std::move(cell));
  }
  return result;
}

harness::Json MatrixResult::GridJson() const {
  // Axis vectors reconstructed from the cells (insertion order preserved);
  // everything here is a pure function of the matrix contents.
  std::vector<std::string> attacks;
  std::vector<std::string> defenses;
  std::vector<std::size_t> caps;
  for (const MatrixCell& cell : cells) {
    if (std::find(attacks.begin(), attacks.end(), cell.attack) ==
        attacks.end()) {
      attacks.push_back(cell.attack);
    }
    if (std::find(defenses.begin(), defenses.end(), cell.defense) ==
        defenses.end()) {
      defenses.push_back(cell.defense);
    }
    if (std::find(caps.begin(), caps.end(), cell.jgr_cap) == caps.end()) {
      caps.push_back(cell.jgr_cap);
    }
  }
  harness::Json attacks_json = harness::Json::Array();
  for (const std::string& name : attacks) attacks_json.Push(name);
  harness::Json defenses_json = harness::Json::Array();
  for (const std::string& name : defenses) defenses_json.Push(name);
  harness::Json caps_json = harness::Json::Array();
  for (const std::size_t cap : caps) caps_json.Push(cap);

  harness::Json cells_json = harness::Json::Array();
  for (const MatrixCell& cell : cells) {
    harness::Json hunts = harness::Json::Object();
    for (const auto& [hunt, hits] : cell.device.hunt_hits) {
      hunts.Set(hunt, hits);
    }
    harness::Json by_policy = harness::Json::Object();
    for (const auto& [policy, denied] : cell.denied_by_policy) {
      by_policy.Set(policy, denied);
    }
    cells_json.Push(
        harness::Json::Object()
            .Set("attack", cell.attack)
            .Set("defense", cell.defense)
            .Set("jgr_cap", cell.jgr_cap)
            .Set("benign_apps", cell.benign_apps)
            .Set("outcome", CellOutcomeName(cell.outcome))
            .Set("exhausted", cell.device.exhausted)
            .Set("time_to_exhaustion_us", cell.device.time_to_exhaustion_us)
            .Set("incident", cell.device.incident)
            .Set("attacker_killed", cell.device.attacker_killed)
            .Set("stopped_by_denial", cell.device.stopped_by_denial)
            .Set("calls_issued", cell.attacker.calls_issued)
            .Set("calls_ok", cell.attacker.calls_ok)
            .Set("calls_denied", cell.attacker.calls_denied)
            .Set("calls_failed", cell.attacker.calls_failed)
            .Set("denied_attacker_calls", cell.device.denied_attacker_calls)
            .Set("denied_benign_calls", cell.device.denied_benign_calls)
            .Set("benign_kills", cell.device.benign_kills)
            .Set("peak_jgr", cell.device.peak_jgr)
            .Set("peak_weak_jgr", cell.device.peak_weak_jgr)
            .Set("ipc_calls", cell.device.ipc_calls)
            .Set("denied_by_policy", std::move(by_policy))
            .Set("hunt_hits", std::move(hunts)));
  }
  return harness::Json::Object()
      .Set("attacks", std::move(attacks_json))
      .Set("defenses", std::move(defenses_json))
      .Set("jgr_caps", std::move(caps_json))
      .Set("cells_total", cells.size())
      .Set("boot_images", boot_images)
      .Set("cells", std::move(cells_json));
}

}  // namespace jgre::arms
