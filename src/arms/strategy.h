// AttackStrategy — stateful adversarial policies beyond flood/drip.
//
// The fleet layer's scenarios are open-loop: fixed think time, one app, one
// interface, run to a stop condition. Real adversaries adapt. Each strategy
// here owns its apps and decides per step what to issue next, reacting to
// what the system shows it (victim table occupancy, denials, process
// deaths):
//
//   flood                  — the paper's Code-Snippet 2 baseline, fresh
//                            binder per call, back-to-back.
//   sub_alarm_drip         — stays below the §V monitor's assumed alarm
//                            threshold minus a margin and paces its adds/sec
//                            under rate-based detectors: parks just beneath
//                            the radar holding table capacity hostage.
//   uid_rotation_colluders — K cooperating apps (distinct UIDs) rotate the
//                            issuing identity every burst, defeating per-UID
//                            accounting; collectively they out-budget any
//                            single-UID quota.
//   death_recipient_churn  — registers and unregisters death-recipient
//                            callbacks in a sliding window: huge add/remove
//                            throughput with ~zero net growth between GCs,
//                            but transient growth that outruns the GC period
//                            at small table caps.
//   weakref_churn          — watches fresh binders through WeakWatchService
//                            and "forgets" to unwatch a fraction: the victim
//                            strong table stays quiescent while the weak
//                            table — which no monitor thresholds — fills.
//
// Strategies draw randomness only from their plan seed and time only from
// the simulated clock, so matrix cells stay byte-identical across --jobs.
#ifndef JGRE_ARMS_STRATEGY_H_
#define JGRE_ARMS_STRATEGY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/android_system.h"

namespace jgre::arms {

// Tuning knobs shared by all strategies; each reads the subset it needs.
struct AttackPlan {
  std::string name = "flood";  // which strategy MakeStrategy builds
  // Registry vulnerability the call-issuing strategies drive (0 = the first
  // permissionless system-server interface, stable registry order).
  int vuln_id = 0;
  std::uint64_t seed = 42;
  int max_calls = 40'000;
  // Give up after this many consecutive mitigation denials (a real attacker
  // stops burning a detectable call stream that no longer acquires anything).
  int stop_after_consecutive_denials = 64;
  // uid_rotation_colluders.
  int colluders = 6;
  int rotation_burst = 64;  // calls per colluder before rotating
  // sub_alarm_drip: the attacker's model of the monitor's operating point.
  std::size_t assumed_alarm_threshold = 4'000;
  std::size_t alarm_margin = 256;
  double target_adds_per_sec = 384.0;  // stays under rate-based hunts
  // churn strategies.
  DurationUs churn_think_us = 500;
  int churn_window = 8;        // in-flight registrations before recycling
  double leak_fraction = 0.5;  // weakref_churn: share never unwatched
};

struct StrategyStats {
  int calls_issued = 0;
  int calls_ok = 0;
  int calls_denied = 0;  // kLimitExceeded (mitigation refusals)
  int calls_failed = 0;  // every other non-ok status
  int consecutive_denied = 0;
  bool stopped_by_denial = false;
};

class AttackStrategy {
 public:
  virtual ~AttackStrategy() = default;

  virtual std::string_view id() const = 0;

  // Installs the strategy's apps/services on a restored device. Must be
  // called once before Step; failure means the cell cannot run.
  virtual Status Setup(core::AndroidSystem& system) = 0;

  // Issues the next move (usually one IPC call plus pacing). Returns false
  // when the strategy is finished: every issuer dead, call budget spent, or
  // the denial budget spent. Every Step advances the virtual clock.
  virtual bool Step(core::AndroidSystem& system) = 0;

  const StrategyStats& stats() const { return stats_; }
  const AttackPlan& plan() const { return plan_; }

  // Identities the matrix uses to split attacker denials/kills from benign
  // collateral. Valid after Setup.
  virtual std::vector<Uid> attacker_uids() const = 0;
  virtual std::vector<std::string> attacker_packages() const = 0;

 protected:
  explicit AttackStrategy(AttackPlan plan) : plan_(std::move(plan)) {}

  // Folds one call status into stats_. Returns false when the consecutive-
  // denial budget is spent (the strategy should stop).
  bool Record(const Status& status);

  AttackPlan plan_;
  StrategyStats stats_;
};

// The registry: strategy names MakeStrategy accepts, in matrix axis order.
const std::vector<std::string>& KnownStrategies();

// Builds the named strategy from `plan.name`; null for an unknown name.
std::unique_ptr<AttackStrategy> MakeStrategy(const AttackPlan& plan);

}  // namespace jgre::arms

#endif  // JGRE_ARMS_STRATEGY_H_
