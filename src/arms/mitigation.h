// MitigationPolicy / MitigationStack — modern JGRE defenses, pluggable at
// the binder driver's admission seam.
//
// The paper's §V defender is reactive: it lets the table grow, correlates
// delays, and kills the top scorers. The mitigations here are the *proactive*
// class follow-up work proposes ("JNI Global References Are Still
// Vulnerable", arXiv 2405.00526): deny or damp resource acquisition before
// the table is in danger. Each policy sees every admitted top-level IPC into
// the victim from an app UID and votes admit/deny; after the call it is told
// the victim's live-reference delta so charge-based policies can attribute
// growth. Policies compose with each other and with the kill-based
// JgreDefender — the arms matrix runs them side by side.
//
// All three policies are deterministic functions of the (virtual-time)
// event sequence, so matrix cells stay byte-identical across --jobs.
#ifndef JGRE_ARMS_MITIGATION_H_
#define JGRE_ARMS_MITIGATION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/types.h"
#include "core/android_system.h"

namespace jgre::arms {

// One admission decision's worth of context. `victim_live_refs` is the
// victim table occupancy (strong + weak) sampled before the call; Settle()
// receives the same request plus the across-call delta.
struct MitigationRequest {
  Pid caller{};
  Uid caller_uid{};
  Pid victim{};
  std::uint32_t descriptor_id = 0;
  std::uint32_t code = 0;
  TimeUs now_us = 0;
  std::size_t victim_live_refs = 0;
  SimClock* clock = nullptr;  // for delay-injecting policies
};

class MitigationPolicy {
 public:
  virtual ~MitigationPolicy() = default;

  // Stable policy id ("per_uid_quota", ...), used in reports and denial
  // attribution.
  virtual std::string_view id() const = 0;

  // Admission vote. Ok admits; LimitExceeded denies (surfaced to the caller
  // as the binder error a patched driver would return). May advance the
  // clock (backoff policies slow the caller down instead of refusing).
  virtual Status Admit(const MitigationRequest& request) = 0;

  // Called after an admitted call completes with the victim's live-ref
  // delta (negative when a GC ran inside the call window).
  virtual void Settle(const MitigationRequest& request,
                      std::int64_t jgr_delta) {
    (void)request;
    (void)jgr_delta;
  }
};

// Hard per-UID charge cap. Every admitted call's positive live-ref delta is
// charged to the calling UID; when the victim's table shrinks (GC reclaim,
// defender recovery) all charges decay proportionally — the model of "the
// kernel knows who asked for what share of the table". At the cap, calls
// from that UID are denied outright.
class PerUidQuota : public MitigationPolicy {
 public:
  struct Config {
    // Max outstanding charged references per app UID. The default sits well
    // above any benign workload (tens of refs) and well below table caps.
    std::int64_t max_charged_refs = 1'500;
  };

  PerUidQuota() = default;
  explicit PerUidQuota(Config config) : config_(config) {}

  std::string_view id() const override { return "per_uid_quota"; }
  Status Admit(const MitigationRequest& request) override;
  void Settle(const MitigationRequest& request,
              std::int64_t jgr_delta) override;

  std::int64_t ChargedTo(Uid uid) const;

 private:
  void DecayTo(std::size_t victim_live_refs);

  Config config_;
  std::map<std::uint32_t, std::int64_t> charges_;  // uid -> charged refs
  std::int64_t total_charged_ = 0;
  std::size_t last_victim_live_ = 0;
  bool primed_ = false;
};

// Exponential admission delay once the victim table passes a watermark.
// Never denies: it taxes growth with time, which both slows an attacker's
// rate (pushing exhaustion past the horizon) and hands the periodic GC and
// the kill-based defender time to act. Benign collateral is latency, not
// failures.
class TableGrowthBackoff : public MitigationPolicy {
 public:
  struct Config {
    std::size_t watermark = 6'000;       // refs before any delay
    DurationUs base_delay_us = 200;      // first step's delay
    std::size_t doubling_step = 2'048;   // refs per delay doubling
    DurationUs max_delay_us = 100'000;   // delay ceiling per call
  };

  TableGrowthBackoff() = default;
  explicit TableGrowthBackoff(Config config) : config_(config) {}

  std::string_view id() const override { return "table_growth_backoff"; }
  Status Admit(const MitigationRequest& request) override;

  std::int64_t delayed_calls() const { return delayed_calls_; }
  DurationUs total_delay_us() const { return total_delay_us_; }

 private:
  Config config_;
  std::int64_t delayed_calls_ = 0;
  DurationUs total_delay_us_ = 0;
};

// Token bucket per interned (descriptor, code): callers collectively get
// `tokens_per_sec` calls into each interface method, with `burst` headroom.
// Keyed on the interface rather than the caller, it throttles UID-rotation
// collusion that per-UID accounting misses — at the price of benign denials
// on the contended interface (the collateral column the matrix measures).
class PerInterfaceRateLimit : public MitigationPolicy {
 public:
  struct Config {
    double tokens_per_sec = 400.0;
    double burst = 800.0;
  };

  PerInterfaceRateLimit() = default;
  explicit PerInterfaceRateLimit(Config config) : config_(config) {}

  std::string_view id() const override { return "per_interface_rate_limit"; }
  Status Admit(const MitigationRequest& request) override;

 private:
  struct Bucket {
    double tokens = 0;
    TimeUs last_us = 0;
    bool primed = false;
  };

  Config config_;
  std::map<std::uint64_t, Bucket> buckets_;  // (descriptor_id<<32)|code
};

// Owns a set of policies and installs them on a system's binder driver as
// the transaction gate + observer pair. Scope: top-level calls from app UIDs
// (>= kFirstAppUid) into the victim process; system-internal traffic is
// never gated. Tracks denial attribution per UID and per policy so the
// matrix can split attacker denials from benign collateral. Uninstalls its
// hooks on destruction.
class MitigationStack {
 public:
  struct Config {
    Pid victim{};
    Uid min_gated_uid = kFirstAppUid;
  };

  MitigationStack(core::AndroidSystem* system, Config config);
  ~MitigationStack();

  MitigationStack(const MitigationStack&) = delete;
  MitigationStack& operator=(const MitigationStack&) = delete;

  void Add(std::unique_ptr<MitigationPolicy> policy);

  // Installs the driver hooks. Call after Add()ing the policies; a stack
  // with no policies installs nothing.
  void Install();

  std::size_t policy_count() const { return policies_.size(); }
  std::int64_t total_denied() const { return total_denied_; }
  std::int64_t DeniedForUid(Uid uid) const;
  const std::map<std::uint32_t, std::int64_t>& denied_by_uid() const {
    return denied_by_uid_;
  }
  const std::map<std::string, std::int64_t>& denied_by_policy() const {
    return denied_by_policy_;
  }

 private:
  std::size_t VictimLiveRefs() const;

  core::AndroidSystem* system_;
  Config config_;
  std::vector<std::unique_ptr<MitigationPolicy>> policies_;
  bool installed_ = false;
  bool in_flight_ = false;
  MitigationRequest pending_{};
  std::map<std::uint32_t, std::int64_t> denied_by_uid_;
  std::map<std::string, std::int64_t> denied_by_policy_;
  std::int64_t total_denied_ = 0;
};

}  // namespace jgre::arms

#endif  // JGRE_ARMS_MITIGATION_H_
