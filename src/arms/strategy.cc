#include "arms/strategy.h"

#include <deque>
#include <optional>

#include "arms/weak_watch_service.h"
#include "attack/malicious_app.h"
#include "attack/vuln_registry.h"
#include "binder/parcel.h"
#include "common/strings.h"
#include "services/misc_system_services.h"

namespace jgre::arms {

namespace {

// Idle stride while a strategy is parked (sub_alarm_drip below its ceiling
// with nothing to do): long enough to not dominate the cell's step count,
// short enough to keep the benign schedule responsive.
constexpr DurationUs kParkIdleUs = 10'000;

// By value: SystemServerVulnerabilities() builds its vector per call, so a
// pointer into it would dangle the moment this returns.
std::optional<attack::VulnSpec> ResolveVuln(const AttackPlan& plan) {
  for (const attack::VulnSpec& vuln : attack::SystemServerVulnerabilities()) {
    if (plan.vuln_id != 0 ? vuln.id == plan.vuln_id
                          : vuln.permission.empty()) {
      return vuln;
    }
  }
  return std::nullopt;
}

// ------------------------------------------------------------------- flood

class FloodStrategy : public AttackStrategy {
 public:
  explicit FloodStrategy(AttackPlan plan) : AttackStrategy(std::move(plan)) {}

  std::string_view id() const override { return "flood"; }

  Status Setup(core::AndroidSystem& system) override {
    const std::optional<attack::VulnSpec> vuln = ResolveVuln(plan_);
    if (!vuln) return NotFound("flood: no registry vulnerability");
    app_ = attack::InstallAttackApp(&system, "com.arms.flood", *vuln);
    if (app_ == nullptr) return Internal("flood: install failed");
    attacker_ = std::make_unique<attack::MaliciousApp>(&system, app_, *vuln);
    return Status::Ok();
  }

  bool Step(core::AndroidSystem& system) override {
    (void)system;
    if (!app_->alive() || stats_.calls_issued >= plan_.max_calls) return false;
    return Record(attacker_->Step());
  }

  std::vector<Uid> attacker_uids() const override { return {app_->uid()}; }
  std::vector<std::string> attacker_packages() const override {
    return {app_->package()};
  }

 private:
  services::AppProcess* app_ = nullptr;
  std::unique_ptr<attack::MaliciousApp> attacker_;
};

// ---------------------------------------------------------- sub_alarm_drip

// Drips references in at `target_adds_per_sec` and parks once the victim
// table sits `alarm_margin` below the assumed alarm threshold — never fast
// enough for rate detectors, never high enough for the occupancy alarm. At
// large caps this cannot exhaust; the point is the capacity it silently
// holds hostage, and whether the follow-up hunts see it anyway.
class SubAlarmDripStrategy : public AttackStrategy {
 public:
  explicit SubAlarmDripStrategy(AttackPlan plan)
      : AttackStrategy(std::move(plan)) {}

  std::string_view id() const override { return "sub_alarm_drip"; }

  Status Setup(core::AndroidSystem& system) override {
    const std::optional<attack::VulnSpec> vuln = ResolveVuln(plan_);
    if (!vuln) return NotFound("drip: no registry vulnerability");
    jgrs_per_call_ = vuln->jgrs_per_call > 0 ? vuln->jgrs_per_call : 2;
    app_ = attack::InstallAttackApp(&system, "com.arms.drip", *vuln);
    if (app_ == nullptr) return Internal("drip: install failed");
    attacker_ = std::make_unique<attack::MaliciousApp>(&system, app_, *vuln);
    return Status::Ok();
  }

  bool Step(core::AndroidSystem& system) override {
    if (!app_->alive() || stats_.calls_issued >= plan_.max_calls) return false;
    const std::size_t ceiling =
        plan_.assumed_alarm_threshold > plan_.alarm_margin
            ? plan_.assumed_alarm_threshold - plan_.alarm_margin
            : 0;
    if (attacker_->VictimJgrCount() + jgrs_per_call_ >= ceiling) {
      // Parked under the radar: hold what we have, stay quiet.
      system.clock().AdvanceUs(kParkIdleUs);
      return true;
    }
    if (!Record(attacker_->Step())) return false;
    // Pace so adds/sec lands on target including the call's own duration.
    if (plan_.target_adds_per_sec > 0) {
      system.clock().AdvanceUs(static_cast<DurationUs>(
          1e6 * jgrs_per_call_ / plan_.target_adds_per_sec));
    }
    return true;
  }

  std::vector<Uid> attacker_uids() const override { return {app_->uid()}; }
  std::vector<std::string> attacker_packages() const override {
    return {app_->package()};
  }

 private:
  services::AppProcess* app_ = nullptr;
  std::unique_ptr<attack::MaliciousApp> attacker_;
  int jgrs_per_call_ = 2;
};

// -------------------------------------------------- uid_rotation_colluders

// K apps, K UIDs, one interface: each colluder issues `rotation_burst` calls
// then hands off. Any per-UID budget B stops a single app at B refs; K
// colluders jointly acquire K*B — past the table cap for realistic B.
class UidRotationStrategy : public AttackStrategy {
 public:
  explicit UidRotationStrategy(AttackPlan plan)
      : AttackStrategy(std::move(plan)) {}

  std::string_view id() const override { return "uid_rotation_colluders"; }

  Status Setup(core::AndroidSystem& system) override {
    const std::optional<attack::VulnSpec> vuln = ResolveVuln(plan_);
    if (!vuln) return NotFound("rotation: no registry vuln");
    const int count = plan_.colluders > 0 ? plan_.colluders : 1;
    for (int k = 0; k < count; ++k) {
      services::AppProcess* app = attack::InstallAttackApp(
          &system, StrCat("com.arms.c", k), *vuln);
      if (app == nullptr) return Internal("rotation: install failed");
      apps_.push_back(app);
      colluders_.push_back(
          std::make_unique<attack::MaliciousApp>(&system, app, *vuln));
    }
    return Status::Ok();
  }

  bool Step(core::AndroidSystem& system) override {
    (void)system;
    if (stats_.calls_issued >= plan_.max_calls) return false;
    // Rotate past dead colluders (and on burst exhaustion).
    for (std::size_t tried = 0; tried < apps_.size(); ++tried) {
      if (apps_[current_]->alive() && burst_left_ > 0) break;
      current_ = (current_ + 1) % apps_.size();
      burst_left_ = plan_.rotation_burst > 0 ? plan_.rotation_burst : 1;
    }
    if (!apps_[current_]->alive()) return false;  // every issuer is dead
    --burst_left_;
    return Record(colluders_[current_]->Step());
  }

  std::vector<Uid> attacker_uids() const override {
    std::vector<Uid> uids;
    for (const services::AppProcess* app : apps_) uids.push_back(app->uid());
    return uids;
  }
  std::vector<std::string> attacker_packages() const override {
    std::vector<std::string> packages;
    for (const services::AppProcess* app : apps_) {
      packages.push_back(app->package());
    }
    return packages;
  }

 private:
  std::vector<services::AppProcess*> apps_;
  std::vector<std::unique_ptr<attack::MaliciousApp>> colluders_;
  std::size_t current_ = 0;
  int burst_left_ = 0;
};

// ---------------------------------------------------- death_recipient_churn

// startWatchingMode/stopWatchingMode over a sliding window of fresh
// callbacks. Net growth between GCs is ~the window, but the *transient*
// acquisition rate (2 JGRs per register) outruns the periodic GC at small
// caps — and the add/remove balance stays under add-rate alarms.
class DeathRecipientChurnStrategy : public AttackStrategy {
 public:
  explicit DeathRecipientChurnStrategy(AttackPlan plan)
      : AttackStrategy(std::move(plan)) {}

  std::string_view id() const override { return "death_recipient_churn"; }

  Status Setup(core::AndroidSystem& system) override {
    app_ = system.InstallApp("com.arms.dchurn");
    if (app_ == nullptr) return Internal("dchurn: install failed");
    auto client = app_->GetService(services::AppOpsService::kName,
                                   services::AppOpsService::kDescriptor);
    if (!client.ok()) return client.status();
    client_ = std::move(client).value();
    return Status::Ok();
  }

  bool Step(core::AndroidSystem& system) override {
    if (!app_->alive() || stats_.calls_issued >= plan_.max_calls) return false;
    std::shared_ptr<binder::BBinder> fresh =
        app_->NewBinder("com.arms.dchurn.callback");
    const Status registered = client_.Call(
        services::AppOpsService::TRANSACTION_startWatchingMode,
        [&fresh](binder::Parcel& p) {
          p.WriteInt32(0);
          p.WriteString("android:monitor_location");
          p.WriteStrongBinder(fresh);
        });
    const bool keep_going = Record(registered);
    window_.push_back(std::move(fresh));
    if (static_cast<int>(window_.size()) > std::max(plan_.churn_window, 1)) {
      std::shared_ptr<binder::BBinder> oldest = std::move(window_.front());
      window_.pop_front();
      (void)client_.Call(
          services::AppOpsService::TRANSACTION_stopWatchingMode,
          [&oldest](binder::Parcel& p) { p.WriteStrongBinder(oldest); });
      // Drop the app-side object too, or 40k cycles of JavaBBinders pile up
      // in the attacker's own table.
      system.driver().ReleaseNode(oldest->node());
    }
    system.clock().AdvanceUs(plan_.churn_think_us);
    return keep_going;
  }

  std::vector<Uid> attacker_uids() const override { return {app_->uid()}; }
  std::vector<std::string> attacker_packages() const override {
    return {app_->package()};
  }

 private:
  services::AppProcess* app_ = nullptr;
  services::IpcClient client_;
  std::deque<std::shared_ptr<binder::BBinder>> window_;
};

// ----------------------------------------------------------- weakref_churn

// Watches a fresh binder per call through WeakWatchService and unwatches
// only (1 - leak_fraction) of them. Released app-side nodes let the victim
// GC reclaim the proxy (strong ref + cache weak ref) — but the service's
// explicit weak-global slot survives until DeleteWeakGlobalRef, so the weak
// table grows while the strong table the §V monitor watches stays flat.
class WeakrefChurnStrategy : public AttackStrategy {
 public:
  explicit WeakrefChurnStrategy(AttackPlan plan)
      : AttackStrategy(std::move(plan)) {}

  std::string_view id() const override { return "weakref_churn"; }

  Status Setup(core::AndroidSystem& system) override {
    // The weak-table surface is not a boot service: add it (and weak-event
    // emission) only on this cell's device, leaving pinned censuses alone.
    service_ = system.driver().MakeBinder<WeakWatchService>(
        system.system_server_pid());
    JGRE_RETURN_IF_ERROR(system.service_manager().AddService(
        WeakWatchService::kName, service_, kSystemUid));
    if (rt::Runtime* victim = system.system_runtime(); victim != nullptr) {
      victim->vm().SetWeakEventEmission(true);
    }
    app_ = system.InstallApp("com.arms.weak");
    if (app_ == nullptr) return Internal("weakref: install failed");
    auto client = app_->GetService(WeakWatchService::kName,
                                   WeakWatchService::kDescriptor);
    if (!client.ok()) return client.status();
    client_ = std::move(client).value();
    return Status::Ok();
  }

  bool Step(core::AndroidSystem& system) override {
    if (!app_->alive() || stats_.calls_issued >= plan_.max_calls) return false;
    std::shared_ptr<binder::BBinder> fresh =
        app_->NewBinder("com.arms.weak.cb");
    const Status watched = client_.Call(
        WeakWatchService::TRANSACTION_watchWeak,
        [&fresh](binder::Parcel& p) { p.WriteStrongBinder(fresh); });
    const bool keep_going = Record(watched);
    window_.push_back(std::move(fresh));
    while (window_.size() > 2) {
      std::shared_ptr<binder::BBinder> oldest = std::move(window_.front());
      window_.pop_front();
      ++recycled_;
      const std::int64_t leak_target = static_cast<std::int64_t>(
          plan_.leak_fraction * static_cast<double>(recycled_));
      if (leaked_ < leak_target) {
        ++leaked_;  // "forget" the unwatch: the weak slot stays occupied
      } else {
        (void)client_.Call(
            WeakWatchService::TRANSACTION_unwatchWeak,
            [&oldest](binder::Parcel& p) { p.WriteStrongBinder(oldest); });
      }
      system.driver().ReleaseNode(oldest->node());
    }
    system.clock().AdvanceUs(plan_.churn_think_us);
    return keep_going;
  }

  std::vector<Uid> attacker_uids() const override { return {app_->uid()}; }
  std::vector<std::string> attacker_packages() const override {
    return {app_->package()};
  }

 private:
  services::AppProcess* app_ = nullptr;
  std::shared_ptr<WeakWatchService> service_;
  services::IpcClient client_;
  std::deque<std::shared_ptr<binder::BBinder>> window_;
  std::int64_t recycled_ = 0;
  std::int64_t leaked_ = 0;
};

}  // namespace

bool AttackStrategy::Record(const Status& status) {
  ++stats_.calls_issued;
  if (status.ok()) {
    ++stats_.calls_ok;
    stats_.consecutive_denied = 0;
    return true;
  }
  if (status.code() == StatusCode::kLimitExceeded) {
    ++stats_.calls_denied;
    ++stats_.consecutive_denied;
    if (plan_.stop_after_consecutive_denials > 0 &&
        stats_.consecutive_denied >= plan_.stop_after_consecutive_denials) {
      stats_.stopped_by_denial = true;
      return false;
    }
    return true;
  }
  ++stats_.calls_failed;
  stats_.consecutive_denied = 0;
  return true;
}

const std::vector<std::string>& KnownStrategies() {
  static const std::vector<std::string> names = {
      "flood", "sub_alarm_drip", "uid_rotation_colluders",
      "death_recipient_churn", "weakref_churn"};
  return names;
}

std::unique_ptr<AttackStrategy> MakeStrategy(const AttackPlan& plan) {
  if (plan.name == "flood") return std::make_unique<FloodStrategy>(plan);
  if (plan.name == "sub_alarm_drip") {
    return std::make_unique<SubAlarmDripStrategy>(plan);
  }
  if (plan.name == "uid_rotation_colluders") {
    return std::make_unique<UidRotationStrategy>(plan);
  }
  if (plan.name == "death_recipient_churn") {
    return std::make_unique<DeathRecipientChurnStrategy>(plan);
  }
  if (plan.name == "weakref_churn") {
    return std::make_unique<WeakrefChurnStrategy>(plan);
  }
  return nullptr;
}

}  // namespace jgre::arms
