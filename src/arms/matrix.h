// MatrixRunner — the defense-vs-attack matrix (BENCH_matrix.json).
//
// Expands attacks x defense configs x operating points into one fleet of
// cells and runs each cell as a full device simulation on the fleet layer's
// warmed-boot-image infrastructure (FleetRunner + ScenarioDriver). A cell
// restores a device at its JGR-cap operating point, installs the defense
// config (the paper's kill-based JgreDefender, a MitigationStack of modern
// admission policies, both, or neither), lets the AttackStrategy drive, and
// reduces to one MatrixCell:
//
//   outcome    — exhausted | killed | denied | survived (in that precedence)
//   detection  — the defender's incidents plus the follow-up hunt battery
//                (FinishDeviceOutcome), so "evaded the defender" can be
//                cross-checked against "but a hunt saw it"
//   collateral — benign calls denied by mitigations, benign apps killed by
//                the defender's recovery pass
//
// Determinism: cells are expanded in a fixed order (operating points
// outermost so same-cap cells share a boot image), each cell's scenario seed
// is MixFleetSeed(matrix seed, cell index), and GridJson() contains only
// jobs-invariant fields — BENCH_matrix.json is byte-identical for any
// --jobs.
#ifndef JGRE_ARMS_MATRIX_H_
#define JGRE_ARMS_MATRIX_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "arms/mitigation.h"
#include "arms/strategy.h"
#include "common/types.h"
#include "detect/catalog.h"
#include "fleet/aggregator.h"
#include "harness/json.h"
#include "runtime/java_vm_ext.h"

namespace jgre::arms {

// Which modern mitigations a defense config stacks, with their tunings.
// backoff.watermark == 0 means "half the cell's JGR cap", resolved per cell
// — an absolute watermark would be meaningless across operating points.
struct MitigationSettings {
  bool per_uid_quota = false;
  bool table_growth_backoff = false;
  bool per_interface_rate_limit = false;
  PerUidQuota::Config quota;
  TableGrowthBackoff::Config backoff{0, 200, 256, 100'000};
  PerInterfaceRateLimit::Config rate_limit;

  bool any() const {
    return per_uid_quota || table_growth_backoff || per_interface_rate_limit;
  }
};

// One defense axis point: the §V kill-based defender at (alarm, report),
// a mitigation stack, both, or neither.
struct DefenseConfig {
  std::string name;  // axis label ("none", "defender", "defender+quota", ...)
  bool defender = false;
  std::size_t alarm_threshold = 4'000;
  std::size_t report_threshold = 12'000;
  MitigationSettings mitigations;
};

// One device operating point. Benign apps are the collateral sensors: their
// denied calls and deaths are what over-aggressive defenses cost.
struct OperatingPoint {
  std::size_t jgr_cap = rt::kGlobalsMax;
  int benign_apps = 2;
};

struct ArmsMatrix {
  std::uint64_t seed = 42;
  // Shared boot prefix (one warmed image per distinct JGR cap).
  int warmup_apps = 3;
  DurationUs warmup_foreground_us = 1'000'000;
  // Axes; an empty vector means the corresponding Default*() set.
  std::vector<AttackPlan> attacks;
  std::vector<DefenseConfig> defenses;
  std::vector<OperatingPoint> points;
  int max_calls = 40'000;
  DurationUs horizon_us = 60'000'000;
};

// The five KnownStrategies() with their standard tunings.
std::vector<AttackPlan> DefaultAttacks();
// none, defender(4000,12000), and defender stacked with each mitigation.
std::vector<DefenseConfig> DefaultDefenses();
// Five JGR caps (4.8k..51.2k, stock last) at 2 benign apps — five prefix
// keys, deliberately one more than the default image budget so full runs
// exercise LRU eviction.
std::vector<OperatingPoint> DefaultOperatingPoints();

// Cell verdict, in decreasing severity for the attacker's success:
//   exhausted — the victim table overflowed (soft reboot) within the horizon
//   killed    — every attacking process was dead by the end (defender won)
//   denied    — the strategy gave up after its consecutive-denial budget
//   survived  — horizon reached with the attack still nominally running
enum class CellOutcome { kExhausted, kKilled, kDenied, kSurvived };
std::string_view CellOutcomeName(CellOutcome outcome);

struct MatrixCell {
  std::size_t index = 0;
  std::string attack;
  std::string defense;
  std::size_t jgr_cap = 0;
  int benign_apps = 0;
  CellOutcome outcome = CellOutcome::kSurvived;
  StrategyStats attacker;
  std::map<std::string, std::int64_t> denied_by_policy;
  fleet::DeviceOutcome device;  // stream counters, collateral, hunt pass
};

struct MatrixResult {
  std::vector<MatrixCell> cells;  // expansion order
  std::size_t boot_images = 0;    // distinct prefix keys (deterministic)
  // Cache traffic; scheduling-dependent under --jobs > 1, so console-only.
  std::uint64_t image_builds = 0;
  std::uint64_t image_evictions = 0;

  // The jobs-invariant BENCH_matrix.json body: axes plus one entry per cell
  // (outcome, attacker stats, collateral, hunt hits). Never includes the
  // cache counters above.
  harness::Json GridJson() const;
};

class MatrixRunner {
 public:
  struct Options {
    int jobs = 1;
    std::size_t image_budget = 4;  // fleet boot-image residency budget
    const detect::InterfaceCatalog* catalog = nullptr;
  };

  MatrixRunner(ArmsMatrix matrix, Options options);

  // Runs every cell; throws if a cell's device cannot be restored or its
  // strategy fails to set up, naming the cell.
  MatrixResult Run();

  std::size_t cell_count() const;

 private:
  ArmsMatrix matrix_;
  Options options_;
};

}  // namespace jgre::arms

#endif  // JGRE_ARMS_MATRIX_H_
