file(REMOVE_RECURSE
  "CMakeFiles/vuln_scan.dir/vuln_scan.cpp.o"
  "CMakeFiles/vuln_scan.dir/vuln_scan.cpp.o.d"
  "vuln_scan"
  "vuln_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vuln_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
