file(REMOVE_RECURSE
  "CMakeFiles/colluding_defense.dir/colluding_defense.cpp.o"
  "CMakeFiles/colluding_defense.dir/colluding_defense.cpp.o.d"
  "colluding_defense"
  "colluding_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colluding_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
