# Empty compiler generated dependencies file for colluding_defense.
# This may be replaced when dependencies are built.
