# Empty dependencies file for bench_fig5_exec_growth.
# This may be replaced when dependencies are built.
