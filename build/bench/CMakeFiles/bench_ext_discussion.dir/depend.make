# Empty dependencies file for bench_ext_discussion.
# This may be replaced when dependencies are built.
