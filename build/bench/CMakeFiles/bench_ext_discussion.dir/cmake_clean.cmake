file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_discussion.dir/bench_ext_discussion.cpp.o"
  "CMakeFiles/bench_ext_discussion.dir/bench_ext_discussion.cpp.o.d"
  "bench_ext_discussion"
  "bench_ext_discussion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_discussion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
