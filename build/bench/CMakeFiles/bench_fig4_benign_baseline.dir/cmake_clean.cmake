file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_benign_baseline.dir/bench_fig4_benign_baseline.cpp.o"
  "CMakeFiles/bench_fig4_benign_baseline.dir/bench_fig4_benign_baseline.cpp.o.d"
  "bench_fig4_benign_baseline"
  "bench_fig4_benign_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_benign_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
