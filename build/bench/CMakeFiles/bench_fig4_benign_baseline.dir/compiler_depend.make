# Empty compiler generated dependencies file for bench_fig4_benign_baseline.
# This may be replaced when dependencies are built.
