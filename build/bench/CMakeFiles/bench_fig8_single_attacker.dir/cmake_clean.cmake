file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_single_attacker.dir/bench_fig8_single_attacker.cpp.o"
  "CMakeFiles/bench_fig8_single_attacker.dir/bench_fig8_single_attacker.cpp.o.d"
  "bench_fig8_single_attacker"
  "bench_fig8_single_attacker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_single_attacker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
