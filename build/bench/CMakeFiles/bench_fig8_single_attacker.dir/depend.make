# Empty dependencies file for bench_fig8_single_attacker.
# This may be replaced when dependencies are built.
