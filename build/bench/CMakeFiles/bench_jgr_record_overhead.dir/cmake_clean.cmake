file(REMOVE_RECURSE
  "CMakeFiles/bench_jgr_record_overhead.dir/bench_jgr_record_overhead.cpp.o"
  "CMakeFiles/bench_jgr_record_overhead.dir/bench_jgr_record_overhead.cpp.o.d"
  "bench_jgr_record_overhead"
  "bench_jgr_record_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_jgr_record_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
