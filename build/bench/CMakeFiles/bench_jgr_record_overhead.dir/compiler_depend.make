# Empty compiler generated dependencies file for bench_jgr_record_overhead.
# This may be replaced when dependencies are built.
