file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_unprotected.dir/bench_table1_unprotected.cpp.o"
  "CMakeFiles/bench_table1_unprotected.dir/bench_table1_unprotected.cpp.o.d"
  "bench_table1_unprotected"
  "bench_table1_unprotected.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_unprotected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
