# Empty dependencies file for bench_table1_unprotected.
# This may be replaced when dependencies are built.
