file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_per_process.dir/bench_table3_per_process.cpp.o"
  "CMakeFiles/bench_table3_per_process.dir/bench_table3_per_process.cpp.o.d"
  "bench_table3_per_process"
  "bench_table3_per_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_per_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
