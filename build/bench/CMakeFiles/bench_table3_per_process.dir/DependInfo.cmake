
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_per_process.cpp" "bench/CMakeFiles/bench_table3_per_process.dir/bench_table3_per_process.cpp.o" "gcc" "bench/CMakeFiles/bench_table3_per_process.dir/bench_table3_per_process.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/jgre_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/jgre_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/jgre_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamic/CMakeFiles/jgre_dynamic.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/jgre_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/jgre_model.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/jgre_core.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/jgre_services.dir/DependInfo.cmake"
  "/root/repo/build/src/binder/CMakeFiles/jgre_binder.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/jgre_os.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/jgre_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jgre_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
