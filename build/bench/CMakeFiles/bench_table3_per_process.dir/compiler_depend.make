# Empty compiler generated dependencies file for bench_table3_per_process.
# This may be replaced when dependencies are built.
