# Empty compiler generated dependencies file for bench_table2_helper_bypass.
# This may be replaced when dependencies are built.
