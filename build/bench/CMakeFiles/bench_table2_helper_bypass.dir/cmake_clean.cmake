file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_helper_bypass.dir/bench_table2_helper_bypass.cpp.o"
  "CMakeFiles/bench_table2_helper_bypass.dir/bench_table2_helper_bypass.cpp.o.d"
  "bench_table2_helper_bypass"
  "bench_table2_helper_bypass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_helper_bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
