# Empty dependencies file for bench_fig6_exec_cdf.
# This may be replaced when dependencies are built.
