# Empty dependencies file for bench_response_delay.
# This may be replaced when dependencies are built.
