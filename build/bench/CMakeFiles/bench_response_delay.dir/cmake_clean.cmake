file(REMOVE_RECURSE
  "CMakeFiles/bench_response_delay.dir/bench_response_delay.cpp.o"
  "CMakeFiles/bench_response_delay.dir/bench_response_delay.cpp.o.d"
  "bench_response_delay"
  "bench_response_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_response_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
