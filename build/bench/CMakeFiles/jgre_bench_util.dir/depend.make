# Empty dependencies file for jgre_bench_util.
# This may be replaced when dependencies are built.
