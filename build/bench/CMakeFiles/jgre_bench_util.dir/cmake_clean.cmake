file(REMOVE_RECURSE
  "CMakeFiles/jgre_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/jgre_bench_util.dir/bench_util.cc.o.d"
  "libjgre_bench_util.a"
  "libjgre_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jgre_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
