file(REMOVE_RECURSE
  "libjgre_bench_util.a"
)
