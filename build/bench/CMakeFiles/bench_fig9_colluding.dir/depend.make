# Empty dependencies file for bench_fig9_colluding.
# This may be replaced when dependencies are built.
