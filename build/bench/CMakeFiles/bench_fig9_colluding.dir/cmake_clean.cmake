file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_colluding.dir/bench_fig9_colluding.cpp.o"
  "CMakeFiles/bench_fig9_colluding.dir/bench_fig9_colluding.cpp.o.d"
  "bench_fig9_colluding"
  "bench_fig9_colluding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_colluding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
