file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_thirdparty.dir/bench_table5_thirdparty.cpp.o"
  "CMakeFiles/bench_table5_thirdparty.dir/bench_table5_thirdparty.cpp.o.d"
  "bench_table5_thirdparty"
  "bench_table5_thirdparty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_thirdparty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
