# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/integration_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/dynamic_verifier_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/segment_tree_property_test[1]_include.cmake")
include("/root/repo/build/tests/irt_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/binder_test[1]_include.cmake")
include("/root/repo/build/tests/services_test[1]_include.cmake")
include("/root/repo/build/tests/attack_test[1]_include.cmake")
include("/root/repo/build/tests/defense_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/system_property_test[1]_include.cmake")
include("/root/repo/build/tests/cross_validation_test[1]_include.cmake")
