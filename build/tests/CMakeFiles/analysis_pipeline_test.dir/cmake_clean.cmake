file(REMOVE_RECURSE
  "CMakeFiles/analysis_pipeline_test.dir/analysis_pipeline_test.cc.o"
  "CMakeFiles/analysis_pipeline_test.dir/analysis_pipeline_test.cc.o.d"
  "CMakeFiles/analysis_pipeline_test.dir/test_main.cc.o"
  "CMakeFiles/analysis_pipeline_test.dir/test_main.cc.o.d"
  "analysis_pipeline_test"
  "analysis_pipeline_test.pdb"
  "analysis_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
