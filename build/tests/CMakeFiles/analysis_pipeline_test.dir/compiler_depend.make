# Empty compiler generated dependencies file for analysis_pipeline_test.
# This may be replaced when dependencies are built.
