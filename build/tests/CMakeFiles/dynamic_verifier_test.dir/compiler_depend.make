# Empty compiler generated dependencies file for dynamic_verifier_test.
# This may be replaced when dependencies are built.
