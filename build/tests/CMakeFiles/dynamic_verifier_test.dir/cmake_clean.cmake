file(REMOVE_RECURSE
  "CMakeFiles/dynamic_verifier_test.dir/dynamic_verifier_test.cc.o"
  "CMakeFiles/dynamic_verifier_test.dir/dynamic_verifier_test.cc.o.d"
  "CMakeFiles/dynamic_verifier_test.dir/test_main.cc.o"
  "CMakeFiles/dynamic_verifier_test.dir/test_main.cc.o.d"
  "dynamic_verifier_test"
  "dynamic_verifier_test.pdb"
  "dynamic_verifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_verifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
