# Empty dependencies file for irt_test.
# This may be replaced when dependencies are built.
