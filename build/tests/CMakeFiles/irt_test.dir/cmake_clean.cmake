file(REMOVE_RECURSE
  "CMakeFiles/irt_test.dir/irt_test.cc.o"
  "CMakeFiles/irt_test.dir/irt_test.cc.o.d"
  "CMakeFiles/irt_test.dir/test_main.cc.o"
  "CMakeFiles/irt_test.dir/test_main.cc.o.d"
  "irt_test"
  "irt_test.pdb"
  "irt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
