# Empty dependencies file for segment_tree_property_test.
# This may be replaced when dependencies are built.
