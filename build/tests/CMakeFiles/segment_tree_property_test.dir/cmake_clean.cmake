file(REMOVE_RECURSE
  "CMakeFiles/segment_tree_property_test.dir/segment_tree_property_test.cc.o"
  "CMakeFiles/segment_tree_property_test.dir/segment_tree_property_test.cc.o.d"
  "CMakeFiles/segment_tree_property_test.dir/test_main.cc.o"
  "CMakeFiles/segment_tree_property_test.dir/test_main.cc.o.d"
  "segment_tree_property_test"
  "segment_tree_property_test.pdb"
  "segment_tree_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_tree_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
