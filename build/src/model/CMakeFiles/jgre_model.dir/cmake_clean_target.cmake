file(REMOVE_RECURSE
  "libjgre_model.a"
)
