file(REMOVE_RECURSE
  "CMakeFiles/jgre_model.dir/code_model.cc.o"
  "CMakeFiles/jgre_model.dir/code_model.cc.o.d"
  "CMakeFiles/jgre_model.dir/corpus.cc.o"
  "CMakeFiles/jgre_model.dir/corpus.cc.o.d"
  "libjgre_model.a"
  "libjgre_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jgre_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
