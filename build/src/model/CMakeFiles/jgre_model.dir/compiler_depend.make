# Empty compiler generated dependencies file for jgre_model.
# This may be replaced when dependencies are built.
