# Empty dependencies file for jgre_common.
# This may be replaced when dependencies are built.
