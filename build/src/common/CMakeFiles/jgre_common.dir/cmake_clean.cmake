file(REMOVE_RECURSE
  "CMakeFiles/jgre_common.dir/clock.cc.o"
  "CMakeFiles/jgre_common.dir/clock.cc.o.d"
  "CMakeFiles/jgre_common.dir/log.cc.o"
  "CMakeFiles/jgre_common.dir/log.cc.o.d"
  "CMakeFiles/jgre_common.dir/rng.cc.o"
  "CMakeFiles/jgre_common.dir/rng.cc.o.d"
  "CMakeFiles/jgre_common.dir/stats.cc.o"
  "CMakeFiles/jgre_common.dir/stats.cc.o.d"
  "CMakeFiles/jgre_common.dir/status.cc.o"
  "CMakeFiles/jgre_common.dir/status.cc.o.d"
  "CMakeFiles/jgre_common.dir/strings.cc.o"
  "CMakeFiles/jgre_common.dir/strings.cc.o.d"
  "libjgre_common.a"
  "libjgre_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jgre_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
