file(REMOVE_RECURSE
  "libjgre_common.a"
)
