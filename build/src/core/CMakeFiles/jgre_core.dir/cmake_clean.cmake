file(REMOVE_RECURSE
  "CMakeFiles/jgre_core.dir/android_system.cc.o"
  "CMakeFiles/jgre_core.dir/android_system.cc.o.d"
  "CMakeFiles/jgre_core.dir/market_apps.cc.o"
  "CMakeFiles/jgre_core.dir/market_apps.cc.o.d"
  "libjgre_core.a"
  "libjgre_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jgre_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
