file(REMOVE_RECURSE
  "libjgre_core.a"
)
