# Empty dependencies file for jgre_core.
# This may be replaced when dependencies are built.
