
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/heap.cc" "src/runtime/CMakeFiles/jgre_runtime.dir/heap.cc.o" "gcc" "src/runtime/CMakeFiles/jgre_runtime.dir/heap.cc.o.d"
  "/root/repo/src/runtime/indirect_reference_table.cc" "src/runtime/CMakeFiles/jgre_runtime.dir/indirect_reference_table.cc.o" "gcc" "src/runtime/CMakeFiles/jgre_runtime.dir/indirect_reference_table.cc.o.d"
  "/root/repo/src/runtime/java_vm_ext.cc" "src/runtime/CMakeFiles/jgre_runtime.dir/java_vm_ext.cc.o" "gcc" "src/runtime/CMakeFiles/jgre_runtime.dir/java_vm_ext.cc.o.d"
  "/root/repo/src/runtime/runtime.cc" "src/runtime/CMakeFiles/jgre_runtime.dir/runtime.cc.o" "gcc" "src/runtime/CMakeFiles/jgre_runtime.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/jgre_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
