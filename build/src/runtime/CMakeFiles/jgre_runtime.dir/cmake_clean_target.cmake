file(REMOVE_RECURSE
  "libjgre_runtime.a"
)
