file(REMOVE_RECURSE
  "CMakeFiles/jgre_runtime.dir/heap.cc.o"
  "CMakeFiles/jgre_runtime.dir/heap.cc.o.d"
  "CMakeFiles/jgre_runtime.dir/indirect_reference_table.cc.o"
  "CMakeFiles/jgre_runtime.dir/indirect_reference_table.cc.o.d"
  "CMakeFiles/jgre_runtime.dir/java_vm_ext.cc.o"
  "CMakeFiles/jgre_runtime.dir/java_vm_ext.cc.o.d"
  "CMakeFiles/jgre_runtime.dir/runtime.cc.o"
  "CMakeFiles/jgre_runtime.dir/runtime.cc.o.d"
  "libjgre_runtime.a"
  "libjgre_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jgre_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
