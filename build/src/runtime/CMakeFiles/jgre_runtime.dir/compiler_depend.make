# Empty compiler generated dependencies file for jgre_runtime.
# This may be replaced when dependencies are built.
