file(REMOVE_RECURSE
  "CMakeFiles/jgre_attack.dir/benign_workload.cc.o"
  "CMakeFiles/jgre_attack.dir/benign_workload.cc.o.d"
  "CMakeFiles/jgre_attack.dir/malicious_app.cc.o"
  "CMakeFiles/jgre_attack.dir/malicious_app.cc.o.d"
  "CMakeFiles/jgre_attack.dir/vuln_registry.cc.o"
  "CMakeFiles/jgre_attack.dir/vuln_registry.cc.o.d"
  "libjgre_attack.a"
  "libjgre_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jgre_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
