file(REMOVE_RECURSE
  "libjgre_attack.a"
)
