# Empty compiler generated dependencies file for jgre_attack.
# This may be replaced when dependencies are built.
