# Empty compiler generated dependencies file for jgre_os.
# This may be replaced when dependencies are built.
