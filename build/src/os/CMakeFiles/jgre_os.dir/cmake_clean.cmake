file(REMOVE_RECURSE
  "CMakeFiles/jgre_os.dir/kernel.cc.o"
  "CMakeFiles/jgre_os.dir/kernel.cc.o.d"
  "CMakeFiles/jgre_os.dir/lmk.cc.o"
  "CMakeFiles/jgre_os.dir/lmk.cc.o.d"
  "CMakeFiles/jgre_os.dir/procfs.cc.o"
  "CMakeFiles/jgre_os.dir/procfs.cc.o.d"
  "libjgre_os.a"
  "libjgre_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jgre_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
