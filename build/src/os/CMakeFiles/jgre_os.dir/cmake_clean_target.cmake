file(REMOVE_RECURSE
  "libjgre_os.a"
)
