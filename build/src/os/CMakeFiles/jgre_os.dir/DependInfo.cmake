
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/kernel.cc" "src/os/CMakeFiles/jgre_os.dir/kernel.cc.o" "gcc" "src/os/CMakeFiles/jgre_os.dir/kernel.cc.o.d"
  "/root/repo/src/os/lmk.cc" "src/os/CMakeFiles/jgre_os.dir/lmk.cc.o" "gcc" "src/os/CMakeFiles/jgre_os.dir/lmk.cc.o.d"
  "/root/repo/src/os/procfs.cc" "src/os/CMakeFiles/jgre_os.dir/procfs.cc.o" "gcc" "src/os/CMakeFiles/jgre_os.dir/procfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/jgre_common.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/jgre_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
