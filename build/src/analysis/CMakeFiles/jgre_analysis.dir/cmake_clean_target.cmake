file(REMOVE_RECURSE
  "libjgre_analysis.a"
)
