# Empty dependencies file for jgre_analysis.
# This may be replaced when dependencies are built.
