file(REMOVE_RECURSE
  "CMakeFiles/jgre_analysis.dir/pipeline.cc.o"
  "CMakeFiles/jgre_analysis.dir/pipeline.cc.o.d"
  "libjgre_analysis.a"
  "libjgre_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jgre_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
