# Empty compiler generated dependencies file for jgre_dynamic.
# This may be replaced when dependencies are built.
