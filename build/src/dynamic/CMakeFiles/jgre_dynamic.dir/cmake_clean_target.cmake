file(REMOVE_RECURSE
  "libjgre_dynamic.a"
)
