file(REMOVE_RECURSE
  "CMakeFiles/jgre_dynamic.dir/verifier.cc.o"
  "CMakeFiles/jgre_dynamic.dir/verifier.cc.o.d"
  "libjgre_dynamic.a"
  "libjgre_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jgre_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
