file(REMOVE_RECURSE
  "libjgre_defense.a"
)
