file(REMOVE_RECURSE
  "CMakeFiles/jgre_defense.dir/jgr_monitor.cc.o"
  "CMakeFiles/jgre_defense.dir/jgr_monitor.cc.o.d"
  "CMakeFiles/jgre_defense.dir/jgre_defender.cc.o"
  "CMakeFiles/jgre_defense.dir/jgre_defender.cc.o.d"
  "CMakeFiles/jgre_defense.dir/scoring.cc.o"
  "CMakeFiles/jgre_defense.dir/scoring.cc.o.d"
  "libjgre_defense.a"
  "libjgre_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jgre_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
