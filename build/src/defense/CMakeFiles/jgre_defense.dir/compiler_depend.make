# Empty compiler generated dependencies file for jgre_defense.
# This may be replaced when dependencies are built.
