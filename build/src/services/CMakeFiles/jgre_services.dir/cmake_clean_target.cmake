file(REMOVE_RECURSE
  "libjgre_services.a"
)
