# Empty compiler generated dependencies file for jgre_services.
# This may be replaced when dependencies are built.
