
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/activity_service.cc" "src/services/CMakeFiles/jgre_services.dir/activity_service.cc.o" "gcc" "src/services/CMakeFiles/jgre_services.dir/activity_service.cc.o.d"
  "/root/repo/src/services/app.cc" "src/services/CMakeFiles/jgre_services.dir/app.cc.o" "gcc" "src/services/CMakeFiles/jgre_services.dir/app.cc.o.d"
  "/root/repo/src/services/app_services.cc" "src/services/CMakeFiles/jgre_services.dir/app_services.cc.o" "gcc" "src/services/CMakeFiles/jgre_services.dir/app_services.cc.o.d"
  "/root/repo/src/services/audio_service.cc" "src/services/CMakeFiles/jgre_services.dir/audio_service.cc.o" "gcc" "src/services/CMakeFiles/jgre_services.dir/audio_service.cc.o.d"
  "/root/repo/src/services/clipboard_service.cc" "src/services/CMakeFiles/jgre_services.dir/clipboard_service.cc.o" "gcc" "src/services/CMakeFiles/jgre_services.dir/clipboard_service.cc.o.d"
  "/root/repo/src/services/ipc_client.cc" "src/services/CMakeFiles/jgre_services.dir/ipc_client.cc.o" "gcc" "src/services/CMakeFiles/jgre_services.dir/ipc_client.cc.o.d"
  "/root/repo/src/services/location_service.cc" "src/services/CMakeFiles/jgre_services.dir/location_service.cc.o" "gcc" "src/services/CMakeFiles/jgre_services.dir/location_service.cc.o.d"
  "/root/repo/src/services/misc_system_services.cc" "src/services/CMakeFiles/jgre_services.dir/misc_system_services.cc.o" "gcc" "src/services/CMakeFiles/jgre_services.dir/misc_system_services.cc.o.d"
  "/root/repo/src/services/net_media_services.cc" "src/services/CMakeFiles/jgre_services.dir/net_media_services.cc.o" "gcc" "src/services/CMakeFiles/jgre_services.dir/net_media_services.cc.o.d"
  "/root/repo/src/services/notification_service.cc" "src/services/CMakeFiles/jgre_services.dir/notification_service.cc.o" "gcc" "src/services/CMakeFiles/jgre_services.dir/notification_service.cc.o.d"
  "/root/repo/src/services/package_manager.cc" "src/services/CMakeFiles/jgre_services.dir/package_manager.cc.o" "gcc" "src/services/CMakeFiles/jgre_services.dir/package_manager.cc.o.d"
  "/root/repo/src/services/registry_service.cc" "src/services/CMakeFiles/jgre_services.dir/registry_service.cc.o" "gcc" "src/services/CMakeFiles/jgre_services.dir/registry_service.cc.o.d"
  "/root/repo/src/services/safe_service.cc" "src/services/CMakeFiles/jgre_services.dir/safe_service.cc.o" "gcc" "src/services/CMakeFiles/jgre_services.dir/safe_service.cc.o.d"
  "/root/repo/src/services/service_helpers.cc" "src/services/CMakeFiles/jgre_services.dir/service_helpers.cc.o" "gcc" "src/services/CMakeFiles/jgre_services.dir/service_helpers.cc.o.d"
  "/root/repo/src/services/system_service.cc" "src/services/CMakeFiles/jgre_services.dir/system_service.cc.o" "gcc" "src/services/CMakeFiles/jgre_services.dir/system_service.cc.o.d"
  "/root/repo/src/services/telephony_registry_service.cc" "src/services/CMakeFiles/jgre_services.dir/telephony_registry_service.cc.o" "gcc" "src/services/CMakeFiles/jgre_services.dir/telephony_registry_service.cc.o.d"
  "/root/repo/src/services/ui_services.cc" "src/services/CMakeFiles/jgre_services.dir/ui_services.cc.o" "gcc" "src/services/CMakeFiles/jgre_services.dir/ui_services.cc.o.d"
  "/root/repo/src/services/wifi_service.cc" "src/services/CMakeFiles/jgre_services.dir/wifi_service.cc.o" "gcc" "src/services/CMakeFiles/jgre_services.dir/wifi_service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/binder/CMakeFiles/jgre_binder.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/jgre_os.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/jgre_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jgre_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
