file(REMOVE_RECURSE
  "CMakeFiles/jgre_binder.dir/binder_driver.cc.o"
  "CMakeFiles/jgre_binder.dir/binder_driver.cc.o.d"
  "CMakeFiles/jgre_binder.dir/ibinder.cc.o"
  "CMakeFiles/jgre_binder.dir/ibinder.cc.o.d"
  "CMakeFiles/jgre_binder.dir/parcel.cc.o"
  "CMakeFiles/jgre_binder.dir/parcel.cc.o.d"
  "CMakeFiles/jgre_binder.dir/remote_callback_list.cc.o"
  "CMakeFiles/jgre_binder.dir/remote_callback_list.cc.o.d"
  "CMakeFiles/jgre_binder.dir/service_manager.cc.o"
  "CMakeFiles/jgre_binder.dir/service_manager.cc.o.d"
  "libjgre_binder.a"
  "libjgre_binder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jgre_binder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
