# Empty compiler generated dependencies file for jgre_binder.
# This may be replaced when dependencies are built.
