
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/binder/binder_driver.cc" "src/binder/CMakeFiles/jgre_binder.dir/binder_driver.cc.o" "gcc" "src/binder/CMakeFiles/jgre_binder.dir/binder_driver.cc.o.d"
  "/root/repo/src/binder/ibinder.cc" "src/binder/CMakeFiles/jgre_binder.dir/ibinder.cc.o" "gcc" "src/binder/CMakeFiles/jgre_binder.dir/ibinder.cc.o.d"
  "/root/repo/src/binder/parcel.cc" "src/binder/CMakeFiles/jgre_binder.dir/parcel.cc.o" "gcc" "src/binder/CMakeFiles/jgre_binder.dir/parcel.cc.o.d"
  "/root/repo/src/binder/remote_callback_list.cc" "src/binder/CMakeFiles/jgre_binder.dir/remote_callback_list.cc.o" "gcc" "src/binder/CMakeFiles/jgre_binder.dir/remote_callback_list.cc.o.d"
  "/root/repo/src/binder/service_manager.cc" "src/binder/CMakeFiles/jgre_binder.dir/service_manager.cc.o" "gcc" "src/binder/CMakeFiles/jgre_binder.dir/service_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/jgre_common.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/jgre_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/jgre_os.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
