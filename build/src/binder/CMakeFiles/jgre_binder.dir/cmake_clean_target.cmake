file(REMOVE_RECURSE
  "libjgre_binder.a"
)
