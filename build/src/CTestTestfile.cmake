# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("runtime")
subdirs("os")
subdirs("binder")
subdirs("services")
subdirs("model")
subdirs("analysis")
subdirs("dynamic")
subdirs("attack")
subdirs("defense")
subdirs("core")
