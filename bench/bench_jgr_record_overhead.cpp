// bench_jgr_record_overhead — regenerates §V.D.2's JGR-recording overhead
// measurement with an attacker/victim pair: below the 4,000-entry alarm
// threshold the monitor is passive (zero added latency); above it, each JGR
// add/remove costs ~1 µs of recording.
#include <cstdio>

#include "attack/malicious_app.h"
#include "attack/vuln_registry.h"
#include "bench_util.h"
#include "core/android_system.h"
#include "defense/jgre_defender.h"

using namespace jgre;

namespace {

// Mean virtual latency of `calls` attack IPC calls starting from the current
// system state.
double MeanCallLatencyUs(core::AndroidSystem& system,
                         attack::MaliciousApp& attacker, int calls) {
  const TimeUs before = system.clock().NowUs();
  for (int i = 0; i < calls; ++i) (void)attacker.Step();
  return static_cast<double>(system.clock().NowUs() - before) / calls;
}

double Run(bool with_monitor, double* below_out, double* above_out) {
  core::AndroidSystem system;
  system.Boot();
  defense::JgreDefender::Config config;
  // Disable the defender's reaction so we only measure the recording cost.
  config.monitor.report_threshold = 1'000'000;
  defense::JgreDefender defender(&system, config);
  if (with_monitor) {
    defender.Install();
  } else {
    // Keep the extended *driver* on in both configurations so the diff
    // isolates the runtime monitor (the driver's logging cost is Fig 10's
    // measurement, not this one).
    system.driver().SetDefenseLogging(true);
  }

  // audio.startWatchingRoutes: the flattest cost profile, so the recording
  // overhead is not drowned by handler-state growth.
  const attack::VulnSpec* vuln =
      attack::FindVulnerability("audio", "startWatchingRoutes");
  services::AppProcess* evil =
      attack::InstallAttackApp(&system, "com.evil.app", *vuln);
  attack::MaliciousApp attacker(&system, evil, *vuln);

  // Phase 1: well below the alarm threshold (JGR < 4000).
  *below_out = MeanCallLatencyUs(system, attacker, 600);
  // Drive past the alarm threshold...
  while (system.SystemServerJgrCount() < 4'500) (void)attacker.Step();
  // Phase 2: recording active (when the monitor is installed).
  *above_out = MeanCallLatencyUs(system, attacker, 600);
  return *above_out - *below_out;
}

}  // namespace

int main() {
  bench::PrintBanner("JGR RECORD OVERHEAD (paper §V.D.2)",
                     "Per-operation cost of the extended runtime's JGR "
                     "recording");
  double below_off, above_off, below_on, above_on;
  Run(false, &below_off, &above_off);
  Run(true, &below_on, &above_on);

  std::printf("\n%-34s %14s %14s\n", "configuration", "below 4000 (us)",
              "above 4000 (us)");
  std::printf("%-34s %14.2f %14.2f\n", "stock runtime", below_off, above_off);
  std::printf("%-34s %14.2f %14.2f\n", "extended runtime (monitor)", below_on,
              above_on);
  // Isolate the monitor's contribution from handler-state growth by
  // differencing against the stock runtime at the same JGR counts.
  const double passive_cost = below_on - below_off;
  const double recording_cost = (above_on - above_off) - passive_cost;
  // ~2 recorded JGR adds per IPC call (proxy + death recipient).
  std::printf("\npassive monitor cost below the alarm threshold: %.2f us/call "
              "(paper: no observable delay)\n",
              passive_cost);
  std::printf("recording cost above the threshold: %.2f us per JGR operation "
              "(paper: ~1 us)\n",
              recording_cost / 2.0);
  return 0;
}
