// bench_response_delay — regenerates §V.D.1: for every one of the 57 known
// vulnerabilities, attack a defended device and measure
//   * the response delay (defender notified -> attacker identified), and
//   * whether recovery succeeded before the 51,200 overflow.
//
// Paper shape: most identifications complete within a second, the slowest
// (midi.registerDeviceServer) around 3.6 s — far below the ~100 s the
// fastest attack needs to overflow the table.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "attack/vuln_registry.h"
#include "bench_util.h"

using namespace jgre;

int main() {
  bench::PrintBanner("RESPONSE DELAY (paper §V.D.1)",
                     "Attack-source identification latency per vulnerability");
  bench::DefendedAttackOptions options;
  options.benign_apps = 10;  // light background traffic

  std::printf("\n%-20s %-40s %12s %10s %10s\n", "service", "interface",
              "response_ms", "recovered", "reboot");
  std::vector<double> delays_ms;
  int defended = 0;
  int total = 0;
  for (const attack::VulnSpec& vuln : attack::AllVulnerabilities()) {
    ++total;
    options.seed = 7 + static_cast<std::uint64_t>(vuln.id);
    auto result = bench::RunDefendedAttack(vuln, options);
    double delay_ms = -1;
    bool recovered = false;
    if (result.incident) {
      delay_ms = result.report.response_delay_us() / 1e3;
      recovered = result.report.recovered;
      delays_ms.push_back(delay_ms);
      if (recovered && !result.soft_rebooted) ++defended;
    }
    std::printf("%-20s %-40s %12.1f %10s %10s\n", vuln.service.c_str(),
                vuln.interface.c_str(), delay_ms, recovered ? "yes" : "NO",
                result.soft_rebooted ? "YES" : "no");
  }
  if (!delays_ms.empty()) {
    std::sort(delays_ms.begin(), delays_ms.end());
    std::printf("\nresponse delay: median %.1f ms, p95 %.1f ms, max %.1f ms "
                "(paper: mostly <1 s, max ~3.6 s)\n",
                delays_ms[delays_ms.size() / 2],
                delays_ms[delays_ms.size() * 95 / 100], delays_ms.back());
  }
  std::printf("defended %d/%d vulnerabilities without a reboot (paper: all "
              "57)\n",
              defended, total);
  std::printf("every identification is orders of magnitude faster than the "
              "fastest overflow (~100 s), so no attack can outrun the "
              "defense.\n");
  return defended == total ? 0 : 1;
}
